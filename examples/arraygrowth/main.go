// Arraygrowth reproduces the paper's §4.2 case study (Listing 6, Figures 4
// and 5): an algorithmic profile uncovers the classic dynamic-array
// performance bug. Growing the backing array by one element makes the
// total cost of appending n elements quadratic; doubling makes it linear.
// A traditional profiler would only say "append is hot" — the algorithmic
// profiler says *why* and *how it scales*.
package main

import (
	"fmt"
	"log"

	"algoprof"
	"algoprof/internal/workloads"
)

func main() {
	for _, naive := range []bool{true, false} {
		label := "ideal (array doubles)"
		if naive {
			label = "naive (array grows by 1)"
		}
		src := workloads.ArrayListGrow(naive, 96, 6, 2)
		profile, err := algoprof.Run(src, algoprof.Config{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}

		alg := profile.Find("Main.testForSize/loop1")
		if alg == nil {
			log.Fatal("append algorithm not found")
		}
		fmt.Printf("=== %s ===\n", label)
		fmt.Printf("algorithm: %v (append loop grouped with the grow loop)\n", alg.Nodes)
		fmt.Printf("classification: %s\n", alg.Description)
		for _, cf := range alg.CostFunctions {
			fmt.Printf("cost function: steps ≈ %s  (R2=%.3f)\n", cf.Text, cf.R2)
		}
		plot, err := profile.PlotAlgorithm("Main.testForSize/loop1", "", 64, 14)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plot)
	}
	fmt.Println("One changed line turns the quadratic cost function into a linear one (Figure 5).")
}
