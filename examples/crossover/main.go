// Crossover answers the question algorithmic profiling was designed for:
// *which algorithm should I use, and below what input size does the answer
// flip?* It profiles one program that sorts the same input distribution
// with the paper's quadratic insertion sort and with a linked-list merge
// sort, then compares the two automatically fitted cost functions.
package main

import (
	"fmt"
	"log"

	"algoprof/internal/experiments"
)

func main() {
	sw := experiments.Sweep{MaxSize: 96, Step: 6, Reps: 3, Seed: 42}
	res, err := experiments.Crossover(sw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Two sort algorithms, profiled in one run:")
	fmt.Printf("  insertion sort: steps ≈ %.3g·%s\n", res.InsertionCoeff, res.InsertionModel)
	fmt.Printf("  merge sort:     steps ≈ %.3g·%s\n", res.MergeCoeff, res.MergeModel)
	fmt.Println()
	fmt.Printf("At the largest profiled size (%d): insertion %.0f steps vs merge %.0f steps.\n",
		sw.MaxSize, res.InsertionAtMax, res.MergeAtMax)
	if res.CrossoverN > 0 {
		fmt.Printf("The fitted functions cross at n ≈ %d:\n", res.CrossoverN)
		fmt.Printf("  below %d elements insertion sort is cheaper; above, merge sort wins.\n",
			res.CrossoverN)
	} else {
		fmt.Println("Merge sort wins across the whole profiled range.")
	}
	fmt.Println()
	fmt.Println("No annotations, no manual input sizes: the profiler identified both")
	fmt.Println("lists, measured them, grouped the repetitions into the two sort")
	fmt.Println("algorithms, and fitted the cost functions automatically.")
}
