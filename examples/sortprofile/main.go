// Sortprofile reproduces the paper's Figure 1: the empirical cost
// functions of insertion sort on random, pre-sorted, and reverse-sorted
// inputs. Run it to see that the same implementation costs ≈0.25·n² steps
// on random lists, ≈n on sorted lists, and ≈0.5·n² on reversed lists.
package main

import (
	"fmt"
	"log"

	"algoprof/internal/experiments"
	"algoprof/internal/workloads"
)

func main() {
	sweep := experiments.Sweep{MaxSize: 96, Step: 6, Reps: 3, Seed: 42}
	for _, order := range []workloads.Order{workloads.Random, workloads.Sorted, workloads.Reversed} {
		res, err := experiments.Figure1(order, sweep)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== insertion sort on %s input ===\n", res.Order)
		fmt.Printf("fitted cost function: steps ≈ %s  (R2 = %.3f over %d runs)\n\n",
			res.Text, res.R2, len(res.Points))
		fmt.Println(res.Plot)
	}

	fmt.Println("Compare with Figure 1 of the paper: (a) 0.25·size², (b) linear, (c) 0.5·size².")
}
