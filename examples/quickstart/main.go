// Quickstart: profile a small MJ program and print its algorithmic
// profile — the repetition tree, the algorithms found, their
// classifications and fitted cost functions.
package main

import (
	"fmt"
	"log"

	"algoprof"
)

const src = `
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    // A harness: for growing sizes, build a list, then search it linearly.
    for (int size = 4; size <= 64; size = size + 4) {
      Node head = build(size);
      int hits = 0;
      for (int probe = 0; probe < 10; probe++) {
        if (contains(head, rand(100))) { hits++; }
      }
      writeOutput(hits);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node(rand(100));
      x.next = head;
      head = x;
    }
    return head;
  }
  static boolean contains(Node head, int v) {
    Node cur = head;
    while (cur != null) {
      if (cur.v == v) { return true; }
      cur = cur.next;
    }
    return false;
  }
}`

func main() {
	profile, err := algoprof.Run(src, algoprof.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Repetition tree:")
	fmt.Println(profile.Tree())

	fmt.Println("Algorithms, most expensive first:")
	for _, alg := range profile.Algorithms {
		fmt.Printf("  %-28s %8d steps   %s\n", alg.Name, alg.TotalSteps, alg.Description)
		for _, cf := range alg.CostFunctions {
			fmt.Printf("      cost ≈ %s over the %s (R2=%.3f)\n", cf.Text, cf.InputLabel, cf.R2)
		}
	}

	// The headline: the linear search's cost function.
	if search := profile.Find("Main.contains/loop1"); search != nil && len(search.CostFunctions) > 0 {
		fmt.Printf("\nThe linear search costs %s steps in the list size — as expected, O(n).\n",
			search.CostFunctions[0].Text)
	}
}
