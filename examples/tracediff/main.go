// Tracediff demonstrates the record/replay/diff workflow end to end: it
// records two runs of the paper's running example — the same insertion
// sort fed sorted input (linear behaviour) and reversed input (quadratic
// behaviour) — into a trace store, replays one offline to show the
// byte-identical-profile guarantee, and diffs the two runs so the n → n²
// model-class change is flagged as a complexity regression, distinct from
// constant-factor drift.
//
// The same workflow is available from the command line:
//
//	algoprof record -store traces -name fast sorted.mj
//	algoprof record -store traces -name slow reversed.mj
//	algoprof diff   -store traces fast slow   # exits 1: regression
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"algoprof"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
	"algoprof/internal/workloads"
)

func main() {
	dir, err := os.MkdirTemp("", "tracediff")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	s, err := store.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := algoprof.Config{Seed: 1}

	// The two workload variants: one program point (List.sort), two input
	// regimes. Insertion sort is linear on already-sorted input and
	// quadratic on reversed input, so the fitted model class flips.
	fast, err := s.Record("fast", workloads.RunningExample(workloads.Sorted, 49, 6, 2),
		"sorted-input", cfg, trace.WriterOptions{Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	slow, err := s.Record("slow", workloads.RunningExample(workloads.Reversed, 49, 6, 2),
		"reversed-input", cfg, trace.WriterOptions{Compress: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, run := range []*store.Run{fast, slow} {
		fi, err := os.Stat(filepath.Join(run.Dir, "trace.bin"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("recorded %-4s (%s): %d instructions, trace %d bytes\n",
			run.Name, run.Manifest.Workload, run.Manifest.Instructions, fi.Size())
		for _, alg := range run.Profile.Algorithms {
			for _, cf := range alg.CostFunctions {
				fmt.Printf("  %-32s steps ≈ %s\n", alg.Name, cf.Text)
			}
		}
	}

	// Offline replay reproduces the stored profile byte for byte — no VM
	// execution, just the trace.
	replayed, err := s.Replay("slow")
	if err != nil {
		log.Fatal(err)
	}
	liveJSON, _ := slow.Profile.JSON()
	replayJSON, _ := replayed.Profile.JSON()
	fmt.Printf("\noffline replay of %q byte-identical to recorded profile: %v\n",
		"slow", bytes.Equal(liveJSON, replayJSON))

	// The diff separates the algorithmic event (the sort's model class
	// regressed n → n²) from mere constant-factor drift.
	d := store.DiffRuns(&fast.Manifest, &slow.Manifest)
	fmt.Printf("\ndiff fast -> slow:\n%s", d.Render())
	fmt.Printf("complexity regression detected: %v\n", d.HasComplexityRegression())
}
