// Goapi profiles natively written Go code through the probe API,
// demonstrating that the algorithmic profiler core is independent of the
// MJ language frontend. It instruments a hand-written binary search tree:
// inserting n random keys and then summing the tree. The profiler
// discovers the structure, classifies insertion as a construction and the
// sum as a traversal, and fits their cost functions.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"algoprof/probe"
)

// bst is a native Go binary search tree whose nodes are mirrored as probe
// objects so structure accesses are visible to the profiler.
type bst struct {
	s    *probe.Session
	root *node
}

type node struct {
	key         int
	mirror      *probe.Object
	left, right *node
}

func (t *bst) insert(key int) {
	t.s.RecursionEnter("bst.insert")
	defer t.s.RecursionExit("bst.insert")
	t.root = t.insertAt(t.root, key)
}

func (t *bst) insertAt(n *node, key int) *node {
	if n == nil {
		m := t.s.NewObject("TreeNode")
		return &node{key: key, mirror: m}
	}
	t.s.RecursionEnter("bst.insert")
	defer t.s.RecursionExit("bst.insert")
	if key <= n.key {
		n.left = t.insertAt(n.left, key)
		n.mirror.SetLink("left", n.left.mirror)
	} else {
		n.right = t.insertAt(n.right, key)
		n.mirror.SetLink("right", n.right.mirror)
	}
	return n
}

func (t *bst) sum() int {
	t.s.RecursionEnter("bst.sum")
	defer t.s.RecursionExit("bst.sum")
	return t.sumAt(t.root)
}

func (t *bst) sumAt(n *node) int {
	if n == nil {
		return 0
	}
	t.s.RecursionEnter("bst.sum")
	defer t.s.RecursionExit("bst.sum")
	n.mirror.Link("left")
	n.mirror.Link("right")
	return n.key + t.sumAt(n.left) + t.sumAt(n.right)
}

func main() {
	s := probe.NewSession()
	rng := rand.New(rand.NewSource(7))

	s.LoopEnter("harness")
	for size := 8; size <= 1024; size *= 2 {
		s.LoopIterate("harness")
		t := &bst{s: s}
		for i := 0; i < size; i++ {
			t.insert(rng.Intn(10 * size))
		}
		total := t.sum()
		fmt.Printf("size %4d: sum = %d\n", size, total)
	}
	s.LoopExit("harness")

	profile := s.Profile()
	if errs := s.Errors(); len(errs) > 0 {
		log.Fatal(errs[0])
	}

	fmt.Println("\nRepetition tree of the native Go run:")
	fmt.Println(profile.Tree())

	for _, name := range []string{"bst.insert/recursion", "bst.sum/recursion"} {
		if alg := profile.Find(name); alg != nil {
			fmt.Printf("%-22s %s", name, alg.Description)
			for _, cf := range alg.CostFunctions {
				fmt.Printf("  | cost ≈ %s (R2=%.2f)", cf.Text, cf.R2)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	fmt.Println("sum visits every node (exactly 1·n steps, R²=1); each insert walks one")
	fmt.Println("root-to-leaf path, so its per-call cost is ≈log n with the natural")
	fmt.Println("variance of random BST paths (hence the lower R²).")
}
