// Freqmap profiles a realistic multi-algorithm application: a frequency
// counter that reads datasets from external input, builds a chained hash
// map (bucket array + linked Entry chains), scans for the mode, and writes
// results out. The profile separates and classifies every algorithm — the
// Input reader, the hash-map Construction, the Traversal scan, the Output
// writer — and fits their cost functions, all automatically.
package main

import (
	"fmt"
	"log"

	"algoprof"
	"algoprof/internal/workloads"
)

func main() {
	profile, err := algoprof.Run(workloads.FreqMap, algoprof.Config{
		Input: workloads.FreqMapInput(12, 8),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Program outputs (the mode of each dataset):", profile.Output)
	fmt.Println()
	fmt.Println("Algorithmic profile:")
	fmt.Println(profile.Tree())

	fmt.Println("Algorithms by cost:")
	for _, alg := range profile.Algorithms {
		fmt.Printf("  %-34s %8d steps  %s\n", alg.Name, alg.TotalSteps, alg.Description)
		for _, cf := range alg.CostFunctions {
			fmt.Printf("        steps ≈ %s over the %s (R2=%.2f)\n", cf.Text, cf.InputLabel, cf.R2)
		}
	}
}
