// Package cct implements the traditional calling-context-tree profiler
// that the AlgoProf paper uses as its baseline (Figure 2): each calling
// context is annotated with its call count and its inclusive/exclusive
// cost. Wall-clock time is replaced by executed bytecode instructions,
// which is deterministic and proportional to interpreter work.
package cct

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/events"
	"algoprof/internal/mj/bytecode"
)

// Node is one calling context.
type Node struct {
	MethodID int
	Parent   *Node
	Children []*Node
	// Calls is the number of invocations of this context.
	Calls int64
	// Inclusive is the total cost (executed instructions) spent in this
	// context including callees.
	Inclusive uint64

	childIdx map[int]*Node
}

// Exclusive returns the context's cost minus its children's.
func (n *Node) Exclusive() uint64 {
	x := n.Inclusive
	for _, c := range n.Children {
		if c.Inclusive > x {
			return 0
		}
		x -= c.Inclusive
	}
	return x
}

func (n *Node) child(m int) *Node {
	if n.childIdx == nil {
		n.childIdx = map[int]*Node{}
	}
	if c, ok := n.childIdx[m]; ok {
		return c
	}
	c := &Node{MethodID: m, Parent: n}
	n.childIdx[m] = c
	n.Children = append(n.Children, c)
	return c
}

// Profiler builds a CCT from method entry/exit events. Run it with a full
// instrumentation plan so every method reports.
type Profiler struct {
	events.NopListener

	// Clock returns the current cost (typically the VM's InstrCount).
	Clock func() uint64

	root  *Node
	cur   *Node
	entry []uint64
}

var _ events.Listener = (*Profiler)(nil)

// New creates a CCT profiler reading cost from clock.
func New(clock func() uint64) *Profiler {
	root := &Node{MethodID: -1}
	return &Profiler{Clock: clock, root: root, cur: root}
}

// Root returns the synthetic root context.
func (p *Profiler) Root() *Node { return p.root }

// MethodEntry implements events.Listener.
func (p *Profiler) MethodEntry(methodID int) {
	p.cur = p.cur.child(methodID)
	p.cur.Calls++
	p.entry = append(p.entry, p.Clock())
}

// MethodExit implements events.Listener.
func (p *Profiler) MethodExit(methodID int) {
	if p.cur.Parent == nil {
		return // unbalanced; ignore
	}
	start := p.entry[len(p.entry)-1]
	p.entry = p.entry[:len(p.entry)-1]
	p.cur.Inclusive += p.Clock() - start
	p.cur = p.cur.Parent
}

// Finish computes the root's inclusive cost.
func (p *Profiler) Finish() {
	var total uint64
	for _, c := range p.root.Children {
		total += c.Inclusive
	}
	p.root.Inclusive = total
}

// HotMethod is a flat-profile entry aggregated over contexts.
type HotMethod struct {
	MethodID  int
	Calls     int64
	Exclusive uint64
	Inclusive uint64
}

// Flat aggregates the CCT into a per-method profile sorted by exclusive
// cost (the "hottest method" view).
func (p *Profiler) Flat() []HotMethod {
	agg := map[int]*HotMethod{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.MethodID >= 0 {
			h := agg[n.MethodID]
			if h == nil {
				h = &HotMethod{MethodID: n.MethodID}
				agg[n.MethodID] = h
			}
			h.Calls += n.Calls
			h.Exclusive += n.Exclusive()
			h.Inclusive += n.Inclusive
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.root)
	out := make([]HotMethod, 0, len(agg))
	for _, h := range agg {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exclusive != out[j].Exclusive {
			return out[i].Exclusive > out[j].Exclusive
		}
		return out[i].MethodID < out[j].MethodID
	})
	return out
}

// Render prints the CCT like the paper's Figure 2: each context with its
// call count and inclusive cost.
func Render(p *Profiler, prog *bytecode.Program) string {
	var sb strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		if n.MethodID >= 0 {
			m := prog.Sem.MethodByID(n.MethodID)
			fmt.Fprintf(&sb, "%s%s  calls=%d cost=%d (excl=%d)\n",
				strings.Repeat("  ", depth), m.QualifiedName(), n.Calls, n.Inclusive, n.Exclusive())
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.root, -1)
	return sb.String()
}
