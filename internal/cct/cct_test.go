package cct

import (
	"strings"
	"testing"

	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// runCCT executes src under the CCT profiler with a full plan.
func runCCT(t *testing.T, src string) (*Profiler, *vm.VM, *instrument.Instrumented) {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		t.Fatal(err)
	}
	var m *vm.VM
	p := New(func() uint64 { return m.InstrCount })
	m = vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p.Finish()
	return p, m, ins
}

const cctSrc = `
class Main {
  static void hot() {
    int s = 0;
    for (int i = 0; i < 500; i++) { s = s + i; }
  }
  static void cold() { int x = 1; }
  static void middle() { hot(); cold(); }
  public static void main() {
    for (int i = 0; i < 3; i++) { middle(); }
    cold();
  }
}`

func methodID(t *testing.T, ins *instrument.Instrumented, name string) int {
	t.Helper()
	for _, m := range ins.Prog.Sem.Methods() {
		if m.QualifiedName() == name {
			return m.ID
		}
	}
	t.Fatalf("no method %s", name)
	return -1
}

func TestCCTStructure(t *testing.T) {
	p, _, ins := runCCT(t, cctSrc)
	root := p.Root()
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 (main)", len(root.Children))
	}
	main := root.Children[0]
	if main.MethodID != methodID(t, ins, "Main.main") || main.Calls != 1 {
		t.Errorf("main context: id=%d calls=%d", main.MethodID, main.Calls)
	}
	// main has two child contexts: middle and cold (called directly).
	if len(main.Children) != 2 {
		t.Fatalf("main children = %d, want 2", len(main.Children))
	}
	var middle, coldDirect *Node
	for _, c := range main.Children {
		switch c.MethodID {
		case methodID(t, ins, "Main.middle"):
			middle = c
		case methodID(t, ins, "Main.cold"):
			coldDirect = c
		}
	}
	if middle == nil || coldDirect == nil {
		t.Fatal("middle/cold contexts missing")
	}
	if middle.Calls != 3 {
		t.Errorf("middle calls = %d, want 3", middle.Calls)
	}
	if coldDirect.Calls != 1 {
		t.Errorf("direct cold calls = %d, want 1", coldDirect.Calls)
	}
	// cold appears in two distinct contexts.
	var coldViaMiddle *Node
	for _, c := range middle.Children {
		if c.MethodID == methodID(t, ins, "Main.cold") {
			coldViaMiddle = c
		}
	}
	if coldViaMiddle == nil || coldViaMiddle.Calls != 3 {
		t.Fatal("cold via middle context missing or wrong count")
	}
}

func TestInclusiveExclusiveCosts(t *testing.T) {
	p, _, ins := runCCT(t, cctSrc)
	flat := p.Flat()
	if len(flat) != 4 {
		t.Fatalf("flat profile has %d methods, want 4", len(flat))
	}
	// hot must dominate the exclusive ranking.
	if flat[0].MethodID != methodID(t, ins, "Main.hot") {
		t.Errorf("hottest method id = %d, want Main.hot", flat[0].MethodID)
	}
	// Inclusive cost of middle >= inclusive of hot (it contains it).
	var hotInc, midInc uint64
	for _, h := range flat {
		switch h.MethodID {
		case methodID(t, ins, "Main.hot"):
			hotInc = h.Inclusive
		case methodID(t, ins, "Main.middle"):
			midInc = h.Inclusive
		}
	}
	if midInc < hotInc {
		t.Errorf("middle inclusive %d < hot inclusive %d", midInc, hotInc)
	}
	// Exclusive never exceeds inclusive.
	for _, h := range flat {
		if h.Exclusive > h.Inclusive {
			t.Errorf("method %d: exclusive %d > inclusive %d", h.MethodID, h.Exclusive, h.Inclusive)
		}
	}
}

func TestRecursionInCCTNotFolded(t *testing.T) {
	// Unlike the repetition tree, a CCT keeps one context per depth-1
	// recursive unfolding only when contexts differ; direct recursion
	// appears as a self-chain. Verify calls total correctly.
	p, _, ins := runCCT(t, `
class Main {
  static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
  public static void main() { int x = fact(5); }
}`)
	flat := p.Flat()
	var factCalls int64
	for _, h := range flat {
		if h.MethodID == methodID(t, ins, "Main.fact") {
			factCalls = h.Calls
		}
	}
	if factCalls != 5 {
		t.Errorf("fact calls = %d, want 5 (no folding in a CCT)", factCalls)
	}
}

func TestRender(t *testing.T) {
	p, _, ins := runCCT(t, cctSrc)
	out := Render(p, ins.Prog)
	for _, want := range []string{"Main.main", "Main.middle", "Main.hot", "calls=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
