package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRecordReplayIdentical is the trace subsystem's correctness oracle:
// recording a combined three-backend pass and replaying the trace offline
// must reproduce every backend's rendered output byte for byte — and both
// must match the plain live single-pass run.
func TestRecordReplayIdentical(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 24, 8, 2)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		live, err := RecordBackends(src, 1, &buf, trace.WriterOptions{Compress: compress})
		if err != nil {
			t.Fatalf("RecordBackends(compress=%v): %v", compress, err)
		}
		r, err := trace.NewReader(buf.Bytes())
		if err != nil {
			t.Fatalf("NewReader(compress=%v): %v", compress, err)
		}
		replayed, err := ReplayBackends(src, r)
		if err != nil {
			t.Fatalf("ReplayBackends(compress=%v): %v", compress, err)
		}
		liveFP, replayFP := BackendsFingerprint(live), BackendsFingerprint(replayed)
		if liveFP != replayFP {
			t.Errorf("compress=%v: replayed backends differ from recorded run\nlive:\n%s\nreplayed:\n%s",
				compress, liveFP, replayFP)
		}
		plain, err := RunBackends(src, 1, false)
		if err != nil {
			t.Fatalf("RunBackends: %v", err)
		}
		if plainFP := BackendsFingerprint(plain); plainFP != liveFP {
			t.Errorf("compress=%v: recording pass differs from plain live pass\nplain:\n%s\nrecorded:\n%s",
				compress, plainFP, liveFP)
		}
	}
}

// TestReplayGolden pins the replayed three-backend output of the running
// example to a checked-in golden file, so format or dispatch changes that
// alter replayed reports are caught even if live and replay drift together.
// Regenerate with: go test ./internal/experiments -run TestReplayGolden -update
func TestReplayGolden(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 24, 8, 2)
	var buf bytes.Buffer
	live, err := RecordBackends(src, 1, &buf, trace.WriterOptions{})
	if err != nil {
		t.Fatalf("RecordBackends: %v", err)
	}
	r, err := trace.NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	replayed, err := ReplayBackends(src, r)
	if err != nil {
		t.Fatalf("ReplayBackends: %v", err)
	}
	got := BackendsFingerprint(replayed)
	if got != BackendsFingerprint(live) {
		t.Fatalf("replayed fingerprint differs from live run")
	}

	golden := filepath.Join("testdata", "golden_backends.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("replayed output differs from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s",
			got, want)
	}
}

// TestReplayBackendsParallelMatches extends the oracle to sharded replay:
// every backend's rendered output after a parallel replay must be byte-
// identical to the sequential replay's (and therefore to the live run's),
// across worker counts and workloads. Small frames force many chunks so
// the merge path actually exercises reordering.
func TestReplayBackendsParallelMatches(t *testing.T) {
	srcs := map[string]string{
		"running": workloads.RunningExample(workloads.Random, 24, 8, 2),
		"sorts":   workloads.MergeVsInsertion(32, 8, 2),
	}
	for name, src := range srcs {
		var buf bytes.Buffer
		if _, err := RecordBackends(src, 1, &buf, trace.WriterOptions{FrameSize: 512, CheckpointEvery: 4}); err != nil {
			t.Fatalf("%s: RecordBackends: %v", name, err)
		}
		r, err := trace.NewReader(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: NewReader: %v", name, err)
		}
		seq, err := ReplayBackends(src, r)
		if err != nil {
			t.Fatalf("%s: ReplayBackends: %v", name, err)
		}
		seqFP := BackendsFingerprint(seq)
		for _, workers := range []int{2, 4, 8} {
			par, err := ReplayBackendsParallel(src, r, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if fp := BackendsFingerprint(par); fp != seqFP {
				t.Errorf("%s workers=%d: parallel replay differs from sequential", name, workers)
			}
		}
	}
}
