package experiments

import (
	"context"
	"fmt"
	"io"

	"algoprof"
	"algoprof/internal/bbprof"
	"algoprof/internal/cct"
	"algoprof/internal/core"
	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
	"algoprof/internal/vm"
)

// backendSetup is the static half of a combined three-backend pass: the
// compiled program under both instrumentation levels, the consumers'
// union plan, and a synchronous transport with the core, CCT, and
// basic-block consumers attached.
type backendSetup struct {
	insFull, insOpt *instrument.Instrumented
	union           *events.Plan
	tp              *pipeline.Transport
	coreProf        *core.Profiler
	cctProf         *cct.Profiler
	bb              *bbprof.Profiler
}

func newBackendSetup(src string) (*backendSetup, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	insFull, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		return nil, err
	}
	insOpt, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}
	union := events.NewEmptyPlan(len(insFull.Plan.MethodEntryExit),
		len(insFull.Plan.FieldAccess), len(insFull.Plan.AllocClass))
	for m := range union.MethodEntryExit {
		union.MethodEntryExit[m] = true
	}
	copy(union.FieldAccess, insOpt.Plan.FieldAccess)
	copy(union.AllocClass, insOpt.Plan.AllocClass)
	union.Arrays = insOpt.Plan.Arrays
	union.IO = insOpt.Plan.IO

	s := &backendSetup{insFull: insFull, insOpt: insOpt, union: union}
	s.tp = pipeline.New(pipeline.Config{Synchronous: true})
	s.coreProf = core.NewProfiler(insOpt, core.Options{})
	s.tp.Add("core", s.coreProf, pipeline.ConsumerOptions{HeapReader: true, Plan: insOpt.Plan})
	var cctCons *pipeline.Consumer
	s.cctProf = cct.New(func() uint64 { return cctCons.Clock() })
	cctCons = s.tp.Add("cct", s.cctProf, pipeline.ConsumerOptions{})
	// Unlike the live RunBackends path, the basic-block counter consumes
	// instruction ticks from the stream rather than hooking the VM
	// directly: the ticks must be in the stream anyway for offline replay,
	// and the counts are identical either way.
	s.bb = bbprof.New(insFull.Prog)
	s.tp.Add("bb", pipeline.InstrTap{Fn: s.bb.Hook}, pipeline.ConsumerOptions{})
	return s, nil
}

// finish closes out the backends and assembles the result.
func (s *backendSetup) finish(instructions uint64) (*Backends, error) {
	s.coreProf.Finish()
	s.cctProf.Finish()
	if errs := s.coreProf.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("backends: internal profiling error: %w", errs[0])
	}
	profile := algoprof.FromProfiler(s.coreProf)
	profile.Instructions = instructions
	return &Backends{
		Profile:      profile,
		CCT:          s.cctProf,
		BBRun:        s.bb.Snapshot(0),
		Instructions: instructions,
		ins:          s.insFull,
	}, nil
}

// RecordBackends executes src once, feeding all three backends from the
// stream like RunBackends, while capturing the full record stream —
// instruction ticks and heap journal included — to w as a trace file. The
// returned Backends is the live result; replaying the trace with
// ReplayBackends reproduces it byte for byte.
func RecordBackends(src string, seed uint64, w io.Writer, topts trace.WriterOptions) (*Backends, error) {
	s, err := newBackendSetup(src)
	if err != nil {
		return nil, err
	}
	tw := trace.NewWriter(w, topts)
	s.tp.Add("trace", tw, pipeline.ConsumerOptions{})
	pr := s.tp.Producer()
	machine := vm.New(s.insFull.Prog, vm.Config{
		Listener:  pr,
		Plan:      s.union,
		InstrHook: pr.Instr,
		Journal:   pr,
		PreWrite:  pr.Barrier,
		Seed:      seed,
	})
	pr.BindClock(&machine.InstrCount)
	s.tp.Start()
	runErr := machine.Run()
	if cerr := s.tp.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	tw.SetInstructions(machine.InstrCount)
	if werr := tw.Close(); werr != nil && runErr == nil {
		runErr = werr
	}
	if runErr != nil {
		return nil, runErr
	}
	return s.finish(machine.InstrCount)
}

// ReplayBackends runs all three backends offline on a recorded trace of
// src, with no VM involved: the reader reconstructs each record — heap
// entities included — and dispatches it through the same consumer fan-out
// a live run uses.
func ReplayBackends(src string, r *trace.Reader) (*Backends, error) {
	s, err := newBackendSetup(src)
	if err != nil {
		return nil, err
	}
	s.tp.Start()
	if err := r.Replay(s.tp.Dispatch); err != nil {
		return nil, err
	}
	return s.finish(r.Stats().Instructions)
}

// ReplayBackendsParallel is ReplayBackends with the trace's frame decoding
// fanned out over workers goroutines; the three backends' results are
// byte-identical to a sequential replay's (records still bind and dispatch
// in recorded order — see trace.Reader.ReplayParallel).
func ReplayBackendsParallel(src string, r *trace.Reader, workers int) (*Backends, error) {
	s, err := newBackendSetup(src)
	if err != nil {
		return nil, err
	}
	s.tp.Start()
	if err := r.ReplayParallel(context.Background(), workers, s.tp.Dispatch); err != nil {
		return nil, err
	}
	return s.finish(r.Stats().Instructions)
}
