// Worker-pool sweep runner. Every figure/table sweep in this package is a
// loop over independent, deterministic VM runs (each point compiles,
// instruments and executes its own program in fully isolated state), so
// the points can execute concurrently — the multithreaded-profiling
// observation of Coppa et al.: input-sensitive profiles compose across
// independent execution units. Results are written by index, keeping the
// output ordering deterministic regardless of the worker count.
package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the worker-pool bound; 0 means GOMAXPROCS.
var parallelism atomic.Int64

// sweepCtx is the context consulted between sweep points; nil value means
// context.Background(). Stored atomically so SetContext is safe while a
// sweep is running.
var sweepCtx atomic.Value // context.Context

// SetContext installs a context that bounds subsequent sweeps: it is
// checked between points, so cancellation or deadline expiry stops a sweep
// after the in-flight points finish and the sweep returns ctx.Err().
// cmd/paper wires this to its -deadline flag. A nil ctx resets to
// context.Background().
func SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	sweepCtx.Store(ctx)
}

func currentContext() context.Context {
	if ctx, ok := sweepCtx.Load().(context.Context); ok {
		return ctx
	}
	return context.Background()
}

// SetParallelism bounds the number of concurrent sweep points (n < 1
// resets to the default, GOMAXPROCS). cmd/paper wires this to its -j flag.
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current worker-pool bound.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEachIndex exposes the sweep worker pool to other subsystems — the run
// store's fleet differ fans out over it — with forEachIndex's contract:
// indexed results, deterministic lowest-index error, cancellation through
// the sweep context.
func ForEachIndex(n int, fn func(i int) error) error { return forEachIndex(n, fn) }

// forEachIndex runs fn(0) … fn(n-1) across at most Parallelism() workers
// and waits for all of them. fn must deposit its result at its own index
// in a pre-sized slice; ordering of results is then independent of
// scheduling. When several points fail, the lowest-index error is
// returned, so error reporting is deterministic too.
func forEachIndex(n int, fn func(i int) error) error {
	ctx := currentContext()
	workers := min(Parallelism(), n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
