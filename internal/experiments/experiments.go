// Package experiments regenerates every table and figure of the AlgoProf
// paper's evaluation on the MJ substrate. Each experiment returns both the
// structured data (so benchmarks and tests can assert the paper's
// qualitative results: who wins, what the growth shapes are, where the
// classifications land) and a rendered text form (so cmd/paper can print
// paper-style output).
package experiments

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"algoprof"
	"algoprof/internal/bbprof"
	"algoprof/internal/cct"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/report"
	"algoprof/internal/vm"
	"algoprof/internal/workloads"
)

// Sweep parameterizes the input-size sweeps. The defaults keep every
// experiment comfortably inside a laptop-second budget while leaving
// enough size range for the n / n·log n / n² shapes to separate.
type Sweep struct {
	MaxSize int
	Step    int
	Reps    int
	Seed    uint64
}

// DefaultSweep is used by cmd/paper and the benchmarks.
var DefaultSweep = Sweep{MaxSize: 96, Step: 6, Reps: 3, Seed: 42}

// ---------------------------------------------------------------------------
// Figure 1: cost functions of insertion sort under three input orders.

// Figure1Result is the reproduction of one Figure 1 panel.
type Figure1Result struct {
	Order  workloads.Order
	Points []algoprof.Point
	// Model and Coeff describe the fitted cost function.
	Model     string
	Coeff     float64
	Intercept float64
	R2        float64
	Text      string
	Plot      string
}

// Figure1 profiles the running example with the given input order and
// extracts the sort algorithm's cost function.
func Figure1(order workloads.Order, sw Sweep) (*Figure1Result, error) {
	prof, err := algoprof.Run(workloads.RunningExample(order, sw.MaxSize, sw.Step, sw.Reps),
		algoprof.Config{Seed: sw.Seed})
	if err != nil {
		return nil, err
	}
	alg := prof.Find("List.sort/loop1")
	if alg == nil {
		return nil, fmt.Errorf("figure1(%s): sort algorithm not found", order)
	}
	var cf *algoprof.CostFunction
	for i := range alg.CostFunctions {
		if strings.Contains(alg.CostFunctions[i].InputLabel, "Node") {
			cf = &alg.CostFunctions[i]
		}
	}
	if cf == nil {
		return nil, fmt.Errorf("figure1(%s): no Node cost function (have %v)", order, alg.CostFunctions)
	}
	plot, err := prof.PlotAlgorithm("List.sort/loop1", cf.InputLabel, 64, 16)
	if err != nil {
		return nil, err
	}
	return &Figure1Result{
		Order:     order,
		Points:    cf.Points,
		Model:     cf.Model,
		Coeff:     cf.Coeff,
		Intercept: cf.Intercept,
		R2:        cf.R2,
		Text:      cf.Text,
		Plot:      plot,
	}, nil
}

// Figure1All regenerates all three Figure 1 panels (random, sorted,
// reversed input), running the independent panels on the worker pool.
func Figure1All(sw Sweep) ([]*Figure1Result, error) {
	orders := []workloads.Order{workloads.Random, workloads.Sorted, workloads.Reversed}
	out := make([]*Figure1Result, len(orders))
	err := forEachIndex(len(orders), func(i int) error {
		res, err := Figure1(orders[i], sw)
		out[i] = res
		return err
	})
	return out, err
}

// ---------------------------------------------------------------------------
// Figure 2: the traditional CCT profile of the running example.

// Figure2Result is the baseline calling-context-tree profile.
type Figure2Result struct {
	Tree string
	// HottestExclusive is the qualified name of the method with the most
	// exclusive cost — the paper's Figure 2 observation is that List.sort
	// is the hottest method.
	HottestExclusive string
	// MostCalled is the method with the most invocations — the paper
	// observes List.append and the Node constructor dominate.
	MostCalled string
}

// Figure2 runs the running example under the CCT baseline.
func Figure2(sw Sweep) (*Figure2Result, error) {
	prog, err := compiler.CompileSource(workloads.RunningExample(workloads.Random, sw.MaxSize, sw.Step, sw.Reps))
	if err != nil {
		return nil, err
	}
	ins, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		return nil, err
	}
	var machine *vm.VM
	p := cct.New(func() uint64 { return machine.InstrCount })
	machine = vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: sw.Seed})
	if err := machine.Run(); err != nil {
		return nil, err
	}
	p.Finish()

	flat := p.Flat()
	if len(flat) == 0 {
		return nil, fmt.Errorf("figure2: empty profile")
	}
	res := &Figure2Result{
		Tree:             cct.Render(p, ins.Prog),
		HottestExclusive: ins.Prog.Sem.MethodByID(flat[0].MethodID).QualifiedName(),
	}
	var maxCalls int64 = -1
	for _, h := range flat {
		if h.Calls > maxCalls {
			maxCalls = h.Calls
			res.MostCalled = ins.Prog.Sem.MethodByID(h.MethodID).QualifiedName()
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Figure 3: the repetition tree with algorithm annotations.

// Figure3Result is the annotated repetition tree.
type Figure3Result struct {
	Tree string
	// LoopCount is the number of loop nodes (the paper's tree has 5).
	LoopCount int
	// SortDescription and ConstructDescription are the algorithm
	// annotations the paper highlights.
	SortDescription      string
	ConstructDescription string
	// SortModel is the fitted growth term for the sort algorithm
	// ("n^2" with coefficient ~0.25 in the paper).
	SortModel string
	SortCoeff float64
}

// Figure3 profiles the running example and extracts the repetition tree.
func Figure3(sw Sweep) (*Figure3Result, error) {
	prof, err := algoprof.Run(workloads.RunningExample(workloads.Random, sw.MaxSize, sw.Step, sw.Reps),
		algoprof.Config{Seed: sw.Seed})
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{Tree: prof.Tree()}
	res.LoopCount = strings.Count(res.Tree, "/loop")

	if alg := prof.Find("List.sort/loop1"); alg != nil {
		res.SortDescription = alg.Description
		for _, cf := range alg.CostFunctions {
			if strings.Contains(cf.InputLabel, "Node") {
				res.SortModel = cf.Model
				res.SortCoeff = cf.Coeff
			}
		}
	}
	if alg := prof.Find("Main.construct/loop1"); alg != nil {
		res.ConstructDescription = alg.Description
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Table 1: the 18 data-structure programs.

// Table1Outcome is one evaluated row.
type Table1Outcome struct {
	Row    workloads.Row
	Result workloads.RowResult
}

// Table1 evaluates all 18 rows at the given structure size. The rows are
// independent profiling runs and execute on the worker pool; the outcome
// order matches the paper's row order regardless of the worker count.
func Table1(size int, seed uint64) ([]Table1Outcome, error) {
	rows := workloads.Table1()
	out := make([]Table1Outcome, len(rows))
	err := forEachIndex(len(rows), func(i int) error {
		res, err := workloads.EvaluateRow(rows[i], size, seed)
		if err != nil {
			return fmt.Errorf("table1 %s: %w", rows[i].Name(), err)
		}
		out[i] = Table1Outcome{Row: rows[i], Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderTable1 prints the outcomes in the paper's Table 1 layout.
func RenderTable1(outcomes []Table1Outcome) string {
	headers := []string{"Struct", "Impl.", "Linkage", "T", "Rem.", "I", "S", "G"}
	var rows [][]string
	mark := func(ok bool) string {
		if ok {
			return "x"
		}
		return "-"
	}
	for _, o := range outcomes {
		rows = append(rows, []string{
			o.Row.Struct, o.Row.Impl, o.Row.Linkage, o.Row.T, o.Row.Rem,
			mark(o.Result.InputsOK), mark(o.Result.SizeOK), o.Result.G,
		})
	}
	return report.Table(headers, rows)
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: the growing array-backed list.

// Figure45Result covers both the repetition tree (Figure 4) and the cost
// functions of the naive and ideal growth strategies (Figure 5).
type Figure45Result struct {
	NaiveTree  string
	NaiveModel string
	NaiveCoeff float64
	NaivePlot  string
	IdealModel string
	IdealCoeff float64
	IdealPlot  string
	// Grouped reports whether append and grow formed one algorithm and
	// the harness stayed separate (Figure 4's two-algorithm structure).
	Grouped bool
}

// Figure45 profiles Listing 6 under both growth strategies; the two
// independent strategy runs execute on the worker pool.
func Figure45(sw Sweep) (*Figure45Result, error) {
	res := &Figure45Result{Grouped: true}
	var mu sync.Mutex
	strategies := []bool{true, false}
	err := forEachIndex(len(strategies), func(i int) error {
		naive := strategies[i]
		prof, err := algoprof.Run(workloads.ArrayListGrow(naive, sw.MaxSize, sw.Step, sw.Reps),
			algoprof.Config{Seed: sw.Seed})
		if err != nil {
			return err
		}
		alg := prof.Find("Main.testForSize/loop1")
		if alg == nil {
			return fmt.Errorf("figure45(naive=%v): append algorithm not found", naive)
		}
		hasGrow := false
		for _, n := range alg.Nodes {
			if n == "ArrayList.growIfFull/loop1" {
				hasGrow = true
			}
		}
		if len(alg.CostFunctions) == 0 {
			return fmt.Errorf("figure45(naive=%v): no cost function", naive)
		}
		cf := alg.CostFunctions[0]
		plot, err := prof.PlotAlgorithm("Main.testForSize/loop1", cf.InputLabel, 64, 14)
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if !hasGrow {
			res.Grouped = false
		}
		if naive {
			res.NaiveModel, res.NaiveCoeff, res.NaivePlot = cf.Model, cf.Coeff, plot
			res.NaiveTree = prof.Tree()
		} else {
			res.IdealModel, res.IdealCoeff, res.IdealPlot = cf.Model, cf.Coeff, plot
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// §4.3: paradigm agnosticism.

// ParadigmResult compares the imperative and functional insertion sorts.
//
// The correspondence the experiment establishes:
//
//   - repetition structure: the imperative sort has two nested loops; the
//     functional sort has two nested recursions (sort ▷ insert);
//   - per-repetition cost: the imperative inner loop and the functional
//     insert both do ≈ k/2 steps per invocation on a size-k prefix
//     (linear), and the total algorithmic steps of both sorts grow as
//     ≈ 0.25·n² on random input;
//   - classification differs *correctly*: the imperative sort modifies
//     the input structure in place, while the value-copying functional
//     sort constructs a fresh accumulator structure — which is why the
//     shared-input grouping keeps sort and insert separate there (the
//     deviation from the paper's "almost identical" is documented in
//     DESIGN.md).
type ParadigmResult struct {
	// Imperative sort (grouped algorithm, quadratic over input size).
	ImperativeModel      string
	ImperativeCoeff      float64
	ImperativeTotalSteps int64

	// Functional insert repetition (linear per invocation over the
	// accumulator size, quadratic in total).
	FunctionalInsertModel string
	FunctionalInsertCoeff float64
	FunctionalTotalSteps  int64
	// FunctionalDescription is insert's classification (a Construction).
	FunctionalDescription string
	// NestedRecursions reports whether insert's repetition node sits
	// below sort's in the repetition tree.
	NestedRecursions bool
}

// Paradigm profiles both implementations on random inputs and compares
// their algorithmic profiles. The imperative and functional runs are
// independent and execute on the worker pool.
func Paradigm(sw Sweep) (*ParadigmResult, error) {
	var imp *Figure1Result
	var prof *algoprof.Profile
	err := forEachIndex(2, func(i int) error {
		var err error
		if i == 0 {
			imp, err = Figure1(workloads.Random, sw)
		} else {
			prof, err = algoprof.Run(workloads.FunctionalSort(workloads.Random, sw.MaxSize, sw.Step, sw.Reps),
				algoprof.Config{Seed: sw.Seed})
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	res := &ParadigmResult{
		ImperativeModel: imp.Model,
		ImperativeCoeff: imp.Coeff,
	}
	for _, p := range imp.Points {
		res.ImperativeTotalSteps += p.Steps
	}

	insertAlg := prof.Find("FSort.insert/recursion")
	if insertAlg == nil {
		return nil, fmt.Errorf("paradigm: functional insert algorithm not found")
	}
	res.FunctionalTotalSteps = insertAlg.TotalSteps
	res.FunctionalDescription = insertAlg.Description
	for _, cf := range insertAlg.CostFunctions {
		if strings.Contains(cf.InputLabel, "FNode") {
			res.FunctionalInsertModel = cf.Model
			res.FunctionalInsertCoeff = cf.Coeff
		}
	}
	res.NestedRecursions = strings.Contains(prof.Tree(), "FSort.sort/recursion") &&
		treeHasNesting(prof.Tree(), "FSort.sort/recursion", "FSort.insert/recursion")
	return res, nil
}

// treeHasNesting checks that child is rendered at greater indentation
// somewhere after parent in the tree text.
func treeHasNesting(tree, parent, child string) bool {
	lines := strings.Split(tree, "\n")
	parentIndent := -1
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		indent := len(l) - len(trimmed)
		if strings.HasPrefix(trimmed, parent) {
			parentIndent = indent
			continue
		}
		if parentIndent >= 0 && strings.HasPrefix(trimmed, child) {
			return indent > parentIndent
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// §5: profiling overhead.

// OverheadResult quantifies the slowdown of algorithmic profiling.
type OverheadResult struct {
	// PlainInstrs is the instruction count of the uninstrumented run.
	PlainInstrs uint64
	// ProfiledInstrs is the instruction count under the optimized plan
	// (includes executed probe instructions).
	ProfiledInstrs uint64
	// PlainNs and ProfiledNs are wall-clock nanoseconds (profiling work in
	// the listener dominates; the paper reports orders of magnitude).
	PlainNs    int64
	ProfiledNs int64
}

// Slowdown is the wall-clock ratio.
func (o *OverheadResult) Slowdown() float64 {
	if o.PlainNs == 0 {
		return 0
	}
	return float64(o.ProfiledNs) / float64(o.PlainNs)
}

// Overhead measures plain execution versus profiled execution of the
// running example. Timing is done by the caller-provided clock to keep
// this package deterministic-friendly.
func Overhead(sw Sweep, now func() int64) (*OverheadResult, error) {
	src := workloads.RunningExample(workloads.Random, sw.MaxSize, sw.Step, sw.Reps)
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{}

	// Interleaved best-of-3 per leg: a single cold sample at this scale is
	// dominated by warm-up and scheduler noise.
	for round := 0; round < 3; round++ {
		t0 := now()
		plain := vm.New(prog, vm.Config{Seed: sw.Seed})
		if err := plain.Run(); err != nil {
			return nil, err
		}
		if d := now() - t0; res.PlainNs == 0 || d < res.PlainNs {
			res.PlainNs = d
		}
		res.PlainInstrs = plain.InstrCount

		t1 := now()
		prof, err := algoprof.RunProgram(prog, algoprof.Config{Seed: sw.Seed})
		if err != nil {
			return nil, err
		}
		if d := now() - t1; res.ProfiledNs == 0 || d < res.ProfiledNs {
			res.ProfiledNs = d
		}
		res.ProfiledInstrs = prof.Instructions
	}
	return res, nil
}

// ModeOverheadResult compares the profiling modes on the running example:
// plain execution, exact events mode, and path-counter mode. This is the
// overhead-trajectory measurement — events mode is the ~3.5x baseline the
// path-counter rewrite bends down.
type ModeOverheadResult struct {
	// PlainNs / EventsNs / PathsNs are best-of-round wall-clock times.
	PlainNs  int64
	EventsNs int64
	PathsNs  int64
	// PlainInstrs / EventsInstrs / PathsInstrs are executed instruction
	// counts (probes and superinstructions included).
	PlainInstrs  uint64
	EventsInstrs uint64
	PathsInstrs  uint64
}

// EventsSlowdown is the events-mode wall-clock ratio over plain execution.
func (m *ModeOverheadResult) EventsSlowdown() float64 {
	if m.PlainNs == 0 {
		return 0
	}
	return float64(m.EventsNs) / float64(m.PlainNs)
}

// PathsSlowdown is the paths-mode wall-clock ratio over plain execution.
func (m *ModeOverheadResult) PathsSlowdown() float64 {
	if m.PlainNs == 0 {
		return 0
	}
	return float64(m.PathsNs) / float64(m.PlainNs)
}

// ModeOverhead measures the three modes interleaved, best-of-3 per leg
// (single cold samples at this scale are dominated by warm-up noise).
func ModeOverhead(sw Sweep, now func() int64) (*ModeOverheadResult, error) {
	src := workloads.RunningExample(workloads.Random, sw.MaxSize, sw.Step, sw.Reps)
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	res := &ModeOverheadResult{}
	for round := 0; round < 3; round++ {
		t0 := now()
		plain := vm.New(prog, vm.Config{Seed: sw.Seed})
		if err := plain.Run(); err != nil {
			return nil, err
		}
		if d := now() - t0; res.PlainNs == 0 || d < res.PlainNs {
			res.PlainNs = d
		}
		res.PlainInstrs = plain.InstrCount

		t1 := now()
		ev, err := algoprof.RunProgram(prog, algoprof.Config{Seed: sw.Seed, Mode: algoprof.ModeEvents})
		if err != nil {
			return nil, err
		}
		if d := now() - t1; res.EventsNs == 0 || d < res.EventsNs {
			res.EventsNs = d
		}
		res.EventsInstrs = ev.Instructions

		t2 := now()
		pt, err := algoprof.RunProgram(prog, algoprof.Config{Seed: sw.Seed, Mode: algoprof.ModePaths})
		if err != nil {
			return nil, err
		}
		if d := now() - t2; res.PathsNs == 0 || d < res.PathsNs {
			res.PathsNs = d
		}
		res.PathsInstrs = pt.Instructions
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Goldsmith baseline comparison.

// GoldsmithResult contrasts the basic-block baseline with algorithmic
// profiling on the same program.
type GoldsmithResult struct {
	// TopModel is the growth model of the steepest basic block.
	TopModel string
	// Report is the rendered top-5 listing.
	Report string
	// ManualRuns is the number of runs the user had to label with input
	// sizes by hand (algorithmic profiling needs zero).
	ManualRuns int
}

// Goldsmith runs the basic-block baseline over a size sweep of single-sort
// programs, supplying the input sizes manually as the FSE'07 approach
// requires. The sweep points are independent runs on the worker pool.
func Goldsmith(sw Sweep) (*GoldsmithResult, error) {
	var sizes []int
	for size := 4; size < sw.MaxSize; size += sw.Step {
		sizes = append(sizes, size)
	}
	runs := make([]bbprof.Run, len(sizes))
	err := forEachIndex(len(sizes), func(i int) error {
		size := sizes[i]
		src := workloads.RunningExample(workloads.Random, size+1, max(size, 1), 1)
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return err
		}
		p := bbprof.New(prog)
		machine := vm.New(prog, vm.Config{InstrHook: p.Hook, Seed: sw.Seed})
		if err := machine.Run(); err != nil {
			return err
		}
		runs[i] = p.Snapshot(size)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(runs) < 3 {
		return nil, fmt.Errorf("goldsmith: need at least 3 runs")
	}
	fits := bbprof.FitAll(runs)
	if len(fits) == 0 {
		return nil, fmt.Errorf("goldsmith: no fitted locations")
	}
	// Render against the last program (all runs share the same code).
	src := workloads.RunningExample(workloads.Random, 8, 7, 1)
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	return &GoldsmithResult{
		TopModel:   fits[0].Fit.Model.String(),
		Report:     bbprof.Render(prog, fits, 5),
		ManualRuns: len(runs),
	}, nil
}

// ---------------------------------------------------------------------------
// Ablations.

// AblationSizeStrategyResult compares capacity vs unique-element sizing on
// the partially used array of Listing 4.
type AblationSizeStrategyResult struct {
	CapacitySize int
	UniqueSize   int
}

// AblationSizeStrategy runs Listing 4 under both strategies.
func AblationSizeStrategy() (*AblationSizeStrategyResult, error) {
	res := &AblationSizeStrategyResult{}
	for _, unique := range []bool{false, true} {
		cfg := algoprof.Config{}
		if unique {
			cfg.SizeStrategy = algoprof.UniqueElements
		}
		prof, err := algoprof.Run(workloads.Listing4(12), cfg)
		if err != nil {
			return nil, err
		}
		p, _ := prof.Raw()
		reg := p.Registry()
		maxArr := 0
		for _, id := range reg.CanonicalIDs() {
			in := reg.Input(id)
			if strings.Contains(in.Label(), "array") && in.MaxSize > maxArr {
				maxArr = in.MaxSize
			}
		}
		if unique {
			res.UniqueSize = maxArr
		} else {
			res.CapacitySize = maxArr
		}
	}
	return res, nil
}

// AblationIdentifyResult compares the deferred identification optimization
// with eager per-access snapshots on a construction-heavy workload.
type AblationIdentifyResult struct {
	DeferredNs int64
	EagerNs    int64
	// SameInputs reports whether both modes identified the same number
	// of inputs with the same maximum size.
	SameInputs bool
}

// AblationIdentify measures both identification modes.
func AblationIdentify(size int, now func() int64) (*AblationIdentifyResult, error) {
	src := workloads.Listing4(size)
	res := &AblationIdentifyResult{}
	type outcome struct {
		inputs, maxSize int
	}
	var outs [2]outcome
	for i, eager := range []bool{false, true} {
		t0 := now()
		prof, err := algoprof.Run(src, algoprof.Config{EagerIdentify: eager})
		if err != nil {
			return nil, err
		}
		dt := now() - t0
		p, _ := prof.Raw()
		reg := p.Registry()
		o := outcome{inputs: len(reg.CanonicalIDs())}
		for _, id := range reg.CanonicalIDs() {
			if s := reg.Input(id).MaxSize; s > o.maxSize {
				o.maxSize = s
			}
		}
		outs[i] = o
		if eager {
			res.EagerNs = dt
		} else {
			res.DeferredNs = dt
		}
	}
	res.SameInputs = outs[0] == outs[1]
	return res, nil
}

// ---------------------------------------------------------------------------
// Extension: sort crossover study.

// CrossoverResult compares insertion sort against merge sort on the same
// input distribution: the per-run cost functions and the input size at
// which merge sort overtakes insertion sort.
type CrossoverResult struct {
	InsertionModel string
	InsertionCoeff float64
	MergeModel     string
	MergeCoeff     float64
	// CrossoverN is the smallest size at which the fitted merge-sort cost
	// drops below the fitted insertion-sort cost (0 if never within 4×
	// the sweep).
	CrossoverN int
	// InsertionAtMax and MergeAtMax evaluate both fits at the sweep's
	// largest size.
	InsertionAtMax float64
	MergeAtMax     float64
}

// Crossover profiles the merge-vs-insertion comparison program and
// derives the crossover point from the fitted cost functions.
func Crossover(sw Sweep) (*CrossoverResult, error) {
	prof, err := algoprof.Run(workloads.MergeVsInsertion(sw.MaxSize, sw.Step, sw.Reps),
		algoprof.Config{Seed: sw.Seed})
	if err != nil {
		return nil, err
	}
	ins := prof.Find("List.sort/loop1")
	if ins == nil {
		return nil, fmt.Errorf("crossover: insertion sort algorithm missing")
	}
	mrg := prof.Find("MSort.sort/recursion")
	if mrg == nil {
		return nil, fmt.Errorf("crossover: merge sort algorithm missing")
	}
	res := &CrossoverResult{}
	var insF, mrgF *algoprof.CostFunction
	for i := range ins.CostFunctions {
		if strings.Contains(ins.CostFunctions[i].InputLabel, "Node") {
			insF = &ins.CostFunctions[i]
		}
	}
	for i := range mrg.CostFunctions {
		if strings.Contains(mrg.CostFunctions[i].InputLabel, "MNode") {
			mrgF = &mrg.CostFunctions[i]
		}
	}
	if insF == nil || mrgF == nil {
		return nil, fmt.Errorf("crossover: cost functions missing (ins=%v mrg=%v)", insF, mrgF)
	}
	res.InsertionModel, res.InsertionCoeff = insF.Model, insF.Coeff
	res.MergeModel, res.MergeCoeff = mrgF.Model, mrgF.Coeff

	evalCF := func(cf *algoprof.CostFunction, n float64) float64 {
		var base float64
		switch cf.Model {
		case "1":
			base = 1
		case "log n":
			base = math.Log2(n + 1)
		case "n":
			base = n
		case "n log n":
			base = n * math.Log2(n+1)
		case "n^2":
			base = n * n
		case "n^3":
			base = n * n * n
		}
		return cf.Coeff*base + cf.Intercept
	}
	maxN := float64(sw.MaxSize)
	res.InsertionAtMax = evalCF(insF, maxN)
	res.MergeAtMax = evalCF(mrgF, maxN)
	// The crossover is the point past which merge sort stays ahead: one
	// plus the largest n at which insertion sort still wins. (Fitted
	// intercepts can create a spurious extra intersection at tiny n.)
	for n := 2; n <= sw.MaxSize*4; n++ {
		fn := float64(n)
		if evalCF(insF, fn) < evalCF(mrgF, fn) {
			res.CrossoverN = n + 1
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Overhead scaling.

// OverheadPoint is the profiling slowdown at one input size, measured
// both with the incremental snapshot memo (the default) and without it
// (the paper's measured behaviour, which §5 calls to optimize).
type OverheadPoint struct {
	Size       int
	PlainNs    int64
	ProfiledNs int64
	// NoMemoNs is the profiled wall time with snapshot memoization
	// disabled: every observation re-traverses its O(size) structure.
	NoMemoNs int64
}

// Slowdown is the wall-clock ratio at this size (memoized profiler).
func (p OverheadPoint) Slowdown() float64 {
	if p.PlainNs == 0 {
		return 0
	}
	return float64(p.ProfiledNs) / float64(p.PlainNs)
}

// NoMemoSlowdown is the wall-clock ratio with memoization disabled.
func (p OverheadPoint) NoMemoSlowdown() float64 {
	if p.PlainNs == 0 {
		return 0
	}
	return float64(p.NoMemoNs) / float64(p.PlainNs)
}

// OverheadSweep measures the profiling slowdown at increasing input sizes:
// without memoization, snapshots cost O(structure size) per repetition
// invocation, so the relative overhead grows with input size — the
// incremental-snapshot ablation quantifies what the memo buys. The
// workload is the running example in its sort-once-query-many form
// (RunningExampleScanned) on sorted input: sorted input keeps the sort's
// write-heavy phase linear (a written structure must be re-traversed in
// both modes), so the repeated read-only scans — the regime incremental
// snapshots target — carry the snapshot cost. The sweep points are
// independent and run on the worker pool; each point's
// plain/profiled/no-memo runs stay sequential so its ratios compare like
// with like. Each leg is timed best-of-3 to damp scheduler noise at the
// microsecond-scale small sizes.
func OverheadSweep(sizes []int, seed uint64, now func() int64) ([]OverheadPoint, error) {
	const rounds = 3
	out := make([]OverheadPoint, len(sizes))
	err := forEachIndex(len(sizes), func(i int) error {
		size := sizes[i]
		src := workloads.RunningExampleScanned(workloads.Sorted, size+1, max(size, 1), 2, 4*size)
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return err
		}
		best := func(prev, d int64) int64 {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		pt := OverheadPoint{Size: size}
		for round := 0; round < rounds; round++ {
			t0 := now()
			plain := vm.New(prog, vm.Config{Seed: seed})
			if err := plain.Run(); err != nil {
				return err
			}
			t1 := now()
			if _, err := algoprof.RunProgram(prog, algoprof.Config{Seed: seed}); err != nil {
				return err
			}
			t2 := now()
			if _, err := algoprof.RunProgram(prog, algoprof.Config{Seed: seed, DisableMemo: true}); err != nil {
				return err
			}
			t3 := now()
			pt.PlainNs = best(pt.PlainNs, t1-t0)
			pt.ProfiledNs = best(pt.ProfiledNs, t2-t1)
			pt.NoMemoNs = best(pt.NoMemoNs, t3-t2)
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
