package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"algoprof/internal/workloads"
)

// smallSweep keeps unit tests fast; the benchmarks use DefaultSweep.
var smallSweep = Sweep{MaxSize: 64, Step: 6, Reps: 2, Seed: 42}

func TestFigure1Random(t *testing.T) {
	res, err := Figure1(workloads.Random, smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "n^2" {
		t.Errorf("random input model = %s, want n^2", res.Model)
	}
	// Paper: steps = 0.25·size².
	if math.Abs(res.Coeff-0.25) > 0.08 {
		t.Errorf("random coefficient = %.3f, want ≈0.25", res.Coeff)
	}
	if len(res.Points) < 15 {
		t.Errorf("only %d points", len(res.Points))
	}
	if !strings.Contains(res.Plot, "*") {
		t.Error("plot must overlay the fitted curve")
	}
}

func TestFigure1Sorted(t *testing.T) {
	res, err := Figure1(workloads.Sorted, smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "n" {
		t.Errorf("sorted input model = %s, want n (already sorted: one pass)", res.Model)
	}
}

func TestFigure1Reversed(t *testing.T) {
	res, err := Figure1(workloads.Reversed, smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "n^2" {
		t.Errorf("reversed input model = %s, want n^2", res.Model)
	}
	// Paper: worst case ≈ 0.5·size².
	if math.Abs(res.Coeff-0.5) > 0.1 {
		t.Errorf("reversed coefficient = %.3f, want ≈0.5", res.Coeff)
	}
}

func TestFigure2Baseline(t *testing.T) {
	res, err := Figure2(smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 2: List.sort is the hottest method...
	if res.HottestExclusive != "List.sort" {
		t.Errorf("hottest = %s, want List.sort", res.HottestExclusive)
	}
	// ...and List.append / the Node constructor are the most called.
	if res.MostCalled != "List.append" && res.MostCalled != "Node.Node" {
		t.Errorf("most called = %s, want List.append or Node.Node", res.MostCalled)
	}
	if !strings.Contains(res.Tree, "Main.main") {
		t.Error("tree missing root context")
	}
}

func TestFigure3Tree(t *testing.T) {
	res, err := Figure3(smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoopCount != 5 {
		t.Errorf("repetition tree has %d loop nodes, want 5 (Figure 3)\n%s", res.LoopCount, res.Tree)
	}
	if !strings.Contains(res.SortDescription, "Modification of a Node-based recursive structure") {
		t.Errorf("sort description = %q", res.SortDescription)
	}
	if !strings.Contains(res.ConstructDescription, "Construction of a Node-based recursive structure") {
		t.Errorf("construct description = %q", res.ConstructDescription)
	}
	if res.SortModel != "n^2" {
		t.Errorf("sort model = %s, want n^2", res.SortModel)
	}
}

func TestTable1Experiment(t *testing.T) {
	outcomes, err := Table1(24, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 18 {
		t.Fatalf("%d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if !o.Result.OK() {
			t.Errorf("%s: I=%v S=%v G=%v (%s)", o.Row.Name(),
				o.Result.InputsOK, o.Result.SizeOK, o.Result.GroupOK, o.Result.GroupDetail)
		}
	}
	rendered := RenderTable1(outcomes)
	if !strings.Contains(rendered, "Struct") || !strings.Contains(rendered, "graph") {
		t.Errorf("rendered table:\n%s", rendered)
	}
}

func TestFigure45GrowthShapes(t *testing.T) {
	res, err := Figure45(Sweep{MaxSize: 72, Step: 6, Reps: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Grouped {
		t.Error("append and grow loops must form one algorithm (Figure 4)")
	}
	if res.NaiveModel != "n^2" {
		t.Errorf("naive growth model = %s, want n^2 (Figure 5)", res.NaiveModel)
	}
	if res.IdealModel != "n" && res.IdealModel != "n log n" {
		t.Errorf("ideal growth model = %s, want linear-ish (Figure 5)", res.IdealModel)
	}
}

func TestParadigmAgnosticism(t *testing.T) {
	res, err := Paradigm(smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if res.ImperativeModel != "n^2" {
		t.Errorf("imperative model = %s, want n^2", res.ImperativeModel)
	}
	// The functional insert does ≈ k/2 steps per invocation on a size-k
	// accumulator: linear per repetition, like the imperative inner loop.
	if res.FunctionalInsertModel != "n" {
		t.Errorf("functional insert model = %s, want n", res.FunctionalInsertModel)
	}
	if res.FunctionalInsertCoeff < 0.25 || res.FunctionalInsertCoeff > 0.9 {
		t.Errorf("insert coefficient %.3f, want ≈0.5", res.FunctionalInsertCoeff)
	}
	// Total work agrees across paradigms (both ≈ 0.25·Σn²).
	ratio := float64(res.FunctionalTotalSteps) / float64(res.ImperativeTotalSteps)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("total steps ratio %.2f (imp %d, fun %d)",
			ratio, res.ImperativeTotalSteps, res.FunctionalTotalSteps)
	}
	// The value-copying functional sort constructs fresh nodes.
	if !strings.Contains(res.FunctionalDescription, "Construction") {
		t.Errorf("functional insert should construct: %q", res.FunctionalDescription)
	}
	if !res.NestedRecursions {
		t.Error("insert recursion must nest inside sort recursion (two nested repetitions)")
	}
}

func TestOverheadExperiment(t *testing.T) {
	res, err := Overhead(Sweep{MaxSize: 48, Step: 6, Reps: 1, Seed: 1}, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfiledInstrs <= res.PlainInstrs {
		t.Errorf("profiled instruction count %d should exceed plain %d (probes execute)",
			res.ProfiledInstrs, res.PlainInstrs)
	}
	if res.Slowdown() < 1 {
		t.Errorf("slowdown %.2f < 1 is implausible", res.Slowdown())
	}
}

func TestGoldsmithBaseline(t *testing.T) {
	res, err := Goldsmith(Sweep{MaxSize: 64, Step: 8, Reps: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopModel != "n^2" {
		t.Errorf("steepest block model = %s, want n^2 (the sort inner block)", res.TopModel)
	}
	if res.ManualRuns < 3 {
		t.Errorf("manual runs = %d", res.ManualRuns)
	}
	if !strings.Contains(res.Report, "block") {
		t.Errorf("report:\n%s", res.Report)
	}
}

func TestAblationSizeStrategy(t *testing.T) {
	res, err := AblationSizeStrategy()
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacitySize != 1000 {
		t.Errorf("capacity size = %d, want 1000", res.CapacitySize)
	}
	// constructPartiallyUsedArray writes 10 slots with distinct values.
	if res.UniqueSize != 10 {
		t.Errorf("unique size = %d, want 10 (the used slots)", res.UniqueSize)
	}
}

func TestAblationIdentify(t *testing.T) {
	res, err := AblationIdentify(300, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		t.Fatal(err)
	}
	if !res.SameInputs {
		t.Error("identification modes must agree on inputs and sizes")
	}
	// Eager identification is asymptotically worse on constructions; on a
	// 300-element build it must not be faster by more than noise.
	if res.EagerNs < res.DeferredNs/4 {
		t.Errorf("eager (%dns) unexpectedly much faster than deferred (%dns)",
			res.EagerNs, res.DeferredNs)
	}
}

func TestCrossoverStudy(t *testing.T) {
	res, err := Crossover(Sweep{MaxSize: 96, Step: 6, Reps: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.InsertionModel != "n^2" {
		t.Errorf("insertion model = %s, want n^2", res.InsertionModel)
	}
	if res.MergeModel != "n log n" && res.MergeModel != "n" {
		t.Errorf("merge model = %s, want n log n (or n on short ranges)", res.MergeModel)
	}
	// Merge sort must win at the top of the sweep...
	if res.MergeAtMax >= res.InsertionAtMax {
		t.Errorf("merge %.0f !< insertion %.0f at max size", res.MergeAtMax, res.InsertionAtMax)
	}
	// ...with a crossover at small-but-positive size.
	if res.CrossoverN <= 2 || res.CrossoverN > 96 {
		t.Errorf("crossover at n=%d, want within the sweep", res.CrossoverN)
	}
}

func TestOverheadSweepGrows(t *testing.T) {
	pts, err := OverheadSweep([]int{16, 64, 256}, 3, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Slowdown() < 1 {
			t.Errorf("size %d: slowdown %.2f < 1", p.Size, p.Slowdown())
		}
	}
}
