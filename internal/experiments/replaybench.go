package experiments

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"algoprof"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
	"algoprof/internal/workloads"
)

// benchFrameSize keeps replay-benchmark traces many-framed (the parallel
// replay's work unit is the frame chunk); the writer default of 64 KiB
// would leave small benchmark traces with too few frames to shard.
const benchFrameSize = 4 << 10

// ReplayBenchPoint is one worker count's parallel-replay measurement.
type ReplayBenchPoint struct {
	// Workers is the decode worker count.
	Workers int `json:"workers"`
	// ReplayNs is the best-of-reps wall time of a full trace replay.
	ReplayNs int64 `json:"replay_ns"`
	// Speedup is sequential time / this time.
	Speedup float64 `json:"speedup"`
	// Identical reports that the dispatched record stream matched the
	// sequential replay's exactly (order-sensitive digest).
	Identical bool `json:"identical"`
}

// ReplayBenchResult is the replay + diff throughput benchmark backing
// BENCH_replay.json.
type ReplayBenchResult struct {
	// Trace shape.
	Frames      int    `json:"frames"`
	Checkpoints int    `json:"checkpoints"`
	Records     uint64 `json:"records"`
	TraceBytes  int64  `json:"trace_bytes"`

	// Raw trace replay (decode + heap binding + dispatch to a no-op
	// consumer): sequential baseline and parallel points.
	SeqNs  int64              `json:"seq_ns"`
	Points []ReplayBenchPoint `json:"points"`

	// End-to-end profile replay (full profiler attached) at the largest
	// worker count, against the sequential profile replay.
	ProfileSeqNs      int64   `json:"profile_seq_ns"`
	ProfileParNs      int64   `json:"profile_par_ns"`
	ProfileParWorkers int     `json:"profile_par_workers"`
	ProfileSpeedup    float64 `json:"profile_speedup"`
	// ProfileIdentical reports the two profiles' JSON serializations were
	// byte-identical.
	ProfileIdentical bool `json:"profile_identical"`

	// Merkle-indexed diff vs the full byte scan, over an identical trace
	// pair (the fleet's common case).
	DiffMerkleNs    int64   `json:"diff_merkle_ns"`
	DiffFullNs      int64   `json:"diff_full_ns"`
	DiffMerkleBytes int64   `json:"diff_merkle_bytes"`
	DiffFullBytes   int64   `json:"diff_full_bytes"`
	DiffSpeedup     float64 `json:"diff_speedup"`
}

// replayDigest folds a dispatched record stream into an order-sensitive
// digest, so two replays can be compared without storing either stream.
type replayDigest struct{ h uint64 }

func (d *replayDigest) add(r *pipeline.Record) {
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	put(d.h) // chain: order matters
	put(uint64(r.Op))
	put(uint64(uint32(r.ID)))
	put(uint64(r.Ent))
	put(uint64(r.Aux))
	put(r.Clock)
	put(uint64(r.Kx))
	put(uint64(r.KI))
	f.Write([]byte(r.KS))
	if r.E1 != nil {
		put(r.E1.EntityID())
	}
	if r.E2 != nil {
		put(r.E2.EntityID())
	}
	d.h = f.Sum64()
}

// bestOf runs f reps times and returns the fastest wall time — the standard
// answer to scheduler noise on shared runners.
func bestOf(reps int, now func() int64, f func() error) (int64, error) {
	best := int64(-1)
	for i := 0; i < reps; i++ {
		t0 := now()
		if err := f(); err != nil {
			return 0, err
		}
		if dt := now() - t0; best < 0 || dt < best {
			best = dt
		}
	}
	return best, nil
}

// ReplayBench records one trace of the merge-vs-insertion workload and
// measures (a) sequential vs parallel replay throughput at each worker
// count, asserting stream identity, (b) end-to-end profile replay at the
// largest worker count, asserting profile identity, and (c) the
// Merkle-indexed trace diff against the full byte scan it replaces.
func ReplayBench(sw Sweep, workerSet []int, now func() int64) (*ReplayBenchResult, error) {
	if len(workerSet) == 0 {
		workerSet = []int{1, 2, 4}
	}
	src := workloads.MergeVsInsertion(sw.MaxSize, sw.Step, sw.Reps)
	cfg := algoprof.Config{Seed: sw.Seed}
	var buf bytes.Buffer
	if _, err := algoprof.Record(src, cfg, &buf, trace.WriterOptions{
		Compress:  true,
		FrameSize: benchFrameSize,
	}); err != nil {
		return nil, err
	}
	r, err := trace.NewReader(buf.Bytes())
	if err != nil {
		return nil, err
	}
	res := &ReplayBenchResult{
		Frames:      r.NumFrames(),
		Checkpoints: len(r.Checkpoints()),
		Records:     r.Stats().Records,
		TraceBytes:  int64(buf.Len()),
	}
	const reps = 3
	noop := func(*pipeline.Record) {}
	ctx := context.Background()

	// Sequential baseline: timing with a no-op consumer, digest untimed.
	if res.SeqNs, err = bestOf(reps, now, func() error { return r.Replay(noop) }); err != nil {
		return nil, err
	}
	var seqDig replayDigest
	if err := r.Replay(seqDig.add); err != nil {
		return nil, err
	}

	for _, w := range workerSet {
		ns, err := bestOf(reps, now, func() error { return r.ReplayParallel(ctx, w, noop) })
		if err != nil {
			return nil, err
		}
		var dig replayDigest
		if err := r.ReplayParallel(ctx, w, dig.add); err != nil {
			return nil, err
		}
		pt := ReplayBenchPoint{Workers: w, ReplayNs: ns, Identical: dig.h == seqDig.h}
		if ns > 0 {
			pt.Speedup = float64(res.SeqNs) / float64(ns)
		}
		res.Points = append(res.Points, pt)
	}

	// End-to-end profile replay at the largest worker count.
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	maxW := workerSet[len(workerSet)-1]
	res.ProfileParWorkers = maxW
	var seqJSON, parJSON []byte
	if res.ProfileSeqNs, err = bestOf(reps, now, func() error {
		p, err := algoprof.ReplayProgram(prog, cfg, r)
		if err != nil {
			return err
		}
		seqJSON, err = p.JSON()
		return err
	}); err != nil {
		return nil, err
	}
	if res.ProfileParNs, err = bestOf(reps, now, func() error {
		p, err := algoprof.ReplayProgramParallel(ctx, prog, cfg, r, maxW)
		if err != nil {
			return err
		}
		parJSON, err = p.JSON()
		return err
	}); err != nil {
		return nil, err
	}
	res.ProfileIdentical = bytes.Equal(seqJSON, parJSON)
	if res.ProfileParNs > 0 {
		res.ProfileSpeedup = float64(res.ProfileSeqNs) / float64(res.ProfileParNs)
	}

	// Diff: an identical pair, compared via the Merkle footers alone vs the
	// full scan the footer replaces.
	tmp, err := os.MkdirTemp("", "algoprof-replaybench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	oldPath := filepath.Join(tmp, "old.bin")
	newPath := filepath.Join(tmp, "new.bin")
	if err := os.WriteFile(oldPath, buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if err := os.WriteFile(newPath, buf.Bytes(), 0o644); err != nil {
		return nil, err
	}
	var md, fd *trace.TraceDiff
	if res.DiffMerkleNs, err = bestOf(reps, now, func() error {
		md, err = trace.DiffTraceFiles(oldPath, newPath)
		return err
	}); err != nil {
		return nil, err
	}
	if res.DiffFullNs, err = bestOf(reps, now, func() error {
		fd, err = trace.DiffTraceFilesFull(oldPath, newPath)
		return err
	}); err != nil {
		return nil, err
	}
	if !md.Identical || !fd.Identical {
		return nil, fmt.Errorf("replay bench: identical traces diffed as changed (merkle=%v full=%v)", md.Identical, fd.Identical)
	}
	res.DiffMerkleBytes = md.BytesReadOld + md.BytesReadNew
	res.DiffFullBytes = fd.BytesReadOld + fd.BytesReadNew
	if res.DiffMerkleNs > 0 {
		res.DiffSpeedup = float64(res.DiffFullNs) / float64(res.DiffMerkleNs)
	}
	return res, nil
}
