package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"algoprof"
	"algoprof/internal/bbprof"
	"algoprof/internal/cct"
	"algoprof/internal/core"
	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/verify"
	"algoprof/internal/vm"
	"algoprof/internal/workloads"
)

// ---------------------------------------------------------------------------
// Single-pass backend comparison: one execution feeds the algorithmic
// profiler, the CCT baseline, and the basic-block baseline through the
// event transport, where comparing backends previously re-ran the workload
// once per listener.

// Backends is the result of one combined execution pass.
type Backends struct {
	// Profile is the algorithmic profile (the core consumed the stream
	// filtered to the optimized plan, exactly as a dedicated run would).
	Profile *algoprof.Profile
	// CCT is the finished calling-context-tree baseline.
	CCT *cct.Profiler
	// BBRun is the basic-block baseline's counts for this run.
	BBRun bbprof.Run
	// Instructions is the executed instruction count.
	Instructions uint64

	ins *instrument.Instrumented
}

// CCTRender renders the CCT against the instrumented program.
func (b *Backends) CCTRender() string { return cct.Render(b.CCT, b.ins.Prog) }

// HottestExclusive is the CCT's hottest method by exclusive cost.
func (b *Backends) HottestExclusive() string {
	flat := b.CCT.Flat()
	if len(flat) == 0 {
		return ""
	}
	return b.ins.Prog.Sem.MethodByID(flat[0].MethodID).QualifiedName()
}

// TopBlock names the hottest basic block by raw execution count.
func (b *Backends) TopBlock() string {
	var best string
	var bestCount int64 = -1
	locs := make([]bbprof.Location, 0, len(b.BBRun.Counts))
	for l := range b.BBRun.Counts {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].MethodID != locs[j].MethodID {
			return locs[i].MethodID < locs[j].MethodID
		}
		return locs[i].Block < locs[j].Block
	})
	for _, l := range locs {
		if c := b.BBRun.Counts[l]; c > bestCount {
			bestCount = c
			best = fmt.Sprintf("%s block %d (%d executions)",
				b.ins.Prog.Sem.MethodByID(l.MethodID).QualifiedName(), l.Block, c)
		}
	}
	return best
}

// RunBackends executes src once and feeds all three backends from the one
// event stream. The VM runs under the union of the consumers' plans and
// the core consumer filters records down to the optimized plan, so its
// profile is identical to a dedicated optimized run. pipelined selects
// the ring-buffer transport; otherwise the same fan-out runs inline (the
// Synchronous ablation).
func RunBackends(src string, seed uint64, pipelined bool) (*Backends, error) {
	// A deep ring with large publish batches: the comparison workloads are
	// event-dense, and on one CPU every producer stall or consumer wakeup
	// is a context switch, so fewer/larger handoffs beat the package
	// defaults (which stay small for lightweight probe sessions).
	return runBackends(src, seed, backendsConfig(pipelined), false)
}

// RunBackendsVerified is RunBackends with the online invariant verifier
// riding the same stream as a fourth consumer. Beyond the stream
// well-formedness checks, the verifier cross-checks the backends against
// each other — repetition-tree accounting against the stream's loop/method
// events, and the CCT's call counts against the stream's method entries —
// so a bug that desynchronizes one backend surfaces as a typed
// *verify.Error instead of a silently inconsistent comparison. The
// benchmark paths stay on the unverified RunBackends.
func RunBackendsVerified(src string, seed uint64, pipelined bool) (*Backends, error) {
	return runBackends(src, seed, backendsConfig(pipelined), true)
}

func backendsConfig(pipelined bool) pipeline.Config {
	return pipeline.Config{
		Synchronous: !pipelined,
		BufferSize:  1 << 15,
		Batch:       2048,
	}
}

func runBackends(src string, seed uint64, tcfg pipeline.Config, verified bool) (*Backends, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}
	insFull, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		return nil, err
	}
	insOpt, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		return nil, err
	}

	// The VM emits under the union of what any consumer needs: every
	// method (the CCT baseline) plus the optimized plan's fields, allocs,
	// arrays and io (the core). Events no consumer would act on — e.g.
	// accesses to non-recursive value fields, which only the full plan
	// carries — never enter the stream.
	union := events.NewEmptyPlan(len(insFull.Plan.MethodEntryExit),
		len(insFull.Plan.FieldAccess), len(insFull.Plan.AllocClass))
	for m := range union.MethodEntryExit {
		union.MethodEntryExit[m] = true
	}
	copy(union.FieldAccess, insOpt.Plan.FieldAccess)
	copy(union.AllocClass, insOpt.Plan.AllocClass)
	union.Arrays = insOpt.Plan.Arrays
	union.IO = insOpt.Plan.IO

	tp := pipeline.New(tcfg)
	coreProf := core.NewProfiler(insOpt, core.Options{})
	tp.Add("core", coreProf, pipeline.ConsumerOptions{HeapReader: true, Plan: insOpt.Plan})
	var cctCons *pipeline.Consumer
	cctProf := cct.New(func() uint64 { return cctCons.Clock() })
	cctCons = tp.Add("cct", cctProf, pipeline.ConsumerOptions{})
	// The basic-block counter stays inline on the VM goroutine: the
	// per-instruction stream is orders of magnitude denser than the event
	// stream, and the hook is a private dense-slice increment with no heap
	// reads, so routing it through the ring would swamp the transport win
	// without buying any isolation.
	bb := bbprof.New(insFull.Prog)
	var chk *verify.Checker
	if verified {
		// The checker taps the raw (union-plan) stream: the loop events it
		// sees are exactly the tree's, and its method-entry counts bound the
		// optimized tree from above while matching the CCT exactly.
		chk = verify.NewChecker()
		tp.Add("verify", chk, pipeline.ConsumerOptions{})
	}

	pr := tp.Producer()
	machine := vm.New(insFull.Prog, vm.Config{
		Listener:  pr,
		Plan:      union,
		InstrHook: bb.Hook,
		PreWrite:  pr.Barrier,
		Seed:      seed,
	})
	pr.BindClock(&machine.InstrCount)
	tp.Start()
	runErr := machine.Run()
	if cerr := tp.Close(); cerr != nil && runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		return nil, runErr
	}
	coreProf.Finish()
	cctProf.Finish()
	if errs := coreProf.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("runbackends: internal profiling error: %w", errs[0])
	}
	if chk != nil {
		chk.Finish(false)
		chk.Add(verify.CheckTree(coreProf, false))
		chk.Add(verify.AgreeStream(chk, coreProf))
		chk.Add(verify.AgreeCCT(chk, cctProf.Flat()))
		if err := chk.Err(); err != nil {
			return nil, err
		}
	}

	profile := algoprof.FromProfiler(coreProf)
	profile.Instructions = machine.InstrCount
	return &Backends{
		Profile:      profile,
		CCT:          cctProf,
		BBRun:        bb.Snapshot(0),
		Instructions: machine.InstrCount,
		ins:          insFull,
	}, nil
}

// CompareResult is the cmd/paper "compare" section: all three backends on
// the running example from one execution pass.
type CompareResult struct {
	// SortModel / SortCoeff is the algorithmic profiler's fitted cost
	// function for the sort algorithm.
	SortModel string
	SortCoeff float64
	// HottestExclusive is the CCT baseline's hottest method.
	HottestExclusive string
	// TopBlock is the basic-block baseline's hottest block.
	TopBlock string
	// Passes is how many workload executions the comparison used (1; the
	// pre-pipeline comparison needed 3).
	Passes int
	// Identical reports that the pipelined pass produced byte-identical
	// backend outputs to an inline synchronous fan-out pass.
	Identical bool
}

// Compare runs the backend comparison pipelined, re-runs it synchronously,
// and checks the outputs match byte for byte.
func Compare(sw Sweep) (*CompareResult, error) {
	src := workloads.RunningExample(workloads.Random, sw.MaxSize, sw.Step, sw.Reps)
	piped, err := RunBackends(src, sw.Seed, true)
	if err != nil {
		return nil, err
	}
	inline, err := RunBackends(src, sw.Seed, false)
	if err != nil {
		return nil, err
	}
	res := &CompareResult{
		HottestExclusive: piped.HottestExclusive(),
		TopBlock:         piped.TopBlock(),
		Passes:           1,
		Identical:        BackendsIdentical(piped, inline),
	}
	if alg := piped.Profile.Find("List.sort/loop1"); alg != nil {
		for _, cf := range alg.CostFunctions {
			if strings.Contains(cf.InputLabel, "Node") {
				res.SortModel, res.SortCoeff = cf.Model, cf.Coeff
			}
		}
	}
	if res.SortModel == "" {
		return nil, fmt.Errorf("compare: sort cost function not found")
	}
	return res, nil
}

// BackendsIdentical compares two combined runs' rendered outputs byte for
// byte: profile tree + JSON, CCT render, and basic-block counts.
func BackendsIdentical(a, b *Backends) bool {
	return BackendsFingerprint(a) == BackendsFingerprint(b)
}

// BackendsFingerprint renders every backend output of a combined run into
// one string for byte-identity comparison.
func BackendsFingerprint(b *Backends) string {
	var sb strings.Builder
	sb.WriteString(b.Profile.Tree())
	sb.WriteByte('\n')
	js, _ := b.Profile.JSON()
	sb.Write(js)
	sb.WriteByte('\n')
	sb.WriteString(b.CCTRender())
	sb.WriteByte('\n')
	locs := make([]bbprof.Location, 0, len(b.BBRun.Counts))
	for l := range b.BBRun.Counts {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].MethodID != locs[j].MethodID {
			return locs[i].MethodID < locs[j].MethodID
		}
		return locs[i].Block < locs[j].Block
	})
	for _, l := range locs {
		fmt.Fprintf(&sb, "%d.%d=%d\n", l.MethodID, l.Block, b.BBRun.Counts[l])
	}
	fmt.Fprintf(&sb, "instrs=%d\n", b.Instructions)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Pipeline benchmark (BENCH_pipeline.json).

// PipelinePoint measures the event-transport configurations at one
// workload size.
type PipelinePoint struct {
	Size int
	// Passes is the number of read-only sortedness scans per constructed
	// list (the sort-once-query-many workload shape); scaled with Size so
	// scan work and sort work keep a fixed ratio across the sweep.
	Passes int
	// ThreePassNs runs the workload three times, once per backend, each
	// with inline dispatch — the pre-pipeline comparison cost.
	ThreePassNs int64
	// SyncFanoutNs is one pass with inline fan-out to all three backends.
	SyncFanoutNs int64
	// PipelinedNs is one pass with the ring-buffer transport fanning out
	// to all three backends.
	PipelinedNs int64
	// SoloSyncNs / SoloPipelinedNs profile with the core as only listener
	// (inline vs transport) — the transport's own overhead.
	SoloSyncNs      int64
	SoloPipelinedNs int64
	// SpeedupRatio is the median over rounds of the per-round
	// three-pass/pipelined ratio. Comparing legs of the same round makes
	// the ratio robust to machine-speed drift between rounds, which
	// best-of-N leg times are not.
	SpeedupRatio float64
	// Identical reports byte-identical pipelined vs synchronous outputs.
	Identical bool
}

// Speedup is the single-pass multi-listener gain over three passes: the
// median per-round ratio (see SpeedupRatio).
func (p PipelinePoint) Speedup() float64 { return p.SpeedupRatio }

// PipelineBench measures the transport configurations across workload
// sizes. Per point it runs several interleaved rounds of all five legs;
// the reported leg times are each leg's best round (the floor estimate),
// and the headline speedup is the median per-round ratio, which holds up
// when the machine's speed drifts between rounds.
//
// The workload is the sort-once-query-many shape (RunningExampleScanned):
// each constructed list is sorted once and then scanned 8*size times. This
// is the regime the transport targets — the dedicated CCT and basic-block
// baseline passes each re-execute the whole scan phase, so the single-pass
// fan-out saves two full re-executions; the write-heavy regime, where the
// core's snapshot traversals dominate every configuration, is covered by
// the overhead sweep (BENCH_overhead.json).
func PipelineBench(sizes []int, seed uint64, now func() int64) ([]PipelinePoint, error) {
	const rounds = 7
	out := make([]PipelinePoint, len(sizes))
	err := forEachIndex(len(sizes), func(i int) error {
		size := sizes[i]
		passes := 8 * size
		src := workloads.RunningExampleScanned(workloads.Random, size+1, max(size, 1), 2, passes)
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return err
		}
		// leg times one configuration, keeping the per-leg minimum. The
		// forced GC keeps one leg's allocation debt from being collected
		// on a later leg's clock — without it, leg-to-leg ratios swing
		// wildly run to run.
		leg := func(prev *int64, f func() error) (int64, error) {
			runtime.GC()
			t0 := now()
			if err := f(); err != nil {
				return 0, err
			}
			d := now() - t0
			if *prev == 0 || d < *prev {
				*prev = d
			}
			return d, nil
		}
		pt := PipelinePoint{Size: size, Passes: passes, Identical: true}
		ratios := make([]float64, 0, rounds)
		for round := 0; round < rounds; round++ {
			// Leg 1: three separate inline passes (core, cct, bb).
			threeNs, err := leg(&pt.ThreePassNs, func() error {
				if _, err := algoprof.RunProgram(prog, algoprof.Config{Seed: seed}); err != nil {
					return err
				}
				if err := cctPass(src, seed); err != nil {
					return err
				}
				return bbPass(src, seed)
			})
			if err != nil {
				return err
			}
			var inline, piped *Backends
			if _, err = leg(&pt.SyncFanoutNs, func() error {
				inline, err = RunBackends(src, seed, false)
				return err
			}); err != nil {
				return err
			}
			pipedNs, err := leg(&pt.PipelinedNs, func() error {
				piped, err = RunBackends(src, seed, true)
				return err
			})
			if err != nil {
				return err
			}
			ratios = append(ratios, float64(threeNs)/float64(pipedNs))
			if _, err = leg(&pt.SoloSyncNs, func() error {
				_, err := algoprof.RunProgram(prog, algoprof.Config{Seed: seed})
				return err
			}); err != nil {
				return err
			}
			if _, err = leg(&pt.SoloPipelinedNs, func() error {
				_, err := algoprof.RunProgram(prog, algoprof.Config{Seed: seed, Pipelined: true})
				return err
			}); err != nil {
				return err
			}
			if !BackendsIdentical(inline, piped) {
				pt.Identical = false
			}
		}
		sort.Float64s(ratios)
		pt.SpeedupRatio = ratios[len(ratios)/2]
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// cctPass is a dedicated CCT baseline pass (the Figure 2 setup).
func cctPass(src string, seed uint64) error {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return err
	}
	ins, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		return err
	}
	var machine *vm.VM
	p := cct.New(func() uint64 { return machine.InstrCount })
	machine = vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: seed})
	if err := machine.Run(); err != nil {
		return err
	}
	p.Finish()
	return nil
}

// bbPass is a dedicated basic-block baseline pass (the Goldsmith setup).
func bbPass(src string, seed uint64) error {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return err
	}
	p := bbprof.New(prog)
	machine := vm.New(prog, vm.Config{InstrHook: p.Hook, Seed: seed})
	if err := machine.Run(); err != nil {
		return err
	}
	p.Snapshot(0)
	return nil
}
