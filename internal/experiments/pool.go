// Persistent worker pool. forEachIndex (parallel.go) spins workers up per
// sweep and tears them down when the sweep returns — the right shape for a
// one-shot CLI, the wrong one for a daemon that fields profiling jobs for
// days: per-job worker churn, no shared queue bound, and nothing to drain
// on shutdown. Pool is the long-lived form: a fixed set of workers over a
// bounded FIFO queue, with an idempotent, context-aware shutdown that a
// server can call from a signal handler without leaking workers — even
// when a job is still running and the shutdown context has already
// expired.
package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Typed pool errors. Submitters branch on these: a full queue is
// backpressure (retry later), a closed pool is a lifecycle fact (stop
// submitting).
var (
	// ErrPoolClosed reports a submit after Shutdown began.
	ErrPoolClosed = errors.New("experiments: pool closed")
	// ErrPoolFull reports a submit that found the bounded queue full.
	ErrPoolFull = errors.New("experiments: pool queue full")
)

// JobPool is the execution surface the profiling daemon programs against:
// bounded non-blocking intake plus drainable shutdown. Pool is the local
// in-process implementation; the dispatch layer satisfies the same
// contract when job execution happens on remote workers, so the daemon
// does not care where its jobs run.
type JobPool interface {
	TrySubmit(fn func()) error
	Shutdown(ctx context.Context) error
	Done() <-chan struct{}
	Workers() int
	QueueCap() int
	QueueLen() int
}

var _ JobPool = (*Pool)(nil)

// Pool is a fixed-size worker pool over a bounded FIFO job queue. Jobs are
// dispatched in submission order (the queue is a channel), so result
// ordering is deterministic for callers that care — each job writes to its
// own slot, exactly like forEachIndex's indexed-results contract.
type Pool struct {
	jobs    chan func()
	done    chan struct{} // closed once every worker has exited
	workers int

	mu     sync.Mutex
	closed bool
}

// NewPool starts workers goroutines over a queue holding up to queue
// pending jobs (workers < 1 means GOMAXPROCS; queue < 0 means 0, i.e.
// hand-off only).
func NewPool(workers, queue int) *Pool {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue < 0 {
		queue = 0
	}
	p := &Pool{jobs: make(chan func(), queue), done: make(chan struct{}), workers: workers}
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	go func() {
		wg.Wait()
		close(p.done)
	}()
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// QueueCap returns the job queue's capacity.
func (p *Pool) QueueCap() int { return cap(p.jobs) }

// QueueLen returns the number of jobs queued and not yet picked up.
func (p *Pool) QueueLen() int { return len(p.jobs) }

// TrySubmit enqueues fn without blocking. It returns ErrPoolClosed once
// Shutdown has begun and ErrPoolFull when the bounded queue is at
// capacity — never both silently dropping the job.
func (p *Pool) TrySubmit(fn func()) error {
	// The lock is held across the send so a concurrent Shutdown cannot
	// close the channel between the check and the enqueue.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.jobs <- fn:
		return nil
	default:
		return ErrPoolFull
	}
}

// Shutdown stops intake and waits for every queued and running job to
// finish. It is idempotent — any number of callers, concurrently or in
// sequence, each get the same answer — and context-aware: when ctx expires
// first, Shutdown returns ctx.Err() immediately but the workers keep
// draining in the background and exit on their own, so an impatient caller
// never leaks them. A later Shutdown call with a fresh context resumes
// waiting on the same drain.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done exposes the drained signal: the channel closes once every worker
// has exited. Servers select on it next to their own shutdown context.
func (p *Pool) Done() <-chan struct{} { return p.done }
