//go:build race

package experiments

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation distorts relative timings; timing-based assertions
// skip themselves when it is set.
const raceEnabled = true
