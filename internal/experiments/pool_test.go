package experiments

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobsInOrder(t *testing.T) {
	p := NewPool(1, 16)
	var got []int
	var mu sync.Mutex
	for i := 0; i < 10; i++ {
		i := i
		if err := p.TrySubmit(func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("single-worker pool ran jobs out of order: %v", got)
		}
	}
}

func TestPoolQueueBound(t *testing.T) {
	p := NewPool(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func() { close(started); <-block }); err != nil {
		t.Fatalf("submit blocker: %v", err)
	}
	<-started // the worker holds the blocker; the queue is empty again
	if err := p.TrySubmit(func() {}); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("submit over capacity: got %v, want ErrPoolFull", err)
	}
	close(block)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestPoolShutdownIdempotentCtxAware is the regression test for the
// daemon-sharing contract: Shutdown may be called repeatedly and
// concurrently, an expired context returns an error without leaking or
// abandoning the drain, and a later call observes the completed drain.
func TestPoolShutdownIdempotentCtxAware(t *testing.T) {
	p := NewPool(2, 4)
	block := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int64
	if err := p.TrySubmit(func() { close(started); <-block; ran.Add(1) }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := p.TrySubmit(func() { ran.Add(1) }); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started

	// Impatient shutdown while a job hangs: ctx already cancelled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("shutdown with expired ctx: got %v, want context.Canceled", err)
	}
	// Intake is closed from the first call on, and stays closed.
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("submit after shutdown: got %v, want ErrPoolClosed", err)
	}

	// Concurrent second and third shutdowns with live contexts: they must
	// all resolve once the hung job finishes, all with nil.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = p.Shutdown(context.Background())
		}()
	}
	close(block)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent shutdown %d: %v", i, err)
		}
	}
	if n := ran.Load(); n != 2 {
		t.Fatalf("jobs ran %d times, want 2 (queued work must drain, not drop)", n)
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done() not closed after successful shutdown")
	}
	// Shutdown after the drain completed stays nil (idempotence).
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeat shutdown after drain: %v", err)
	}
}

func TestPoolShutdownWithEmptyQueueIsImmediate(t *testing.T) {
	p := NewPool(4, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown idle pool: %v", err)
	}
}
