package experiments

import (
	"fmt"
	"testing"

	"algoprof"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/workloads"
)

// corpus is the workload set the equivalence suite runs: every program the
// repo's experiments exercise, small enough to keep the suite fast.
func corpus() map[string]string {
	c := map[string]string{
		"running":    workloads.RunningExample(workloads.Random, 48, 6, 2),
		"functional": workloads.FunctionalSort(workloads.Random, 32, 8, 2),
		"arraylist":  workloads.ArrayListGrow(true, 32, 8, 2),
		"listing3":   workloads.Listing3,
		"listing4":   workloads.Listing4(24),
		"listing5":   workloads.Listing5,
		"mergevsins": workloads.MergeVsInsertion(32, 8, 2),
		"freqmap":    workloads.RunningExampleScanned(workloads.Sorted, 32, 8, 2, 2),
	}
	for _, row := range workloads.Table1() {
		c["table1/"+row.Name()] = row.Source(12)
	}
	return c
}

func profileFingerprint(t *testing.T, p *algoprof.Profile) string {
	t.Helper()
	js, err := p.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return p.Tree() + "\n---\n" + string(js)
}

// TestPipelinedProfileByteIdentical asserts the headline determinism claim:
// for every corpus workload, routing events through the ring-buffer
// transport yields a byte-identical report to inline dispatch.
func TestPipelinedProfileByteIdentical(t *testing.T) {
	for name, src := range corpus() {
		t.Run(name, func(t *testing.T) {
			sync, err := algoprof.Run(src, algoprof.Config{Seed: 42})
			if err != nil {
				t.Fatalf("sync: %v", err)
			}
			piped, err := algoprof.Run(src, algoprof.Config{Seed: 42, Pipelined: true})
			if err != nil {
				t.Fatalf("pipelined: %v", err)
			}
			a, b := profileFingerprint(t, sync), profileFingerprint(t, piped)
			if a != b {
				t.Errorf("pipelined profile differs from synchronous:\n--- sync ---\n%s\n--- pipelined ---\n%s", a, b)
			}
		})
	}
}

// TestMultiListenerEquivalence runs the full three-backend fan-out
// (core + cct + bbprof off one event stream) against the inline dispatch
// path across buffer sizes — including tiny forced-wraparound buffers —
// and asserts identical fingerprints everywhere.
func TestMultiListenerEquivalence(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 48, 6, 2)
	base, err := runBackends(src, 42, pipeline.Config{Synchronous: true}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, bufSize := range []int{8, 64, 1024} {
		t.Run(fmt.Sprintf("buf%d", bufSize), func(t *testing.T) {
			got, err := runBackends(src, 42, pipeline.Config{BufferSize: bufSize}, true)
			if err != nil {
				t.Fatal(err)
			}
			if !BackendsIdentical(base, got) {
				t.Errorf("buf=%d fan-out differs from inline:\n--- inline ---\n%s\n--- pipelined ---\n%s",
					bufSize, BackendsFingerprint(base), BackendsFingerprint(got))
			}
		})
	}
}

// TestCombinedRunMatchesDedicatedRun validates per-consumer plan filtering:
// the core profile extracted from the shared full-instrumentation event
// stream must equal the profile of a dedicated optimized-plan run.
func TestCombinedRunMatchesDedicatedRun(t *testing.T) {
	src := workloads.RunningExample(workloads.Random, 48, 6, 2)
	combined, err := RunBackends(src, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	dedicated, err := algoprof.Run(src, algoprof.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a := profileFingerprint(t, combined.Profile)
	b := profileFingerprint(t, dedicated)
	if a != b {
		t.Errorf("plan-filtered core profile differs from dedicated run:\n--- combined ---\n%s\n--- dedicated ---\n%s", a, b)
	}
}

func TestCompareIdentical(t *testing.T) {
	res, err := Compare(smallSweep)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("Compare: pipelined fan-out not identical to inline fan-out")
	}
	if res.SortModel == "" || res.HottestExclusive == "" || res.TopBlock == "" {
		t.Errorf("Compare returned empty fields: %+v", res)
	}
}

func TestPipelineBenchIdentity(t *testing.T) {
	var tick int64
	pts, err := PipelineBench([]int{24}, 42, func() int64 { tick++; return tick })
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	p := pts[0]
	if !p.Identical {
		t.Error("bench legs produced non-identical results")
	}
	for _, d := range []int64{p.ThreePassNs, p.SyncFanoutNs, p.PipelinedNs, p.SoloSyncNs, p.SoloPipelinedNs} {
		if d <= 0 {
			t.Errorf("non-positive timing in %+v", p)
		}
	}
}
