package experiments

import (
	"bytes"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/workloads"
)

// profileJSON runs src and returns the serialized profile.
func profileJSON(t *testing.T, src string, cfg algoprof.Config) []byte {
	t.Helper()
	prof, err := algoprof.Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The snapshot memo is a pure optimization: every profile — algorithms,
// classifications, cost functions, data points, program output — must be
// byte-identical with the memo on and off, across the whole corpus.
func TestMemoAblationProfilesIdentical(t *testing.T) {
	corpus := map[string]string{
		"running-example": workloads.RunningExample(workloads.Random, 17, 4, 2),
		"running-scanned": workloads.RunningExampleScanned(workloads.Sorted, 17, 4, 2, 8),
		"functional-sort": workloads.FunctionalSort(workloads.Random, 17, 4, 2),
		"arraylist-grow":  workloads.ArrayListGrow(true, 17, 4, 2),
	}
	for _, row := range workloads.Table1() {
		corpus["table1/"+row.Name()] = row.Source(16)
	}
	for name, src := range corpus {
		on := profileJSON(t, src, algoprof.Config{Seed: 42})
		off := profileJSON(t, src, algoprof.Config{Seed: 42, DisableMemo: true})
		if !bytes.Equal(on, off) {
			t.Errorf("%s: profile differs with memoization disabled", name)
		}
	}
}

// Sweeps must produce identical results regardless of the worker count.
func TestParallelSweepDeterministic(t *testing.T) {
	sw := Sweep{MaxSize: 48, Step: 6, Reps: 2, Seed: 42}
	type outcome struct {
		fig1   string
		table1 string
	}
	runAt := func(workers int) outcome {
		SetParallelism(workers)
		defer SetParallelism(0)
		figs, err := Figure1All(sw)
		if err != nil {
			t.Fatal(err)
		}
		var fig1 string
		for _, f := range figs {
			fig1 += f.Order.String() + ": " + f.Text + "\n"
		}
		outcomes, err := Table1(16, 7)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{fig1: fig1, table1: RenderTable1(outcomes)}
	}
	serial := runAt(1)
	parallel := runAt(4)
	if serial.fig1 != parallel.fig1 {
		t.Errorf("Figure 1 differs by worker count:\n-j1:\n%s\n-j4:\n%s", serial.fig1, parallel.fig1)
	}
	if serial.table1 != parallel.table1 {
		t.Errorf("Table 1 differs by worker count:\n-j1:\n%s\n-j4:\n%s", serial.table1, parallel.table1)
	}
}

// The ablation sweep must show the memo reducing the profiling slowdown on
// the scan-heavy workload (the acceptance bar for the optimization). Noise
// margins are deliberately loose; the observed gap is ≈2x.
func TestOverheadSweepMemoWins(t *testing.T) {
	if raceEnabled {
		t.Skip("timing assertion: race instrumentation distorts relative costs")
	}
	pts, err := OverheadSweep([]int{256}, 3, func() int64 { return time.Now().UnixNano() })
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.NoMemoNs <= p.ProfiledNs {
		t.Errorf("no-memo run (%dns) not slower than memoized (%dns) at n=%d",
			p.NoMemoNs, p.ProfiledNs, p.Size)
	}
}
