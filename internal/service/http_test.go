package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/chaos"
)

func newHTTPService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestHTTPEndToEnd is the acceptance path: submit over HTTP, get the
// terminal view, and check the persisted run passes the chaos audit (what
// `algoprof verify` runs) with a profile byte-identical to the library
// API's for the same program and config.
func TestHTTPEndToEnd(t *testing.T) {
	s, srv := newHTTPService(t, Config{Workers: 2})

	resp, body := postJSON(t, srv.URL+"/v1/jobs?wait=1", SubmitRequest{
		Tenant:   "acme",
		Workload: "e2e",
		Program:  smallSrc,
		Config:   JobConfig{Seed: 7},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(sr.Jobs))
	}
	v := sr.Jobs[0]
	if v.Status != StatusOK {
		t.Fatalf("job status %s (%s), want ok", v.Status, v.Error)
	}

	// Byte identity with the library API (compact wire form).
	want := libraryJSON(t, smallSrc, algoprof.Config{Seed: 7})
	if !bytes.Equal(v.Profile, want) {
		t.Errorf("HTTP job profile differs from library run\nhttp:\n%s\nlib:\n%s", v.Profile, want)
	}

	// The persisted run passes the same audit `algoprof verify` runs:
	// manifest consistent, trace replayable, replay matches the manifest.
	runDir := filepath.Join(s.Store().Dir(), v.ID)
	if findings := chaos.AuditRun(runDir); len(findings) != 0 {
		t.Fatalf("audit findings on service-recorded run: %v", findings)
	}
	run, err := s.Store().Load(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if run.Manifest.Tenant != "acme" {
		t.Fatalf("persisted tenant %q, want acme", run.Manifest.Tenant)
	}
	if run.Manifest.Workload != "e2e" {
		t.Fatalf("persisted workload %q, want e2e", run.Manifest.Workload)
	}

	// GET endpoints agree.
	jr, err := http.Get(srv.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobView
	json.NewDecoder(jr.Body).Decode(&got)
	jr.Body.Close()
	if got.ID != v.ID || got.Status != StatusOK {
		t.Fatalf("GET job = %+v", got)
	}
	lr, err := http.Get(srv.URL + "/v1/jobs?tenant=acme")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobView
	json.NewDecoder(lr.Body).Decode(&list)
	lr.Body.Close()
	if len(list) != 1 {
		t.Fatalf("tenant list has %d jobs, want 1", len(list))
	}

	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	json.NewDecoder(sresp.Body).Decode(&st)
	sresp.Body.Close()
	if st.OK != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 ok / 1 completed", st)
	}
}

// TestHTTPStreamNDJSON: the stream endpoint emits NDJSON ending with the
// result event.
func TestHTTPStreamNDJSON(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 1})

	resp, body := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Program: busySrc})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	id := sr.Jobs[0].ID

	streamResp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var last Event
	sawStatus := false
	sc := bufio.NewScanner(streamResp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if ev.Type == "status" {
			sawStatus = true
		}
		last = ev
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Type != "result" {
		t.Fatalf("stream ended with %q event, want result", last.Type)
	}
	if last.Result == nil || !last.Result.Status.Terminal() {
		t.Fatalf("stream result = %+v, want terminal", last.Result)
	}
	_ = sawStatus // a fast job may complete before the subscriber attaches
}

// TestHTTPInputSweep: a sweep expands into one job per input vector.
func TestHTTPInputSweep(t *testing.T) {
	_, srv := newHTTPService(t, Config{Workers: 2})
	resp, body := postJSON(t, srv.URL+"/v1/jobs?wait=1", SubmitRequest{
		Program:    smallSrc,
		InputSweep: [][]int64{{1}, {2}, {3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Jobs) != 3 || len(sr.Rejected) != 0 {
		t.Fatalf("sweep: %d jobs, %d rejected; want 3/0", len(sr.Jobs), len(sr.Rejected))
	}
	for _, v := range sr.Jobs {
		if v.Status != StatusOK {
			t.Fatalf("sweep job %s: %s (%s)", v.ID, v.Status, v.Error)
		}
	}
}

// TestHTTPErrors: typed rejections map onto status codes and the JSON
// error envelope.
func TestHTTPErrors(t *testing.T) {
	s, srv := newHTTPService(t, Config{
		Quotas: map[string]Quota{"capped": {MaxActive: 1}},
	})

	resp, body := postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Program: "class { nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad program status %d: %s", resp.StatusCode, body)
	}
	var ae apiError
	json.Unmarshal(body, &ae)
	if ae.Kind != "invalid" {
		t.Fatalf("bad program kind %q", ae.Kind)
	}

	// Fill the capped tenant, then hit its quota.
	resp, body = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Tenant: "capped", Program: busySrc})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first capped submit status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Tenant: "capped", Program: smallSrc})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota status %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ae)
	if ae.Kind != "quota" || ae.Class != "resource" {
		t.Fatalf("quota envelope %+v", ae)
	}

	if resp, err := http.Get(srv.URL + "/v1/jobs/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status: %v %v", resp.StatusCode, err)
	} else {
		resp.Body.Close()
	}

	// Readiness flips to 503 once draining; liveness stays 200 the whole
	// way — the process is still up, finishing its backlog.
	for _, path := range []string{"/v1/healthz", "/v1/readyz"} {
		hr, err := http.Get(srv.URL + path)
		if err != nil || hr.StatusCode != http.StatusOK {
			t.Fatalf("%s before drain: %v %v", path, hr.StatusCode, err)
		}
		hr.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)
	hr, err := http.Get(srv.URL + "/v1/readyz")
	if err != nil || hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %v %v", hr.StatusCode, err)
	}
	hr.Body.Close()
	hr, err = http.Get(srv.URL + "/v1/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after drain (liveness must survive a drain): %v %v", hr.StatusCode, err)
	}
	hr.Body.Close()

	resp, body = postJSON(t, srv.URL+"/v1/jobs", SubmitRequest{Program: smallSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d: %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ae)
	if ae.Kind != "draining" {
		t.Fatalf("draining kind %q", ae.Kind)
	}
}
