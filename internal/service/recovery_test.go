package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/trace/store"
)

// seedJournal writes raw entries into a store dir's journal, simulating
// what a daemon that crashed mid-batch leaves behind.
func seedJournal(t *testing.T, dir string, entries []store.JournalEntry) {
	t.Helper()
	j, _, err := store.OpenJournal(filepath.Join(dir, store.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func enqueueEntry(spec ExecSpec) store.JournalEntry {
	return store.JournalEntry{
		Op: store.JournalEnqueue, ID: spec.ID, Tenant: spec.Tenant,
		Key: spec.Key, Persist: spec.Persist, Spec: marshalSpec(spec),
	}
}

// waitIdle polls until the service has no queued, running, or recovering
// jobs.
func waitIdle(t *testing.T, s *Service) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := s.Stats()
		if st.Queued == 0 && st.Running == 0 && st.Recovering == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never went idle: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoveryReexecutesPendingJobs: jobs a crashed daemon admitted but
// never finished re-execute on restart and land terminal, with quota
// charges matching the deterministic library run — and charges already
// journaled before the crash re-apply exactly once.
func TestRecoveryReexecutesPendingJobs(t *testing.T) {
	dir := t.TempDir()
	specs := make([]ExecSpec, 3)
	var entries []store.JournalEntry
	for i := range specs {
		cfg := algoprof.Config{Mode: algoprof.ModeEvents, Seed: uint64(i + 1)}
		specs[i] = ExecSpec{
			ID: "j100-00000" + string(rune('1'+i)), Tenant: "rec",
			Key: JobKey("rec", "w", smallSrc, cfg), Workload: "w",
			Program: smallSrc, Config: cfg, Persist: true,
		}
		entries = append(entries, enqueueEntry(specs[i]))
	}
	// One job finished before the crash: enqueue + terminal. Its charge
	// must re-apply exactly once and it must NOT re-execute.
	doneCfg := algoprof.Config{Mode: algoprof.ModeEvents, Seed: 9}
	doneSpec := ExecSpec{ID: "j100-000009", Tenant: "rec", Program: smallSrc, Config: doneCfg, Persist: false}
	entries = append(entries, enqueueEntry(doneSpec),
		store.JournalEntry{Op: store.JournalTerminal, ID: doneSpec.ID, Tenant: "rec", Status: "ok", Events: 77, TraceBytes: 10})
	seedJournal(t, dir, entries)

	s := newTestService(t, Config{StoreDir: dir, Workers: 2, Logf: t.Logf})
	waitIdle(t, s)

	wantEvents := uint64(77)
	for _, spec := range specs {
		v, ok := s.Job(spec.ID)
		if !ok || v.Status != StatusOK {
			t.Fatalf("recovered job %s: ok=%v view=%+v", spec.ID, ok, v)
		}
		prof, err := algoprof.Run(spec.Program, spec.Config)
		if err != nil {
			t.Fatal(err)
		}
		if v.Events != prof.EventCount() {
			t.Fatalf("job %s events %d, want library's %d", spec.ID, v.Events, prof.EventCount())
		}
		wantEvents += v.Events
		if _, err := s.Store().Replay(spec.ID); err != nil {
			t.Fatalf("recovered run %s not replayable: %v", spec.ID, err)
		}
	}
	if _, ok := s.Job(doneSpec.ID); ok {
		t.Fatalf("pre-crash terminal job %s re-materialized", doneSpec.ID)
	}
	ts := s.Stats().Tenants["rec"]
	if ts.EventsUsed != wantEvents {
		t.Fatalf("tenant events %d, want %d (exactly-once charges)", ts.EventsUsed, wantEvents)
	}
	if !s.Ready() {
		t.Fatal("service not ready after recovery finished")
	}

	// New job IDs mint in a later epoch than anything recovered.
	v, err := s.Submit(SubmitRequest{Tenant: "rec", Program: smallSrc})
	if err != nil {
		t.Fatal(err)
	}
	if epochOf(v.ID) <= 100 {
		t.Fatalf("new job id %s does not outrank recovered epoch 100", v.ID)
	}
	awaitJob(t, s, v.ID)
}

// TestRecoveryChargesSurviveSecondRestart: a restart compacts terminal
// history into charge summaries; another restart re-applies the summaries
// — never the individual terminals again — so aggregate quota accounting
// is stable across any number of restarts.
func TestRecoveryChargesSurviveSecondRestart(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, []store.JournalEntry{
		{Op: store.JournalTerminal, ID: "j5-000001", Tenant: "a", Status: "ok", Events: 100, TraceBytes: 50},
		{Op: store.JournalTerminal, ID: "j5-000002", Tenant: "a", Status: "degraded", Events: 40},
		{Op: store.JournalTerminal, ID: "j5-000003", Tenant: "b", Status: "failed", Events: 0, TraceBytes: 7},
	})
	for restart := 0; restart < 2; restart++ {
		s, err := New(Config{StoreDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		stats := s.Stats()
		if got := stats.Tenants["a"].EventsUsed; got != 140 {
			t.Fatalf("restart %d: tenant a events %d, want 140", restart, got)
		}
		if got := stats.Tenants["a"].TraceUsed; got != 50 {
			t.Fatalf("restart %d: tenant a trace bytes %d, want 50", restart, got)
		}
		if got := stats.Tenants["b"].TraceUsed; got != 7 {
			t.Fatalf("restart %d: tenant b trace bytes %d, want 7", restart, got)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.Drain(ctx)
		cancel()
	}
}

// TestRecoveryBudgetEnforcedAfterRestart: a tenant whose event budget was
// spent before the crash stays over budget after the restart — restarting
// the daemon is not a quota reset.
func TestRecoveryBudgetEnforcedAfterRestart(t *testing.T) {
	dir := t.TempDir()
	seedJournal(t, dir, []store.JournalEntry{
		{Op: store.JournalTerminal, ID: "j5-000001", Tenant: "capped", Status: "ok", Events: 1000},
	})
	s := newTestService(t, Config{
		StoreDir: dir,
		Quotas:   map[string]Quota{"capped": {EventBudget: 500}},
	})
	_, err := s.Submit(SubmitRequest{Tenant: "capped", Program: smallSrc})
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Limit != "event-budget" {
		t.Fatalf("over-budget tenant admitted after restart: %v", err)
	}
}

// TestReadyzDuringDrainWindow: in the window where a drain has begun but
// jobs are still finishing, readiness is 503 (route new work elsewhere)
// while liveness stays 200 (do not kill the draining process). This is
// the regression test for the drain window.
func TestReadyzDuringDrainWindow(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	v, err := s.Submit(SubmitRequest{Program: busySrc})
	if err != nil {
		t.Fatal(err)
	}
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelDrain()
	done := make(chan struct{})
	go func() { s.Drain(drainCtx); close(done) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	// Mid-drain: the busy job may still be running.
	if code := getStatus(t, srv.URL+"/v1/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz mid-drain = %d, want 503", code)
	}
	if code := getStatus(t, srv.URL+"/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz mid-drain = %d, want 200 (liveness survives the drain window)", code)
	}
	<-done
	if fv, ok := s.Job(v.ID); !ok || !fv.Status.Terminal() {
		t.Fatalf("drained job not terminal: %+v", fv)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
