// Job execution seam. The daemon core (Submit/finish, quotas, journal)
// is decoupled from *where* a job's VM actually runs through the Executor
// interface: localExecutor runs it in-process against the daemon's own
// store, and the dispatch layer (internal/dispatch) implements the same
// interface over remote worker processes. Both sides share RunJob, so a
// job produces the identical outcome wherever it executes — the
// deterministic record→replay contract extended across process
// boundaries.
package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"algoprof"
	"algoprof/internal/experiments"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
	"algoprof/internal/vm"
)

// ExecSpec is the self-contained description of one admitted job — the
// unit of work the daemon hands an Executor. It is JSON-serializable on
// purpose: the dispatch wire protocol ships it to workers verbatim, and
// the write-ahead journal persists it for crash recovery. Config.Limits
// are the post-clamp effective limits; re-executing a recovered or
// re-dispatched spec never re-runs quota admission.
type ExecSpec struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Key is the deterministic job key: SHA-256 over tenant, workload,
	// program, and configuration. Re-dispatches of one job share it, so
	// duplicate executions deduplicate by content.
	Key        string          `json:"key"`
	Workload   string          `json:"workload,omitempty"`
	Program    string          `json:"program"`
	Config     algoprof.Config `json:"config"`
	Persist    bool            `json:"persist,omitempty"`
	Backends   bool            `json:"backends,omitempty"`
	NoCompress bool            `json:"no_compress,omitempty"`
}

// JobKey computes a spec's deterministic deduplication key.
func JobKey(tenant, workload, program string, cfg algoprof.Config) string {
	h := sha256.New()
	for _, s := range []string{tenant, workload, program} {
		fmt.Fprintf(h, "%d:%s", len(s), s)
	}
	if data, err := json.Marshal(cfg); err == nil {
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ExecOutcome is what executing a spec produced. A non-nil outcome can
// accompany an error: a failed persist job may still have landed trace
// bytes that must be charged.
type ExecOutcome struct {
	ProfileJSON     json.RawMessage `json:"profile,omitempty"`
	Events          uint64          `json:"events,omitempty"`
	Instructions    uint64          `json:"instructions,omitempty"`
	Degraded        bool            `json:"degraded,omitempty"`
	DegradedReasons []string        `json:"degraded_reasons,omitempty"`
	TraceBytes      int64           `json:"trace_bytes,omitempty"`
	Backends        *BackendSummary `json:"backends,omitempty"`
	// Worker and DispatchAttempts are filled by the dispatch layer: which
	// worker finally executed the job and how many dispatch attempts
	// (retries across workers plus the final one) it took.
	Worker           string `json:"worker,omitempty"`
	DispatchAttempts int    `json:"dispatch_attempts,omitempty"`
}

// Executor runs one admitted job to completion. progress (may be nil)
// receives approximate executed-instruction counts while the job runs.
// Execute may return a non-nil outcome alongside an error (partial
// charges); returning (nil, nil) is a contract violation.
type Executor interface {
	Execute(ctx context.Context, spec ExecSpec, progress func(instructions uint64)) (*ExecOutcome, error)
}

// NewLocalExecutor returns the in-process Executor: jobs run on the
// calling goroutine against st. logf may be nil.
func NewLocalExecutor(st *store.Store, logf func(string, ...any)) Executor {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &localExecutor{store: st, logf: logf}
}

type localExecutor struct {
	store *store.Store
	logf  func(string, ...any)
}

func (e *localExecutor) Execute(ctx context.Context, spec ExecSpec, progress func(uint64)) (*ExecOutcome, error) {
	return RunJob(ctx, e.store, spec, progress, e.logf)
}

func seedOf(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// RunJob executes one spec against st and assembles its outcome. It is
// the single execution path shared by the local executor and the remote
// dispatch worker. Partial-run salvage happens here: an interrupted run
// with a recoverable profile becomes a degraded outcome, never a lost
// job.
func RunJob(ctx context.Context, st *store.Store, spec ExecSpec, progress func(uint64), logf func(string, ...any)) (*ExecOutcome, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	cfg := spec.Config
	if progress != nil {
		// Progress heartbeats ride the VM watchdog poll: every poll is
		// ~vm.WatchdogInterval instructions, so the counter approximates
		// executed instructions with no extra interpreter work.
		var polls atomic.Int64
		cfg.Watchdog = func() error {
			if n := polls.Add(1); n%progressEveryPolls == 0 {
				progress(uint64(n) * vm.WatchdogInterval)
			}
			return nil
		}
	}

	var run *store.Run
	var prof *algoprof.Profile
	var err error
	if spec.Persist {
		run, err = st.RecordTenantContext(ctx, spec.ID, spec.Program, spec.Workload, spec.Tenant, cfg,
			trace.WriterOptions{Compress: !spec.NoCompress})
		if run != nil {
			prof = run.Profile
		}
	} else {
		prof, err = algoprof.RunContext(ctx, spec.Program, cfg)
	}

	out := &ExecOutcome{}
	if err != nil {
		var pe *algoprof.PartialError
		if errors.As(err, &pe) && pe.Profile != nil {
			// PR 4 semantics: an interrupted run with a salvaged profile is
			// a degraded result, never a dropped job.
			prof = pe.Profile
			err = nil
			out.Degraded = true
		}
	}

	if err == nil && spec.Backends {
		if b, berr := experiments.RunBackendsVerified(spec.Program, seedOf(cfg.Seed), true); berr == nil {
			out.Backends = &BackendSummary{
				Fingerprint:   experiments.BackendsFingerprint(b),
				HottestMethod: b.HottestExclusive(),
				TopBlock:      b.TopBlock(),
			}
		} else {
			logf("service: job %s all-backends pass failed: %v", spec.ID, berr)
		}
	}

	if prof != nil {
		out.Instructions = prof.Instructions
		if data, jerr := prof.JSON(); jerr == nil {
			// Compact form: JSON envelopes pass compact RawMessage bytes
			// through verbatim, so the profile a client reads off the wire
			// is byte-identical to the compacted library output.
			var buf bytes.Buffer
			if json.Compact(&buf, data) == nil {
				data = buf.Bytes()
			}
			out.ProfileJSON = data
		}
		// EventCount sums the main profiler and every spawned thread's, and
		// reads atomically — safe even if a salvaged run's pipeline consumer
		// was still winding down when the profile was assembled.
		out.Events = prof.EventCount()
		out.Degraded = out.Degraded || prof.Degraded
		out.DegradedReasons = prof.DegradedReasons
	}
	if spec.Persist {
		// Charge the stored trace regardless of outcome: a salvaged or
		// failed recording may still have landed bytes in the store.
		if fi, serr := os.Stat(filepath.Join(st.Dir(), spec.ID, store.TraceName)); serr == nil {
			out.TraceBytes = fi.Size()
		}
	}
	return out, err
}
