package service

import (
	"fmt"
	"sync"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
)

// Quota bounds one tenant's use of the service. Zero fields are unlimited.
// Quotas layer on the algoprof.Limits machinery rather than replacing it:
// the per-job caps and the remaining aggregate budgets clamp each job's
// Limits before it runs, so a job brushing against its tenant's budget
// degrades deterministically (PR 4 semantics — sampled series, exact
// totals) instead of being killed mid-flight. Only admission — a tenant
// already at its concurrency bound or with an exhausted budget — rejects,
// and then always with a typed *QuotaError.
type Quota struct {
	// MaxActive bounds the tenant's jobs that are queued or running at
	// once.
	MaxActive int `json:"max_active,omitempty"`
	// MaxRunning bounds the tenant's concurrently running jobs; queued
	// jobs wait their turn without failing.
	MaxRunning int `json:"max_running,omitempty"`
	// MaxEventsPerJob clamps each job's Limits.MaxEvents.
	MaxEventsPerJob uint64 `json:"max_events_per_job,omitempty"`
	// EventBudget bounds the tenant's aggregate profiling events across
	// all its jobs. The remaining budget clamps each new job's
	// Limits.MaxEvents; a spent budget rejects new jobs.
	EventBudget uint64 `json:"event_budget,omitempty"`
	// TraceByteBudget bounds the tenant's aggregate stored trace bytes.
	// The remaining budget clamps each new job's Limits.MaxTraceBytes; a
	// spent budget rejects new jobs.
	TraceByteBudget int64 `json:"trace_byte_budget,omitempty"`
	// DeadlineCeiling clamps each job's Limits.Deadline: a job asking for
	// more (or for no deadline at all) runs under the ceiling.
	DeadlineCeiling time.Duration `json:"deadline_ceiling_ns,omitempty"`
}

// QuotaError reports a submission rejected by a tenant quota. It
// classifies as a Resource fault: the tenant's capacity is exhausted, the
// job was never admitted, retrying later (or with a smaller job) is the
// remedy.
type QuotaError struct {
	// Tenant is the over-quota tenant.
	Tenant string
	// Limit names the exceeded bound ("max-active", "max-running",
	// "event-budget", "trace-byte-budget").
	Limit string
	// Detail quantifies it.
	Detail string
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over quota %s: %s", e.Tenant, e.Limit, e.Detail)
}

// FaultClass implements faultinject.Classifier.
func (e *QuotaError) FaultClass() faultinject.FaultClass { return faultinject.Resource }

// tenantState is one tenant's live accounting, guarded by Service.mu.
type tenantState struct {
	quota Quota

	active  int // queued + running jobs
	running int // running jobs

	eventsUsed uint64 // aggregate profiling events charged
	traceUsed  int64  // aggregate trace bytes charged

	submitted int64 // jobs admitted
	rejected  int64 // submissions rejected (quota, queue, drain, intake fault)
}

// TenantStats is one tenant's usage snapshot, served by /v1/stats.
type TenantStats struct {
	Active     int    `json:"active"`
	Running    int    `json:"running"`
	EventsUsed uint64 `json:"events_used"`
	TraceUsed  int64  `json:"trace_bytes_used"`
	Submitted  int64  `json:"submitted"`
	Rejected   int64  `json:"rejected"`
	Quota      Quota  `json:"quota"`
}

// admit checks the admission bounds and reserves an active slot. Caller
// holds Service.mu.
func (t *tenantState) admit(tenant string) error {
	q := t.quota
	if q.MaxActive > 0 && t.active >= q.MaxActive {
		return &QuotaError{Tenant: tenant, Limit: "max-active",
			Detail: fmt.Sprintf("%d jobs queued or running (bound %d)", t.active, q.MaxActive)}
	}
	if q.EventBudget > 0 && t.eventsUsed >= q.EventBudget {
		return &QuotaError{Tenant: tenant, Limit: "event-budget",
			Detail: fmt.Sprintf("%d of %d events spent", t.eventsUsed, q.EventBudget)}
	}
	if q.TraceByteBudget > 0 && t.traceUsed >= q.TraceByteBudget {
		return &QuotaError{Tenant: tenant, Limit: "trace-byte-budget",
			Detail: fmt.Sprintf("%d of %d bytes spent", t.traceUsed, q.TraceByteBudget)}
	}
	t.active++
	t.submitted++
	return nil
}

// clampLimits derives the job's effective Limits from its requested ones:
// per-job caps and remaining budgets tighten, never loosen. Caller holds
// Service.mu.
func (t *tenantState) clampLimits(lim algoprof.Limits) algoprof.Limits {
	q := t.quota
	lim.MaxEvents = minNonZero(lim.MaxEvents, q.MaxEventsPerJob)
	if q.EventBudget > 0 {
		lim.MaxEvents = minNonZero(lim.MaxEvents, q.EventBudget-t.eventsUsed)
	}
	if q.TraceByteBudget > 0 {
		lim.MaxTraceBytes = minNonZero64(lim.MaxTraceBytes, q.TraceByteBudget-t.traceUsed)
	}
	if q.DeadlineCeiling > 0 && (lim.Deadline == 0 || lim.Deadline > q.DeadlineCeiling) {
		lim.Deadline = q.DeadlineCeiling
	}
	return lim
}

// charge books a finished job's consumption against the budgets. Caller
// holds Service.mu.
func (t *tenantState) charge(events uint64, traceBytes int64) {
	t.eventsUsed += events
	t.traceUsed += traceBytes
}

// minNonZero treats 0 as "unlimited" on both sides.
func minNonZero(a, b uint64) uint64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	}
	return b
}

func minNonZero64(a, b int64) int64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	}
	return b
}

// tenants is the quota table: a default quota plus per-tenant overrides,
// instantiating state lazily.
type tenants struct {
	mu       sync.Mutex
	def      Quota
	explicit map[string]Quota
	state    map[string]*tenantState
}

func newTenants(def Quota, explicit map[string]Quota) *tenants {
	return &tenants{def: def, explicit: explicit, state: map[string]*tenantState{}}
}

// get returns (creating if needed) the tenant's state. Callers synchronize
// through Service.mu; the internal mutex only guards the lazy map.
func (ts *tenants) get(tenant string) *tenantState {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	st, ok := ts.state[tenant]
	if !ok {
		q := ts.def
		if eq, ok := ts.explicit[tenant]; ok {
			q = eq
		}
		st = &tenantState{quota: q}
		ts.state[tenant] = st
	}
	return st
}

// snapshot lists every tenant's stats, for /v1/stats.
func (ts *tenants) snapshot() map[string]TenantStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make(map[string]TenantStats, len(ts.state))
	for name, st := range ts.state {
		out[name] = TenantStats{
			Active:     st.active,
			Running:    st.running,
			EventsUsed: st.eventsUsed,
			TraceUsed:  st.traceUsed,
			Submitted:  st.submitted,
			Rejected:   st.rejected,
			Quota:      st.quota,
		}
	}
	return out
}
