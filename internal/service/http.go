package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"algoprof/internal/faultinject"
)

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	// Kind is the rejection kind: "invalid", "quota", "overload",
	// "draining", "fault", "not_found", or "internal".
	Kind string `json:"kind"`
	// Class is the faultinject class where one applies ("resource" for
	// quota/overload/draining — retryable capacity; "transient"/... for
	// armed intake faults).
	Class string `json:"class,omitempty"`
}

// SubmitResponse answers POST /v1/jobs.
type SubmitResponse struct {
	// Jobs are the admitted jobs, in submission order. A plain submission
	// has exactly one; an input_sweep has one per accepted entry.
	Jobs []*JobView `json:"jobs"`
	// Rejected reports sweep entries that failed admission (the sweep is
	// best-effort: earlier entries stay admitted).
	Rejected []SweepRejection `json:"rejected,omitempty"`
}

// SweepRejection is one input_sweep entry that failed admission.
type SweepRejection struct {
	Index int      `json:"index"`
	Input []int64  `json:"input"`
	Err   apiError `json:"err"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs               submit (SubmitRequest JSON; ?wait=1 blocks
//	                            until the job — or every sweep job — is
//	                            terminal and returns final views)
//	GET  /v1/jobs               list job views (?tenant= scopes)
//	GET  /v1/jobs/{id}          one job view
//	GET  /v1/jobs/{id}/stream   NDJSON event stream until terminal
//	GET  /v1/stats              service + per-tenant counters
//	GET  /v1/healthz            liveness: 200 while the process serves
//	GET  /v1/readyz             readiness: 200 accepting work / 503 while
//	                            draining or replaying the job journal
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	return mux
}

// writeError maps a typed service error onto status code + envelope.
func writeError(w http.ResponseWriter, err error) {
	e, code := classifyError(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(e)
}

func classifyError(err error) (apiError, int) {
	var inv *InvalidJobError
	var qe *QuotaError
	var oe *OverloadError
	var de *DrainingError
	var fault *faultinject.Fault
	switch {
	case errors.As(err, &inv):
		return apiError{Error: err.Error(), Kind: "invalid"}, http.StatusBadRequest
	case errors.As(err, &qe):
		return apiError{Error: err.Error(), Kind: "quota", Class: faultinject.Resource.String()}, http.StatusTooManyRequests
	case errors.As(err, &oe):
		return apiError{Error: err.Error(), Kind: "overload", Class: faultinject.Resource.String()}, http.StatusTooManyRequests
	case errors.As(err, &de):
		return apiError{Error: err.Error(), Kind: "draining", Class: faultinject.Resource.String()}, http.StatusServiceUnavailable
	case errors.As(err, &fault):
		return apiError{Error: err.Error(), Kind: "fault", Class: faultinject.ClassOf(err).String()}, http.StatusInternalServerError
	}
	return apiError{Error: err.Error(), Kind: "internal"}, http.StatusInternalServerError
}

// writeJSON writes compact JSON: indentation would rewrite embedded
// RawMessage profile bytes, breaking the byte-identity contract between
// service-returned profiles and library output.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, &InvalidJobError{Reason: "bad request body: " + err.Error()})
		return
	}
	wait := r.URL.Query().Get("wait") == "1"

	var resp SubmitResponse
	if len(req.InputSweep) == 0 {
		v, err := s.Submit(req)
		if err != nil {
			writeError(w, err)
			return
		}
		resp.Jobs = []*JobView{v}
	} else {
		// Sweep: one job per input vector, best-effort. Entries rejected
		// by quota or queue pressure report typed without voiding the
		// entries already admitted.
		sweep := req.InputSweep
		req.InputSweep = nil
		for i, input := range sweep {
			req.Config.Input = input
			v, err := s.Submit(req)
			if err != nil {
				e, _ := classifyError(err)
				resp.Rejected = append(resp.Rejected, SweepRejection{Index: i, Input: input, Err: e})
				continue
			}
			resp.Jobs = append(resp.Jobs, v)
		}
		if len(resp.Jobs) == 0 && len(resp.Rejected) > 0 {
			// Nothing admitted: surface the first rejection as the
			// response status rather than a hollow 202.
			w.Header().Set("Content-Type", "application/json")
			code := http.StatusTooManyRequests
			if resp.Rejected[0].Err.Kind == "invalid" {
				code = http.StatusBadRequest
			}
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(resp)
			return
		}
	}

	if wait {
		for i, v := range resp.Jobs {
			fv, err := s.await(r.Context(), v.ID)
			if err != nil {
				writeError(w, err)
				return
			}
			resp.Jobs[i] = fv
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// await blocks until the job is terminal (or ctx ends) and returns its
// final view.
func (s *Service) await(ctx interface{ Done() <-chan struct{} }, id string) (*JobView, error) {
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		return nil, err
	}
	defer cancel()
	for {
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("service: wait for %s aborted by client", id)
		case ev, ok := <-ch:
			if !ok {
				// Channel closed without us seeing the result event (slow
				// consumer): the job table has the terminal view.
				if v, ok := s.Job(id); ok && v.Status.Terminal() {
					return v, nil
				}
				return nil, fmt.Errorf("service: stream for %s closed before terminal state", id)
			}
			if ev.Type == "result" {
				return ev.Result, nil
			}
		}
	}
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs(r.URL.Query().Get("tenant"))
	if jobs == nil {
		jobs = []*JobView{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.Job(id)
	if !ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(apiError{Error: "no job " + id, Kind: "not_found"})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleStream writes the job's events as NDJSON — one JSON object per
// line, flushed per event — ending with the "result" line.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(apiError{Error: err.Error(), Kind: "not_found"})
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sawResult := false
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// Dropped result (slow consumer): synthesize the terminal
				// line from the job table so the stream always ends with
				// the result.
				if !sawResult {
					if v, ok := s.Job(id); ok && v.Status.Terminal() {
						enc.Encode(Event{Type: "result", Job: id, Status: v.Status, Result: v})
						if flusher != nil {
							flusher.Flush()
						}
					}
				}
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Type == "result" {
				sawResult = true
			}
		}
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is liveness: the process is up and handling requests. A
// draining daemon is still alive — it is finishing its backlog and
// answering status queries — so liveness stays 200 until the process
// exits. Orchestrators that restart on failed liveness must not kill a
// drain in progress; readiness is the signal to stop routing new work.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 while draining (stop sending jobs here)
// and while journal-recovered jobs are still replaying after a restart
// (the daemon is consistent but busy re-establishing state).
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "recovering")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}
