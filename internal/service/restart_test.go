package service

// Daemon restart recovery, end to end: a real daemon process is SIGKILLed
// mid-batch — no drain, no cleanup, exactly the crash the write-ahead
// journal exists for — and a fresh daemon on the same store must land
// every acknowledged job in a terminal state exactly once, with tenant
// quota charges matching the deterministic library-run event counts.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/trace/store"
)

// TestHelperDaemonProcess is not a test: it is the daemon child process
// for TestDaemonKillRecovery, guarded by environment variables and run
// via the test binary re-exec pattern.
func TestHelperDaemonProcess(t *testing.T) {
	if os.Getenv("ALGOPROF_DAEMON_HELPER") != "1" {
		t.Skip("helper process for TestDaemonKillRecovery")
	}
	s, err := New(Config{StoreDir: os.Getenv("ALGOPROF_DAEMON_STORE"), Workers: 1})
	if err != nil {
		fmt.Printf("DERR %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("DERR %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("DADDR %s\n", ln.Addr())
	http.Serve(ln, s.Handler())
}

// killSrc runs ~100ms: slow enough that a SIGKILL 150ms into a 6-job
// single-worker batch lands mid-batch — some jobs terminal, one
// mid-flight, the rest queued.
const killSrc = `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 250000; i++) { s = s + 1; }
    check(s == 250000);
  }
}`

func TestDaemonKillRecovery(t *testing.T) {
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperDaemonProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "ALGOPROF_DAEMON_HELPER=1", "ALGOPROF_DAEMON_STORE="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	var addr string
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if a, ok := strings.CutPrefix(line, "DADDR "); ok {
			addr = a
			break
		}
		if e, ok := strings.CutPrefix(line, "DERR "); ok {
			t.Fatalf("daemon helper failed to boot: %s", e)
		}
	}
	if addr == "" {
		t.Fatal("daemon helper never printed its address")
	}
	go func() {
		// Keep the pipe drained so the child never blocks on stdout.
		for scanner.Scan() {
		}
	}()

	// Submit a batch of slow jobs onto a single worker: some finish, one
	// is mid-flight, the rest are queued when the SIGKILL lands.
	const jobCount = 6
	var acked []string
	for i := 0; i < jobCount; i++ {
		body, _ := json.Marshal(SubmitRequest{
			Tenant: "crash", Workload: "kill9", Program: killSrc,
			Config: JobConfig{Seed: uint64(i + 1)},
		})
		resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		var sr SubmitResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil || len(sr.Jobs) != 1 {
			t.Fatalf("submit %d: decode %v %+v", i, err, sr)
		}
		acked = append(acked, sr.Jobs[0].ID)
	}

	// Let part of the batch complete, then kill -9 the daemon.
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Every acknowledged job must be on the journal, crash or not.
	j, entries, err := store.OpenJournal(filepath.Join(dir, store.JournalName))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	enqueued := map[string]bool{}
	preTerminal := map[string]bool{}
	for _, e := range entries {
		switch e.Op {
		case store.JournalEnqueue:
			enqueued[e.ID] = true
		case store.JournalTerminal:
			if preTerminal[e.ID] {
				t.Fatalf("job %s journaled terminal twice before the crash", e.ID)
			}
			preTerminal[e.ID] = true
		}
	}
	for _, id := range acked {
		if !enqueued[id] {
			t.Fatalf("acknowledged job %s missing from journal after kill -9", id)
		}
	}
	t.Logf("kill -9 landed with %d/%d jobs terminal", len(preTerminal), len(acked))

	// Restart on the same store: pending jobs re-execute, terminal charges
	// re-apply exactly once.
	s := newTestService(t, Config{StoreDir: dir, Workers: 2, Logf: t.Logf})
	waitIdle(t, s)
	for _, id := range acked {
		if preTerminal[id] {
			continue
		}
		v, ok := s.Job(id)
		if !ok || !v.Status.Terminal() {
			t.Fatalf("recovered job %s not terminal: ok=%v view=%+v", id, ok, v)
		}
		if v.Status != StatusOK {
			t.Fatalf("recovered job %s = %s (%s), want ok", id, v.Status, v.Error)
		}
	}

	// Exactly-once accounting: the deterministic VM means every job —
	// finished before the crash or re-executed after it — charges the
	// library run's event count, once.
	prof, err := algoprof.Run(killSrc, algoprof.Config{Mode: algoprof.ModeEvents, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := prof.EventCount() * uint64(len(acked))
	if got := s.Stats().Tenants["crash"].EventsUsed; got != want {
		t.Fatalf("tenant events after recovery = %d, want %d (= %d jobs x %d events, charged exactly once)",
			got, want, len(acked), prof.EventCount())
	}

	// Every job's run landed in the store exactly once and replays.
	names, err := s.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	runs := map[string]bool{}
	for _, n := range names {
		runs[n] = true
	}
	for _, id := range acked {
		if !runs[id] {
			t.Fatalf("job %s has no stored run after recovery (store: %v)", id, names)
		}
		if _, err := s.Store().Replay(id); err != nil {
			t.Fatalf("recovered run %s does not replay: %v", id, err)
		}
	}
}
