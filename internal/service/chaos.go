package service

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"algoprof/internal/chaos"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace/store"
	"algoprof/internal/workloads"
)

// RunChaos sweeps seeded fault schedules through the daemon's write path —
// job intake, the worker pool, result persistence, and the store
// underneath — and asserts the same trichotomy the record-path chaos sweep
// does: every submission is either admitted and lands ok/degraded, or is
// rejected/failed with a typed error; the store stays listable; persisted
// runs pass the forensic audit or are flagged as detected (never silent)
// corruption. `algoprof chaos -service` runs this sweep.
func RunChaos(cfg chaos.Config) (*chaos.Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 16
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rep := &chaos.Report{}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + uint64(i)
		res := runChaosOne(cfg, seed, rep)
		rep.Results = append(rep.Results, res)
		cfg.Logf("chaos: seed %d %s (%s): %s", seed, res.Workload, strings.Join(res.Faults, ","), res.Outcome)
	}
	return rep, nil
}

// serviceSchedule is one seed's fault plan for the daemon path.
type serviceSchedule struct {
	names []string
	arms  []func(*faultinject.Plan)
}

func (sc *serviceSchedule) fault(name, point string, pc faultinject.PointConfig) {
	sc.names = append(sc.names, name)
	sc.arms = append(sc.arms, func(p *faultinject.Plan) { p.Arm(point, pc) })
}

// newServiceSchedule derives the schedule from the seed, cycling four
// families: clean/absorbed-transient, intake rejection, persist-path
// resource exhaustion, and silent trace corruption under the daemon.
func newServiceSchedule(seed uint64) serviceSchedule {
	mix := seed*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03
	draw := func(n uint64) uint64 {
		mix += 0x9e3779b97f4a7c15
		z := mix
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return (z ^ (z >> 31)) % n
	}
	var sc serviceSchedule
	switch seed % 4 {
	case 0:
		// Clean, or a transient store fault the retry policy absorbs.
		if draw(2) == 1 {
			sc.fault("fsync-transient", faultinject.PointSync, faultinject.PointConfig{
				Prob: 1, MaxFires: 1 + int(draw(2)), Class: faultinject.Transient, Errno: syscall.EINTR,
			})
		}
	case 1:
		// Intake fault: some submissions must be rejected typed, with
		// nothing queued or stored for them.
		sc.fault("intake-reject", faultinject.PointServiceIntake, faultinject.PointConfig{
			Prob: 1, MaxFires: 1 + int(draw(2)), Class: faultinject.Transient, Errno: syscall.EAGAIN,
		})
	case 2:
		// Persist-path resource exhaustion: admitted jobs must fail typed
		// Resource, not vanish.
		sc.fault("persist-enospc", faultinject.PointServicePersist, faultinject.PointConfig{
			Prob: 1, MaxFires: 1, Class: faultinject.Resource, Errno: syscall.ENOSPC,
		})
	default:
		// Silent bit flip in the stored trace: the job may report ok (the
		// live profile is computed in memory) but the on-disk artifact must
		// be caught by the audit's CRC, never replay to a silently wrong
		// profile.
		sc.fault("trace-bitflip", faultinject.PointBitFlip, faultinject.PointConfig{
			Prob: 0.4, MaxFires: 1, PathSuffix: store.TraceName, Class: faultinject.Corruption,
		})
	}
	return sc
}

// chaosWorkloads is the sweep corpus (a small slice of the record-path
// chaos corpus: daemon schedules run several jobs per seed).
func chaosWorkloads() []struct{ name, src string } {
	return []struct{ name, src string }{
		{"running", workloads.RunningExample(workloads.Random, 32, 8, 1)},
		{"sorts", workloads.MergeVsInsertion(24, 8, 1)},
	}
}

// runChaosOne boots a faulted daemon, pushes a few jobs through it, drains,
// and classifies. Panics become violations.
func runChaosOne(cfg chaos.Config, seed uint64, rep *chaos.Report) (res chaos.Result) {
	cases := chaosWorkloads()
	w := cases[(seed/4)%uint64(len(cases))]
	sc := newServiceSchedule(seed)
	res = chaos.Result{Seed: seed, Workload: w.name, Faults: sc.names}
	defer func() {
		if r := recover(); r != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d: panic: %v", seed, r))
			res.Outcome = chaos.Failed
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	violation := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d (%s): %s", seed, w.name, fmt.Sprintf(format, args...)))
	}

	plan := faultinject.NewPlan(seed)
	for _, arm := range sc.arms {
		arm(plan)
	}
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("svc-seed-%d", seed))
	svc, err := New(Config{StoreDir: dir, Workers: 2, Plan: plan})
	if err != nil {
		// Boot-time store faults must be typed too.
		res.Outcome = chaos.Failed
		res.Class = faultinject.ClassOf(err)
		res.Err = err.Error()
		if res.Class == faultinject.Unknown {
			violation("untyped service boot failure: %v", err)
		}
		return res
	}

	// Three jobs per schedule, distinct seeds, one per tenant pair.
	const jobs = 3
	var ids []string
	rejected := 0
	for i := 0; i < jobs; i++ {
		v, err := svc.Submit(SubmitRequest{
			Tenant:  fmt.Sprintf("chaos-%d", i%2),
			Program: w.src,
			Config:  JobConfig{Seed: seed*uint64(jobs) + uint64(i) + 1},
		})
		if err != nil {
			if faultinject.ClassOf(err) == faultinject.Unknown {
				violation("untyped submission rejection: %v", err)
			}
			rejected++
			continue
		}
		ids = append(ids, v.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	svc.Drain(ctx)
	cancel()

	// Classify: every admitted job must be terminal; failures must be
	// typed.
	worst := chaos.OK
	for _, id := range ids {
		v, ok := svc.Job(id)
		if !ok || !v.Status.Terminal() {
			violation("job %s lost: not terminal after drain", id)
			continue
		}
		switch v.Status {
		case StatusDegraded:
			if worst == chaos.OK {
				worst = chaos.Degraded
			}
		case StatusFailed:
			worst = chaos.Failed
			res.Class = faultinject.ClassOf(fmt.Errorf("%s", v.Error))
			res.Err = v.Error
			if v.ErrorClass == faultinject.Unknown.String() || v.ErrorKind == "" {
				violation("job %s failed untyped: kind=%q class=%q err=%s", id, v.ErrorKind, v.ErrorClass, v.Error)
			}
			// Carry the job's own classification into the result.
			res.Class = classFromName(v.ErrorClass)
		}
	}
	if rejected == jobs && len(ids) == 0 && worst == chaos.OK {
		// Everything bounced at intake, typed: a failed schedule, not a
		// violation.
		worst = chaos.Failed
		res.Err = "all submissions rejected at intake (typed)"
		res.Class = faultinject.Transient
	}

	// The store must reopen and list cleanly, and every persisted run must
	// either pass the forensic audit or carry detected (typed) damage.
	clean, err := store.Open(dir)
	if err != nil {
		violation("store unopenable after drain: %v", err)
		res.Outcome = worst
		return res
	}
	clean.SetLogf(func(string, ...any) {})
	names, err := clean.List()
	if err != nil {
		violation("store unlistable after drain: %v", err)
		res.Outcome = worst
		return res
	}
	for _, name := range names {
		findings := chaos.AuditRun(filepath.Join(dir, name))
		if len(findings) == 0 {
			continue
		}
		// Detected damage: acceptable — but it must be typed, and it turns
		// the schedule's outcome into a failure, never a silent pass.
		for _, f := range findings {
			if f.Class == faultinject.Unknown {
				violation("run %s audit finding untyped: %s", name, f.Msg)
			}
		}
		worst = chaos.Failed
		if res.Err == "" {
			res.Err = fmt.Sprintf("run %s: %s", name, findings[0].Msg)
			res.Class = findings[0].Class
		}
	}

	res.Outcome = worst
	return res
}

// classFromName maps a serialized fault-class name back to the enum.
func classFromName(name string) faultinject.FaultClass {
	for _, c := range []faultinject.FaultClass{
		faultinject.Transient, faultinject.Corruption, faultinject.Resource,
	} {
		if c.String() == name {
			return c
		}
	}
	return faultinject.Unknown
}
