package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"algoprof/internal/workloads"
)

// LoadConfig parameterizes a load-generation run against a live daemon.
type LoadConfig struct {
	// Addr is the daemon's base URL, e.g. "http://127.0.0.1:7071".
	Addr string
	// Jobs is the total number of jobs to complete (default 1000).
	Jobs int
	// Concurrency is the number of in-flight submissions (default 64).
	Concurrency int
	// Tenants spreads jobs round-robin over this many synthetic tenants
	// "load-0".."load-N-1" (default 4).
	Tenants int
	// Program is the MJ source each job profiles (default: a small
	// running-example sort; callers override for heavier programs).
	Program string
	// DegradeEvery gives every k-th job a tight MaxEvents so the run
	// exercises the deterministic-degradation path (0 disables; default 5).
	DegradeEvery int
	// PathsEvery runs every k-th job in paths mode (profile-only, no
	// persist), mixing persisted and unpersisted work (0 disables;
	// default 7).
	PathsEvery int
	// Retries bounds resubmission attempts for quota/overload rejections
	// (default 50; backpressure is typed, so retrying is the contract).
	Retries int
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

// LoadReport is the load run's result — what algoprofd loadgen writes to
// BENCH_service.json.
type LoadReport struct {
	GeneratedUnix int64 `json:"generated_unix"`
	GoMaxProcs    int   `json:"gomaxprocs"`

	Jobs        int `json:"jobs"`
	Concurrency int `json:"concurrency"`
	Tenants     int `json:"tenants"`

	// Terminal-status counts. OK+Degraded+Failed must equal Jobs: no job
	// is lost.
	OK       int64 `json:"ok"`
	Degraded int64 `json:"degraded"`
	Failed   int64 `json:"failed"`
	// Lost counts jobs that never reached a terminal status — the gate
	// requires 0.
	Lost int64 `json:"lost"`
	// UntypedFailures counts failed jobs missing an error kind or
	// classifying unknown — the gate requires 0.
	UntypedFailures int64 `json:"untyped_failures"`
	// RetriedSubmits counts typed quota/overload rejections that were
	// retried (backpressure working as designed, not an error). A retried
	// job still counts exactly once in Jobs and JobsPerSec — retries are
	// attempts, not extra work completed.
	RetriedSubmits int64 `json:"retried_submits"`
	// SubmitAttempts is the total number of submission attempts across all
	// jobs (first tries plus retries): Jobs + RetriedSubmits when nothing
	// is lost. MaxSubmitAttempts is the worst single job's attempt count —
	// how deep backpressure pushed one submitter.
	SubmitAttempts    int64 `json:"submit_attempts"`
	MaxSubmitAttempts int64 `json:"max_submit_attempts"`

	WallMs     int64   `json:"wall_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`

	// End-to-end latency (submit to terminal response) percentiles.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`

	// MaxQueueDepth is the deepest /v1/stats queue observed while the
	// run was in flight.
	MaxQueueDepth int `json:"max_queue_depth"`
}

// jobResult is one job's client-side outcome.
type jobResult struct {
	status   JobStatus
	errKind  string
	errClass string
	latency  time.Duration
	lost     bool
	// attempts is how many submissions this job took (1 = accepted first
	// try); attempts-1 of them were typed-backpressure retries.
	attempts int64
}

// RunLoad hammers the daemon at cfg.Addr and accounts for every job: each
// either reaches a terminal status (ok / degraded / typed-failed) or is
// counted lost. It returns an error only when the daemon is unreachable —
// job-level failures land in the report for the gate to judge.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1000
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 64
	}
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.Program == "" {
		cfg.Program = defaultLoadProgram
	}
	if cfg.DegradeEvery == 0 {
		cfg.DegradeEvery = 5
	}
	if cfg.PathsEvery == 0 {
		cfg.PathsEvery = 7
	}
	if cfg.Retries == 0 {
		cfg.Retries = 50
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Fail fast when nothing is listening — a connection error per job
	// would masquerade as 100% lost.
	if resp, err := client.Get(cfg.Addr + "/v1/healthz"); err != nil {
		return nil, fmt.Errorf("loadgen: daemon unreachable at %s: %v", cfg.Addr, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Queue-depth sampler.
	var maxQueue atomic.Int64
	sampleCtx, stopSampling := context.WithCancel(ctx)
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				resp, err := client.Get(cfg.Addr + "/v1/stats")
				if err != nil {
					continue
				}
				var st Stats
				json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if d := int64(st.Queued); d > maxQueue.Load() {
					maxQueue.Store(d)
				}
			}
		}
	}()

	start := time.Now()
	results := make([]jobResult, cfg.Jobs)
	indices := make(chan int)
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				results[i] = runOneLoadJob(ctx, client, cfg, i)
				// Count completion here — not at dispatch — so the progress
				// log reports jobs actually terminal, not merely handed to a
				// submitter goroutine.
				done.Add(1)
			}
		}()
	}
	go func() {
		tick := time.NewTicker(2 * time.Second)
		defer tick.Stop()
		for range tick.C {
			n := done.Load()
			if n >= int64(cfg.Jobs) {
				return
			}
			logf("loadgen: %d/%d jobs done", n, cfg.Jobs)
		}
	}()
	for i := 0; i < cfg.Jobs; i++ {
		select {
		case indices <- i:
		case <-ctx.Done():
			break
		}
	}
	close(indices)
	wg.Wait()
	wall := time.Since(start)
	stopSampling()
	samplerWG.Wait()

	rep := &LoadReport{
		Jobs:          cfg.Jobs,
		Concurrency:   cfg.Concurrency,
		Tenants:       cfg.Tenants,
		WallMs:        wall.Milliseconds(),
		MaxQueueDepth: int(maxQueue.Load()),
	}
	var lat []float64
	for _, r := range results {
		if r.attempts > 1 {
			rep.RetriedSubmits += r.attempts - 1
		}
		rep.SubmitAttempts += r.attempts
		if r.attempts > rep.MaxSubmitAttempts {
			rep.MaxSubmitAttempts = r.attempts
		}
		if r.lost {
			rep.Lost++
			continue
		}
		lat = append(lat, float64(r.latency.Microseconds())/1000)
		switch r.status {
		case StatusOK:
			rep.OK++
		case StatusDegraded:
			rep.Degraded++
		case StatusFailed:
			rep.Failed++
			if r.errKind == "" || r.errClass == "" || r.errClass == "unknown" {
				rep.UntypedFailures++
			}
		default:
			rep.Lost++
		}
	}
	if wall > 0 {
		rep.JobsPerSec = float64(cfg.Jobs-int(rep.Lost)) / wall.Seconds()
	}
	sort.Float64s(lat)
	rep.LatencyP50Ms = percentile(lat, 50)
	rep.LatencyP95Ms = percentile(lat, 95)
	rep.LatencyP99Ms = percentile(lat, 99)
	return rep, nil
}

// runOneLoadJob submits job i with wait=1 and returns its outcome,
// retrying typed capacity rejections with backoff.
func runOneLoadJob(ctx context.Context, client *http.Client, cfg LoadConfig, i int) jobResult {
	req := SubmitRequest{
		Tenant:   fmt.Sprintf("load-%d", i%cfg.Tenants),
		Workload: "loadgen",
		Program:  cfg.Program,
		Config: JobConfig{
			Seed: uint64(i + 1),
		},
	}
	if cfg.DegradeEvery > 0 && i%cfg.DegradeEvery == cfg.DegradeEvery-1 {
		req.Config.MaxEvents = 500
	}
	if cfg.PathsEvery > 0 && i%cfg.PathsEvery == cfg.PathsEvery-1 {
		req.Config.Mode = "paths"
	}
	body, _ := json.Marshal(req)

	start := time.Now()
	var res jobResult
	for attempt := 0; ; attempt++ {
		select {
		case <-ctx.Done():
			res.lost = true
			return res
		default:
		}
		res.attempts++
		resp, err := client.Post(cfg.Addr+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			res.lost = true
			return res
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			var sr SubmitResponse
			if err := json.Unmarshal(data, &sr); err != nil || len(sr.Jobs) == 0 {
				res.lost = true
				return res
			}
			v := sr.Jobs[0]
			if !v.Status.Terminal() {
				res.lost = true
				return res
			}
			res.status = v.Status
			res.errKind = v.ErrorKind
			res.errClass = v.ErrorClass
			res.latency = time.Since(start)
			return res
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Typed backpressure: retry with linear backoff.
			if attempt >= cfg.Retries {
				var ae apiError
				json.Unmarshal(data, &ae)
				res.status = StatusFailed
				res.errKind = ae.Kind
				res.errClass = ae.Class
				res.latency = time.Since(start)
				return res
			}
			time.Sleep(time.Duration(5*(attempt+1)) * time.Millisecond)
		default:
			res.lost = true
			return res
		}
	}
}

// percentile returns the p-th percentile of sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// CheckLoadReport gates a load run the way `paper bench -check` gates the
// perf benchmarks: structural invariants always hold, the throughput bar
// applies only against a baseline and only off single-core runners (where
// scheduling noise would make it flaky). It returns the violated
// invariants, empty when the run passes.
func CheckLoadReport(rep, baseline *LoadReport) []string {
	var bad []string
	if rep.Lost != 0 {
		bad = append(bad, fmt.Sprintf("%d jobs lost (every job must terminate ok/degraded/typed-failed)", rep.Lost))
	}
	if rep.UntypedFailures != 0 {
		bad = append(bad, fmt.Sprintf("%d failed jobs without a typed error kind/class", rep.UntypedFailures))
	}
	if got := rep.OK + rep.Degraded + rep.Failed + rep.Lost; got != int64(rep.Jobs) {
		bad = append(bad, fmt.Sprintf("status counts sum to %d, want %d", got, rep.Jobs))
	}
	if rep.OK == 0 {
		bad = append(bad, "no job succeeded")
	}
	if rep.Lost == 0 && rep.SubmitAttempts != int64(rep.Jobs)+rep.RetriedSubmits {
		bad = append(bad, fmt.Sprintf("submit attempts %d != jobs %d + retries %d (retried jobs must count once)",
			rep.SubmitAttempts, rep.Jobs, rep.RetriedSubmits))
	}
	if rep.LatencyP50Ms > rep.LatencyP99Ms {
		bad = append(bad, fmt.Sprintf("p50 %.1fms > p99 %.1fms", rep.LatencyP50Ms, rep.LatencyP99Ms))
	}
	if baseline != nil && rep.GoMaxProcs > 1 && baseline.JobsPerSec > 0 {
		// Generous 4x regression bar, same spirit as BENCH_replay gates.
		if rep.JobsPerSec < baseline.JobsPerSec/4 {
			bad = append(bad, fmt.Sprintf("throughput %.1f jobs/s < baseline %.1f/4", rep.JobsPerSec, baseline.JobsPerSec))
		}
	}
	return bad
}

// defaultLoadProgram is a small running-example sort: enough structure for
// a real profile (an algorithm, a cost fit) while fast enough to run
// thousands of times in CI.
var defaultLoadProgram = workloads.RunningExample(workloads.Random, 32, 8, 1)
