package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/workloads"
)

// smallSrc is a quick running-example sort — a job that completes in
// milliseconds.
var smallSrc = workloads.RunningExample(workloads.Random, 24, 8, 1)

// busySrc runs long enough (tens of milliseconds, many watchdog polls)
// that drain and concurrency tests can deterministically catch it queued
// or mid-flight.
const busySrc = `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 5000000; i++) { s = s + 1; }
    check(s == 5000000);
  }
}`

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

// libraryJSON runs the program through the library API and returns the
// profile JSON in the service's compact wire form.
func libraryJSON(t *testing.T, src string, cfg algoprof.Config) []byte {
	t.Helper()
	prof, err := algoprof.Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// awaitJob blocks until the job is terminal.
func awaitJob(t *testing.T, s *Service, id string) *JobView {
	t.Helper()
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		t.Fatalf("subscribe %s: %v", id, err)
	}
	defer cancel()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("job %s not terminal after 60s", id)
		case ev, ok := <-ch:
			if !ok {
				v, found := s.Job(id)
				if !found || !v.Status.Terminal() {
					t.Fatalf("stream for %s closed before terminal state", id)
				}
				return v
			}
			if ev.Type == "result" {
				return ev.Result
			}
		}
	}
}

// TestConcurrentSubmissionDeterministic is the headline -race test: N
// client goroutines × M jobs each, spread over tenants, all completing
// with the same byte-identical profile the library API produces for the
// same program and config — queueing order and worker interleaving must
// not leak into results.
func TestConcurrentSubmissionDeterministic(t *testing.T) {
	const clients, jobsPer = 8, 4
	s := newTestService(t, Config{Workers: 4, QueueDepth: 256})

	// The ground truth: one library run per seed.
	want := map[uint64][]byte{}
	for seed := uint64(1); seed <= 3; seed++ {
		want[seed] = libraryJSON(t, smallSrc, algoprof.Config{Seed: seed})
	}

	type submitted struct {
		id   string
		seed uint64
	}
	var mu sync.Mutex
	var all []submitted
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < jobsPer; j++ {
				seed := uint64(1 + (c+j)%3)
				v, err := s.Submit(SubmitRequest{
					Tenant:  fmt.Sprintf("tenant-%d", c%3),
					Program: smallSrc,
					Config:  JobConfig{Seed: seed},
				})
				if err != nil {
					t.Errorf("client %d submit: %v", c, err)
					return
				}
				mu.Lock()
				all = append(all, submitted{v.ID, seed})
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if len(all) != clients*jobsPer {
		t.Fatalf("submitted %d jobs, want %d", len(all), clients*jobsPer)
	}
	for _, sub := range all {
		v := awaitJob(t, s, sub.id)
		if v.Status != StatusOK {
			t.Fatalf("job %s status %s (%s), want ok", sub.id, v.Status, v.Error)
		}
		if !bytes.Equal(v.Profile, want[sub.seed]) {
			t.Errorf("job %s (seed %d): profile differs from library run", sub.id, sub.seed)
		}
	}

	// Every events-mode job persisted into the store under its tenant.
	names, err := s.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != clients*jobsPer {
		t.Fatalf("store has %d runs, want %d", len(names), clients*jobsPer)
	}
	scoped, err := s.Store().ListTenant("tenant-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(scoped) == 0 {
		t.Fatal("tenant-0 has no runs in the store")
	}
}

// TestNoCrossTenantQuotaBleed: one tenant exhausting its event budget must
// not clamp, reject, or degrade another tenant's jobs.
func TestNoCrossTenantQuotaBleed(t *testing.T) {
	s := newTestService(t, Config{
		Workers: 2,
		Quotas: map[string]Quota{
			"capped": {EventBudget: 500},
		},
	})

	// Burn the capped tenant's budget.
	v, err := s.Submit(SubmitRequest{Tenant: "capped", Program: smallSrc, Config: JobConfig{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	fv := awaitJob(t, s, v.ID)
	if fv.Status != StatusDegraded {
		t.Fatalf("capped job status %s, want degraded (budget clamps MaxEvents)", fv.Status)
	}
	if fv.EffectiveLimits.MaxEvents != 500 {
		t.Fatalf("capped job effective MaxEvents %d, want 500", fv.EffectiveLimits.MaxEvents)
	}

	// Budget spent: next capped submission rejects typed.
	_, err = s.Submit(SubmitRequest{Tenant: "capped", Program: smallSrc, Config: JobConfig{Seed: 1}})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("over-budget submit error = %v (%T), want *QuotaError", err, err)
	}
	if qe.Limit != "event-budget" {
		t.Fatalf("quota error limit %q, want event-budget", qe.Limit)
	}

	// The free tenant is untouched: unclamped limits, ok status.
	v, err = s.Submit(SubmitRequest{Tenant: "free", Program: smallSrc, Config: JobConfig{Seed: 1}})
	if err != nil {
		t.Fatalf("free tenant submit: %v", err)
	}
	fv = awaitJob(t, s, v.ID)
	if fv.Status != StatusOK {
		t.Fatalf("free tenant job status %s (%v), want ok", fv.Status, fv.Error)
	}
	if fv.EffectiveLimits.MaxEvents != 0 {
		t.Fatalf("free tenant job got clamped to %d events", fv.EffectiveLimits.MaxEvents)
	}

	st := s.Stats()
	if st.Tenants["free"].Rejected != 0 {
		t.Fatalf("free tenant has %d rejections, want 0", st.Tenants["free"].Rejected)
	}
	if st.Tenants["capped"].Rejected != 1 {
		t.Fatalf("capped tenant has %d rejections, want 1", st.Tenants["capped"].Rejected)
	}
}

// TestQuotaMaxActive: a tenant at its concurrency bound rejects typed
// while another tenant still submits freely.
func TestQuotaMaxActive(t *testing.T) {
	s := newTestService(t, Config{
		Workers: 1,
		Quotas:  map[string]Quota{"busy": {MaxActive: 1}},
	})
	v, err := s.Submit(SubmitRequest{Tenant: "busy", Program: busySrc})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(SubmitRequest{Tenant: "busy", Program: smallSrc})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("second submit error = %v (%T), want *QuotaError", err, err)
	}
	if qe.Limit != "max-active" {
		t.Fatalf("limit %q, want max-active", qe.Limit)
	}
	// Another tenant is not blocked by it.
	if _, err := s.Submit(SubmitRequest{Tenant: "other", Program: smallSrc}); err != nil {
		t.Fatalf("other tenant submit: %v", err)
	}
	fv := awaitJob(t, s, v.ID)
	if fv.Status != StatusOK {
		t.Fatalf("busy job finished %s (%v), want ok", fv.Status, fv.Error)
	}
	// Slot freed: the tenant can submit again.
	if _, err := s.Submit(SubmitRequest{Tenant: "busy", Program: smallSrc}); err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
}

// TestDeadlineCeilingClamp: a tenant deadline ceiling imposes itself on
// jobs that ask for more (or for no deadline at all).
func TestDeadlineCeilingClamp(t *testing.T) {
	s := newTestService(t, Config{
		Quotas: map[string]Quota{"t": {DeadlineCeiling: 50 * time.Millisecond}},
	})
	v, err := s.Submit(SubmitRequest{Tenant: "t", Program: smallSrc})
	if err != nil {
		t.Fatal(err)
	}
	if v.EffectiveLimits.Deadline != 50*time.Millisecond {
		t.Fatalf("effective deadline %v, want 50ms", v.EffectiveLimits.Deadline)
	}
	v, err = s.Submit(SubmitRequest{Tenant: "t", Program: smallSrc, Config: JobConfig{DeadlineMs: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if v.EffectiveLimits.Deadline != 10*time.Millisecond {
		t.Fatalf("tighter requested deadline clobbered: %v", v.EffectiveLimits.Deadline)
	}
}

// TestGracefulDrain: draining lets queued and running jobs finish, rejects
// new work typed, and is idempotent.
func TestGracefulDrain(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	var ids []string
	for i := 0; i < 6; i++ {
		v, err := s.Submit(SubmitRequest{Program: smallSrc, Config: JobConfig{Seed: uint64(i + 1)}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok || v.Status != StatusOK {
			t.Fatalf("after graceful drain, job %s = %+v, want ok", id, v)
		}
	}
	_, err := s.Submit(SubmitRequest{Program: smallSrc})
	var de *DrainingError
	if !errors.As(err, &de) {
		t.Fatalf("submit while drained error = %v (%T), want *DrainingError", err, err)
	}
	// Idempotent: a second drain returns immediately.
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestForceDrainSalvagesAndTypes: an expired drain context cancels
// in-flight jobs — they land degraded with salvaged partial profiles — and
// fails still-queued jobs with the typed draining error. No job is lost,
// and the store survives listable.
func TestForceDrainSalvagesAndTypes(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	var ids []string
	for i := 0; i < 4; i++ {
		v, err := s.Submit(SubmitRequest{Program: busySrc})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Give the first job a moment to start, then force-drain immediately.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var degraded, failed int
	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s lost in drain", id)
		}
		switch v.Status {
		case StatusDegraded:
			degraded++
			found := false
			for _, r := range v.DegradedReasons {
				if r == "interrupted" {
					found = true
				}
			}
			if !found {
				t.Errorf("cancelled job %s reasons %v, want interrupted", id, v.DegradedReasons)
			}
		case StatusFailed:
			failed++
			if v.ErrorKind == "" || v.ErrorClass != "resource" {
				t.Errorf("job %s failed untyped: kind=%q class=%q", id, v.ErrorKind, v.ErrorClass)
			}
		case StatusOK:
			// A job can legitimately finish in the race window.
		default:
			t.Errorf("job %s stuck in %s after drain", id, v.Status)
		}
	}
	if degraded == 0 && failed == 0 {
		t.Error("force drain neither salvaged nor typed-failed any job; the busy jobs all finished — raise the workload")
	}
	// The store is still listable (crash-safety contract).
	if _, err := s.Store().List(); err != nil {
		t.Fatalf("store unlistable after force drain: %v", err)
	}
}

// threadedBusySrc spawns two worker threads right at the top of main and
// joins them. The workers carry all the work, so a drain that lands
// mid-job catches the daemon with live thread goroutines. Spawning first
// matters: even an immediately-cancelled run executes a watchdog-interval
// prefix, so both per-thread sessions deterministically exist by the time
// the run is halted.
const threadedBusySrc = `
class Main {
  public static void main() {
    int h1 = spawn Main.work();
    int h2 = spawn Main.work();
    join h1;
    join h2;
  }
  static void work() {
    int s = 0;
    for (int i = 0; i < 3000000; i++) { s = s + 1; }
    check(s == 3000000);
  }
}`

// TestForceDrainWithInFlightThreads: force-draining while a job has live
// spawned thread goroutines salvages a degraded profile with every thread
// accounted — the per-thread sessions are merged, not dropped, and their
// events are charged. This is the graceful-drain vs. in-flight-spawn
// contract from the threading model.
func TestForceDrainWithInFlightThreads(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := s.Submit(SubmitRequest{Program: threadedBusySrc})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Let the first job reach its spawns, then force-drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	var salvaged int
	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s lost in drain", id)
		}
		switch v.Status {
		case StatusDegraded:
			salvaged++
			interrupted := false
			for _, r := range v.DegradedReasons {
				if r == "interrupted" {
					interrupted = true
				}
			}
			if !interrupted {
				t.Errorf("salvaged job %s reasons %v, want interrupted", id, v.DegradedReasons)
			}
			if len(v.Profile) == 0 {
				t.Fatalf("salvaged job %s has no profile", id)
			}
			var p struct {
				Threads int `json:"threads"`
			}
			if err := json.Unmarshal(v.Profile, &p); err != nil {
				t.Fatalf("salvaged profile for %s unparsable: %v", id, err)
			}
			if p.Threads != 2 {
				t.Errorf("salvaged job %s accounts %d threads, want 2", id, p.Threads)
			}
			if v.Events == 0 {
				t.Errorf("salvaged job %s charged zero events despite live threads", id)
			}
		case StatusFailed:
			// Still-queued jobs fail typed; they never started a thread.
			if v.ErrorClass != "resource" {
				t.Errorf("queued job %s failed untyped: class=%q", id, v.ErrorClass)
			}
		case StatusOK:
			// Legitimate if the job finished inside the race window.
		default:
			t.Errorf("job %s stuck in %s after drain", id, v.Status)
		}
	}
	if salvaged == 0 {
		t.Error("no job was salvaged mid-threads; the threaded workload finished too fast — raise it")
	}
}

// TestPathsModeRunsWithoutPersist: a paths-mode job completes with a
// profile but no stored run.
func TestPathsModeRunsWithoutPersist(t *testing.T) {
	s := newTestService(t, Config{})
	v, err := s.Submit(SubmitRequest{Program: smallSrc, Config: JobConfig{Mode: "paths"}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Persist {
		t.Fatal("paths-mode job marked persisted")
	}
	fv := awaitJob(t, s, v.ID)
	if fv.Status != StatusOK {
		t.Fatalf("paths job %s (%v), want ok", fv.Status, fv.Error)
	}
	if len(fv.Profile) == 0 {
		t.Fatal("paths job returned no profile")
	}
	names, err := s.Store().List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("paths-mode job persisted runs: %v", names)
	}
}

// TestInvalidSubmissions: validation rejections are typed and nothing is
// admitted.
func TestInvalidSubmissions(t *testing.T) {
	s := newTestService(t, Config{})
	cases := []SubmitRequest{
		{Program: "class { nope"},
		{Program: smallSrc, Config: JobConfig{Mode: "turbo"}},
		{Program: smallSrc, Tenant: "bad tenant name!"},
	}
	for _, req := range cases {
		_, err := s.Submit(req)
		var inv *InvalidJobError
		if !errors.As(err, &inv) {
			t.Fatalf("submit %+v error = %v (%T), want *InvalidJobError", req.Config, err, err)
		}
	}
	if got := len(s.Jobs("")); got != 0 {
		t.Fatalf("%d jobs admitted from invalid submissions", got)
	}
}
