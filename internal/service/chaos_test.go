package service

import (
	"testing"

	"algoprof/internal/chaos"
)

func chaosConfigForTest(t *testing.T, seeds int) chaos.Config {
	t.Helper()
	return chaos.Config{Seeds: seeds, Dir: t.TempDir()}
}

// TestRunChaosNoViolations: a sweep over all four schedule families lands
// every job in the trichotomy with zero harness violations.
func TestRunChaosNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep in -short mode")
	}
	rep, err := RunChaos(chaosConfigForTest(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("chaos violations:\n%s", rep.Render())
	}
	ok, degraded, failed := rep.Counts()
	if ok == 0 {
		t.Errorf("no schedule succeeded:\n%s", rep.Render())
	}
	t.Logf("service chaos: %d ok, %d degraded, %d failed (typed)", ok, degraded, failed)
}
