// Package service turns the algoprof library into a long-running,
// multi-tenant profiling daemon: clients submit MJ programs with per-run
// configurations over HTTP/JSON, jobs queue on a bounded worker pool
// (internal/experiments.Pool), per-tenant quotas layer on the
// algoprof.Limits machinery, progress and results stream as NDJSON, and
// every completed events-mode run persists into the run store — so
// `algoprof verify`, `diff`, and `fleetdiff` work on service output
// unchanged.
//
// The lifecycle contract is the one the rest of the repo enforces: a job
// never disappears. Every admitted job terminates in exactly one of three
// statuses — "ok", "degraded" (a resource limit tripped and the run
// degraded deterministically, or a drain salvaged a partial profile), or
// "failed" with a typed error. Crashes and drains leave the store
// listable per the crash-safe write path.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"algoprof"
	"algoprof/internal/experiments"
	"algoprof/internal/faultinject"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace/store"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job statuses. Queued and Running are transient; OK, Degraded, and Failed
// are terminal — every admitted job reaches exactly one of them.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusOK       JobStatus = "ok"
	StatusDegraded JobStatus = "degraded"
	StatusFailed   JobStatus = "failed"
)

// Terminal reports whether the status is final.
func (s JobStatus) Terminal() bool {
	return s == StatusOK || s == StatusDegraded || s == StatusFailed
}

// DrainingError reports a submission rejected because the service is
// draining (SIGTERM). Typed and Resource-classed: the client should
// resubmit elsewhere or later.
type DrainingError struct{}

// Error implements error.
func (*DrainingError) Error() string { return "service: draining: not accepting new jobs" }

// FaultClass implements faultinject.Classifier.
func (*DrainingError) FaultClass() faultinject.FaultClass { return faultinject.Resource }

// OverloadError reports a submission rejected because the global job queue
// is full. Typed backpressure (Resource): retry with backoff.
type OverloadError struct{ Depth int }

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("service: job queue full (%d pending)", e.Depth)
}

// FaultClass implements faultinject.Classifier.
func (*OverloadError) FaultClass() faultinject.FaultClass { return faultinject.Resource }

// InvalidJobError reports a submission rejected at validation: an unknown
// mode, a bad tenant name, or a program that does not compile. It carries
// no fault class — it is the client's request that is wrong, not the
// service's resources (HTTP 400, not 429/503).
type InvalidJobError struct{ Reason string }

// Error implements error.
func (e *InvalidJobError) Error() string { return "service: invalid job: " + e.Reason }

// JobConfig is the per-run configuration a client submits. It is the
// JSON-friendly projection of algoprof.Config plus the service-level
// extras (all-backends pass, compression).
type JobConfig struct {
	// Mode is the profiling mode: "events" (default; persisted to the run
	// store) or "paths" (path counters; lower overhead, profile-only —
	// the trace format carries exact event streams, so paths-mode jobs
	// return their profile without persisting a trace).
	Mode string `json:"mode,omitempty"`
	// Seed drives the program's rand() builtin (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Input feeds the program's readInput() builtin.
	Input []int64 `json:"input,omitempty"`
	// SampleEvery keeps every k-th invocation record (§3.3 memory
	// optimization).
	SampleEvery int `json:"sample_every,omitempty"`
	// Verify attaches the online invariant verifier to the run.
	Verify bool `json:"verify,omitempty"`
	// AllBackends additionally runs the three-backend (core+CCT+bb)
	// union-pipeline pass and reports the backend fingerprint and hot
	// summaries.
	AllBackends bool `json:"all_backends,omitempty"`
	// MaxEvents, MaxLiveBytes, MaxTraceBytes, DeadlineMs request
	// algoprof.Limits; tenant quotas clamp them (never loosen).
	MaxEvents     uint64 `json:"max_events,omitempty"`
	MaxLiveBytes  int64  `json:"max_live_bytes,omitempty"`
	MaxTraceBytes int64  `json:"max_trace_bytes,omitempty"`
	DeadlineMs    int64  `json:"deadline_ms,omitempty"`
	// NoCompress disables DEFLATE trace compression.
	NoCompress bool `json:"no_compress,omitempty"`
}

// SubmitRequest is one job submission.
type SubmitRequest struct {
	// Tenant names the submitting tenant ("default" when empty).
	Tenant string `json:"tenant,omitempty"`
	// Workload is a label stored in the run manifest.
	Workload string `json:"workload,omitempty"`
	// Program is the MJ source to profile.
	Program string `json:"program"`
	// Config is the per-run configuration.
	Config JobConfig `json:"config"`
	// InputSweep, when non-empty, expands the submission into one job per
	// entry, each with Config.Input set to that entry (HTTP layer only).
	InputSweep [][]int64 `json:"input_sweep,omitempty"`
}

// BackendSummary reports the optional all-backends pass.
type BackendSummary struct {
	// Fingerprint hashes all three backends' outputs; equal fingerprints
	// mean byte-identical profiles, CCTs, and basic-block counts.
	Fingerprint string `json:"fingerprint"`
	// HottestMethod and TopBlock are the CCT and bb headline results.
	HottestMethod string `json:"hottest_method"`
	TopBlock      string `json:"top_block"`
}

// JobView is a job's externally visible state — what GET /v1/jobs/{id}
// returns and what the result stream's final event carries.
type JobView struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant"`
	Workload string    `json:"workload,omitempty"`
	Status   JobStatus `json:"status"`
	// Persist reports whether the job records into the run store (events
	// mode) or returns a profile only (paths mode).
	Persist bool   `json:"persist"`
	Mode    string `json:"mode"`

	SubmittedUnixMs int64 `json:"submitted_unix_ms"`
	QueueMs         int64 `json:"queue_ms,omitempty"`
	RunMs           int64 `json:"run_ms,omitempty"`

	// EffectiveLimits are the job's limits after quota clamping — what the
	// run actually enforced.
	EffectiveLimits algoprof.Limits `json:"effective_limits"`

	// Degraded and DegradedReasons mirror the profile's degradation state
	// (PR 4 semantics: totals exact, series sampled).
	Degraded        bool     `json:"degraded,omitempty"`
	DegradedReasons []string `json:"degraded_reasons,omitempty"`

	// Error/ErrorKind/ErrorClass describe a failed job: the message, the
	// service-level kind ("draining", "cancelled", "persist", "internal",
	// ...), and the faultinject class ("transient", "corruption",
	// "resource", "unknown").
	Error      string `json:"error,omitempty"`
	ErrorKind  string `json:"error_kind,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`

	// Instructions and Events are the executed instruction count and the
	// profiling events charged against the tenant's event budget.
	Instructions uint64 `json:"instructions,omitempty"`
	Events       uint64 `json:"events,omitempty"`
	// TraceBytes is the stored trace size charged against the tenant's
	// trace budget.
	TraceBytes int64 `json:"trace_bytes,omitempty"`

	Backends *BackendSummary `json:"backends,omitempty"`

	// Worker names the remote worker that executed the job (distributed
	// dispatch only) and DispatchAttempts counts the dispatch attempts it
	// took (1 = first try; 0 = executed locally, no dispatch layer).
	Worker           string `json:"worker,omitempty"`
	DispatchAttempts int    `json:"dispatch_attempts,omitempty"`

	// Profile is the profile's JSON (algorithms, cost functions, outputs)
	// for ok and degraded jobs — byte-identical to the same program and
	// config run through the library API.
	Profile json.RawMessage `json:"profile,omitempty"`
}

// Event is one entry in a job's NDJSON result stream.
type Event struct {
	// Type is "status" (lifecycle transition), "progress" (heartbeat), or
	// "result" (terminal, carries the final JobView).
	Type       string    `json:"type"`
	Job        string    `json:"job"`
	TimeUnixMs int64     `json:"time_unix_ms"`
	Status     JobStatus `json:"status,omitempty"`
	// Instructions approximates executed instructions so far (progress
	// events; derived from VM watchdog polls).
	Instructions uint64 `json:"instructions,omitempty"`
	ElapsedMs    int64  `json:"elapsed_ms,omitempty"`
	Result       *JobView `json:"result,omitempty"`
}

// Stats is the service-level snapshot served by /v1/stats.
type Stats struct {
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Completed int64 `json:"completed"`
	OK        int64 `json:"ok"`
	Degraded  int64 `json:"degraded"`
	Failed    int64 `json:"failed"`
	Draining  bool  `json:"draining"`
	// Recovering counts journal-recovered jobs still re-executing after a
	// restart; the service reports not-ready until it reaches zero.
	Recovering int `json:"recovering,omitempty"`
	Workers    int `json:"workers"`
	QueueCap   int `json:"queue_cap"`

	Tenants map[string]TenantStats `json:"tenants"`
}

// Config parameterizes a Service.
type Config struct {
	// StoreDir is the run store directory (required).
	StoreDir string
	// Workers bounds concurrent jobs (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued jobs across all tenants (0 = 256).
	QueueDepth int
	// DefaultQuota applies to tenants without an explicit entry; the zero
	// quota is unlimited.
	DefaultQuota Quota
	// Quotas are per-tenant overrides.
	Quotas map[string]Quota
	// Plan is the fault-injection schedule (nil = no faults): the
	// service.intake and service.persist points plus the store's fs.*
	// points all draw from it.
	Plan *faultinject.Plan
	// MakeExecutor, when set, wraps the local executor — the seam the
	// dispatch layer (internal/dispatch) hooks to route jobs to remote
	// workers. Called once in New, before journal recovery, so recovered
	// jobs also flow through it.
	MakeExecutor func(local Executor, st *store.Store) Executor
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// progressEveryPolls throttles progress heartbeats: one event per this
// many VM watchdog polls (≈ this × vm.WatchdogInterval instructions).
const progressEveryPolls = 16

// tenantRE validates tenant names: path- and log-safe.
var tenantRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// job is the service-internal job state. All fields after construction are
// guarded by Service.mu except spec (immutable once admitted).
type job struct {
	view JobView
	spec ExecSpec
	// recovered marks a job re-enqueued from the write-ahead journal after
	// a restart; the service reports not-ready until all such jobs land.
	recovered bool

	submittedAt time.Time
	startedAt   time.Time

	subs []chan Event
}

// Service is the daemon core. One Service owns one run store, one job
// pool, one executor, one write-ahead journal, and the job table.
type Service struct {
	cfg     Config
	store   *store.Store
	pool    experiments.JobPool
	exec    Executor
	journal *store.Journal
	plan    *faultinject.Plan
	logf    func(string, ...any)
	epoch   int64 // job-ID namespace: distinct across daemon restarts on one store

	runCtx    context.Context
	runCancel context.CancelFunc

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string
	tenants    *tenants
	seq        int64
	queued     int
	running    int
	recovering int
	completed  int64
	okCount    int64
	degCount   int64
	failCount  int64
	draining   bool
	forceDrain bool

	drainOnce sync.Once
	drainDone chan struct{}
}

// New opens the store, replays the write-ahead journal (re-executing jobs
// a previous daemon admitted but never finished and re-applying their
// quota charges exactly once), and starts the worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("service: Config.StoreDir required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fsys := cfg.Plan.FS(faultinject.OS())
	st, err := store.OpenFS(cfg.StoreDir, fsys)
	if err != nil {
		return nil, err
	}
	st.SetLogf(logf)
	journal, entries, err := store.OpenJournalFS(
		filepath.Join(cfg.StoreDir, store.JournalName), fsys, faultinject.DefaultRetry, logf)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:       cfg,
		store:     st,
		pool:      experiments.NewPool(cfg.Workers, cfg.QueueDepth),
		journal:   journal,
		plan:      cfg.Plan,
		logf:      logf,
		epoch:     nextEpoch(entries),
		runCtx:    ctx,
		runCancel: cancel,
		jobs:      map[string]*job{},
		tenants:   newTenants(cfg.DefaultQuota, cfg.Quotas),
		drainDone: make(chan struct{}),
	}
	local := NewLocalExecutor(st, logf)
	s.exec = local
	if cfg.MakeExecutor != nil {
		s.exec = cfg.MakeExecutor(local, st)
	}
	if err := s.recoverJournal(entries); err != nil {
		cancel()
		return nil, err
	}
	return s, nil
}

// nextEpoch picks a job-ID epoch strictly newer than anything in the
// journal, so a restart within the same wall-clock second cannot mint IDs
// that collide with recovered jobs.
func nextEpoch(entries []store.JournalEntry) int64 {
	epoch := time.Now().Unix()
	for _, e := range entries {
		if n := epochOf(e.ID); n >= epoch {
			epoch = n + 1
		}
	}
	return epoch
}

// epochOf parses the epoch out of a "j<epoch>-<seq>" job ID (0 if the ID
// has another shape).
func epochOf(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	head, _, ok := strings.Cut(id[1:], "-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(head, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// recoverJournal turns the previous epoch's journal into live state:
// terminal and charge entries re-apply tenant quota charges exactly once,
// pending entries (admitted, never finished) re-enqueue for execution,
// and the journal compacts to per-tenant charge summaries plus the
// surviving pending entries. Safe because runs are deterministic:
// re-executing a pending job reproduces byte-identical artifacts.
func (s *Service) recoverJournal(entries []store.JournalEntry) error {
	if len(entries) == 0 {
		return nil
	}
	st := store.ReduceJournal(entries)

	// Re-apply aggregate charges: prior compaction summaries plus this
	// journal's terminal entries, each exactly once.
	folded := map[string]*store.JournalEntry{}
	var tenantOrder []string
	for _, e := range append(append([]store.JournalEntry{}, st.Charges...), st.Terminal...) {
		tenant := tenantOr(e.Tenant)
		s.tenants.get(tenant).charge(e.Events, e.TraceBytes)
		f := folded[tenant]
		if f == nil {
			f = &store.JournalEntry{Op: store.JournalCharge, Tenant: tenant}
			folded[tenant] = f
			tenantOrder = append(tenantOrder, tenant)
		}
		f.Events += e.Events
		f.TraceBytes += e.TraceBytes
		f.Jobs += max64(e.Jobs, 1)
	}
	compact := make([]store.JournalEntry, 0, len(tenantOrder)+len(st.Pending))
	for _, tenant := range tenantOrder {
		compact = append(compact, *folded[tenant])
	}

	// Re-admit pending jobs without re-running quota admission: they were
	// admitted by the previous daemon and their Limits are already clamped.
	var recovered []*job
	for _, e := range st.Pending {
		var spec ExecSpec
		if err := json.Unmarshal(e.Spec, &spec); err != nil || spec.ID == "" {
			s.logf("service: journal: dropping unreadable pending job %s: %v", e.ID, err)
			continue
		}
		if spec.Persist {
			// Clear the partial artifacts of the interrupted attempt so
			// re-execution can reserve the run name again.
			if err := s.store.Discard(spec.ID); err != nil {
				s.logf("service: journal: discard partial run %s: %v", spec.ID, err)
			}
		}
		now := time.Now()
		j := &job{
			view: JobView{
				ID:              spec.ID,
				Tenant:          spec.Tenant,
				Workload:        spec.Workload,
				Status:          StatusQueued,
				Persist:         spec.Persist,
				Mode:            modeName(spec.Config.Mode),
				SubmittedUnixMs: now.UnixMilli(),
				EffectiveLimits: spec.Config.Limits,
			},
			spec:        spec,
			recovered:   true,
			submittedAt: now,
		}
		ts := s.tenants.get(spec.Tenant)
		ts.active++
		ts.submitted++
		s.jobs[spec.ID] = j
		s.order = append(s.order, spec.ID)
		s.queued++
		s.recovering++
		compact = append(compact, e)
		recovered = append(recovered, j)
	}

	if err := s.journal.Compact(compact); err != nil {
		return fmt.Errorf("service: compact journal: %w", err)
	}
	if n := len(recovered); n > 0 {
		s.logf("service: journal: recovering %d pending job(s), %d terminal charge(s) re-applied", n, len(st.Terminal))
	}
	for _, j := range recovered {
		j := j
		if err := s.pool.TrySubmit(func() { s.execute(j) }); err != nil {
			// Never lose a recovered job to queue pressure: run it off-pool.
			go s.execute(j)
		}
	}
	return nil
}

func tenantOr(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Store exposes the service's run store (read-side tooling, tests).
func (s *Service) Store() *store.Store { return s.store }

// Submit validates, quota-checks, and enqueues one job. The returned view
// is the job's admission snapshot (status "queued"). Rejections are typed:
// *InvalidJobError (bad request), *QuotaError and *OverloadError
// (capacity), *DrainingError (lifecycle), *faultinject.Fault (armed intake
// point).
func (s *Service) Submit(req SubmitRequest) (*JobView, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if !tenantRE.MatchString(tenant) {
		return nil, &InvalidJobError{Reason: fmt.Sprintf("bad tenant name %q", tenant)}
	}
	cfg, persist, err := buildConfig(req.Config)
	if err != nil {
		return nil, err
	}
	if _, err := compiler.CompileSource(req.Program); err != nil {
		return nil, &InvalidJobError{Reason: fmt.Sprintf("program does not compile: %v", err)}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.tenants.get(tenant).rejected++
		return nil, &DrainingError{}
	}
	if err := s.plan.Point(faultinject.PointServiceIntake).Err("intake " + tenant); err != nil {
		s.tenants.get(tenant).rejected++
		return nil, err
	}
	ts := s.tenants.get(tenant)
	if err := ts.admit(tenant); err != nil {
		ts.rejected++
		return nil, err
	}
	cfg.Limits = ts.clampLimits(cfg.Limits)

	s.seq++
	id := fmt.Sprintf("j%d-%06d", s.epoch, s.seq)
	now := time.Now()
	spec := ExecSpec{
		ID:         id,
		Tenant:     tenant,
		Key:        JobKey(tenant, req.Workload, req.Program, cfg),
		Workload:   req.Workload,
		Program:    req.Program,
		Config:     cfg,
		Persist:    persist,
		Backends:   req.Config.AllBackends,
		NoCompress: req.Config.NoCompress,
	}
	j := &job{
		view: JobView{
			ID:              id,
			Tenant:          tenant,
			Workload:        req.Workload,
			Status:          StatusQueued,
			Persist:         persist,
			Mode:            modeName(cfg.Mode),
			SubmittedUnixMs: now.UnixMilli(),
			EffectiveLimits: cfg.Limits,
		},
		spec:        spec,
		submittedAt: now,
	}
	if err := s.pool.TrySubmit(func() { s.execute(j) }); err != nil {
		ts.active--
		ts.submitted--
		ts.rejected++
		if err == experiments.ErrPoolClosed {
			return nil, &DrainingError{}
		}
		return nil, &OverloadError{Depth: s.pool.QueueCap()}
	}
	// Write-ahead entry: once this lands, a crashed daemon re-executes the
	// job on restart. The append comes after the enqueue so a full queue
	// never leaves a stale journal entry; the window where a crash loses a
	// queued-but-unjournaled job closes before the client sees an ack.
	s.appendJournal(store.JournalEntry{
		Op: store.JournalEnqueue, ID: id, Tenant: tenant, Key: spec.Key,
		Workload: req.Workload, Persist: persist, Spec: marshalSpec(spec),
	})
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queued++
	s.publishLocked(j, Event{Type: "status", Status: StatusQueued})
	v := j.view
	return &v, nil
}

// marshalSpec serializes a spec for its journal entry.
func marshalSpec(spec ExecSpec) json.RawMessage {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil
	}
	return data
}

// appendJournal appends a write-ahead entry, absorbing (and loudly
// logging) persistent journal failures: durability degrades before
// availability does — the daemon keeps serving on a dead journal disk.
func (s *Service) appendJournal(e store.JournalEntry) {
	if err := s.journal.Append(e); err != nil {
		s.logf("service: journal append %s %s: %v", e.Op, e.ID, err)
	}
}

// buildConfig maps a JobConfig to an algoprof.Config and decides whether
// the job persists (events mode) or returns a profile only (paths mode).
func buildConfig(jc JobConfig) (algoprof.Config, bool, error) {
	cfg := algoprof.Config{
		Seed:        jc.Seed,
		Input:       jc.Input,
		SampleEvery: jc.SampleEvery,
		Verify:      jc.Verify,
		Limits: algoprof.Limits{
			MaxEvents:     jc.MaxEvents,
			MaxLiveBytes:  jc.MaxLiveBytes,
			MaxTraceBytes: jc.MaxTraceBytes,
			Deadline:      time.Duration(jc.DeadlineMs) * time.Millisecond,
		},
	}
	switch jc.Mode {
	case "", algoprof.ModeEvents:
		cfg.Mode = algoprof.ModeEvents
		return cfg, true, nil
	case algoprof.ModePaths:
		// The trace format carries the exact event stream; path counters
		// elide precisely the records replay needs, so paths-mode jobs
		// are profile-only (documented in docs/SERVICE.md).
		cfg.Mode = algoprof.ModePaths
		return cfg, false, nil
	}
	return cfg, false, &InvalidJobError{Reason: fmt.Sprintf("unknown mode %q", jc.Mode)}
}

func modeName(mode string) string {
	if mode == "" {
		return algoprof.ModeEvents
	}
	return mode
}

// execute runs one admitted job on a pool worker and lands it in a
// terminal status. It never lets the job vanish: every path out of here
// goes through finish().
func (s *Service) execute(j *job) {
	s.mu.Lock()
	if s.forceDrain {
		// The queue is being torn down: accepted-but-unstarted work fails
		// typed rather than silently evaporating.
		s.queued--
		s.finishLocked(j, nil, &DrainingError{}, "draining")
		s.mu.Unlock()
		return
	}
	now := time.Now()
	j.startedAt = now
	j.view.Status = StatusRunning
	j.view.QueueMs = now.Sub(j.submittedAt).Milliseconds()
	s.queued--
	s.running++
	s.tenants.get(j.view.Tenant).running++
	s.publishLocked(j, Event{Type: "status", Status: StatusRunning})
	ctx := s.runCtx
	s.mu.Unlock()

	if err := s.plan.Point(faultinject.PointServicePersist).Err("persist " + j.view.ID); err != nil {
		s.mu.Lock()
		s.finishLocked(j, nil, err, "persist")
		s.mu.Unlock()
		return
	}

	out, err := s.exec.Execute(ctx, j.spec, func(instructions uint64) { s.progress(j, instructions) })

	s.mu.Lock()
	s.finishLocked(j, out, err, "")
	s.mu.Unlock()
}

// progress publishes a heartbeat.
func (s *Service) progress(j *job, instructions uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.view.Status != StatusRunning {
		return
	}
	s.publishLocked(j, Event{
		Type:         "progress",
		Instructions: instructions,
		ElapsedMs:    time.Since(j.startedAt).Milliseconds(),
	})
}

// finishLocked lands a job in its terminal status, charges quotas,
// journals the terminal entry, publishes the result event, and closes the
// job's subscriber channels. Caller holds s.mu. kind overrides the
// error-kind derivation when set.
func (s *Service) finishLocked(j *job, out *ExecOutcome, err error, kind string) {
	wasRunning := j.view.Status == StatusRunning
	ts := s.tenants.get(j.view.Tenant)

	switch {
	case err != nil:
		j.view.Status = StatusFailed
		j.view.Error = err.Error()
		j.view.ErrorKind = kind
		class := faultinject.ClassOf(err)
		if j.view.ErrorKind == "" {
			switch {
			case isCancel(err):
				j.view.ErrorKind = "cancelled"
				class = faultinject.Resource
			case class != faultinject.Unknown:
				j.view.ErrorKind = class.String()
			default:
				j.view.ErrorKind = "internal"
			}
		} else if j.view.ErrorKind == "draining" || j.view.ErrorKind == "cancelled" {
			class = faultinject.Resource
		}
		j.view.ErrorClass = class.String()
		s.failCount++
	case out != nil && out.Degraded:
		j.view.Status = StatusDegraded
		s.degCount++
	default:
		j.view.Status = StatusOK
		s.okCount++
	}
	s.completed++

	if out != nil {
		j.view.Profile = out.ProfileJSON
		j.view.Instructions = out.Instructions
		j.view.Events = out.Events
		j.view.TraceBytes = out.TraceBytes
		j.view.Degraded = out.Degraded
		j.view.DegradedReasons = out.DegradedReasons
		j.view.Backends = out.Backends
		j.view.Worker = out.Worker
		j.view.DispatchAttempts = out.DispatchAttempts
	}
	ts.charge(j.view.Events, j.view.TraceBytes)

	if wasRunning {
		s.running--
		ts.running--
		j.view.RunMs = time.Since(j.startedAt).Milliseconds()
	}
	ts.active--
	if j.recovered {
		s.recovering--
	}

	// Terminal entry: a restart must not re-execute this job, and must
	// re-apply exactly these charges.
	s.appendJournal(store.JournalEntry{
		Op: store.JournalTerminal, ID: j.view.ID, Tenant: j.view.Tenant, Key: j.spec.Key,
		Status: string(j.view.Status), Error: j.view.Error, ErrorKind: j.view.ErrorKind,
		ErrorClass: j.view.ErrorClass, Events: j.view.Events, TraceBytes: j.view.TraceBytes,
	})

	v := j.view
	s.publishLocked(j, Event{Type: "result", Status: v.Status, Result: &v})
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// isCancel reports whether err stems from context cancellation or a
// deadline — drain/force-stop outcomes that classify as Resource.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// publishLocked fans an event to the job's subscribers. Sends never block
// the service: a slow subscriber drops heartbeats, and the terminal result
// is recovered by the stream handler from the job table when its channel
// closes. Caller holds s.mu.
func (s *Service) publishLocked(j *job, ev Event) {
	if len(j.subs) == 0 {
		return
	}
	ev.Job = j.view.ID
	ev.TimeUnixMs = time.Now().UnixMilli()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// Subscribe attaches to a job's event stream. For a terminal job the
// channel delivers the result event and closes immediately. The returned
// cancel is idempotent and must be called when the subscriber goes away.
func (s *Service) Subscribe(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("service: no job %q", id)
	}
	if j.view.Status.Terminal() {
		ch := make(chan Event, 1)
		v := j.view
		ch <- Event{Type: "result", Job: id, TimeUnixMs: time.Now().UnixMilli(), Status: v.Status, Result: &v}
		close(ch)
		return ch, func() {}, nil
	}
	ch := make(chan Event, 32)
	j.subs = append(j.subs, ch)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				close(ch)
				break
			}
		}
	}
	return ch, cancel, nil
}

// Job returns a job's current view.
func (s *Service) Job(id string) (*JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	v := j.view
	return &v, true
}

// Jobs lists job views in submission order, optionally scoped to a tenant.
func (s *Service) Jobs(tenant string) []*JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*JobView
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.view.Tenant != tenant {
			continue
		}
		v := j.view
		out = append(out, &v)
	}
	return out
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Queued:     s.queued,
		Running:    s.running,
		Completed:  s.completed,
		OK:         s.okCount,
		Degraded:   s.degCount,
		Failed:     s.failCount,
		Draining:   s.draining,
		Recovering: s.recovering,
		Workers:    s.pool.Workers(),
		QueueCap:   s.pool.QueueCap(),
		Tenants:    s.tenants.snapshot(),
	}
}

// Draining reports whether a drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Ready reports whether the service accepts and promptly serves new work:
// false while draining and while journal-recovered jobs are still
// re-executing after a restart. Liveness (the process is up and handling
// requests) is a separate, weaker property — see /v1/healthz vs
// /v1/readyz.
func (s *Service) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining && s.recovering == 0
}

// Drain shuts the service down without losing a job. Intake closes
// immediately (new submissions fail with *DrainingError). ctx bounds the
// graceful phase: until it expires, queued and running jobs finish
// normally. Past it, running jobs are cancelled — the VM halts cleanly and
// salvaged partial profiles come back as degraded results — and jobs still
// queued fail with the typed draining error. Drain returns once every job
// is terminal and the pool's workers have exited; it is idempotent, and
// concurrent callers all block until the same drain completes.
func (s *Service) Drain(ctx context.Context) error {
	go s.drainOnce.Do(func() { s.drain(ctx) })
	<-s.drainDone
	return nil
}

func (s *Service) drain(ctx context.Context) {
	defer close(s.drainDone)
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	// Graceful phase: wait for the backlog to finish on its own.
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		s.mu.Lock()
		idle := s.queued == 0 && s.running == 0
		s.mu.Unlock()
		if idle {
			break
		}
		select {
		case <-ctx.Done():
			// Force phase: cancel in-flight VMs (they halt within a few
			// thousand instructions and salvage partial profiles) and flag
			// queued jobs to fail typed on pickup.
			s.mu.Lock()
			s.forceDrain = true
			s.mu.Unlock()
			s.runCancel()
			for {
				s.mu.Lock()
				idle := s.queued == 0 && s.running == 0
				s.mu.Unlock()
				if idle {
					break
				}
				<-tick.C
			}
			goto drained
		case <-tick.C:
		}
	}
drained:
	// All jobs are terminal; the pool drains instantly.
	if err := s.pool.Shutdown(context.Background()); err != nil {
		s.logf("service: pool shutdown: %v", err)
	}
	s.runCancel()
	if err := s.journal.Close(); err != nil {
		s.logf("service: journal close: %v", err)
	}
}
