package types

import (
	"strings"
	"testing"

	"algoprof/internal/mj/parser"
)

func check(t *testing.T, src string) (*Program, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	p, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

const mainStub = `class Main { public static void main() { } }`

func TestClassTable(t *testing.T) {
	p := mustCheck(t, `
class A { int x; B b; }
class B { A back; }
`+mainStub)
	a := p.Class("A")
	b := p.Class("B")
	if a == nil || b == nil {
		t.Fatal("classes missing")
	}
	if a.LookupField("x").Type != Int {
		t.Error("A.x should be int")
	}
	if a.LookupField("b").Type.Class != b {
		t.Error("A.b should be B")
	}
}

func TestInheritanceLayout(t *testing.T) {
	p := mustCheck(t, `
class Base { int a; int b; }
class Derived extends Base { int c; }
`+mainStub)
	d := p.Class("Derived")
	if len(d.Fields) != 3 {
		t.Fatalf("Derived has %d field slots, want 3", len(d.Fields))
	}
	if d.LookupField("a").Slot != 0 || d.LookupField("c").Slot != 2 {
		t.Errorf("slots: a=%d c=%d", d.LookupField("a").Slot, d.LookupField("c").Slot)
	}
	if !d.IsSubclassOf(p.Class("Base")) {
		t.Error("Derived should be subclass of Base")
	}
	if p.Class("Base").IsSubclassOf(d) {
		t.Error("Base is not a subclass of Derived")
	}
}

func TestMethodLookupThroughSuper(t *testing.T) {
	p := mustCheck(t, `
class Base { int get() { return 1; } }
class Derived extends Base { }
class Use { int f(Derived d) { return d.get(); } }
`+mainStub)
	m := p.Class("Derived").LookupMethod("get")
	if m == nil || m.Owner != p.Class("Base") {
		t.Error("method lookup through super failed")
	}
}

func TestInheritanceCycleRejected(t *testing.T) {
	_, err := check(t, `
class A extends B { }
class B extends A { }
`+mainStub)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want inheritance cycle error, got %v", err)
	}
}

func TestGenericsErasure(t *testing.T) {
	p := mustCheck(t, `
class Node<T> { Node<T> next; T value; }
`+mainStub)
	n := p.Class("Node")
	if n.LookupField("next").Type.Class != n {
		t.Error("Node<T>.next should erase to Node")
	}
	if n.LookupField("value").Type.Kind != KObject {
		t.Error("Node<T>.value should erase to Object")
	}
}

func TestMainDetection(t *testing.T) {
	p := mustCheck(t, mainStub)
	if p.Main == nil || p.Main.Name != "main" || !p.Main.Static {
		t.Fatalf("main not found: %+v", p.Main)
	}
	_, err := check(t, `class A { void f() { } }`)
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("want missing-main error, got %v", err)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		name, body string
	}{
		{"int-plus-bool", `int x = 1 + true;`},
		{"assign-bool-to-int", `int x = 0; x = true;`},
		{"if-non-bool", `if (1) { }`},
		{"while-non-bool", `while (1) { }`},
		{"undefined-var", `x = 1;`},
		{"undefined-field", `A a = new A(); a.nothere = 1;`},
		{"index-non-array", `int x = 1; int y = x[0];`},
		{"break-outside-loop", `break;`},
		{"this-in-static", `A a = this;`},
		{"arg-count", `g(1, 2);`},
		{"return-value-in-void", `return 5;`},
		{"inc-non-int", `boolean b = true; b++;`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `class A { static void g(int x) { } public static void main() { ` + tc.body + ` } }`
			if _, err := check(t, src); err == nil {
				t.Errorf("want type error for %q", tc.body)
			}
		})
	}
}

func TestValidPrograms(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"null-assign", `class A { A next; public static void main() { A a = new A(); a.next = null; } }`},
		{"string-concat", `class A { public static void main() { String s = "n" + 1; s = s + true; } }`},
		{"ref-compare", `class A { public static void main() { A a = new A(); check(a != null); } }`},
		{"subtype-assign", `class B { } class D extends B { } class A { public static void main() { B b = new D(); } }`},
		{"object-erasure-assign", `class A { Object o; public static void main() { A a = new A(); a.o = new A(); A back = a.o; } }`},
		{"array-length", `class A { public static void main() { int[] xs = new int[3]; int n = xs.length; } }`},
		{"string-length", `class A { public static void main() { String s = "abc"; int n = s.length; } }`},
		{"multidim", `class A { public static void main() { int[][] m = new int[2][3]; m[0][1] = 5; } }`},
		{"builtins", `class A { public static void main() { int r = rand(10); int i = readInput(); writeOutput(r); print("x"); check(true); } }`},
		{"var-infer", `class A { public static void main() { var x = 1 + 2; var s = "a"; var a = new A(); } }`},
		{"ctor", `class P { int v; P(int v) { this.v = v; } } class A { public static void main() { P p = new P(3); } }`},
		{"static-call", `class B { static int f() { return 1; } } class A { public static void main() { int x = B.f(); } }`},
		{"recursion", `class A { static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); } public static void main() { int x = fact(5); } }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustCheck(t, tc.src)
		})
	}
}

func TestDynamicDispatchOnObject(t *testing.T) {
	p := mustCheck(t, `
class Box<T> {
  T v;
  T get() { return v; }
}
class A {
  public static void main() {
    Box<A> b = new Box<A>();
    var got = b.get();
  }
}`)
	// Box.get returns erased Object.
	m := p.Class("Box").LookupMethod("get")
	if m.Ret.Kind != KObject {
		t.Errorf("Box.get return type = %v, want Object", m.Ret)
	}
}

func TestLocalSlots(t *testing.T) {
	p := mustCheck(t, `
class A {
  int f(int a, int b) {
    int c = a;
    { int d = b; c = d; }
    return c;
  }
  public static void main() { }
}`)
	m := p.Class("A").LookupMethod("f")
	// this + a + b + c + d = 5 slots
	if m.NumLocals != 5 {
		t.Errorf("NumLocals = %d, want 5", m.NumLocals)
	}
}

func TestStaticMethodHasNoThisSlot(t *testing.T) {
	p := mustCheck(t, `
class A {
  static int f(int a) { return a; }
  public static void main() { }
}`)
	m := p.Class("A").LookupMethod("f")
	if m.NumLocals != 1 {
		t.Errorf("NumLocals = %d, want 1 (no this)", m.NumLocals)
	}
}

func TestDuplicateDetection(t *testing.T) {
	for _, src := range []string{
		`class A { } class A { }` + mainStub,
		`class A { int x; int x; }` + mainStub,
		`class A { void f() { } void f() { } }` + mainStub,
		`class A { void f() { int x = 0; int x = 1; } }` + mainStub,
	} {
		if _, err := check(t, src); err == nil {
			t.Errorf("want duplicate error for %q", src)
		}
	}
}

func TestFieldIDsGloballyUnique(t *testing.T) {
	p := mustCheck(t, `
class A { int x; A a; }
class B { int y; B b; }
`+mainStub)
	seen := map[int]bool{}
	for _, f := range p.FieldsAll() {
		if seen[f.ID] {
			t.Errorf("duplicate field id %d", f.ID)
		}
		seen[f.ID] = true
		if p.FieldByID(f.ID) != f {
			t.Errorf("FieldByID(%d) mismatch", f.ID)
		}
	}
	for _, m := range p.Methods() {
		if p.MethodByID(m.ID) != m {
			t.Errorf("MethodByID(%d) mismatch", m.ID)
		}
	}
}

func TestAssignability(t *testing.T) {
	p := mustCheck(t, `class B { } class D extends B { }`+mainStub)
	b := ClassType(p.Class("B"))
	d := ClassType(p.Class("D"))
	cases := []struct {
		from, to *Type
		want     bool
	}{
		{Int, Int, true},
		{Int, Bool, false},
		{Null, b, true},
		{Null, Int, false},
		{d, b, true},
		{b, d, false},
		{b, Object, true},
		{Object, b, true},
		{ArrayOf(Int), ArrayOf(Int), true},
		{ArrayOf(Int), ArrayOf(Bool), false},
		{ArrayOf(Int), Object, true},
		{String, Object, true},
	}
	for _, tc := range cases {
		if got := tc.from.AssignableTo(tc.to); got != tc.want {
			t.Errorf("%s assignable to %s = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestMoreTypeErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown-superclass", `class A extends Nope { } class Main { public static void main() { } }`},
		{"unknown-field-type", `class A { Nope f; } class Main { public static void main() { } }`},
		{"unknown-new", `class Main { public static void main() { var x = new Nope(); } }`},
		{"ctor-arg-count", `class P { int v; P(int v) { this.v = v; } } class Main { public static void main() { P p = new P(); } }`},
		{"no-ctor-with-args", `class P { } class Main { public static void main() { P p = new P(1); } }`},
		{"static-through-instance", `class B { static int f() { return 1; } } class Main { public static void main() { B b = new B(); int x = b.f(); } }`},
		{"instance-through-class", `class B { int f() { return 1; } } class Main { public static void main() { int x = B.f(); } }`},
		{"call-on-int", `class Main { public static void main() { int x = 1; x.f(); } }`},
		{"string-field", `class Main { public static void main() { String s = "a"; int x = s.size; } }`},
		{"array-field", `class Main { public static void main() { int[] a = new int[1]; int x = a.size; } }`},
		{"bad-array-len", `class Main { public static void main() { int[] a = new int[true]; } }`},
		{"bad-index-type", `class Main { public static void main() { int[] a = new int[1]; int x = a[true]; } }`},
		{"rand-arg", `class Main { public static void main() { int x = rand(true); } }`},
		{"check-arg", `class Main { public static void main() { check(5); } }`},
		{"builtin-arity", `class Main { public static void main() { int x = rand(); } }`},
		{"concat-class", `class A { } class Main { public static void main() { A a = new A(); String s = "x" + a; } }`},
		{"var-void-init", `class Main { static void g() { } public static void main() { var x = g(); } }`},
		{"missing-return-type", `class Main { static int f() { return true; } public static void main() { } }`},
		{"return-missing-value", `class Main { static int f() { return; } public static void main() { } }`},
		{"dup-ctor", `class P { P() { } P() { } } class Main { public static void main() { } }`},
		{"multiple-mains", `class A { public static void main() { } } class Main { public static void main() { } }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := check(t, tc.src); err == nil {
				t.Errorf("want type error")
			}
		})
	}
}
