// Package types implements semantic analysis for MJ: class table
// construction with single inheritance and erasure generics, field and
// method layout, and a type checker that annotates the AST with the
// information the bytecode compiler needs (expression types, identifier
// resolutions, call targets, local variable slots).
package types

import (
	"fmt"

	"algoprof/internal/mj/ast"
)

// Kind discriminates the semantic types of MJ.
type Kind int

// Semantic type kinds.
const (
	KInt Kind = iota
	KBool
	KString
	KVoid
	KNull   // the type of the `null` literal
	KObject // erased generic / dynamic reference type
	KClass
	KArray
)

// Type is a semantic MJ type.
type Type struct {
	Kind  Kind
	Class *Class // for KClass
	Elem  *Type  // for KArray
}

// Pre-allocated singletons for the simple types.
var (
	Int    = &Type{Kind: KInt}
	Bool   = &Type{Kind: KBool}
	String = &Type{Kind: KString}
	Void   = &Type{Kind: KVoid}
	Null   = &Type{Kind: KNull}
	Object = &Type{Kind: KObject}
)

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem *Type) *Type { return &Type{Kind: KArray, Elem: elem} }

// ClassType returns the type of instances of c.
func ClassType(c *Class) *Type { return &Type{Kind: KClass, Class: c} }

// String renders the type as MJ source text.
func (t *Type) String() string {
	switch t.Kind {
	case KInt:
		return "int"
	case KBool:
		return "boolean"
	case KString:
		return "String"
	case KVoid:
		return "void"
	case KNull:
		return "null"
	case KObject:
		return "Object"
	case KClass:
		return t.Class.Name
	case KArray:
		return t.Elem.String() + "[]"
	}
	return "?"
}

// IsRef reports whether t is a reference type (object, string, array, null
// or erased Object).
func (t *Type) IsRef() bool {
	switch t.Kind {
	case KString, KNull, KObject, KClass, KArray:
		return true
	}
	return false
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case KClass:
		return t.Class == u.Class
	case KArray:
		return t.Elem.Equal(u.Elem)
	}
	return true
}

// AssignableTo reports whether a value of type t may be assigned to a
// location of type u. MJ is erasure-typed: Object is assignable to and from
// every reference type (the VM checks representation at use sites), which is
// what lets generic containers compile without casts.
func (t *Type) AssignableTo(u *Type) bool {
	if t.Equal(u) {
		return true
	}
	switch {
	case t.Kind == KNull && u.IsRef():
		return true
	case t.Kind == KObject && u.IsRef():
		return true
	case t.IsRef() && u.Kind == KObject:
		return true
	case t.Kind == KClass && u.Kind == KClass:
		return t.Class.IsSubclassOf(u.Class)
	}
	return false
}

// ---------------------------------------------------------------------------
// Classes, fields, methods

// Class is a resolved MJ class.
type Class struct {
	ID    int
	Name  string
	Super *Class
	Decl  *ast.ClassDecl

	// Fields in slot order: inherited fields first, then own declarations.
	Fields []*Field
	// Methods declared in this class (not inherited), in declaration order.
	Methods []*Method
	Ctor    *Method

	fieldsByName  map[string]*Field
	methodsByName map[string]*Method
	typeParams    map[string]bool

	// refFields caches the reference-typed entries of Fields, precomputed
	// at resolution time for heap-graph walkers (snapshot traversal visits
	// every object's ref fields; scanning past value fields there is
	// measurable).
	refFields []*Field
}

// RefFields returns the class's reference-typed fields in slot order.
func (c *Class) RefFields() []*Field { return c.refFields }

// IsSubclassOf reports whether c equals or transitively extends s.
func (c *Class) IsSubclassOf(s *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == s {
			return true
		}
	}
	return false
}

// LookupField finds a field by name, searching superclasses.
func (c *Class) LookupField(name string) *Field {
	for x := c; x != nil; x = x.Super {
		if f, ok := x.fieldsByName[name]; ok {
			return f
		}
	}
	return nil
}

// LookupMethod finds a method by name, searching superclasses.
func (c *Class) LookupMethod(name string) *Method {
	for x := c; x != nil; x = x.Super {
		if m, ok := x.methodsByName[name]; ok {
			return m
		}
	}
	return nil
}

// Field is a resolved instance field.
type Field struct {
	ID    int // globally unique
	Name  string
	Type  *Type
	Slot  int // index into the object's field array
	Owner *Class
}

// QualifiedName returns "Class.field".
func (f *Field) QualifiedName() string { return f.Owner.Name + "." + f.Name }

// Method is a resolved method or constructor.
type Method struct {
	ID            int // globally unique
	Name          string
	Owner         *Class
	Static        bool
	IsConstructor bool
	Params        []*Type
	Ret           *Type
	Decl          *ast.MethodDecl

	// NumLocals is the frame size: `this` (if instance) + params + locals.
	NumLocals int
}

// QualifiedName returns "Class.method".
func (m *Method) QualifiedName() string { return m.Owner.Name + "." + m.Name }

// ---------------------------------------------------------------------------
// Builtins

// Builtin identifies an MJ builtin function.
type Builtin int

// Builtin functions available in every scope.
const (
	BuiltinNone        Builtin = iota
	BuiltinRand                // rand(n int) int : uniform in [0,n), deterministic per VM seed
	BuiltinReadInput           // readInput() int : consumes external input (Input Read event)
	BuiltinWriteOutput         // writeOutput(x) : produces external output (Output Write event)
	BuiltinPrint               // print(x) : debug print, no profiling event
	BuiltinCheck               // check(b boolean) : runtime assertion, traps on false
)

var builtinNames = map[string]Builtin{
	"rand":        BuiltinRand,
	"readInput":   BuiltinReadInput,
	"writeOutput": BuiltinWriteOutput,
	"print":       BuiltinPrint,
	"check":       BuiltinCheck,
}

// BuiltinName returns the source-level name of b.
func BuiltinName(b Builtin) string {
	for n, v := range builtinNames {
		if v == b {
			return n
		}
	}
	return "?"
}

// ---------------------------------------------------------------------------
// Symbols and check results

// SymbolKind discriminates what an identifier resolved to.
type SymbolKind int

// Identifier resolution kinds.
const (
	SymLocal SymbolKind = iota
	SymField            // implicit this.field
	SymClass            // class name used as a static-call receiver
)

// Symbol is the resolution of an *ast.Ident.
type Symbol struct {
	Kind  SymbolKind
	Slot  int // for SymLocal
	Field *Field
	Class *Class
	Type  *Type
}

// CallTarget is the resolution of an *ast.Call.
type CallTarget struct {
	Builtin Builtin // != BuiltinNone for builtin calls
	Method  *Method // static binding if known
	Dynamic bool    // true when the receiver is erased Object: resolve by name at runtime
	Name    string  // method name (used for dynamic dispatch)
}

// FieldRef is the resolution of an *ast.FieldAccess.
type FieldRef struct {
	Field     *Field // nil for dynamic access or array length
	ArrayLen  bool   // true for arr.length
	StringLen bool   // true for str.length
	Dynamic   bool   // access on erased Object: resolve by name at runtime
	Name      string
}

// Info carries all annotations the compiler needs.
type Info struct {
	Types       map[ast.Expr]*Type
	Idents      map[*ast.Ident]*Symbol
	Calls       map[*ast.Call]*CallTarget
	FieldAccess map[*ast.FieldAccess]*FieldRef
	LocalSlots  map[*ast.VarDecl]int
	NewClasses  map[*ast.New]*Class
	ArrayElems  map[*ast.NewArray]*Type // full array type of the expression
	// CatchSlots maps try/catch statements to the local slot of the
	// caught exception variable; CatchClasses to the handler's class.
	CatchSlots   map[*ast.TryCatch]int
	CatchClasses map[*ast.TryCatch]*Class
	// SuperCalls maps super(...) statements to the superclass constructor.
	SuperCalls map[*ast.SuperCall]*Method
}

// Program is a fully checked MJ program.
type Program struct {
	Classes []*Class
	Info    *Info

	// Main is the entry point: a static, parameterless method named "main".
	Main *Method

	classesByName map[string]*Class
	methodsByID   []*Method
	fieldsByID    []*Field
}

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.classesByName[name] }

// MethodByID returns the method with the given global id.
func (p *Program) MethodByID(id int) *Method { return p.methodsByID[id] }

// FieldByID returns the field with the given global id.
func (p *Program) FieldByID(id int) *Field { return p.fieldsByID[id] }

// NumMethods returns the number of methods in the program.
func (p *Program) NumMethods() int { return len(p.methodsByID) }

// NumFields returns the number of fields in the program.
func (p *Program) NumFields() int { return len(p.fieldsByID) }

// Methods returns all methods in id order.
func (p *Program) Methods() []*Method { return p.methodsByID }

// FieldsAll returns all fields in id order.
func (p *Program) FieldsAll() []*Field { return p.fieldsByID }

// ---------------------------------------------------------------------------
// Checking

type checker struct {
	prog *Program
	errs []error

	// Per-method state.
	curClass  *Class
	curMethod *Method
	scopes    []map[string]*local
	nextSlot  int
	loopDepth int
}

type local struct {
	slot int
	typ  *Type
}

// Check builds the class table and type checks the whole program.
func Check(p *ast.Program) (*Program, error) {
	c := &checker{
		prog: &Program{
			Info: &Info{
				Types:        map[ast.Expr]*Type{},
				Idents:       map[*ast.Ident]*Symbol{},
				Calls:        map[*ast.Call]*CallTarget{},
				FieldAccess:  map[*ast.FieldAccess]*FieldRef{},
				LocalSlots:   map[*ast.VarDecl]int{},
				NewClasses:   map[*ast.New]*Class{},
				ArrayElems:   map[*ast.NewArray]*Type{},
				CatchSlots:   map[*ast.TryCatch]int{},
				CatchClasses: map[*ast.TryCatch]*Class{},
				SuperCalls:   map[*ast.SuperCall]*Method{},
			},
			classesByName: map[string]*Class{},
		},
	}
	c.declareClasses(p)
	c.resolveSupers(p)
	c.resolveMembers()
	c.checkBodies()
	c.findMain()
	if len(c.errs) > 0 {
		return c.prog, fmt.Errorf("typecheck: %d error(s), first: %w", len(c.errs), c.errs[0])
	}
	return c.prog, nil
}

// MustCheck panics on error; for known-good embedded workloads.
func MustCheck(p *ast.Program) *Program {
	prog, err := Check(p)
	if err != nil {
		panic(err)
	}
	return prog
}

func (c *checker) errorf(n ast.Node, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", n.Pos(), fmt.Sprintf(format, args...)))
}

func (c *checker) declareClasses(p *ast.Program) {
	for _, cd := range p.Classes {
		if _, dup := c.prog.classesByName[cd.Name]; dup {
			c.errorf(cd, "duplicate class %s", cd.Name)
			continue
		}
		cls := &Class{
			ID:            len(c.prog.Classes),
			Name:          cd.Name,
			Decl:          cd,
			fieldsByName:  map[string]*Field{},
			methodsByName: map[string]*Method{},
			typeParams:    map[string]bool{},
		}
		for _, tp := range cd.TypeParams {
			cls.typeParams[tp] = true
		}
		c.prog.Classes = append(c.prog.Classes, cls)
		c.prog.classesByName[cd.Name] = cls
	}
}

func (c *checker) resolveSupers(p *ast.Program) {
	for _, cls := range c.prog.Classes {
		if ext := cls.Decl.Extends; ext != nil {
			super, ok := c.prog.classesByName[ext.Name]
			if !ok {
				c.errorf(cls.Decl, "unknown superclass %s", ext.Name)
				continue
			}
			cls.Super = super
		}
	}
	// Reject inheritance cycles.
	for _, cls := range c.prog.Classes {
		slow, fast := cls, cls
		for fast != nil && fast.Super != nil {
			slow, fast = slow.Super, fast.Super.Super
			if slow == fast {
				c.errorf(cls.Decl, "inheritance cycle involving %s", cls.Name)
				cls.Super = nil
				break
			}
		}
	}
}

// resolveMembers lays out fields (inherited first) and declares methods.
// Classes are processed in topological order of the inheritance hierarchy.
func (c *checker) resolveMembers() {
	done := map[*Class]bool{}
	var resolve func(cls *Class)
	resolve = func(cls *Class) {
		if done[cls] {
			return
		}
		done[cls] = true
		if cls.Super != nil {
			resolve(cls.Super)
			cls.Fields = append(cls.Fields, cls.Super.Fields...)
		}
		c.curClass = cls
		for _, fd := range cls.Decl.Fields {
			if _, dup := cls.fieldsByName[fd.Name]; dup {
				c.errorf(fd, "duplicate field %s.%s", cls.Name, fd.Name)
				continue
			}
			f := &Field{
				ID:    len(c.prog.fieldsByID),
				Name:  fd.Name,
				Type:  c.resolveType(fd.Type),
				Slot:  len(cls.Fields),
				Owner: cls,
			}
			cls.Fields = append(cls.Fields, f)
			cls.fieldsByName[fd.Name] = f
			c.prog.fieldsByID = append(c.prog.fieldsByID, f)
		}
		for _, md := range cls.Decl.Methods {
			m := &Method{
				ID:            len(c.prog.methodsByID),
				Name:          md.Name,
				Owner:         cls,
				Static:        md.Static,
				IsConstructor: md.IsConstructor,
				Decl:          md,
			}
			for _, prm := range md.Params {
				m.Params = append(m.Params, c.resolveType(prm.Type))
			}
			switch {
			case md.IsConstructor:
				m.Ret = ClassType(cls)
			case md.Ret == nil:
				m.Ret = Void
			default:
				m.Ret = c.resolveType(md.Ret)
			}
			if md.IsConstructor {
				if cls.Ctor != nil {
					c.errorf(md, "duplicate constructor for %s", cls.Name)
					continue
				}
				cls.Ctor = m
			} else {
				if _, dup := cls.methodsByName[md.Name]; dup {
					c.errorf(md, "duplicate method %s.%s (MJ has no overloading)", cls.Name, md.Name)
					continue
				}
				cls.methodsByName[md.Name] = m
			}
			cls.Methods = append(cls.Methods, m)
			c.prog.methodsByID = append(c.prog.methodsByID, m)
		}
	}
	for _, cls := range c.prog.Classes {
		resolve(cls)
	}
	for _, cls := range c.prog.Classes {
		for _, f := range cls.Fields {
			if f.Type != nil && f.Type.IsRef() {
				cls.refFields = append(cls.refFields, f)
			}
		}
	}
	c.curClass = nil
}

// resolveType converts a syntactic type to a semantic type in the context of
// the current class (whose type parameters erase to Object).
func (c *checker) resolveType(t *ast.TypeExpr) *Type {
	var base *Type
	switch t.Name {
	case "int":
		base = Int
	case "boolean":
		base = Bool
	case "String":
		base = String
	case "void":
		base = Void
	case "Object":
		base = Object
	default:
		if c.curClass != nil && c.curClass.typeParams[t.Name] {
			base = Object // erasure
		} else if cls, ok := c.prog.classesByName[t.Name]; ok {
			base = ClassType(cls)
		} else {
			c.errorf(t, "unknown type %s", t.Name)
			base = Object
		}
	}
	for i := 0; i < t.Dims; i++ {
		base = ArrayOf(base)
	}
	return base
}

func (c *checker) findMain() {
	for _, cls := range c.prog.Classes {
		if m, ok := cls.methodsByName["main"]; ok && m.Static && len(m.Params) == 0 {
			if c.prog.Main != nil {
				c.errorf(m.Decl, "multiple main methods")
			}
			c.prog.Main = m
		}
	}
	if c.prog.Main == nil {
		c.errs = append(c.errs, fmt.Errorf("no static main() method found"))
	}
}

// ---------------------------------------------------------------------------
// Body checking

func (c *checker) checkBodies() {
	for _, cls := range c.prog.Classes {
		c.curClass = cls
		for _, m := range cls.Methods {
			c.checkMethod(m)
		}
	}
	c.curClass = nil
}

func (c *checker) checkMethod(m *Method) {
	c.curMethod = m
	c.scopes = []map[string]*local{{}}
	c.nextSlot = 0
	c.loopDepth = 0
	if !m.Static {
		c.nextSlot = 1 // slot 0 is `this`
	}
	for i, prm := range m.Decl.Params {
		c.declareLocal(prm, prm.Name, m.Params[i])
	}
	c.checkBlock(m.Decl.Body)
	m.NumLocals = c.nextSlot
	c.curMethod = nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*local{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(n ast.Node, name string, t *Type) int {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		c.errorf(n, "duplicate local %s", name)
	}
	slot := c.nextSlot
	c.nextSlot++
	top[name] = &local{slot: slot, typ: t}
	return slot
}

func (c *checker) lookupLocal(name string) *local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *checker) checkBlock(b *ast.Block) {
	c.pushScope()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.popScope()
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s)
	case *ast.VarDecl:
		var t *Type
		if s.Type != nil {
			t = c.resolveType(s.Type)
			if s.Init != nil {
				it := c.checkExpr(s.Init)
				if !it.AssignableTo(t) {
					c.errorf(s, "cannot assign %s to %s %s", it, t, s.Name)
				}
			}
		} else {
			if s.Init == nil {
				c.errorf(s, "var declaration needs initializer")
				t = Object
			} else {
				t = c.checkExpr(s.Init)
				if t.Kind == KNull {
					t = Object
				}
				if t.Kind == KVoid {
					c.errorf(s, "cannot infer variable type from void expression")
					t = Object
				}
			}
		}
		c.prog.Info.LocalSlots[s] = c.declareLocal(s, s.Name, t)
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.AssignStmt:
		tt := c.checkExpr(s.Target)
		vt := c.checkExpr(s.Value)
		if !vt.AssignableTo(tt) {
			c.errorf(s, "cannot assign %s to %s", vt, tt)
		}
	case *ast.IncDecStmt:
		tt := c.checkExpr(s.Target)
		if tt.Kind != KInt {
			c.errorf(s, "++/-- needs int, got %s", tt)
		}
	case *ast.If:
		ct := c.checkExpr(s.Cond)
		if ct.Kind != KBool {
			c.errorf(s, "if condition must be boolean, got %s", ct)
		}
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.While:
		ct := c.checkExpr(s.Cond)
		if ct.Kind != KBool {
			c.errorf(s, "while condition must be boolean, got %s", ct)
		}
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
	case *ast.For:
		c.pushScope()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			ct := c.checkExpr(s.Cond)
			if ct.Kind != KBool {
				c.errorf(s, "for condition must be boolean, got %s", ct)
			}
		}
		if s.Post != nil {
			c.checkStmt(s.Post)
		}
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
		c.popScope()
	case *ast.Return:
		want := c.curMethod.Ret
		if c.curMethod.IsConstructor {
			want = Void
		}
		if s.Value == nil {
			if want.Kind != KVoid {
				c.errorf(s, "missing return value (want %s)", want)
			}
			return
		}
		got := c.checkExpr(s.Value)
		if want.Kind == KVoid {
			c.errorf(s, "unexpected return value in void method")
		} else if !got.AssignableTo(want) {
			c.errorf(s, "cannot return %s as %s", got, want)
		}
	case *ast.SuperCall:
		if !c.curMethod.IsConstructor {
			c.errorf(s, "super(...) is only allowed in constructors")
			return
		}
		super := c.curClass.Super
		if super == nil {
			c.errorf(s, "class %s has no superclass", c.curClass.Name)
			return
		}
		if super.Ctor == nil {
			c.errorf(s, "superclass %s has no constructor", super.Name)
			return
		}
		if len(s.Args) != len(super.Ctor.Params) {
			c.errorf(s, "super(...): %d args, want %d", len(s.Args), len(super.Ctor.Params))
		}
		for i, a := range s.Args {
			at := c.checkExpr(a)
			if i < len(super.Ctor.Params) && !at.AssignableTo(super.Ctor.Params[i]) {
				c.errorf(a, "super arg %d: cannot use %s as %s", i+1, at, super.Ctor.Params[i])
			}
		}
		c.prog.Info.SuperCalls[s] = super.Ctor
	case *ast.Throw:
		vt := c.checkExpr(s.Value)
		if vt.Kind != KClass && vt.Kind != KObject {
			c.errorf(s, "can only throw class instances, got %s", vt)
		}
	case *ast.TryCatch:
		c.checkBlock(s.Body)
		ct := c.resolveType(s.CatchType)
		if ct.Kind != KClass {
			c.errorf(s, "catch type must be a class, got %s", ct)
		} else {
			c.prog.Info.CatchClasses[s] = ct.Class
		}
		c.pushScope()
		c.prog.Info.CatchSlots[s] = c.declareLocal(s, s.CatchName, ct)
		c.checkBlock(s.Handler)
		c.popScope()
	case *ast.Join:
		ht := c.checkExpr(s.Handle)
		if ht.Kind != KInt {
			c.errorf(s, "join needs an int thread handle, got %s", ht)
		}
	case *ast.Break, *ast.Continue:
		if c.loopDepth == 0 {
			c.errorf(s, "break/continue outside loop")
		}
	default:
		c.errorf(s, "unhandled statement %T", s)
	}
}

func (c *checker) setType(e ast.Expr, t *Type) *Type {
	c.prog.Info.Types[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) *Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return c.setType(e, Int)
	case *ast.BoolLit:
		return c.setType(e, Bool)
	case *ast.StringLit:
		return c.setType(e, String)
	case *ast.NullLit:
		return c.setType(e, Null)
	case *ast.This:
		if c.curMethod.Static {
			c.errorf(e, "this in static method")
			return c.setType(e, Object)
		}
		return c.setType(e, ClassType(c.curClass))
	case *ast.Ident:
		return c.checkIdent(e)
	case *ast.FieldAccess:
		return c.checkFieldAccess(e)
	case *ast.Index:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Idx)
		if it.Kind != KInt {
			c.errorf(e, "array index must be int, got %s", it)
		}
		switch xt.Kind {
		case KArray:
			return c.setType(e, xt.Elem)
		case KObject:
			return c.setType(e, Object)
		default:
			c.errorf(e, "cannot index %s", xt)
			return c.setType(e, Object)
		}
	case *ast.Call:
		return c.checkCall(e)
	case *ast.Spawn:
		c.checkCall(e.Call)
		if tgt := c.prog.Info.Calls[e.Call]; tgt != nil && tgt.Method == nil {
			c.errorf(e, "spawn requires a statically resolved method call (not a builtin or dynamic call)")
		}
		return c.setType(e, Int)
	case *ast.New:
		return c.checkNew(e)
	case *ast.NewArray:
		return c.checkNewArray(e)
	case *ast.Binary:
		return c.checkBinary(e)
	case *ast.Unary:
		xt := c.checkExpr(e.X)
		switch e.Op {
		case ast.Neg:
			if xt.Kind != KInt {
				c.errorf(e, "unary - needs int, got %s", xt)
			}
			return c.setType(e, Int)
		default: // LNot
			if xt.Kind != KBool {
				c.errorf(e, "! needs boolean, got %s", xt)
			}
			return c.setType(e, Bool)
		}
	}
	c.errorf(e, "unhandled expression %T", e)
	return Object
}

func (c *checker) checkIdent(e *ast.Ident) *Type {
	if l := c.lookupLocal(e.Name); l != nil {
		c.prog.Info.Idents[e] = &Symbol{Kind: SymLocal, Slot: l.slot, Type: l.typ}
		return c.setType(e, l.typ)
	}
	if !c.curMethod.Static {
		if f := c.curClass.LookupField(e.Name); f != nil {
			c.prog.Info.Idents[e] = &Symbol{Kind: SymField, Field: f, Type: f.Type}
			return c.setType(e, f.Type)
		}
	}
	if cls, ok := c.prog.classesByName[e.Name]; ok {
		c.prog.Info.Idents[e] = &Symbol{Kind: SymClass, Class: cls, Type: ClassType(cls)}
		return c.setType(e, ClassType(cls))
	}
	c.errorf(e, "undefined identifier %s", e.Name)
	c.prog.Info.Idents[e] = &Symbol{Kind: SymLocal, Slot: 0, Type: Object}
	return c.setType(e, Object)
}

func (c *checker) checkFieldAccess(e *ast.FieldAccess) *Type {
	xt := c.checkExpr(e.X)
	ref := &FieldRef{Name: e.Name}
	c.prog.Info.FieldAccess[e] = ref
	switch xt.Kind {
	case KArray:
		if e.Name == "length" {
			ref.ArrayLen = true
			return c.setType(e, Int)
		}
		c.errorf(e, "arrays have no field %s", e.Name)
		return c.setType(e, Object)
	case KString:
		if e.Name == "length" {
			ref.StringLen = true
			return c.setType(e, Int)
		}
		c.errorf(e, "String has no field %s", e.Name)
		return c.setType(e, Object)
	case KClass:
		f := xt.Class.LookupField(e.Name)
		if f == nil {
			c.errorf(e, "class %s has no field %s", xt.Class.Name, e.Name)
			return c.setType(e, Object)
		}
		ref.Field = f
		return c.setType(e, f.Type)
	case KObject:
		ref.Dynamic = true
		return c.setType(e, Object)
	}
	c.errorf(e, "cannot access field %s of %s", e.Name, xt)
	return c.setType(e, Object)
}

func (c *checker) checkCall(e *ast.Call) *Type {
	tgt := &CallTarget{Name: e.Name}
	c.prog.Info.Calls[e] = tgt

	// Unqualified call: builtin, or method of the current class.
	if e.Recv == nil {
		if b, ok := builtinNames[e.Name]; ok {
			tgt.Builtin = b
			return c.checkBuiltin(e, b)
		}
		m := c.curClass.LookupMethod(e.Name)
		if m == nil {
			c.errorf(e, "undefined function or method %s", e.Name)
			c.checkArgs(e, nil)
			return c.setType(e, Object)
		}
		if c.curMethod.Static && !m.Static {
			c.errorf(e, "cannot call instance method %s from static context", e.Name)
		}
		tgt.Method = m
		c.checkArgs(e, m.Params)
		return c.setType(e, m.Ret)
	}

	// Static call through a class name?
	if id, ok := e.Recv.(*ast.Ident); ok && c.lookupLocal(id.Name) == nil {
		isField := !c.curMethod.Static && c.curClass.LookupField(id.Name) != nil
		if cls, isCls := c.prog.classesByName[id.Name]; isCls && !isField {
			c.prog.Info.Idents[id] = &Symbol{Kind: SymClass, Class: cls, Type: ClassType(cls)}
			c.setType(id, ClassType(cls))
			m := cls.LookupMethod(e.Name)
			if m == nil {
				c.errorf(e, "class %s has no method %s", cls.Name, e.Name)
				c.checkArgs(e, nil)
				return c.setType(e, Object)
			}
			if !m.Static {
				c.errorf(e, "method %s.%s is not static", cls.Name, e.Name)
			}
			tgt.Method = m
			c.checkArgs(e, m.Params)
			return c.setType(e, m.Ret)
		}
	}

	rt := c.checkExpr(e.Recv)
	switch rt.Kind {
	case KClass:
		m := rt.Class.LookupMethod(e.Name)
		if m == nil {
			c.errorf(e, "class %s has no method %s", rt.Class.Name, e.Name)
			c.checkArgs(e, nil)
			return c.setType(e, Object)
		}
		if m.Static {
			c.errorf(e, "calling static method %s through an instance", e.Name)
		}
		tgt.Method = m
		c.checkArgs(e, m.Params)
		return c.setType(e, m.Ret)
	case KObject:
		tgt.Dynamic = true
		c.checkArgs(e, nil)
		return c.setType(e, Object)
	}
	c.errorf(e, "cannot call method %s on %s", e.Name, rt)
	c.checkArgs(e, nil)
	return c.setType(e, Object)
}

func (c *checker) checkArgs(e *ast.Call, params []*Type) {
	if params != nil && len(e.Args) != len(params) {
		c.errorf(e, "call to %s: %d args, want %d", e.Name, len(e.Args), len(params))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if params != nil && i < len(params) && !at.AssignableTo(params[i]) {
			c.errorf(a, "arg %d of %s: cannot use %s as %s", i+1, e.Name, at, params[i])
		}
	}
}

func (c *checker) checkBuiltin(e *ast.Call, b Builtin) *Type {
	argTypes := make([]*Type, len(e.Args))
	for i, a := range e.Args {
		argTypes[i] = c.checkExpr(a)
	}
	need := func(n int) bool {
		if len(e.Args) != n {
			c.errorf(e, "%s expects %d argument(s), got %d", e.Name, n, len(e.Args))
			return false
		}
		return true
	}
	switch b {
	case BuiltinRand:
		if need(1) && argTypes[0].Kind != KInt {
			c.errorf(e, "rand expects int, got %s", argTypes[0])
		}
		return c.setType(e, Int)
	case BuiltinReadInput:
		need(0)
		return c.setType(e, Int)
	case BuiltinWriteOutput, BuiltinPrint:
		need(1)
		return c.setType(e, Void)
	case BuiltinCheck:
		if need(1) && argTypes[0].Kind != KBool {
			c.errorf(e, "check expects boolean, got %s", argTypes[0])
		}
		return c.setType(e, Void)
	}
	return c.setType(e, Void)
}

func (c *checker) checkNew(e *ast.New) *Type {
	cls, ok := c.prog.classesByName[e.Type.Name]
	if !ok {
		c.errorf(e, "unknown class %s", e.Type.Name)
		return c.setType(e, Object)
	}
	c.prog.Info.NewClasses[e] = cls
	if cls.Ctor != nil {
		if len(e.Args) != len(cls.Ctor.Params) {
			c.errorf(e, "constructor %s: %d args, want %d", cls.Name, len(e.Args), len(cls.Ctor.Params))
		}
		for i, a := range e.Args {
			at := c.checkExpr(a)
			if i < len(cls.Ctor.Params) && !at.AssignableTo(cls.Ctor.Params[i]) {
				c.errorf(a, "constructor arg %d: cannot use %s as %s", i+1, at, cls.Ctor.Params[i])
			}
		}
	} else if len(e.Args) != 0 {
		c.errorf(e, "class %s has no constructor but got %d args", cls.Name, len(e.Args))
		for _, a := range e.Args {
			c.checkExpr(a)
		}
	}
	return c.setType(e, ClassType(cls))
}

func (c *checker) checkNewArray(e *ast.NewArray) *Type {
	elem := c.resolveType(e.Elem)
	for _, l := range e.Lens {
		lt := c.checkExpr(l)
		if lt.Kind != KInt {
			c.errorf(l, "array length must be int, got %s", lt)
		}
	}
	t := elem
	for i := 0; i < len(e.Lens)+e.ExtraDims; i++ {
		t = ArrayOf(t)
	}
	c.prog.Info.ArrayElems[e] = t
	return c.setType(e, t)
}

func (c *checker) checkBinary(e *ast.Binary) *Type {
	lt := c.checkExpr(e.L)
	rt := c.checkExpr(e.R)
	switch e.Op {
	case ast.Add:
		// String concatenation: either side String.
		if lt.Kind == KString || rt.Kind == KString {
			ok := func(t *Type) bool {
				return t.Kind == KString || t.Kind == KInt || t.Kind == KBool || t.Kind == KObject || t.Kind == KNull
			}
			if !ok(lt) || !ok(rt) {
				c.errorf(e, "cannot concatenate %s + %s", lt, rt)
			}
			return c.setType(e, String)
		}
		fallthrough
	case ast.Sub, ast.Mul, ast.Div, ast.Mod:
		if lt.Kind != KInt || rt.Kind != KInt {
			c.errorf(e, "%s needs int operands, got %s and %s", e.Op, lt, rt)
		}
		return c.setType(e, Int)
	case ast.Less, ast.Greater, ast.LessEq, ast.GreaterEq:
		if lt.Kind != KInt || rt.Kind != KInt {
			c.errorf(e, "%s needs int operands, got %s and %s", e.Op, lt, rt)
		}
		return c.setType(e, Bool)
	case ast.EqEq, ast.NotEq:
		comparable := lt.Equal(rt) ||
			(lt.IsRef() && rt.IsRef()) ||
			(lt.Kind == KNull && rt.IsRef()) || (rt.Kind == KNull && lt.IsRef())
		if !comparable {
			c.errorf(e, "cannot compare %s %s %s", lt, e.Op, rt)
		}
		return c.setType(e, Bool)
	case ast.LAnd, ast.LOr:
		if lt.Kind != KBool || rt.Kind != KBool {
			c.errorf(e, "%s needs boolean operands, got %s and %s", e.Op, lt, rt)
		}
		return c.setType(e, Bool)
	}
	c.errorf(e, "unhandled binary op %s", e.Op)
	return Object
}
