package parser

import (
	"testing"

	"algoprof/internal/mj/ast"
)

func TestParseThrow(t *testing.T) {
	prog, err := Parse(`
class Error { }
class Main {
  public static void main() {
    throw new Error();
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Classes[1].Methods[0].Body.Stmts[0]
	th, ok := stmt.(*ast.Throw)
	if !ok {
		t.Fatalf("stmt is %T", stmt)
	}
	if _, ok := th.Value.(*ast.New); !ok {
		t.Errorf("throw value is %T", th.Value)
	}
}

func TestParseTryCatch(t *testing.T) {
	prog, err := Parse(`
class Error { }
class Main {
  public static void main() {
    try {
      int x = 1;
    } catch (Error e) {
      int y = 2;
    }
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	stmt := prog.Classes[1].Methods[0].Body.Stmts[0]
	tc, ok := stmt.(*ast.TryCatch)
	if !ok {
		t.Fatalf("stmt is %T", stmt)
	}
	if tc.CatchType.Name != "Error" || tc.CatchName != "e" {
		t.Errorf("catch clause: %s %s", tc.CatchType.Name, tc.CatchName)
	}
	if len(tc.Body.Stmts) != 1 || len(tc.Handler.Stmts) != 1 {
		t.Errorf("body/handler stmt counts: %d/%d", len(tc.Body.Stmts), len(tc.Handler.Stmts))
	}
}

func TestParseNestedTry(t *testing.T) {
	prog, err := Parse(`
class E1 { }
class E2 { }
class Main {
  public static void main() {
    try {
      try {
        throw new E1();
      } catch (E1 a) {
        throw new E2();
      }
    } catch (E2 b) {
    }
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	outer := prog.Classes[2].Methods[0].Body.Stmts[0].(*ast.TryCatch)
	if _, ok := outer.Body.Stmts[0].(*ast.TryCatch); !ok {
		t.Error("inner try not nested")
	}
}

func TestParseTryErrors(t *testing.T) {
	cases := []string{
		`class Main { public static void main() { try { } } }`,               // missing catch
		`class Main { public static void main() { try { } catch { } } }`,     // missing clause
		`class Main { public static void main() { throw; } }`,                // missing value
		`class Main { public static void main() { try { } catch (E) { } } }`, // missing name
		`class Main { public static void main() { catch (E e) { } } }`,       // stray catch
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("want parse error for %q", src)
		}
	}
}
