// Package parser builds MJ abstract syntax trees from source text.
//
// The parser is recursive descent over the full token slice, which makes
// the one ambiguous corner of the grammar (a statement beginning with
// `Name<...>` that may be either a generic variable declaration or a
// comparison expression) cheap to resolve by speculative parsing with
// backtracking.
package parser

import (
	"fmt"
	"strconv"

	"algoprof/internal/mj/ast"
	"algoprof/internal/mj/lexer"
	"algoprof/internal/mj/token"
)

// Parser parses a token stream into an AST.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// Parse parses a whole MJ program from source.
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.ScanAll(src)
	p := &Parser{toks: toks}
	for _, e := range lexErrs {
		p.errs = append(p.errs, e)
	}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, fmt.Errorf("parse: %d error(s), first: %w", len(p.errs), p.errs[0])
	}
	return prog, nil
}

// MustParse parses src and panics on error; intended for embedding known-good
// workload sources in tests and benchmarks.
func MustParse(src string) *ast.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Errors returns all accumulated parse errors.
func (p *Parser) Errors() []error { return p.errs }

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) advance() token.Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	err := fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
	p.errs = append(p.errs, err)
	// Error recovery: skip one token so we cannot loop forever.
	if !p.at(token.EOF) {
		p.advance()
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (p *Parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) {
		if p.at(token.KwClass) {
			prog.Classes = append(prog.Classes, p.parseClass())
		} else {
			p.errorf("expected class declaration, found %s", p.cur())
		}
	}
	return prog
}

func (p *Parser) parseClass() *ast.ClassDecl {
	cls := &ast.ClassDecl{TokPos: p.cur().Pos}
	p.expect(token.KwClass)
	cls.Name = p.expect(token.IDENT).Text
	if p.accept(token.Lt) {
		for {
			cls.TypeParams = append(cls.TypeParams, p.expect(token.IDENT).Text)
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Gt)
	}
	if p.accept(token.KwExtends) {
		cls.Extends = p.parseType()
	}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		p.parseMember(cls)
	}
	p.expect(token.RBrace)
	return cls
}

func (p *Parser) parseModifiers() (static bool) {
	for {
		switch p.cur().Kind {
		case token.KwPublic, token.KwPrivate, token.KwFinal:
			p.advance()
		case token.KwStatic:
			static = true
			p.advance()
		default:
			return static
		}
	}
}

func (p *Parser) parseMember(cls *ast.ClassDecl) {
	pos := p.cur().Pos
	static := p.parseModifiers()

	// Constructor: ClassName '(' ...
	if p.at(token.IDENT) && p.cur().Text == cls.Name && p.peek().Kind == token.LParen {
		m := &ast.MethodDecl{TokPos: pos, Name: cls.Name, IsConstructor: true}
		p.advance()
		m.Params = p.parseParams()
		m.Body = p.parseBlock()
		cls.Methods = append(cls.Methods, m)
		return
	}

	// void method.
	if p.accept(token.KwVoid) {
		m := &ast.MethodDecl{TokPos: pos, Static: static}
		m.Name = p.expect(token.IDENT).Text
		m.Params = p.parseParams()
		m.Body = p.parseBlock()
		cls.Methods = append(cls.Methods, m)
		return
	}

	// Typed method or field.
	typ := p.parseType()
	name := p.expect(token.IDENT).Text
	if p.at(token.LParen) {
		m := &ast.MethodDecl{TokPos: pos, Static: static, Name: name, Ret: typ}
		m.Params = p.parseParams()
		m.Body = p.parseBlock()
		cls.Methods = append(cls.Methods, m)
		return
	}
	cls.Fields = append(cls.Fields, &ast.FieldDecl{TokPos: pos, Name: name, Type: typ})
	// Support `Node head, tail;` style multi-declarators.
	for p.accept(token.Comma) {
		n2 := p.expect(token.IDENT).Text
		cls.Fields = append(cls.Fields, &ast.FieldDecl{TokPos: pos, Name: n2, Type: typ})
	}
	p.expect(token.Semi)
}

func (p *Parser) parseParams() []*ast.Param {
	p.expect(token.LParen)
	var params []*ast.Param
	for !p.at(token.RParen) && !p.at(token.EOF) {
		if len(params) > 0 {
			p.expect(token.Comma)
		}
		pos := p.cur().Pos
		p.accept(token.KwFinal)
		typ := p.parseType()
		name := p.expect(token.IDENT).Text
		params = append(params, &ast.Param{TokPos: pos, Name: name, Type: typ})
	}
	p.expect(token.RParen)
	return params
}

// parseType parses a type expression: base name, optional generic args,
// trailing [] pairs.
func (p *Parser) parseType() *ast.TypeExpr {
	pos := p.cur().Pos
	var name string
	switch p.cur().Kind {
	case token.KwInt:
		name = "int"
		p.advance()
	case token.KwBoolean:
		name = "boolean"
		p.advance()
	case token.KwString:
		name = "String"
		p.advance()
	case token.IDENT:
		name = p.advance().Text
	default:
		p.errorf("expected type, found %s", p.cur())
		return &ast.TypeExpr{TokPos: pos, Name: "int"}
	}
	t := &ast.TypeExpr{TokPos: pos, Name: name}
	if p.at(token.Lt) {
		p.advance()
		for {
			t.Args = append(t.Args, p.parseType())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Gt)
	}
	for p.at(token.LBracket) && p.peek().Kind == token.RBracket {
		p.advance()
		p.advance()
		t.Dims++
	}
	return t
}

// tryParseType speculatively parses a type; on failure it restores the
// position and returns nil. Used to disambiguate declarations from
// expressions at statement start.
func (p *Parser) tryParseType() *ast.TypeExpr {
	save := p.pos
	saveErrs := len(p.errs)
	t := p.parseType()
	if len(p.errs) > saveErrs {
		p.pos = save
		p.errs = p.errs[:saveErrs]
		return nil
	}
	return t
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{TokPos: p.cur().Pos}
	p.expect(token.LBrace)
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(token.RBrace)
	return b
}

func (p *Parser) parseStmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.LBrace:
		return p.parseBlock()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		p.advance()
		r := &ast.Return{TokPos: pos}
		if !p.at(token.Semi) {
			r.Value = p.parseExpr()
		}
		p.expect(token.Semi)
		return r
	case token.KwSuper:
		p.advance()
		args := p.parseArgs()
		p.expect(token.Semi)
		return &ast.SuperCall{TokPos: pos, Args: args}
	case token.KwThrow:
		p.advance()
		v := p.parseExpr()
		p.expect(token.Semi)
		return &ast.Throw{TokPos: pos, Value: v}
	case token.KwTry:
		p.advance()
		body := p.parseBlock()
		p.expect(token.KwCatch)
		p.expect(token.LParen)
		ct := p.parseType()
		cn := p.expect(token.IDENT).Text
		p.expect(token.RParen)
		handler := p.parseBlock()
		return &ast.TryCatch{TokPos: pos, Body: body, CatchType: ct, CatchName: cn, Handler: handler}
	case token.KwJoin:
		p.advance()
		h := p.parseExpr()
		p.expect(token.Semi)
		return &ast.Join{TokPos: pos, Handle: h}
	case token.KwBreak:
		p.advance()
		p.expect(token.Semi)
		return &ast.Break{TokPos: pos}
	case token.KwContinue:
		p.advance()
		p.expect(token.Semi)
		return &ast.Continue{TokPos: pos}
	case token.KwVar:
		p.advance()
		name := p.expect(token.IDENT).Text
		p.expect(token.Assign)
		init := p.parseExpr()
		p.expect(token.Semi)
		return &ast.VarDecl{TokPos: pos, Name: name, Init: init}
	}
	s := p.parseSimpleStmt()
	p.expect(token.Semi)
	return s
}

// parseSimpleStmt parses a declaration, assignment, inc/dec or expression
// statement without consuming the trailing semicolon (so `for` headers can
// reuse it).
func (p *Parser) parseSimpleStmt() ast.Stmt {
	pos := p.cur().Pos

	p.accept(token.KwFinal) // `final Node n = ...;`

	// `var x = e` inside for-init.
	if p.at(token.KwVar) {
		p.advance()
		name := p.expect(token.IDENT).Text
		p.expect(token.Assign)
		return &ast.VarDecl{TokPos: pos, Name: name, Init: p.parseExpr()}
	}

	if decl := p.tryParseVarDecl(pos); decl != nil {
		return decl
	}

	x := p.parseExpr()
	switch p.cur().Kind {
	case token.Assign:
		p.advance()
		if !isLValue(x) {
			p.errs = append(p.errs, fmt.Errorf("%s: cannot assign to this expression", pos))
		}
		return &ast.AssignStmt{TokPos: pos, Target: x, Value: p.parseExpr()}
	case token.PlusPlus:
		p.advance()
		return &ast.IncDecStmt{TokPos: pos, Target: x, Inc: true}
	case token.MinusMinus:
		p.advance()
		return &ast.IncDecStmt{TokPos: pos, Target: x, Inc: false}
	}
	return &ast.ExprStmt{TokPos: pos, X: x}
}

// tryParseVarDecl recognizes `Type name [= init]` at statement start,
// backtracking if the lookahead is not a declaration.
func (p *Parser) tryParseVarDecl(pos token.Pos) ast.Stmt {
	switch p.cur().Kind {
	case token.KwInt, token.KwBoolean, token.KwString:
		// Unambiguous: primitive type keyword begins a declaration.
	case token.IDENT:
		// Ambiguous: need `Type name` shape after a speculative type parse.
		save := p.pos
		t := p.tryParseType()
		if t == nil || !p.at(token.IDENT) {
			p.pos = save
			return nil
		}
		p.pos = save
	default:
		return nil
	}
	typ := p.parseType()
	name := p.expect(token.IDENT).Text
	d := &ast.VarDecl{TokPos: pos, Name: name, Type: typ}
	if p.accept(token.Assign) {
		d.Init = p.parseExpr()
	}
	return d
}

func isLValue(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Ident, *ast.FieldAccess, *ast.Index:
		return true
	}
	return false
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KwIf)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		els = p.parseStmt()
	}
	return &ast.If{TokPos: pos, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	body := p.parseStmt()
	return &ast.While{TokPos: pos, Cond: cond, Body: body}
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.cur().Pos
	p.expect(token.KwFor)
	p.expect(token.LParen)
	f := &ast.For{TokPos: pos}
	if !p.at(token.Semi) {
		f.Init = p.parseSimpleStmt()
	}
	p.expect(token.Semi)
	if !p.at(token.Semi) {
		f.Cond = p.parseExpr()
	}
	p.expect(token.Semi)
	if !p.at(token.RParen) {
		f.Post = p.parseSimpleStmt()
	}
	p.expect(token.RParen)
	f.Body = p.parseStmt()
	return f
}

// ---------------------------------------------------------------------------
// Expressions

func (p *Parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *Parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.at(token.OrOr) {
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: ast.LOr, L: x, R: p.parseAnd()}
	}
	return x
}

func (p *Parser) parseAnd() ast.Expr {
	x := p.parseEquality()
	for p.at(token.AndAnd) {
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: ast.LAnd, L: x, R: p.parseEquality()}
	}
	return x
}

func (p *Parser) parseEquality() ast.Expr {
	x := p.parseRelational()
	for p.at(token.Eq) || p.at(token.Neq) {
		op := ast.EqEq
		if p.at(token.Neq) {
			op = ast.NotEq
		}
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: op, L: x, R: p.parseRelational()}
	}
	return x
}

func (p *Parser) parseRelational() ast.Expr {
	x := p.parseAdditive()
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case token.Lt:
			op = ast.Less
		case token.Gt:
			op = ast.Greater
		case token.Le:
			op = ast.LessEq
		case token.Ge:
			op = ast.GreaterEq
		default:
			return x
		}
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: op, L: x, R: p.parseAdditive()}
	}
}

func (p *Parser) parseAdditive() ast.Expr {
	x := p.parseMultiplicative()
	for p.at(token.Plus) || p.at(token.Minus) {
		op := ast.Add
		if p.at(token.Minus) {
			op = ast.Sub
		}
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: op, L: x, R: p.parseMultiplicative()}
	}
	return x
}

func (p *Parser) parseMultiplicative() ast.Expr {
	x := p.parseUnary()
	for {
		var op ast.BinOp
		switch p.cur().Kind {
		case token.Star:
			op = ast.Mul
		case token.Slash:
			op = ast.Div
		case token.Percent:
			op = ast.Mod
		default:
			return x
		}
		pos := p.advance().Pos
		x = &ast.Binary{TokPos: pos, Op: op, L: x, R: p.parseUnary()}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.Minus:
		p.advance()
		return &ast.Unary{TokPos: pos, Op: ast.Neg, X: p.parseUnary()}
	case token.Not:
		p.advance()
		return &ast.Unary{TokPos: pos, Op: ast.LNot, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.Dot:
			p.advance()
			pos := p.cur().Pos
			name := p.expect(token.IDENT).Text
			if p.at(token.LParen) {
				args := p.parseArgs()
				x = &ast.Call{TokPos: pos, Recv: x, Name: name, Args: args}
			} else {
				x = &ast.FieldAccess{TokPos: pos, X: x, Name: name}
			}
		case token.LBracket:
			pos := p.advance().Pos
			idx := p.parseExpr()
			p.expect(token.RBracket)
			x = &ast.Index{TokPos: pos, X: x, Idx: idx}
		default:
			return x
		}
	}
}

func (p *Parser) parseArgs() []ast.Expr {
	p.expect(token.LParen)
	var args []ast.Expr
	for !p.at(token.RParen) && !p.at(token.EOF) {
		if len(args) > 0 {
			p.expect(token.Comma)
		}
		args = append(args, p.parseExpr())
	}
	p.expect(token.RParen)
	return args
}

func (p *Parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case token.INT:
		t := p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errs = append(p.errs, fmt.Errorf("%s: bad integer literal %q", pos, t.Text))
		}
		return &ast.IntLit{TokPos: pos, Value: v}
	case token.STRING:
		return &ast.StringLit{TokPos: pos, Value: p.advance().Text}
	case token.KwTrue:
		p.advance()
		return &ast.BoolLit{TokPos: pos, Value: true}
	case token.KwFalse:
		p.advance()
		return &ast.BoolLit{TokPos: pos, Value: false}
	case token.KwNull:
		p.advance()
		return &ast.NullLit{TokPos: pos}
	case token.KwThis:
		p.advance()
		return &ast.This{TokPos: pos}
	case token.LParen:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.KwNew:
		return p.parseNew()
	case token.KwSpawn:
		p.advance()
		x := p.parsePostfix()
		call, ok := x.(*ast.Call)
		if !ok {
			p.errs = append(p.errs, fmt.Errorf("%s: spawn requires a method call", pos))
			return &ast.IntLit{TokPos: pos}
		}
		return &ast.Spawn{TokPos: pos, Call: call}
	case token.IDENT:
		name := p.advance().Text
		if p.at(token.LParen) {
			return &ast.Call{TokPos: pos, Name: name, Args: p.parseArgs()}
		}
		return &ast.Ident{TokPos: pos, Name: name}
	}
	p.errorf("expected expression, found %s", p.cur())
	return &ast.IntLit{TokPos: pos}
}

func (p *Parser) parseNew() ast.Expr {
	pos := p.cur().Pos
	p.expect(token.KwNew)

	// Parse the base type name and optional generic args, but NOT trailing
	// [] pairs: `new T[n]` must not consume `[` as part of the type.
	var name string
	switch p.cur().Kind {
	case token.KwInt:
		name = "int"
		p.advance()
	case token.KwBoolean:
		name = "boolean"
		p.advance()
	case token.KwString:
		name = "String"
		p.advance()
	case token.IDENT:
		name = p.advance().Text
	default:
		p.errorf("expected type after new, found %s", p.cur())
		name = "int"
	}
	base := &ast.TypeExpr{TokPos: pos, Name: name}
	if p.at(token.Lt) {
		p.advance()
		for {
			base.Args = append(base.Args, p.parseType())
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.Gt)
	}

	if p.at(token.LBracket) {
		na := &ast.NewArray{TokPos: pos, Elem: base}
		for p.at(token.LBracket) && p.peek().Kind != token.RBracket {
			p.advance()
			na.Lens = append(na.Lens, p.parseExpr())
			p.expect(token.RBracket)
		}
		for p.at(token.LBracket) && p.peek().Kind == token.RBracket {
			p.advance()
			p.advance()
			na.ExtraDims++
		}
		if len(na.Lens) == 0 {
			p.errs = append(p.errs, fmt.Errorf("%s: array creation needs at least one sized dimension", pos))
		}
		return na
	}

	args := p.parseArgs()
	return &ast.New{TokPos: pos, Type: base, Args: args}
}
