package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"algoprof/internal/mj/ast"
)

func TestParseEmptyClass(t *testing.T) {
	prog, err := Parse("class A { }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Classes) != 1 || prog.Classes[0].Name != "A" {
		t.Fatalf("got %+v", prog.Classes)
	}
}

func TestParseFieldsAndMethods(t *testing.T) {
	src := `
class Node {
  public Node prev;
  public Node next;
  public final int value;
  public Node(int value) { this.value = value; }
}
class List {
  private Node head, tail;
  public void append(int value) {
    final Node node = new Node(value);
    if (tail == null) { tail = node; head = tail; }
    else { tail.next = node; node.prev = tail; tail = tail.next; }
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	node := prog.Classes[0]
	if len(node.Fields) != 3 {
		t.Errorf("Node has %d fields, want 3", len(node.Fields))
	}
	if len(node.Methods) != 1 || !node.Methods[0].IsConstructor {
		t.Errorf("Node constructor not parsed: %+v", node.Methods)
	}
	list := prog.Classes[1]
	if len(list.Fields) != 2 {
		t.Errorf("List has %d fields (multi-declarator), want 2", len(list.Fields))
	}
	if list.Fields[0].Name != "head" || list.Fields[1].Name != "tail" {
		t.Errorf("multi-declarator names wrong: %v %v", list.Fields[0].Name, list.Fields[1].Name)
	}
}

func TestParseStaticMethod(t *testing.T) {
	src := `class Main { public static void main() { run(); } static int run() { return 1; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ms := prog.Classes[0].Methods
	if !ms[0].Static || !ms[1].Static {
		t.Error("static modifier lost")
	}
	if ms[0].Ret != nil {
		t.Error("void method should have nil Ret")
	}
	if ms[1].Ret == nil || ms[1].Ret.Name != "int" {
		t.Error("int return type lost")
	}
}

func TestParseGenerics(t *testing.T) {
	src := `
class Node<T> { Node<T> next; T value; }
class List<T> {
  Node<T> head;
  void add(T v) { Node<T> n = new Node<T>(); n.value = v; n.next = head; head = n; }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Classes[0].TypeParams; len(got) != 1 || got[0] != "T" {
		t.Errorf("type params: %v", got)
	}
	add := prog.Classes[1].Methods[0]
	decl, ok := add.Body.Stmts[0].(*ast.VarDecl)
	if !ok {
		t.Fatalf("first stmt is %T, want VarDecl", add.Body.Stmts[0])
	}
	if decl.Type.Name != "Node" || len(decl.Type.Args) != 1 {
		t.Errorf("generic local decl type: %v", decl.Type)
	}
}

func TestParseGenericDeclVsComparison(t *testing.T) {
	src := `
class A {
  int f(int a, int b, int c) {
    boolean x = a < b;
    if (a < b) { return c; }
    return a;
  }
}
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseControlFlow(t *testing.T) {
	src := `
class A {
  int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      if (i % 2 == 0) { continue; }
      if (i > 100) { break; }
      s = s + i;
    }
    while (s > 10) { s = s - 1; }
    return s;
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Classes[0].Methods[0].Body
	if _, ok := body.Stmts[1].(*ast.For); !ok {
		t.Errorf("stmt 1 is %T, want For", body.Stmts[1])
	}
	if _, ok := body.Stmts[2].(*ast.While); !ok {
		t.Errorf("stmt 2 is %T, want While", body.Stmts[2])
	}
}

func TestParseArrays(t *testing.T) {
	src := `
class A {
  void f() {
    int[] a = new int[10];
    int[][] m = new int[3][4];
    Object[] half = new Object[5][];
    a[0] = a.length;
    m[1][2] = m[0][0] + 1;
  }
}
class Object { }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Classes[0].Methods[0].Body
	d0 := body.Stmts[0].(*ast.VarDecl)
	if d0.Type.Dims != 1 {
		t.Errorf("int[] dims=%d", d0.Type.Dims)
	}
	na := d0.Init.(*ast.NewArray)
	if len(na.Lens) != 1 || na.ExtraDims != 0 {
		t.Errorf("new int[10]: %+v", na)
	}
	d2 := body.Stmts[2].(*ast.VarDecl)
	na2 := d2.Init.(*ast.NewArray)
	if len(na2.Lens) != 1 || na2.ExtraDims != 1 {
		t.Errorf("new Object[5][]: lens=%d extra=%d", len(na2.Lens), na2.ExtraDims)
	}
	as := body.Stmts[3].(*ast.AssignStmt)
	if _, ok := as.Target.(*ast.Index); !ok {
		t.Errorf("a[0] target is %T", as.Target)
	}
	fa, ok := as.Value.(*ast.FieldAccess)
	if !ok || fa.Name != "length" {
		t.Errorf("a.length parsed as %T", as.Value)
	}
}

func TestParsePrecedence(t *testing.T) {
	src := `class A { int f(int a, int b, int c) { return a + b * c; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Classes[0].Methods[0].Body.Stmts[0].(*ast.Return)
	bin := ret.Value.(*ast.Binary)
	if bin.Op != ast.Add {
		t.Fatalf("top op %v, want +", bin.Op)
	}
	if r, ok := bin.R.(*ast.Binary); !ok || r.Op != ast.Mul {
		t.Errorf("right operand should be b*c, got %T", bin.R)
	}
}

func TestParseShortCircuit(t *testing.T) {
	src := `class A { boolean f(boolean a, boolean b, boolean c) { return a && b || !c; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Classes[0].Methods[0].Body.Stmts[0].(*ast.Return)
	or := ret.Value.(*ast.Binary)
	if or.Op != ast.LOr {
		t.Fatalf("top op %v, want ||", or.Op)
	}
	if l, ok := or.L.(*ast.Binary); !ok || l.Op != ast.LAnd {
		t.Error("left should be a && b")
	}
	if r, ok := or.R.(*ast.Unary); !ok || r.Op != ast.LNot {
		t.Error("right should be !c")
	}
}

func TestParseCalls(t *testing.T) {
	src := `
class A {
  void f(A other) {
    g();
    this.g();
    other.g();
    B.stat();
    other.g().g();
  }
  A g() { return this; }
}
class B { static void stat() { } }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Classes[0].Methods[0].Body.Stmts
	c0 := stmts[0].(*ast.ExprStmt).X.(*ast.Call)
	if c0.Recv != nil || c0.Name != "g" {
		t.Errorf("unqualified call: %+v", c0)
	}
	c3 := stmts[3].(*ast.ExprStmt).X.(*ast.Call)
	if id, ok := c3.Recv.(*ast.Ident); !ok || id.Name != "B" {
		t.Errorf("static call receiver: %+v", c3.Recv)
	}
	c4 := stmts[4].(*ast.ExprStmt).X.(*ast.Call)
	if _, ok := c4.Recv.(*ast.Call); !ok {
		t.Errorf("chained call receiver is %T", c4.Recv)
	}
}

func TestParseInheritance(t *testing.T) {
	src := `
class Base { int x; }
class Derived extends Base { int y; }
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Classes[1]
	if d.Extends == nil || d.Extends.Name != "Base" {
		t.Errorf("extends: %+v", d.Extends)
	}
}

func TestParseIncDecStatements(t *testing.T) {
	src := `class A { void f() { int i = 0; i++; i--; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	stmts := prog.Classes[0].Methods[0].Body.Stmts
	inc := stmts[1].(*ast.IncDecStmt)
	dec := stmts[2].(*ast.IncDecStmt)
	if !inc.Inc || dec.Inc {
		t.Error("inc/dec flags wrong")
	}
}

func TestParseVarInference(t *testing.T) {
	src := `class A { void f() { var x = 1 + 2; } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Classes[0].Methods[0].Body.Stmts[0].(*ast.VarDecl)
	if d.Type != nil || d.Init == nil {
		t.Errorf("var decl: %+v", d)
	}
}

func TestParseErrorMissingSemi(t *testing.T) {
	_, err := Parse(`class A { void f() { int x = 1 } }`)
	if err == nil {
		t.Fatal("want parse error for missing semicolon")
	}
}

func TestParseErrorGarbage(t *testing.T) {
	_, err := Parse(`garbage tokens here`)
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestParseErrorRecoveryTerminates(t *testing.T) {
	// A pathological input must not hang the parser.
	bad := strings.Repeat("} ) ; ", 100)
	_, err := Parse("class A { void f() { " + bad)
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestParseRunningExample(t *testing.T) {
	// The paper's Listing 1+2 shape (abridged) must parse cleanly.
	src := `
class List {
  private Node head, tail;
  public void sort() {
    if (head == null || head.next == null) { return; }
    Node firstUnsorted = head.next;
    while (firstUnsorted != null) {
      Node target = firstUnsorted;
      Node nextUnsorted = firstUnsorted.next;
      while (target.prev != null && target.prev.value > target.value) {
        final Node candidate = target.prev;
        final Node pred = candidate.prev;
        final Node succ = target.next;
        if (pred != null) { pred.next = target; } else { head = target; }
        target.prev = pred;
        if (succ != null) { succ.prev = candidate; } else { tail = candidate; }
        candidate.next = succ;
        target.next = candidate;
        candidate.prev = target;
      }
      firstUnsorted = nextUnsorted;
    }
  }
  public void append(int value) {
    final Node node = new Node(value);
    if (tail == null) { tail = node; head = tail; }
    else { tail.next = node; node.prev = tail; tail = tail.next; }
  }
}
class Node {
  public Node prev;
  public Node next;
  public final int value;
  public Node(int value) { this.value = value; }
}
class Main {
  public static void main() {
    for (int size = 0; size < 100; size++) {
      List list = new List();
      constructRandom(list, size);
      list.sort();
    }
  }
  private static void constructRandom(List list, int size) {
    for (int i = 0; i < size; i++) { list.append(rand(size)); }
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Classes) != 3 {
		t.Fatalf("got %d classes", len(prog.Classes))
	}
}

// Property: the parser never panics and never hangs on arbitrary input —
// it either produces a tree or returns an error.
func TestParserTotalOnRandomInput(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: mutations of a valid program (random byte splices) never panic
// the parser; this hits recovery paths plain random strings rarely reach.
func TestParserTotalOnMutatedProgram(t *testing.T) {
	base := `
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    try {
      for (int i = 0; i < 3; i++) { Node n = new Node(i); }
    } catch (Node e) { }
  }
}`
	f := func(pos uint16, repl byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		b := []byte(base)
		p := int(pos) % len(b)
		b[p] = repl
		_, _ = Parse(string(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
