package compiler

import (
	"strings"
	"testing"

	"algoprof/internal/mj/bytecode"
)

func compileFn(t *testing.T, src, qualified string) *bytecode.Function {
	t.Helper()
	prog, err := CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		if fn.Name() == qualified {
			return fn
		}
	}
	t.Fatalf("no function %s", qualified)
	return nil
}

func ops(fn *bytecode.Function) []bytecode.Op {
	out := make([]bytecode.Op, len(fn.Code))
	for i, in := range fn.Code {
		out[i] = in.Op
	}
	return out
}

func count(fn *bytecode.Function, op bytecode.Op) int {
	n := 0
	for _, in := range fn.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestEveryFunctionValidates(t *testing.T) {
	prog, err := CompileSource(`
class Error { int code; Error(int c) { code = c; } }
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  static int work(Node head, int[] a) {
    int s = 0;
    for (int i = 0; i < a.length; i++) {
      s = s + a[i];
      if (s > 100) { break; }
      if (s < 0) { continue; }
    }
    Node cur = head;
    while (cur != null) {
      try {
        if (cur.v == 13) { throw new Error(13); }
      } catch (Error e) {
        s = s - e.code;
      }
      cur = cur.next;
    }
    return s;
  }
  public static void main() {
    int[] a = new int[4];
    Node h = new Node(1);
    print(work(h, a));
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		if err := bytecode.Validate(fn); err != nil {
			t.Errorf("%s: %v", fn.Name(), err)
		}
	}
}

func TestVoidMethodEndsInRet(t *testing.T) {
	fn := compileFn(t, `class Main { public static void main() { int x = 1; } }`, "Main.main")
	if fn.Code[len(fn.Code)-1].Op != bytecode.OpRet {
		t.Errorf("last op %s", fn.Code[len(fn.Code)-1].Op)
	}
}

func TestValueMethodFallthroughTraps(t *testing.T) {
	fn := compileFn(t, `
class Main {
  static int f(int n) { if (n > 0) { return 1; } }
  public static void main() { int x = f(1); }
}`, "Main.f")
	if fn.Code[len(fn.Code)-1].Op != bytecode.OpMissingReturn {
		t.Errorf("last op %s, want trap.noreturn", fn.Code[len(fn.Code)-1].Op)
	}
}

func TestShortCircuitCompilesToJumps(t *testing.T) {
	fn := compileFn(t, `
class Main {
  static boolean f(boolean a, boolean b) { return a && b; }
  public static void main() { boolean x = f(true, false); }
}`, "Main.f")
	if count(fn, bytecode.OpJmpIfFalse) < 1 {
		t.Errorf("&& must compile to a conditional jump:\n%s", bytecode.Disassemble(fn))
	}
	// No And/Or opcode exists; the result is materialized via ConstBool.
	if count(fn, bytecode.OpConstBool) < 1 {
		t.Errorf("short-circuit false arm missing:\n%s", bytecode.Disassemble(fn))
	}
}

func TestConstructorCallShape(t *testing.T) {
	fn := compileFn(t, `
class P { int v; P(int v) { this.v = v; } }
class Main { public static void main() { P p = new P(3); } }`, "Main.main")
	got := ops(fn)
	// new, dup, const arg, ctor call, store, ret.
	want := []bytecode.Op{bytecode.OpNewObject, bytecode.OpDup, bytecode.OpConstInt,
		bytecode.OpCallVirt, bytecode.OpStoreLocal, bytecode.OpRet}
	if len(got) != len(want) {
		t.Fatalf("ops %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestStringConcatUsesConcat(t *testing.T) {
	fn := compileFn(t, `
class Main { public static void main() { String s = "n" + 1; int x = 1 + 2; } }`, "Main.main")
	if count(fn, bytecode.OpConcat) != 1 {
		t.Errorf("want exactly one concat:\n%s", bytecode.Disassemble(fn))
	}
	if count(fn, bytecode.OpAdd) != 1 {
		t.Errorf("want exactly one add:\n%s", bytecode.Disassemble(fn))
	}
}

func TestExprStatementPopsValue(t *testing.T) {
	fn := compileFn(t, `
class Main {
  static int g() { return 1; }
  public static void main() { g(); }
}`, "Main.main")
	if count(fn, bytecode.OpPop) != 1 {
		t.Errorf("non-void call statement must pop:\n%s", bytecode.Disassemble(fn))
	}
}

func TestDynamicAccessOnErasedReceiver(t *testing.T) {
	fn := compileFn(t, `
class Box<T> { T v; }
class Main {
  public static void main() {
    Box<Box> b = new Box<Box>();
    var inner = b.v;
    var deep = inner.v;
  }
}`, "Main.main")
	if count(fn, bytecode.OpGetFieldDyn) != 1 {
		t.Errorf("access through erased Object must be dynamic:\n%s", bytecode.Disassemble(fn))
	}
	if count(fn, bytecode.OpGetField) != 1 {
		t.Errorf("statically typed access must stay static:\n%s", bytecode.Disassemble(fn))
	}
}

func TestLinesRecorded(t *testing.T) {
	fn := compileFn(t, `class Main {
  public static void main() {
    int a = 1;
    int b = 2;
  }
}`, "Main.main")
	// First statement on line 3, second on line 4.
	if fn.Code[0].Line != 3 {
		t.Errorf("first instr line = %d, want 3", fn.Code[0].Line)
	}
	sawLine4 := false
	for _, in := range fn.Code {
		if in.Line == 4 {
			sawLine4 = true
		}
	}
	if !sawLine4 {
		t.Error("no instruction recorded for line 4")
	}
}

func TestTryCatchHandlerTable(t *testing.T) {
	fn := compileFn(t, `
class E { }
class Main {
  public static void main() {
    try {
      throw new E();
    } catch (E e) {
      print("caught");
    }
  }
}`, "Main.main")
	if len(fn.Handlers) != 1 {
		t.Fatalf("handlers = %d, want 1", len(fn.Handlers))
	}
	h := fn.Handlers[0]
	if h.From >= h.To || h.Target < h.To {
		t.Errorf("handler layout: %+v", h)
	}
	if count(fn, bytecode.OpThrow) != 1 {
		t.Error("throw opcode missing")
	}
}

func TestNestedHandlersInnerFirst(t *testing.T) {
	fn := compileFn(t, `
class E { }
class Main {
  public static void main() {
    try {
      try {
        throw new E();
      } catch (E a) { }
    } catch (E b) { }
  }
}`, "Main.main")
	if len(fn.Handlers) != 2 {
		t.Fatalf("handlers = %d, want 2", len(fn.Handlers))
	}
	inner, outer := fn.Handlers[0], fn.Handlers[1]
	if !(inner.From >= outer.From && inner.To <= outer.To) {
		t.Errorf("inner handler %+v not nested in outer %+v", inner, outer)
	}
}

func TestCompileErrorMessageMentionsMethod(t *testing.T) {
	_, err := CompileSource(`
class Main {
  public static void main() { break; }
}`)
	if err == nil || !strings.Contains(err.Error(), "break") {
		t.Fatalf("got %v", err)
	}
}
