// Package compiler lowers checked MJ ASTs to bytecode.
//
// The compiler is deliberately simple and direct: it performs no
// optimization, because the profiler's cost model counts source-level
// repetitions and structure accesses, and any transformation that moved or
// removed loops or field accesses would distort the algorithmic profile.
package compiler

import (
	"fmt"

	"algoprof/internal/mj/ast"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/parser"
	"algoprof/internal/mj/types"
)

// Compile lowers a checked program to bytecode.
func Compile(sem *types.Program) (*bytecode.Program, error) {
	p := &bytecode.Program{Sem: sem, MainID: sem.Main.ID}
	p.Funcs = make([]*bytecode.Function, sem.NumMethods())
	for _, m := range sem.Methods() {
		fc := &funcCompiler{prog: p, sem: sem, method: m}
		fn, err := fc.compile()
		if err != nil {
			return nil, err
		}
		p.Funcs[m.ID] = fn
	}
	return p, nil
}

// CompileSource parses, checks and compiles MJ source in one step.
func CompileSource(src string) (*bytecode.Program, error) {
	astProg, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	sem, err := types.Check(astProg)
	if err != nil {
		return nil, err
	}
	return Compile(sem)
}

// MustCompileSource panics on error; for known-good embedded workloads.
func MustCompileSource(src string) *bytecode.Program {
	p, err := CompileSource(src)
	if err != nil {
		panic(err)
	}
	return p
}

type loopCtx struct {
	continueTarget int // patched later if < 0
	breakPatches   *[]int
	contPatches    *[]int
}

type funcCompiler struct {
	prog     *bytecode.Program
	sem      *types.Program
	method   *types.Method
	code     []bytecode.Instr
	loops    []*loopCtx
	handlers []bytecode.Handler
	curLine  int
	err      error
}

func (fc *funcCompiler) errorf(n ast.Node, format string, args ...any) {
	if fc.err == nil {
		fc.err = fmt.Errorf("compile %s: %s: %s", fc.method.QualifiedName(), n.Pos(), fmt.Sprintf(format, args...))
	}
}

func (fc *funcCompiler) emit(in bytecode.Instr) int {
	in.Line = fc.curLine
	fc.code = append(fc.code, in)
	return len(fc.code) - 1
}

func (fc *funcCompiler) op(o bytecode.Op) int         { return fc.emit(bytecode.Instr{Op: o}) }
func (fc *funcCompiler) opA(o bytecode.Op, a int) int { return fc.emit(bytecode.Instr{Op: o, A: a}) }
func (fc *funcCompiler) here() int                    { return len(fc.code) }
func (fc *funcCompiler) patch(at, target int)         { fc.code[at].A = target }

func (fc *funcCompiler) compile() (*bytecode.Function, error) {
	fc.compileBlock(fc.method.Decl.Body)
	// Fallthrough handling.
	if fc.method.Ret.Kind == types.KVoid || fc.method.IsConstructor {
		fc.op(bytecode.OpRet)
	} else {
		fc.op(bytecode.OpMissingReturn)
	}
	if fc.err != nil {
		return nil, fc.err
	}
	fn := &bytecode.Function{
		Method:    fc.method,
		Code:      fc.code,
		NumLocals: fc.method.NumLocals,
		Handlers:  fc.handlers,
	}
	if err := bytecode.Validate(fn); err != nil {
		return nil, err
	}
	return fn, nil
}

// ---------------------------------------------------------------------------
// Statements

func (fc *funcCompiler) compileBlock(b *ast.Block) {
	for _, s := range b.Stmts {
		fc.compileStmt(s)
	}
}

func (fc *funcCompiler) compileStmt(s ast.Stmt) {
	fc.curLine = s.Pos().Line
	switch s := s.(type) {
	case *ast.Block:
		fc.compileBlock(s)
	case *ast.VarDecl:
		slot, ok := fc.sem.Info.LocalSlots[s]
		if !ok {
			fc.errorf(s, "unresolved local %s", s.Name)
			return
		}
		if s.Init != nil {
			fc.compileExpr(s.Init)
		} else {
			fc.emitZero(fc.declType(s))
		}
		fc.opA(bytecode.OpStoreLocal, slot)
	case *ast.ExprStmt:
		t := fc.compileExpr(s.X)
		if t != nil && t.Kind != types.KVoid {
			fc.op(bytecode.OpPop)
		}
	case *ast.AssignStmt:
		fc.compileAssign(s.Target, func() { fc.compileExpr(s.Value) })
	case *ast.IncDecStmt:
		delta := bytecode.OpAdd
		if !s.Inc {
			delta = bytecode.OpSub
		}
		fc.compileAssign(s.Target, func() {
			fc.compileExpr(s.Target)
			fc.opA(bytecode.OpConstInt, 1)
			fc.op(delta)
		})
	case *ast.If:
		fc.compileExpr(s.Cond)
		jElse := fc.opA(bytecode.OpJmpIfFalse, -1)
		fc.compileStmt(s.Then)
		if s.Else != nil {
			jEnd := fc.opA(bytecode.OpJmp, -1)
			fc.patch(jElse, fc.here())
			fc.compileStmt(s.Else)
			fc.patch(jEnd, fc.here())
		} else {
			fc.patch(jElse, fc.here())
		}
	case *ast.While:
		cond := fc.here()
		fc.compileExpr(s.Cond)
		jEnd := fc.opA(bytecode.OpJmpIfFalse, -1)
		var breaks, conts []int
		fc.loops = append(fc.loops, &loopCtx{continueTarget: cond, breakPatches: &breaks, contPatches: &conts})
		fc.compileStmt(s.Body)
		fc.loops = fc.loops[:len(fc.loops)-1]
		fc.opA(bytecode.OpJmp, cond) // back edge
		end := fc.here()
		fc.patch(jEnd, end)
		for _, b := range breaks {
			fc.patch(b, end)
		}
		for _, c := range conts {
			fc.patch(c, cond)
		}
	case *ast.For:
		if s.Init != nil {
			fc.compileStmt(s.Init)
		}
		cond := fc.here()
		var jEnd = -1
		if s.Cond != nil {
			fc.compileExpr(s.Cond)
			jEnd = fc.opA(bytecode.OpJmpIfFalse, -1)
		}
		var breaks, conts []int
		fc.loops = append(fc.loops, &loopCtx{continueTarget: -1, breakPatches: &breaks, contPatches: &conts})
		fc.compileStmt(s.Body)
		fc.loops = fc.loops[:len(fc.loops)-1]
		post := fc.here()
		if s.Post != nil {
			fc.compileStmt(s.Post)
		}
		fc.opA(bytecode.OpJmp, cond) // back edge
		end := fc.here()
		if jEnd >= 0 {
			fc.patch(jEnd, end)
		}
		for _, b := range breaks {
			fc.patch(b, end)
		}
		for _, c := range conts {
			fc.patch(c, post)
		}
	case *ast.Return:
		if s.Value != nil {
			fc.compileExpr(s.Value)
			fc.op(bytecode.OpRetVal)
		} else {
			fc.op(bytecode.OpRet)
		}
	case *ast.SuperCall:
		ctor := fc.sem.Info.SuperCalls[s]
		if ctor == nil {
			fc.errorf(s, "unresolved super call")
			return
		}
		fc.opA(bytecode.OpLoadLocal, 0) // this
		for _, a := range s.Args {
			fc.compileExpr(a)
		}
		fc.opA(bytecode.OpCallVirt, ctor.ID)
	case *ast.Throw:
		fc.compileExpr(s.Value)
		fc.op(bytecode.OpThrow)
	case *ast.TryCatch:
		cls := fc.sem.Info.CatchClasses[s]
		slot, ok := fc.sem.Info.CatchSlots[s]
		if cls == nil || !ok {
			fc.errorf(s, "unresolved catch clause")
			return
		}
		from := fc.here()
		fc.compileBlock(s.Body)
		jEnd := fc.opA(bytecode.OpJmp, -1)
		to := fc.here() // range [from, to) covers the body and its jump
		target := fc.here()
		fc.compileBlock(s.Handler)
		fc.patch(jEnd, fc.here())
		// Inner handlers were appended while compiling the body, so they
		// precede this (outer) one: search order is innermost first.
		fc.handlers = append(fc.handlers, bytecode.Handler{
			From: from, To: to, Target: target, ClassID: cls.ID, Slot: slot,
		})
	case *ast.Join:
		fc.compileExpr(s.Handle)
		fc.op(bytecode.OpJoin)
	case *ast.Break:
		if len(fc.loops) == 0 {
			fc.errorf(s, "break outside loop")
			return
		}
		l := fc.loops[len(fc.loops)-1]
		*l.breakPatches = append(*l.breakPatches, fc.opA(bytecode.OpJmp, -1))
	case *ast.Continue:
		if len(fc.loops) == 0 {
			fc.errorf(s, "continue outside loop")
			return
		}
		l := fc.loops[len(fc.loops)-1]
		*l.contPatches = append(*l.contPatches, fc.opA(bytecode.OpJmp, -1))
	default:
		fc.errorf(s, "unhandled statement %T", s)
	}
}

func (fc *funcCompiler) declType(s *ast.VarDecl) *types.Type {
	if s.Type == nil {
		return types.Object
	}
	// The checker already resolved and recorded the variable's type via the
	// initializer path; for uninitialized declarations resolve the syntax
	// again using the kind of zero we must push.
	switch s.Type.Name {
	case "int":
		if s.Type.Dims == 0 {
			return types.Int
		}
	case "boolean":
		if s.Type.Dims == 0 {
			return types.Bool
		}
	}
	return types.Object
}

func (fc *funcCompiler) emitZero(t *types.Type) {
	switch t.Kind {
	case types.KInt:
		fc.opA(bytecode.OpConstInt, 0)
	case types.KBool:
		fc.opA(bytecode.OpConstBool, 0)
	default:
		fc.op(bytecode.OpConstNull)
	}
}

// compileAssign evaluates the assignment target's address parts, calls
// value() to push the right-hand side, and stores.
//
// Note: for `a[i]++` the array and index expressions are evaluated twice;
// MJ assignment targets are restricted to side-effect-free component
// expressions by construction (no embedded calls produce lvalues).
func (fc *funcCompiler) compileAssign(target ast.Expr, value func()) {
	switch t := target.(type) {
	case *ast.Ident:
		sym := fc.sem.Info.Idents[t]
		if sym == nil {
			fc.errorf(t, "unresolved identifier %s", t.Name)
			return
		}
		switch sym.Kind {
		case types.SymLocal:
			value()
			fc.opA(bytecode.OpStoreLocal, sym.Slot)
		case types.SymField:
			fc.opA(bytecode.OpLoadLocal, 0) // this
			value()
			fc.opA(bytecode.OpPutField, sym.Field.ID)
		default:
			fc.errorf(t, "cannot assign to class name %s", t.Name)
		}
	case *ast.FieldAccess:
		ref := fc.sem.Info.FieldAccess[t]
		if ref == nil {
			fc.errorf(t, "unresolved field access %s", t.Name)
			return
		}
		fc.compileExpr(t.X)
		value()
		switch {
		case ref.Field != nil:
			fc.opA(bytecode.OpPutField, ref.Field.ID)
		case ref.Dynamic:
			fc.emit(bytecode.Instr{Op: bytecode.OpPutFieldDyn, S: ref.Name})
		default:
			fc.errorf(t, "cannot assign to %s", t.Name)
		}
	case *ast.Index:
		fc.compileExpr(t.X)
		fc.compileExpr(t.Idx)
		value()
		fc.op(bytecode.OpAStore)
	default:
		fc.errorf(target, "invalid assignment target %T", target)
	}
}

// ---------------------------------------------------------------------------
// Expressions

// compileExpr pushes the expression's value and returns its static type.
func (fc *funcCompiler) compileExpr(e ast.Expr) *types.Type {
	t := fc.sem.Info.Types[e]
	switch e := e.(type) {
	case *ast.IntLit:
		fc.opA(bytecode.OpConstInt, int(e.Value))
	case *ast.BoolLit:
		v := 0
		if e.Value {
			v = 1
		}
		fc.opA(bytecode.OpConstBool, v)
	case *ast.StringLit:
		fc.emit(bytecode.Instr{Op: bytecode.OpConstStr, S: e.Value})
	case *ast.NullLit:
		fc.op(bytecode.OpConstNull)
	case *ast.This:
		fc.opA(bytecode.OpLoadLocal, 0)
	case *ast.Ident:
		sym := fc.sem.Info.Idents[e]
		if sym == nil {
			fc.errorf(e, "unresolved identifier %s", e.Name)
			return t
		}
		switch sym.Kind {
		case types.SymLocal:
			fc.opA(bytecode.OpLoadLocal, sym.Slot)
		case types.SymField:
			fc.opA(bytecode.OpLoadLocal, 0)
			fc.opA(bytecode.OpGetField, sym.Field.ID)
		default:
			fc.errorf(e, "class name %s used as value", e.Name)
		}
	case *ast.FieldAccess:
		ref := fc.sem.Info.FieldAccess[e]
		if ref == nil {
			fc.errorf(e, "unresolved field access %s", e.Name)
			return t
		}
		fc.compileExpr(e.X)
		switch {
		case ref.ArrayLen:
			fc.op(bytecode.OpArrayLen)
		case ref.StringLen:
			fc.op(bytecode.OpStrLen)
		case ref.Field != nil:
			fc.opA(bytecode.OpGetField, ref.Field.ID)
		case ref.Dynamic:
			fc.emit(bytecode.Instr{Op: bytecode.OpGetFieldDyn, S: ref.Name})
		}
	case *ast.Index:
		fc.compileExpr(e.X)
		fc.compileExpr(e.Idx)
		fc.op(bytecode.OpALoad)
	case *ast.Call:
		fc.compileCall(e)
	case *ast.Spawn:
		fc.compileSpawn(e)
	case *ast.New:
		cls := fc.sem.Info.NewClasses[e]
		if cls == nil {
			fc.errorf(e, "unresolved class for new")
			return t
		}
		fc.opA(bytecode.OpNewObject, cls.ID)
		if cls.Ctor != nil {
			fc.op(bytecode.OpDup)
			for _, a := range e.Args {
				fc.compileExpr(a)
			}
			fc.opA(bytecode.OpCallVirt, cls.Ctor.ID)
		}
	case *ast.NewArray:
		full := fc.sem.Info.ArrayElems[e]
		idx := fc.prog.InternType(full)
		for _, l := range e.Lens {
			fc.compileExpr(l)
		}
		if len(e.Lens) == 1 {
			fc.opA(bytecode.OpNewArray, idx)
		} else {
			fc.emit(bytecode.Instr{Op: bytecode.OpNewArrayMulti, A: idx, B: len(e.Lens)})
		}
	case *ast.Binary:
		fc.compileBinary(e, t)
	case *ast.Unary:
		fc.compileExpr(e.X)
		if e.Op == ast.Neg {
			fc.op(bytecode.OpNeg)
		} else {
			fc.op(bytecode.OpNot)
		}
	default:
		fc.errorf(e, "unhandled expression %T", e)
	}
	return t
}

func (fc *funcCompiler) compileCall(e *ast.Call) {
	tgt := fc.sem.Info.Calls[e]
	if tgt == nil {
		fc.errorf(e, "unresolved call %s", e.Name)
		return
	}
	switch {
	case tgt.Builtin != types.BuiltinNone:
		for _, a := range e.Args {
			fc.compileExpr(a)
		}
		fc.emit(bytecode.Instr{Op: bytecode.OpCallBuiltin, A: int(tgt.Builtin), B: len(e.Args)})
	case tgt.Dynamic:
		fc.compileExpr(e.Recv)
		for _, a := range e.Args {
			fc.compileExpr(a)
		}
		fc.emit(bytecode.Instr{Op: bytecode.OpCallDyn, S: tgt.Name, B: len(e.Args)})
	case tgt.Method != nil && tgt.Method.Static:
		for _, a := range e.Args {
			fc.compileExpr(a)
		}
		fc.opA(bytecode.OpCallStatic, tgt.Method.ID)
	case tgt.Method != nil:
		// Instance call: receiver is explicit or implicit this.
		if e.Recv != nil {
			fc.compileExpr(e.Recv)
		} else {
			fc.opA(bytecode.OpLoadLocal, 0)
		}
		for _, a := range e.Args {
			fc.compileExpr(a)
		}
		fc.opA(bytecode.OpCallVirt, tgt.Method.ID)
	default:
		fc.errorf(e, "call %s has no target", e.Name)
	}
}

// compileSpawn evaluates the spawned call's receiver and arguments on the
// spawning thread, then hands them to a new VM thread. B distinguishes
// instance dispatch (receiver under the args) from static.
func (fc *funcCompiler) compileSpawn(e *ast.Spawn) {
	tgt := fc.sem.Info.Calls[e.Call]
	if tgt == nil || tgt.Method == nil {
		fc.errorf(e, "unresolved spawn target %s", e.Call.Name)
		return
	}
	virt := 0
	if !tgt.Method.Static {
		virt = 1
		if e.Call.Recv != nil {
			fc.compileExpr(e.Call.Recv)
		} else {
			fc.opA(bytecode.OpLoadLocal, 0)
		}
	}
	for _, a := range e.Call.Args {
		fc.compileExpr(a)
	}
	fc.emit(bytecode.Instr{Op: bytecode.OpSpawn, A: tgt.Method.ID, B: virt})
}

func (fc *funcCompiler) compileBinary(e *ast.Binary, t *types.Type) {
	switch e.Op {
	case ast.LAnd:
		// L && R: if !L push false else push R.
		fc.compileExpr(e.L)
		jFalse := fc.opA(bytecode.OpJmpIfFalse, -1)
		fc.compileExpr(e.R)
		jEnd := fc.opA(bytecode.OpJmp, -1)
		fc.patch(jFalse, fc.here())
		fc.opA(bytecode.OpConstBool, 0)
		fc.patch(jEnd, fc.here())
		return
	case ast.LOr:
		fc.compileExpr(e.L)
		jTrue := fc.opA(bytecode.OpJmpIfTrue, -1)
		fc.compileExpr(e.R)
		jEnd := fc.opA(bytecode.OpJmp, -1)
		fc.patch(jTrue, fc.here())
		fc.opA(bytecode.OpConstBool, 1)
		fc.patch(jEnd, fc.here())
		return
	}

	fc.compileExpr(e.L)
	fc.compileExpr(e.R)
	switch e.Op {
	case ast.Add:
		if t != nil && t.Kind == types.KString {
			fc.op(bytecode.OpConcat)
		} else {
			fc.op(bytecode.OpAdd)
		}
	case ast.Sub:
		fc.op(bytecode.OpSub)
	case ast.Mul:
		fc.op(bytecode.OpMul)
	case ast.Div:
		fc.op(bytecode.OpDiv)
	case ast.Mod:
		fc.op(bytecode.OpMod)
	case ast.EqEq:
		fc.op(bytecode.OpCmpEq)
	case ast.NotEq:
		fc.op(bytecode.OpCmpNe)
	case ast.Less:
		fc.op(bytecode.OpCmpLt)
	case ast.Greater:
		fc.op(bytecode.OpCmpGt)
	case ast.LessEq:
		fc.op(bytecode.OpCmpLe)
	case ast.GreaterEq:
		fc.op(bytecode.OpCmpGe)
	default:
		fc.errorf(e, "unhandled binary op %s", e.Op)
	}
}
