// Package token defines the lexical tokens of the MJ language, the small
// Java-like language used as the instrumentation substrate for the
// algorithmic profiler. MJ supports classes with single inheritance,
// erasure-style generics, arrays, loops, recursion and a handful of
// builtins, which is exactly the surface the PLDI'12 AlgoProf paper
// exercises.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The order groups literals, identifiers, keywords,
// operators and delimiters.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT  // foo
	INT    // 123
	STRING // "abc"

	// Keywords.
	KwClass
	KwExtends
	KwPublic
	KwPrivate
	KwStatic
	KwFinal
	KwVoid
	KwInt
	KwBoolean
	KwString
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwNew
	KwNull
	KwTrue
	KwFalse
	KwThis
	KwBreak
	KwContinue
	KwVar
	KwThrow
	KwTry
	KwCatch
	KwSuper
	KwSpawn
	KwJoin

	// Operators.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Assign  // =
	Eq      // ==
	Neq     // !=
	Lt      // <
	Gt      // >
	Le      // <=
	Ge      // >=
	AndAnd  // &&
	OrOr    // ||
	Not     // !
	PlusPlus
	MinusMinus

	// Delimiters.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Comma    // ,
	Semi     // ;
	Dot      // .
	Question // ? (reserved, unused)
	Colon    // : (reserved, unused)
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	ILLEGAL:    "ILLEGAL",
	IDENT:      "identifier",
	INT:        "int literal",
	STRING:     "string literal",
	KwClass:    "class",
	KwExtends:  "extends",
	KwPublic:   "public",
	KwPrivate:  "private",
	KwStatic:   "static",
	KwFinal:    "final",
	KwVoid:     "void",
	KwInt:      "int",
	KwBoolean:  "boolean",
	KwString:   "String",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwNew:      "new",
	KwNull:     "null",
	KwTrue:     "true",
	KwFalse:    "false",
	KwThis:     "this",
	KwBreak:    "break",
	KwContinue: "continue",
	KwVar:      "var",
	KwThrow:    "throw",
	KwTry:      "try",
	KwCatch:    "catch",
	KwSuper:    "super",
	KwSpawn:    "spawn",
	KwJoin:     "join",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Assign:     "=",
	Eq:         "==",
	Neq:        "!=",
	Lt:         "<",
	Gt:         ">",
	Le:         "<=",
	Ge:         ">=",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	PlusPlus:   "++",
	MinusMinus: "--",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBracket:   "[",
	RBracket:   "]",
	Comma:      ",",
	Semi:       ";",
	Dot:        ".",
	Question:   "?",
	Colon:      ":",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"class":    KwClass,
	"extends":  KwExtends,
	"public":   KwPublic,
	"private":  KwPrivate,
	"static":   KwStatic,
	"final":    KwFinal,
	"void":     KwVoid,
	"int":      KwInt,
	"boolean":  KwBoolean,
	"String":   KwString,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"for":      KwFor,
	"return":   KwReturn,
	"new":      KwNew,
	"null":     KwNull,
	"true":     KwTrue,
	"false":    KwFalse,
	"this":     KwThis,
	"break":    KwBreak,
	"continue": KwContinue,
	"var":      KwVar,
	"throw":    KwThrow,
	"try":      KwTry,
	"catch":    KwCatch,
	"super":    KwSuper,
	"spawn":    KwSpawn,
	"join":     KwJoin,
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, STRING:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
