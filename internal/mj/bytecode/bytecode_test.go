package bytecode

import (
	"strings"
	"testing"

	"algoprof/internal/mj/parser"
	"algoprof/internal/mj/types"
)

func fn(code []Instr, handlers ...Handler) *Function {
	sem := types.MustCheck(parser.MustParse(
		`class Main { public static void main() { } }`))
	return &Function{
		Method:   sem.Main,
		Code:     code,
		Handlers: handlers,
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	f := fn([]Instr{
		{Op: OpConstInt, A: 1},
		{Op: OpJmpIfTrue, A: 0},
		{Op: OpRet},
	})
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := Validate(fn(nil)); err == nil {
		t.Fatal("want error for empty code")
	}
}

func TestValidateRejectsMissingTerminator(t *testing.T) {
	f := fn([]Instr{{Op: OpConstInt, A: 1}})
	if err := Validate(f); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("got %v", err)
	}
}

func TestValidateRejectsOutOfRangeJump(t *testing.T) {
	f := fn([]Instr{
		{Op: OpJmp, A: 99},
		{Op: OpRet},
	})
	if err := Validate(f); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("got %v", err)
	}
}

func TestValidateRejectsBadHandler(t *testing.T) {
	code := []Instr{{Op: OpConstInt}, {Op: OpRet}}
	bad := []Handler{
		{From: 1, To: 1, Target: 0},  // empty range
		{From: 0, To: 5, Target: 0},  // To out of range
		{From: 0, To: 1, Target: 9},  // target out of range
		{From: -1, To: 1, Target: 0}, // negative
	}
	for i, h := range bad {
		if err := Validate(fn(code, h)); err == nil {
			t.Errorf("handler %d accepted: %+v", i, h)
		}
	}
	good := Handler{From: 0, To: 1, Target: 1}
	if err := Validate(fn(code, good)); err != nil {
		t.Errorf("good handler rejected: %v", err)
	}
}

func TestTerminatorsAndJumps(t *testing.T) {
	for _, op := range []Op{OpJmp, OpRet, OpRetVal, OpMissingReturn, OpThrow} {
		if !op.IsTerminator() {
			t.Errorf("%s should be a terminator", op)
		}
	}
	for _, op := range []Op{OpJmp, OpJmpIfFalse, OpJmpIfTrue} {
		if !op.IsJump() {
			t.Errorf("%s should be a jump", op)
		}
	}
	if OpAdd.IsTerminator() || OpAdd.IsJump() || OpAdd.IsProbe() {
		t.Error("OpAdd misclassified")
	}
	for _, op := range []Op{OpLoopEnter, OpLoopBack, OpLoopExit} {
		if !op.IsProbe() {
			t.Errorf("%s should be a probe", op)
		}
	}
}

func TestDisassembleFormats(t *testing.T) {
	f := fn([]Instr{
		{Op: OpConstStr, S: "hi"},
		{Op: OpCallDyn, S: "meth", B: 2},
		{Op: OpLoadLocal, A: 3},
		{Op: OpNewArrayMulti, A: 0, B: 2},
		{Op: OpAdd},
		{Op: OpRet},
	})
	out := Disassemble(f)
	for _, want := range []string{`const.str      "hi"`, `call.dyn       "meth" argc=2`,
		"load           3", "newarray.multi 0 argc=2", "add", "func Main.main"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestInternTypeDeduplicates(t *testing.T) {
	p := &Program{}
	i1 := p.InternType(types.ArrayOf(types.Int))
	i2 := p.InternType(types.ArrayOf(types.Int))
	i3 := p.InternType(types.ArrayOf(types.Bool))
	if i1 != i2 {
		t.Error("identical types must intern to the same index")
	}
	if i1 == i3 {
		t.Error("distinct types must not collide")
	}
}

func TestOpStringUnknown(t *testing.T) {
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q", got)
	}
}
