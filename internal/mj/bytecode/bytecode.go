// Package bytecode defines the instruction set the MJ compiler targets and
// the interpreter executes. It mirrors the JVM instructions the AlgoProf
// paper instruments (GETFIELD/PUTFIELD, *ALOAD/*ASTORE, NEW, calls,
// branches) plus the explicit loop probes the instrumentation rewriter
// injects (LoopEnter/LoopBack/LoopExit).
//
// Instructions are unpacked structs rather than encoded bytes: the
// interpreter indexes a []Instr slice directly, and the rewriter can insert
// probes by rebuilding the slice with a target-index remap.
package bytecode

import (
	"fmt"
	"strings"

	"algoprof/internal/mj/types"
)

// Op is an opcode.
type Op uint8

// Opcodes.
const (
	// Constants and stack.
	OpConstInt  Op = iota // push A as int
	OpConstBool           // push A != 0 as boolean
	OpConstStr            // push S
	OpConstNull           // push null
	OpPop                 // drop top
	OpDup                 // duplicate top

	// Locals.
	OpLoadLocal  // push locals[A]
	OpStoreLocal // locals[A] = pop

	// Objects and fields.
	OpNewObject   // push new instance of class id A
	OpGetField    // obj = pop; push obj.fields[field A]
	OpPutField    // val = pop; obj = pop; obj.fields[field A] = val
	OpGetFieldDyn // dynamic by name S (erased receivers)
	OpPutFieldDyn // dynamic by name S

	// Arrays. A indexes the program's type pool with the array's full type.
	OpNewArray      // len = pop; push new array
	OpNewArrayMulti // lens (B of them) on stack; push nested arrays
	OpALoad         // idx = pop; arr = pop; push arr[idx]
	OpAStore        // val = pop; idx = pop; arr = pop; arr[idx] = val
	OpArrayLen      // arr = pop; push length
	OpStrLen        // str = pop; push length

	// Arithmetic and logic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg
	OpConcat // string +
	OpNot
	OpCmpEq // generic equality (ints, bools, refs by identity, strings by value)
	OpCmpNe
	OpCmpLt
	OpCmpGt
	OpCmpLe
	OpCmpGe

	// Control flow. A is an instruction index in the same function.
	OpJmp
	OpJmpIfFalse
	OpJmpIfTrue

	// Calls. A is a method id; for OpCallVirt the actual target is resolved
	// from the receiver's dynamic class (overriding); S is the method name
	// for dynamic calls. B is the argument count for dynamic calls.
	OpCallStatic
	OpCallVirt
	OpCallDyn
	OpCallBuiltin // A is the builtin id, B the arg count
	OpRet         // return void
	OpRetVal      // return top of stack

	// Exceptions. OpThrow pops an object and unwinds to the innermost
	// matching handler (in this or a calling frame).
	OpThrow

	// Traps.
	OpMissingReturn // reached the end of a value-returning method

	// Profiling probes (inserted by the instrumentation rewriter; the
	// compiler never emits them). A is the loop id.
	OpLoopEnter
	OpLoopBack
	OpLoopExit

	// Path-counter probes (paths mode). A counted loop tracks a path
	// register instead of streaming per-iteration events; one counter bump
	// per finished Ball–Larus path replaces the loop-back probe and every
	// per-access probe of the iteration.
	OpPathEnter    // enter counted loop: A = loop id, B = number of paths
	OpPathExit     // leave counted loop via an exit edge: A = loop id, B = final increment
	OpPathInc      // path register += A
	OpPathBump     // finish an iteration: count path (register + B), reset, jump to A
	OpJmpTruePath  // fused jmp.true + path.inc B on the taken edge
	OpJmpFalsePath // fused jmp.false + path.inc B on the taken edge

	// Threads. OpSpawn starts method id A on a new VM thread: the receiver
	// (B != 0 for instance dispatch) and arguments are popped from the
	// spawning thread's stack, and an int thread handle is pushed. OpJoin
	// pops a handle and blocks until that thread terminates.
	OpSpawn
	OpJoin
)

var opNames = [...]string{
	OpConstInt: "const.int", OpConstBool: "const.bool", OpConstStr: "const.str",
	OpConstNull: "const.null", OpPop: "pop", OpDup: "dup",
	OpLoadLocal: "load", OpStoreLocal: "store",
	OpNewObject: "new", OpGetField: "getfield", OpPutField: "putfield",
	OpGetFieldDyn: "getfield.dyn", OpPutFieldDyn: "putfield.dyn",
	OpNewArray: "newarray", OpNewArrayMulti: "newarray.multi",
	OpALoad: "aload", OpAStore: "astore", OpArrayLen: "arraylen", OpStrLen: "strlen",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpNeg: "neg", OpConcat: "concat", OpNot: "not",
	OpCmpEq: "cmp.eq", OpCmpNe: "cmp.ne", OpCmpLt: "cmp.lt", OpCmpGt: "cmp.gt",
	OpCmpLe: "cmp.le", OpCmpGe: "cmp.ge",
	OpJmp: "jmp", OpJmpIfFalse: "jmp.false", OpJmpIfTrue: "jmp.true",
	OpCallStatic: "call.static", OpCallVirt: "call.virt", OpCallDyn: "call.dyn",
	OpCallBuiltin: "call.builtin", OpRet: "ret", OpRetVal: "ret.val",
	OpThrow:         "throw",
	OpMissingReturn: "trap.noreturn",
	OpLoopEnter:     "loop.enter", OpLoopBack: "loop.back", OpLoopExit: "loop.exit",
	OpPathEnter: "path.enter", OpPathExit: "path.exit", OpPathInc: "path.inc",
	OpPathBump: "path.bump", OpJmpTruePath: "jmp.true.path", OpJmpFalsePath: "jmp.false.path",
	OpSpawn: "spawn", OpJoin: "join",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsJump reports whether the instruction transfers control to operand A.
func (o Op) IsJump() bool {
	return o == OpJmp || o == OpJmpIfFalse || o == OpJmpIfTrue ||
		o == OpJmpTruePath || o == OpJmpFalsePath || o == OpPathBump
}

// IsTerminator reports whether control never falls through this opcode.
func (o Op) IsTerminator() bool {
	return o == OpJmp || o == OpRet || o == OpRetVal || o == OpMissingReturn ||
		o == OpThrow || o == OpPathBump
}

// IsProbe reports whether the instruction is a profiling probe.
func (o Op) IsProbe() bool {
	switch o {
	case OpLoopEnter, OpLoopBack, OpLoopExit,
		OpPathEnter, OpPathExit, OpPathInc, OpPathBump, OpJmpTruePath, OpJmpFalsePath:
		return true
	}
	return false
}

// Instr is one instruction.
type Instr struct {
	Op Op
	A  int    // primary operand: constant, slot, id, jump target, type-pool index
	B  int    // secondary operand: arg/dim count
	S  string // string operand: literal or dynamic member name
	// Line is the 1-based source line the instruction was compiled from
	// (0 when synthetic).
	Line int
}

// String renders the instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpConstStr, OpGetFieldDyn, OpPutFieldDyn:
		return fmt.Sprintf("%-14s %q", in.Op, in.S)
	case OpCallDyn:
		return fmt.Sprintf("%-14s %q argc=%d", in.Op, in.S, in.B)
	case OpConstInt, OpConstBool, OpLoadLocal, OpStoreLocal, OpNewObject,
		OpGetField, OpPutField, OpNewArray, OpJmp, OpJmpIfFalse, OpJmpIfTrue,
		OpCallStatic, OpCallVirt, OpLoopEnter, OpLoopBack, OpLoopExit,
		OpPathInc:
		return fmt.Sprintf("%-14s %d", in.Op, in.A)
	case OpNewArrayMulti, OpCallBuiltin:
		return fmt.Sprintf("%-14s %d argc=%d", in.Op, in.A, in.B)
	case OpPathEnter, OpPathExit, OpPathBump, OpJmpTruePath, OpJmpFalsePath, OpSpawn:
		return fmt.Sprintf("%-14s %d %d", in.Op, in.A, in.B)
	}
	return in.Op.String()
}

// Handler is one entry of a function's exception handler table: an
// exception of class ClassID (or a subclass) thrown while pc is in
// [From, To) transfers control to Target, with the exception object
// stored into local Slot. Handlers are searched in order; the compiler
// records inner handlers before outer ones.
type Handler struct {
	From, To int
	Target   int
	ClassID  int
	Slot     int
	// LoopScope lists the ids of loops statically enclosing Target
	// (outermost first); filled by the instrumenter so the VM can emit
	// LoopExit events for loops abandoned by the unwind.
	LoopScope []int
}

// Function is the compiled body of one MJ method.
type Function struct {
	Method    *types.Method
	Code      []Instr
	NumLocals int
	Handlers  []Handler
}

// Name returns the qualified method name.
func (f *Function) Name() string { return f.Method.QualifiedName() }

// Program is a compiled MJ program.
type Program struct {
	Sem      *types.Program
	Funcs    []*Function   // indexed by method id
	TypePool []*types.Type // referenced by array instructions
	MainID   int
}

// FuncByID returns the function for a method id.
func (p *Program) FuncByID(id int) *Function { return p.Funcs[id] }

// Main returns the entry function.
func (p *Program) Main() *Function { return p.Funcs[p.MainID] }

// InternType adds t to the type pool (deduplicated by string form) and
// returns its index.
func (p *Program) InternType(t *types.Type) int {
	s := t.String()
	for i, u := range p.TypePool {
		if u.String() == s {
			return i
		}
	}
	p.TypePool = append(p.TypePool, t)
	return len(p.TypePool) - 1
}

// Disassemble renders fn as text for debugging and golden tests.
func Disassemble(fn *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (locals=%d)\n", fn.Name(), fn.NumLocals)
	for i, in := range fn.Code {
		fmt.Fprintf(&sb, "  %4d: %s\n", i, in)
	}
	return sb.String()
}

// DisassembleProgram renders every function.
func DisassembleProgram(p *Program) string {
	var sb strings.Builder
	for _, fn := range p.Funcs {
		sb.WriteString(Disassemble(fn))
	}
	return sb.String()
}

// Validate performs basic structural checks: jump targets in range and code
// non-empty with a terminator at the end. The compiler and the rewriter both
// run it in tests.
func Validate(fn *Function) error {
	n := len(fn.Code)
	if n == 0 {
		return fmt.Errorf("%s: empty code", fn.Name())
	}
	for i, in := range fn.Code {
		if in.Op.IsJump() && (in.A < 0 || in.A >= n) {
			return fmt.Errorf("%s: instr %d jumps out of range (%d)", fn.Name(), i, in.A)
		}
	}
	last := fn.Code[n-1].Op
	if !last.IsTerminator() {
		return fmt.Errorf("%s: function does not end in terminator (%s)", fn.Name(), last)
	}
	for i, h := range fn.Handlers {
		if h.From < 0 || h.To > n || h.From >= h.To || h.Target < 0 || h.Target >= n {
			return fmt.Errorf("%s: handler %d has bad range [%d,%d)->%d", fn.Name(), i, h.From, h.To, h.Target)
		}
	}
	return nil
}
