package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"algoprof/internal/mj/token"
)

func kinds(toks []token.Token) []token.Kind {
	ks := make([]token.Kind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestScanSimpleTokens(t *testing.T) {
	toks, errs := ScanAll("class Foo { int x; }")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{
		token.KwClass, token.IDENT, token.LBrace,
		token.KwInt, token.IDENT, token.Semi,
		token.RBrace, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.Plus, "-": token.Minus, "*": token.Star, "/": token.Slash,
		"%": token.Percent, "=": token.Assign, "==": token.Eq, "!=": token.Neq,
		"<": token.Lt, ">": token.Gt, "<=": token.Le, ">=": token.Ge,
		"&&": token.AndAnd, "||": token.OrOr, "!": token.Not,
		"++": token.PlusPlus, "--": token.MinusMinus,
		"(": token.LParen, ")": token.RParen, "{": token.LBrace, "}": token.RBrace,
		"[": token.LBracket, "]": token.RBracket, ",": token.Comma, ";": token.Semi,
		".": token.Dot,
	}
	for src, want := range cases {
		toks, errs := ScanAll(src)
		if len(errs) != 0 {
			t.Errorf("%q: unexpected errors %v", src, errs)
			continue
		}
		if len(toks) != 2 || toks[0].Kind != want {
			t.Errorf("%q: got %v, want [%v EOF]", src, kinds(toks), want)
		}
	}
}

func TestScanKeywordsVsIdents(t *testing.T) {
	toks, _ := ScanAll("while whiles forx for")
	want := []token.Kind{token.KwWhile, token.IDENT, token.IDENT, token.KwFor, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestScanIntLiteral(t *testing.T) {
	toks, _ := ScanAll("12345 0 007")
	if toks[0].Text != "12345" || toks[1].Text != "0" || toks[2].Text != "007" {
		t.Errorf("unexpected literal texts: %v", toks)
	}
	for i := 0; i < 3; i++ {
		if toks[i].Kind != token.INT {
			t.Errorf("token %d is %v, want INT", i, toks[i].Kind)
		}
	}
}

func TestScanStringLiteral(t *testing.T) {
	toks, errs := ScanAll(`"hello" "a\nb" "q\"q"`)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if toks[0].Text != "hello" {
		t.Errorf("got %q", toks[0].Text)
	}
	if toks[1].Text != "a\nb" {
		t.Errorf("got %q", toks[1].Text)
	}
	if toks[2].Text != `q"q` {
		t.Errorf("got %q", toks[2].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := ScanAll(`"oops`)
	if len(errs) == 0 {
		t.Fatal("want error for unterminated string")
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
class /* block
comment */ A { }
`
	toks, errs := ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []token.Kind{token.KwClass, token.IDENT, token.LBrace, token.RBrace, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	_, errs := ScanAll("/* never ends")
	if len(errs) == 0 {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestIllegalChar(t *testing.T) {
	toks, errs := ScanAll("a # b")
	if len(errs) == 0 {
		t.Fatal("want error for illegal character")
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found {
		t.Error("no ILLEGAL token emitted")
	}
}

// Property: scanning any sequence of valid identifiers separated by spaces
// yields exactly that many IDENT/keyword tokens plus EOF, and never errors.
func TestScanIdentsProperty(t *testing.T) {
	f := func(words []string) bool {
		var clean []string
		for _, w := range words {
			var sb strings.Builder
			for _, r := range w {
				if r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
					sb.WriteRune(r)
				}
			}
			if sb.Len() > 0 {
				clean = append(clean, sb.String())
			}
		}
		src := strings.Join(clean, " ")
		toks, errs := ScanAll(src)
		if len(errs) != 0 {
			return false
		}
		return len(toks) == len(clean)+1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: token positions are monotonically non-decreasing.
func TestPositionsMonotonicProperty(t *testing.T) {
	f := func(src string) bool {
		toks, _ := ScanAll(src)
		prev := token.Pos{Line: 0, Col: 0}
		for _, tk := range toks {
			if tk.Kind == token.EOF {
				break
			}
			if tk.Pos.Line < prev.Line ||
				(tk.Pos.Line == prev.Line && tk.Pos.Col < prev.Col) {
				return false
			}
			prev = tk.Pos
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
