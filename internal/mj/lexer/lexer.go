// Package lexer turns MJ source text into a token stream.
//
// The lexer is a straightforward hand-written scanner: it tracks line/column
// positions, skips line and block comments, and reports unknown characters
// as ILLEGAL tokens rather than failing, so the parser can produce good
// error messages.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"algoprof/internal/mj/token"
)

// Lexer scans MJ source code.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int

	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns all lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

// ScanAll tokenizes the entire input, appending a final EOF token.
func ScanAll(src string) ([]token.Token, []error) {
	l := New(src)
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, l.errs
		}
	}
}

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *Lexer) peek2() rune {
	if l.off >= len(l.src) {
		return 0
	}
	_, w := utf8.DecodeRuneInString(l.src[l.off:])
	if l.off+w >= len(l.src) {
		return 0
	}
	r2, _ := utf8.DecodeRuneInString(l.src[l.off+w:])
	return r2
}

func (l *Lexer) advance() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipWhitespaceAndComments() {
	for {
		switch r := l.peek(); {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipWhitespaceAndComments()
	pos := l.pos()
	r := l.peek()
	if r == 0 {
		return token.Token{Kind: token.EOF, Pos: pos}
	}

	switch {
	case isIdentStart(r):
		var sb strings.Builder
		for isIdentCont(l.peek()) {
			sb.WriteRune(l.advance())
		}
		text := sb.String()
		if kw, ok := token.Keywords[text]; ok {
			return token.Token{Kind: kw, Text: text, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Text: text, Pos: pos}

	case unicode.IsDigit(r):
		var sb strings.Builder
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return token.Token{Kind: token.INT, Text: sb.String(), Pos: pos}

	case r == '"':
		l.advance()
		var sb strings.Builder
		for {
			c := l.peek()
			if c == 0 || c == '\n' {
				l.errorf(pos, "unterminated string literal")
				return token.Token{Kind: token.ILLEGAL, Text: sb.String(), Pos: pos}
			}
			if c == '"' {
				l.advance()
				break
			}
			if c == '\\' {
				l.advance()
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					l.errorf(pos, "unknown escape sequence \\%c", esc)
				}
				continue
			}
			sb.WriteRune(l.advance())
		}
		return token.Token{Kind: token.STRING, Text: sb.String(), Pos: pos}
	}

	// Operators and delimiters.
	l.advance()
	two := func(second rune, pair, single token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: pair, Text: pair.String(), Pos: pos}
		}
		return token.Token{Kind: single, Text: single.String(), Pos: pos}
	}

	switch r {
	case '+':
		return two('+', token.PlusPlus, token.Plus)
	case '-':
		return two('-', token.MinusMinus, token.Minus)
	case '*':
		return token.Token{Kind: token.Star, Text: "*", Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Text: "/", Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Text: "%", Pos: pos}
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.Neq, token.Not)
	case '<':
		return two('=', token.Le, token.Lt)
	case '>':
		return two('=', token.Ge, token.Gt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.AndAnd, Text: "&&", Pos: pos}
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OrOr, Text: "||", Pos: pos}
		}
	case '(':
		return token.Token{Kind: token.LParen, Text: "(", Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Text: ")", Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Text: "{", Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Text: "}", Pos: pos}
	case '[':
		return token.Token{Kind: token.LBracket, Text: "[", Pos: pos}
	case ']':
		return token.Token{Kind: token.RBracket, Text: "]", Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Text: ",", Pos: pos}
	case ';':
		return token.Token{Kind: token.Semi, Text: ";", Pos: pos}
	case '.':
		return token.Token{Kind: token.Dot, Text: ".", Pos: pos}
	case '?':
		return token.Token{Kind: token.Question, Text: "?", Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Text: ":", Pos: pos}
	}

	l.errorf(pos, "unexpected character %q", r)
	return token.Token{Kind: token.ILLEGAL, Text: string(r), Pos: pos}
}
