// Package ast defines the abstract syntax tree for MJ programs.
//
// The tree is deliberately close to the Java subset used by the AlgoProf
// paper's listings: classes with fields, methods and constructors, single
// inheritance, erasure generics, arrays, structured control flow, and the
// usual expression forms.
package ast

import (
	"strings"

	"algoprof/internal/mj/token"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Types

// TypeExpr is a syntactic type: a named base type with optional generic
// arguments (which MJ erases) and array dimensions.
type TypeExpr struct {
	TokPos token.Pos
	Name   string      // "int", "boolean", "String", "void", class or type-param name
	Args   []*TypeExpr // generic arguments, erased after parsing
	Dims   int         // number of array dimensions ([] pairs)
}

func (t *TypeExpr) Pos() token.Pos { return t.TokPos }

// String renders the type as source-like text.
func (t *TypeExpr) String() string {
	var sb strings.Builder
	sb.WriteString(t.Name)
	if len(t.Args) > 0 {
		sb.WriteByte('<')
		for i, a := range t.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(a.String())
		}
		sb.WriteByte('>')
	}
	for i := 0; i < t.Dims; i++ {
		sb.WriteString("[]")
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Declarations

// Program is a whole MJ compilation unit.
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl declares a class.
type ClassDecl struct {
	TokPos     token.Pos
	Name       string
	TypeParams []string  // erasure generics: names only
	Extends    *TypeExpr // nil if none
	Fields     []*FieldDecl
	Methods    []*MethodDecl
}

func (c *ClassDecl) Pos() token.Pos { return c.TokPos }

// FieldDecl declares an instance field.
type FieldDecl struct {
	TokPos token.Pos
	Name   string
	Type   *TypeExpr
}

func (f *FieldDecl) Pos() token.Pos { return f.TokPos }

// Param is a formal method parameter.
type Param struct {
	TokPos token.Pos
	Name   string
	Type   *TypeExpr
}

func (p *Param) Pos() token.Pos { return p.TokPos }

// MethodDecl declares a method or constructor. A constructor has
// IsConstructor set and a nil Ret.
type MethodDecl struct {
	TokPos        token.Pos
	Name          string
	Static        bool
	IsConstructor bool
	Params        []*Param
	Ret           *TypeExpr // nil means void (or constructor)
	Body          *Block
}

func (m *MethodDecl) Pos() token.Pos { return m.TokPos }

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Block is a `{ ... }` statement list.
type Block struct {
	TokPos token.Pos
	Stmts  []Stmt
}

// VarDecl declares a local variable, optionally with an initializer.
// Type is nil for `var x = init;` declarations (type inferred).
type VarDecl struct {
	TokPos token.Pos
	Name   string
	Type   *TypeExpr // nil => inferred
	Init   Expr      // may be nil (defaults to zero value)
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	TokPos token.Pos
	X      Expr
}

// AssignStmt assigns Value to the lvalue Target (identifier, field access,
// or array index).
type AssignStmt struct {
	TokPos token.Pos
	Target Expr
	Value  Expr
}

// IncDecStmt is `x++` or `x--` used as a statement.
type IncDecStmt struct {
	TokPos token.Pos
	Target Expr
	Inc    bool // true for ++, false for --
}

// If is an if/else statement.
type If struct {
	TokPos token.Pos
	Cond   Expr
	Then   Stmt
	Else   Stmt // may be nil
}

// While is a while loop.
type While struct {
	TokPos token.Pos
	Cond   Expr
	Body   Stmt
}

// For is a C-style for loop. Init and Post may be nil; Cond may be nil
// (treated as true).
type For struct {
	TokPos token.Pos
	Init   Stmt // VarDecl, AssignStmt, IncDecStmt or ExprStmt
	Cond   Expr
	Post   Stmt
	Body   Stmt
}

// Return returns from the enclosing method; Value may be nil.
type Return struct {
	TokPos token.Pos
	Value  Expr
}

// SuperCall chains to the superclass constructor: `super(args);` as the
// first statement of a constructor.
type SuperCall struct {
	TokPos token.Pos
	Args   []Expr
}

// Throw raises an exception object.
type Throw struct {
	TokPos token.Pos
	Value  Expr
}

// TryCatch guards Body with a single typed handler.
type TryCatch struct {
	TokPos    token.Pos
	Body      *Block
	CatchType *TypeExpr
	CatchName string
	Handler   *Block
}

// Join blocks until the thread named by Handle (an int thread id returned
// by spawn) terminates: `join h;`.
type Join struct {
	TokPos token.Pos
	Handle Expr
}

// Break exits the innermost loop.
type Break struct{ TokPos token.Pos }

// Continue jumps to the next iteration of the innermost loop.
type Continue struct{ TokPos token.Pos }

func (b *Block) Pos() token.Pos      { return b.TokPos }
func (v *VarDecl) Pos() token.Pos    { return v.TokPos }
func (e *ExprStmt) Pos() token.Pos   { return e.TokPos }
func (a *AssignStmt) Pos() token.Pos { return a.TokPos }
func (i *IncDecStmt) Pos() token.Pos { return i.TokPos }
func (i *If) Pos() token.Pos         { return i.TokPos }
func (w *While) Pos() token.Pos      { return w.TokPos }
func (f *For) Pos() token.Pos        { return f.TokPos }
func (r *Return) Pos() token.Pos     { return r.TokPos }
func (s *SuperCall) Pos() token.Pos  { return s.TokPos }
func (t *Throw) Pos() token.Pos      { return t.TokPos }
func (t *TryCatch) Pos() token.Pos   { return t.TokPos }
func (j *Join) Pos() token.Pos       { return j.TokPos }
func (b *Break) Pos() token.Pos      { return b.TokPos }
func (c *Continue) Pos() token.Pos   { return c.TokPos }

func (*Block) stmt()      {}
func (*VarDecl) stmt()    {}
func (*ExprStmt) stmt()   {}
func (*AssignStmt) stmt() {}
func (*IncDecStmt) stmt() {}
func (*If) stmt()         {}
func (*While) stmt()      {}
func (*For) stmt()        {}
func (*Return) stmt()     {}
func (*SuperCall) stmt()  {}
func (*Throw) stmt()      {}
func (*TryCatch) stmt()   {}
func (*Join) stmt()       {}
func (*Break) stmt()      {}
func (*Continue) stmt()   {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	TokPos token.Pos
	Value  int64
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	TokPos token.Pos
	Value  bool
}

// StringLit is a string literal.
type StringLit struct {
	TokPos token.Pos
	Value  string
}

// NullLit is `null`.
type NullLit struct{ TokPos token.Pos }

// This is `this`.
type This struct{ TokPos token.Pos }

// Ident names a local variable, parameter, field of `this`, or (as a call
// receiver) a class.
type Ident struct {
	TokPos token.Pos
	Name   string
}

// FieldAccess is `X.Name` (including `arr.length`).
type FieldAccess struct {
	TokPos token.Pos
	X      Expr
	Name   string
}

// Index is `X[Idx]`.
type Index struct {
	TokPos token.Pos
	X      Expr
	Idx    Expr
}

// Call invokes a method. Recv is nil for unqualified calls (current class
// or builtin); an *Ident receiver may name a class (static call) or a
// variable (instance call) — the resolver decides.
type Call struct {
	TokPos token.Pos
	Recv   Expr // may be nil
	Name   string
	Args   []Expr
}

// Spawn runs Call on a new thread: `spawn f(x)` or `spawn obj.m(x)`.
// It evaluates the receiver and arguments on the spawning thread, then
// starts the call concurrently and yields an int thread handle for join.
type Spawn struct {
	TokPos token.Pos
	Call   *Call
}

// New allocates an object: `new T(args)`.
type New struct {
	TokPos token.Pos
	Type   *TypeExpr
	Args   []Expr
}

// NewArray allocates an array: `new T[len0][len1]...[]...`. Lens holds the
// sized dimensions; ExtraDims counts trailing unsized `[]` pairs.
type NewArray struct {
	TokPos    token.Pos
	Elem      *TypeExpr // element base type (no dims)
	Lens      []Expr
	ExtraDims int
}

// BinOp is a binary operator kind.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	EqEq
	NotEq
	Less
	Greater
	LessEq
	GreaterEq
	LAnd // short-circuit &&
	LOr  // short-circuit ||
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", ">", "<=", ">=", "&&", "||"}

// String renders the operator symbol.
func (op BinOp) String() string { return binOpNames[op] }

// Binary applies a binary operator.
type Binary struct {
	TokPos token.Pos
	Op     BinOp
	L, R   Expr
}

// UnOp is a unary operator kind.
type UnOp int

// Unary operators.
const (
	Neg  UnOp = iota // -x
	LNot             // !x
)

// Unary applies a unary operator.
type Unary struct {
	TokPos token.Pos
	Op     UnOp
	X      Expr
}

func (e *IntLit) Pos() token.Pos      { return e.TokPos }
func (e *BoolLit) Pos() token.Pos     { return e.TokPos }
func (e *StringLit) Pos() token.Pos   { return e.TokPos }
func (e *NullLit) Pos() token.Pos     { return e.TokPos }
func (e *This) Pos() token.Pos        { return e.TokPos }
func (e *Ident) Pos() token.Pos       { return e.TokPos }
func (e *FieldAccess) Pos() token.Pos { return e.TokPos }
func (e *Index) Pos() token.Pos       { return e.TokPos }
func (e *Call) Pos() token.Pos        { return e.TokPos }
func (e *Spawn) Pos() token.Pos       { return e.TokPos }
func (e *New) Pos() token.Pos         { return e.TokPos }
func (e *NewArray) Pos() token.Pos    { return e.TokPos }
func (e *Binary) Pos() token.Pos      { return e.TokPos }
func (e *Unary) Pos() token.Pos       { return e.TokPos }

func (*IntLit) expr()      {}
func (*BoolLit) expr()     {}
func (*StringLit) expr()   {}
func (*NullLit) expr()     {}
func (*This) expr()        {}
func (*Ident) expr()       {}
func (*FieldAccess) expr() {}
func (*Index) expr()       {}
func (*Call) expr()        {}
func (*Spawn) expr()       {}
func (*New) expr()         {}
func (*NewArray) expr()    {}
func (*Binary) expr()      {}
func (*Unary) expr()       {}
