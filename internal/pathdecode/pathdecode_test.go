package pathdecode

import (
	"reflect"
	"testing"
)

// twoSiteTable models a loop with an if/else body: path 0 takes the then
// branch (sites 0 and 1) back around, path 1 takes the else branch (site 0
// only) back around, path 2 exits from the header untouched.
func twoSiteTable() *LoopTable {
	return &LoopTable{
		LoopID:   7,
		NumPaths: 3,
		Sites: []Site{
			{ID: 4, Kind: SiteFieldGet, Field: 2},
			{ID: 5, Kind: SiteFieldPut, Field: 3},
		},
		Paths: []Path{
			{Back: true, Sites: []int32{0, 1}},
			{Back: true, Sites: []int32{0}},
			{},
		},
	}
}

func TestDecode(t *testing.T) {
	tbl := twoSiteTable()
	got, err := Decode(tbl, []int64{10, 5, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Totals{Iterations: 15, SiteCounts: []int64{15, 10}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Decode = %+v, want %+v", got, want)
	}
}

func TestDecodeZeroVector(t *testing.T) {
	tbl := twoSiteTable()
	got, err := Decode(tbl, []int64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != 0 || got.SiteCounts[0] != 0 || got.SiteCounts[1] != 0 {
		t.Fatalf("zero vector decoded to %+v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	tbl := twoSiteTable()
	if _, err := Decode(tbl, []int64{1, 2}); err == nil {
		t.Error("short counter vector accepted")
	}
	if _, err := Decode(tbl, []int64{1, -2, 0}); err == nil {
		t.Error("negative count accepted")
	}

	bad := twoSiteTable()
	bad.Paths[0].Sites = []int32{0, 9}
	if _, err := Decode(bad, []int64{1, 0, 0}); err == nil {
		t.Error("out-of-range site index accepted")
	}

	rep := twoSiteTable()
	rep.Paths[0].Sites = []int32{0, 0}
	if _, err := Decode(rep, []int64{1, 0, 0}); err == nil {
		t.Error("repeated site on acyclic path accepted")
	}

	mism := twoSiteTable()
	mism.NumPaths = 4
	if _, err := Decode(mism, []int64{1, 0, 0, 0}); err == nil {
		t.Error("num_paths / path-list mismatch accepted")
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	tbl := twoSiteTable()
	counts := []int64{3, 0, 1}
	data, err := EncodeCorpusEntry(tbl, counts)
	if err != nil {
		t.Fatal(err)
	}
	gotT, gotC, err := DecodeCorpusEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotT, tbl) || !reflect.DeepEqual(gotC, counts) {
		t.Fatalf("round trip changed entry: %+v %v", gotT, gotC)
	}
}
