package pathdecode

import (
	"os"
	"path/filepath"
	"testing"
)

// corpusSeeds loads the checked-in seed corpus: JSON (table, counts)
// entries exercising empty tables, exit-only loops, branchy loops, and
// malformed shapes the decoder must refuse.
func corpusSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	dir := filepath.Join("testdata", "corpus")
	entries, err := os.ReadDir(dir)
	if err != nil {
		tb.Fatal(err)
	}
	seeds := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			tb.Fatal(err)
		}
		seeds[e.Name()] = data
	}
	if len(seeds) == 0 {
		tb.Fatal("empty seed corpus")
	}
	return seeds
}

// decodeArbitrary is the fuzz property: arbitrary bytes either fail to
// parse, fail validation, or decode deterministically with conserved
// totals. It must never panic.
func decodeArbitrary(tb testing.TB, data []byte) {
	tbl, counts, err := DecodeCorpusEntry(data)
	if err != nil {
		return
	}
	got, err := Decode(tbl, counts)
	if err != nil {
		return
	}
	again, err := Decode(tbl, counts)
	if err != nil {
		tb.Fatalf("second decode errored after first succeeded: %v", err)
	}
	if got.Iterations != again.Iterations || len(got.SiteCounts) != len(again.SiteCounts) {
		tb.Fatalf("nondeterministic decode: %+v vs %+v", got, again)
	}
	// Conservation: iterations are exactly the back-terminating counts, and
	// no site can be counted more often than the total path executions.
	var backs, total int64
	for pid, c := range counts {
		total += c
		if tbl.Paths[pid].Back {
			backs += c
		}
	}
	if got.Iterations != backs {
		tb.Fatalf("iterations %d != back-path counts %d", got.Iterations, backs)
	}
	for i, sc := range got.SiteCounts {
		if sc < 0 || sc > total {
			tb.Fatalf("site %d count %d outside [0, %d]", i, sc, total)
		}
	}
}

// TestFuzzCorpusDecode runs the seed corpus as plain fixtures so `go test`
// covers it without the fuzz engine.
func TestFuzzCorpusDecode(t *testing.T) {
	for name, data := range corpusSeeds(t) {
		t.Run(name, func(t *testing.T) { decodeArbitrary(t, data) })
	}
}

// FuzzDecode fuzzes the decoder over arbitrary corpus-entry bytes.
func FuzzDecode(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) { decodeArbitrary(t, data) })
}
