// Package pathdecode turns per-path execution counters back into the
// per-event quantities the algorithmic profiler consumes. In paths mode
// the instrumenter numbers the whole-iteration paths of each counted loop
// (Ball–Larus acyclic-path numbering extended across loop back edges, as
// in D'Elia & Demetrescu's multi-iteration path profiling) and the VM
// increments one counter per finished path instead of emitting one event
// per back edge and per data access. This package holds the path tables
// the instrumenter builds — which access sites lie on which path, and
// whether a path ends on the back edge or on a loop exit — and the decode
// step that recovers iteration counts and per-site access counts from a
// counter vector.
//
// Decoding is exact by construction for the quantities it covers: every
// iteration of a counted loop executes exactly one whole-iteration path,
// and a given access site appears at most once on any acyclic path, so
//
//	iterations  = Σ counts[p] over back-terminating paths p
//	accesses(s) = Σ counts[p] over paths p containing site s
//
// recover precisely the event counts an exact events-mode run would have
// delivered. What path counters cannot carry is per-event identity — which
// concrete object a site touched — which is why the VM still streams one
// identification event per site and segment (see events.PathListener).
package pathdecode

import (
	"encoding/json"
	"fmt"
)

// SiteKind classifies the bytecode access instruction behind a site.
type SiteKind uint8

// Site kinds.
const (
	SiteFieldGet SiteKind = iota
	SiteFieldPut
	SiteArrayLoad
	SiteArrayStore
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case SiteFieldGet:
		return "getfield"
	case SiteFieldPut:
		return "putfield"
	case SiteArrayLoad:
		return "aload"
	case SiteArrayStore:
		return "astore"
	}
	return fmt.Sprintf("site(%d)", uint8(k))
}

// IsPut reports whether the site writes the structure.
func (k SiteKind) IsPut() bool { return k == SiteFieldPut || k == SiteArrayStore }

// IsArray reports whether the site is an array access.
func (k SiteKind) IsArray() bool { return k == SiteArrayLoad || k == SiteArrayStore }

// Site is one counted data-access instruction inside a counted loop.
type Site struct {
	// ID is the program-wide dense site id the instrumenter assigned (the
	// VM carries it in the instruction's B operand, offset by one).
	ID int `json:"id"`
	// Kind is the access kind.
	Kind SiteKind `json:"kind"`
	// Field is the field id for field sites, -1 for array sites.
	Field int `json:"field"`
}

// Path is one whole-iteration path of a counted loop: the header-to-sink
// walk the Ball–Larus numbering assigned this path id.
type Path struct {
	// Back reports a path ending on the loop's back edge — one finished
	// iteration. Paths with Back false end on a loop exit.
	Back bool `json:"back,omitempty"`
	// Sites indexes LoopTable.Sites, in path order. A site occurs at most
	// once per acyclic path.
	Sites []int32 `json:"sites,omitempty"`
}

// LoopTable is the decode table of one counted loop: everything needed to
// turn that loop's counter vector back into events.
type LoopTable struct {
	// LoopID is the instrumenter's loop id.
	LoopID int `json:"loop_id"`
	// NumPaths is the counter-vector length; path ids are [0, NumPaths).
	NumPaths int `json:"num_paths"`
	// Sites lists the loop's access sites in first-static-occurrence order.
	Sites []Site `json:"sites,omitempty"`
	// Paths holds one entry per path id.
	Paths []Path `json:"paths"`
}

// Validate checks the table's internal consistency: the path list matches
// NumPaths and every path's site indexes are in range.
func (t *LoopTable) Validate() error {
	if t.NumPaths != len(t.Paths) {
		return fmt.Errorf("pathdecode: loop %d: %d paths for num_paths %d", t.LoopID, len(t.Paths), t.NumPaths)
	}
	for pid, p := range t.Paths {
		seen := make(map[int32]bool, len(p.Sites))
		for _, s := range p.Sites {
			if s < 0 || int(s) >= len(t.Sites) {
				return fmt.Errorf("pathdecode: loop %d path %d: site index %d out of range [0,%d)",
					t.LoopID, pid, s, len(t.Sites))
			}
			if seen[s] {
				return fmt.Errorf("pathdecode: loop %d path %d: site index %d repeated on acyclic path",
					t.LoopID, pid, s)
			}
			seen[s] = true
		}
	}
	return nil
}

// Totals is the decoded view of one loop invocation's counter vector.
type Totals struct {
	// Iterations is the number of finished iterations (back-edge events an
	// events-mode run would have emitted).
	Iterations int64
	// SiteCounts is the access count per site, parallel to LoopTable.Sites.
	SiteCounts []int64
}

// Decode reconstructs iteration and per-site access counts from one
// invocation's counter vector. counts must have length t.NumPaths with no
// negative entries.
func Decode(t *LoopTable, counts []int64) (Totals, error) {
	if err := t.Validate(); err != nil {
		return Totals{}, err
	}
	if len(counts) != t.NumPaths {
		return Totals{}, fmt.Errorf("pathdecode: loop %d: %d counters for num_paths %d",
			t.LoopID, len(counts), t.NumPaths)
	}
	out := Totals{SiteCounts: make([]int64, len(t.Sites))}
	for pid, c := range counts {
		if c == 0 {
			continue
		}
		if c < 0 {
			return Totals{}, fmt.Errorf("pathdecode: loop %d path %d: negative count %d", t.LoopID, pid, c)
		}
		p := &t.Paths[pid]
		if p.Back {
			out.Iterations += c
		}
		for _, s := range p.Sites {
			out.SiteCounts[s] += c
		}
	}
	return out, nil
}

// corpusEntry is the JSON shape of one fuzz-corpus seed: a table plus a
// counter vector for it.
type corpusEntry struct {
	Table  LoopTable `json:"table"`
	Counts []int64   `json:"counts"`
}

// EncodeCorpusEntry serializes a (table, counts) pair for the decoder's
// fuzz corpus.
func EncodeCorpusEntry(t *LoopTable, counts []int64) ([]byte, error) {
	return json.Marshal(corpusEntry{Table: *t, Counts: counts})
}

// DecodeCorpusEntry parses a fuzz-corpus seed back into a table and a
// counter vector.
func DecodeCorpusEntry(data []byte) (*LoopTable, []int64, error) {
	var e corpusEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, nil, err
	}
	return &e.Table, e.Counts, nil
}
