// Package events defines the event vocabulary that connects execution
// frontends (the MJ virtual machine, or natively instrumented Go code via
// the probe API) to profiling backends (the algorithmic profiler core, the
// calling-context-tree baseline, and the basic-block baseline).
//
// The vocabulary mirrors exactly the probes AlgoProf (PLDI'12, §3.1)
// injects into Java bytecode: loop entry/exit, loop back edges, method
// entry/exit, reference field accesses, array loads/stores, object
// allocations, and external input/output operations.
package events

// Entity is a heap entity — an object or an array — as seen by profiling
// listeners. Listeners use it for identity (input identification via
// snapshot overlap) and for traversal (input size measurement).
type Entity interface {
	// EntityID is a unique, never-reused heap identity.
	EntityID() uint64
	// TypeName is the source-level type ("Node", "int[]", "Vertex[][]").
	TypeName() string
	// ClassID is the class id for objects, -1 for arrays.
	ClassID() int
	// IsArray distinguishes arrays from objects.
	IsArray() bool
	// Capacity is the number of element slots for arrays, 0 for objects.
	Capacity() int
	// ForEachRef visits each non-nil reference successor. For objects,
	// fieldID is the global field id of the reference field; for arrays,
	// fieldID is -1 and targets are the non-nil elements.
	ForEachRef(visit func(fieldID int, target Entity))
	// ForEachElemKey visits array element identity keys for the
	// unique-element-count size strategy: references yield RefKey values,
	// primitives their numeric value, strings their content. Reference
	// arrays skip nil elements; primitive arrays visit every slot.
	ForEachElemKey(visit func(key ElemKey))
}

// RefBatcher is an optional Entity extension for the snapshot hot path:
// AppendRefs appends each non-nil reference successor whose field id
// satisfies keep to dst and returns the extended slice. Implementations
// let a traversal collect a node's successors with one call instead of a
// closure invocation per edge.
type RefBatcher interface {
	AppendRefs(keep func(fieldID int) bool, dst []Entity) []Entity
}

// ElemKey is a comparable identity key for an array element: RefKey,
// int64, or string.
type ElemKey any

// RefKey is the ElemKey of a reference element.
type RefKey uint64

// Listener receives profiling events. Frontends call these methods only
// for program points enabled in the active Plan; loop probes are enabled
// by the bytecode rewriter and always fire when executed.
//
// All int ids are stable per program: loop ids are assigned by the
// instrumenter, method/field/class ids by semantic analysis.
type Listener interface {
	// LoopEntry fires when control enters a loop from outside.
	LoopEntry(loopID int)
	// LoopBack fires on each traversal of a loop back edge.
	LoopBack(loopID int)
	// LoopExit fires when control leaves the loop (including early returns).
	LoopExit(loopID int)

	// MethodEntry/MethodExit fire around calls of instrumented methods.
	MethodEntry(methodID int)
	MethodExit(methodID int)

	// FieldGet/FieldPut fire on reads and writes of instrumented reference
	// fields (fields participating in a recursive type cycle under the
	// optimized plan). newTarget is the entity newly stored by a put, or
	// nil when a non-reference or null was stored.
	FieldGet(obj Entity, fieldID int)
	FieldPut(obj Entity, fieldID int, newTarget Entity)

	// ArrayLoad/ArrayStore fire on array element reads and writes.
	ArrayLoad(arr Entity)
	ArrayStore(arr Entity, newTarget Entity)

	// Alloc fires on allocation of instrumented classes (classes that are
	// part of a recursive type cycle under the optimized plan).
	Alloc(obj Entity, classID int)

	// InputRead / OutputWrite fire on external I/O operations.
	InputRead()
	OutputWrite()
}

// Plan says which dynamic events a frontend must emit. The instrumentation
// planner computes optimized plans using static analysis (recursion
// headers, recursive-type fields); a full plan enables everything.
//
// Loop probes are not part of the plan: they are injected into the
// bytecode by the rewriter and fire whenever executed.
type Plan struct {
	// MethodEntryExit[m] enables entry/exit events for method id m.
	MethodEntryExit []bool
	// FieldAccess[f] enables get/put events for field id f.
	FieldAccess []bool
	// AllocClass[c] enables allocation events for class id c.
	AllocClass []bool
	// Arrays enables array load/store events.
	Arrays bool
	// IO enables input-read and output-write events.
	IO bool
}

// NewFullPlan enables every event for a program shape with the given
// numbers of methods, fields and classes.
func NewFullPlan(numMethods, numFields, numClasses int) *Plan {
	p := &Plan{
		MethodEntryExit: make([]bool, numMethods),
		FieldAccess:     make([]bool, numFields),
		AllocClass:      make([]bool, numClasses),
		Arrays:          true,
		IO:              true,
	}
	for i := range p.MethodEntryExit {
		p.MethodEntryExit[i] = true
	}
	for i := range p.FieldAccess {
		p.FieldAccess[i] = true
	}
	for i := range p.AllocClass {
		p.AllocClass[i] = true
	}
	return p
}

// NewEmptyPlan disables every event (loop probes still fire if the
// bytecode was rewritten).
func NewEmptyPlan(numMethods, numFields, numClasses int) *Plan {
	return &Plan{
		MethodEntryExit: make([]bool, numMethods),
		FieldAccess:     make([]bool, numFields),
		AllocClass:      make([]bool, numClasses),
	}
}

// WantsMethod reports whether method id m is instrumented.
func (p *Plan) WantsMethod(m int) bool {
	return p != nil && m >= 0 && m < len(p.MethodEntryExit) && p.MethodEntryExit[m]
}

// WantsField reports whether field id f is instrumented.
func (p *Plan) WantsField(f int) bool {
	return p != nil && f >= 0 && f < len(p.FieldAccess) && p.FieldAccess[f]
}

// WantsAlloc reports whether allocations of class id c are instrumented.
func (p *Plan) WantsAlloc(c int) bool {
	return p != nil && c >= 0 && c < len(p.AllocClass) && p.AllocClass[c]
}

// ElemMode describes how an array's element slots map to ForEachElemKey
// visits, so a replayed shadow of the array can reproduce the live
// entity's key sequence exactly. Frontends report it at allocation time
// (see Journal); it matters only for trace capture and offline replay.
type ElemMode uint8

// Element modes.
const (
	// ElemModeAuto visits whatever a slot holds — references as RefKey,
	// strings as content, integers as value — and skips never-written
	// slots. This is the probe API's mirror-slice behaviour and the
	// default for entities first seen without an allocation journal.
	ElemModeAuto ElemMode = iota
	// ElemModeRef is a reference-element array (including String[]):
	// reference slots visit as RefKey, string slots as content, and null
	// (or never-written) slots are skipped.
	ElemModeRef
	// ElemModeVal is a primitive-element array (int[], boolean[]): every
	// slot visits its numeric value, with never-written slots visiting 0.
	ElemModeVal
)

// PathListener extends Listener for the path-counter frontend (paths
// mode). Counted loops do not stream per-iteration LoopBack and
// field/array access events; instead the VM keeps one Ball–Larus path
// counter per whole iteration and reports:
//
//   - SiteTouch, once per static access site per repetition segment, the
//     first time the site executes after a repetition boundary. It lets
//     the profiler identify (and size) the accessed input eagerly while
//     the heap still has the shape the access saw. A true return means
//     the site is resolved for this segment and the frontend may suppress
//     further touches until the next boundary; false means resolution is
//     still pending (deferred input identification) and the frontend must
//     keep calling SiteTouch for every execution of the site so the
//     listener sees the access that finally resolves it.
//   - LoopPathCount, at loop exit, once per nonzero path counter. The
//     listener decodes path ids into iteration counts and per-site access
//     counts; this is the single source of costs for counted loops.
//
// A frontend only uses the path methods when its program was instrumented
// in paths mode, so a Listener that does not implement PathListener still
// works for events mode.
type PathListener interface {
	Listener
	// SiteTouch reports the first execution of access site `site` in the
	// current repetition segment, on entity obj.
	SiteTouch(site int, obj Entity) bool
	// LoopPathCount reports that the finished invocation of loop loopID
	// executed path pathID count times.
	LoopPathCount(loopID, pathID int, count int64)
}

// Journal receives heap-shape operations that the Listener vocabulary does
// not carry: every entity birth (including arrays, which have no Alloc
// event under any plan) and array element stores with their index and
// stored value. The trace recorder needs both to maintain an exact shadow
// heap for offline replay; frontends call journal methods unconditionally
// (they are not plan-gated) and only when a journal is configured, so
// non-recording runs pay nothing.
type Journal interface {
	// AllocEntity reports a fresh heap entity. mode describes array
	// element-key semantics (ignored for objects).
	AllocEntity(e Entity, mode ElemMode)
	// ArrayStoreAt reports one array element store: key is the stored
	// value's element identity (int64, string, or nil when a reference or
	// null was stored) and newTarget is the stored entity (nil for
	// primitives, strings, and null).
	ArrayStoreAt(arr Entity, idx int, key ElemKey, newTarget Entity)
}

// NopListener is a Listener that ignores every event. Embed it to
// implement only the events a profiler cares about.
type NopListener struct{}

// LoopEntry implements Listener.
func (NopListener) LoopEntry(int) {}

// LoopBack implements Listener.
func (NopListener) LoopBack(int) {}

// LoopExit implements Listener.
func (NopListener) LoopExit(int) {}

// MethodEntry implements Listener.
func (NopListener) MethodEntry(int) {}

// MethodExit implements Listener.
func (NopListener) MethodExit(int) {}

// FieldGet implements Listener.
func (NopListener) FieldGet(Entity, int) {}

// FieldPut implements Listener.
func (NopListener) FieldPut(Entity, int, Entity) {}

// ArrayLoad implements Listener.
func (NopListener) ArrayLoad(Entity) {}

// ArrayStore implements Listener.
func (NopListener) ArrayStore(Entity, Entity) {}

// Alloc implements Listener.
func (NopListener) Alloc(Entity, int) {}

// InputRead implements Listener.
func (NopListener) InputRead() {}

// OutputWrite implements Listener.
func (NopListener) OutputWrite() {}

// Multi fans one event stream out to several listeners in order.
type Multi []Listener

// LoopEntry implements Listener.
func (m Multi) LoopEntry(id int) {
	for _, l := range m {
		l.LoopEntry(id)
	}
}

// LoopBack implements Listener.
func (m Multi) LoopBack(id int) {
	for _, l := range m {
		l.LoopBack(id)
	}
}

// LoopExit implements Listener.
func (m Multi) LoopExit(id int) {
	for _, l := range m {
		l.LoopExit(id)
	}
}

// MethodEntry implements Listener.
func (m Multi) MethodEntry(id int) {
	for _, l := range m {
		l.MethodEntry(id)
	}
}

// MethodExit implements Listener.
func (m Multi) MethodExit(id int) {
	for _, l := range m {
		l.MethodExit(id)
	}
}

// FieldGet implements Listener.
func (m Multi) FieldGet(o Entity, f int) {
	for _, l := range m {
		l.FieldGet(o, f)
	}
}

// FieldPut implements Listener.
func (m Multi) FieldPut(o Entity, f int, t Entity) {
	for _, l := range m {
		l.FieldPut(o, f, t)
	}
}

// ArrayLoad implements Listener.
func (m Multi) ArrayLoad(a Entity) {
	for _, l := range m {
		l.ArrayLoad(a)
	}
}

// ArrayStore implements Listener.
func (m Multi) ArrayStore(a Entity, t Entity) {
	for _, l := range m {
		l.ArrayStore(a, t)
	}
}

// Alloc implements Listener.
func (m Multi) Alloc(o Entity, c int) {
	for _, l := range m {
		l.Alloc(o, c)
	}
}

// InputRead implements Listener.
func (m Multi) InputRead() {
	for _, l := range m {
		l.InputRead()
	}
}

// OutputWrite implements Listener.
func (m Multi) OutputWrite() {
	for _, l := range m {
		l.OutputWrite()
	}
}
