package pipeline

import "fmt"

// SPSCViolationError reports a Producer method invoked from a goroutine
// other than the one that owns the producer. Producers are strictly
// single-producer: the VM thread (or probe frontend) that first emits
// through a producer owns it for the rest of the run, and every spawned
// VM thread gets a ring of its own. The ownership check runs only in
// -race builds (see debugSPSC), where it panics with this error so the
// violating stack is unmissable in tests; release builds pay nothing.
type SPSCViolationError struct {
	// Owner and Caller are the owning and violating goroutine ids.
	Owner, Caller int64
}

// Error implements error.
func (e *SPSCViolationError) Error() string {
	return fmt.Sprintf("pipeline: single-producer violation: producer owned by goroutine %d used from goroutine %d",
		e.Owner, e.Caller)
}

// ownerSampleMask samples the goroutine-id verification to 1 in every
// 512 frontend calls: the id lookup parses runtime.Stack (~5µs under
// -race), which per-event would dominate the interpreter. Sampling still
// catches any sustained misuse within 512 events and costs one counter
// bump per event; a single stray cross-goroutine call can slip past the
// typed panic, but it is still an unsynchronized access to the
// producer's plain fields, which the race detector reports on its own.
const ownerSampleMask = 511

// checkOwner enforces the single-producer invariant in -race builds: the
// first emitting goroutine claims the producer, and a sampled check
// panics typed on any other caller. Compiled out entirely (debugSPSC is
// a false constant) otherwise.
func (p *Producer) checkOwner() {
	if !debugSPSC {
		return
	}
	p.ownerCalls++
	if p.ownerCalls&ownerSampleMask != 1 {
		return
	}
	gid := goroutineID()
	owner := p.owner.Load()
	if owner == 0 {
		if p.owner.CompareAndSwap(0, gid) {
			return
		}
		owner = p.owner.Load()
	}
	if owner != gid {
		panic(&SPSCViolationError{Owner: owner, Caller: gid})
	}
}
