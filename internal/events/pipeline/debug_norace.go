//go:build !race

package pipeline

// debugSPSC disarms the producer ownership check outside -race builds;
// checkOwner compiles down to nothing.
const debugSPSC = false

func goroutineID() int64 { return 0 }
