//go:build race

package pipeline

import (
	"bytes"
	"runtime"
	"strconv"
)

// debugSPSC arms the producer ownership check in -race builds, where the
// goroutine-id lookup's cost is acceptable and concurrent misuse is what
// the build is hunting for anyway.
const debugSPSC = true

// goroutineID parses the current goroutine's id from its stack header
// ("goroutine 18 [running]:"). Debug-only: there is no supported API.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}
