package pipeline

import (
	"sync/atomic"

	"algoprof/internal/events"
)

// Producer is the writing end of a Transport. It implements
// events.Listener, so the VM (or the probe API) publishes by emitting
// events exactly as it would to an inline listener. All methods must be
// called from a single goroutine.
type Producer struct {
	t *Transport
	// pos is the next sequence number to write (records written but not
	// yet flushed are invisible to consumers).
	pos int64
	// flushed mirrors t.published; kept producer-local to avoid re-loading
	// the atomic on the hot path.
	flushed int64
	// drained is the producer position through which all heap readers have
	// confirmed consumption; Barrier is a no-op while pos == drained.
	drained int64
	// minSeen caches the slowest consumer cursor from the last space check.
	minSeen int64
	// clock, if bound, stamps each record with the VM instruction counter.
	clock       *uint64
	batch       int64
	sync        bool
	heapReaders []*Consumer
	// touchC is the consumer that answers SiteTouch calls (the first
	// path-aware decoded consumer); bound by Transport.Start.
	touchC *Consumer
	// owner is the id of the goroutine that first emitted through this
	// producer; -race builds enforce it (see checkOwner), release builds
	// never touch it. ownerCalls counts frontend calls for the sampled
	// check — deliberately a plain field: a second goroutine bumping it
	// is itself the data race being hunted.
	owner      atomic.Int64
	ownerCalls uint64
}

// BindClock makes every subsequent record carry *counter at publication
// time. Bind the VM's &InstrCount so clock-dependent consumers (CCT) see
// the same timestamps pipelined as they would inline.
func (p *Producer) BindClock(counter *uint64) { p.clock = counter }

func (p *Producer) emit(r Record) {
	p.checkOwner()
	if p.clock != nil {
		r.Clock = *p.clock
	}
	if p.sync {
		for _, c := range p.t.consumers {
			c.dispatch(&r)
		}
		return
	}
	seq := p.pos
	if seq-p.minSeen >= int64(len(p.t.buf)) {
		p.waitSpace(seq)
	}
	p.t.buf[seq&p.t.mask] = r
	p.pos = seq + 1
	if p.pos-p.flushed >= p.batch {
		p.flush()
	}
}

// flush publishes all written records with one release store.
func (p *Producer) flush() {
	if p.pos != p.flushed {
		p.t.published.Store(p.pos)
		p.flushed = p.pos
	}
}

// waitSpace blocks until the slowest consumer frees the slot for seq. It
// publishes first — the unflushed tail is what the consumers are missing.
func (p *Producer) waitSpace(seq int64) {
	p.flush()
	for spins := 0; ; spins++ {
		min := p.t.minCursor()
		p.minSeen = min
		if seq-min < int64(len(p.t.buf)) {
			return
		}
		if p.t.aborted.Load() {
			// Consumers are fast-forwarding without reading; overwriting
			// unconsumed slots is fine — nothing will dispatch them.
			return
		}
		idle(spins)
	}
}

// Flush publishes any buffered records without waiting for consumers.
func (p *Producer) Flush() { p.flush() }

// Barrier fences a heap mutation: it publishes pending records and brings
// every heap-reading consumer up to date with them, so no consumer can
// observe the upcoming write while traversing the heap for an earlier
// event. The producing frontend must call this before each heap write.
// Consumers not marked HeapReader are not waited on.
func (p *Producer) Barrier() {
	p.checkOwner()
	if p.sync || p.pos == p.drained || len(p.heapReaders) == 0 {
		return
	}
	p.flush()
	for _, c := range p.heapReaders {
		p.drain(c)
	}
	p.drained = p.pos
}

// drain brings one heap-reading consumer up to the producer's position. If
// the consumer is idle (the common case in write-heavy phases, where
// barriers keep it fully caught up), the producer claims the pending range
// and dispatches it inline — a heap-write fence then costs no scheduler
// round trip, which would otherwise dominate on a single-CPU machine.
// Otherwise the consumer goroutine owns an in-flight claim and the
// producer waits for it to finish.
func (p *Producer) drain(c *Consumer) {
	for spins := 0; ; spins++ {
		if c.dead.Load() {
			return
		}
		pos := c.pos.Load()
		if pos >= p.pos {
			return
		}
		if c.claim.CompareAndSwap(pos, p.pos) {
			if c.dispatchRange(pos, p.pos) {
				c.pos.Store(p.pos)
			}
			return
		}
		idle(spins)
	}
}

// Instr publishes a per-instruction tick. Wire this as the VM's InstrHook
// when a consumer (the basic-block baseline) implements InstrListener.
func (p *Producer) Instr(methodID, pc int) {
	p.emit(Record{Op: OpInstr, ID: int32(methodID), Ent: int64(pc)})
}

// AllocEntity implements events.Journal: it publishes an entity-birth
// record carrying the layout a trace writer needs (type name, class id,
// capacity, element mode). Wire the producer as the frontend's Journal
// only when a RecordTap consumer is attached — no one else reads these.
func (p *Producer) AllocEntity(e events.Entity, mode events.ElemMode) {
	p.emit(Record{
		Op:  OpJrnlAlloc,
		ID:  int32(e.ClassID()),
		Ent: entID(e),
		Aux: int64(e.Capacity()),
		E1:  e,
		Kx:  uint8(mode),
		KS:  e.TypeName(),
	})
}

// ArrayStoreAt implements events.Journal: it publishes one indexed array
// element store with the stored value, so a replayed shadow heap can apply
// the exact mutation the live heap saw.
func (p *Producer) ArrayStoreAt(arr events.Entity, idx int, key events.ElemKey, newTarget events.Entity) {
	r := Record{Op: OpJrnlStore, ID: int32(idx), Ent: entID(arr), Aux: entID(newTarget), E1: arr, E2: newTarget}
	switch k := key.(type) {
	case int64:
		r.Kx, r.KI = KeyInt, k
	case string:
		r.Kx, r.KS = KeyStr, k
	}
	p.emit(r)
}

// LoopEntry implements events.Listener.
func (p *Producer) LoopEntry(id int) { p.emit(Record{Op: OpLoopEntry, ID: int32(id)}) }

// LoopBack implements events.Listener.
func (p *Producer) LoopBack(id int) { p.emit(Record{Op: OpLoopBack, ID: int32(id)}) }

// LoopExit implements events.Listener.
func (p *Producer) LoopExit(id int) { p.emit(Record{Op: OpLoopExit, ID: int32(id)}) }

// MethodEntry implements events.Listener.
func (p *Producer) MethodEntry(id int) { p.emit(Record{Op: OpMethodEntry, ID: int32(id)}) }

// MethodExit implements events.Listener.
func (p *Producer) MethodExit(id int) { p.emit(Record{Op: OpMethodExit, ID: int32(id)}) }

// FieldGet implements events.Listener.
func (p *Producer) FieldGet(obj events.Entity, fieldID int) {
	p.emit(Record{Op: OpFieldGet, ID: int32(fieldID), Ent: entID(obj), E1: obj})
}

// FieldPut implements events.Listener.
func (p *Producer) FieldPut(obj events.Entity, fieldID int, newTarget events.Entity) {
	p.emit(Record{Op: OpFieldPut, ID: int32(fieldID), Ent: entID(obj), Aux: entID(newTarget), E1: obj, E2: newTarget})
}

// ArrayLoad implements events.Listener.
func (p *Producer) ArrayLoad(arr events.Entity) {
	p.emit(Record{Op: OpArrayLoad, Ent: entID(arr), E1: arr})
}

// ArrayStore implements events.Listener.
func (p *Producer) ArrayStore(arr events.Entity, newTarget events.Entity) {
	p.emit(Record{Op: OpArrayStore, Ent: entID(arr), Aux: entID(newTarget), E1: arr, E2: newTarget})
}

// Alloc implements events.Listener.
func (p *Producer) Alloc(obj events.Entity, classID int) {
	p.emit(Record{Op: OpAlloc, ID: int32(classID), Ent: entID(obj), E1: obj})
}

// LoopPathCount implements events.PathListener: path counters ride the
// ring like any other record, so consumers see them in stream order.
func (p *Producer) LoopPathCount(loopID, pathID int, count int64) {
	p.emit(Record{Op: OpPathCount, ID: int32(loopID), Ent: int64(pathID), Aux: count})
}

// SiteTouch implements events.PathListener. Unlike every other event it
// needs an answer, so it cannot ride the ring: the producer first brings
// the path-aware consumer up to date with all preceding records (the same
// work-stealing drain Barrier uses — afterwards the consumer goroutine is
// provably idle), then asks its listener directly. With no path-aware
// consumer attached every site stays unresolved, which only costs repeat
// calls.
func (p *Producer) SiteTouch(site int, obj events.Entity) bool {
	p.checkOwner()
	c := p.touchC
	if c == nil || c.dead.Load() {
		return false
	}
	if !p.sync {
		p.flush()
		p.drain(c)
		if c.dead.Load() {
			return false
		}
	}
	return c.pathL.SiteTouch(site, obj)
}

// InputRead implements events.Listener.
func (p *Producer) InputRead() { p.emit(Record{Op: OpInputRead}) }

// OutputWrite implements events.Listener.
func (p *Producer) OutputWrite() { p.emit(Record{Op: OpOutputWrite}) }

var _ events.Journal = (*Producer)(nil)

func entID(e events.Entity) int64 {
	if e == nil {
		return 0
	}
	return int64(e.EntityID())
}
