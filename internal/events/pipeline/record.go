// Package pipeline decouples profiling-event production from consumption:
// the VM (or the probe API) publishes compact fixed-size event records into
// a bounded single-producer ring buffer, and a fan-out stage feeds N
// listeners from that one stream, each on its own goroutine with its own
// cursor into the shared buffer. One execution pass can therefore drive the
// algorithmic profiler core, the CCT baseline, and the basic-block baseline
// concurrently — where comparing backends previously re-ran the workload
// once per listener.
//
// Determinism: every consumer walks the same records in publication order,
// so each listener observes exactly the event sequence it would have seen
// inline. Two details make the pipelined profiles byte-identical to
// synchronous ones:
//
//   - Clocks are pre-resolved. Each record carries the producer's
//     instruction counter at publication time; clock-dependent consumers
//     (the CCT baseline) read the record clock via Consumer.Clock instead
//     of sampling the live VM counter from another goroutine.
//
//   - Heap reads are fenced. Listeners that traverse the live heap (the
//     profiler core measures input sizes by walking data structures) would
//     otherwise observe mutations that happen after the event they are
//     processing. The producer therefore calls Barrier before every heap
//     write, which publishes pending records and waits until all
//     heap-reading consumers have drained. Consumers that never touch the
//     heap (CCT, bbprof) are not waited on and run freely ahead.
//
// A Synchronous mode flag keeps inline dispatch — same records, same
// per-consumer filtering, no goroutines — as the ablation baseline.
package pipeline

import "algoprof/internal/events"

// Op tags a Record with the event kind it encodes.
type Op uint8

// Record op tags. OpNone marks an unused slot; it is never published.
const (
	OpNone Op = iota
	OpLoopEntry
	OpLoopBack
	OpLoopExit
	OpMethodEntry
	OpMethodExit
	OpFieldGet
	OpFieldPut
	OpArrayLoad
	OpArrayStore
	OpAlloc
	OpInputRead
	OpOutputWrite
	// OpInstr is a per-executed-instruction tick (method id + pc) for the
	// basic-block baseline; it is published only when the producer's Instr
	// method is wired as the VM's InstrHook.
	OpInstr
	// OpJrnlAlloc and OpJrnlStore are heap-journal records (entity births
	// and indexed array stores), published only when the producer is wired
	// as the frontend's events.Journal. Regular listeners never see them:
	// dispatch delivers them only to raw record taps (the trace writer),
	// which need them to maintain an exact shadow heap for offline replay.
	OpJrnlAlloc
	OpJrnlStore
	// OpPathCount carries one path counter of a counted loop flushed at
	// loop exit (paths mode): ID is the loop id, Ent the path id, Aux the
	// count. Delivered only to consumers implementing events.PathListener.
	OpPathCount
)

// Record is one profiling event in fixed-size binary form: an op tag plus
// up to three integer payloads. Entity-bearing events additionally carry
// the entity references a listener needs pre-resolved, so consumers never
// chase VM internals.
type Record struct {
	// Op is the event kind.
	Op Op
	// ID is the loop/method/field/class id, or the method id for OpInstr.
	ID int32
	// Ent is the EntityID of the accessed entity (0 = none), or the pc for
	// OpInstr.
	Ent int64
	// Aux is the EntityID of the newly stored target for put/store events
	// (0 = none).
	Aux int64
	// Clock is the producer's instruction counter at publication time.
	Clock uint64
	// E1 is the accessed entity for field/array/alloc events.
	E1 events.Entity
	// E2 is the newly stored target for field-put/array-store events.
	E2 events.Entity

	// The remaining fields carry heap-journal payloads and are zero on
	// every other op.
	//
	// Kx is the events.ElemMode for OpJrnlAlloc, or the stored-key kind
	// for OpJrnlStore (see KeyNone and friends). For OpJrnlStore, ID
	// holds the element index, KI the integer key, and KS the string key;
	// for OpJrnlAlloc, Aux holds the capacity and KS the type name.
	Kx uint8
	KI int64
	KS string
}

// Stored-key kinds for OpJrnlStore records (Record.Kx).
const (
	// KeyNone marks a reference or null store: Aux/E2 carry the target.
	KeyNone uint8 = iota
	// KeyInt marks a primitive store; KI holds the value.
	KeyInt
	// KeyStr marks a string store; KS holds the content.
	KeyStr
)

// InstrListener is optionally implemented by consumers that want
// per-instruction ticks (OpInstr records). Consumers that do not implement
// it skip those records.
type InstrListener interface {
	Instr(methodID, pc int)
}

// InstrTap adapts a per-instruction hook (like bbprof's Hook) into a
// consumer that ignores every listener event and receives only OpInstr
// ticks.
type InstrTap struct {
	events.NopListener
	Fn func(methodID, pc int)
}

// Instr implements InstrListener.
func (t InstrTap) Instr(methodID, pc int) { t.Fn(methodID, pc) }

// RecordTap is optionally implemented by consumers that want every record
// verbatim instead of decoded listener calls — the trace writer serializes
// the raw stream (including journal records, which decoded listeners never
// see). A RecordTap consumer receives no Listener callbacks.
type RecordTap interface {
	// Record is called once per published record, in publication order.
	// The record is only valid for the duration of the call.
	Record(r *Record)
}
