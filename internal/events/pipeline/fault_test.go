package pipeline

import (
	"sync/atomic"
	"testing"
	"time"

	"algoprof/internal/events"
)

// laggard is a consumer that processes records in order but slowly —
// yielding (or sleeping) on a stride — while asserting the producer never
// runs more than the ring capacity ahead of it. Failures are latched, not
// raised, because the assertion runs on the consumer goroutine.
type laggard struct {
	events.NopListener
	t        *Transport
	stride   int
	sleep    time.Duration
	next     int64
	ordered  atomic.Bool
	overrun  atomic.Bool
	received atomic.Int64
}

func (l *laggard) LoopEntry(id int) {
	if int64(id) != l.next {
		l.ordered.Store(true)
	}
	l.next++
	n := l.received.Add(1)
	// Bounded-memory invariant: everything published beyond this consumer
	// must still fit in the ring, because the producer's waitSpace blocks
	// on the slowest cursor. `n-1` records are fully processed here, so the
	// in-flight window is published - (n-1).
	if lag := l.t.published.Load() - (n - 1); lag > int64(len(l.t.buf)) {
		l.overrun.Store(true)
	}
	if l.stride > 0 && n%int64(l.stride) == 0 {
		time.Sleep(l.sleep)
	}
}

// TestSlowConsumerBackpressure: a consumer that drains far slower than the
// producer emits must not deadlock, must see every record in order, and
// must bound the producer's lead to the ring capacity (the transport's
// whole memory bound).
func TestSlowConsumerBackpressure(t *testing.T) {
	tp := New(Config{BufferSize: 8, Batch: 2})
	slow := &laggard{t: tp, stride: 64, sleep: 100 * time.Microsecond}
	fast := &laggard{t: tp}
	tp.Add("slow", slow, ConsumerOptions{})
	tp.Add("fast", fast, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	const n = 4096
	for i := 0; i < n; i++ {
		pr.LoopEntry(i)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	for name, l := range map[string]*laggard{"slow": slow, "fast": fast} {
		if got := l.received.Load(); got != n {
			t.Errorf("%s consumer got %d records, want %d", name, got, n)
		}
		if l.ordered.Load() {
			t.Errorf("%s consumer saw records out of order", name)
		}
		if l.overrun.Load() {
			t.Errorf("%s consumer observed the producer more than one ring ahead", name)
		}
	}
}

// gateListener blocks on its first record until released.
type gateListener struct {
	events.NopListener
	gate     chan struct{}
	once     atomic.Bool
	received atomic.Int64
}

func (l *gateListener) LoopEntry(int) {
	if l.once.CompareAndSwap(false, true) {
		<-l.gate
	}
	l.received.Add(1)
}

// TestStalledConsumerNoDeadlock: with one consumer stalled hard on its
// first record, the producer must fill the ring, publish nothing further
// (backpressure, not unbounded buffering), and resume cleanly when the
// consumer unsticks — delivering every record exactly once.
func TestStalledConsumerNoDeadlock(t *testing.T) {
	tp := New(Config{BufferSize: 8, Batch: 1})
	stalled := &gateListener{gate: make(chan struct{})}
	tp.Add("stalled", stalled, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()

	const n = 1000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			pr.LoopEntry(i)
		}
		done <- tp.Close()
	}()

	// The producer must wedge against the full ring: published stops within
	// ring reach of the stalled cursor and stays there.
	deadline := time.Now().Add(2 * time.Second)
	for tp.published.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if pub := tp.published.Load(); pub > int64(len(tp.buf)) {
		t.Errorf("published %d records past a stalled consumer with an %d-slot ring", pub, len(tp.buf))
	}
	select {
	case <-done:
		t.Fatal("Close returned while a consumer was stalled mid-ring")
	default:
	}

	close(stalled.gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: transport did not drain after the consumer unstalled")
	}
	if got := stalled.received.Load(); got != n {
		t.Errorf("stalled consumer got %d records after release, want %d", got, n)
	}
}

// TestAbortWithSlowConsumer: aborting mid-stream with a slow consumer must
// return promptly (discarding the buffered tail) instead of waiting for
// the full drain, and the consumer must have seen an ordered prefix.
func TestAbortWithSlowConsumer(t *testing.T) {
	tp := New(Config{BufferSize: 16, Batch: 1})
	slow := &laggard{t: tp, stride: 4, sleep: 200 * time.Microsecond}
	tp.Add("slow", slow, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 2000; i++ {
			pr.LoopEntry(i)
		}
		done <- tp.Abort()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Abort did not return")
	}
	if slow.ordered.Load() {
		t.Error("consumer saw records out of order before the abort")
	}
	if got := slow.received.Load(); got > 2000 {
		t.Errorf("consumer got %d records, more than were emitted", got)
	}
}

// TestBarrierWithSlowSibling: a heap-reading consumer fenced by Barrier
// must be fully drained at every fence even while a slow non-heap sibling
// lags arbitrarily — the barrier must not wait on the sibling.
func TestBarrierWithSlowSibling(t *testing.T) {
	tp := New(Config{BufferSize: 16, Batch: 4})
	reader := &laggard{t: tp}
	slow := &laggard{t: tp, stride: 16, sleep: 200 * time.Microsecond}
	rc := tp.Add("heap-reader", reader, ConsumerOptions{HeapReader: true})
	tp.Add("slow", slow, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	const n = 2000
	for i := 0; i < n; i++ {
		pr.LoopEntry(i)
		if i%8 == 7 {
			pr.Barrier()
			// The fence guarantee: the heap reader has consumed everything
			// emitted so far, regardless of how far the sibling lags.
			if got := rc.pos.Load(); got != int64(i+1) {
				t.Fatalf("after barrier at record %d the heap reader consumed %d", i+1, got)
			}
		}
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	for name, l := range map[string]*laggard{"reader": reader, "slow": slow} {
		if got := l.received.Load(); got != n {
			t.Errorf("%s got %d records, want %d", name, got, n)
		}
		if l.ordered.Load() {
			t.Errorf("%s saw records out of order", name)
		}
	}
}
