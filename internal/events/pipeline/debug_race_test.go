//go:build race

package pipeline

import (
	"errors"
	"sync"
	"testing"
)

// TestSPSCOwnershipGuard checks the single-producer contract enforcement
// that -race builds arm: the first goroutine to emit through a Producer
// owns it, and any other goroutine emitting afterwards panics with the
// typed violation error instead of silently corrupting the ring. The
// check is sampled (1 in ownerSampleMask+1 frontend calls), so sustained
// misuse must loop past the interval to be guaranteed detection — spawned
// VM threads each get their own producer precisely so this never fires
// in legitimate runs.
func TestSPSCOwnershipGuard(t *testing.T) {
	tp := New(Config{})
	tp.Add("count", &countingListener{}, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	defer tp.Close()

	// Claim ownership from a goroutine that is not the test's. The very
	// first frontend call is always checked, so one emit claims.
	var claim sync.WaitGroup
	claim.Add(1)
	go func() {
		defer claim.Done()
		pr.LoopBack(1)
	}()
	claim.Wait()

	// Sustained emitting from this goroutine violates the contract; the
	// sampled check must trip within one full sample interval.
	var violation *SPSCViolationError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("second-goroutine emit did not panic within %d calls", 2*(ownerSampleMask+1))
			}
			err, ok := r.(error)
			if !ok || !errors.As(err, &violation) {
				t.Fatalf("panicked with %v (%T), want *SPSCViolationError", r, r)
			}
		}()
		for i := 0; i < 2*(ownerSampleMask+1); i++ {
			pr.LoopBack(2)
		}
	}()
	if violation.Owner == violation.Caller {
		t.Fatalf("violation reports owner == caller (%d)", violation.Owner)
	}

	// Barrier and SiteTouch are frontend entry points too: same guard,
	// same sampling.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second-goroutine Barrier did not panic")
			}
		}()
		for i := 0; i < 2*(ownerSampleMask+1); i++ {
			pr.Barrier()
		}
	}()
}

// TestSPSCGuardAllowsOwner: the owning goroutine emits freely — the guard
// must never fire on legal single-producer traffic, including barriers.
func TestSPSCGuardAllowsOwner(t *testing.T) {
	tp := New(Config{})
	l := &countingListener{}
	tp.Add("heap", l, ConsumerOptions{HeapReader: true})
	pr := tp.Producer()
	tp.Start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			pr.LoopBack(1)
			if i%100 == 0 {
				pr.Barrier()
			}
		}
	}()
	wg.Wait()
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if l.n != 1000 {
		t.Fatalf("consumer saw %d of 1000 events", l.n)
	}
}
