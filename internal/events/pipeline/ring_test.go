package pipeline

import (
	"strings"
	"sync/atomic"
	"testing"

	"algoprof/internal/events"
)

// seqListener records the order of per-instruction ticks it receives.
type seqListener struct {
	events.NopListener
	got []int64
}

func (l *seqListener) Instr(methodID, pc int) {
	l.got = append(l.got, int64(methodID)<<32|int64(pc))
}

func TestEveryConsumerSeesEveryRecordInOrder(t *testing.T) {
	for _, bufSize := range []int{8, 64, 1024} {
		for consumers := 1; consumers <= 4; consumers++ {
			tp := New(Config{BufferSize: bufSize})
			ls := make([]*seqListener, consumers)
			for i := range ls {
				ls[i] = &seqListener{}
				tp.Add("seq", ls[i], ConsumerOptions{})
			}
			pr := tp.Producer()
			tp.Start()
			const n = 10_000 // forces many wraparounds at bufSize 8
			for i := 0; i < n; i++ {
				pr.Instr(i>>16, i&0xffff)
			}
			if err := tp.Close(); err != nil {
				t.Fatal(err)
			}
			for ci, l := range ls {
				if len(l.got) != n {
					t.Fatalf("buf=%d consumers=%d: consumer %d got %d records, want %d",
						bufSize, consumers, ci, len(l.got), n)
				}
				for i, v := range l.got {
					want := int64(i>>16)<<32 | int64(i&0xffff)
					if v != want {
						t.Fatalf("buf=%d consumer %d: record %d = %d, want %d", bufSize, ci, i, v, want)
					}
				}
			}
		}
	}
}

// loopCounter counts loop events per id.
type loopCounter struct {
	events.NopListener
	entries, backs, exits atomic.Int64
}

func (l *loopCounter) LoopEntry(int) { l.entries.Add(1) }
func (l *loopCounter) LoopBack(int)  { l.backs.Add(1) }
func (l *loopCounter) LoopExit(int)  { l.exits.Add(1) }

func TestSynchronousModeDispatchesInline(t *testing.T) {
	tp := New(Config{Synchronous: true})
	a, b := &loopCounter{}, &loopCounter{}
	tp.Add("a", a, ConsumerOptions{})
	tp.Add("b", b, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	pr.LoopEntry(1)
	pr.LoopBack(1)
	// Inline mode: events are visible immediately, before Close.
	if a.backs.Load() != 1 || b.backs.Load() != 1 {
		t.Fatalf("synchronous dispatch not inline: a=%d b=%d", a.backs.Load(), b.backs.Load())
	}
	pr.LoopExit(1)
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	for _, l := range []*loopCounter{a, b} {
		if l.entries.Load() != 1 || l.backs.Load() != 1 || l.exits.Load() != 1 {
			t.Fatalf("counts = %d/%d/%d, want 1/1/1", l.entries.Load(), l.backs.Load(), l.exits.Load())
		}
	}
}

// planRecorder records which method events survived the consumer filter.
type planRecorder struct {
	events.NopListener
	methods []int
}

func (l *planRecorder) MethodEntry(id int) { l.methods = append(l.methods, id) }

func TestPerConsumerPlanFilter(t *testing.T) {
	plan := events.NewEmptyPlan(4, 0, 0)
	plan.MethodEntryExit[2] = true
	tp := New(Config{})
	filtered := &planRecorder{}
	full := &planRecorder{}
	tp.Add("filtered", filtered, ConsumerOptions{Plan: plan})
	tp.Add("full", full, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	for id := 0; id < 4; id++ {
		pr.MethodEntry(id)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if len(filtered.methods) != 1 || filtered.methods[0] != 2 {
		t.Errorf("filtered consumer saw %v, want [2]", filtered.methods)
	}
	if len(full.methods) != 4 {
		t.Errorf("unfiltered consumer saw %v, want all 4", full.methods)
	}
}

// heapCellReader reads a plain shared variable on every FieldGet — the
// barrier protocol must make this race-free.
type heapCellReader struct {
	events.NopListener
	cell *int64
	sum  int64
}

func (l *heapCellReader) FieldGet(events.Entity, int) { l.sum += *l.cell }

// TestBarrierFencesHeapWrites is the -race stress test of the ring: the
// producer mutates a plain (non-atomic) variable only after Barrier, and a
// heap-reading consumer dereferences it on every event. Any flaw in the
// barrier/cursor protocol shows up as a data race under -race and as a
// stale sum otherwise.
func TestBarrierFencesHeapWrites(t *testing.T) {
	var cell int64
	tp := New(Config{BufferSize: 16}) // tiny: exercise backpressure too
	reader := &heapCellReader{cell: &cell}
	fast := &loopCounter{} // non-heap consumer, runs freely ahead
	tp.Add("reader", reader, ConsumerOptions{HeapReader: true})
	tp.Add("fast", fast, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	const n = 5000
	var want int64
	for i := 1; i <= n; i++ {
		pr.FieldGet(nil, 0) // reader adds the current cell value
		pr.LoopBack(7)
		want += cell
		pr.Barrier() // all published FieldGets drained before the write
		cell = int64(i)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if reader.sum != want {
		t.Errorf("reader sum = %d, want %d (barrier let a write overtake a read)", reader.sum, want)
	}
	if fast.backs.Load() != n {
		t.Errorf("fast consumer backs = %d, want %d", fast.backs.Load(), n)
	}
}

// panicker panics on the third event.
type panicker struct {
	events.NopListener
	n int
}

func (l *panicker) LoopBack(int) {
	l.n++
	if l.n == 3 {
		panic("listener exploded")
	}
}

func TestConsumerPanicDoesNotDeadlockProducer(t *testing.T) {
	tp := New(Config{BufferSize: 8})
	tp.Add("boom", &panicker{}, ConsumerOptions{HeapReader: true})
	pr := tp.Producer()
	tp.Start()
	// Far more records than the buffer holds, plus barriers: both the
	// backpressure wait and the barrier wait must survive the dead consumer.
	for i := 0; i < 1000; i++ {
		pr.LoopBack(1)
		if i%10 == 0 {
			pr.Barrier()
		}
	}
	err := tp.Close()
	if err == nil || !strings.Contains(err.Error(), "listener exploded") {
		t.Fatalf("Close error = %v, want recovered listener panic", err)
	}
}

func TestBatchClampAndTinyBuffers(t *testing.T) {
	// Batch larger than the buffer must clamp, not deadlock.
	tp := New(Config{BufferSize: 4, Batch: 1024})
	l := &seqListener{}
	tp.Add("seq", l, ConsumerOptions{})
	pr := tp.Producer()
	tp.Start()
	for i := 0; i < 100; i++ {
		pr.Instr(0, i)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if len(l.got) != 100 {
		t.Fatalf("got %d records, want 100", len(l.got))
	}
}

func TestClockStamping(t *testing.T) {
	var clock uint64
	tp := New(Config{Synchronous: true})
	var cons *Consumer
	seen := []uint64{}
	probe := InstrTap{Fn: func(_, _ int) { seen = append(seen, cons.Clock()) }}
	cons = tp.Add("clock", probe, ConsumerOptions{})
	pr := tp.Producer()
	pr.BindClock(&clock)
	tp.Start()
	for _, c := range []uint64{5, 9, 42} {
		clock = c
		pr.Instr(0, 0)
	}
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 || seen[0] != 5 || seen[1] != 9 || seen[2] != 42 {
		t.Fatalf("clocks = %v, want [5 9 42]", seen)
	}
}
