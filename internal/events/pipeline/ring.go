package pipeline

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"algoprof/internal/events"
)

// Config sizes a Transport.
type Config struct {
	// Synchronous dispatches records inline from the producing goroutine —
	// same records, same per-consumer filtering, no ring buffer or
	// goroutines. This is the ablation baseline.
	Synchronous bool
	// BufferSize is the ring capacity in records, rounded up to a power of
	// two (0 = 4096).
	BufferSize int
	// Batch is how many records accumulate before the producer publishes
	// them with one atomic store (0 = 256). Clamped to half the buffer.
	Batch int
}

// Transport is one bounded SPSC-per-consumer broadcast ring: a single
// producer publishes record batches, and every consumer walks the shared
// buffer behind the producer with its own cursor. Add consumers, then
// Start, then feed events through Producer, then Close.
type Transport struct {
	cfg  Config
	mask int64
	buf  []Record

	// published is the number of records visible to consumers; the store
	// in flush releases the buffered records written before it.
	published atomic.Int64
	closed    atomic.Bool
	// aborted marks a cancelled run: consumers stop dispatching to their
	// listeners and fast-forward past whatever is still buffered.
	aborted atomic.Bool

	consumers []*Consumer
	prod      Producer
	wg        sync.WaitGroup
	started   bool
	finished  bool
}

// ConsumerOptions configures one consumer's relationship to the stream.
type ConsumerOptions struct {
	// HeapReader marks a consumer whose listener traverses the live heap
	// (e.g. the profiler core measuring input sizes). The producer's
	// Barrier waits for heap readers before every heap mutation; non-heap
	// consumers run freely ahead.
	HeapReader bool
	// Plan, if non-nil, filters method/field/alloc/array/io records to
	// those the plan enables — so one producer running under a full plan
	// can feed consumers that expect an optimized plan's event subset.
	// Loop records are never filtered, matching the VM's own gating.
	Plan *events.Plan
}

// Consumer is one listener's cursor into the transport's record stream.
type Consumer struct {
	t          *Transport
	name       string
	listener   events.Listener
	instr      InstrListener       // non-nil iff listener wants OpInstr ticks
	pathL      events.PathListener // non-nil iff listener wants path-counter records
	raw        RecordTap           // non-nil: listener takes raw records instead
	plan       *events.Plan
	heapReader bool
	clock      uint64
	err        error
	// dead marks a consumer whose listener panicked; its goroutine
	// fast-forwards the cursor and the producer stops dispatching to it.
	dead atomic.Bool

	_ [64]byte // keep each consumer's cursors on their own cache line
	// pos is the number of records this consumer has fully processed.
	pos atomic.Int64
	// claim is the number of records handed to a dispatcher (consumer
	// goroutine or, during a Barrier, the producer stealing the drain);
	// always >= pos. Whoever CASes pos -> target owns that range.
	claim atomic.Int64
	_     [64]byte
}

// New creates a Transport. Add consumers before Start.
func New(cfg Config) *Transport {
	if cfg.BufferSize <= 0 {
		cfg.BufferSize = 4096
	}
	size := 1
	for size < cfg.BufferSize {
		size <<= 1
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.Batch > size/2 {
		cfg.Batch = size / 2
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	t := &Transport{cfg: cfg, mask: int64(size - 1), buf: make([]Record, size)}
	t.prod.t = t
	t.prod.batch = int64(cfg.Batch)
	t.prod.sync = cfg.Synchronous
	return t
}

// Add registers a listener as a consumer of the stream. Must be called
// before Start. The listener receives OpInstr ticks iff it implements
// InstrListener.
func (t *Transport) Add(name string, l events.Listener, opt ConsumerOptions) *Consumer {
	if t.started {
		panic("pipeline: Add after Start")
	}
	c := &Consumer{
		t:          t,
		name:       name,
		listener:   l,
		plan:       opt.Plan,
		heapReader: opt.HeapReader,
	}
	if il, ok := l.(InstrListener); ok {
		c.instr = il
	}
	if pl, ok := l.(events.PathListener); ok {
		c.pathL = pl
	}
	if rt, ok := l.(RecordTap); ok {
		c.raw = rt
	}
	t.consumers = append(t.consumers, c)
	return c
}

// Producer returns the transport's producing end; it implements
// events.Listener and is safe to hand to the VM as its Listener (and its
// Instr method as the InstrHook, its Barrier method as the PreWrite hook).
func (t *Transport) Producer() *Producer { return &t.prod }

// Start launches one goroutine per consumer (none in Synchronous mode).
func (t *Transport) Start() {
	if t.started {
		panic("pipeline: Start twice")
	}
	t.started = true
	for _, c := range t.consumers {
		if c.heapReader {
			t.prod.heapReaders = append(t.prod.heapReaders, c)
		}
		// The first path-aware decoded consumer answers SiteTouch calls
		// (the producer must ask synchronously — the return value steers
		// the VM's per-site suppression).
		if c.pathL != nil && c.raw == nil && t.prod.touchC == nil {
			t.prod.touchC = c
		}
	}
	if t.cfg.Synchronous {
		return
	}
	for _, c := range t.consumers {
		t.wg.Add(1)
		go c.run()
	}
}

// Close publishes any buffered records, waits for every consumer to drain,
// and returns the first consumer error (a recovered listener panic), if
// any. Safe to call more than once.
func (t *Transport) Close() error {
	if t.started && !t.finished {
		t.finished = true
		if !t.cfg.Synchronous {
			t.prod.flush()
			t.closed.Store(true)
			t.wg.Wait()
		}
	}
	for _, c := range t.consumers {
		if c.err != nil {
			return c.err
		}
	}
	return nil
}

// Abort discards undelivered records and shuts the transport down: every
// consumer stops dispatching to its listener, fast-forwards past whatever
// is still buffered, and exits. This is the cancellation path — the caller
// is abandoning or finalizing a partial run, so delivering the buffered
// tail would only add latency. Like Close, it must be called from the
// producing goroutine; calling Close afterwards is a no-op.
func (t *Transport) Abort() error {
	t.aborted.Store(true)
	return t.Close()
}

// Dispatch delivers one record to every consumer inline, applying the same
// per-consumer filtering as live dispatch. It is the replay entry point: a
// trace reader constructs a Synchronous transport, attaches the offline
// backends, and feeds decoded records here in recorded order. Must not be
// mixed with a live Producer.
func (t *Transport) Dispatch(r *Record) {
	for _, c := range t.consumers {
		c.dispatch(r)
	}
}

// Clock returns the publication-time instruction counter of the record the
// consumer is currently processing (or last processed). Clock-dependent
// listeners read this instead of the live VM counter, so pipelined and
// synchronous runs see identical timestamps.
func (c *Consumer) Clock() uint64 { return c.clock }

// Err returns the consumer's recovered listener panic, if any.
func (c *Consumer) Err() error { return c.err }

// minCursor is the slowest consumer's cursor — the bound on how far the
// producer may write ahead.
func (t *Transport) minCursor() int64 {
	min := int64(math.MaxInt64)
	for _, c := range t.consumers {
		if p := c.pos.Load(); p < min {
			min = p
		}
	}
	return min
}

// idle yields the processor while waiting on the other side of the ring.
// Gosched first: on a single-core machine a spinning waiter would
// otherwise stall its peer until preemption. Sleep as a backstop so a
// pathological wait cannot monopolize the scheduler.
func idle(spins int) {
	if spins < 1024 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

func (c *Consumer) run() {
	defer c.t.wg.Done()
	spins := 0
	for {
		if c.dead.Load() || c.t.aborted.Load() {
			c.fastForward()
			return
		}
		pub := c.t.published.Load()
		consumed := c.pos.Load()
		if pub == consumed {
			if c.t.closed.Load() {
				// Re-check after observing closed: the final flush
				// happens-before the closed store.
				if c.t.published.Load() == consumed {
					return
				}
				continue
			}
			idle(spins)
			spins++
			continue
		}
		if !c.claim.CompareAndSwap(consumed, pub) {
			// The producer is draining us inline (Barrier work stealing);
			// it will advance pos when done.
			idle(spins)
			spins++
			continue
		}
		spins = 0
		if c.dispatchRange(consumed, pub) {
			c.pos.Store(pub)
		}
	}
}

// fastForward keeps a dead consumer's cursor tracking the published count
// so the producer never blocks on its backpressure or barrier.
func (c *Consumer) fastForward() {
	for spins := 0; ; spins++ {
		pub := c.t.published.Load()
		c.pos.Store(pub)
		if c.t.closed.Load() && c.t.published.Load() == pub {
			return
		}
		idle(spins)
	}
}

// dispatchRange dispatches records [from, to) to the listener, reporting
// false when the listener panicked (the consumer is then marked dead, with
// the panic recorded in err). Callers must own the range via claim.
func (c *Consumer) dispatchRange(from, to int64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c.err = fmt.Errorf("pipeline: consumer %q panicked: %v", c.name, r)
			c.dead.Store(true)
		}
	}()
	for ; from < to; from++ {
		c.dispatch(&c.t.buf[from&c.t.mask])
	}
	return true
}

// dispatch decodes one record and invokes the listener, applying the
// consumer's plan filter. Shared by the pipelined and synchronous paths so
// both modes see identical filtering.
func (c *Consumer) dispatch(r *Record) {
	c.clock = r.Clock
	if c.raw != nil {
		c.raw.Record(r)
		return
	}
	p := c.plan
	switch r.Op {
	case OpInstr:
		if c.instr != nil {
			c.instr.Instr(int(r.ID), int(r.Ent))
		}
	case OpLoopEntry:
		c.listener.LoopEntry(int(r.ID))
	case OpLoopBack:
		c.listener.LoopBack(int(r.ID))
	case OpLoopExit:
		c.listener.LoopExit(int(r.ID))
	case OpMethodEntry:
		if p == nil || p.WantsMethod(int(r.ID)) {
			c.listener.MethodEntry(int(r.ID))
		}
	case OpMethodExit:
		if p == nil || p.WantsMethod(int(r.ID)) {
			c.listener.MethodExit(int(r.ID))
		}
	case OpFieldGet:
		if p == nil || p.WantsField(int(r.ID)) {
			c.listener.FieldGet(r.E1, int(r.ID))
		}
	case OpFieldPut:
		if p == nil || p.WantsField(int(r.ID)) {
			c.listener.FieldPut(r.E1, int(r.ID), r.E2)
		}
	case OpArrayLoad:
		if p == nil || p.Arrays {
			c.listener.ArrayLoad(r.E1)
		}
	case OpArrayStore:
		if p == nil || p.Arrays {
			c.listener.ArrayStore(r.E1, r.E2)
		}
	case OpAlloc:
		if p == nil || p.WantsAlloc(int(r.ID)) {
			c.listener.Alloc(r.E1, int(r.ID))
		}
	case OpInputRead:
		if p == nil || p.IO {
			c.listener.InputRead()
		}
	case OpOutputWrite:
		if p == nil || p.IO {
			c.listener.OutputWrite()
		}
	case OpPathCount:
		if c.pathL != nil {
			c.pathL.LoopPathCount(int(r.ID), int(r.Ent), r.Aux)
		}
	}
}
