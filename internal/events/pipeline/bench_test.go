package pipeline

import (
	"testing"

	"algoprof/internal/events"
)

// countingListener is the cheapest possible consumer: one add per event.
type countingListener struct {
	events.NopListener
	n int64
}

func (l *countingListener) LoopBack(int) { l.n++ }

func benchTransport(b *testing.B, cfg Config, consumers int) {
	tp := New(cfg)
	ls := make([]*countingListener, consumers)
	for i := range ls {
		ls[i] = &countingListener{}
		tp.Add("count", ls[i], ConsumerOptions{})
	}
	pr := tp.Producer()
	tp.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.LoopBack(1)
	}
	if err := tp.Close(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	for _, l := range ls {
		if l.n != int64(b.N) {
			b.Fatalf("consumer saw %d of %d events", l.n, b.N)
		}
	}
}

func BenchmarkPublishConsume1(b *testing.B)  { benchTransport(b, Config{}, 1) }
func BenchmarkPublishConsume3(b *testing.B)  { benchTransport(b, Config{}, 3) }
func BenchmarkSyncFanout1(b *testing.B)      { benchTransport(b, Config{Synchronous: true}, 1) }
func BenchmarkSyncFanout3(b *testing.B)      { benchTransport(b, Config{Synchronous: true}, 3) }
func BenchmarkPublishTinyBuffer(b *testing.B) {
	benchTransport(b, Config{BufferSize: 64}, 2)
}

// BenchmarkBarrier measures the producer-side cost of a heap-write fence
// with one heap-reading consumer, interleaved with regular traffic.
func BenchmarkBarrier(b *testing.B) {
	tp := New(Config{})
	l := &countingListener{}
	tp.Add("heap", l, ConsumerOptions{HeapReader: true})
	pr := tp.Producer()
	tp.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.LoopBack(1)
		pr.Barrier()
	}
	if err := tp.Close(); err != nil {
		b.Fatal(err)
	}
}
