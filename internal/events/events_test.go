package events

import "testing"

// countingListener counts every event kind.
type countingListener struct {
	NopListener
	loops, methods, fields, arrays, allocs, io int
}

func (c *countingListener) LoopEntry(int)        { c.loops++ }
func (c *countingListener) LoopBack(int)         { c.loops++ }
func (c *countingListener) LoopExit(int)         { c.loops++ }
func (c *countingListener) MethodEntry(int)      { c.methods++ }
func (c *countingListener) MethodExit(int)       { c.methods++ }
func (c *countingListener) FieldGet(Entity, int) { c.fields++ }
func (c *countingListener) FieldPut(Entity, int, Entity) {
	c.fields++
}
func (c *countingListener) ArrayLoad(Entity)          { c.arrays++ }
func (c *countingListener) ArrayStore(Entity, Entity) { c.arrays++ }
func (c *countingListener) Alloc(Entity, int)         { c.allocs++ }
func (c *countingListener) InputRead()                { c.io++ }
func (c *countingListener) OutputWrite()              { c.io++ }

func fire(l Listener) {
	l.LoopEntry(1)
	l.LoopBack(1)
	l.LoopExit(1)
	l.MethodEntry(2)
	l.MethodExit(2)
	l.FieldGet(nil, 3)
	l.FieldPut(nil, 3, nil)
	l.ArrayLoad(nil)
	l.ArrayStore(nil, nil)
	l.Alloc(nil, 4)
	l.InputRead()
	l.OutputWrite()
}

func TestMultiFansOutInOrder(t *testing.T) {
	a := &countingListener{}
	b := &countingListener{}
	fire(Multi{a, b})
	for i, c := range []*countingListener{a, b} {
		if c.loops != 3 || c.methods != 2 || c.fields != 2 || c.arrays != 2 || c.allocs != 1 || c.io != 2 {
			t.Errorf("listener %d counts: %+v", i, *c)
		}
	}
}

func TestNopListenerAcceptsEverything(t *testing.T) {
	fire(NopListener{}) // must not panic
}

func TestPlanHelpers(t *testing.T) {
	full := NewFullPlan(3, 4, 5)
	for m := 0; m < 3; m++ {
		if !full.WantsMethod(m) {
			t.Errorf("full plan method %d", m)
		}
	}
	for f := 0; f < 4; f++ {
		if !full.WantsField(f) {
			t.Errorf("full plan field %d", f)
		}
	}
	for c := 0; c < 5; c++ {
		if !full.WantsAlloc(c) {
			t.Errorf("full plan class %d", c)
		}
	}
	if !full.Arrays || !full.IO {
		t.Error("full plan must enable arrays and io")
	}

	empty := NewEmptyPlan(3, 4, 5)
	if empty.WantsMethod(0) || empty.WantsField(0) || empty.WantsAlloc(0) {
		t.Error("empty plan must disable everything")
	}

	// Out-of-range and nil plans are safe.
	if full.WantsMethod(-1) || full.WantsMethod(99) {
		t.Error("out-of-range method ids must be false")
	}
	var nilPlan *Plan
	if nilPlan.WantsMethod(0) || nilPlan.WantsField(0) || nilPlan.WantsAlloc(0) {
		t.Error("nil plan must be all-false")
	}
}
