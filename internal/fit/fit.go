// Package fit infers empirical cost functions from (input size, cost)
// samples — the §2.7 step that the AlgoProf paper delegates to empirical
// algorithmics and performs by hand; here it is automated with linear
// least squares over a basis of common complexity shapes and adjusted-R²
// model selection with a parsimony preference.
package fit

import (
	"fmt"
	"math"
	"sort"
)

// Model is a candidate cost-function shape.
type Model int

// Candidate models, ordered from simplest to most complex.
const (
	Constant     Model = iota // cost ≈ b
	Logarithmic               // cost ≈ a·log2(n+1) + b
	Linear                    // cost ≈ a·n + b
	Linearithmic              // cost ≈ a·n·log2(n+1) + b
	Quadratic                 // cost ≈ a·n² + b
	Cubic                     // cost ≈ a·n³ + b
)

var modelNames = [...]string{"1", "log n", "n", "n log n", "n^2", "n^3"}

// String names the model's growth term.
func (m Model) String() string { return modelNames[m] }

// Basis evaluates the model's basis function at n.
func (m Model) Basis(n float64) float64 {
	switch m {
	case Constant:
		return 1
	case Logarithmic:
		return math.Log2(n + 1)
	case Linear:
		return n
	case Linearithmic:
		return n * math.Log2(n+1)
	case Quadratic:
		return n * n
	case Cubic:
		return n * n * n
	}
	return 0
}

// Models lists all candidates, simplest first.
func Models() []Model {
	return []Model{Constant, Logarithmic, Linear, Linearithmic, Quadratic, Cubic}
}

// ParseModel maps a growth-term name ("n log n") back to its Model — the
// inverse of String, used when fitted cost functions round-trip through a
// serialized run manifest. The second result reports whether the name is a
// known model.
func ParseModel(s string) (Model, bool) {
	for i, name := range modelNames {
		if s == name {
			return Model(i), true
		}
	}
	return Constant, false
}

// Point is one (size, cost) sample.
type Point struct {
	Size float64
	Cost float64
}

// Fit is a fitted cost function cost ≈ Coeff·basis(size) + Intercept.
type Fit struct {
	Model     Model
	Coeff     float64
	Intercept float64
	// R2 is the coefficient of determination on the fitting data.
	R2 float64
	// N is the number of samples used.
	N int
}

// Eval evaluates the fitted function at size n.
func (f *Fit) Eval(n float64) float64 {
	return f.Coeff*f.Model.Basis(n) + f.Intercept
}

// String renders the fit like the paper's annotations ("0.25*n^2").
func (f *Fit) String() string {
	if f.Model == Constant {
		return fmt.Sprintf("%.3g", f.Intercept+f.Coeff)
	}
	s := fmt.Sprintf("%.3g*%s", f.Coeff, f.Model)
	if math.Abs(f.Intercept) >= 0.5 {
		sign := "+"
		v := f.Intercept
		if v < 0 {
			sign = "-"
			v = -v
		}
		s += fmt.Sprintf(" %s %.3g", sign, v)
	}
	return s
}

// FitModel fits one candidate model by ordinary least squares, returning
// nil when the model is not applicable (degenerate basis variance).
func FitModel(points []Point, m Model) *Fit {
	n := len(points)
	if n == 0 {
		return nil
	}
	if m == Constant {
		mean := 0.0
		for _, p := range points {
			mean += p.Cost
		}
		mean /= float64(n)
		ssTot := 0.0
		for _, p := range points {
			d := p.Cost - mean
			ssTot += d * d
		}
		// For the constant model the residual and total sums of squares
		// coincide, so R² is 1 on zero-variance data and 0 otherwise. Best's
		// degenerate single-size path goes through here too, so the two
		// agree by construction.
		r2 := 1.0
		if ssTot > 0 {
			r2 = 0 // a constant explains none of the variance
		}
		return &Fit{Model: Constant, Intercept: mean, R2: r2, N: n}
	}

	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x := m.Basis(p.Size)
		sx += x
		sy += p.Cost
		sxx += x * x
		sxy += x * p.Cost
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return nil // no variance in the basis: model not applicable
	}
	a := (fn*sxy - sx*sy) / den
	b := (sy - a*sx) / fn

	meanY := sy / fn
	ssRes, ssTot := 0.0, 0.0
	for _, p := range points {
		x := m.Basis(p.Size)
		r := p.Cost - (a*x + b)
		ssRes += r * r
		d := p.Cost - meanY
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &Fit{Model: m, Coeff: a, Intercept: b, R2: r2, N: n}
}

// parsimonyMargin is how much R² a more complex model must gain to beat a
// simpler one. It must stay below ~0.003: that is the gap between a linear
// fit and the true model on exact n·log n data over typical size ranges.
const parsimonyMargin = 0.001

// Best fits all candidate models and selects the best by R² with a
// parsimony preference: a more complex model wins only when it improves R²
// by more than parsimonyMargin. Degenerate samples (non-finite cost or
// size, negative size — possible only through corrupt manifests or partial
// traces) are dropped before fitting; a single distinct size degenerates to
// the Constant model through the normal path, since every other basis has
// zero variance there. Returns nil when no valid points remain.
func Best(points []Point) *Fit {
	points = validPoints(points)
	if len(points) == 0 {
		return nil
	}

	var best *Fit
	for _, m := range Models() {
		f := FitModel(points, m)
		if f == nil {
			continue
		}
		// Reject shapes with a (meaningfully) negative growth coefficient:
		// costs do not shrink with input size in this model family.
		if m != Constant && f.Coeff < 0 && f.R2 > 0 {
			continue
		}
		if best == nil || f.R2 > best.R2+parsimonyMargin {
			best = f
		}
	}
	if best == nil {
		best = FitModel(points, Constant)
	}
	return best
}

// validPoints returns the samples that can participate in a least-squares
// fit, dropping non-finite costs/sizes and negative sizes (log-family bases
// are undefined there). The input slice is returned unchanged when every
// point is valid — the overwhelmingly common case.
func validPoints(points []Point) []Point {
	for i, p := range points {
		if !pointValid(p) {
			out := make([]Point, i, len(points))
			copy(out, points[:i])
			for _, q := range points[i+1:] {
				if pointValid(q) {
					out = append(out, q)
				}
			}
			return out
		}
	}
	return points
}

func pointValid(p Point) bool {
	return !math.IsNaN(p.Size) && !math.IsInf(p.Size, 0) && p.Size >= 0 &&
		!math.IsNaN(p.Cost) && !math.IsInf(p.Cost, 0)
}

// FromCounts converts integer samples to Points. The slices must be the
// same length: a mismatch means the caller paired sizes with the wrong
// cost series, which silent truncation used to mask.
func FromCounts(sizes []int, costs []int64) ([]Point, error) {
	if len(sizes) != len(costs) {
		return nil, fmt.Errorf("fit: FromCounts: %d sizes but %d costs", len(sizes), len(costs))
	}
	pts := make([]Point, len(sizes))
	for i := range sizes {
		pts[i] = Point{Size: float64(sizes[i]), Cost: float64(costs[i])}
	}
	return pts, nil
}

// Median returns the median cost per distinct size — handy for summarizing
// noisy scatter data before display.
func Median(points []Point) []Point {
	bySize := map[float64][]float64{}
	for _, p := range points {
		bySize[p.Size] = append(bySize[p.Size], p.Cost)
	}
	out := make([]Point, 0, len(bySize))
	for s, cs := range bySize {
		sort.Float64s(cs)
		out = append(out, Point{Size: s, Cost: cs[len(cs)/2]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}
