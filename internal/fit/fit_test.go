package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gen(n int, f func(x float64) float64) []Point {
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		x := float64(i * 5)
		pts = append(pts, Point{Size: x, Cost: f(x)})
	}
	return pts
}

func TestExactShapes(t *testing.T) {
	cases := []struct {
		name string
		f    func(x float64) float64
		want Model
	}{
		{"constant", func(x float64) float64 { return 7 }, Constant},
		{"linear", func(x float64) float64 { return 3*x + 2 }, Linear},
		{"nlogn", func(x float64) float64 { return 2 * x * math.Log2(x+1) }, Linearithmic},
		{"quadratic", func(x float64) float64 { return 0.25 * x * x }, Quadratic},
		{"cubic", func(x float64) float64 { return 0.01 * x * x * x }, Cubic},
		{"log", func(x float64) float64 { return 10 * math.Log2(x+1) }, Logarithmic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Best(gen(40, tc.f))
			if f == nil {
				t.Fatal("nil fit")
			}
			if f.Model != tc.want {
				t.Errorf("model = %v (R2=%.4f), want %v", f.Model, f.R2, tc.want)
			}
			if tc.want != Constant && f.R2 < 0.999 {
				t.Errorf("R2 = %f for exact data", f.R2)
			}
		})
	}
}

func TestQuadraticCoefficientRecovered(t *testing.T) {
	f := Best(gen(50, func(x float64) float64 { return 0.25 * x * x }))
	if f.Model != Quadratic {
		t.Fatalf("model %v", f.Model)
	}
	if math.Abs(f.Coeff-0.25) > 1e-6 {
		t.Errorf("coeff = %f, want 0.25", f.Coeff)
	}
}

func TestNoisyQuadraticStillQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := gen(60, func(x float64) float64 {
		return 0.25*x*x*(1+0.1*(rng.Float64()-0.5)) + 5
	})
	f := Best(pts)
	if f.Model != Quadratic {
		t.Errorf("noisy quadratic classified as %v (R2=%.4f)", f.Model, f.R2)
	}
	if math.Abs(f.Coeff-0.25) > 0.05 {
		t.Errorf("coeff = %f, want ≈0.25", f.Coeff)
	}
}

func TestParsimonyPrefersSimplerModel(t *testing.T) {
	// Pure linear data: quadratic fits perfectly too (a≈0 + linear term
	// cannot be expressed)... in this single-term basis the quadratic
	// cannot match a line exactly, but on near-linear data the linear
	// model must win the parsimony tie-break.
	pts := gen(50, func(x float64) float64 { return 4 * x })
	f := Best(pts)
	if f.Model != Linear {
		t.Errorf("model = %v, want Linear", f.Model)
	}
}

func TestSingleSizeDegenerates(t *testing.T) {
	pts := []Point{{Size: 10, Cost: 4}, {Size: 10, Cost: 6}}
	f := Best(pts)
	if f.Model != Constant {
		t.Errorf("single size must fit Constant, got %v", f.Model)
	}
	if math.Abs(f.Eval(10)-5) > 1e-9 {
		t.Errorf("constant level = %f, want 5", f.Eval(10))
	}
}

func TestEmptyPoints(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) must be nil")
	}
}

func TestEvalMatchesModel(t *testing.T) {
	f := &Fit{Model: Quadratic, Coeff: 2, Intercept: 3}
	if got := f.Eval(10); got != 203 {
		t.Errorf("Eval = %f, want 203", got)
	}
}

func TestStringRendering(t *testing.T) {
	f := &Fit{Model: Quadratic, Coeff: 0.25, Intercept: 0.1}
	if got := f.String(); got != "0.25*n^2" {
		t.Errorf("String = %q", got)
	}
	f2 := &Fit{Model: Linear, Coeff: 2, Intercept: 10}
	if got := f2.String(); got != "2*n + 10" {
		t.Errorf("String = %q", got)
	}
	f3 := &Fit{Model: Constant, Intercept: 6}
	if got := f3.String(); got != "6" {
		t.Errorf("String = %q", got)
	}
}

func TestMedianCollapsesRepeats(t *testing.T) {
	pts := []Point{
		{Size: 1, Cost: 5}, {Size: 1, Cost: 1}, {Size: 1, Cost: 3},
		{Size: 2, Cost: 10},
	}
	med := Median(pts)
	if len(med) != 2 {
		t.Fatalf("median points = %d, want 2", len(med))
	}
	if med[0].Size != 1 || med[0].Cost != 3 {
		t.Errorf("median of size 1 = %v, want 3", med[0])
	}
}

func TestFromCounts(t *testing.T) {
	pts := FromCounts([]int{1, 2, 3}, []int64{10, 20, 30})
	if len(pts) != 3 || pts[2].Cost != 30 {
		t.Errorf("FromCounts = %v", pts)
	}
}

// Property: for exact data y = a·basis(n) + b with a > 0, Best recovers a
// and b to within floating tolerance and never picks a more complex model
// (it may pick a simpler one only if it fits equally well, which cannot
// happen for distinct shapes on ≥3 sizes).
func TestRecoveryProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, modelRaw uint8) bool {
		a := float64(aRaw%50)/10 + 0.1
		b := float64(bRaw % 20)
		m := Models()[1:][int(modelRaw)%5] // skip Constant
		pts := gen(30, func(x float64) float64 { return a*m.Basis(x) + b })
		best := Best(pts)
		if best == nil {
			return false
		}
		if best.Model != m {
			return false
		}
		return math.Abs(best.Coeff-a) < 1e-6*math.Max(1, a) &&
			math.Abs(best.Intercept-b) < 1e-3*math.Max(1, b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: R² is always in [-inf, 1] and equals 1 on exact data.
func TestR2Property(t *testing.T) {
	f := func(coeff uint8) bool {
		a := float64(coeff%30)/10 + 0.2
		pts := gen(25, func(x float64) float64 { return a * x })
		fit := FitModel(pts, Linear)
		return fit != nil && fit.R2 > 0.999999 && fit.R2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
