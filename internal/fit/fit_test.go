package fit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func gen(n int, f func(x float64) float64) []Point {
	pts := make([]Point, 0, n)
	for i := 1; i <= n; i++ {
		x := float64(i * 5)
		pts = append(pts, Point{Size: x, Cost: f(x)})
	}
	return pts
}

func TestExactShapes(t *testing.T) {
	cases := []struct {
		name string
		f    func(x float64) float64
		want Model
	}{
		{"constant", func(x float64) float64 { return 7 }, Constant},
		{"linear", func(x float64) float64 { return 3*x + 2 }, Linear},
		{"nlogn", func(x float64) float64 { return 2 * x * math.Log2(x+1) }, Linearithmic},
		{"quadratic", func(x float64) float64 { return 0.25 * x * x }, Quadratic},
		{"cubic", func(x float64) float64 { return 0.01 * x * x * x }, Cubic},
		{"log", func(x float64) float64 { return 10 * math.Log2(x+1) }, Logarithmic},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Best(gen(40, tc.f))
			if f == nil {
				t.Fatal("nil fit")
			}
			if f.Model != tc.want {
				t.Errorf("model = %v (R2=%.4f), want %v", f.Model, f.R2, tc.want)
			}
			if tc.want != Constant && f.R2 < 0.999 {
				t.Errorf("R2 = %f for exact data", f.R2)
			}
		})
	}
}

func TestQuadraticCoefficientRecovered(t *testing.T) {
	f := Best(gen(50, func(x float64) float64 { return 0.25 * x * x }))
	if f.Model != Quadratic {
		t.Fatalf("model %v", f.Model)
	}
	if math.Abs(f.Coeff-0.25) > 1e-6 {
		t.Errorf("coeff = %f, want 0.25", f.Coeff)
	}
}

func TestNoisyQuadraticStillQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := gen(60, func(x float64) float64 {
		return 0.25*x*x*(1+0.1*(rng.Float64()-0.5)) + 5
	})
	f := Best(pts)
	if f.Model != Quadratic {
		t.Errorf("noisy quadratic classified as %v (R2=%.4f)", f.Model, f.R2)
	}
	if math.Abs(f.Coeff-0.25) > 0.05 {
		t.Errorf("coeff = %f, want ≈0.25", f.Coeff)
	}
}

func TestParsimonyPrefersSimplerModel(t *testing.T) {
	// Pure linear data: quadratic fits perfectly too (a≈0 + linear term
	// cannot be expressed)... in this single-term basis the quadratic
	// cannot match a line exactly, but on near-linear data the linear
	// model must win the parsimony tie-break.
	pts := gen(50, func(x float64) float64 { return 4 * x })
	f := Best(pts)
	if f.Model != Linear {
		t.Errorf("model = %v, want Linear", f.Model)
	}
}

func TestSingleSizeDegenerates(t *testing.T) {
	pts := []Point{{Size: 10, Cost: 4}, {Size: 10, Cost: 6}}
	f := Best(pts)
	if f.Model != Constant {
		t.Errorf("single size must fit Constant, got %v", f.Model)
	}
	if math.Abs(f.Eval(10)-5) > 1e-9 {
		t.Errorf("constant level = %f, want 5", f.Eval(10))
	}
}

func TestEmptyPoints(t *testing.T) {
	if Best(nil) != nil {
		t.Error("Best(nil) must be nil")
	}
}

func TestEvalMatchesModel(t *testing.T) {
	f := &Fit{Model: Quadratic, Coeff: 2, Intercept: 3}
	if got := f.Eval(10); got != 203 {
		t.Errorf("Eval = %f, want 203", got)
	}
}

func TestStringRendering(t *testing.T) {
	f := &Fit{Model: Quadratic, Coeff: 0.25, Intercept: 0.1}
	if got := f.String(); got != "0.25*n^2" {
		t.Errorf("String = %q", got)
	}
	f2 := &Fit{Model: Linear, Coeff: 2, Intercept: 10}
	if got := f2.String(); got != "2*n + 10" {
		t.Errorf("String = %q", got)
	}
	f3 := &Fit{Model: Constant, Intercept: 6}
	if got := f3.String(); got != "6" {
		t.Errorf("String = %q", got)
	}
}

func TestMedianCollapsesRepeats(t *testing.T) {
	pts := []Point{
		{Size: 1, Cost: 5}, {Size: 1, Cost: 1}, {Size: 1, Cost: 3},
		{Size: 2, Cost: 10},
	}
	med := Median(pts)
	if len(med) != 2 {
		t.Fatalf("median points = %d, want 2", len(med))
	}
	if med[0].Size != 1 || med[0].Cost != 3 {
		t.Errorf("median of size 1 = %v, want 3", med[0])
	}
}

func TestFromCounts(t *testing.T) {
	pts, err := FromCounts([]int{1, 2, 3}, []int64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 || pts[2].Cost != 30 {
		t.Errorf("FromCounts = %v", pts)
	}
}

func TestFromCountsMismatchedLengths(t *testing.T) {
	if _, err := FromCounts([]int{1, 2, 3}, []int64{10, 20}); err == nil {
		t.Error("mismatched slices must error, not truncate")
	}
	if _, err := FromCounts(nil, []int64{1}); err == nil {
		t.Error("nil sizes with costs must error")
	}
}

// The Constant model's R² must be the same whether it is reached through
// FitModel directly or through Best's degenerate single-distinct-size
// path: 1 on zero-variance data, 0 when cost varies.
func TestConstantR2Consistency(t *testing.T) {
	noisy := []Point{{Size: 10, Cost: 4}, {Size: 10, Cost: 6}}
	fm := FitModel(noisy, Constant)
	best := Best(noisy)
	if best.Model != Constant {
		t.Fatalf("single-size best model = %v", best.Model)
	}
	if fm.R2 != 0 || best.R2 != 0 {
		t.Errorf("noisy constant R2: FitModel=%v Best=%v, want 0 and 0", fm.R2, best.R2)
	}
	flat := []Point{{Size: 10, Cost: 5}, {Size: 10, Cost: 5}, {Size: 20, Cost: 5}}
	if f := FitModel(flat, Constant); f.R2 != 1 {
		t.Errorf("zero-variance constant R2 = %v, want 1", f.R2)
	}
	if f := Best(flat); f.Model != Constant || f.R2 != 1 {
		t.Errorf("zero-variance best = %v R2=%v, want Constant R2=1", f.Model, f.R2)
	}
}

func TestBestDropsNonFinitePoints(t *testing.T) {
	pts := gen(30, func(x float64) float64 { return 3 * x })
	pts = append(pts,
		Point{Size: 5, Cost: math.NaN()},
		Point{Size: math.Inf(1), Cost: 10},
		Point{Size: math.NaN(), Cost: 10},
		Point{Size: 7, Cost: math.Inf(-1)},
		Point{Size: -3, Cost: 12},
	)
	f := Best(pts)
	if f == nil {
		t.Fatal("nil fit")
	}
	if f.Model != Linear {
		t.Errorf("model = %v, want Linear despite degenerate points", f.Model)
	}
	if math.IsNaN(f.Coeff) || math.IsNaN(f.Intercept) || math.IsNaN(f.R2) {
		t.Errorf("fit carries NaN: %+v", f)
	}
	if f.N != 30 {
		t.Errorf("N = %d, want 30 (degenerate points dropped)", f.N)
	}
}

func TestBestAllInvalidPoints(t *testing.T) {
	pts := []Point{{Size: math.NaN(), Cost: 1}, {Size: 1, Cost: math.Inf(1)}}
	if f := Best(pts); f != nil {
		t.Errorf("all-invalid input must yield nil, got %+v", f)
	}
}

func TestSinglePoint(t *testing.T) {
	f := Best([]Point{{Size: 8, Cost: 42}})
	if f == nil || f.Model != Constant {
		t.Fatalf("n=1 fit = %+v, want Constant", f)
	}
	if f.R2 != 1 || f.Eval(8) != 42 {
		t.Errorf("n=1: R2=%v Eval=%v, want 1 and 42", f.R2, f.Eval(8))
	}
}

func TestDuplicateSizes(t *testing.T) {
	// Two samples per size of exact linear data: the duplicate sizes must
	// not confuse model selection.
	var pts []Point
	for i := 1; i <= 20; i++ {
		x := float64(i * 4)
		pts = append(pts, Point{Size: x, Cost: 2 * x}, Point{Size: x, Cost: 2 * x})
	}
	f := Best(pts)
	if f == nil || f.Model != Linear {
		t.Fatalf("duplicate-size fit = %+v, want Linear", f)
	}
	if math.Abs(f.Coeff-2) > 1e-9 {
		t.Errorf("coeff = %v, want 2", f.Coeff)
	}
}

// Property: for exact data y = a·basis(n) + b with a > 0, Best recovers a
// and b to within floating tolerance and never picks a more complex model
// (it may pick a simpler one only if it fits equally well, which cannot
// happen for distinct shapes on ≥3 sizes).
func TestRecoveryProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8, modelRaw uint8) bool {
		a := float64(aRaw%50)/10 + 0.1
		b := float64(bRaw % 20)
		m := Models()[1:][int(modelRaw)%5] // skip Constant
		pts := gen(30, func(x float64) float64 { return a*m.Basis(x) + b })
		best := Best(pts)
		if best == nil {
			return false
		}
		if best.Model != m {
			return false
		}
		return math.Abs(best.Coeff-a) < 1e-6*math.Max(1, a) &&
			math.Abs(best.Intercept-b) < 1e-3*math.Max(1, b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: R² is always in [-inf, 1] and equals 1 on exact data.
func TestR2Property(t *testing.T) {
	f := func(coeff uint8) bool {
		a := float64(coeff%30)/10 + 0.2
		pts := gen(25, func(x float64) float64 { return a * x })
		fit := FitModel(pts, Linear)
		return fit != nil && fit.R2 > 0.999999 && fit.R2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
