package core

import (
	"testing"

	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/snapshot"
	"algoprof/internal/vm"
)

// profile compiles, instruments and runs src under the profiler.
func profile(t *testing.T, src string, opts Options) *Profiler {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	p := NewProfiler(ins, opts)
	m := vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: 42})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	p.Finish()
	if errs := p.Errors(); len(errs) != 0 {
		t.Fatalf("profiler errors: %v", errs)
	}
	return p
}

// findNode walks the tree for a node whose name (per NodeName) matches.
func findNode(p *Profiler, name string) *Node {
	var found *Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if p.NodeName(n) == name {
			found = n
			return
		}
		for _, c := range n.Children {
			walk(c)
			if found != nil {
				return
			}
		}
	}
	walk(p.Root())
	return found
}

func countNodes(n *Node) int {
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

func TestSimpleLoopTree(t *testing.T) {
	p := profile(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 7; i++) { }
  }
}`, Options{})
	root := p.Root()
	if len(root.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(root.Children))
	}
	loop := root.Children[0]
	if loop.Kind != KindLoop {
		t.Fatalf("child kind %v", loop.Kind)
	}
	if loop.Invocations() != 1 {
		t.Errorf("loop invocations = %d, want 1", loop.Invocations())
	}
	if got := loop.TotalCost(OpStep); got != 7 {
		t.Errorf("steps = %d, want 7", got)
	}
}

func TestNestedLoopInvocationsAndSteps(t *testing.T) {
	// Listing 3: outer 3 iterations; inner runs 0+1+2 = 3 steps across 3
	// invocations.
	p := profile(t, `
class Main {
  public static void main() {
    for (int o = 0; o < 3; o++) {
      for (int i = 0; i < o; i++) { }
    }
  }
}`, Options{})
	outer := p.Root().Children[0]
	if outer.TotalCost(OpStep) != 3 {
		t.Errorf("outer steps = %d, want 3", outer.TotalCost(OpStep))
	}
	if len(outer.Children) != 1 {
		t.Fatalf("outer children = %d", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Invocations() != 3 {
		t.Errorf("inner invocations = %d, want 3", inner.Invocations())
	}
	if inner.TotalCost(OpStep) != 3 {
		t.Errorf("inner steps = %d, want 0+1+2=3", inner.TotalCost(OpStep))
	}
	// The outer loop runs one invocation (index 0); every inner invocation
	// belongs to it.
	for i, inv := range inner.History {
		if inv.ParentIndex != 0 {
			t.Errorf("inner invocation %d has parent index %d, want 0", i, inv.ParentIndex)
		}
	}
}

func TestLoopsInCalledMethodNestUnderCallSiteLoop(t *testing.T) {
	// Loops of non-recursive callees appear as children of the caller's
	// current loop node (methods themselves are not repetition nodes).
	p := profile(t, `
class Main {
  static void work(int n) {
    for (int i = 0; i < n; i++) { }
  }
  public static void main() {
    for (int r = 0; r < 4; r++) { work(r); }
  }
}`, Options{})
	outer := p.Root().Children[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer has %d children, want 1 (work's loop)", len(outer.Children))
	}
	workLoop := outer.Children[0]
	if workLoop.Invocations() != 4 {
		t.Errorf("work loop invoked %d times, want 4", workLoop.Invocations())
	}
	if workLoop.TotalCost(OpStep) != 0+1+2+3 {
		t.Errorf("work loop steps = %d, want 6", workLoop.TotalCost(OpStep))
	}
}

func TestRecursionFolding(t *testing.T) {
	p := profile(t, `
class Main {
  static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
  public static void main() {
    int a = fact(5);
    int b = fact(3);
  }
}`, Options{})
	rec := findNode(p, "Main.fact/recursion")
	if rec == nil {
		t.Fatal("no recursion node for fact")
	}
	if rec.Invocations() != 2 {
		t.Errorf("fact invocations = %d, want 2 (two outermost calls)", rec.Invocations())
	}
	// fact(5): 4 recursive re-entries; fact(3): 2.
	if rec.History[0].Cost(CostKey{Op: OpStep, Input: NoInput}) != 4 {
		t.Errorf("fact(5) steps = %d, want 4", rec.History[0].Cost(CostKey{Op: OpStep, Input: NoInput}))
	}
	if rec.History[1].Cost(CostKey{Op: OpStep, Input: NoInput}) != 2 {
		t.Errorf("fact(3) steps = %d, want 2", rec.History[1].Cost(CostKey{Op: OpStep, Input: NoInput}))
	}
	// Folding: the recursion node has no recursion-node child for itself.
	for _, c := range rec.Children {
		if c.Kind == KindRecursion && c.ID == rec.ID {
			t.Error("recursive calls must fold into the header node")
		}
	}
}

func TestMutualRecursionFoldsIntoHeader(t *testing.T) {
	p := profile(t, `
class Main {
  static boolean isEven(int n) { if (n == 0) { return true; } return isOdd(n - 1); }
  static boolean isOdd(int n) { if (n == 0) { return false; } return isEven(n - 1); }
  public static void main() { boolean b = isEven(6); }
}`, Options{})
	even := findNode(p, "Main.isEven/recursion")
	if even == nil {
		t.Fatal("no node for isEven")
	}
	// isEven re-entered 3 times (n=6,4,2 then 0 returns true... entries at
	// 6 (initial), 4, 2, 0 => 3 re-entries).
	if got := even.TotalCost(OpStep); got != 3 {
		t.Errorf("isEven steps = %d, want 3", got)
	}
	if even.Invocations() != 1 {
		t.Errorf("isEven invocations = %d, want 1", even.Invocations())
	}
}

func TestRecursionWithInnerLoop(t *testing.T) {
	// A loop inside a recursive method: the loop node is a child of the
	// recursion node and its invocations nest correctly even across
	// recursion depths.
	p := profile(t, `
class Main {
  static void rec(int n) {
    if (n == 0) { return; }
    for (int i = 0; i < n; i++) { }
    rec(n - 1);
  }
  public static void main() { rec(3); }
}`, Options{})
	rec := findNode(p, "Main.rec/recursion")
	if rec == nil {
		t.Fatal("no recursion node")
	}
	if len(rec.Children) != 1 || rec.Children[0].Kind != KindLoop {
		t.Fatalf("recursion node children: %d", len(rec.Children))
	}
	loop := rec.Children[0]
	if loop.Invocations() != 3 {
		t.Errorf("loop invocations = %d, want 3", loop.Invocations())
	}
	if loop.TotalCost(OpStep) != 3+2+1 {
		t.Errorf("loop steps = %d, want 6", loop.TotalCost(OpStep))
	}
}

func TestStructureInputIdentifiedAndSized(t *testing.T) {
	p := profile(t, `
class Node { Node next; int v; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 8; i++) {
      Node n = new Node();
      n.next = head;
      head = n;
    }
    int count = 0;
    Node cur = head;
    while (cur != null) { cur = cur.next; count++; }
  }
}`, Options{})
	reg := p.Registry()
	ids := reg.CanonicalIDs()
	if len(ids) != 1 {
		t.Fatalf("canonical inputs = %v, want exactly 1 (one list)", ids)
	}
	in := reg.Input(ids[0])
	if in.MaxSize != 8 {
		t.Errorf("input MaxSize = %d, want 8", in.MaxSize)
	}
	if in.MaxTypeCounts["Node"] != 8 {
		t.Errorf("type counts = %v", in.MaxTypeCounts)
	}

	// The traversal loop's invocation must record size 8 and 8 GET costs.
	loops := p.Root().Children
	if len(loops) != 2 {
		t.Fatalf("root children = %d, want 2 loops", len(loops))
	}
	trav := loops[1]
	inv := trav.History[0]
	canonical := reg.Find(ids[0])
	foundSize := 0
	for _, e := range inv.Sizes {
		if reg.Find(int(e.Input)) == canonical && int(e.Size) > foundSize {
			foundSize = int(e.Size)
		}
	}
	if foundSize != 8 {
		t.Errorf("traversal invocation size = %d, want 8 (sizes=%v)", foundSize, inv.Sizes)
	}
	var gets int64
	for k, v := range inv.Costs() {
		if k.Op == OpGet && k.Type == "" {
			gets += v
		}
	}
	if gets != 8 {
		t.Errorf("traversal GETs = %d, want 8", gets)
	}
}

func TestConstructionDeferredIdentification(t *testing.T) {
	// Listing 4: during construction the first access sees size 1; the
	// deferred exit snapshot must measure the full structure.
	p := profile(t, `
class Node { Node next; }
class Main {
  public static void main() {
    Node list = null;
    for (int i = 0; i < 10; i++) {
      Node head = new Node();
      head.next = list;
      list = head;
    }
  }
}`, Options{Identify: DeferredIdentify})
	reg := p.Registry()
	ids := reg.CanonicalIDs()
	if len(ids) != 1 {
		t.Fatalf("inputs = %v, want 1", ids)
	}
	if got := reg.Input(ids[0]).MaxSize; got != 10 {
		t.Errorf("constructed list MaxSize = %d, want 10", got)
	}
	// The construction loop's PUT costs must be attributed to the input.
	loop := p.Root().Children[0]
	inv := loop.History[0]
	var puts int64
	for k, v := range inv.Costs() {
		if k.Op == OpPut && k.Type == "" && k.Input != NoInput {
			puts += v
		}
	}
	if puts != 10 {
		t.Errorf("PUTs attributed to input = %d, want 10", puts)
	}
}

func TestConstructionEagerIdentification(t *testing.T) {
	p := profile(t, `
class Node { Node next; }
class Main {
  public static void main() {
    Node list = null;
    for (int i = 0; i < 10; i++) {
      Node head = new Node();
      head.next = list;
      list = head;
    }
  }
}`, Options{Identify: EagerIdentify})
	ids := p.Registry().CanonicalIDs()
	if len(ids) != 1 {
		t.Fatalf("inputs = %v, want 1", ids)
	}
	if got := p.Registry().Input(ids[0]).MaxSize; got != 10 {
		t.Errorf("MaxSize = %d, want 10", got)
	}
}

func TestRecursiveConstructionMeasuredAtExit(t *testing.T) {
	// Listing 4's recursive variant: each PUTFIELD sees only the suffix;
	// the outermost exit must measure the whole list.
	p := profile(t, `
class Node { Node next; }
class Main {
  static Node construct(int size) {
    if (size == 0) { return null; }
    Node list = construct(size - 1);
    Node head = new Node();
    head.next = list;
    return head;
  }
  public static void main() { Node l = construct(12); }
}`, Options{})
	ids := p.Registry().CanonicalIDs()
	if len(ids) != 1 {
		t.Fatalf("inputs = %v, want 1", ids)
	}
	if got := p.Registry().Input(ids[0]).MaxSize; got != 12 {
		t.Errorf("MaxSize = %d, want 12", got)
	}
	rec := findNode(p, "Main.construct/recursion")
	if rec == nil {
		t.Fatal("no recursion node")
	}
	if rec.TotalCost(OpStep) != 12 {
		t.Errorf("construct steps = %d, want 12", rec.TotalCost(OpStep))
	}
	if rec.TotalCost(OpNew) != 12 {
		t.Errorf("NEW count = %d, want 12", rec.TotalCost(OpNew))
	}
}

func TestArrayInputCapacity(t *testing.T) {
	p := profile(t, `
class Main {
  public static void main() {
    int[] a = new int[100];
    for (int i = 0; i < 10; i++) { a[i] = i * 2; }
  }
}`, Options{SizeStrategy: snapshot.Capacity})
	ids := p.Registry().CanonicalIDs()
	if len(ids) != 1 {
		t.Fatalf("inputs = %v", ids)
	}
	if got := p.Registry().Input(ids[0]).MaxSize; got != 100 {
		t.Errorf("capacity strategy MaxSize = %d, want 100", got)
	}
	loop := p.Root().Children[0]
	if got := loop.TotalCost(OpArrStore); got != 10 {
		t.Errorf("array stores = %d, want 10", got)
	}
}

func TestArrayInputUniqueElements(t *testing.T) {
	// Listing 4's partially used array: unique strategy sees ~10 used
	// slots, not the capacity of 1000.
	p := profile(t, `
class Main {
  public static void main() {
    int[] values = new int[1000];
    for (int i = 0; i < 10; i++) { values[i] = i * 2; }
  }
}`, Options{SizeStrategy: snapshot.UniqueElements})
	ids := p.Registry().CanonicalIDs()
	in := p.Registry().Input(ids[0])
	if in.MaxSize != 10 {
		t.Errorf("unique strategy MaxSize = %d, want 10 (values 0,2,...,18)", in.MaxSize)
	}
}

func TestAllocatedByTracksConstructingNode(t *testing.T) {
	p := profile(t, `
class Node { Node next; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 3; i++) {
      Node n = new Node();
      n.next = head;
      head = n;
    }
  }
}`, Options{})
	loop := p.Root().Children[0]
	found := 0
	for id := uint64(1); id < 10; id++ {
		if p.AllocatedBy(id) == loop {
			found++
		}
	}
	if found != 3 {
		t.Errorf("3 nodes allocated by the loop, found %d", found)
	}
}

func TestIOCosts(t *testing.T) {
	p := profile(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 5; i++) {
      int x = readInput();
      writeOutput(x * 2);
    }
  }
}`, Options{})
	loop := p.Root().Children[0]
	if got := loop.TotalCost(OpIn); got != 5 {
		t.Errorf("IN = %d, want 5", got)
	}
	if got := loop.TotalCost(OpOut); got != 5 {
		t.Errorf("OUT = %d, want 5", got)
	}
}

func TestInsertionSortTreeShape(t *testing.T) {
	// The paper's running example (scaled down): the repetition tree must
	// contain the five loops of Figure 3 in the right nesting.
	p := profile(t, runningExampleSrc(20, 2), Options{})
	root := p.Root()
	// Figure 3: measure outer loop > measure inner loop > {constructRandom
	// loop, sort outer loop > sort inner loop}.
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 (measure outer)", len(root.Children))
	}
	measureOuter := root.Children[0]
	if len(measureOuter.Children) != 1 {
		t.Fatalf("measure outer children = %d, want 1 (measure inner)", len(measureOuter.Children))
	}
	measureInner := measureOuter.Children[0]
	if len(measureInner.Children) != 2 {
		t.Fatalf("measure inner children = %d, want 2 (construct + sort outer)", len(measureInner.Children))
	}
	total := countNodes(root)
	if total != 6 { // root + 5 loops
		t.Errorf("tree has %d nodes, want 6 (root + 5 loops, Figure 3)", total)
	}

	sortOuter := measureInner.Children[1]
	if len(sortOuter.Children) != 1 {
		t.Fatalf("sort outer children = %d, want 1 (sort inner)", len(sortOuter.Children))
	}
	// Sort outer is entered once per (size, rep) except for sizes 0 and 1,
	// where sort() returns before the loop: (20-2) sizes × 2 reps.
	if got := sortOuter.Invocations(); got != 36 {
		t.Errorf("sort outer invocations = %d, want 36", got)
	}
}

// runningExampleSrc generates the paper's Listing 1+2 in MJ with a
// configurable sweep.
func runningExampleSrc(maxSize, reps int) string {
	return `
class List {
  Node head; Node tail;
  public void sort() {
    if (head == null || head.next == null) { return; }
    Node firstUnsorted = head.next;
    while (firstUnsorted != null) {
      Node target = firstUnsorted;
      Node nextUnsorted = firstUnsorted.next;
      while (target.prev != null && target.prev.value > target.value) {
        Node candidate = target.prev;
        Node pred = candidate.prev;
        Node succ = target.next;
        if (pred != null) { pred.next = target; } else { head = target; }
        target.prev = pred;
        if (succ != null) { succ.prev = candidate; } else { tail = candidate; }
        candidate.next = succ;
        target.next = candidate;
        candidate.prev = target;
      }
      firstUnsorted = nextUnsorted;
    }
  }
  public void append(int value) {
    Node node = new Node(value);
    if (tail == null) { tail = node; head = tail; }
    else { tail.next = node; node.prev = tail; tail = tail.next; }
  }
}
class Node {
  Node prev; Node next; int value;
  Node(int value) { this.value = value; }
}
class Main {
  public static void main() {
    for (int size = 0; size < ` + itoa(maxSize) + `; size++) {
      for (int i = 0; i < ` + itoa(reps) + `; i++) {
        List list = new List();
        constructRandom(list, size);
        list.sort();
      }
    }
  }
  static void constructRandom(List list, int size) {
    for (int i = 0; i < size; i++) { list.append(rand(size)); }
  }
}`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestInsertionSortQuadraticSteps(t *testing.T) {
	// Random input: total steps of the sort inner loop over one sort of
	// size n is the number of inversions ≈ n²/4.
	p := profile(t, runningExampleSrc(30, 1), Options{})
	sortOuter := p.Root().Children[0].Children[0].Children[1]
	sortInner := sortOuter.Children[0]

	// Group inner invocations by their parent (sort outer) invocation and
	// sum steps per sort call.
	stepsPerSort := map[int]int64{}
	for _, inv := range sortInner.History {
		stepsPerSort[inv.ParentIndex] += inv.Cost(CostKey{Op: OpStep, Input: NoInput})
	}
	// The largest sort (n=29) must do more inner steps than a linear bound
	// would allow for random input, and fewer than the worst case.
	last := stepsPerSort[sortOuter.Invocations()-1]
	n := int64(29)
	if last <= n/2 {
		t.Errorf("sort of %d elements did only %d inner steps; expected Θ(n²/4)", n, last)
	}
	if last > n*(n-1)/2 {
		t.Errorf("inner steps %d exceed the inversion upper bound %d", last, n*(n-1)/2)
	}
}

func TestProfilerFinishIsIdempotentEnough(t *testing.T) {
	p := profile(t, `class Main { public static void main() { } }`, Options{})
	if p.Root().Invocations() != 1 {
		t.Errorf("root invocations = %d, want 1 after Finish", p.Root().Invocations())
	}
}
