package core

// Path-counter mode (§Ball–Larus across iterations): instead of streaming
// one event per structure access and loop iteration, the VM counts whole
// per-iteration paths and the profiler decodes the counters at loop exit.
// Two listener extensions carry the mode:
//
//   - SiteTouch fires once per access site per access epoch (a segment
//     between loop/method boundary events). It does everything an access
//     event does EXCEPT add costs: identify the input, note writes, take
//     the first-access size snapshot, and remember which input (or pending
//     group) the site resolved to.
//   - LoopPathCount delivers one counter at loop exit; the decode charges
//     STEP for back paths and the per-site access costs to the recorded
//     resolutions, multiplied by the path count.
//
// Where decode is exact (each site resolves to one input for the whole
// invocation), the resulting profile is identical to events mode.

import (
	"algoprof/internal/events"
	"algoprof/internal/pathdecode"
)

var _ events.PathListener = (*Profiler)(nil)

// siteMeta is the per-site dispatch metadata precomputed from the
// instrumenter's site table and plan.
type siteMeta struct {
	op    CostOp
	field int  // field id for field sites (typed-counter lookup)
	arr   bool // array site: typed counter keyed by the entity's type
	put   bool // write site: must NoteWriteTo before identification
	gated bool // plan wants this site's costs (mirrors events-mode gating)
}

// buildSiteMeta translates the instrumenter's site table into dispatch
// metadata. Gating mirrors the event-plan filter exactly, so decoded
// totals match what events mode would have streamed.
func buildSiteMeta(sites []pathdecode.Site, plan *events.Plan) []siteMeta {
	if len(sites) == 0 {
		return nil
	}
	metas := make([]siteMeta, len(sites))
	for i, s := range sites {
		m := siteMeta{field: s.Field}
		switch s.Kind {
		case pathdecode.SiteFieldGet:
			m.op = OpGet
		case pathdecode.SiteFieldPut:
			m.op, m.put = OpPut, true
		case pathdecode.SiteArrayLoad:
			m.op, m.arr = OpArrLoad, true
		case pathdecode.SiteArrayStore:
			m.op, m.arr, m.put = OpArrStore, true, true
		}
		if m.arr {
			m.gated = plan == nil || plan.Arrays
		} else {
			m.gated = plan == nil || plan.WantsField(s.Field)
		}
		metas[i] = m
	}
	return metas
}

// SiteTouch implements events.PathListener. It performs the non-counting
// half of a structure access — write note, input identification, size
// snapshot — and records the site's resolution on the current invocation
// so LoopPathCount can charge the counted costs later. It returns true
// once the site is resolved for this epoch (the VM then suppresses further
// calls until the next boundary), false while identification is deferred,
// so the pending group keeps tracking the last accessed entity exactly as
// events mode would.
func (p *Profiler) SiteTouch(site int, obj events.Entity) bool {
	p.tick()
	if site < 0 || site >= len(p.sites) {
		p.errorf("site touch out of range: site %d of %d", site, len(p.sites))
		return true
	}
	m := &p.sites[site]
	if !m.gated {
		return true
	}
	if m.put {
		p.reg.NoteWriteTo(obj)
	}
	inv := p.tn.cur()
	if inv == nil {
		return true
	}
	var tid int32
	if m.arr {
		tid = p.entityTypeID(obj)
	} else {
		tid = p.fieldTypeID(m.field)
	}
	id := p.reg.InputOf(obj)
	if id < 0 {
		if p.opts.Identify == EagerIdentify {
			obs := p.reg.Observe(obj)
			p.recordSize(inv, obs)
			id = obs.InputID
		} else {
			g := p.pendingFor(inv, obj)
			inv.setSiteRes(site, NoInput, tid, g)
			return false
		}
	}
	inv.setSiteRes(site, id, tid, nil)
	t := inv.touch(id)
	t.ref = obj
	if !t.measured {
		obs := p.reg.Observe(obj)
		p.recordSize(inv, obs)
	}
	return true
}

// LoopPathCount implements events.PathListener: the VM flushed one
// per-iteration path counter at loop exit (before the LoopExit event).
// Decode charges STEP for back paths and each on-path site's access costs
// to the input (or pending group) SiteTouch resolved it to.
func (p *Profiler) LoopPathCount(loopID, pathID int, count int64) {
	p.tick()
	if count <= 0 {
		return
	}
	var tbl *pathdecode.LoopTable
	if p.ins != nil {
		tbl = p.ins.PathTables[loopID]
	}
	if tbl == nil || pathID < 0 || pathID >= len(tbl.Paths) {
		p.errorf("path count for unknown loop %d path %d", loopID, pathID)
		return
	}
	node := p.tn
	if node.Kind != KindLoop || node.ID != loopID {
		// Counters are flushed just before LoopExit, so the loop is normally
		// the current node; fall back to the shadow stack (mirrors LoopBack).
		node = p.findOnStack(KindLoop, loopID)
		if node == nil {
			p.errorf("path count for inactive loop %d", loopID)
			return
		}
	}
	inv := node.cur()
	if inv == nil {
		return
	}
	spec := &tbl.Paths[pathID]
	if spec.Back {
		inv.costs.add(p.stepID, count)
	}
	for _, ls := range spec.Sites {
		s := &tbl.Sites[ls]
		if s.ID < 0 || s.ID >= len(p.sites) {
			p.errorf("path decode: loop %d site id %d out of range", loopID, s.ID)
			continue
		}
		m := &p.sites[s.ID]
		if !m.gated {
			continue
		}
		r := inv.siteResFor(s.ID)
		switch {
		case r == nil:
			// The path executed, so the site must have been touched; a
			// missing resolution means events were lost (e.g. degradation).
			// Keep the totals by charging without an input.
			p.errorf("path decode: site %d of loop %d never resolved", s.ID, loopID)
			inv.costs.add(p.keys.id(CostKey{Op: m.op, Input: NoInput}), count)
		case r.group != nil:
			r.group.costs.add(p.keys.id(CostKey{Op: m.op, Input: NoInput}), count)
			if r.tid >= 0 {
				r.group.costs.add(p.keys.typedID(m.op, NoInput, r.tid), count)
			}
		default:
			inv.costs.add(p.keys.id(CostKey{Op: m.op, Input: r.input}), count)
			if r.tid >= 0 {
				inv.costs.add(p.keys.typedID(m.op, r.input, r.tid), count)
			}
		}
	}
}
