package core

import (
	"sync"
	"testing"

	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// TestEventCountConcurrentRead is the -race regression test for the
// event-counter read: the daemon polls EventCount for quota accounting
// and progress heartbeats while a pipelined consumer goroutine is still
// ticking the profiler. The counter is atomic, so a mid-run read must be
// safe (and monotonic) — before the fix this was a plain uint64 and the
// race detector flagged exactly this pattern.
func TestEventCountConcurrentRead(t *testing.T) {
	const src = `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 20000; i++) { s = s + i; }
    print(s);
  }
}`
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	p := NewProfiler(ins, Options{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		// The reader: hammers EventCount until the run finishes, checking
		// monotonicity along the way.
		defer wg.Done()
		var last uint64
		for {
			n := p.EventCount()
			if n < last {
				t.Errorf("EventCount went backwards: %d after %d", n, last)
				return
			}
			last = n
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	m := vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	close(done)
	wg.Wait()
	p.Finish()
	if p.EventCount() == 0 {
		t.Fatal("no events counted")
	}
}
