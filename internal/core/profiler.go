// Package core implements the algorithmic profiler itself: it consumes the
// event stream of an instrumented execution and incrementally builds the
// repetition tree (the dynamic loop and recursion nesting tree of §2.1),
// attributing high-level costs (algorithmic steps, structure reads/writes,
// element creations, input reads, output writes — §2.2) and input sizes
// (§2.4, §3.4) to each repetition invocation, following the dynamic
// analysis of §3.2 of the AlgoProf paper.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"algoprof/internal/events"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/types"
	"algoprof/internal/rectype"
	"algoprof/internal/snapshot"
)

// CostOp is a primitive operation of the cost model (§2.2).
type CostOp uint8

// Cost model operations.
const (
	OpStep     CostOp = iota // one loop iteration or recursive call
	OpArrLoad                // array element read
	OpArrStore               // array element write
	OpGet                    // recursive-structure reference read
	OpPut                    // recursive-structure reference write
	OpNew                    // recursive-type element creation
	OpIn                     // external input read
	OpOut                    // external output write
)

var costOpNames = [...]string{"STEP", "LOAD", "STORE", "GET", "PUT", "NEW", "IN", "OUT"}

// String names the operation like the paper's cost keys.
func (op CostOp) String() string { return costOpNames[op] }

// NoInput is the CostKey.Input for costs not tied to an identified input.
const NoInput = -1

// CostKey identifies one counter in a repetition's cost map, mirroring the
// paper's cost{...} notation: cost{STEP}, cost{input#1, LOAD},
// cost{input#3, Vertex, PUT}, cost{ListNode, NEW}.
type CostKey struct {
	Op    CostOp
	Input int    // input id, or NoInput
	Type  string // type qualifier ("" for untyped counters)
}

// String renders the key like the paper ("cost{input#3, Vertex, PUT}").
func (k CostKey) String() string {
	switch {
	case k.Input == NoInput && k.Type == "":
		return fmt.Sprintf("cost{%s}", k.Op)
	case k.Input == NoInput:
		return fmt.Sprintf("cost{%s, %s}", k.Type, k.Op)
	case k.Type == "":
		return fmt.Sprintf("cost{input#%d, %s}", k.Input, k.Op)
	default:
		return fmt.Sprintf("cost{input#%d, %s, %s}", k.Input, k.Type, k.Op)
	}
}

// NodeKind distinguishes repetition tree nodes.
type NodeKind uint8

// Node kinds.
const (
	KindRoot NodeKind = iota
	KindLoop
	KindRecursion
)

// Invocation is the record of one completed execution of a repetition
// (one entrance-to-exit of a loop, one outermost call of a recursion).
// Keeping the full history per node is what allows cost-function inference
// (§3.3).
type Invocation struct {
	// Index is the invocation's ordinal at its node (0-based).
	Index int
	// ParentIndex is the index of the parent node's invocation that was
	// active when this invocation ran; used to combine child costs into
	// parent invocations (§2.6).
	ParentIndex int
	// Sizes lists input ids (non-canonical; resolve via the registry) with
	// the maximum size measured during this invocation, in first-measured
	// order. A compact pair slice instead of a map: invocations rarely
	// measure more than a couple of inputs, and History keeps one of these
	// per recorded invocation.
	Sizes []SizeEntry

	// costs holds the counters as a dense interned-id vector; the map view
	// is materialized only on demand (Costs).
	costs costVec
	keys  *costInterner
}

// SizeEntry is one measured input size in Invocation.Sizes.
type SizeEntry struct {
	Input int32
	Size  int32
}

// Costs materializes the invocation's cost counters as a map. Counters
// live in a dense interned-id vector during profiling; call this only at
// report time.
func (inv Invocation) Costs() map[CostKey]int64 {
	if inv.keys == nil {
		return map[CostKey]int64{}
	}
	return inv.costs.materialize(inv.keys)
}

// Cost returns one counter without materializing the map.
func (inv Invocation) Cost(k CostKey) int64 {
	if inv.keys == nil {
		return 0
	}
	id, ok := inv.keys.lookup(k)
	if !ok {
		return 0
	}
	return inv.costs.get(id)
}

// EachCost visits every counter in first-recorded order.
func (inv Invocation) EachCost(f func(CostKey, int64)) {
	for _, c := range inv.costs.cells {
		f(inv.keys.keys[c.id], c.n)
	}
}

// NumCosts returns the number of distinct cost keys recorded.
func (inv Invocation) NumCosts() int { return len(inv.costs.cells) }

// Node is a repetition tree node.
type Node struct {
	Kind NodeKind
	// ID is the loop id (KindLoop) or method id (KindRecursion).
	ID     int
	Parent *Node
	// Children in creation order.
	Children []*Node

	// History holds one record per completed invocation (every k-th when
	// sampling is enabled).
	History []Invocation

	// totals aggregates costs over ALL invocations, independent of
	// sampling (interned; see Totals and TotalCost).
	totals costVec
	keys   *costInterner

	childIdx       map[childKey]*Node
	active         []*invocation // stack: same-node invocations can nest under recursion folding
	recursionDepth int
	started        int
}

type childKey struct {
	kind NodeKind
	id   int
}

// invocation is the mutable state of one active invocation.
type invocation struct {
	index       int
	parentIndex int

	costs costVec
	sizes []SizeEntry

	// touched tracks, per input accessed in this invocation and in
	// first-access order, the most recently accessed entity (the starting
	// point for the exit remeasurement, §3.4) and the input's write epoch
	// at its last measurement (so invocations whose inputs were not
	// written skip the exit re-traversal). An invocation touches a
	// handful of inputs at most, so an insertion-ordered association list
	// replaces two maps — and makes the remeasurement order deterministic.
	touched []touchedInput

	// Deferred identification of not-yet-known structures (§3.4,
	// RemeasureInputs): costs are parked and resolved at exit from the
	// first/last accessed references. Groups are keyed by the accessed
	// entity's type name so that structures of different kinds built
	// interleaved in one repetition do not contaminate each other;
	// multi-class structures split across groups re-merge in the registry
	// through snapshot overlap.
	pending map[string]*pendingGroup

	// siteRes records, per path-counted access site touched during this
	// invocation, what the site resolved to — an identified input or a
	// still-pending group. The decode of the loop's path counters
	// (LoopPathCount) charges each site's per-access costs there.
	siteRes []siteResolution
}

// siteResolution is one site's input resolution within an invocation.
type siteResolution struct {
	site  int
	input int   // resolved input id (unused when group != nil)
	tid   int32 // interned type id for typed counters, -1 untyped
	group *pendingGroup
}

// setSiteRes records or overwrites the invocation's resolution for a site.
func (inv *invocation) setSiteRes(site, input int, tid int32, g *pendingGroup) {
	for i := range inv.siteRes {
		if inv.siteRes[i].site == site {
			inv.siteRes[i] = siteResolution{site: site, input: input, tid: tid, group: g}
			return
		}
	}
	inv.siteRes = append(inv.siteRes, siteResolution{site: site, input: input, tid: tid, group: g})
}

// siteResFor returns the invocation's resolution for a site, or nil.
func (inv *invocation) siteResFor(site int) *siteResolution {
	for i := range inv.siteRes {
		if inv.siteRes[i].site == site {
			return &inv.siteRes[i]
		}
	}
	return nil
}

// touchedInput is one input's per-invocation measurement state.
type touchedInput struct {
	id       int
	ref      events.Entity // last accessed entity; nil if only measured
	epoch    uint64        // input epoch at last measurement
	measured bool
}

// touch returns the invocation's entry for input id, appending one.
func (inv *invocation) touch(id int) *touchedInput {
	for i := range inv.touched {
		if inv.touched[i].id == id {
			return &inv.touched[i]
		}
	}
	inv.touched = append(inv.touched, touchedInput{id: id})
	return &inv.touched[len(inv.touched)-1]
}

// pendingGroup parks costs for one not-yet-identified structure kind.
// Costs are interned with Input == NoInput; resolution rewrites them to
// the identified input id.
type pendingGroup struct {
	costs costVec
	first events.Entity
	last  events.Entity
}

func (p *Profiler) pendingFor(inv *invocation, e events.Entity) *pendingGroup {
	if inv.pending == nil {
		inv.pending = map[string]*pendingGroup{}
	}
	key := e.TypeName()
	g := inv.pending[key]
	if g == nil {
		g = p.newPendingGroup()
		g.first = e
		inv.pending[key] = g
	}
	g.last = e
	return g
}

func (n *Node) getOrCreateChild(kind NodeKind, id int) *Node {
	if n.childIdx == nil {
		n.childIdx = map[childKey]*Node{}
	}
	k := childKey{kind, id}
	if c, ok := n.childIdx[k]; ok {
		return c
	}
	c := &Node{Kind: kind, ID: id, Parent: n}
	n.childIdx[k] = c
	n.Children = append(n.Children, c)
	return c
}

// cur returns the node's innermost active invocation, or nil.
func (n *Node) cur() *invocation {
	if len(n.active) == 0 {
		return nil
	}
	return n.active[len(n.active)-1]
}

// Invocations returns the number of recorded invocations (all of them,
// unless sampling dropped some).
func (n *Node) Invocations() int { return len(n.History) }

// Started returns the number of begun invocations, independent of
// sampling.
func (n *Node) Started() int { return n.started }

// ActiveCount returns the number of in-flight (not yet finalized)
// invocations. Zero for every node after a balanced run plus Finish; the
// invariant verifier checks exactly that.
func (n *Node) ActiveCount() int { return len(n.active) }

// Totals materializes the node's aggregate cost counters (over ALL
// invocations, independent of sampling) as a map.
func (n *Node) Totals() map[CostKey]int64 {
	if n.keys == nil {
		return map[CostKey]int64{}
	}
	return n.totals.materialize(n.keys)
}

// TotalCost sums a cost op over all invocations (exact even under
// sampling). Only untyped keys are summed (every operation is recorded
// under an untyped key plus optional typed refinements, so this never
// double counts).
func (n *Node) TotalCost(op CostOp) int64 {
	var sum int64
	for _, c := range n.totals.cells {
		k := n.keys.keys[c.id]
		if k.Op == op && k.Type == "" {
			sum += c.n
		}
	}
	return sum
}

// IdentifyMode selects when unknown structures are snapshotted (§3.4).
type IdentifyMode int

// Identification modes.
const (
	// DeferredIdentify implements the paper's RemeasureInputs
	// optimization: accesses to not-yet-identified structures are parked
	// and resolved by two snapshots (first and last accessed reference)
	// at repetition exit. Constructions cost O(n) instead of O(n²).
	DeferredIdentify IdentifyMode = iota
	// EagerIdentify snapshots at every access of an unknown structure —
	// the unoptimized variant, kept for the overhead ablation.
	EagerIdentify
)

// Options configure a Profiler.
type Options struct {
	// Identify selects deferred (default) or eager input identification.
	Identify IdentifyMode
	// SizeStrategy selects array size measurement (default Capacity).
	SizeStrategy snapshot.Strategy
	// Criterion selects the snapshot equivalence criterion (default
	// SomeElements, the paper's choice).
	Criterion snapshot.Criterion
	// SampleEvery keeps only every k-th invocation record per repetition
	// node (0 or 1 keeps all). Totals stay exact; cost-function series
	// thin out proportionally. Implements the paper's §3.3 suggestion for
	// reducing the profiler's memory footprint.
	SampleEvery int
	// DisableMemo turns off the registry's incremental snapshot memo
	// (ablation: every observation re-traverses its structure, the
	// paper's measured behaviour).
	DisableMemo bool
	// MaxEvents degrades the profiler after this many consumed events
	// (0 = unlimited): recording switches to deterministic invocation
	// sampling so retained history stops growing with run length, while
	// per-node totals stay exact. The tripped limit is reported by
	// DegradedReasons.
	MaxEvents uint64
	// MaxLiveBytes bounds the profiler's approximate live memory —
	// recorded invocation history plus the input registry (0 =
	// unlimited). Each time the estimate exceeds the bound the dynamic
	// sampling interval doubles and already-recorded history is shed
	// deterministically (records with Index % interval != 0 drop), so a
	// run of any length converges to a bounded, still-fittable profile.
	MaxLiveBytes int64
}

// Profiler consumes events and builds the repetition tree. It implements
// events.Listener.
type Profiler struct {
	ins  *instrument.Instrumented // nil for custom (non-MJ) frontends
	reg  *snapshot.Registry
	opts Options

	nameFn      func(NodeKind, int) string
	fieldTypeFn func(int) string

	root  *Node
	tn    *Node   // current repetition tree node
	stack []*Node // shadow stack (§3.2)

	// allocatedBy records the repetition node active at each entity's
	// allocation in a dense base-offset slice keyed by entity id (ids are
	// monotonic and never reused); the classifier uses it to tell
	// constructions from modifications.
	abBase      uint64
	allocatedBy []*Node

	// keys interns CostKeys; stepID is the pre-interned id of cost{STEP},
	// the single hottest counter.
	keys   *costInterner
	stepID int32

	// sites is the per-site dispatch metadata for path-counter mode
	// (empty outside it); indexed by the instrumenter's site id.
	sites []siteMeta

	// invFree / pgFree recycle invocation and pending-group storage.
	invFree []*invocation
	pgFree  []*pendingGroup

	// ftTIDs caches interned type ids of fieldTypeFn results by field id
	// (ftKnown marks resolved entries; -1 means untyped).
	ftTIDs  []int32
	ftKnown []bool

	// etTIDs caches interned type ids per entity id in a dense base-offset
	// table (0 = unknown, else tid + 2).
	etBase uint64
	etTIDs []int32

	// events counts consumed listener events. It is atomic because
	// EventCount is read from other goroutines (service stats, quota
	// charging) while a pipelined consumer is still ticking it; everything
	// else in the struct stays single-goroutine.
	events atomic.Uint64

	// liveBytes estimates the
	// retained history footprint (maintained only under MaxLiveBytes).
	// dynSample is the dynamic invocation sampling interval installed
	// when a limit trips (0 = full fidelity); degraded lists the tripped
	// limits in trip order. histNodes tracks nodes with recorded history
	// so shedHistory can revisit them without walking the whole tree.
	liveBytes int64
	dynSample int
	degraded  []string
	histNodes []*Node

	errs []error
}

var _ events.Listener = (*Profiler)(nil)

// NewProfiler creates a profiler for one instrumented MJ execution.
func NewProfiler(ins *instrument.Instrumented, opts Options) *Profiler {
	p := newProfiler(ins.RecTypes, opts)
	p.ins = ins
	p.sites = buildSiteMeta(ins.Sites, ins.Plan)
	p.nameFn = func(kind NodeKind, id int) string {
		switch kind {
		case KindLoop:
			return ins.LoopByID(id).Name()
		case KindRecursion:
			return ins.Prog.Sem.MethodByID(id).QualifiedName() + "/recursion"
		}
		return "Program"
	}
	p.fieldTypeFn = func(fieldID int) string {
		f := ins.Prog.Sem.FieldByID(fieldID)
		t := f.Type
		for t.Kind == types.KArray {
			t = t.Elem
		}
		return t.String()
	}
	return p
}

// NewCustomProfiler creates a profiler for a non-MJ frontend (e.g. the
// probe API for natively instrumented Go code). rt drives structure
// traversal (which field ids are recursive links), nameFn labels
// repetition nodes, and fieldTypeFn labels field ids for typed cost keys.
func NewCustomProfiler(rt *rectype.Result,
	nameFn func(NodeKind, int) string,
	fieldTypeFn func(int) string,
	opts Options) *Profiler {

	p := newProfiler(rt, opts)
	p.nameFn = nameFn
	p.fieldTypeFn = fieldTypeFn
	return p
}

func newProfiler(rt *rectype.Result, opts Options) *Profiler {
	reg := snapshot.NewRegistryWith(rt, opts.SizeStrategy, opts.Criterion)
	if opts.DisableMemo {
		reg.SetMemoization(false)
	}
	p := &Profiler{
		reg:  reg,
		opts: opts,
		root: &Node{Kind: KindRoot, ID: -1},
		keys: newCostInterner(),
	}
	p.stepID = p.keys.id(CostKey{Op: OpStep, Input: NoInput})
	p.root.active = []*invocation{{index: 0, parentIndex: 0}}
	p.root.started = 1
	p.tn = p.root
	p.stack = []*Node{p.root}
	return p
}

// NodeSourceLine returns the source line of a repetition node's header
// (loops only; 0 when unknown or for non-MJ frontends).
func (p *Profiler) NodeSourceLine(n *Node) int {
	if p.ins == nil || n.Kind != KindLoop {
		return 0
	}
	return p.ins.LoopByID(n.ID).Line
}

// NodeName renders a human-readable name for a repetition node.
func (p *Profiler) NodeName(n *Node) string {
	if n.Kind == KindRoot {
		return "Program"
	}
	if p.nameFn == nil {
		return fmt.Sprintf("%v#%d", n.Kind, n.ID)
	}
	return p.nameFn(n.Kind, n.ID)
}

// Registry exposes the input registry (for reporting and analysis).
func (p *Profiler) Registry() *snapshot.Registry { return p.reg }

// Instrumented exposes the static instrumentation metadata.
func (p *Profiler) Instrumented() *instrument.Instrumented { return p.ins }

// Root returns the repetition tree root.
func (p *Profiler) Root() *Node { return p.root }

// AllocatedBy returns the repetition node that allocated entity id, or nil.
func (p *Profiler) AllocatedBy(id uint64) *Node {
	if p.allocatedBy == nil || id < p.abBase {
		return nil
	}
	off := id - p.abBase
	if off >= uint64(len(p.allocatedBy)) {
		return nil
	}
	return p.allocatedBy[off]
}

// Allocations returns the full entity-id → allocating-node relation,
// materialized as a map. Call at report time only; profiling stores the
// relation as a dense slice.
func (p *Profiler) Allocations() map[uint64]*Node {
	m := make(map[uint64]*Node, len(p.allocatedBy))
	for off, n := range p.allocatedBy {
		if n != nil {
			m[p.abBase+uint64(off)] = n
		}
	}
	return m
}

// Errors returns internal consistency problems detected during profiling.
func (p *Profiler) Errors() []error { return p.errs }

// CostKeys returns a copy of the interned cost-key table in dense-id
// order: every distinct counter the run touched. Run manifests persist it
// so stored profiles expose their cost vocabulary without replaying.
func (p *Profiler) CostKeys() []CostKey {
	return append([]CostKey(nil), p.keys.keys...)
}

// Finish finalizes the root invocation. Call once after the program run.
func (p *Profiler) Finish() {
	for p.tn != p.root && len(p.stack) > 1 {
		// Unbalanced events (program aborted mid-run): close out.
		p.errs = append(p.errs, fmt.Errorf("core: node %v still active at finish", p.tn.Kind))
		p.exitCurrent()
	}
	if inv := p.root.cur(); inv != nil {
		p.finalize(p.root)
	}
}

func (p *Profiler) errorf(format string, args ...any) {
	if len(p.errs) < 100 {
		p.errs = append(p.errs, fmt.Errorf("core: "+format, args...))
	}
}

// ---------------------------------------------------------------------------
// Resource limits and graceful degradation

// initialDynSample is the sampling interval installed when a limit first
// trips. Deliberately small: degradation should be gentle, doubling only
// under continued memory pressure.
const initialDynSample = 16

// EventCount returns the number of listener events consumed so far. Safe
// to call from any goroutine, including while the run is in flight.
func (p *Profiler) EventCount() uint64 { return p.events.Load() }

// LiveBytes returns the approximate retained bytes of recorded invocation
// history (excluding the registry). Maintained only when MaxLiveBytes is
// set; 0 otherwise.
func (p *Profiler) LiveBytes() int64 { return p.liveBytes }

// SampleInterval returns the effective invocation sampling interval:
// the configured SampleEvery or the dynamic interval installed by a
// tripped limit, whichever is coarser (≤ 1 means every invocation).
func (p *Profiler) SampleInterval() int {
	if p.dynSample > p.opts.SampleEvery {
		return p.dynSample
	}
	return p.opts.SampleEvery
}

// DegradedReasons returns the limits that tripped during the run, in trip
// order and without duplicates; empty for a full-fidelity run.
func (p *Profiler) DegradedReasons() []string {
	return append([]string(nil), p.degraded...)
}

// Degraded reports whether any limit tripped.
func (p *Profiler) Degraded() bool { return len(p.degraded) > 0 }

// tick counts one consumed event and trips the event limit exactly once.
// Every events.Listener method calls it first.
func (p *Profiler) tick() {
	n := p.events.Add(1)
	if m := p.opts.MaxEvents; m > 0 && n == m+1 {
		p.degrade("max-events")
	}
}

// degrade records a tripped limit and coarsens the dynamic sampling
// interval: installed at initialDynSample on the first trip, doubled on
// every further one. Already-recorded history is re-thinned to the new
// interval so memory actually shrinks, not just stops growing.
func (p *Profiler) degrade(reason string) {
	seen := false
	for _, r := range p.degraded {
		if r == reason {
			seen = true
			break
		}
	}
	if !seen {
		p.degraded = append(p.degraded, reason)
	}
	if p.dynSample == 0 {
		p.dynSample = initialDynSample
	} else if p.dynSample < 1<<30 {
		p.dynSample *= 2
	}
	p.shedHistory()
}

// shedHistory drops recorded invocations whose Index is not a multiple of
// the dynamic sampling interval. The rule is deterministic (a function of
// the index alone), so a degraded recording and its replay shed the same
// records; index 0 always survives, so no node loses its history
// entirely. liveBytes is recomputed from what remains.
func (p *Profiler) shedHistory() {
	if p.dynSample <= 1 {
		return
	}
	var total int64
	for _, n := range p.histNodes {
		kept := n.History[:0]
		for _, inv := range n.History {
			if inv.Index%p.dynSample != 0 {
				continue
			}
			kept = append(kept, inv)
			if p.opts.MaxLiveBytes > 0 {
				total += invBytes(inv.costs, inv.Sizes)
			}
		}
		for i := len(kept); i < len(n.History); i++ {
			n.History[i] = Invocation{} // release shed records' storage
		}
		n.History = kept
	}
	p.liveBytes = total
}

// invBytes estimates the retained footprint of one recorded invocation:
// struct and map headers plus per-entry costs of the cost vector and size
// map. Coarse by design — the limit check needs proportionality, not
// accounting.
func invBytes(costs costVec, sizes []SizeEntry) int64 {
	return 96 + int64(len(costs.cells))*16 + int64(len(sizes))*8
}

// begin starts a new invocation of node under the current parent context.
func (p *Profiler) begin(node *Node) {
	parentInv := 0
	if node.Parent != nil {
		if pi := node.Parent.cur(); pi != nil {
			parentInv = pi.index
		}
	}
	node.active = append(node.active, p.newInvocation(node.started, parentInv))
	node.started++
}

// finalize completes the node's innermost invocation: remeasure inputs,
// resolve pending costs, append to history (§3.3).
func (p *Profiler) finalize(node *Node) {
	inv := node.cur()
	if inv == nil {
		p.errorf("finalize without active invocation")
		return
	}
	node.active = node.active[:len(node.active)-1]
	p.remeasure(inv)
	node.keys = p.keys
	for _, c := range inv.costs.cells {
		node.totals.add(c.id, c.n)
	}
	if k := p.SampleInterval(); k > 1 && inv.index%k != 0 {
		// Sampled out: totals kept, record dropped, storage recycled.
		p.recycle(inv)
		return
	}
	if len(node.History) == 0 {
		// Index 0 always passes the sampling rule and shedHistory never
		// drops it, so each node registers here exactly once.
		p.histNodes = append(p.histNodes, node)
	}
	// The record gets exact-size copies of the cost cells and size entries
	// so the invocation's scratch storage (and its grown capacity) can be
	// recycled; abandoning the scratch to the record would force the
	// free-listed shell to re-grow from nil on every reuse.
	cells := inv.costs.cells
	if len(cells) > 0 {
		cells = append(make([]costCell, 0, len(cells)), cells...)
	}
	sizes := inv.sizes
	if len(sizes) > 0 {
		sizes = append(make([]SizeEntry, 0, len(sizes)), sizes...)
	}
	node.History = append(node.History, Invocation{
		Index:       inv.index,
		ParentIndex: inv.parentIndex,
		Sizes:       sizes,
		costs:       costVec{cells: cells},
		keys:        p.keys,
	})
	if p.opts.MaxLiveBytes > 0 {
		p.liveBytes += invBytes(inv.costs, inv.sizes)
		if p.liveBytes+p.reg.ApproxBytes() > p.opts.MaxLiveBytes {
			p.degrade("max-live-bytes")
		}
	}
	p.recycle(inv)
}

// remeasure implements RemeasureInputs (§3.4): at repetition exit, take a
// final snapshot of each touched input (starting from the last accessed
// reference) and resolve deferred identifications.
func (p *Profiler) remeasure(inv *invocation) {
	for i := range inv.touched {
		t := &inv.touched[i]
		if t.ref == nil {
			continue // measured through another input's snapshot; no own root
		}
		if t.measured && t.epoch == p.reg.InputEpoch(t.id) {
			continue // nothing written into this input since the last measurement
		}
		obs := p.reg.Observe(t.ref)
		p.recordSize(inv, obs)
	}
	if len(inv.pending) > 0 {
		keys := make([]string, 0, len(inv.pending))
		for k := range inv.pending {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			g := inv.pending[key]
			if g.first != nil && g.first != g.last {
				// The first accessed reference may see a different fragment
				// (Listing 4); observing both lets overlap unification join
				// them.
				p.reg.Observe(g.first)
			}
			obs := p.reg.Observe(g.last)
			p.recordSize(inv, obs)
			for _, c := range g.costs.cells {
				k := p.keys.keys[c.id]
				k.Input = obs.InputID
				inv.costs.add(p.keys.id(k), c.n)
			}
			g.costs.reset()
			g.first, g.last = nil, nil
			p.pgFree = append(p.pgFree, g)
		}
		clear(inv.pending)
	}
}

func (p *Profiler) recordSize(inv *invocation, obs snapshot.Observation) {
	found := false
	for i := range inv.sizes {
		if inv.sizes[i].Input == int32(obs.InputID) {
			if int32(obs.Size) > inv.sizes[i].Size {
				inv.sizes[i].Size = int32(obs.Size)
			}
			found = true
			break
		}
	}
	if !found {
		inv.sizes = append(inv.sizes, SizeEntry{Input: int32(obs.InputID), Size: int32(obs.Size)})
	}
	t := inv.touch(obs.InputID)
	t.measured = true
	t.epoch = p.reg.InputEpoch(obs.InputID)
}

// exitCurrent force-exits the current node (used only for error recovery).
func (p *Profiler) exitCurrent() {
	p.finalize(p.tn)
	if len(p.stack) > 1 {
		p.stack = p.stack[:len(p.stack)-1]
	}
	p.tn = p.stack[len(p.stack)-1]
}

// ---------------------------------------------------------------------------
// events.Listener: repetition tree construction (§3.2)

// LoopEntry implements events.Listener.
func (p *Profiler) LoopEntry(loopID int) {
	p.tick()
	node := p.tn.getOrCreateChild(KindLoop, loopID)
	p.tn = node
	p.begin(node)
	p.stack = append(p.stack, node)
}

// LoopBack implements events.Listener.
func (p *Profiler) LoopBack(loopID int) {
	p.tick()
	node := p.tn
	if node.Kind != KindLoop || node.ID != loopID {
		node = p.findOnStack(KindLoop, loopID)
		if node == nil {
			p.errorf("back edge for inactive loop %d", loopID)
			return
		}
	}
	if inv := node.cur(); inv != nil {
		inv.costs.add(p.stepID, 1)
	}
}

// LoopExit implements events.Listener.
func (p *Profiler) LoopExit(loopID int) {
	p.tick()
	if p.tn.Kind != KindLoop || p.tn.ID != loopID {
		p.errorf("loop exit %d while at %v/%d", loopID, p.tn.Kind, p.tn.ID)
		return
	}
	p.finalize(p.tn)
	p.stack = p.stack[:len(p.stack)-1]
	p.tn = p.stack[len(p.stack)-1]
}

// MethodEntry implements events.Listener.
func (p *Profiler) MethodEntry(methodID int) {
	p.tick()
	if header := p.findOnPathToRoot(methodID); header != nil {
		// Recursive re-entry: fold into the header node and count one
		// algorithmic step.
		p.tn = header
		if inv := header.cur(); inv != nil {
			inv.costs.add(p.stepID, 1)
		}
	} else {
		p.tn = p.tn.getOrCreateChild(KindRecursion, methodID)
	}
	if p.tn.recursionDepth == 0 {
		p.begin(p.tn)
	}
	p.tn.recursionDepth++
	p.stack = append(p.stack, p.tn)
}

// MethodExit implements events.Listener.
func (p *Profiler) MethodExit(methodID int) {
	p.tick()
	node := p.tn
	if node.Kind != KindRecursion || node.ID != methodID {
		p.errorf("method exit %d while at %v/%d", methodID, node.Kind, node.ID)
		return
	}
	node.recursionDepth--
	if node.recursionDepth == 0 {
		p.finalize(node)
	}
	p.stack = p.stack[:len(p.stack)-1]
	p.tn = p.stack[len(p.stack)-1]
}

func (p *Profiler) findOnPathToRoot(methodID int) *Node {
	for n := p.tn; n != nil; n = n.Parent {
		if n.Kind == KindRecursion && n.ID == methodID {
			return n
		}
	}
	return nil
}

func (p *Profiler) findOnStack(kind NodeKind, id int) *Node {
	for i := len(p.stack) - 1; i >= 0; i-- {
		if p.stack[i].Kind == kind && p.stack[i].ID == id {
			return p.stack[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// events.Listener: cost and input tracking (§3.3, §3.4)

// structureAccess handles a read or write of a recursive structure link.
// tid is the interned type id qualifying the typed counter (< 0: untyped
// only).
func (p *Profiler) structureAccess(obj events.Entity, op CostOp, tid int32) {
	inv := p.tn.cur()
	if inv == nil {
		return
	}
	id := p.reg.InputOf(obj)
	if id < 0 {
		if p.opts.Identify == EagerIdentify {
			obs := p.reg.Observe(obj)
			p.recordSize(inv, obs)
			id = obs.InputID
		} else {
			g := p.pendingFor(inv, obj)
			g.costs.add(p.keys.id(CostKey{Op: op, Input: NoInput}), 1)
			if tid >= 0 {
				g.costs.add(p.keys.typedID(op, NoInput, tid), 1)
			}
			return
		}
	}
	inv.costs.add(p.keys.id(CostKey{Op: op, Input: id}), 1)
	if tid >= 0 {
		inv.costs.add(p.keys.typedID(op, id, tid), 1)
	}
	t := inv.touch(id)
	t.ref = obj
	if !t.measured {
		// First access of this input in this invocation: snapshot (§3.4).
		obs := p.reg.Observe(obj)
		p.recordSize(inv, obs)
	}
}

// FieldGet implements events.Listener.
func (p *Profiler) FieldGet(obj events.Entity, fieldID int) {
	p.tick()
	p.structureAccess(obj, OpGet, p.fieldTypeID(fieldID))
}

// FieldPut implements events.Listener.
func (p *Profiler) FieldPut(obj events.Entity, fieldID int, _ events.Entity) {
	p.tick()
	p.reg.NoteWriteTo(obj)
	p.structureAccess(obj, OpPut, p.fieldTypeID(fieldID))
}

// ArrayLoad implements events.Listener.
func (p *Profiler) ArrayLoad(arr events.Entity) {
	p.tick()
	p.structureAccess(arr, OpArrLoad, p.entityTypeID(arr))
}

// ArrayStore implements events.Listener.
func (p *Profiler) ArrayStore(arr events.Entity, _ events.Entity) {
	p.tick()
	p.reg.NoteWriteTo(arr)
	p.structureAccess(arr, OpArrStore, p.entityTypeID(arr))
}

// Alloc implements events.Listener.
func (p *Profiler) Alloc(obj events.Entity, classID int) {
	p.tick()
	if inv := p.tn.cur(); inv != nil {
		inv.costs.add(p.keys.id(CostKey{Op: OpNew, Input: NoInput}), 1)
		if tid := p.entityTypeID(obj); tid >= 0 {
			inv.costs.add(p.keys.typedID(OpNew, NoInput, tid), 1)
		}
	}
	id := obj.EntityID()
	if p.allocatedBy == nil {
		p.abBase = id
	} else if id < p.abBase {
		shift := p.abBase - id
		grown := make([]*Node, uint64(len(p.allocatedBy))+shift)
		copy(grown[shift:], p.allocatedBy)
		p.allocatedBy, p.abBase = grown, id
	}
	off := id - p.abBase
	if off >= uint64(len(p.allocatedBy)) {
		if off < uint64(cap(p.allocatedBy)) {
			// The slice only grows, so capacity beyond len is still nil.
			p.allocatedBy = p.allocatedBy[:off+1]
		} else {
			newCap := 2 * cap(p.allocatedBy)
			if newCap < 64 {
				newCap = 64
			}
			if uint64(newCap) < off+1 {
				newCap = int(off + 1)
			}
			grown := make([]*Node, off+1, newCap)
			copy(grown, p.allocatedBy)
			p.allocatedBy = grown
		}
	}
	p.allocatedBy[off] = p.tn
}

// InputRead implements events.Listener.
func (p *Profiler) InputRead() {
	p.tick()
	if inv := p.tn.cur(); inv != nil {
		inv.costs.add(p.keys.id(CostKey{Op: OpIn, Input: NoInput}), 1)
	}
}

// OutputWrite implements events.Listener.
func (p *Profiler) OutputWrite() {
	p.tick()
	if inv := p.tn.cur(); inv != nil {
		inv.costs.add(p.keys.id(CostKey{Op: OpOut, Input: NoInput}), 1)
	}
}

// fieldTypeID returns the interned type id of the base type of the
// field's declared type (the paper's "by element type" qualifier, e.g.
// Vertex for a Vertex/Vertex[] field), or -1 for untyped. Results are
// cached per field id so the event hot path never re-renders or re-hashes
// type names.
func (p *Profiler) fieldTypeID(fieldID int) int32 {
	if p.fieldTypeFn == nil {
		return -1
	}
	if fieldID >= 0 && fieldID < len(p.ftKnown) && p.ftKnown[fieldID] {
		return p.ftTIDs[fieldID]
	}
	tid := int32(-1)
	if name := p.fieldTypeFn(fieldID); name != "" {
		tid = p.keys.typeID(name)
	}
	if fieldID >= 0 {
		for len(p.ftKnown) <= fieldID {
			p.ftKnown = append(p.ftKnown, false)
			p.ftTIDs = append(p.ftTIDs, -1)
		}
		p.ftKnown[fieldID] = true
		p.ftTIDs[fieldID] = tid
	}
	return tid
}

// entityTypeID returns the interned type id of the entity's type name, or
// -1 for untyped. Cached in a dense table by entity id (ids come from
// monotonic counters), so repeated accesses of the same array resolve
// their typed counters without hashing the type string.
func (p *Profiler) entityTypeID(e events.Entity) int32 {
	id := e.EntityID()
	if p.etTIDs == nil {
		p.etBase = id
	} else if id < p.etBase {
		shift := p.etBase - id
		grown := make([]int32, uint64(len(p.etTIDs))+shift)
		copy(grown[shift:], p.etTIDs)
		p.etTIDs, p.etBase = grown, id
	}
	off := id - p.etBase
	if off >= uint64(len(p.etTIDs)) {
		if off < uint64(cap(p.etTIDs)) {
			// The table only grows, so capacity beyond len is still zero.
			p.etTIDs = p.etTIDs[:off+1]
		} else {
			newCap := 2 * cap(p.etTIDs)
			if newCap < 64 {
				newCap = 64
			}
			if uint64(newCap) < off+1 {
				newCap = int(off + 1)
			}
			grown := make([]int32, off+1, newCap)
			copy(grown, p.etTIDs)
			p.etTIDs = grown
		}
	}
	if v := p.etTIDs[off]; v != 0 {
		return v - 2
	}
	tid := int32(-1)
	if name := e.TypeName(); name != "" {
		tid = p.keys.typeID(name)
	}
	p.etTIDs[off] = tid + 2 // offset so 0 keeps meaning "unknown"
	return tid
}
