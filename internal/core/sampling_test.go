package core

import (
	"testing"
)

const samplingSrc = `
class Main {
  static void work(int n) {
    for (int i = 0; i < n; i++) { }
  }
  public static void main() {
    for (int r = 0; r < 40; r++) { work(r); }
  }
}`

func TestSamplingKeepsEveryKth(t *testing.T) {
	full := profile(t, samplingSrc, Options{})
	sampled := profile(t, samplingSrc, Options{SampleEvery: 4})

	fullLoop := findNode(full, "Main.work/loop1")
	sampLoop := findNode(sampled, "Main.work/loop1")
	if fullLoop.Invocations() != 40 {
		t.Fatalf("full invocations = %d", fullLoop.Invocations())
	}
	if sampLoop.Invocations() != 10 {
		t.Errorf("sampled invocations = %d, want 10 (every 4th of 40)", sampLoop.Invocations())
	}
	if sampLoop.Started() != 40 {
		t.Errorf("Started = %d, want 40 (sampling is record-only)", sampLoop.Started())
	}
}

func TestSamplingTotalsExact(t *testing.T) {
	full := profile(t, samplingSrc, Options{})
	sampled := profile(t, samplingSrc, Options{SampleEvery: 8})

	fullSteps := findNode(full, "Main.work/loop1").TotalCost(OpStep)
	sampSteps := findNode(sampled, "Main.work/loop1").TotalCost(OpStep)
	if fullSteps != sampSteps {
		t.Errorf("sampled totals %d != exact totals %d", sampSteps, fullSteps)
	}
	// Σ i for i in 0..39 = 780.
	if fullSteps != 780 {
		t.Errorf("total steps = %d, want 780", fullSteps)
	}
}

func TestSamplingPreservesRecordedIndices(t *testing.T) {
	sampled := profile(t, samplingSrc, Options{SampleEvery: 5})
	loop := findNode(sampled, "Main.work/loop1")
	for _, inv := range loop.History {
		if inv.Index%5 != 0 {
			t.Errorf("kept invocation index %d not a multiple of 5", inv.Index)
		}
	}
}

func TestSampleEveryOneKeepsAll(t *testing.T) {
	p := profile(t, samplingSrc, Options{SampleEvery: 1})
	if got := findNode(p, "Main.work/loop1").Invocations(); got != 40 {
		t.Errorf("SampleEvery=1 kept %d records, want 40", got)
	}
}
