package core

import "testing"

// benchKeys is a realistic per-invocation working set: a step counter plus
// a handful of per-input access counters, as a hot loop body produces.
func benchKeys() []CostKey {
	return []CostKey{
		{Op: OpStep, Input: NoInput},
		{Op: OpGet, Input: 3},
		{Op: OpPut, Input: 3},
		{Op: OpGet, Input: 7},
		{Op: OpArrLoad, Input: 11},
		{Op: OpArrStore, Input: 11},
	}
}

// BenchmarkCostMapIncrement is the pre-interning baseline: every count
// hashes a full CostKey into a map.
func BenchmarkCostMapIncrement(b *testing.B) {
	keys := benchKeys()
	m := map[CostKey]int64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m[keys[i%len(keys)]]++
	}
}

// BenchmarkInternedIncrement is the pipelined-counter path: keys are
// interned once, per-invocation counts are a dense-cell add by ID.
func BenchmarkInternedIncrement(b *testing.B) {
	in := newCostInterner()
	keys := benchKeys()
	ids := make([]int32, len(keys))
	for i, k := range keys {
		ids[i] = in.id(k)
	}
	var v costVec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.add(ids[i%len(ids)], 1)
	}
}

// BenchmarkInternLookup measures the emit-time key→ID resolution that
// replaces map hashing on the profiler's event path.
func BenchmarkInternLookup(b *testing.B) {
	in := newCostInterner()
	keys := benchKeys()
	for _, k := range keys {
		in.id(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.id(keys[i%len(keys)])
	}
}
