package core

// This file removes per-event map hashing from the profiler's consumer hot
// path. CostKeys are interned into a dense id table per profiler, and each
// invocation accumulates counts in a small vector indexed by interned id;
// the familiar map[CostKey]int64 views are materialized only at report
// time. Storage of dropped invocations is recycled through free lists.

const numCostOps = int(OpOut) + 1

// costInterner assigns dense ids to CostKeys. The untyped keys that
// dominate the event stream (cost{STEP}, cost{input#n, LOAD}, ...) resolve
// through a per-op slice indexed by input id, so the hot path does not even
// hash: only first-sighting and typed keys touch the map.
type costInterner struct {
	ids  map[CostKey]int32
	keys []CostKey
	// untyped[op][input+1] is the interned id + 1 of the untyped key
	// (op, input); 0 means not yet interned. Index 0 is NoInput.
	untyped [numCostOps][]int32

	// Typed keys resolve without hashing the type string: type names are
	// interned to dense ids once (typeID, cached by the call sites), and
	// typed[op][input+1][typeID] holds the cost id + 1.
	typeIDs   map[string]int32
	typeNames []string
	typed     [numCostOps][][]int32
}

func newCostInterner() *costInterner {
	return &costInterner{
		ids:     make(map[CostKey]int32, 64),
		typeIDs: make(map[string]int32, 16),
	}
}

// typeID interns a type name to a dense id. This hashes the string; call
// sites cache the result (per field id, per entity) so the event hot path
// resolves typed keys through typedID without hashing.
func (ci *costInterner) typeID(name string) int32 {
	if id, ok := ci.typeIDs[name]; ok {
		return id
	}
	id := int32(len(ci.typeNames))
	ci.typeIDs[name] = id
	ci.typeNames = append(ci.typeNames, name)
	return id
}

// typedID returns the cost id for (op, input, type) with the type given as
// an interned type id: three array indexings on the hot path.
func (ci *costInterner) typedID(op CostOp, input int, tid int32) int32 {
	slot := input + 1 // NoInput == -1 maps to slot 0
	if rows := ci.typed[op]; slot < len(rows) {
		if row := rows[slot]; int(tid) < len(row) {
			if v := row[tid]; v != 0 {
				return v - 1
			}
		}
	}
	id := ci.id(CostKey{Op: op, Input: input, Type: ci.typeNames[tid]})
	rows := ci.typed[op]
	if slot >= len(rows) {
		rows = append(rows, make([][]int32, slot+1-len(rows))...)
	}
	row := rows[slot]
	if int(tid) >= len(row) {
		row = append(row, make([]int32, int(tid)+1-len(row))...)
	}
	row[tid] = id + 1
	rows[slot] = row
	ci.typed[op] = rows
	return id
}

// id interns k, assigning the next dense id on first sight.
func (ci *costInterner) id(k CostKey) int32 {
	slot := k.Input + 1 // NoInput == -1 maps to slot 0
	if k.Type == "" && slot >= 0 {
		if row := ci.untyped[k.Op]; slot < len(row) {
			if v := row[slot]; v != 0 {
				return v - 1
			}
		}
	}
	id, ok := ci.ids[k]
	if !ok {
		id = int32(len(ci.keys))
		ci.ids[k] = id
		ci.keys = append(ci.keys, k)
	}
	if k.Type == "" && slot >= 0 {
		row := ci.untyped[k.Op]
		for len(row) <= slot {
			row = append(row, 0)
		}
		row[slot] = id + 1
		ci.untyped[k.Op] = row
	}
	return id
}

// lookup returns k's id without interning it.
func (ci *costInterner) lookup(k CostKey) (int32, bool) {
	id, ok := ci.ids[k]
	return id, ok
}

// costVecLinear is the cell count past which a costVec builds a spill
// index; a typical invocation touches only a handful of distinct keys.
const costVecLinear = 12

type costCell struct {
	id int32
	n  int64
}

// costVec accumulates counts by interned key id, preserving
// first-recorded order. Small vectors (the common case) use a linear scan;
// outliers get a position index.
type costVec struct {
	cells []costCell
	idx   map[int32]int32 // id -> cells position; nil until needed
}

func (v *costVec) add(id int32, n int64) {
	if v.idx != nil {
		if pos, ok := v.idx[id]; ok {
			v.cells[pos].n += n
			return
		}
		v.idx[id] = int32(len(v.cells))
		v.cells = append(v.cells, costCell{id, n})
		return
	}
	for i := range v.cells {
		if v.cells[i].id == id {
			v.cells[i].n += n
			return
		}
	}
	v.cells = append(v.cells, costCell{id, n})
	if len(v.cells) > costVecLinear {
		v.idx = make(map[int32]int32, 2*len(v.cells))
		for i := range v.cells {
			v.idx[v.cells[i].id] = int32(i)
		}
	}
}

func (v *costVec) get(id int32) int64 {
	if v.idx != nil {
		if pos, ok := v.idx[id]; ok {
			return v.cells[pos].n
		}
		return 0
	}
	for i := range v.cells {
		if v.cells[i].id == id {
			return v.cells[i].n
		}
	}
	return 0
}

// reset empties the vector, keeping the cell storage for reuse.
func (v *costVec) reset() {
	v.cells = v.cells[:0]
	v.idx = nil
}

// materialize builds the report-time map view.
func (v *costVec) materialize(keys *costInterner) map[CostKey]int64 {
	m := make(map[CostKey]int64, len(v.cells))
	for _, c := range v.cells {
		m[keys.keys[c.id]] = c.n
	}
	return m
}

// newInvocation takes an invocation shell from the free list, or allocates.
func (p *Profiler) newInvocation(index, parentIndex int) *invocation {
	if n := len(p.invFree); n > 0 {
		inv := p.invFree[n-1]
		p.invFree = p.invFree[:n-1]
		inv.index = index
		inv.parentIndex = parentIndex
		return inv
	}
	return &invocation{index: index, parentIndex: parentIndex}
}

// recycle returns a finished invocation's storage to the free lists.
// History records take exact-size copies of the cost cells and size
// entries, so every piece of scratch storage is reclaimed unconditionally.
func (p *Profiler) recycle(inv *invocation) {
	inv.costs.reset()
	inv.sizes = inv.sizes[:0]
	inv.touched = inv.touched[:0]
	inv.siteRes = inv.siteRes[:0]
	for _, g := range inv.pending {
		g.costs.reset()
		g.first, g.last = nil, nil
		p.pgFree = append(p.pgFree, g)
	}
	clear(inv.pending)
	p.invFree = append(p.invFree, inv)
}

// newPendingGroup takes a pending group from the free list, or allocates.
func (p *Profiler) newPendingGroup() *pendingGroup {
	if n := len(p.pgFree); n > 0 {
		g := p.pgFree[n-1]
		p.pgFree = p.pgFree[:n-1]
		return g
	}
	return &pendingGroup{}
}
