package core

import (
	"testing"
)

// The paper (§3.2): "AlgoProf correctly handles exceptional control flow,
// i.e., when exceptions cause control to exit a loop or a method, AlgoProf
// performs the corresponding Loop exit or Method exit operation." These
// tests drive the profiler across throwing workloads.

const notFoundSearch = `
class Error { int code; Error(int code) { this.code = code; } }
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    for (int size = 4; size <= 24; size = size + 4) {
      Node head = build(size);
      int found = 0;
      for (int probe = 0; probe < 6; probe++) {
        try {
          int idx = find(head, rand(size * 2));
          found++;
        } catch (Error e) {
          // not found: thrown from deep inside the scan loop
        }
      }
      check(found >= 0);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node(rand(size * 2));
      x.next = head;
      head = x;
    }
    return head;
  }
  static int find(Node head, int v) {
    int idx = 0;
    Node cur = head;
    while (cur != null) {
      if (cur.v == v) { return idx; }
      idx++;
      cur = cur.next;
    }
    throw new Error(v);
  }
}`

func TestExceptionalExitsKeepTreeConsistent(t *testing.T) {
	p := profile(t, notFoundSearch, Options{})
	// The find loop's invocations must balance despite throw-exits.
	find := findNode(p, "Main.find/loop1")
	if find == nil {
		t.Fatal("no find loop node")
	}
	// 6 sizes... sizes 4..24 step 4 → 6 sizes × 6 probes = 36 find calls.
	if got := find.Invocations(); got != 36 {
		t.Errorf("find loop invocations = %d, want 36", got)
	}
	// All invocations completed: nothing left active (Finish found no
	// dangling nodes, or profile() would have failed on p.Errors()).
}

func TestThrowingTraversalStillMeasured(t *testing.T) {
	p := profile(t, notFoundSearch, Options{})
	find := findNode(p, "Main.find/loop1")
	// The scan reads links and has per-invocation sizes recorded even for
	// invocations that ended in a throw.
	var gets int64
	for _, inv := range find.History {
		var invGets int64
		for k, v := range inv.Costs() {
			if k.Op == OpGet && k.Type == "" {
				invGets += v
			}
		}
		gets += invGets
		// Every invocation that touched the structure has a measured
		// size (a hit at index 0 reads no links and measures nothing).
		if invGets > 0 && len(inv.Sizes) == 0 {
			t.Errorf("invocation %d: %d GETs but no sizes", inv.Index, invGets)
		}
	}
	if gets == 0 {
		t.Error("no GET costs recorded on the throwing scan")
	}
}

func TestRecursiveThrowUnwindsFolding(t *testing.T) {
	p := profile(t, `
class Error { Error() { } }
class Main {
  static int descend(int n) {
    if (n == 0) { throw new Error(); }
    return descend(n - 1);
  }
  public static void main() {
    try {
      int x = descend(7);
    } catch (Error e) {
    }
    try {
      int y = descend(3);
    } catch (Error e) {
    }
  }
}`, Options{})
	rec := findNode(p, "Main.descend/recursion")
	if rec == nil {
		t.Fatal("no recursion node")
	}
	// Two outermost invocations, both unwound exceptionally through all
	// folded frames.
	if rec.Invocations() != 2 {
		t.Errorf("invocations = %d, want 2", rec.Invocations())
	}
	if got := rec.TotalCost(OpStep); got != 7+3 {
		t.Errorf("steps = %d, want 10", got)
	}
}
