package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// Property: for a randomly shaped nest of counted loops, the profiler's
// STEP totals agree exactly with the program's own iteration counter.
// This ties the whole pipeline — compiler, CFG loop detection, probe
// rewriting, VM, repetition tree — to ground truth semantics.
func TestStepCountsMatchGroundTruthProperty(t *testing.T) {
	gen := func(bounds []uint8) (string, bool) {
		if len(bounds) == 0 {
			return "", false
		}
		if len(bounds) > 4 {
			bounds = bounds[:4]
		}
		// Build a nest: for v0 < b0 { for v1 < b1 { ... s++ } }.
		body := "s = s + 1;"
		for i := len(bounds) - 1; i >= 0; i-- {
			b := int(bounds[i]%5) + 1 // 1..5 iterations per level
			v := fmt.Sprintf("v%d", i)
			body = fmt.Sprintf("for (int %s = 0; %s < %d; %s++) { %s }", v, v, b, v, body)
		}
		return `
class Main {
  public static void main() {
    int s = 0;
    ` + body + `
    writeOutput(s);
  }
}`, true
	}

	f := func(bounds []uint8) bool {
		src, ok := gen(bounds)
		if !ok {
			return true
		}
		p, out := profileWithOutput(t, src)
		if len(out) != 1 {
			return false
		}
		innerIterations := out[0]

		// The innermost loop's STEP total equals the program's counter.
		var innermost *Node
		var walk func(n *Node)
		walk = func(n *Node) {
			if len(n.Children) == 0 && n.Kind == KindLoop {
				innermost = n
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(p.Root())
		if innermost == nil {
			return false
		}
		if innermost.TotalCost(OpStep) != innerIterations {
			return false
		}

		// Every loop node's STEP total equals the product of the bounds
		// down to its depth.
		expected := int64(1)
		n := p.Root()
		depth := 0
		for len(n.Children) == 1 || (len(n.Children) > 0 && depth == 0) {
			n = n.Children[0]
			if depth >= len(bounds) || depth >= 4 {
				break
			}
			expected *= int64(bounds[depth]%5) + 1
			if n.TotalCost(OpStep) != expected {
				return false
			}
			depth++
			if len(n.Children) == 0 {
				break
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// profileWithOutput runs the pipeline and also returns writeOutput values.
func profileWithOutput(t *testing.T, src string) (*Profiler, []int64) {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	p := NewProfiler(ins, Options{})
	m := vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	p.Finish()
	if errs := p.Errors(); len(errs) != 0 {
		t.Fatalf("profiler errors: %v", errs)
	}
	var out []int64
	for _, v := range m.Output {
		out = append(out, v.I)
	}
	return p, out
}

// Property: recursion depth equals STEP count + 1 calls for linear
// self-recursion of random depth.
func TestLinearRecursionStepsProperty(t *testing.T) {
	f := func(depth uint8) bool {
		d := int(depth%40) + 1
		src := fmt.Sprintf(`
class Main {
  static int down(int n) {
    if (n == 0) { return 0; }
    return 1 + down(n - 1);
  }
  public static void main() {
    writeOutput(down(%d));
  }
}`, d)
		p := profile(t, src, Options{})
		var rec *Node
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.Kind == KindRecursion {
				rec = n
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(p.Root())
		if rec == nil {
			return false
		}
		// d recursive re-entries (depth d plus the base call).
		return rec.TotalCost(OpStep) == int64(d) && rec.Invocations() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
