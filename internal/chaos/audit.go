package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
)

// Finding is one audit defect in a stored run directory.
type Finding struct {
	// Run names the audited run directory.
	Run string
	// Class is the defect's fault class (Corruption for structural damage).
	Class faultinject.FaultClass
	// Msg describes the defect.
	Msg string
}

// String implements fmt.Stringer.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Run, f.Class, f.Msg)
}

// AuditStore audits every entry of a store directory — including the
// garbage entries Store.List would skip — and returns the defects found.
// An empty result means every stored run is internally consistent.
func AuditStore(dir string) ([]Finding, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, e := range ents {
		if !e.IsDir() {
			// The daemon's write-ahead job journal is a legitimate
			// store-level file, and a torn tail line after a crash is its
			// normal operating condition, not damage — the journal reader
			// declares and skips damaged lines itself.
			if e.Name() == store.JournalName {
				continue
			}
			out = append(out, Finding{Run: e.Name(), Class: faultinject.Corruption,
				Msg: "stray file in store directory"})
			continue
		}
		out = append(out, AuditRun(filepath.Join(dir, e.Name()))...)
	}
	return out, nil
}

// AuditRun forensically audits one run directory: the manifest must parse,
// the program must match its recorded hash and compile, the trace must
// decode, truncation must be declared, the verified replay must pass the
// invariant checker, and — for non-degraded runs — the replayed results
// must equal the manifest's. Each broken link is one finding; later checks
// that depend on it are skipped.
func AuditRun(runDir string) []Finding {
	name := filepath.Base(runDir)
	var out []Finding
	bad := func(class faultinject.FaultClass, format string, args ...any) {
		out = append(out, Finding{Run: name, Class: class, Msg: fmt.Sprintf(format, args...)})
	}
	// classOr types err, defaulting structural damage to Corruption.
	classOr := func(err error) faultinject.FaultClass {
		if c := faultinject.ClassOf(err); c != faultinject.Unknown {
			return c
		}
		return faultinject.Corruption
	}

	data, err := os.ReadFile(filepath.Join(runDir, store.ManifestName))
	if err != nil {
		bad(classOr(err), "manifest unreadable: %v", err)
		return out
	}
	var m store.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		bad(faultinject.Corruption, "garbage manifest: %v", err)
		return out
	}

	src, err := os.ReadFile(filepath.Join(runDir, store.ProgramName))
	if err != nil {
		bad(classOr(err), "program unreadable: %v", err)
		return out
	}
	sum := sha256.Sum256(src)
	if got := hex.EncodeToString(sum[:]); got != m.ProgramSHA256 {
		bad(faultinject.Corruption, "program hash mismatch (manifest %s, file %s)", m.ProgramSHA256, got)
		return out
	}
	prog, err := compiler.CompileSource(string(src))
	if err != nil {
		bad(faultinject.Corruption, "stored program does not compile: %v", err)
		return out
	}

	raw, err := os.ReadFile(filepath.Join(runDir, store.TraceName))
	if err != nil {
		bad(classOr(err), "trace unreadable: %v", err)
		return out
	}
	tr, err := trace.NewReader(raw)
	if err != nil {
		bad(classOr(err), "trace corrupt: %v", err)
		return out
	}
	if tr.Stats().Truncated && !m.Degraded {
		bad(faultinject.Corruption, "trace is truncated but the manifest does not declare a degraded run")
	}

	// A threaded run carries one trace file per spawned thread; each must
	// decode, declare truncation, and join the replay so the merged
	// profile is comparable to the manifest's.
	threadTraces := make(map[int]*trace.Reader, len(m.Threads))
	for _, tid := range m.Threads {
		traw, err := os.ReadFile(filepath.Join(runDir, store.ThreadTraceName(tid)))
		if err != nil {
			bad(classOr(err), "thread %d trace unreadable: %v", tid, err)
			return out
		}
		ttr, err := trace.NewReader(traw)
		if err != nil {
			bad(classOr(err), "thread %d trace corrupt: %v", tid, err)
			return out
		}
		if ttr.Stats().Truncated && !m.Degraded {
			bad(faultinject.Corruption, "thread %d trace is truncated but the manifest does not declare a degraded run", tid)
		}
		threadTraces[tid] = ttr
	}

	cfg := m.Config
	cfg.Verify = true
	prof, err := algoprof.ReplayProgramThreadsContext(context.Background(), prog, cfg, tr, threadTraces)
	if err != nil {
		bad(classOr(err), "verified replay failed: %v", err)
		return out
	}
	if !m.Degraded && !prof.Degraded {
		ok := &algoprof.Profile{Algorithms: m.Algorithms}
		if !algosEqual(ok, prof) {
			bad(faultinject.Corruption, "replayed cost functions differ from the manifest's")
		}
	}
	return out
}
