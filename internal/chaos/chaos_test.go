package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
)

// TestChaosSweep is the smoke sweep: every schedule must classify into the
// outcome trichotomy with zero contract violations, and the schedule
// families must actually produce the outcomes they are designed to force.
func TestChaosSweep(t *testing.T) {
	rep, err := Run(Config{Seeds: 16, BaseSeed: 1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("chaos violations:\n%s", strings.Join(rep.Violations, "\n"))
	}
	if got := len(rep.Results); got != 16 {
		t.Fatalf("got %d results, want 16", got)
	}
	ok, degraded, failed := rep.Counts()
	if ok == 0 {
		t.Error("no schedule succeeded")
	}
	if degraded == 0 {
		t.Error("no schedule degraded (watchdog family never halted a run)")
	}
	if failed == 0 {
		t.Error("no schedule failed typed (resource family never fired)")
	}
	for _, res := range rep.Results {
		if res.Outcome == Failed && res.Class == faultinject.Unknown {
			t.Errorf("seed %d failed with an unknown fault class: %s", res.Seed, res.Err)
		}
	}
	t.Log("\n" + rep.Render())
}

// TestChaosDeterministic: the same sweep configuration must reproduce the
// same outcome sequence, fault for fault.
func TestChaosDeterministic(t *testing.T) {
	run := func() []Result {
		rep, err := Run(Config{Seeds: 8, BaseSeed: 21, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			t.Fatalf("chaos violations:\n%s", strings.Join(rep.Violations, "\n"))
		}
		return rep.Results
	}
	a, b := run(), run()
	for i := range a {
		// Err embeds scratch-directory paths, so determinism is asserted on
		// the classification, not the rendered message.
		if a[i].Outcome != b[i].Outcome || a[i].Class != b[i].Class {
			t.Errorf("seed %d: outcome differs across identical sweeps: %+v vs %+v", a[i].Seed, a[i], b[i])
		}
	}
}

// recordCleanRun stores one fault-free run and returns its directory.
func recordCleanRun(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := corpus()[0].src
	if _, err := s.Record("run", src, "audit-test", algoprof.Config{}, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "run")
}

// TestAuditCleanRun: an intact run directory audits clean.
func TestAuditCleanRun(t *testing.T) {
	runDir := recordCleanRun(t)
	if fs := AuditRun(runDir); len(fs) != 0 {
		t.Fatalf("clean run flagged: %v", fs)
	}
	fs, err := AuditStore(filepath.Dir(runDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("clean store flagged: %v", fs)
	}
}

// recordThreadedRun stores one fault-free threaded run (the corpus's
// spawn/join workload) and returns its directory.
func recordThreadedRun(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cases := corpus()
	src := cases[len(cases)-1].src // threaded entry stays last
	if _, err := s.Record("run", src, "audit-test", algoprof.Config{}, trace.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "run")
}

// TestAuditThreadedRun: a threaded run audits clean — the audit replays
// the per-thread traces listed in the manifest, not just the main one —
// and damage to any thread trace is a finding.
func TestAuditThreadedRun(t *testing.T) {
	runDir := recordThreadedRun(t)
	if fs := AuditRun(runDir); len(fs) != 0 {
		t.Fatalf("clean threaded run flagged: %v", fs)
	}

	t.Run("missing-thread-trace", func(t *testing.T) {
		runDir := recordThreadedRun(t)
		if err := os.Remove(filepath.Join(runDir, store.ThreadTraceName(1))); err != nil {
			t.Fatal(err)
		}
		if fs := AuditRun(runDir); len(fs) == 0 {
			t.Fatal("run with missing thread trace audited clean")
		}
	})
	t.Run("thread-trace-bitflip", func(t *testing.T) {
		runDir := recordThreadedRun(t)
		path := filepath.Join(runDir, store.ThreadTraceName(2))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x10
		overwrite(t, path, data)
		fs := AuditRun(runDir)
		if len(fs) == 0 {
			t.Fatal("run with bit-flipped thread trace audited clean")
		}
		for _, f := range fs {
			if f.Class == faultinject.Unknown {
				t.Errorf("finding with unknown class: %v", f)
			}
		}
	})
}

// TestAuditFlagsCorruption: each class of deliberate damage to a run
// directory must produce at least one finding.
func TestAuditFlagsCorruption(t *testing.T) {
	damage := map[string]func(t *testing.T, runDir string){
		"garbage-manifest": func(t *testing.T, runDir string) {
			overwrite(t, filepath.Join(runDir, store.ManifestName), []byte("{not json"))
		},
		"missing-trace": func(t *testing.T, runDir string) {
			if err := os.Remove(filepath.Join(runDir, store.TraceName)); err != nil {
				t.Fatal(err)
			}
		},
		"program-tampered": func(t *testing.T, runDir string) {
			overwrite(t, filepath.Join(runDir, store.ProgramName), []byte("class Main { public static void main() {} }"))
		},
		"trace-bitflip": func(t *testing.T, runDir string) {
			path := filepath.Join(runDir, store.TraceName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x10
			overwrite(t, path, data)
		},
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			runDir := recordCleanRun(t)
			corrupt(t, runDir)
			fs := AuditRun(runDir)
			if len(fs) == 0 {
				t.Fatal("damaged run audited clean")
			}
			for _, f := range fs {
				if f.Class == faultinject.Unknown {
					t.Errorf("finding with unknown class: %v", f)
				}
			}
		})
	}
}

// TestAuditStoreFlagsGarbageEntries: stray files and manifest-less
// directories — which the store listing deliberately skips — must still be
// flagged by the audit.
func TestAuditStoreFlagsGarbageEntries(t *testing.T) {
	runDir := recordCleanRun(t)
	dir := filepath.Dir(runDir)
	overwrite(t, filepath.Join(dir, "stray.txt"), []byte("not a run"))
	if err := os.Mkdir(filepath.Join(dir, "empty-run"), 0o755); err != nil {
		t.Fatal(err)
	}
	// The daemon's job journal is a legitimate store-level file — even
	// with a torn tail line, which is its normal post-crash state.
	overwrite(t, filepath.Join(dir, store.JournalName), []byte(`{"op":"enqueue","id":"j1"}`+"\n"+`{"op":"term`))
	fs, err := AuditStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("got findings %v, want exactly the stray file and the empty dir", fs)
	}
}

func overwrite(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
