// Package chaos drives seeded fault schedules through the whole profiling
// pipeline — record under an adversarial filesystem, watchdog interrupts
// mid-run, replay of whatever landed on disk — and asserts the robustness
// contract: every schedule either succeeds with a profile equal to the
// fault-free baseline, degrades deterministically (same seed, same
// degraded profile, and the stored trace replays to it), or fails with an
// error whose faultinject.FaultClass is typed. Anything else — a panic, an
// unclassified error, a silently wrong profile — is a harness violation,
// never an acceptable outcome.
//
// The package also provides the offline counterpart (audit.go): a
// forensic audit of stored run directories that flags damaged artifacts.
package chaos

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/trace"
	"algoprof/internal/trace/store"
	"algoprof/internal/verify"
	"algoprof/internal/vm"
	"algoprof/internal/workloads"
)

// Config parameterizes one chaos sweep.
type Config struct {
	// Seeds is how many fault schedules to run (default 16). Schedule i
	// uses seed BaseSeed+i; the seed fully determines the workload, the
	// armed fault points, and every fault draw.
	Seeds int
	// BaseSeed offsets the schedule seeds.
	BaseSeed uint64
	// Dir is the scratch directory; each schedule records into its own
	// subdirectory. The caller owns cleanup.
	Dir string
	// Logf, when non-nil, receives one progress line per schedule.
	Logf func(format string, args ...any)
}

// Outcome is the trichotomy a chaos run must land in.
type Outcome uint8

const (
	// OK: the run completed, the profile equals the fault-free baseline,
	// and the stored run replays to the same profile. Transient faults may
	// have fired and been retried away.
	OK Outcome = iota
	// Degraded: the run completed in degraded mode (e.g. a watchdog halt)
	// — deterministically: the same seed reproduces the same degraded
	// profile, and the stored trace replays to it.
	Degraded
	// Failed: the run (or its replay) failed with a typed-FaultClass
	// error.
	Failed
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Degraded:
		return "degraded"
	}
	return "failed"
}

// Result is one schedule's classified outcome.
type Result struct {
	Seed     uint64
	Workload string
	// Faults names the schedule's armed fault points (plus "watchdog" for
	// an injected watchdog interrupt); empty for a clean schedule.
	Faults []string
	Outcome Outcome
	// Class is the fault class of the typed error for Failed outcomes.
	Class faultinject.FaultClass
	// Err is the failure message for Failed outcomes.
	Err string
}

// Report is a sweep's results plus any contract violations. A sweep with
// violations is a bug in the pipeline (or the harness), regardless of how
// the individual schedules classified.
type Report struct {
	Results    []Result
	Violations []string
}

// Counts tallies the outcome trichotomy.
func (r *Report) Counts() (ok, degraded, failed int) {
	for _, res := range r.Results {
		switch res.Outcome {
		case OK:
			ok++
		case Degraded:
			degraded++
		default:
			failed++
		}
	}
	return
}

// Render formats the report for terminals: one line per schedule, then the
// tally and every violation.
func (r *Report) Render() string {
	var sb strings.Builder
	for _, res := range r.Results {
		faults := strings.Join(res.Faults, ",")
		if faults == "" {
			faults = "none"
		}
		fmt.Fprintf(&sb, "seed %-4d %-10s faults=%-28s %s", res.Seed, res.Workload, faults, res.Outcome)
		if res.Outcome == Failed {
			fmt.Fprintf(&sb, " [%s] %s", res.Class, res.Err)
		}
		sb.WriteByte('\n')
	}
	ok, degraded, failed := r.Counts()
	fmt.Fprintf(&sb, "chaos: %d schedules: %d ok, %d degraded, %d failed (typed), %d violations\n",
		len(r.Results), ok, degraded, failed, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "VIOLATION: %s\n", v)
	}
	return sb.String()
}

// Run executes the sweep. The returned error covers only harness setup;
// per-schedule failures land in the report.
func Run(cfg Config) (*Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 16
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("chaos: Config.Dir required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rep := &Report{}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + uint64(i)
		res := runOne(cfg, seed, rep)
		rep.Results = append(rep.Results, res)
		cfg.Logf("chaos: seed %d %s (%s): %s", seed, res.Workload, strings.Join(res.Faults, ","), res.Outcome)
	}
	return rep, nil
}

// workloadCase is one corpus entry.
type workloadCase struct{ name, src string }

// corpus is the workload set schedules draw from: the paper's running
// example, the sort comparison (recursion + folding), the growth workload
// (journal-heavy), the Listing 4 program, and the threaded workload (two
// spawned VM threads, each with its own producer ring and trace file).
// The threaded entry must stay last: watchdog schedules exclude it (see
// runOne), because a mid-run halt lands at scheduling-dependent points
// across threads and the degraded-determinism gate would misfire.
func corpus() []workloadCase {
	return []workloadCase{
		{"running", workloads.RunningExample(workloads.Random, 48, 8, 1)},
		{"sorts", workloads.MergeVsInsertion(32, 8, 1)},
		{"growth", workloads.ArrayListGrow(false, 48, 8, 1)},
		{"listing4", workloads.Listing4(24)},
		{"threaded", workloads.Threaded(2, 16)},
	}
}

// schedule is one seed's fault plan: which points to arm and whether (and
// when) the watchdog interrupts the run.
type schedule struct {
	names         []string
	arms          []func(*faultinject.Plan)
	watchdogPolls int
}

func (sc *schedule) fault(name, point string, pc faultinject.PointConfig) {
	sc.names = append(sc.names, name)
	sc.arms = append(sc.arms, func(p *faultinject.Plan) { p.Arm(point, pc) })
}

// newSchedule derives a fault schedule from the seed alone, cycling through
// the four fault families so a modest sweep exercises every outcome class:
// transient faults that retries absorb, watchdog interrupts that degrade,
// resource exhaustion that fails typed, and silent corruption the replay
// CRC (or verifier) must catch.
func newSchedule(seed uint64) schedule {
	mix := seed*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03
	draw := func(n uint64) uint64 {
		mix += 0x9e3779b97f4a7c15
		z := mix
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return (z ^ (z >> 31)) % n
	}
	var sc schedule
	switch seed % 4 {
	case 0:
		// Clean or transient: either no faults at all, or a bounded burst
		// of retryable faults the store's retry policy must absorb.
		switch draw(3) {
		case 0: // clean
		case 1:
			sc.fault("fsync-transient", faultinject.PointSync, faultinject.PointConfig{
				Prob: 1, MaxFires: 1 + int(draw(2)), Class: faultinject.Transient, Errno: syscall.EINTR,
			})
		default:
			sc.fault("short-write", faultinject.PointShortWrite, faultinject.PointConfig{
				Prob: 1, MaxFires: 1, Class: faultinject.Transient,
			})
		}
	case 1:
		// Watchdog interrupt mid-run: the VM must halt cleanly and the run
		// must degrade deterministically.
		sc.names = append(sc.names, "watchdog")
		sc.watchdogPolls = 1 + int(draw(4))
	case 2:
		// Resource exhaustion: the run must fail with a typed Resource
		// error (or complete untouched when the low-probability point
		// never fires).
		if draw(2) == 0 {
			sc.fault("trace-enospc", faultinject.PointWrite, faultinject.PointConfig{
				Prob: 0.05, MaxFires: 1, Class: faultinject.Resource,
				Errno: syscall.ENOSPC, PathSuffix: store.TraceName,
			})
		} else {
			sc.fault("rename-emfile", faultinject.PointRename, faultinject.PointConfig{
				Prob: 1, MaxFires: 1, Class: faultinject.Resource, Errno: syscall.EMFILE,
			})
		}
	default:
		// Silent corruption: one bit of the trace flips on disk with no
		// error reported; the replay CRC (or, past it, the invariant
		// verifier) has to flag the artifact instead of producing a
		// plausible-but-wrong profile.
		// Small workloads flush only a handful of frames, so the per-write
		// probability is high enough that most corruption schedules land a
		// flip somewhere in the file.
		sc.fault("trace-bitflip", faultinject.PointBitFlip, faultinject.PointConfig{
			Prob: 0.4, MaxFires: 1, PathSuffix: store.TraceName, Class: faultinject.Corruption,
		})
	}
	return sc
}

// chaosRetry is the store retry policy chaos runs use: the default shape
// with sleeps elided so sweeps stay fast.
var chaosRetry = faultinject.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}

// recordFaulted records one run under the schedule's fault plan into dir
// and returns the stored run (verifier always on).
func recordFaulted(dir string, w workloadCase, sc schedule, seed uint64) (*store.Run, error) {
	plan := faultinject.NewPlan(seed)
	for _, arm := range sc.arms {
		arm(plan)
	}
	s, err := store.OpenFS(dir, plan.FS(faultinject.OS()))
	if err != nil {
		return nil, err
	}
	s.SetRetry(chaosRetry)
	s.SetLogf(nil)
	cfg := algoprof.Config{Seed: seed, Verify: true}
	if sc.watchdogPolls > 0 {
		polls, limit := 0, sc.watchdogPolls
		cfg.Watchdog = func() error {
			polls++
			if polls >= limit {
				return &vm.Halt{Reason: "fault:watchdog"}
			}
			return nil
		}
	}
	return s.Record("run", w.src, "chaos", cfg, trace.WriterOptions{})
}

// runOne executes and classifies one schedule. Panics become violations.
func runOne(cfg Config, seed uint64, rep *Report) (res Result) {
	cases := corpus()
	sc := newSchedule(seed)
	if sc.watchdogPolls > 0 {
		// A shared watchdog halts each thread at a scheduling-dependent
		// point, so threaded degradation is legitimately nondeterministic;
		// keep watchdog schedules on the single-threaded corpus.
		cases = cases[:len(cases)-1]
	}
	w := cases[(seed/4)%uint64(len(cases))]
	res = Result{Seed: seed, Workload: w.name, Faults: sc.names}
	defer func() {
		if r := recover(); r != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d: panic: %v", seed, r))
			res.Outcome = Failed
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	violation := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d (%s): %s", seed, w.name, fmt.Sprintf(format, args...)))
	}

	dir := filepath.Join(cfg.Dir, fmt.Sprintf("seed-%d", seed))
	rec, err := recordFaulted(dir, w, sc, seed)
	if err != nil {
		// The run failed outright: the error must be typed, and a verifier
		// error here means faults on the disk path corrupted the in-memory
		// stream — a pipeline bug, not an acceptable failure.
		var verr *verify.Error
		if errors.As(err, &verr) {
			violation("verifier violations during faulted run: %v", verr)
		}
		res.Outcome = Failed
		res.Class = faultinject.ClassOf(err)
		res.Err = err.Error()
		if res.Class == faultinject.Unknown {
			violation("untyped failure: %v", err)
		}
		return res
	}

	// The record completed; whatever landed on disk must now replay — under
	// a clean filesystem — to the recorded profile, or fail typed (silent
	// on-disk corruption caught by the CRC or the verifier).
	clean, err := store.Open(dir)
	if err != nil {
		violation("reopen store: %v", err)
		return res
	}
	clean.SetLogf(nil)
	replayed, err := clean.Replay("run")
	if err != nil {
		res.Outcome = Failed
		res.Class = faultinject.ClassOf(err)
		res.Err = err.Error()
		if res.Class == faultinject.Unknown {
			violation("untyped replay failure: %v", err)
		}
		return res
	}
	if replayed.Profile.Degraded && !rec.Manifest.Degraded {
		// The live run completed clean but its stored trace only replays
		// through the reader's truncation recovery — on-disk damage (e.g. a
		// bit flip in the index region) that the reader detected and
		// declared. Detected corruption, not a silent wrong profile.
		res.Outcome = Failed
		res.Class = faultinject.Corruption
		res.Err = fmt.Sprintf("stored trace damaged on disk; replay recovered a declared-degraded prefix (%s)",
			strings.Join(replayed.Profile.DegradedReasons, ", "))
		return res
	}
	if !algosEqual(rec.Profile, replayed.Profile) {
		violation("stored trace replays to a different profile than the live run")
	}

	if rec.Manifest.Degraded {
		res.Outcome = Degraded
		// Degradation must be deterministic: the same seed, rerun from
		// scratch, must produce the same degraded profile.
		rec2, err2 := recordFaulted(dir+"-replay", w, sc, seed)
		switch {
		case err2 != nil:
			violation("degraded run rerun failed: %v", err2)
		case !algosEqual(rec.Profile, rec2.Profile):
			violation("degraded run is nondeterministic: rerun with the same seed differs")
		case !equalStrings(rec.Manifest.DegradedReasons, rec2.Manifest.DegradedReasons):
			violation("degraded run is nondeterministic: reasons %v vs %v",
				rec.Manifest.DegradedReasons, rec2.Manifest.DegradedReasons)
		}
		return res
	}

	// A non-degraded completion must match the fault-free baseline exactly:
	// absorbed transient faults may cost retries, never fidelity.
	base, err := algoprof.Run(w.src, algoprof.Config{Seed: seed})
	if err != nil {
		violation("baseline run failed: %v", err)
		return res
	}
	if !algosEqual(base, rec.Profile) {
		violation("profile under absorbed faults differs from fault-free baseline")
	}
	res.Outcome = OK
	return res
}

// algosEqual compares two profiles' fitted results (the portable artifact)
// by JSON identity. Degraded-reason lists differ legitimately between a
// live run and its replay, so they are compared separately where required.
func algosEqual(a, b *algoprof.Profile) bool {
	aj, _ := json.Marshal(a.Algorithms)
	bj, _ := json.Marshal(b.Algorithms)
	return string(aj) == string(bj)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
