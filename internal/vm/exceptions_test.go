package vm

import (
	"strings"
	"testing"

	"algoprof/internal/mj/compiler"
)

const errorClasses = `
class Error { int code; Error(int code) { this.code = code; } }
class NotFound extends Error { NotFound(int code) { this.code = code; } }
`

func TestThrowCatch(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    try {
      print("before");
      throw new Error(42);
    } catch (Error e) {
      print("caught " + e.code);
    }
    print("after");
  }
}`)
	want := []string{"before", "caught 42", "after"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %q, want %q", i, m.Stdout[i], w)
		}
	}
}

func TestCatchSubclass(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    try {
      throw new NotFound(7);
    } catch (Error e) {
      print("caught subclass " + e.code);
    }
  }
}`)
	if m.Stdout[0] != "caught subclass 7" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestCatchDoesNotMatchSuperclassThrow(t *testing.T) {
	// Throwing the base class must NOT be caught by a subclass handler.
	err := runErr(t, errorClasses+`
class Main {
  public static void main() {
    try {
      throw new Error(1);
    } catch (NotFound e) {
      print("wrong");
    }
  }
}`)
	if !strings.Contains(err.Error(), "uncaught exception Error") {
		t.Errorf("got %v", err)
	}
}

func TestExceptionPropagatesThroughCalls(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  static void deep(int n) {
    if (n == 0) { throw new Error(99); }
    deep(n - 1);
  }
  public static void main() {
    try {
      deep(5);
    } catch (Error e) {
      print("from depth: " + e.code);
    }
  }
}`)
	if m.Stdout[0] != "from depth: 99" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestUncaughtExceptionReachesRun(t *testing.T) {
	err := runErr(t, errorClasses+`
class Main {
  public static void main() {
    throw new Error(13);
  }
}`)
	th, ok := err.(*Thrown)
	if !ok {
		t.Fatalf("error type %T, want *Thrown", err)
	}
	if th.Obj.Class.Name != "Error" {
		t.Errorf("thrown class %s", th.Obj.Class.Name)
	}
}

func TestNestedTryInnermostWins(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    try {
      try {
        throw new Error(1);
      } catch (Error inner) {
        print("inner");
        throw new Error(2);
      }
    } catch (Error outer) {
      print("outer " + outer.code);
    }
  }
}`)
	if m.Stdout[0] != "inner" || m.Stdout[1] != "outer 2" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestThrowFromLoopBreaksOut(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    int i = 0;
    try {
      while (true) {
        i++;
        if (i == 5) { throw new Error(i); }
      }
    } catch (Error e) {
      print("escaped at " + e.code);
    }
    print("i=" + i);
  }
}`)
	if m.Stdout[0] != "escaped at 5" || m.Stdout[1] != "i=5" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestRethrowPropagates(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  static void work() {
    try {
      throw new NotFound(3);
    } catch (NotFound e) {
      print("log");
      throw e;
    }
  }
  public static void main() {
    try {
      work();
    } catch (Error e) {
      print("final " + e.code);
    }
  }
}`)
	if m.Stdout[0] != "log" || m.Stdout[1] != "final 3" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestCatchVariableScoping(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    int e = 10;
    try {
      throw new Error(1);
    } catch (Error ex) {
      print(ex.code + e);
    }
    print(e);
  }
}`)
	if m.Stdout[0] != "11" || m.Stdout[1] != "10" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestLoopInCatchHandler(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    try {
      throw new Error(4);
    } catch (Error e) {
      int s = 0;
      for (int i = 0; i < e.code; i++) { s = s + i; }
      print(s);
    }
  }
}`)
	if m.Stdout[0] != "6" {
		t.Errorf("got %v, want 6", m.Stdout)
	}
}

func TestTryWithNoThrowRunsBodyOnly(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    try {
      print("ok");
    } catch (Error e) {
      print("never");
    }
    print("done");
  }
}`)
	if len(m.Stdout) != 2 || m.Stdout[0] != "ok" || m.Stdout[1] != "done" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []string{
		// Throwing a primitive.
		errorClasses + `class Main { public static void main() { throw 5; } }`,
		// Catching a non-class type.
		errorClasses + `class Main { public static void main() { try { } catch (int e) { } } }`,
	}
	for _, src := range cases {
		if _, err := compiler.CompileSource(src); err == nil {
			t.Errorf("want compile error for %q", src[:60])
		}
	}
}

func TestDynamicDispatchErrors(t *testing.T) {
	// Dynamic (erased-receiver) accesses resolve member names at runtime;
	// missing members, argument-count mismatches, and null receivers all
	// surface as runtime errors with a clear message. The Box stores a
	// Plain object so the receiver is non-null but lacks the member.
	cases := []struct {
		name, body, want string
	}{
		{"missing-dyn-field", `var o = b.get(); var x = o.nothere;`, "no field"},
		{"missing-dyn-method", `var o = b.get(); o.nothere();`, "no method"},
		{"dyn-arg-mismatch", `var o = b.get(); o.poke(1, 2);`, "args, want"},
		{"dyn-on-null", `Box<Plain> empty = new Box<Plain>(); var o = empty.get(); o.poke(1);`, "null"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `
class Plain { int w; void poke(int n) { w = n; } }
class Box<T> {
  T v;
  void set(T x) { v = x; }
  T get() { return v; }
}
class Main {
  public static void main() {
    Box<Plain> b = new Box<Plain>();
    b.set(new Plain());
    ` + tc.body + `
  }
}`
			prog, err := compiler.CompileSource(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := New(prog, Config{MaxSteps: 100000})
			err = m.Run()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestThrowNonObjectCaughtStatically(t *testing.T) {
	// `throw 5` is a type error (tested in types); `throw` of an erased
	// Object holding a non-object is a runtime error.
	prog, err := compiler.CompileSource(`
class Box<T> { T v; void set(T x) { v = x; } T get() { return v; } }
class Main {
  public static void main() {
    Box<Box> b = new Box<Box>();
    var o = b.get();
    throw o;
  }
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := New(prog, Config{MaxSteps: 100000})
	if err := m.Run(); err == nil || !strings.Contains(err.Error(), "non-object") {
		t.Fatalf("got %v, want non-object throw error", err)
	}
}
