package vm

import (
	"strings"
	"testing"

	"algoprof/internal/events"
	"algoprof/internal/mj/compiler"
)

// compileErr compiles src expecting a compile-time failure and returns it.
func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := compiler.CompileSource(src)
	if err == nil {
		t.Fatal("want compile error, got none")
	}
	return err
}

func TestSpawnJoinBasics(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int h = spawn Main.work(3);
    print("main");
    join h;
    print("done");
  }
  static void work(int n) {
    for (int i = 0; i < n; i++) { print("w" + i); }
  }
}`)
	// The join is the deterministic merge point: the child's whole stdout
	// folds in there, after everything main printed before the join.
	want := []string{"main", "w0", "w1", "w2", "done"}
	if len(m.Stdout) != len(want) {
		t.Fatalf("stdout %v, want %v", m.Stdout, want)
	}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %q, want %q", i, m.Stdout[i], w)
		}
	}
	if m.ThreadCount() != 1 {
		t.Errorf("ThreadCount = %d, want 1", m.ThreadCount())
	}
	if m.TotalInstructions() <= m.InstrCount {
		t.Errorf("TotalInstructions %d not greater than main-only %d", m.TotalInstructions(), m.InstrCount)
	}
}

func TestSpawnDeterministic(t *testing.T) {
	const src = `
class Main {
  public static void main() {
    int h1 = spawn Main.work(5);
    int h2 = spawn Main.work(5);
    join h1;
    join h2;
  }
  static void work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + rand(100); }
    print(s);
  }
}`
	first := run(t, src)
	second := run(t, src)
	if strings.Join(first.Stdout, ",") != strings.Join(second.Stdout, ",") {
		t.Errorf("two runs differ: %v vs %v", first.Stdout, second.Stdout)
	}
	if first.TotalInstructions() != second.TotalInstructions() {
		t.Errorf("instruction counts differ: %d vs %d", first.TotalInstructions(), second.TotalInstructions())
	}
	// Sibling threads draw from distinct tid-derived streams: with five
	// draws each, identical sums would mean the derivation collapsed.
	if first.Stdout[0] == first.Stdout[1] {
		t.Errorf("sibling threads produced identical random sums %v", first.Stdout)
	}
}

func TestUnjoinedThreadsFoldInTidOrder(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int h2 = spawn Main.say(2);
    int h1 = spawn Main.say(1);
    print("main");
  }
  static void say(int n) { print("thread" + n); }
}`)
	// Run's end-of-run sweep folds unjoined threads by tid (spawn order),
	// not completion order: h2 has the smaller tid.
	want := []string{"main", "thread2", "thread1"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %q, want %q (stdout %v)", i, m.Stdout[i], w, m.Stdout)
		}
	}
}

func TestThrownPropagatesToJoin(t *testing.T) {
	m := run(t, errorClasses+`
class Main {
  public static void main() {
    int h = spawn Main.boom();
    try {
      join h;
      print("unreachable");
    } catch (Error e) {
      print("caught " + e.code);
    }
  }
  static void boom() { throw new Error(9); }
}`)
	if m.Stdout[0] != "caught 9" {
		t.Errorf("got %v, want [caught 9]", m.Stdout)
	}
}

func TestUnjoinedThrownFailsRun(t *testing.T) {
	err := runErr(t, errorClasses+`
class Main {
  public static void main() {
    int h = spawn Main.boom();
  }
  static void boom() { throw new Error(9); }
}`)
	if !strings.Contains(err.Error(), "Error") {
		t.Errorf("unjoined thrown error = %v", err)
	}
}

func TestJoinErrors(t *testing.T) {
	for name, src := range map[string]string{
		"unknown-handle": `
class Main {
  public static void main() { join 12345; }
}`,
		"double-join": `
class Main {
  public static void main() {
    int h = spawn Main.work();
    join h;
    join h;
  }
  static void work() { }
}`,
	} {
		t.Run(name, func(t *testing.T) {
			err := runErr(t, src)
			if !strings.Contains(err.Error(), "join") && !strings.Contains(err.Error(), "already joined") {
				t.Errorf("error = %v", err)
			}
		})
	}
}

func TestSpawnDepthLimit(t *testing.T) {
	err := runErr(t, `
class Main {
  public static void main() {
    int h = spawn Main.nest(0);
    join h;
  }
  static void nest(int d) {
    if (d < 10) {
      int h = spawn Main.nest(d + 1);
      join h;
    }
  }
}`)
	if !strings.Contains(err.Error(), "nesting deeper") {
		t.Errorf("depth-limit error = %v", err)
	}
}

func TestSpawnOrdinalLimit(t *testing.T) {
	err := runErr(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 300; i++) {
      int h = spawn Main.work();
      join h;
    }
  }
  static void work() { }
}`)
	if !strings.Contains(err.Error(), "spawned more than") {
		t.Errorf("ordinal-limit error = %v", err)
	}
}

func TestSpawnCompileErrors(t *testing.T) {
	for name, tc := range map[string]struct{ src, want string }{
		"non-call": {`
class Main {
  public static void main() { int h = spawn 42; }
}`, "spawn requires a method call"},
		"builtin": {`
class Main {
  public static void main() { int h = spawn print("x"); }
}`, "statically resolved"},
		"join-non-int": {`
class Main {
  public static void main() { join "nope"; }
}`, "int thread handle"},
	} {
		t.Run(name, func(t *testing.T) {
			err := compileErr(t, tc.src)
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSpawnRequiresSessionProvider: a profiled run (Listener set) must
// refuse to spawn without a per-thread session provider — otherwise two
// threads would share one single-producer listener.
func TestSpawnRequiresSessionProvider(t *testing.T) {
	prog, err := compiler.CompileSource(`
class Main {
  public static void main() {
    int h = spawn Main.work();
    join h;
  }
  static void work() { }
}`)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := New(prog, Config{Seed: 1, Listener: events.NopListener{}})
	err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "per-thread session provider") {
		t.Errorf("profiled spawn without provider: err = %v", err)
	}
}
