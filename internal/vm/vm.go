package vm

import (
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"algoprof/internal/events"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/types"
)

// Config controls one VM execution.
type Config struct {
	// Listener receives profiling events; nil disables all events.
	Listener events.Listener
	// Plan gates method/field/alloc/io events; nil disables them (loop
	// probes in rewritten bytecode still fire when Listener is set).
	Plan *events.Plan
	// InstrHook, if non-nil, is called before every executed instruction
	// with the method id and pc. Used by the basic-block baseline profiler.
	InstrHook func(methodID, pc int)
	// PreWrite, if non-nil, is called immediately before each heap
	// mutation (field put, array element store). A pipelined event
	// transport uses it as a barrier: asynchronous listeners that traverse
	// the live heap must drain already-published events before the heap
	// changes underneath them. Fresh allocations need no barrier — no
	// published event can reach a not-yet-allocated entity.
	PreWrite func()
	// Journal, if non-nil, receives every entity birth and indexed array
	// element store regardless of Plan. The trace recorder uses it to
	// rebuild an exact shadow heap offline; non-recording runs leave it
	// nil and pay nothing.
	Journal events.Journal
	// NumSites is the number of path-counted access sites in the program
	// (Instrumented.NumSites, paths mode only); it sizes the per-site
	// first-touch table. Zero outside paths mode.
	NumSites int
	// Seed seeds the deterministic rand() builtin.
	Seed uint64
	// Input feeds the readInput() builtin; when exhausted, readInput
	// returns 0.
	Input []int64
	// MaxSteps bounds the number of executed instructions (0 = 1e9).
	MaxSteps uint64
	// MaxDepth bounds the call stack depth (0 = 10000).
	MaxDepth int
	// Watchdog, if non-nil, is polled every watchdogInterval instructions.
	// A non-nil return stops execution with that error; returning *Halt
	// marks the stop as a clean, caller-requested cancellation (deadline,
	// context cancel) rather than a program failure. The halt propagates
	// through every active frame like any error, so loop and method exit
	// events still fire and profiling listeners observe a balanced stream.
	// Spawned threads inherit and poll the same hook concurrently, so it
	// must be goroutine-safe in programs that spawn.
	Watchdog func() error
	// SpawnSession, if non-nil, provides each spawned thread's profiling
	// session, keyed by its deterministic thread id. A thread never shares
	// its parent's Listener/Journal/PreWrite — those are single-goroutine
	// by contract — so a VM with a Listener but no SpawnSession rejects
	// OpSpawn with a runtime error rather than racing two threads through
	// one listener. Returning a nil session runs that thread unprofiled.
	SpawnSession func(tid int) *ThreadSession
}

// ThreadSession is the per-thread profiling harness a spawned VM thread
// runs under: its own listener (typically a dedicated producer ring
// feeding a per-thread profiler), journal, and heap barrier.
type ThreadSession struct {
	// Listener receives the thread's profiling events.
	Listener events.Listener
	// Plan gates the thread's method/field/alloc/io events.
	Plan *events.Plan
	// Journal receives the thread's entity births and element stores.
	Journal events.Journal
	// PreWrite is the thread's own heap barrier — the deterministic merge
	// point: it drains the thread's published events before each of its
	// heap mutations, so cross-ring consumers never observe a heap newer
	// than their stream.
	PreWrite func()
	// NumSites sizes the thread's first-touch table (paths mode).
	NumSites int
	// BindClock, if non-nil, is handed the thread's instruction counter
	// before it starts (pipeline producers stamp events with it).
	BindClock func(clock *uint64)
	// Close is called on the thread's own goroutine after it terminates,
	// with all its events emitted; a per-thread transport drains and
	// closes here. Its error surfaces as the thread's failure.
	Close func() error
}

// watchdogInterval is how many instructions run between Watchdog polls —
// frequent enough that a deadline overshoots by microseconds, rare enough
// that the poll does not show up in interpreter profiles.
const watchdogInterval = 4096

// WatchdogInterval exposes the poll period to watchdog-hook composers: a
// hook invoked n times has observed roughly n·WatchdogInterval executed
// instructions, which is how the service daemon derives progress
// heartbeats without touching the interpreter's hot path.
const WatchdogInterval = watchdogInterval

// Halt is the error a Watchdog returns to stop execution cleanly. It is
// not an MJ-level failure: the run was cut short on purpose and its
// partial results are valid as far as they go.
type Halt struct {
	// Reason names what tripped ("deadline", "canceled", ...).
	Reason string
}

// Error implements error.
func (h *Halt) Error() string { return "vm: halted: " + h.Reason }

// PanicError is a Go panic recovered inside the interpreter or one of its
// listeners — a VM, instrumentation, or listener bug. Containing it lets
// the caller keep the outputs and profiling state accumulated so far and
// assemble a partial report instead of crashing the process.
type PanicError struct {
	// Val is the recovered panic value.
	Val any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("vm: panic: %v", e.Val) }

// Thrown is an in-flight MJ exception: a thrown object that no handler
// caught (yet). It propagates as an error through call frames; if it
// reaches Run, the exception was uncaught.
type Thrown struct {
	Obj *Object
}

// Error implements error.
func (t *Thrown) Error() string {
	return fmt.Sprintf("mj: uncaught exception %s@%d", t.Obj.Class.Name, t.Obj.ID)
}

// RuntimeError is an MJ execution failure (null dereference, bounds,
// division by zero, failed check, budget exhaustion, ...).
type RuntimeError struct {
	Msg    string
	Method string
	PC     int
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("mj runtime error: %s (at %s pc=%d)", e.Msg, e.Method, e.PC)
}

// Thread-id encoding: a child's id appends its 1-based spawn ordinal to
// the parent's id, so ids are deterministic functions of the program's
// spawn structure regardless of goroutine scheduling. The main thread is
// id 0. Each thread gets a disjoint entity-id namespace at tid<<40; the
// main thread keeps the raw sequence, so single-threaded runs allocate
// exactly the ids they always did.
const (
	spawnBits          = 8
	maxSpawnsPerThread = 1<<spawnBits - 1
	maxSpawnDepth      = 3
	entityBaseShift    = 40
)

// thread is one spawned VM thread in the run's registry.
type thread struct {
	tid  int
	vm   *VM
	done chan struct{} // closed after err and stats are final
	err  error

	// joined marks the handle claimed by a join (guarded by group mu);
	// merged marks its outputs folded into the joiner or the root.
	joined bool
	merged bool
}

// threadGroup is the registry shared by every VM of one run: the root and
// all spawned threads. It tracks live threads for the run-end sweep and
// accumulates finished threads' instruction/allocation counts.
type threadGroup struct {
	mu      sync.Mutex
	threads map[int]*thread
	instrs  uint64
	allocs  uint64
}

func (tg *threadGroup) register(th *thread) {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	tg.threads[th.tid] = th
}

// claim resolves a join target and marks it claimed; a second join of the
// same handle is a program error.
func (tg *threadGroup) claim(tid int) (*thread, string) {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	th, ok := tg.threads[tid]
	if !ok {
		return nil, fmt.Sprintf("join of unknown thread handle %d", tid)
	}
	if th.joined {
		return nil, fmt.Sprintf("thread %d already joined", tid)
	}
	th.joined = true
	return th, ""
}

// claimMerge marks th's outputs as folded exactly once.
func (tg *threadGroup) claimMerge(th *thread) bool {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	if th.merged {
		return false
	}
	th.merged = true
	return true
}

// finish books a terminated thread's counters.
func (tg *threadGroup) finish(child *VM) {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	tg.instrs += child.InstrCount
	tg.allocs += child.AllocCount
}

// all snapshots the registry sorted by thread id.
func (tg *threadGroup) all() []*thread {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	out := make([]*thread, 0, len(tg.threads))
	for _, th := range tg.threads {
		out = append(out, th)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].tid < out[j].tid })
	return out
}

// openLoop is one active loop in a frame: a classic-probe loop (base -1)
// or a counted loop with its block of path counters in the VM arena.
type openLoop struct {
	id     int
	base   int // first arena slot of this invocation's counters; -1 = classic
	npaths int
	saved  int // enclosing loop's path register, restored on exit
}

type frame struct {
	fn        *bytecode.Function
	pc        int
	locals    []Value
	stack     []Value
	loopStack []openLoop // loops currently active in this frame
	pathReg   int        // Ball–Larus path register of the innermost counted loop
	emittedME bool       // whether MethodEntry was emitted for this frame
}

// VM executes one compiled MJ program.
type VM struct {
	prog *bytecode.Program
	cfg  Config

	frames []*frame
	// framePool recycles returned frames (with their locals and operand
	// stack capacity) across calls: per-call frame allocation was a top
	// source of GC churn, and the induced marking phases put write
	// barriers on the interpreter's hot value copies.
	framePool []*frame
	nextID    uint64
	rng    uint64
	inPos  int
	wdLeft int // instructions until the next Watchdog poll

	// Threading state. tid is this VM's deterministic thread id (0 for
	// the main thread), depth its spawn nesting depth, spawnOrd its count
	// of spawns so far; group is the run-wide thread registry, created
	// lazily at the first spawn and shared by every thread's VM.
	tid      int
	depth    int
	spawnOrd int
	group    *threadGroup

	// InstrCount is the number of executed bytecode instructions — the
	// deterministic stand-in for wall-clock time in the CCT baseline.
	InstrCount uint64
	// AllocCount is the number of heap allocations (objects + arrays).
	AllocCount uint64
	// Stdout collects print() output.
	Stdout []string
	// Output collects writeOutput() values.
	Output []Value

	// Path-counter state (paths mode). pathArena stacks the per-invocation
	// counter blocks of every active counted loop, across frames; each
	// openLoop's base indexes into it. siteEpoch/accessEpoch implement
	// once-per-segment site touches: a site fires SiteTouch only when its
	// epoch differs from the global one, and every repetition boundary
	// (loop or instrumented-method entry/exit) advances the global epoch.
	pathArena   []int64
	siteEpoch   []uint64
	accessEpoch uint64
	pl          events.PathListener // non-nil iff Listener is path-aware

	gate   gate
	vtable map[vtKey]*bytecode.Function
	byName map[nmKey]*types.Method
}

// gate caches the listener/plan decision for every probe class as direct
// boolean loads, so a disabled probe on the interpreter hot path costs one
// slice index instead of an interface method call through the Plan.
type gate struct {
	loops  bool // listener present: loop probes and method unwind fire
	arrays bool
	io     bool
	method []bool
	field  []bool
	alloc  []bool
}

func buildGate(prog *bytecode.Program, cfg Config) gate {
	g := gate{
		method: make([]bool, prog.Sem.NumMethods()),
		field:  make([]bool, prog.Sem.NumFields()),
		alloc:  make([]bool, len(prog.Sem.Classes)),
	}
	if cfg.Listener == nil {
		return g
	}
	g.loops = true
	p := cfg.Plan
	g.arrays = p != nil && p.Arrays
	g.io = p != nil && p.IO
	for i := range g.method {
		g.method[i] = p.WantsMethod(i)
	}
	for i := range g.field {
		g.field[i] = p.WantsField(i)
	}
	for i := range g.alloc {
		g.alloc[i] = p.WantsAlloc(i)
	}
	return g
}

type vtKey struct {
	classID  int
	methodID int
}

type nmKey struct {
	classID int
	name    string
}

// New creates a VM for prog.
func New(prog *bytecode.Program, cfg Config) *VM {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 1_000_000_000
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 10_000
	}
	m := &VM{
		prog: prog,
		cfg:  cfg,
		rng:  cfg.Seed*2862933555777941757 + 3037000493,
		// A full interval before the first poll: even an already-expired
		// deadline lets the program execute a prefix, so the halted run
		// still carries events and a nonzero instruction count.
		wdLeft: watchdogInterval,
		gate:   buildGate(prog, cfg),
		vtable: map[vtKey]*bytecode.Function{},
		byName: map[nmKey]*types.Method{},
		// Epoch 1 so the zero-valued siteEpoch table means "never touched".
		accessEpoch: 1,
		siteEpoch:   make([]uint64, cfg.NumSites),
	}
	if pl, ok := cfg.Listener.(events.PathListener); ok {
		m.pl = pl
	}
	return m
}

// Run executes the program's main method. Go panics raised inside the
// interpreter or its listeners are contained and returned as *PanicError,
// so a buggy listener cannot take the whole process down.
func (m *VM) Run() (err error) {
	func() {
		defer containPanic(&err)
		err = m.call(m.prog.Main(), nil)
	}()
	// Await every spawned thread even when main failed: the registry must
	// be fully accounted (no leaked goroutines, no half-written sessions)
	// before the caller finalizes profilers or salvages a partial run.
	if terr := m.awaitThreads(); err == nil {
		err = terr
	}
	return err
}

// CallStatic runs an arbitrary static niladic method; used by harnesses.
// Panics are contained like Run's.
func (m *VM) CallStatic(qualified string) (err error) {
	func() {
		defer containPanic(&err)
		for _, fn := range m.prog.Funcs {
			if fn.Method.QualifiedName() == qualified && fn.Method.Static && len(fn.Method.Params) == 0 {
				err = m.call(fn, nil)
				return
			}
		}
		err = fmt.Errorf("vm: no static niladic method %q", qualified)
	}()
	if terr := m.awaitThreads(); err == nil {
		err = terr
	}
	return err
}

// containPanic converts an in-flight panic into a *PanicError on *err.
func containPanic(err *error) {
	if r := recover(); r != nil {
		*err = &PanicError{Val: r, Stack: debug.Stack()}
	}
}

func (m *VM) fail(f *frame, format string, args ...any) error {
	return &RuntimeError{
		Msg:    fmt.Sprintf(format, args...),
		Method: f.fn.Name(),
		PC:     f.pc,
	}
}

func (m *VM) newObject(cls *types.Class) *Object {
	m.nextID++
	m.AllocCount++
	o := &Object{ID: m.nextID, Class: cls, Fields: make([]Value, len(cls.Fields))}
	for i, f := range cls.Fields {
		switch f.Type.Kind {
		case types.KInt:
			o.Fields[i] = intVal(0)
		case types.KBool:
			o.Fields[i] = boolVal(false)
		case types.KString:
			o.Fields[i] = nullVal
		default:
			o.Fields[i] = nullVal
		}
	}
	if m.cfg.Journal != nil {
		m.cfg.Journal.AllocEntity(o, events.ElemModeAuto)
	}
	return o
}

func (m *VM) newArray(t *types.Type, n int) *Array {
	m.nextID++
	m.AllocCount++
	a := &Array{ID: m.nextID, Type: t, Elems: make([]Value, n)}
	var zero Value
	switch t.Elem.Kind {
	case types.KInt:
		zero = intVal(0)
	case types.KBool:
		zero = boolVal(false)
	default:
		zero = nullVal
	}
	for i := range a.Elems {
		a.Elems[i] = zero
	}
	if m.cfg.Journal != nil {
		mode := events.ElemModeVal
		if t.Elem.IsRef() {
			mode = events.ElemModeRef
		}
		m.cfg.Journal.AllocEntity(a, mode)
	}
	return a
}

// resolveVirtual finds the actual target of a virtual call: the method with
// the declared method's name in the receiver's class chain. Constructors
// dispatch exactly.
func (m *VM) resolveVirtual(recv *Object, declared *types.Method) *bytecode.Function {
	if declared.IsConstructor {
		return m.prog.FuncByID(declared.ID)
	}
	key := vtKey{classID: recv.Class.ID, methodID: declared.ID}
	if fn, ok := m.vtable[key]; ok {
		return fn
	}
	target := recv.Class.LookupMethod(declared.Name)
	if target == nil {
		target = declared
	}
	fn := m.prog.FuncByID(target.ID)
	m.vtable[key] = fn
	return fn
}

func (m *VM) rand(n int64) int64 {
	// xorshift64*, deterministic per seed.
	m.rng ^= m.rng >> 12
	m.rng ^= m.rng << 25
	m.rng ^= m.rng >> 27
	r := m.rng * 2685821657736338717
	if n <= 0 {
		return 0
	}
	return int64(r % uint64(n))
}

// call pushes a frame for fn with the given arguments (receiver first for
// instance methods) and interprets it to completion. The return value, if
// any, is pushed onto the caller's operand stack.
func (m *VM) call(fn *bytecode.Function, args []Value) error {
	if len(m.frames) >= m.cfg.MaxDepth {
		if len(m.frames) > 0 {
			return m.fail(m.frames[len(m.frames)-1], "stack overflow (depth %d)", m.cfg.MaxDepth)
		}
		return &RuntimeError{Msg: "stack overflow"}
	}
	var f *frame
	if n := len(m.framePool); n > 0 {
		f = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
	} else {
		f = &frame{}
	}
	f.fn = fn
	f.pc = 0
	if cap(f.locals) >= fn.NumLocals {
		// Pooled storage was zeroed when the frame was recycled.
		f.locals = f.locals[:fn.NumLocals]
	} else {
		f.locals = make([]Value, fn.NumLocals)
	}
	f.stack = f.stack[:0]
	f.loopStack = f.loopStack[:0]
	f.pathReg = 0
	f.emittedME = false
	copy(f.locals, args)
	m.frames = append(m.frames, f)

	if m.gate.method[fn.Method.ID] {
		f.emittedME = true
		m.accessEpoch++
		m.cfg.Listener.MethodEntry(fn.Method.ID)
	}

	err := m.interpret(f)

	// Unwind loop probes that are still active (early return out of loops,
	// or an exception propagating past this frame), mirroring AlgoProf's
	// handling of exceptional exits. Counted loops flush their accumulated
	// path counters; the in-flight partial path is dropped.
	for i := len(f.loopStack) - 1; i >= 0; i-- {
		ol := &f.loopStack[i]
		if ol.base >= 0 {
			m.flushPathLoop(ol)
		}
		m.accessEpoch++
		if m.gate.loops {
			m.cfg.Listener.LoopExit(ol.id)
		}
	}
	if f.emittedME {
		m.accessEpoch++
		m.cfg.Listener.MethodExit(fn.Method.ID)
	}
	m.frames = m.frames[:len(m.frames)-1]
	// Zero the recycled storage over its full capacity: the pool must not
	// keep dead program objects reachable, and the next call borrows the
	// slices assuming they are zeroed.
	f.locals = f.locals[:cap(f.locals)]
	clear(f.locals)
	f.stack = f.stack[:cap(f.stack)]
	clear(f.stack)
	m.framePool = append(m.framePool, f)
	return err
}

// spawn starts target on a new VM thread with args already evaluated on
// the spawning thread, returning the child's deterministic thread id. The
// child is a separate VM sharing the immutable program and live heap: it
// has its own frames, frame pool, rng (derived from the seed and its
// tid), path arena, and a disjoint entity-id namespace, and it polls the
// same watchdog. Its profiling session comes from Config.SpawnSession;
// its Input is empty (readInput on a spawned thread yields 0).
func (m *VM) spawn(f *frame, target *bytecode.Function, args []Value) (int, error) {
	if m.cfg.Listener != nil && m.cfg.SpawnSession == nil {
		return 0, m.fail(f, "spawn in a profiled run without a per-thread session provider")
	}
	if m.depth+1 > maxSpawnDepth {
		return 0, m.fail(f, "spawn nesting deeper than %d", maxSpawnDepth)
	}
	if m.spawnOrd >= maxSpawnsPerThread {
		return 0, m.fail(f, "thread spawned more than %d threads", maxSpawnsPerThread)
	}
	if m.group == nil {
		m.group = &threadGroup{threads: map[int]*thread{}}
	}
	m.spawnOrd++
	tid := m.tid<<spawnBits | m.spawnOrd

	ccfg := m.cfg
	ccfg.Listener = nil
	ccfg.Plan = nil
	ccfg.Journal = nil
	ccfg.PreWrite = nil
	ccfg.InstrHook = nil
	ccfg.Input = nil
	ccfg.NumSites = 0
	ccfg.Seed = m.cfg.Seed ^ (uint64(tid)*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019)
	var sessClose func() error
	var bindClock func(*uint64)
	if m.cfg.SpawnSession != nil {
		if sess := m.cfg.SpawnSession(tid); sess != nil {
			ccfg.Listener = sess.Listener
			ccfg.Plan = sess.Plan
			ccfg.Journal = sess.Journal
			ccfg.PreWrite = sess.PreWrite
			ccfg.NumSites = sess.NumSites
			sessClose = sess.Close
			bindClock = sess.BindClock
		}
	}
	child := New(m.prog, ccfg)
	child.tid = tid
	child.depth = m.depth + 1
	child.group = m.group
	child.nextID = uint64(tid) << entityBaseShift
	if bindClock != nil {
		bindClock(&child.InstrCount)
	}
	th := &thread{tid: tid, vm: child, done: make(chan struct{})}
	m.group.register(th)
	go func() {
		err := child.runSpawned(target, args)
		if sessClose != nil {
			if cerr := sessClose(); cerr != nil && err == nil {
				err = cerr
			}
		}
		th.err = err
		m.group.finish(child)
		close(th.done)
	}()
	return tid, nil
}

// runSpawned is a thread's body: the spawned call, with panics contained
// like Run's.
func (m *VM) runSpawned(fn *bytecode.Function, args []Value) (err error) {
	defer containPanic(&err)
	return m.call(fn, args)
}

// join blocks until thread tid terminates, folds its stdout/output into
// the joining thread (the join is a deterministic program point, so the
// interleaving is defined), and propagates its failure: an uncaught MJ
// exception arrives as *Thrown and is catchable at the join site.
func (m *VM) join(f *frame, tid int) error {
	if m.group == nil {
		return m.fail(f, "join of unknown thread handle %d", tid)
	}
	th, msg := m.group.claim(tid)
	if th == nil {
		return m.fail(f, "%s", msg)
	}
	<-th.done
	if m.group.claimMerge(th) {
		m.Stdout = append(m.Stdout, th.vm.Stdout...)
		m.Output = append(m.Output, th.vm.Output...)
	}
	return th.err
}

// awaitThreads waits for every spawned thread (including ones spawned
// while waiting), then folds unjoined threads' outputs into this VM in
// thread-id order. The first unjoined failure (by tid) is returned.
// Joined threads were already folded at their join sites: a joiner is
// itself a thread, so by the time every thread is done, every claimed
// join has completed its merge — the sweep cannot steal one.
func (m *VM) awaitThreads() error {
	if m.group == nil {
		return nil
	}
	for {
		ths := m.group.all()
		for _, th := range ths {
			<-th.done
		}
		if len(m.group.all()) == len(ths) {
			break
		}
	}
	var firstErr error
	for _, th := range m.group.all() {
		if m.group.claimMerge(th) {
			m.Stdout = append(m.Stdout, th.vm.Stdout...)
			m.Output = append(m.Output, th.vm.Output...)
			if th.err != nil && firstErr == nil {
				firstErr = th.err
			}
		}
	}
	return firstErr
}

// TotalInstructions is the run's executed instruction count summed over
// the main thread and every finished spawned thread. Call after Run; for
// single-threaded programs it equals InstrCount.
func (m *VM) TotalInstructions() uint64 {
	if m.group == nil {
		return m.InstrCount
	}
	m.group.mu.Lock()
	defer m.group.mu.Unlock()
	return m.InstrCount + m.group.instrs
}

// TotalAllocs is AllocCount summed over all threads; see TotalInstructions.
func (m *VM) TotalAllocs() uint64 {
	if m.group == nil {
		return m.AllocCount
	}
	m.group.mu.Lock()
	defer m.group.mu.Unlock()
	return m.AllocCount + m.group.allocs
}

// ThreadCount reports how many threads the run spawned (all of them, not
// just live ones). Call after Run.
func (m *VM) ThreadCount() int {
	if m.group == nil {
		return 0
	}
	m.group.mu.Lock()
	defer m.group.mu.Unlock()
	return len(m.group.threads)
}

// siteTouch fires the first-touch notification for a path-counted access
// site, once per repetition segment — or repeatedly while the listener
// reports the site's input resolution as still pending (it then keeps
// seeing every access until one resolves).
func (m *VM) siteTouch(site int, e events.Entity) {
	if m.siteEpoch[site] != m.accessEpoch {
		if m.pl.SiteTouch(site, e) {
			m.siteEpoch[site] = m.accessEpoch
		}
	}
}

// flushPathLoop reports the nonzero path counters of one finished (or
// abandoned) counted-loop invocation and releases its arena block.
func (m *VM) flushPathLoop(ol *openLoop) {
	counts := m.pathArena[ol.base : ol.base+ol.npaths]
	if m.pl != nil {
		for pid, c := range counts {
			if c != 0 {
				m.pl.LoopPathCount(ol.id, pid, c)
			}
		}
	}
	m.pathArena = m.pathArena[:ol.base]
}

func (m *VM) push(f *frame, v Value) { f.stack = append(f.stack, v) }

func (m *VM) pop(f *frame) Value {
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v
}

// interpret runs one frame to completion. On normal return, the returned
// value (if any) has been pushed to the caller's stack.
func (m *VM) interpret(f *frame) error {
	code := f.fn.Code
	listener := m.cfg.Listener
	g := &m.gate
	preWrite := m.cfg.PreWrite
	journal := m.cfg.Journal
	var caller *frame
	if len(m.frames) >= 2 {
		caller = m.frames[len(m.frames)-2]
	}

	for {
		if f.pc < 0 || f.pc >= len(code) {
			return m.fail(f, "pc out of range")
		}
		if m.InstrCount >= m.cfg.MaxSteps {
			return m.fail(f, "instruction budget exhausted (%d)", m.cfg.MaxSteps)
		}
		if m.cfg.Watchdog != nil {
			if m.wdLeft--; m.wdLeft < 0 {
				m.wdLeft = watchdogInterval
				if err := m.cfg.Watchdog(); err != nil {
					return err
				}
			}
		}
		m.InstrCount++
		if m.cfg.InstrHook != nil {
			m.cfg.InstrHook(f.fn.Method.ID, f.pc)
		}
		in := code[f.pc]
		f.pc++

		switch in.Op {
		case bytecode.OpConstInt:
			m.push(f, intVal(int64(in.A)))
		case bytecode.OpConstBool:
			m.push(f, boolVal(in.A != 0))
		case bytecode.OpConstStr:
			m.push(f, strVal(in.S))
		case bytecode.OpConstNull:
			m.push(f, nullVal)
		case bytecode.OpPop:
			m.pop(f)
		case bytecode.OpDup:
			m.push(f, f.stack[len(f.stack)-1])

		case bytecode.OpLoadLocal:
			m.push(f, f.locals[in.A])
		case bytecode.OpStoreLocal:
			f.locals[in.A] = m.pop(f)

		case bytecode.OpNewObject:
			cls := m.prog.Sem.Classes[in.A]
			o := m.newObject(cls)
			if g.alloc[cls.ID] {
				listener.Alloc(o, cls.ID)
			}
			m.push(f, objVal(o))

		case bytecode.OpGetField:
			fld := m.prog.Sem.FieldByID(in.A)
			recv := m.pop(f)
			if recv.K != ValObj {
				return m.fail(f, "null dereference reading %s", fld.QualifiedName())
			}
			if g.field[fld.ID] {
				if in.B != 0 && m.pl != nil {
					m.siteTouch(in.B-1, recv.O)
				} else {
					listener.FieldGet(recv.O, fld.ID)
				}
			}
			m.push(f, recv.O.Fields[fld.Slot])

		case bytecode.OpPutField:
			fld := m.prog.Sem.FieldByID(in.A)
			val := m.pop(f)
			recv := m.pop(f)
			if recv.K != ValObj {
				return m.fail(f, "null dereference writing %s", fld.QualifiedName())
			}
			if preWrite != nil {
				preWrite()
			}
			recv.O.Fields[fld.Slot] = val
			if g.field[fld.ID] {
				if in.B != 0 && m.pl != nil {
					m.siteTouch(in.B-1, recv.O)
				} else {
					listener.FieldPut(recv.O, fld.ID, val.Entity())
				}
			}

		case bytecode.OpGetFieldDyn:
			recv := m.pop(f)
			if recv.K != ValObj {
				return m.fail(f, "null or non-object dereference reading .%s", in.S)
			}
			fld := recv.O.Class.LookupField(in.S)
			if fld == nil {
				return m.fail(f, "class %s has no field %s", recv.O.Class.Name, in.S)
			}
			if g.field[fld.ID] {
				listener.FieldGet(recv.O, fld.ID)
			}
			m.push(f, recv.O.Fields[fld.Slot])

		case bytecode.OpPutFieldDyn:
			val := m.pop(f)
			recv := m.pop(f)
			if recv.K != ValObj {
				return m.fail(f, "null or non-object dereference writing .%s", in.S)
			}
			fld := recv.O.Class.LookupField(in.S)
			if fld == nil {
				return m.fail(f, "class %s has no field %s", recv.O.Class.Name, in.S)
			}
			if preWrite != nil {
				preWrite()
			}
			recv.O.Fields[fld.Slot] = val
			if g.field[fld.ID] {
				listener.FieldPut(recv.O, fld.ID, val.Entity())
			}

		case bytecode.OpNewArray:
			t := m.prog.TypePool[in.A]
			n := m.pop(f)
			if n.I < 0 {
				return m.fail(f, "negative array size %d", n.I)
			}
			m.push(f, arrVal(m.newArray(t, int(n.I))))

		case bytecode.OpNewArrayMulti:
			t := m.prog.TypePool[in.A]
			dims := make([]int, in.B)
			for i := in.B - 1; i >= 0; i-- {
				v := m.pop(f)
				if v.I < 0 {
					return m.fail(f, "negative array size %d", v.I)
				}
				dims[i] = int(v.I)
			}
			arr := m.newArrayMulti(t, dims)
			m.push(f, arrVal(arr))

		case bytecode.OpALoad:
			idx := m.pop(f)
			av := m.pop(f)
			if av.K != ValArr {
				return m.fail(f, "null dereference indexing array")
			}
			if idx.I < 0 || int(idx.I) >= len(av.A.Elems) {
				return m.fail(f, "array index %d out of bounds (len %d)", idx.I, len(av.A.Elems))
			}
			if g.arrays {
				if in.B != 0 && m.pl != nil {
					m.siteTouch(in.B-1, av.A)
				} else {
					listener.ArrayLoad(av.A)
				}
			}
			m.push(f, av.A.Elems[idx.I])

		case bytecode.OpAStore:
			val := m.pop(f)
			idx := m.pop(f)
			av := m.pop(f)
			if av.K != ValArr {
				return m.fail(f, "null dereference storing into array")
			}
			if idx.I < 0 || int(idx.I) >= len(av.A.Elems) {
				return m.fail(f, "array index %d out of bounds (len %d)", idx.I, len(av.A.Elems))
			}
			if preWrite != nil {
				preWrite()
			}
			av.A.Elems[idx.I] = val
			if journal != nil {
				key, tgt := jrnlKey(val)
				journal.ArrayStoreAt(av.A, int(idx.I), key, tgt)
			}
			if g.arrays {
				if in.B != 0 && m.pl != nil {
					m.siteTouch(in.B-1, av.A)
				} else {
					listener.ArrayStore(av.A, val.Entity())
				}
			}

		case bytecode.OpArrayLen:
			av := m.pop(f)
			if av.K != ValArr {
				return m.fail(f, "null dereference reading array length")
			}
			m.push(f, intVal(int64(len(av.A.Elems))))

		case bytecode.OpStrLen:
			sv := m.pop(f)
			if sv.K != ValStr {
				return m.fail(f, "null dereference reading string length")
			}
			m.push(f, intVal(int64(len(sv.S))))

		case bytecode.OpAdd, bytecode.OpSub, bytecode.OpMul, bytecode.OpDiv, bytecode.OpMod:
			b := m.pop(f)
			a := m.pop(f)
			var r int64
			switch in.Op {
			case bytecode.OpAdd:
				r = a.I + b.I
			case bytecode.OpSub:
				r = a.I - b.I
			case bytecode.OpMul:
				r = a.I * b.I
			case bytecode.OpDiv:
				if b.I == 0 {
					return m.fail(f, "division by zero")
				}
				r = a.I / b.I
			case bytecode.OpMod:
				if b.I == 0 {
					return m.fail(f, "division by zero")
				}
				r = a.I % b.I
			}
			m.push(f, intVal(r))

		case bytecode.OpNeg:
			a := m.pop(f)
			m.push(f, intVal(-a.I))

		case bytecode.OpConcat:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, strVal(a.String()+b.String()))

		case bytecode.OpNot:
			a := m.pop(f)
			m.push(f, boolVal(a.I == 0))

		case bytecode.OpCmpEq:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(equal(a, b)))
		case bytecode.OpCmpNe:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(!equal(a, b)))
		case bytecode.OpCmpLt:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(a.I < b.I))
		case bytecode.OpCmpGt:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(a.I > b.I))
		case bytecode.OpCmpLe:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(a.I <= b.I))
		case bytecode.OpCmpGe:
			b := m.pop(f)
			a := m.pop(f)
			m.push(f, boolVal(a.I >= b.I))

		case bytecode.OpJmp:
			f.pc = in.A
		case bytecode.OpJmpIfFalse:
			if m.pop(f).I == 0 {
				f.pc = in.A
			}
		case bytecode.OpJmpIfTrue:
			if m.pop(f).I != 0 {
				f.pc = in.A
			}

		case bytecode.OpCallStatic:
			target := m.prog.FuncByID(in.A)
			nargs := len(target.Method.Params)
			args := make([]Value, nargs)
			for i := nargs - 1; i >= 0; i-- {
				args[i] = m.pop(f)
			}
			if err := m.call(target, args); err != nil {
				if th, ok := err.(*Thrown); ok && m.deliver(f, th, f.pc-1) {
					break
				}
				return err
			}

		case bytecode.OpCallVirt:
			declared := m.prog.Sem.MethodByID(in.A)
			nargs := len(declared.Params)
			args := make([]Value, nargs+1)
			for i := nargs; i >= 1; i-- {
				args[i] = m.pop(f)
			}
			recvVal := m.pop(f)
			if recvVal.K != ValObj {
				return m.fail(f, "null dereference calling %s", declared.QualifiedName())
			}
			args[0] = recvVal
			target := m.resolveVirtual(recvVal.O, declared)
			if err := m.call(target, args); err != nil {
				if th, ok := err.(*Thrown); ok && m.deliver(f, th, f.pc-1) {
					break
				}
				return err
			}

		case bytecode.OpCallDyn:
			nargs := in.B
			args := make([]Value, nargs+1)
			for i := nargs; i >= 1; i-- {
				args[i] = m.pop(f)
			}
			recvVal := m.pop(f)
			if recvVal.K != ValObj {
				return m.fail(f, "null or non-object dereference calling .%s", in.S)
			}
			args[0] = recvVal
			mth := m.lookupByName(recvVal.O.Class, in.S)
			if mth == nil {
				return m.fail(f, "class %s has no method %s", recvVal.O.Class.Name, in.S)
			}
			if len(mth.Params) != nargs {
				return m.fail(f, "dynamic call %s.%s: %d args, want %d",
					recvVal.O.Class.Name, in.S, nargs, len(mth.Params))
			}
			if err := m.call(m.prog.FuncByID(mth.ID), args); err != nil {
				if th, ok := err.(*Thrown); ok && m.deliver(f, th, f.pc-1) {
					break
				}
				return err
			}

		case bytecode.OpCallBuiltin:
			if err := m.callBuiltin(f, types.Builtin(in.A), in.B); err != nil {
				return err
			}

		case bytecode.OpSpawn:
			declared := m.prog.Sem.MethodByID(in.A)
			nargs := len(declared.Params)
			var target *bytecode.Function
			var args []Value
			if in.B != 0 {
				args = make([]Value, nargs+1)
				for i := nargs; i >= 1; i-- {
					args[i] = m.pop(f)
				}
				recvVal := m.pop(f)
				if recvVal.K != ValObj {
					return m.fail(f, "null dereference spawning %s", declared.QualifiedName())
				}
				args[0] = recvVal
				target = m.resolveVirtual(recvVal.O, declared)
			} else {
				args = make([]Value, nargs)
				for i := nargs - 1; i >= 0; i-- {
					args[i] = m.pop(f)
				}
				target = m.prog.FuncByID(in.A)
			}
			tid, err := m.spawn(f, target, args)
			if err != nil {
				return err
			}
			m.push(f, intVal(int64(tid)))

		case bytecode.OpJoin:
			hv := m.pop(f)
			if err := m.join(f, int(hv.I)); err != nil {
				if th, ok := err.(*Thrown); ok && m.deliver(f, th, f.pc-1) {
					break
				}
				return err
			}

		case bytecode.OpThrow:
			v := m.pop(f)
			if v.K != ValObj {
				return m.fail(f, "throw of non-object value %s", v)
			}
			th := &Thrown{Obj: v.O}
			if m.deliver(f, th, f.pc-1) {
				break
			}
			return th

		case bytecode.OpRet:
			return nil

		case bytecode.OpRetVal:
			v := m.pop(f)
			if caller != nil {
				m.push(caller, v)
			}
			return nil

		case bytecode.OpMissingReturn:
			return m.fail(f, "method %s fell off the end without returning a value", f.fn.Name())

		case bytecode.OpLoopEnter:
			f.loopStack = append(f.loopStack, openLoop{id: in.A, base: -1})
			m.accessEpoch++
			if g.loops {
				listener.LoopEntry(in.A)
			}
		case bytecode.OpLoopBack:
			if g.loops {
				listener.LoopBack(in.A)
			}
		case bytecode.OpLoopExit:
			// Pop the matching loop; probes are inserted so exits match the
			// innermost active loop, but be robust to nested multi-exits.
			for i := len(f.loopStack) - 1; i >= 0; i-- {
				if f.loopStack[i].id == in.A {
					f.loopStack = append(f.loopStack[:i], f.loopStack[i+1:]...)
					break
				}
			}
			m.accessEpoch++
			if g.loops {
				listener.LoopExit(in.A)
			}

		case bytecode.OpPathEnter:
			base := len(m.pathArena)
			for i := 0; i < in.B; i++ {
				m.pathArena = append(m.pathArena, 0)
			}
			f.loopStack = append(f.loopStack, openLoop{id: in.A, base: base, npaths: in.B, saved: f.pathReg})
			f.pathReg = 0
			m.accessEpoch++
			if g.loops {
				listener.LoopEntry(in.A)
			}

		case bytecode.OpPathExit:
			n := len(f.loopStack)
			if n == 0 || f.loopStack[n-1].id != in.A || f.loopStack[n-1].base < 0 {
				return m.fail(f, "path.exit %d without matching path.enter", in.A)
			}
			ol := f.loopStack[n-1]
			idx := ol.base + f.pathReg + in.B
			if idx < ol.base || idx >= ol.base+ol.npaths {
				return m.fail(f, "path.exit %d: path id %d out of range [0,%d)", in.A, f.pathReg+in.B, ol.npaths)
			}
			m.pathArena[idx]++
			f.loopStack = f.loopStack[:n-1]
			m.flushPathLoop(&ol)
			f.pathReg = ol.saved
			m.accessEpoch++
			if g.loops {
				listener.LoopExit(in.A)
			}

		case bytecode.OpPathBump:
			// One finished iteration: count the path, restart at the header.
			n := len(f.loopStack)
			if n == 0 || f.loopStack[n-1].base < 0 {
				return m.fail(f, "path.bump outside a counted loop")
			}
			ol := &f.loopStack[n-1]
			idx := ol.base + f.pathReg + in.B
			if idx < ol.base || idx >= ol.base+ol.npaths {
				return m.fail(f, "path.bump: path id %d out of range [0,%d)", f.pathReg+in.B, ol.npaths)
			}
			m.pathArena[idx]++
			f.pathReg = 0
			f.pc = in.A

		case bytecode.OpPathInc:
			f.pathReg += in.A

		case bytecode.OpJmpTruePath:
			if m.pop(f).I != 0 {
				f.pathReg += in.B
				f.pc = in.A
			}
		case bytecode.OpJmpFalsePath:
			if m.pop(f).I == 0 {
				f.pathReg += in.B
				f.pc = in.A
			}

		default:
			return m.fail(f, "unknown opcode %s", in.Op)
		}
	}
}

// deliver transfers control to the innermost exception handler of f that
// covers atPC and matches the thrown object's class, unwinding active
// loops abandoned by the jump (emitting LoopExit events). It reports
// whether a handler was found.
func (m *VM) deliver(f *frame, th *Thrown, atPC int) bool {
	for _, h := range f.fn.Handlers {
		if atPC < h.From || atPC >= h.To {
			continue
		}
		hcls := m.prog.Sem.Classes[h.ClassID]
		if !th.Obj.Class.IsSubclassOf(hcls) {
			continue
		}
		// Pop loops the unwind abandons: everything above the handler's
		// static loop scope. Abandoned counted loops flush their counters
		// (the partial in-flight path is dropped) and restore the path
		// register they saved.
		inScope := map[int]bool{}
		for _, id := range h.LoopScope {
			inScope[id] = true
		}
		for len(f.loopStack) > 0 && !inScope[f.loopStack[len(f.loopStack)-1].id] {
			ol := f.loopStack[len(f.loopStack)-1]
			f.loopStack = f.loopStack[:len(f.loopStack)-1]
			if ol.base >= 0 {
				m.flushPathLoop(&ol)
				f.pathReg = ol.saved
			}
			m.accessEpoch++
			if m.cfg.Listener != nil {
				m.cfg.Listener.LoopExit(ol.id)
			}
		}
		f.stack = f.stack[:0]
		f.locals[h.Slot] = objVal(th.Obj)
		f.pc = h.Target
		return true
	}
	return false
}

func (m *VM) newArrayMulti(t *types.Type, dims []int) *Array {
	a := m.newArray(t, dims[0])
	if len(dims) > 1 {
		for i := range a.Elems {
			sub := m.newArrayMulti(t.Elem, dims[1:])
			a.Elems[i] = arrVal(sub)
			if m.cfg.Journal != nil {
				m.cfg.Journal.ArrayStoreAt(a, i, nil, sub)
			}
		}
	}
	return a
}

// jrnlKey maps a stored value to its journal element key and target entity:
// primitives carry their numeric value, strings their content, references
// the stored entity, and null neither.
func jrnlKey(v Value) (events.ElemKey, events.Entity) {
	switch v.K {
	case ValInt, ValBool:
		return v.I, nil
	case ValStr:
		return v.S, nil
	case ValObj:
		return nil, v.O
	case ValArr:
		return nil, v.A
	}
	return nil, nil
}

func (m *VM) lookupByName(cls *types.Class, name string) *types.Method {
	key := nmKey{classID: cls.ID, name: name}
	if mth, ok := m.byName[key]; ok {
		return mth
	}
	mth := cls.LookupMethod(name)
	m.byName[key] = mth
	return mth
}

func (m *VM) callBuiltin(f *frame, b types.Builtin, nargs int) error {
	args := make([]Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = m.pop(f)
	}
	listener := m.cfg.Listener
	switch b {
	case types.BuiltinRand:
		m.push(f, intVal(m.rand(args[0].I)))
	case types.BuiltinReadInput:
		var v int64
		if m.inPos < len(m.cfg.Input) {
			v = m.cfg.Input[m.inPos]
			m.inPos++
		}
		if m.gate.io {
			listener.InputRead()
		}
		m.push(f, intVal(v))
	case types.BuiltinWriteOutput:
		m.Output = append(m.Output, args[0])
		if m.gate.io {
			listener.OutputWrite()
		}
	case types.BuiltinPrint:
		m.Stdout = append(m.Stdout, args[0].String())
	case types.BuiltinCheck:
		if args[0].I == 0 {
			return m.fail(f, "check failed")
		}
	default:
		return m.fail(f, "unknown builtin %d", int(b))
	}
	return nil
}

// StdoutText returns everything print()ed, newline-joined.
func (m *VM) StdoutText() string { return strings.Join(m.Stdout, "\n") }
