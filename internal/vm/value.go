// Package vm implements the MJ bytecode interpreter: a stack machine with
// an identity-carrying heap, deterministic builtins, and hooks that emit
// profiling events to an events.Listener according to an instrumentation
// plan. It plays the role of the instrumented JVM in the AlgoProf paper.
package vm

import (
	"fmt"
	"strconv"

	"algoprof/internal/events"
	"algoprof/internal/mj/types"
)

// ValKind discriminates runtime values.
type ValKind uint8

// Runtime value kinds.
const (
	ValNull ValKind = iota
	ValInt
	ValBool
	ValStr
	ValObj
	ValArr
)

// Value is a runtime value.
type Value struct {
	K ValKind
	I int64 // int value, or 0/1 for bool
	S string
	O *Object
	A *Array
}

// Convenience constructors.
func intVal(i int64) Value { return Value{K: ValInt, I: i} }
func boolVal(b bool) Value {
	v := Value{K: ValBool}
	if b {
		v.I = 1
	}
	return v
}
func strVal(s string) Value  { return Value{K: ValStr, S: s} }
func objVal(o *Object) Value { return Value{K: ValObj, O: o} }
func arrVal(a *Array) Value  { return Value{K: ValArr, A: a} }

var nullVal = Value{K: ValNull}

// IsNull reports whether v is the null reference.
func (v Value) IsNull() bool { return v.K == ValNull }

// Entity returns the heap entity behind v, or nil for non-references.
func (v Value) Entity() events.Entity {
	switch v.K {
	case ValObj:
		return v.O
	case ValArr:
		return v.A
	}
	return nil
}

// String renders the value for debug printing and writeOutput.
func (v Value) String() string {
	switch v.K {
	case ValNull:
		return "null"
	case ValInt:
		return strconv.FormatInt(v.I, 10)
	case ValBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case ValStr:
		return v.S
	case ValObj:
		return fmt.Sprintf("%s@%d", v.O.Class.Name, v.O.ID)
	case ValArr:
		return fmt.Sprintf("%s@%d(len=%d)", v.A.Type.String(), v.A.ID, len(v.A.Elems))
	}
	return "?"
}

// equal implements MJ == semantics: ints and bools by value, strings by
// content, references by identity, null equal only to null.
func equal(a, b Value) bool {
	if a.K == ValNull || b.K == ValNull {
		return a.K == b.K
	}
	if a.K != b.K {
		return false
	}
	switch a.K {
	case ValInt, ValBool:
		return a.I == b.I
	case ValStr:
		return a.S == b.S
	case ValObj:
		return a.O == b.O
	case ValArr:
		return a.A == b.A
	}
	return false
}

// ---------------------------------------------------------------------------
// Heap entities

// Object is a heap-allocated class instance.
type Object struct {
	ID     uint64
	Class  *types.Class
	Fields []Value // indexed by field slot
}

// EntityID implements events.Entity.
func (o *Object) EntityID() uint64 { return o.ID }

// TypeName implements events.Entity.
func (o *Object) TypeName() string { return o.Class.Name }

// ClassID implements events.Entity.
func (o *Object) ClassID() int { return o.Class.ID }

// IsArray implements events.Entity.
func (o *Object) IsArray() bool { return false }

// Capacity implements events.Entity.
func (o *Object) Capacity() int { return 0 }

// ForEachRef implements events.Entity: visits non-nil object/array fields.
func (o *Object) ForEachRef(visit func(fieldID int, target events.Entity)) {
	for _, f := range o.Class.RefFields() {
		v := o.Fields[f.Slot]
		switch v.K {
		case ValObj:
			visit(f.ID, v.O)
		case ValArr:
			visit(f.ID, v.A)
		}
	}
}

// ForEachElemKey implements events.Entity (no elements on objects).
func (o *Object) ForEachElemKey(func(events.ElemKey)) {}

// AppendRefs implements events.RefBatcher.
func (o *Object) AppendRefs(keep func(fieldID int) bool, dst []events.Entity) []events.Entity {
	for _, f := range o.Class.RefFields() {
		if !keep(f.ID) {
			continue
		}
		v := o.Fields[f.Slot]
		switch v.K {
		case ValObj:
			dst = append(dst, v.O)
		case ValArr:
			dst = append(dst, v.A)
		}
	}
	return dst
}

// Array is a heap-allocated array. Type is the full array type, so the
// element type is Type.Elem.
type Array struct {
	ID    uint64
	Type  *types.Type
	Elems []Value
}

// EntityID implements events.Entity.
func (a *Array) EntityID() uint64 { return a.ID }

// TypeName implements events.Entity.
func (a *Array) TypeName() string { return a.Type.String() }

// ClassID implements events.Entity.
func (a *Array) ClassID() int { return -1 }

// IsArray implements events.Entity.
func (a *Array) IsArray() bool { return true }

// Capacity implements events.Entity.
func (a *Array) Capacity() int { return len(a.Elems) }

// ForEachRef implements events.Entity: visits non-nil reference elements.
func (a *Array) ForEachRef(visit func(fieldID int, target events.Entity)) {
	if !a.Type.Elem.IsRef() {
		return
	}
	for _, v := range a.Elems {
		switch v.K {
		case ValObj:
			visit(-1, v.O)
		case ValArr:
			visit(-1, v.A)
		}
	}
}

// ForEachElemKey implements events.Entity.
func (a *Array) ForEachElemKey(visit func(events.ElemKey)) {
	if a.Type.Elem.IsRef() {
		for _, v := range a.Elems {
			switch v.K {
			case ValObj:
				visit(events.RefKey(v.O.ID))
			case ValArr:
				visit(events.RefKey(v.A.ID))
			case ValStr:
				visit(v.S)
			}
		}
		return
	}
	for _, v := range a.Elems {
		switch v.K {
		case ValStr:
			visit(v.S)
		default:
			visit(v.I)
		}
	}
}
