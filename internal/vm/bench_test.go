package vm

import (
	"testing"

	"algoprof/internal/events"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
)

// benchSrc is a linked-list traversal dominated by one counted loop: a
// Node scan with a field access per iteration. It isolates interpreter
// dispatch cost — the loop body is a handful of instructions, so any
// per-instruction or per-probe overhead shows directly.
const benchSrc = `
class Node {
	int v;
	Node next;
}

class Main {
	static Node build(int n) {
		Node head = null;
		int i = 0;
		while (i < n) {
			Node x = new Node();
			x.v = i;
			x.next = head;
			head = x;
			i = i + 1;
		}
		return head;
	}

	static int scan(Node head) {
		int sum = 0;
		Node cur = head;
		while (cur != null) {
			sum = sum + cur.v;
			cur = cur.next;
		}
		return sum;
	}

	static void main() {
		Node head = build(200);
		int r = 0;
		int i = 0;
		while (i < 50) {
			r = scan(head);
			i = i + 1;
		}
		writeOutput(r);
	}
}
`

func benchProgram(b *testing.B) *bytecode.Program {
	b.Helper()
	prog, err := compiler.CompileSource(benchSrc)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	return prog
}

// nopPathListener discards every event, including the path-counter ones,
// so the benchmarks measure frontend dispatch cost alone.
type nopPathListener struct{ events.NopListener }

func (nopPathListener) SiteTouch(int, events.Entity) bool { return true }
func (nopPathListener) LoopPathCount(int, int, int64)     {}

var _ events.PathListener = nopPathListener{}

// BenchmarkDispatchPlain is the baseline: un-instrumented bytecode, no
// listener, pure interpreter dispatch.
func BenchmarkDispatchPlain(b *testing.B) {
	prog := benchProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(prog, Config{Seed: 1})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchEventsProbe runs the optimized events-mode rewrite: the
// scan loop streams a LoopBack plus a FieldGet probe per iteration.
func BenchmarkDispatchEventsProbe(b *testing.B) {
	prog := benchProgram(b)
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(ins.Prog, Config{Listener: nopPathListener{}, Plan: ins.Plan, Seed: 1})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchPathBump runs the paths-mode rewrite of the same
// program: the scan loop's per-iteration probes collapse into Ball–Larus
// path-register updates and one counter bump per iteration, with field
// accesses reduced to a first-touch check.
func BenchmarkDispatchPathBump(b *testing.B) {
	prog := benchProgram(b)
	ins, err := instrument.Instrument(prog, instrument.Paths)
	if err != nil {
		b.Fatal(err)
	}
	if len(ins.PathTables) == 0 {
		b.Fatal("no counted loops: path numbering rejected the scan loop")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := New(ins.Prog, Config{
			Listener: nopPathListener{},
			Plan:     ins.Plan,
			NumSites: ins.NumSites(),
			Seed:     1,
		})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
