package vm

import (
	"errors"
	"testing"

	"algoprof/internal/mj/compiler"
)

// watchdogSrc runs far more than one watchdog interval of instructions.
const watchdogSrc = `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 100000; i++) { s = s + 1; }
    check(s == 100000);
  }
}`

func compileWatchdogSrc(t *testing.T) *VM {
	t.Helper()
	prog, err := compiler.CompileSource(watchdogSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return New(prog, Config{Seed: 1})
}

// TestWatchdogHalt: a watchdog returning *Halt stops the run with that
// error after a bounded amount of further execution, and the machine
// keeps the instruction count of the executed prefix.
func TestWatchdogHalt(t *testing.T) {
	m := compileWatchdogSrc(t)
	polls := 0
	m.cfg.Watchdog = func() error {
		polls++
		if polls >= 2 {
			return &Halt{Reason: "test-budget"}
		}
		return nil
	}
	err := m.Run()
	var halt *Halt
	if !errors.As(err, &halt) {
		t.Fatalf("Run = %v, want *Halt", err)
	}
	if halt.Reason != "test-budget" {
		t.Errorf("halt reason = %q", halt.Reason)
	}
	if m.InstrCount == 0 {
		t.Error("halted run lost its instruction count")
	}
	if m.InstrCount > 3*watchdogInterval {
		t.Errorf("ran %d instructions past a 2-poll watchdog; poll spacing broken", m.InstrCount)
	}
}

// TestWatchdogPollsAfterFullInterval: the first poll comes only after a
// full interval of instructions, so even an immediately-firing watchdog
// leaves a nonempty executed prefix.
func TestWatchdogPollsAfterFullInterval(t *testing.T) {
	m := compileWatchdogSrc(t)
	m.cfg.Watchdog = func() error { return &Halt{Reason: "immediate"} }
	err := m.Run()
	var halt *Halt
	if !errors.As(err, &halt) {
		t.Fatalf("Run = %v, want *Halt", err)
	}
	if m.InstrCount < watchdogInterval {
		t.Errorf("halted after %d instructions, want at least one full interval (%d)",
			m.InstrCount, watchdogInterval)
	}
}

// TestPanicContained: a panic escaping a VM hook surfaces as a
// *PanicError with the panic value and stack, never as a process crash.
func TestPanicContained(t *testing.T) {
	m := compileWatchdogSrc(t)
	m.cfg.Watchdog = func() error { panic("hook exploded") }
	err := m.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %v (%T), want *PanicError", err, err)
	}
	if pe.Val != "hook exploded" {
		t.Errorf("panic value = %v", pe.Val)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
}
