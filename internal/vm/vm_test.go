package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"algoprof/internal/mj/compiler"
)

// run compiles and executes src, returning the VM for output inspection.
func run(t *testing.T, src string) *VM {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := New(prog, Config{Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// runErr compiles and executes src expecting a runtime error.
func runErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := New(prog, Config{Seed: 1, MaxSteps: 1_000_000})
	err = m.Run()
	if err == nil {
		t.Fatal("want runtime error, got none")
	}
	return err
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    print(1 + 2 * 3);
    print(10 / 3);
    print(10 % 3);
    print(-(5 - 9));
    print((2 + 3) * 4);
  }
}`)
	want := []string{"7", "3", "1", "4", "20"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %s, want %s", i, m.Stdout[i], w)
		}
	}
}

func TestBooleansAndComparisons(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    print(1 < 2);
    print(2 <= 1);
    print(3 == 3);
    print(3 != 3);
    print(!(1 > 0));
    print(true && false);
    print(true || false);
  }
}`)
	want := []string{"true", "false", "true", "false", "false", "false", "true"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %s, want %s", i, m.Stdout[i], w)
		}
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// The right side of && must not run when the left is false: calling
	// boom() would trap via check(false).
	run(t, `
class Main {
  static boolean boom() { check(false); return true; }
  public static void main() {
    boolean a = false && boom();
    boolean b = true || boom();
    print(a);
    print(b);
  }
}`)
}

func TestWhileAndForLoops(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 5; i++) { s = s + i; }
    print(s);
    int n = 0;
    while (n < 10) { n = n + 3; }
    print(n);
  }
}`)
	if m.Stdout[0] != "10" || m.Stdout[1] != "12" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestBreakContinue(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 100; i++) {
      if (i % 2 == 0) { continue; }
      if (i > 8) { break; }
      s = s + i;
    }
    print(s);
  }
}`)
	// 1+3+5+7 = 16
	if m.Stdout[0] != "16" {
		t.Errorf("got %v, want 16", m.Stdout[0])
	}
}

func TestNestedLoops(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int c = 0;
    for (int o = 0; o < 3; o++) {
      for (int i = 0; i < o; i++) { c++; }
    }
    print(c);
  }
}`)
	if m.Stdout[0] != "3" {
		t.Errorf("triangle count = %v, want 3", m.Stdout[0])
	}
}

func TestObjectsAndFields(t *testing.T) {
	m := run(t, `
class Point {
  int x; int y;
  Point(int x, int y) { this.x = x; this.y = y; }
  int sum() { return x + y; }
}
class Main {
  public static void main() {
    Point p = new Point(3, 4);
    print(p.sum());
    p.x = 10;
    print(p.sum());
  }
}`)
	if m.Stdout[0] != "7" || m.Stdout[1] != "14" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestLinkedListAndNullChecks(t *testing.T) {
	m := run(t, `
class Node { Node next; int v; Node(int v) { this.v = v; } }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 5; i++) {
      Node n = new Node(i);
      n.next = head;
      head = n;
    }
    int s = 0;
    Node cur = head;
    while (cur != null) { s = s + cur.v; cur = cur.next; }
    print(s);
  }
}`)
	if m.Stdout[0] != "10" {
		t.Errorf("list sum = %v, want 10", m.Stdout[0])
	}
}

func TestVirtualDispatchOverride(t *testing.T) {
	m := run(t, `
class Base { int get() { return 1; } int callGet() { return get(); } }
class Derived extends Base { int get() { return 2; } }
class Main {
  public static void main() {
    Base b = new Base();
    Base d = new Derived();
    print(b.get());
    print(d.get());
    print(d.callGet());
  }
}`)
	want := []string{"1", "2", "2"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %s, want %s", i, m.Stdout[i], w)
		}
	}
}

func TestInheritedFields(t *testing.T) {
	m := run(t, `
class Base { int a; }
class Derived extends Base { int b; }
class Main {
  public static void main() {
    Derived d = new Derived();
    d.a = 5; d.b = 7;
    print(d.a + d.b);
  }
}`)
	if m.Stdout[0] != "12" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestGenericsErasedDispatch(t *testing.T) {
	m := run(t, `
class Box<T> {
  T v;
  void set(T x) { v = x; }
  T get() { return v; }
}
class Item { int n; Item(int n) { this.n = n; } int n2() { return n * 2; } }
class Main {
  public static void main() {
    Box<Item> b = new Box<Item>();
    b.set(new Item(21));
    var it = b.get();
    print(it.n2());
  }
}`)
	if m.Stdout[0] != "42" {
		t.Errorf("got %v, want 42", m.Stdout)
	}
}

func TestRecursion(t *testing.T) {
	m := run(t, `
class Main {
  static int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  public static void main() { print(fib(15)); }
}`)
	if m.Stdout[0] != "610" {
		t.Errorf("fib(15) = %v, want 610", m.Stdout[0])
	}
}

func TestArrays(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int[] a = new int[5];
    for (int i = 0; i < a.length; i++) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < a.length; i++) { s = s + a[i]; }
    print(s);
  }
}`)
	if m.Stdout[0] != "30" {
		t.Errorf("got %v, want 30", m.Stdout[0])
	}
}

func TestMultiDimArrays(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int[][] g = new int[3][4];
    for (int i = 0; i < 3; i++) {
      for (int j = 0; j < 4; j++) { g[i][j] = i * 4 + j; }
    }
    print(g[2][3]);
    print(g.length);
    print(g[0].length);
  }
}`)
	want := []string{"11", "3", "4"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %s, want %s", i, m.Stdout[i], w)
		}
	}
}

func TestJaggedArrayOfArrays(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    int[][] tri = new int[3][];
    for (int i = 0; i < 3; i++) { tri[i] = new int[i]; }
    int total = 0;
    for (int i = 0; i < 3; i++) { total = total + tri[i].length; }
    print(total);
  }
}`)
	if m.Stdout[0] != "3" {
		t.Errorf("got %v, want 3", m.Stdout[0])
	}
}

func TestStringConcat(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    String s = "n" + 1;
    print(s);
    print(s + true);
    print("len:" + s.length);
  }
}`)
	want := []string{"n1", "n1true", "len:2"}
	for i, w := range want {
		if m.Stdout[i] != w {
			t.Errorf("line %d: got %q, want %q", i, m.Stdout[i], w)
		}
	}
}

func TestStringEqualityByValue(t *testing.T) {
	m := run(t, `
class Main {
  public static void main() {
    String a = "x" + 1;
    String b = "x1";
    print(a == b);
  }
}`)
	if m.Stdout[0] != "true" {
		t.Error("MJ strings compare by value")
	}
}

func TestRandDeterminism(t *testing.T) {
	src := `
class Main {
  public static void main() {
    for (int i = 0; i < 5; i++) { print(rand(100)); }
  }
}`
	m1 := run(t, src)
	prog, _ := compiler.CompileSource(src)
	m2 := New(prog, Config{Seed: 1})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(m1.Stdout, ",") != strings.Join(m2.Stdout, ",") {
		t.Error("same seed must give same rand sequence")
	}
	m3 := New(prog, Config{Seed: 2})
	if err := m3.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(m1.Stdout, ",") == strings.Join(m3.Stdout, ",") {
		t.Error("different seeds should give different rand sequences")
	}
	for _, s := range m1.Stdout {
		if len(s) > 2 { // >= 100
			t.Errorf("rand(100) out of range: %s", s)
		}
	}
}

func TestReadInputAndWriteOutput(t *testing.T) {
	prog, err := compiler.CompileSource(`
class Main {
  public static void main() {
    int a = readInput();
    int b = readInput();
    writeOutput(a + b);
    writeOutput(readInput());
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Config{Input: []int64{20, 22}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Output) != 2 || m.Output[0].I != 42 || m.Output[1].I != 0 {
		t.Errorf("output = %v", m.Output)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"null-field", `Node n = null; int v = n.v;`, "null"},
		{"null-call", `Node n = null; n.get();`, "null"},
		{"div-zero", `int z = 0; int x = 1 / z;`, "division by zero"},
		{"mod-zero", `int z = 0; int x = 1 % z;`, "division by zero"},
		{"oob", `int[] a = new int[2]; a[5] = 1;`, "out of bounds"},
		{"oob-neg", `int[] a = new int[2]; int x = a[-1];`, "out of bounds"},
		{"neg-size", `int n = -3; int[] a = new int[n];`, "negative array size"},
		{"check-fail", `check(1 == 2);`, "check failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := `
class Node { int v; int get() { return v; } }
class Main { public static void main() { ` + tc.body + ` } }`
			err := runErr(t, src)
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestMissingReturnTrap(t *testing.T) {
	err := runErr(t, `
class Main {
  static int f(int n) { if (n > 0) { return 1; } }
  public static void main() { int x = f(-1); }
}`)
	if !strings.Contains(err.Error(), "without returning") {
		t.Errorf("got %v", err)
	}
}

func TestInfiniteLoopBudget(t *testing.T) {
	err := runErr(t, `
class Main { public static void main() { while (true) { } } }`)
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("got %v", err)
	}
}

func TestStackOverflow(t *testing.T) {
	err := runErr(t, `
class Main {
  static int down(int n) { return down(n + 1); }
  public static void main() { int x = down(0); }
}`)
	if !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("got %v", err)
	}
}

func TestInstrCountGrowsWithWork(t *testing.T) {
	prog, err := compiler.CompileSource(`
class Main {
  static void work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + i; }
  }
  public static void main() { work(10); work(1000); }
}`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(prog, Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.InstrCount < 1000 {
		t.Errorf("InstrCount = %d, suspiciously low", m.InstrCount)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Property: the VM's integer arithmetic agrees with Go's on random operand
// pairs, exercising the whole pipeline (lexer, parser, checker, compiler,
// interpreter) per pair.
func TestArithmeticAgreesWithGoProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := int64(a), int64(b)
		src := `
class Main {
  public static void main() {
    int a = ` + formatI(x) + `;
    int b = ` + formatI(y) + `;
    print(a + b);
    print(a - b);
    print(a * b);
    if (b != 0) { print(a / b); print(a % b); }
    print(a < b);
    print(a == b);
  }
}`
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return false
		}
		m := New(prog, Config{})
		if err := m.Run(); err != nil {
			return false
		}
		want := []string{itoa64(x + y), itoa64(x - y), itoa64(x * y)}
		if y != 0 {
			want = append(want, itoa64(x/y), itoa64(x%y))
		}
		want = append(want, boolStr(x < y), boolStr(x == y))
		if len(m.Stdout) != len(want) {
			return false
		}
		for i := range want {
			if m.Stdout[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func formatI(x int64) string {
	if x < 0 {
		return "0 - " + itoa64(-x)
	}
	return itoa64(x)
}

func itoa64(x int64) string {
	neg := x < 0
	if neg {
		x = -x
	}
	s := itoa(int(x))
	if neg {
		return "-" + s
	}
	return s
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func TestAllocCount(t *testing.T) {
	m := run(t, `
class Node { }
class Main {
  public static void main() {
    for (int i = 0; i < 7; i++) { Node n = new Node(); }
    int[] a = new int[3];
  }
}`)
	if m.AllocCount != 8 {
		t.Errorf("AllocCount = %d, want 8", m.AllocCount)
	}
}

func TestEarlyReturnInsideLoop(t *testing.T) {
	m := run(t, `
class Main {
  static int find(int[] a, int x) {
    for (int i = 0; i < a.length; i++) {
      if (a[i] == x) { return i; }
    }
    return -1;
  }
  public static void main() {
    int[] a = new int[4];
    a[0] = 7; a[1] = 8; a[2] = 9; a[3] = 10;
    print(find(a, 9));
    print(find(a, 99));
  }
}`)
	if m.Stdout[0] != "2" || m.Stdout[1] != "-1" {
		t.Errorf("got %v", m.Stdout)
	}
}

func TestSuperConstructorChaining(t *testing.T) {
	m := run(t, `
class Base {
  int a;
  Base(int a) { this.a = a; }
}
class Derived extends Base {
  int b;
  Derived(int a, int b) {
    super(a);
    this.b = b;
  }
}
class Main {
  public static void main() {
    Derived d = new Derived(40, 2);
    print(d.a + d.b);
  }
}`)
	if m.Stdout[0] != "42" {
		t.Errorf("got %v, want 42", m.Stdout)
	}
}

func TestSuperChainThreeDeep(t *testing.T) {
	m := run(t, `
class A { int x; A(int x) { this.x = x; } }
class B extends A { int y; B(int x, int y) { super(x); this.y = y; } }
class C extends B { int z; C(int x, int y, int z) { super(x, y); this.z = z; } }
class Main {
  public static void main() {
    C c = new C(1, 2, 3);
    print(c.x + c.y + c.z);
  }
}`)
	if m.Stdout[0] != "6" {
		t.Errorf("got %v, want 6", m.Stdout)
	}
}

func TestSuperErrors(t *testing.T) {
	cases := []string{
		// super outside a constructor
		`class A { int v; A(int v) { this.v = v; } }
		 class B extends A { B() { super(1); } void f() { super(1); } }
		 class Main { public static void main() { } }`,
		// no superclass
		`class A { A() { super(); } }
		 class Main { public static void main() { } }`,
		// wrong arg count
		`class A { int v; A(int v) { this.v = v; } }
		 class B extends A { B() { super(); } }
		 class Main { public static void main() { } }`,
		// wrong arg type
		`class A { int v; A(int v) { this.v = v; } }
		 class B extends A { B() { super(true); } }
		 class Main { public static void main() { } }`,
	}
	for i, src := range cases {
		if _, err := compiler.CompileSource(src); err == nil {
			t.Errorf("case %d: want compile error", i)
		}
	}
}
