package dispatch

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"time"

	"algoprof/internal/chaos"
	"algoprof/internal/faultinject"
	"algoprof/internal/service"
	"algoprof/internal/trace/store"
	"algoprof/internal/workloads"
)

// RunChaos sweeps seeded distributed-failure schedules through the full
// dispatch stack — a real daemon (admission, quotas, journal) routing jobs
// to two in-process worker HTTP servers — and asserts the distributed
// robustness contract: zero lost jobs (every admitted job terminal exactly
// once), every failure typed, the daemon store listable with every
// persisted run passing the forensic audit. The four schedule families, by
// seed % 4: abrupt worker crash, network partition, slow worker against a
// short lease, and silent response corruption. `algoprof chaos -dist` runs
// this sweep.
func RunChaos(cfg chaos.Config) (*chaos.Report, error) {
	if cfg.Seeds <= 0 {
		cfg.Seeds = 16
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("dispatch chaos: Config.Dir required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rep := &chaos.Report{}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.BaseSeed + uint64(i)
		res := runChaosOne(cfg, seed, rep)
		rep.Results = append(rep.Results, res)
		cfg.Logf("dist-chaos: seed %d %s (%s): %s", seed, res.Workload, strings.Join(res.Faults, ","), res.Outcome)
	}
	return rep, nil
}

// chaosWorker is one in-process worker server the sweep can crash.
type chaosWorker struct {
	worker *Worker
	srv    *http.Server
	url    string
	host   string
}

// startChaosWorker boots a worker on a loopback listener.
func startChaosWorker(dir string) (*chaosWorker, error) {
	w, err := NewWorker(dir, nil)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	cw := &chaosWorker{
		worker: w,
		srv:    &http.Server{Handler: w.Handler()},
		url:    "http://" + ln.Addr().String(),
		host:   ln.Addr().String(),
	}
	go cw.srv.Serve(ln)
	return cw, nil
}

// crash kills the worker abruptly: the listener and every active
// connection close immediately, mid-stream — no drain, no goodbye.
func (cw *chaosWorker) crash() { cw.srv.Close() }

// distSchedule is one seed's fault plan: armed net points plus an optional
// crash of worker 1 and the lease TTL the family wants.
type distSchedule struct {
	names    []string
	arms     []func(*faultinject.Plan)
	crash    bool
	leaseTTL time.Duration
}

// newDistSchedule derives the schedule from the seed, targeting worker 1
// (host1) and leaving worker 2 as the healthy escape route.
func newDistSchedule(seed uint64, host1 string) distSchedule {
	mix := seed*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03
	draw := func(n uint64) uint64 {
		mix += 0x9e3779b97f4a7c15
		z := mix
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return (z ^ (z >> 31)) % n
	}
	sc := distSchedule{leaseTTL: time.Second}
	fault := func(name, point string, pc faultinject.PointConfig) {
		sc.names = append(sc.names, name)
		sc.arms = append(sc.arms, func(p *faultinject.Plan) { p.Arm(point, pc) })
	}
	switch seed % 4 {
	case 0:
		// Abrupt worker crash mid-batch: in-flight streams sever (transient),
		// the lease machinery and retry move everything to worker 2.
		sc.names = append(sc.names, "worker-crash")
		sc.crash = true
	case 1:
		// Network partition: worker 1 unreachable until the fire budget
		// heals the link.
		fault("partition", faultinject.PointNetPartition, faultinject.PointConfig{
			Prob: 1, MaxFires: 2 + int(draw(4)), Class: faultinject.Transient,
			PathSuffix: host1,
		})
	case 2:
		// Slow worker under a short lease: injected delays up to
		// faultinject.NetDelayMax against a 50ms TTL force revocations and
		// re-dispatch; delays under the TTL are merely slow.
		sc.leaseTTL = 50 * time.Millisecond
		fault("slow-worker", faultinject.PointNetDelay, faultinject.PointConfig{
			Prob: 1, MaxFires: 1 + int(draw(3)), Class: faultinject.Transient,
			PathSuffix: host1,
		})
	default:
		// Silent wire corruption: bit-flipped responses from worker 1 must
		// be detected (digest/stream checks), quarantine it, and re-execute
		// on worker 2 — never ingest damaged bytes.
		fault("corrupt-response", faultinject.PointNetCorrupt, faultinject.PointConfig{
			Prob: 1, MaxFires: 1 + int(draw(3)), Class: faultinject.Corruption,
			PathSuffix: host1,
		})
	}
	return sc
}

// distChaosWorkloads is the sweep corpus.
func distChaosWorkloads() []struct{ name, src string } {
	return []struct{ name, src string }{
		{"running", workloads.RunningExample(workloads.Random, 32, 8, 1)},
		{"sorts", workloads.MergeVsInsertion(24, 8, 1)},
	}
}

// runChaosOne boots a daemon plus two workers, runs one faulted schedule,
// and classifies. Panics become violations.
func runChaosOne(cfg chaos.Config, seed uint64, rep *chaos.Report) (res chaos.Result) {
	cases := distChaosWorkloads()
	wl := cases[(seed/4)%uint64(len(cases))]
	res = chaos.Result{Seed: seed, Workload: wl.name}
	defer func() {
		if r := recover(); r != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d: panic: %v", seed, r))
			res.Outcome = chaos.Failed
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()
	violation := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf("seed %d (%s): %s", seed, wl.name, fmt.Sprintf(format, args...)))
	}

	base := filepath.Join(cfg.Dir, fmt.Sprintf("dist-seed-%d", seed))
	w1, err := startChaosWorker(filepath.Join(base, "w1"))
	if err != nil {
		violation("worker 1 boot: %v", err)
		res.Outcome = chaos.Failed
		res.Err = err.Error()
		return res
	}
	defer w1.crash()
	w2, err := startChaosWorker(filepath.Join(base, "w2"))
	if err != nil {
		violation("worker 2 boot: %v", err)
		res.Outcome = chaos.Failed
		res.Err = err.Error()
		return res
	}
	defer w2.crash()

	sc := newDistSchedule(seed, w1.host)
	res.Faults = sc.names
	plan := faultinject.NewPlan(seed)
	for _, arm := range sc.arms {
		arm(plan)
	}
	dcfg := Config{
		Workers:   []string{w1.url, w2.url},
		LeaseTTL:  sc.leaseTTL,
		Retry:     faultinject.RetryPolicy{Attempts: 4, Backoff: 2 * time.Millisecond, Jitter: 0.5, Seed: seed},
		Transport: plan.Transport(nil),
	}
	svc, err := service.New(service.Config{
		StoreDir:     filepath.Join(base, "store"),
		Workers:      2,
		MakeExecutor: MakeExecutor(dcfg),
	})
	if err != nil {
		res.Outcome = chaos.Failed
		res.Class = faultinject.ClassOf(err)
		res.Err = err.Error()
		if res.Class == faultinject.Unknown {
			violation("untyped daemon boot failure: %v", err)
		}
		return res
	}

	const jobs = 4
	var ids []string
	for i := 0; i < jobs; i++ {
		v, err := svc.Submit(service.SubmitRequest{
			Tenant:  fmt.Sprintf("dist-%d", i%2),
			Program: wl.src,
			Config:  service.JobConfig{Seed: seed*jobs + uint64(i) + 1},
		})
		if err != nil {
			if faultinject.ClassOf(err) == faultinject.Unknown {
				violation("untyped submission rejection: %v", err)
			}
			continue
		}
		ids = append(ids, v.ID)
	}
	if sc.crash {
		// Let the batch reach worker 1, then kill it mid-flight.
		time.Sleep(10 * time.Millisecond)
		w1.crash()
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	svc.Drain(ctx)
	cancel()

	// The distributed invariant: zero lost jobs — every admitted job is
	// terminal — and every failure typed.
	worst := chaos.OK
	for _, id := range ids {
		v, ok := svc.Job(id)
		if !ok || !v.Status.Terminal() {
			violation("job %s lost: not terminal after drain", id)
			continue
		}
		switch v.Status {
		case service.StatusDegraded:
			if worst == chaos.OK {
				worst = chaos.Degraded
			}
		case service.StatusFailed:
			worst = chaos.Failed
			res.Err = v.Error
			res.Class = classFromName(v.ErrorClass)
			if v.ErrorClass == faultinject.Unknown.String() || v.ErrorKind == "" {
				violation("job %s failed untyped: kind=%q class=%q err=%s", id, v.ErrorKind, v.ErrorClass, v.Error)
			}
		}
	}

	// The daemon store must reopen, list cleanly, and hold only
	// audit-clean runs — a quarantined worker's damaged bytes must never
	// have been ingested.
	storeDir := filepath.Join(base, "store")
	clean, err := store.Open(storeDir)
	if err != nil {
		violation("store unopenable after drain: %v", err)
		res.Outcome = worst
		return res
	}
	clean.SetLogf(func(string, ...any) {})
	names, err := clean.List()
	if err != nil {
		violation("store unlistable after drain: %v", err)
		res.Outcome = worst
		return res
	}
	for _, name := range names {
		for _, f := range chaos.AuditRun(filepath.Join(storeDir, name)) {
			violation("ingested run %s failed audit: %s", name, f.Msg)
		}
	}
	res.Outcome = worst
	return res
}
