package dispatch

import (
	"sync"
	"time"
)

// breaker is a per-worker circuit breaker over consecutive transport
// failures. Closed, it admits everything. After threshold consecutive
// failures it opens for cooldown — the dispatcher routes around the
// worker instead of burning its retry budget against a host that keeps
// failing. Past the cooldown the next pick is the half-open probe: a
// success closes the breaker, another failure re-opens it for a fresh
// cooldown immediately.
//
// Quarantine (permanent exclusion on corruption) is deliberately not a
// breaker state: a breaker measures a host's recent reliability and
// forgives; corruption is never forgiven. The dispatcher tracks it
// separately.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	opens       int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether the worker may be picked: closed, or open with the
// cooldown elapsed (the half-open probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive < b.threshold || !time.Now().Before(b.openUntil)
}

// open reports whether the breaker currently rejects picks.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecutive >= b.threshold && time.Now().Before(b.openUntil)
}

// success closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.openUntil = time.Time{}
}

// failure records one failure; crossing the threshold (re-)opens the
// breaker for a cooldown.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		b.opens++
	}
}

// openCount returns how many times the breaker has opened.
func (b *breaker) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
