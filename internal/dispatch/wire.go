// Package dispatch is the daemon's distributed execution layer: it
// implements the service.Executor seam over remote worker processes
// (`algoprofd worker`), so compile-validated jobs admitted by one daemon
// execute on other machines while quotas, the job table, and the
// write-ahead journal stay centralized.
//
// The robustness contract extends the repo's job trichotomy across the
// network: a dispatched job still terminates exactly once as ok, degraded,
// or typed-failed, no matter which combination of worker crashes, network
// partitions, slow links, or silent wire corruption the schedule throws at
// it. The mechanisms, in the order a failing dispatch meets them:
//
//   - Leases: a worker holds a job under a TTL lease renewed by every
//     NDJSON heartbeat it streams back. A missed renewal revokes the lease
//     (the daemon cancels the request, which cancels the worker's VM) and
//     re-dispatches. Re-execution is safe because runs are deterministic —
//     a revoked-then-reissued job reproduces byte-identical artifacts, and
//     store ingestion deduplicates by content.
//   - Typed retry: transport failures and remote transient faults retry on
//     another worker under the jittered faultinject.RetryPolicy backoff;
//     per-worker circuit breakers stop hammering a host that keeps failing.
//   - Corruption quarantine: every result carries a content digest. A
//     digest mismatch, an unparseable stream, or a garbage artifact
//     quarantines the worker permanently and re-executes elsewhere —
//     damaged bytes are never retried against the same host and never
//     ingested.
//   - Graceful degradation: when every worker is quarantined, broken, or
//     unreachable, jobs fall back to the daemon's local executor under
//     clamped limits. Degraded capacity, never dropped jobs.
package dispatch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"algoprof/internal/service"
)

// Wire event types on the worker's NDJSON response stream.
const (
	// wireHeartbeat renews the job's lease and carries the approximate
	// executed-instruction count.
	wireHeartbeat = "heartbeat"
	// wireResultEvent terminates the stream with the job's result payload.
	wireResultEvent = "result"
)

// execRequest is the body of POST /w/v1/exec: the admitted job spec,
// verbatim, plus the lease the worker must renew.
type execRequest struct {
	Spec service.ExecSpec `json:"spec"`
	// LeaseTTLMs is the lease TTL in milliseconds: the worker must emit a
	// stream event at least this often or the daemon revokes the job.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
}

// wireEvent is one NDJSON line on the exec response stream.
type wireEvent struct {
	Type         string         `json:"type"`
	Instructions uint64         `json:"instructions,omitempty"`
	Result       *resultPayload `json:"result,omitempty"`
}

// resultPayload is the terminal event's payload: the job outcome, the
// typed error for remote failures, and — for persist jobs — the recorded
// run's artifact files, shipped back for ingestion into the daemon's
// store. Digest covers the whole payload so any silent wire damage is
// detected before anything is charged or ingested.
type resultPayload struct {
	Outcome *service.ExecOutcome `json:"outcome,omitempty"`
	// Error and ErrorClass describe a remote job-level failure: the
	// message and its faultinject class name. Transport-level failures
	// never reach this payload — they surface as stream errors.
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Files are the run directory's artifacts (manifest, program, traces)
	// keyed by file name, for persist jobs that recorded successfully.
	Files map[string][]byte `json:"files,omitempty"`
	// Digest is the hex SHA-256 over the payload's canonical JSON with
	// this field empty. The dispatcher recomputes it; a mismatch
	// classifies as Corruption and quarantines the worker.
	Digest string `json:"digest,omitempty"`
}

// computeDigest hashes the payload's canonical JSON form (Digest field
// cleared). Go's JSON marshaling is deterministic here — map keys sort,
// RawMessage bytes pass through verbatim — so the worker's digest and the
// dispatcher's recomputation agree exactly when the bytes survived the
// wire.
func (r *resultPayload) computeDigest() string {
	cp := *r
	cp.Digest = ""
	data, err := json.Marshal(&cp)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
