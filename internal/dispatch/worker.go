package dispatch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"algoprof/internal/faultinject"
	"algoprof/internal/service"
	"algoprof/internal/trace/store"
)

// DefaultLeaseTTL is the lease a dispatcher grants when its Config leaves
// LeaseTTL zero. Workers heartbeat at a third of the TTL, so a healthy
// slow job renews its lease long before expiry; only a dead worker, a
// severed link, or a stalled stream misses one.
const DefaultLeaseTTL = 2 * time.Second

// maxExecRequestBytes bounds the request body a worker will read — well
// above any real program plus config, well below a memory-exhaustion
// payload.
const maxExecRequestBytes = 16 << 20

// Worker executes dispatched jobs: an HTTP server that runs each
// POST /w/v1/exec job through service.RunJob against a private scratch
// store and streams heartbeats plus the digest-protected result back.
// It is the process behind `algoprofd worker`, and chaos/bench harnesses
// embed it in-process.
//
// The worker is deliberately stateless across jobs: persist jobs record
// into the scratch store, ship their artifact files in the result, and the
// scratch run is discarded — the daemon's store is the only durable one,
// so a worker can crash, restart, or be wiped at any time without losing
// anything the daemon acknowledged.
type Worker struct {
	store *store.Store
	logf  func(string, ...any)

	mu   sync.Mutex
	cond *sync.Cond
	busy map[string]bool

	executed atomic.Int64
}

// NewWorker opens (or creates) the scratch store in dir. logf may be nil.
func NewWorker(dir string, logf func(string, ...any)) (*Worker, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	st.SetLogf(logf)
	w := &Worker{store: st, logf: logf, busy: map[string]bool{}}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Executed returns how many jobs this worker has run to a result (tests,
// chaos assertions).
func (w *Worker) Executed() int64 { return w.executed.Load() }

// Handler returns the worker's HTTP API.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /w/v1/exec", w.handleExec)
	mux.HandleFunc("GET /w/v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// lockID serializes executions of one job ID on this worker. A revoked
// lease can leave a zombie attempt still tearing down (its VM halts within
// a few thousand instructions of the request context cancelling) when the
// re-dispatch of the same job lands back on the same worker; the scratch
// run directory is keyed by job ID, so the new attempt waits for the
// zombie to release it instead of colliding.
func (w *Worker) lockID(id string) (unlock func()) {
	w.mu.Lock()
	for w.busy[id] {
		w.cond.Wait()
	}
	w.busy[id] = true
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		delete(w.busy, id)
		w.cond.Broadcast()
		w.mu.Unlock()
	}
}

// lineWriter serializes NDJSON lines onto the response, flushing each one
// so heartbeats actually reach the dispatcher's lease timer.
type lineWriter struct {
	mu sync.Mutex
	w  io.Writer
	fl http.Flusher
}

func (lw *lineWriter) send(ev wireEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	// A write error means the dispatcher is gone (lease revoked, daemon
	// crashed): nothing to do — the job's effects live only in scratch.
	if _, err := lw.w.Write(append(data, '\n')); err == nil {
		lw.fl.Flush()
	}
}

func (w *Worker) handleExec(rw http.ResponseWriter, r *http.Request) {
	var req execRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxExecRequestBytes)).Decode(&req); err != nil {
		// An undecodable request on a trusted wire is damage, not a client
		// bug; 400 classifies as Corruption on the dispatcher side.
		http.Error(rw, "bad exec request: "+err.Error(), http.StatusBadRequest)
		return
	}
	spec := req.Spec
	if spec.ID == "" || spec.Program == "" {
		http.Error(rw, "exec request without job id or program", http.StatusBadRequest)
		return
	}
	ttl := time.Duration(req.LeaseTTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	fl, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/x-ndjson")
	rw.WriteHeader(http.StatusOK)
	out := &lineWriter{w: rw, fl: fl}
	// First heartbeat immediately: the dispatcher's lease clock should
	// measure worker liveness, not connection setup.
	out.send(wireEvent{Type: wireHeartbeat})

	var instructions atomic.Uint64
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		t := time.NewTicker(heartbeatInterval(ttl))
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				out.send(wireEvent{Type: wireHeartbeat, Instructions: instructions.Load()})
			}
		}
	}()

	unlock := w.lockID(spec.ID)
	if spec.Persist {
		// Clear debris from a revoked earlier attempt of this same job.
		if err := w.store.Discard(spec.ID); err != nil {
			w.logf("worker: discard stale scratch %s: %v", spec.ID, err)
		}
	}
	outcome, err := service.RunJob(r.Context(), w.store, spec, func(n uint64) {
		instructions.Store(n)
	}, w.logf)
	var files map[string][]byte
	if spec.Persist {
		files = w.collectRun(spec.ID)
		if derr := w.store.Discard(spec.ID); derr != nil {
			w.logf("worker: discard scratch %s: %v", spec.ID, derr)
		}
	}
	unlock()
	close(stop)
	hb.Wait()
	w.executed.Add(1)

	res := &resultPayload{Outcome: outcome}
	if err != nil {
		res.Error = err.Error()
		res.ErrorClass = faultinject.ClassOf(err).String()
		// A failed job ships no artifacts: the daemon stores nothing for
		// it, so nothing must look ingestible.
		files = nil
	}
	if files[store.ManifestName] == nil {
		// Without a manifest the run can never list or replay — ship
		// nothing rather than an unusable partial.
		files = nil
	}
	res.Files = files
	res.Digest = res.computeDigest()
	out.send(wireEvent{Type: wireResultEvent, Result: res})
}

// heartbeatInterval renews the lease three times per TTL.
func heartbeatInterval(ttl time.Duration) time.Duration {
	iv := ttl / 3
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// collectRun reads the scratch run's files for shipping. Failures degrade
// to an empty map: the dispatcher treats an artifact-less persist result
// as transient and re-executes.
func (w *Worker) collectRun(id string) map[string][]byte {
	dir := filepath.Join(w.store.Dir(), id)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	files := map[string][]byte{}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			w.logf("worker: read artifact %s/%s: %v", id, e.Name(), err)
			return nil
		}
		files[e.Name()] = data
	}
	return files
}
