package dispatch

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"time"

	"algoprof/internal/faultinject"
	"algoprof/internal/service"
	"algoprof/internal/trace/store"
	"algoprof/internal/workloads"
)

// BenchConfig parameterizes the distributed dispatch benchmark.
type BenchConfig struct {
	// Dir is the scratch directory (stores, worker scratch). Required.
	Dir string
	// Workers is the fleet size per leg (default 3).
	Workers int
	// Jobs per leg (default 24).
	Jobs int
	// Crashes lists the legs: one leg per entry, crashing that many
	// workers mid-batch (default {0, 1, 2}).
	Crashes []int
	// Seed drives the per-job workload seeds.
	Seed uint64
	// Logf receives progress lines (nil = silent).
	Logf func(string, ...any)
}

// BenchLeg is one leg's measurements: a batch of jobs pushed through the
// distributed stack while the configured number of workers crash abruptly
// mid-batch.
type BenchLeg struct {
	Name          string `json:"name"`
	WorkerCrashes int    `json:"worker_crashes"`
	Jobs          int    `json:"jobs"`

	OK       int `json:"ok"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	// Lost counts admitted jobs that never reached a terminal status —
	// the gate requires zero, crashes or not.
	Lost int `json:"lost"`
	// UntypedFailures counts failed jobs without a fault class — also
	// gated to zero.
	UntypedFailures int `json:"untyped_failures"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	P50LatencyMs         float64 `json:"p50_latency_ms"`
	P95LatencyMs         float64 `json:"p95_latency_ms"`

	// Dispatch-layer counters: what the fault load actually exercised.
	Dispatched       int64 `json:"dispatched"`
	Retries          int64 `json:"retries"`
	LeaseRevocations int64 `json:"lease_revocations"`
	Quarantines      int64 `json:"quarantines"`
	Fallbacks        int64 `json:"fallbacks"`
	RemoteOK         int64 `json:"remote_ok"`
}

// BenchReport is the full benchmark: one leg per crash count.
type BenchReport struct {
	Workers    int        `json:"workers"`
	JobsPerLeg int        `json:"jobs_per_leg"`
	Legs       []BenchLeg `json:"legs"`
}

// Check gates the report: every leg must have zero lost jobs and zero
// untyped failures. It returns the violations (empty = pass).
func (r *BenchReport) Check() []string {
	var v []string
	if len(r.Legs) == 0 {
		v = append(v, "bench report has no legs")
	}
	for _, leg := range r.Legs {
		if leg.Lost != 0 {
			v = append(v, fmt.Sprintf("leg %s: %d lost jobs (want 0)", leg.Name, leg.Lost))
		}
		if leg.UntypedFailures != 0 {
			v = append(v, fmt.Sprintf("leg %s: %d untyped failures (want 0)", leg.Name, leg.UntypedFailures))
		}
		if leg.OK+leg.Degraded == 0 {
			v = append(v, fmt.Sprintf("leg %s: no job succeeded", leg.Name))
		}
	}
	return v
}

// RunBench measures dispatch throughput and latency under worker crashes:
// one leg per configured crash count, each on a fresh daemon and fleet.
func RunBench(cfg BenchConfig) (*BenchReport, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("dispatch bench: Config.Dir required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 24
	}
	if len(cfg.Crashes) == 0 {
		cfg.Crashes = []int{0, 1, 2}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	rep := &BenchReport{Workers: cfg.Workers, JobsPerLeg: cfg.Jobs}
	for _, crashes := range cfg.Crashes {
		if crashes >= cfg.Workers {
			return nil, fmt.Errorf("dispatch bench: leg crashes %d >= fleet size %d", crashes, cfg.Workers)
		}
		leg, err := runBenchLeg(cfg, crashes)
		if err != nil {
			return nil, err
		}
		rep.Legs = append(rep.Legs, *leg)
		cfg.Logf("bench-dispatch: %s: %.1f jobs/s p95 %.1fms (%d ok, %d retries, %d revocations, %d fallbacks)",
			leg.Name, leg.ThroughputJobsPerSec, leg.P95LatencyMs, leg.OK, leg.Retries, leg.LeaseRevocations, leg.Fallbacks)
	}
	return rep, nil
}

func runBenchLeg(cfg BenchConfig, crashes int) (*BenchLeg, error) {
	base := filepath.Join(cfg.Dir, fmt.Sprintf("leg-crash-%d", crashes))
	var fleet []*chaosWorker
	var urls []string
	for i := 0; i < cfg.Workers; i++ {
		cw, err := startChaosWorker(filepath.Join(base, fmt.Sprintf("w%d", i)))
		if err != nil {
			return nil, err
		}
		fleet = append(fleet, cw)
		urls = append(urls, cw.url)
	}
	defer func() {
		for _, cw := range fleet {
			cw.crash()
		}
	}()

	var disp *Dispatcher
	svc, err := service.New(service.Config{
		StoreDir: filepath.Join(base, "store"),
		Workers:  cfg.Workers + 1,
		MakeExecutor: func(local service.Executor, st *store.Store) service.Executor {
			disp = New(Config{
				Workers:  urls,
				LeaseTTL: 500 * time.Millisecond,
				Retry:    faultinject.RetryPolicy{Attempts: 4, Backoff: 2 * time.Millisecond, Jitter: 0.5, Seed: cfg.Seed},
				Fallback: local,
				Store:    st,
			})
			return disp
		},
	})
	if err != nil {
		return nil, err
	}

	src := workloads.RunningExample(workloads.Random, 32, 8, 1)
	leg := &BenchLeg{Name: fmt.Sprintf("crash-%d", crashes), WorkerCrashes: crashes, Jobs: cfg.Jobs}
	start := time.Now()
	var ids []string
	for i := 0; i < cfg.Jobs; i++ {
		v, err := svc.Submit(service.SubmitRequest{
			Tenant: "bench", Workload: "dispatch-bench", Program: src,
			Config: service.JobConfig{Seed: cfg.Seed*uint64(cfg.Jobs) + uint64(i) + 1},
		})
		if err != nil {
			return nil, fmt.Errorf("bench submit %d: %w", i, err)
		}
		ids = append(ids, v.ID)
		if crashes > 0 && i == cfg.Jobs/4 {
			// Crash mid-batch: in-flight leases sever, queued work re-routes.
			for c := 0; c < crashes; c++ {
				fleet[c].crash()
			}
		}
	}

	// Wait for every job to land, then measure.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := svc.Stats()
		if st.Queued == 0 && st.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)

	var latencies []float64
	for _, id := range ids {
		v, ok := svc.Job(id)
		if !ok || !v.Status.Terminal() {
			leg.Lost++
			continue
		}
		latencies = append(latencies, float64(v.QueueMs+v.RunMs))
		switch v.Status {
		case service.StatusOK:
			leg.OK++
		case service.StatusDegraded:
			leg.Degraded++
		case service.StatusFailed:
			leg.Failed++
			if v.ErrorClass == faultinject.Unknown.String() || v.ErrorClass == "" {
				leg.UntypedFailures++
			}
		}
	}
	leg.ThroughputJobsPerSec = round2(float64(len(ids)-leg.Lost) / elapsed.Seconds())
	leg.P50LatencyMs = percentile(latencies, 0.50)
	leg.P95LatencyMs = percentile(latencies, 0.95)
	if disp != nil {
		stats := disp.Stats()
		leg.Dispatched = stats.Dispatched
		leg.Retries = stats.Retries
		leg.LeaseRevocations = stats.LeaseRevocations
		leg.Quarantines = stats.Quarantines
		leg.Fallbacks = stats.Fallbacks
		leg.RemoteOK = stats.RemoteOK
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	svc.Drain(ctx)
	cancel()
	return leg, nil
}

// percentile returns the p-quantile of xs (nearest-rank), 0 for empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64{}, xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
