package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/service"
	"algoprof/internal/trace/store"
)

// WorkerLocal is the Worker name reported for jobs that executed through
// the local fallback executor.
const WorkerLocal = "local"

// LeaseExpiredError reports a revoked lease: the worker streamed no event
// within the TTL, so the dispatcher cancelled the attempt and will
// re-dispatch. Transient — the job itself is fine.
type LeaseExpiredError struct {
	Worker string
	TTL    time.Duration
}

// Error implements error.
func (e *LeaseExpiredError) Error() string {
	return fmt.Sprintf("dispatch: lease expired: worker %s silent for %v", e.Worker, e.TTL)
}

// FaultClass implements faultinject.Classifier.
func (*LeaseExpiredError) FaultClass() faultinject.FaultClass { return faultinject.Transient }

// CorruptResultError reports a response that arrived but cannot be
// trusted: an unparseable stream, a digest mismatch, a malformed payload.
// Corruption-classed — the worker is quarantined, the bytes are never
// ingested, and the job re-executes elsewhere.
type CorruptResultError struct {
	Worker string
	Reason string
}

// Error implements error.
func (e *CorruptResultError) Error() string {
	return fmt.Sprintf("dispatch: corrupt result from worker %s: %s", e.Worker, e.Reason)
}

// FaultClass implements faultinject.Classifier.
func (*CorruptResultError) FaultClass() faultinject.FaultClass { return faultinject.Corruption }

// NoWorkersError reports that no worker was available (all quarantined or
// breaker-open) and no local fallback is configured. Resource-classed
// backpressure.
type NoWorkersError struct{}

// Error implements error.
func (*NoWorkersError) Error() string {
	return "dispatch: no workers available and no local fallback"
}

// FaultClass implements faultinject.Classifier.
func (*NoWorkersError) FaultClass() faultinject.FaultClass { return faultinject.Resource }

// RemoteError is a job-level failure reported by the worker that ran it —
// the remote counterpart of the error RunJob would have returned locally.
// It carries the remote fault class through the wire so the daemon's
// error typing is location-independent.
type RemoteError struct {
	Worker string
	Msg    string
	Class  faultinject.FaultClass
}

// Error implements error.
func (e *RemoteError) Error() string { return e.Msg }

// FaultClass implements faultinject.Classifier.
func (e *RemoteError) FaultClass() faultinject.FaultClass { return e.Class }

// Config parameterizes a Dispatcher.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://10.0.0.7:7071").
	Workers []string
	// LeaseTTL is the per-job lease: a worker that streams no event for
	// this long is revoked and the job re-dispatched (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Retry is the cross-worker retry budget for transient failures; the
	// zero value uses DefaultDispatchRetry. Attempts counts total
	// dispatches of one job, Delay spaces them with jittered exponential
	// backoff desynchronized per job key.
	Retry faultinject.RetryPolicy
	// BreakerThreshold consecutive transport failures open a worker's
	// circuit breaker (0 = 3); BreakerCooldown is how long it stays open
	// (0 = 250ms).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Transport carries worker HTTP traffic; nil uses
	// http.DefaultTransport. Chaos schedules pass a
	// faultinject.Plan.Transport here.
	Transport http.RoundTripper
	// Fallback, when non-nil, executes jobs locally once the dispatch
	// budget is exhausted or no worker is available — degraded capacity
	// instead of dropped jobs. Normally service's local executor.
	Fallback service.Executor
	// FallbackLimits clamp (never loosen) a job's limits when it falls
	// back locally, protecting the daemon process from absorbing the whole
	// fleet's load at full size.
	FallbackLimits algoprof.Limits
	// Store is the daemon's run store; persist-job artifacts shipped back
	// by workers ingest here.
	Store *store.Store
	// Logf receives operational lines (nil = silent).
	Logf func(string, ...any)
}

// DefaultDispatchRetry is the dispatch-layer retry budget: up to four
// dispatch attempts with a doubling, half-jittered backoff between them.
var DefaultDispatchRetry = faultinject.RetryPolicy{Attempts: 4, Backoff: 5 * time.Millisecond, Jitter: 0.5}

// workerState is one worker's dispatch-side state.
type workerState struct {
	url string
	br  *breaker

	quarantined atomic.Bool
	inflight    atomic.Int64
	dispatched  atomic.Int64
	ok          atomic.Int64
	failures    atomic.Int64
}

// Stats is the dispatcher's counter snapshot.
type Stats struct {
	// Dispatched counts exec attempts sent to workers; Retries counts the
	// attempts after each job's first.
	Dispatched int64 `json:"dispatched"`
	Retries    int64 `json:"retries"`
	// RemoteOK counts jobs whose final result came from a worker.
	RemoteOK int64 `json:"remote_ok"`
	// LeaseRevocations counts leases the dispatcher revoked for missed
	// heartbeats.
	LeaseRevocations int64 `json:"lease_revocations"`
	// CorruptResults counts responses rejected by digest/parse checks;
	// Quarantines counts workers permanently excluded for them.
	CorruptResults int64 `json:"corrupt_results"`
	Quarantines    int64 `json:"quarantines"`
	// BreakerOpens sums every worker breaker's open transitions.
	BreakerOpens int64 `json:"breaker_opens"`
	// Fallbacks counts jobs that executed on the local fallback executor.
	Fallbacks int64 `json:"fallbacks"`

	Workers []WorkerStats `json:"workers"`
}

// WorkerStats is one worker's snapshot.
type WorkerStats struct {
	URL         string `json:"url"`
	Inflight    int64  `json:"inflight"`
	Dispatched  int64  `json:"dispatched"`
	OK          int64  `json:"ok"`
	Failures    int64  `json:"failures"`
	Quarantined bool   `json:"quarantined"`
	BreakerOpen bool   `json:"breaker_open"`
}

// Dispatcher implements service.Executor over a fleet of remote workers.
// Safe for concurrent use by all of the daemon's pool workers.
type Dispatcher struct {
	cfg     Config
	client  *http.Client
	workers []*workerState
	logf    func(string, ...any)

	rr               atomic.Uint64
	retries          atomic.Int64
	remoteOK         atomic.Int64
	leaseRevocations atomic.Int64
	corruptResults   atomic.Int64
	quarantines      atomic.Int64
	fallbacks        atomic.Int64
}

// New builds a Dispatcher. The zero-ish Config is made serviceable with
// defaults; Store is required when any job persists.
func New(cfg Config) *Dispatcher {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Retry.Attempts <= 0 {
		cfg.Retry = DefaultDispatchRetry
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	d := &Dispatcher{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		logf:   logf,
	}
	for _, u := range cfg.Workers {
		d.workers = append(d.workers, &workerState{
			url: u,
			br:  newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	return d
}

// MakeExecutor returns the service.Config.MakeExecutor hook that wires
// this dispatcher behind the daemon's executor seam: the daemon's local
// executor becomes the fallback (unless the Config set one explicitly)
// and the daemon's store receives ingested artifacts.
func MakeExecutor(cfg Config) func(local service.Executor, st *store.Store) service.Executor {
	return func(local service.Executor, st *store.Store) service.Executor {
		if cfg.Fallback == nil {
			cfg.Fallback = local
		}
		if cfg.Store == nil {
			cfg.Store = st
		}
		return New(cfg)
	}
}

// Stats snapshots the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	st := Stats{
		Retries:          d.retries.Load(),
		RemoteOK:         d.remoteOK.Load(),
		LeaseRevocations: d.leaseRevocations.Load(),
		CorruptResults:   d.corruptResults.Load(),
		Quarantines:      d.quarantines.Load(),
		Fallbacks:        d.fallbacks.Load(),
	}
	for _, w := range d.workers {
		st.Dispatched += w.dispatched.Load()
		st.BreakerOpens += w.br.openCount()
		st.Workers = append(st.Workers, WorkerStats{
			URL:         w.url,
			Inflight:    w.inflight.Load(),
			Dispatched:  w.dispatched.Load(),
			OK:          w.ok.Load(),
			Failures:    w.failures.Load(),
			Quarantined: w.quarantined.Load(),
			BreakerOpen: w.br.open(),
		})
	}
	return st
}

// Execute implements service.Executor: dispatch the job to a worker,
// retrying transient failures across the fleet with jittered backoff, and
// fall back to local execution rather than ever dropping the job.
func (d *Dispatcher) Execute(ctx context.Context, spec service.ExecSpec, progress func(uint64)) (*service.ExecOutcome, error) {
	rp := d.cfg.Retry
	// Desynchronize backoff streams across jobs: two jobs that hit the
	// same transient fault at the same moment must not retry in lockstep.
	rp.Seed ^= fnv64(spec.Key)

	var lastErr error
	attempts := 0
	for try := 0; try < rp.Attempts; try++ {
		w := d.pick()
		if w == nil {
			break
		}
		attempts++
		if attempts > 1 {
			d.retries.Add(1)
		}
		out, err := d.execOn(ctx, w, spec, progress)
		w.inflight.Add(-1)
		if err == nil {
			w.br.success()
			w.ok.Add(1)
			d.remoteOK.Add(1)
			out.Worker = w.url
			out.DispatchAttempts = attempts
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The daemon is force-draining or the run context died: stop
			// dispatching, surface the cancellation.
			return nil, err
		}
		switch faultinject.ClassOf(err) {
		case faultinject.Corruption:
			d.quarantine(w, spec.ID, err)
		case faultinject.Transient:
			w.failures.Add(1)
			w.br.failure()
			d.logf("dispatch: job %s attempt %d on %s failed transient: %v", spec.ID, attempts, w.url, err)
		default:
			var re *RemoteError
			if errors.As(err, &re) {
				// The worker is healthy; the job itself failed with a
				// deterministic typed error. Re-running it anywhere would
				// reproduce the same failure — this IS the job's result.
				w.br.success()
				if out != nil {
					out.Worker = w.url
					out.DispatchAttempts = attempts
				}
				return out, err
			}
			w.failures.Add(1)
			w.br.failure()
			d.logf("dispatch: job %s attempt %d on %s failed: %v", spec.ID, attempts, w.url, err)
		}
		if try < rp.Attempts-1 {
			sleepCtx(ctx, rp.Delay(try))
		}
	}

	// Dispatch budget exhausted or no worker available: degrade to local
	// execution under clamped limits. The job never drops.
	if d.cfg.Fallback != nil {
		d.fallbacks.Add(1)
		if lastErr != nil {
			d.logf("dispatch: job %s falling back to local execution: %v", spec.ID, lastErr)
		}
		fspec := spec
		fspec.Config.Limits = clampLimits(spec.Config.Limits, d.cfg.FallbackLimits)
		out, err := d.cfg.Fallback.Execute(ctx, fspec, progress)
		if out != nil {
			out.Worker = WorkerLocal
			out.DispatchAttempts = attempts
		}
		return out, err
	}
	if lastErr == nil {
		lastErr = &NoWorkersError{}
	}
	return nil, lastErr
}

// pick selects the least-loaded available worker, rotating the scan start
// so ties spread round-robin. It claims an inflight slot on the winner.
func (d *Dispatcher) pick() *workerState {
	n := len(d.workers)
	if n == 0 {
		return nil
	}
	start := d.rr.Add(1) - 1
	var best *workerState
	var bestLoad int64
	for i := 0; i < n; i++ {
		w := d.workers[(start+uint64(i))%uint64(n)]
		if w.quarantined.Load() || !w.br.allow() {
			continue
		}
		load := w.inflight.Load()
		if best == nil || load < bestLoad {
			best, bestLoad = w, load
		}
	}
	if best != nil {
		best.inflight.Add(1)
		best.dispatched.Add(1)
	}
	return best
}

// quarantine permanently excludes a worker that produced untrustworthy
// bytes.
func (d *Dispatcher) quarantine(w *workerState, jobID string, err error) {
	w.failures.Add(1)
	d.corruptResults.Add(1)
	if !w.quarantined.Swap(true) {
		d.quarantines.Add(1)
		d.logf("dispatch: quarantining worker %s (job %s): %v", w.url, jobID, err)
	}
}

// execOn runs one dispatch attempt against one worker, enforcing the
// lease: any TTL-long silence on the response stream cancels the request
// (revoking the job on the worker via its request context) and returns a
// transient LeaseExpiredError.
func (d *Dispatcher) execOn(ctx context.Context, w *workerState, spec service.ExecSpec, progress func(uint64)) (*service.ExecOutcome, error) {
	body, err := json.Marshal(execRequest{Spec: spec, LeaseTTLMs: d.cfg.LeaseTTL.Milliseconds()})
	if err != nil {
		return nil, fmt.Errorf("dispatch: marshal exec request: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var expired atomic.Bool
	lease := time.AfterFunc(d.cfg.LeaseTTL, func() {
		expired.Store(true)
		cancel()
	})
	defer lease.Stop()
	revoked := func() error {
		d.leaseRevocations.Add(1)
		return &LeaseExpiredError{Worker: w.url, TTL: d.cfg.LeaseTTL}
	}

	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.url+"/w/v1/exec", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("dispatch: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		if expired.Load() {
			return nil, revoked()
		}
		if ctx.Err() != nil {
			return nil, err
		}
		if faultinject.ClassOf(err) != faultinject.Unknown {
			return nil, err
		}
		// Real connection failures (refused, reset, DNS) classify exactly
		// like injected ones: transient transport faults.
		return nil, faultinject.NetFault(faultinject.PointNetDial, "exec "+w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		reason := fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return nil, faultinject.NetFault(faultinject.PointNetDial, "exec "+w.url+": "+reason, nil)
		}
		// A 4xx from a trusted worker means the request bytes it saw were
		// not the request bytes we sent.
		d.corruptResults.Add(1)
		return nil, &CorruptResultError{Worker: w.url, Reason: reason}
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<20)
	for sc.Scan() {
		lease.Reset(d.cfg.LeaseTTL)
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			d.corruptResults.Add(1)
			return nil, &CorruptResultError{Worker: w.url, Reason: "unparseable stream event: " + err.Error()}
		}
		switch ev.Type {
		case wireHeartbeat:
			if progress != nil && ev.Instructions > 0 {
				progress(ev.Instructions)
			}
		case wireResultEvent:
			return d.finishResult(w, spec, ev.Result)
		default:
			d.corruptResults.Add(1)
			return nil, &CorruptResultError{Worker: w.url, Reason: fmt.Sprintf("unknown stream event %q", ev.Type)}
		}
	}
	// The stream ended without a result: severed mid-job.
	if expired.Load() {
		return nil, revoked()
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	err = sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, faultinject.NetFault(faultinject.PointNetDrop, "result stream from "+w.url, err)
}

// finishResult validates a result payload and turns it into the job's
// outcome: digest verification first, then remote-error reconstruction,
// then artifact ingestion for persist jobs.
func (d *Dispatcher) finishResult(w *workerState, spec service.ExecSpec, res *resultPayload) (*service.ExecOutcome, error) {
	if res == nil {
		d.corruptResults.Add(1)
		return nil, &CorruptResultError{Worker: w.url, Reason: "result event without payload"}
	}
	if got := res.computeDigest(); res.Digest == "" || got != res.Digest {
		d.corruptResults.Add(1)
		return nil, &CorruptResultError{
			Worker: w.url,
			Reason: fmt.Sprintf("result digest mismatch (got %.12s, want %.12s)", got, res.Digest),
		}
	}
	if res.Error != "" {
		out := res.Outcome
		if out != nil {
			// The daemon ingested nothing for a failed job; charge no
			// trace bytes regardless of what landed on worker scratch.
			out.TraceBytes = 0
		}
		return out, &RemoteError{Worker: w.url, Msg: res.Error, Class: classFromName(res.ErrorClass)}
	}
	out := res.Outcome
	if out == nil {
		d.corruptResults.Add(1)
		return nil, &CorruptResultError{Worker: w.url, Reason: "ok result without outcome"}
	}
	if spec.Persist {
		if res.Files[store.ManifestName] == nil {
			// A successful persist run without artifacts is not corruption
			// (the digest checked out) — the worker salvaged nothing
			// shippable. Re-execute; the fallback records locally if the
			// whole fleet produces nothing.
			return nil, faultinject.NetFault(faultinject.PointNetDrop,
				"persist result without artifacts from "+w.url, io.ErrUnexpectedEOF)
		}
		n, err := d.cfg.Store.IngestRun(spec.ID, res.Files)
		if err != nil {
			if faultinject.ClassOf(err) == faultinject.Corruption {
				d.corruptResults.Add(1)
			}
			return nil, err
		}
		out.TraceBytes = n
	} else {
		out.TraceBytes = 0
	}
	return out, nil
}

// clampLimits tightens cur by cap: every cap field that is set becomes an
// upper bound on the corresponding limit (unlimited cur fields adopt the
// cap). Mirrors the quota clamp — a fallback never loosens anything.
func clampLimits(cur, cap algoprof.Limits) algoprof.Limits {
	if cap.MaxEvents > 0 && (cur.MaxEvents == 0 || cur.MaxEvents > cap.MaxEvents) {
		cur.MaxEvents = cap.MaxEvents
	}
	if cap.MaxLiveBytes > 0 && (cur.MaxLiveBytes == 0 || cur.MaxLiveBytes > cap.MaxLiveBytes) {
		cur.MaxLiveBytes = cap.MaxLiveBytes
	}
	if cap.MaxTraceBytes > 0 && (cur.MaxTraceBytes == 0 || cur.MaxTraceBytes > cap.MaxTraceBytes) {
		cur.MaxTraceBytes = cap.MaxTraceBytes
	}
	if cap.Deadline > 0 && (cur.Deadline == 0 || cur.Deadline > cap.Deadline) {
		cur.Deadline = cap.Deadline
	}
	return cur
}

// classFromName maps a wire fault-class name back to the enum.
func classFromName(name string) faultinject.FaultClass {
	for _, c := range []faultinject.FaultClass{
		faultinject.Transient, faultinject.Corruption, faultinject.Resource,
	} {
		if c.String() == name {
			return c
		}
	}
	return faultinject.Unknown
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// fnv64 is the FNV-1a hash (retry-stream desynchronization per job key).
func fnv64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
