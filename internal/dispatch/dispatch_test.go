package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"algoprof"
	"algoprof/internal/faultinject"
	"algoprof/internal/service"
	"algoprof/internal/trace/store"
	"algoprof/internal/workloads"
)

var testSrc = workloads.RunningExample(workloads.Random, 24, 8, 1)

// failSrc compiles but fails deterministically at runtime: the remote
// typed-failure case.
const failSrc = `
class Main {
  public static void main() {
    int x = 1;
    check(x == 2);
  }
}`

func newWorkerServer(t *testing.T) (*Worker, *httptest.Server) {
	t.Helper()
	w, err := NewWorker(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

func newDaemonStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetLogf(func(string, ...any) {})
	return st
}

func testSpec(id string, persist bool) service.ExecSpec {
	cfg := algoprof.Config{Mode: algoprof.ModeEvents, Seed: 7}
	if !persist {
		cfg.Mode = algoprof.ModePaths
	}
	return service.ExecSpec{
		ID:      id,
		Tenant:  "disp",
		Key:     service.JobKey("disp", "w", testSrc, cfg),
		Program: testSrc,
		Config:  cfg,
		Persist: persist,
	}
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

func libraryCompactJSON(t *testing.T, src string, cfg algoprof.Config) []byte {
	t.Helper()
	prof, err := algoprof.Run(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := prof.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, data); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDispatchExecutesRemotely: the basic remote path — the job runs on
// the worker, its artifacts ingest into the daemon store, and the outcome
// is byte-identical to a local library run.
func TestDispatchExecutesRemotely(t *testing.T) {
	_, srv := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{Workers: []string{srv.URL}, Store: st, Logf: t.Logf})

	spec := testSpec("j1-000001", true)
	out, err := d.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != srv.URL || out.DispatchAttempts != 1 {
		t.Fatalf("worker=%q attempts=%d, want %q/1", out.Worker, out.DispatchAttempts, srv.URL)
	}
	prof, err := algoprof.Run(spec.Program, spec.Config)
	if err != nil {
		t.Fatal(err)
	}
	if out.Events != prof.EventCount() {
		t.Fatalf("remote events %d, want library's %d", out.Events, prof.EventCount())
	}
	if want := libraryCompactJSON(t, spec.Program, spec.Config); !bytes.Equal(out.ProfileJSON, want) {
		t.Errorf("remote profile differs from library run\nremote: %s\nlocal:  %s", out.ProfileJSON, want)
	}
	if out.TraceBytes <= 0 {
		t.Fatalf("persist job charged %d trace bytes", out.TraceBytes)
	}
	if _, err := st.Replay(spec.ID); err != nil {
		t.Fatalf("ingested run does not replay: %v", err)
	}
}

// TestDispatchPathsModeNoPersist: a paths-mode job ships no artifacts and
// charges no trace bytes, but the profile still comes back.
func TestDispatchPathsModeNoPersist(t *testing.T) {
	_, srv := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{Workers: []string{srv.URL}, Store: st})

	out, err := d.Execute(context.Background(), testSpec("j1-000002", false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.ProfileJSON) == 0 || out.TraceBytes != 0 {
		t.Fatalf("paths outcome: profile %d bytes, trace %d", len(out.ProfileJSON), out.TraceBytes)
	}
	if names, _ := st.List(); len(names) != 0 {
		t.Fatalf("paths-mode job left runs in the daemon store: %v", names)
	}
}

// TestDispatchRetriesTransient: an injected connection failure consumes
// one attempt; the jittered retry lands the job on the next one.
func TestDispatchRetriesTransient(t *testing.T) {
	_, srv := newWorkerServer(t)
	st := newDaemonStore(t)
	plan := faultinject.NewPlan(11)
	plan.Arm(faultinject.PointNetDial, faultinject.PointConfig{
		Prob: 1, MaxFires: 1, Class: faultinject.Transient, Errno: syscall.ECONNREFUSED,
	})
	d := New(Config{
		Workers:   []string{srv.URL},
		Store:     st,
		Transport: plan.Transport(nil),
		Retry:     faultinject.RetryPolicy{Attempts: 3, Backoff: time.Millisecond, Jitter: 0.5},
		Logf:      t.Logf,
	})

	out, err := d.Execute(context.Background(), testSpec("j1-000003", true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.DispatchAttempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected dial failure)", out.DispatchAttempts)
	}
	stats := d.Stats()
	if stats.Retries != 1 || stats.Dispatched != 2 {
		t.Fatalf("stats = %+v, want 1 retry / 2 dispatched", stats)
	}
}

// TestDispatchCorruptionQuarantines: a worker whose responses are
// silently bit-flipped is quarantined permanently — the digest/stream
// checks catch the damage, the job re-executes on a clean worker, and no
// later job ever routes to the quarantined one.
func TestDispatchCorruptionQuarantines(t *testing.T) {
	_, srv1 := newWorkerServer(t)
	_, srv2 := newWorkerServer(t)
	st := newDaemonStore(t)
	plan := faultinject.NewPlan(23)
	plan.Arm(faultinject.PointNetCorrupt, faultinject.PointConfig{
		Prob: 1, Class: faultinject.Corruption, PathSuffix: hostOf(srv1.URL),
	})
	d := New(Config{
		Workers:   []string{srv1.URL, srv2.URL},
		Store:     st,
		Transport: plan.Transport(nil),
		Logf:      t.Logf,
	})

	out, err := d.Execute(context.Background(), testSpec("j1-000004", true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != srv2.URL {
		t.Fatalf("job finished on %q, want the clean worker %q", out.Worker, srv2.URL)
	}
	stats := d.Stats()
	if stats.Quarantines != 1 || stats.CorruptResults == 0 {
		t.Fatalf("stats = %+v, want 1 quarantine and detected corruption", stats)
	}
	if _, err := st.Replay("j1-000004"); err != nil {
		t.Fatalf("run ingested from clean worker does not replay: %v", err)
	}

	// The quarantine is permanent: later jobs never touch worker 1.
	before := d.Stats().Workers[0].Dispatched
	if _, err := d.Execute(context.Background(), testSpec("j1-000005", true), nil); err != nil {
		t.Fatal(err)
	}
	if after := d.Stats().Workers[0].Dispatched; after != before {
		t.Fatalf("quarantined worker received %d new dispatches", after-before)
	}
}

// stuckHandler speaks just enough protocol to look alive, then goes
// silent: one heartbeat, then nothing until the request context dies.
func stuckHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/x-ndjson")
		rw.WriteHeader(http.StatusOK)
		fmt.Fprintf(rw, "{\"type\":%q}\n", wireHeartbeat)
		rw.(http.Flusher).Flush()
		<-r.Context().Done()
	})
}

// TestDispatchLeaseRevocation: a worker that stops heartbeating loses its
// lease after the TTL; the dispatcher revokes (cancelling the remote
// attempt) and the job lands on a healthy worker.
func TestDispatchLeaseRevocation(t *testing.T) {
	stuck := httptest.NewServer(stuckHandler())
	t.Cleanup(stuck.Close)
	_, good := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{
		Workers:  []string{stuck.URL, good.URL},
		Store:    st,
		LeaseTTL: 80 * time.Millisecond,
		Retry:    faultinject.RetryPolicy{Attempts: 3, Backoff: time.Millisecond},
		Logf:     t.Logf,
	})

	out, err := d.Execute(context.Background(), testSpec("j1-000006", true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != good.URL || out.DispatchAttempts != 2 {
		t.Fatalf("worker=%q attempts=%d, want %q/2", out.Worker, out.DispatchAttempts, good.URL)
	}
	if stats := d.Stats(); stats.LeaseRevocations != 1 {
		t.Fatalf("stats = %+v, want 1 lease revocation", stats)
	}
}

// TestDispatchFallbackNoWorkers: with an empty fleet, jobs execute on the
// local fallback under clamped limits — never dropped.
func TestDispatchFallbackNoWorkers(t *testing.T) {
	st := newDaemonStore(t)
	d := New(Config{
		Store:    st,
		Fallback: service.NewLocalExecutor(st, nil),
	})
	spec := testSpec("j1-000007", true)
	out, err := d.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != WorkerLocal || out.DispatchAttempts != 0 {
		t.Fatalf("worker=%q attempts=%d, want local/0", out.Worker, out.DispatchAttempts)
	}
	if d.Stats().Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", d.Stats())
	}
	if _, err := st.Replay(spec.ID); err != nil {
		t.Fatalf("fallback run does not replay: %v", err)
	}
}

// TestDispatchFallbackDeadFleet: every worker unreachable (refused
// connections) exhausts the retry budget and degrades to local execution.
func TestDispatchFallbackDeadFleet(t *testing.T) {
	// A listener that is immediately closed: connection refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	st := newDaemonStore(t)
	d := New(Config{
		Workers:  []string{deadURL},
		Store:    st,
		Retry:    faultinject.RetryPolicy{Attempts: 2, Backoff: time.Millisecond},
		Fallback: service.NewLocalExecutor(st, nil),
		Logf:     t.Logf,
	})
	out, err := d.Execute(context.Background(), testSpec("j1-000008", true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != WorkerLocal || out.DispatchAttempts != 2 {
		t.Fatalf("worker=%q attempts=%d, want local/2", out.Worker, out.DispatchAttempts)
	}
	stats := d.Stats()
	if stats.Fallbacks != 1 || stats.Workers[0].Failures != 2 {
		t.Fatalf("stats = %+v, want 1 fallback / 2 worker failures", stats)
	}
}

// TestDispatchNoWorkersNoFallbackTyped: the pathological configuration
// still fails typed, never silently.
func TestDispatchNoWorkersNoFallbackTyped(t *testing.T) {
	d := New(Config{Store: newDaemonStore(t)})
	_, err := d.Execute(context.Background(), testSpec("j1-000009", false), nil)
	if err == nil || faultinject.ClassOf(err) != faultinject.Resource {
		t.Fatalf("err = %v (class %v), want typed Resource", err, faultinject.ClassOf(err))
	}
}

// TestDispatchRemoteTypedFailureNotRetried: a deterministic job-level
// failure is the job's result — re-running it anywhere reproduces it, so
// the dispatcher must not burn retries or punish the worker.
func TestDispatchRemoteTypedFailureNotRetried(t *testing.T) {
	_, srv := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{Workers: []string{srv.URL}, Store: st, Logf: t.Logf})

	cfg := algoprof.Config{Mode: algoprof.ModeEvents, Seed: 1}
	spec := service.ExecSpec{
		ID: "j1-000010", Tenant: "disp", Key: service.JobKey("disp", "w", failSrc, cfg),
		Program: failSrc, Config: cfg, Persist: true,
	}
	_, err := d.Execute(context.Background(), spec, nil)
	if err == nil || !strings.Contains(err.Error(), "check") {
		t.Fatalf("err = %v, want the remote check failure", err)
	}
	stats := d.Stats()
	if stats.Retries != 0 || stats.Dispatched != 1 {
		t.Fatalf("stats = %+v: a deterministic failure must not retry", stats)
	}
	if stats.Workers[0].BreakerOpen || stats.Workers[0].Quarantined {
		t.Fatalf("healthy worker penalized for a job-level failure: %+v", stats.Workers[0])
	}
}

// TestDispatchBreakerOpens: enough consecutive transport failures open the
// worker's breaker, and pick() routes around it while open.
func TestDispatchBreakerOpens(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	_, good := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{
		Workers:          []string{deadURL, good.URL},
		Store:            st,
		Retry:            faultinject.RetryPolicy{Attempts: 4, Backoff: time.Millisecond},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
		Logf:             t.Logf,
	})

	// Two jobs: the dead worker eats one transient failure per job (pick
	// rotation alternates), crossing the threshold on the second.
	for i := 0; i < 2; i++ {
		if _, err := d.Execute(context.Background(), testSpec(fmt.Sprintf("j1-0000%d", 11+i), true), nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := d.Stats()
	if stats.Workers[0].Failures < 2 || !stats.Workers[0].BreakerOpen {
		t.Fatalf("dead worker stats = %+v, want open breaker", stats.Workers[0])
	}
	if stats.BreakerOpens < 1 {
		t.Fatalf("stats = %+v, want at least one breaker open", stats)
	}

	// While open, jobs go straight to the healthy worker: first attempt.
	out, err := d.Execute(context.Background(), testSpec("j1-000013", true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Worker != good.URL || out.DispatchAttempts != 1 {
		t.Fatalf("worker=%q attempts=%d, want %q/1 (breaker routes around)", out.Worker, out.DispatchAttempts, good.URL)
	}
}

// TestDispatchIdempotentReingest: the same job result landing twice (a
// revoked-then-completed first attempt racing the re-dispatch) ingests
// exactly once, deduplicated by content.
func TestDispatchIdempotentReingest(t *testing.T) {
	_, srv := newWorkerServer(t)
	st := newDaemonStore(t)
	d := New(Config{Workers: []string{srv.URL}, Store: st})

	spec := testSpec("j1-000014", true)
	first, err := d.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Re-dispatch the identical spec: deterministic re-execution produces
	// byte-identical artifacts, and ingestion dedups by content.
	second, err := d.Execute(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.TraceBytes != second.TraceBytes || !bytes.Equal(first.ProfileJSON, second.ProfileJSON) {
		t.Fatalf("re-dispatch diverged: %d/%d trace bytes", first.TraceBytes, second.TraceBytes)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("store has %d runs after duplicate ingest, want 1", len(names))
	}
}

// TestClampLimits: fallback limits only ever tighten.
func TestClampLimits(t *testing.T) {
	cap := algoprof.Limits{MaxEvents: 100, MaxTraceBytes: 1000, Deadline: time.Second}
	got := clampLimits(algoprof.Limits{MaxEvents: 500, MaxLiveBytes: 7}, cap)
	want := algoprof.Limits{MaxEvents: 100, MaxLiveBytes: 7, MaxTraceBytes: 1000, Deadline: time.Second}
	if got != want {
		t.Fatalf("clamp = %+v, want %+v", got, want)
	}
	// No caps set: limits pass through.
	if got := clampLimits(want, algoprof.Limits{}); got != want {
		t.Fatalf("zero cap changed limits: %+v", got)
	}
	// A tighter request survives the clamp.
	if got := clampLimits(algoprof.Limits{MaxEvents: 10}, cap); got.MaxEvents != 10 {
		t.Fatalf("clamp loosened MaxEvents to %d", got.MaxEvents)
	}
}

// TestServiceWithDispatchExecutor: the whole stack — service admission,
// journal, quotas — running on remote execution via the MakeExecutor
// seam. Job views carry the worker attribution and persisted runs land in
// the daemon's store.
func TestServiceWithDispatchExecutor(t *testing.T) {
	_, srv := newWorkerServer(t)
	dir := t.TempDir()
	svc, err := service.New(service.Config{
		StoreDir:     dir,
		Workers:      2,
		MakeExecutor: MakeExecutor(Config{Workers: []string{srv.URL}, Logf: t.Logf}),
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()

	var ids []string
	for i := 0; i < 3; i++ {
		v, err := svc.Submit(service.SubmitRequest{
			Tenant: "fleet", Program: testSrc,
			Config: service.JobConfig{Seed: uint64(i + 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			v, ok := svc.Job(id)
			if ok && v.Status.Terminal() {
				if v.Status != service.StatusOK {
					t.Fatalf("job %s = %s (%s)", id, v.Status, v.Error)
				}
				if v.Worker != srv.URL || v.DispatchAttempts != 1 {
					t.Fatalf("job %s worker=%q attempts=%d", id, v.Worker, v.DispatchAttempts)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never terminal", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if _, err := svc.Store().Replay(id); err != nil {
			t.Fatalf("run %s does not replay from daemon store: %v", id, err)
		}
	}
	if used := svc.Stats().Tenants["fleet"].EventsUsed; used == 0 {
		t.Fatal("remote execution charged no events")
	}
}
