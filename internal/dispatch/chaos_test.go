package dispatch

import (
	"testing"

	"algoprof/internal/chaos"
)

// TestDistChaosSweep runs two full cycles of the four distributed fault
// families (worker crash, partition, slow worker, corrupt response) and
// requires a violation-free report: no lost jobs, no untyped failures, no
// damaged artifacts ingested.
func TestDistChaosSweep(t *testing.T) {
	rep, err := RunChaos(chaos.Config{
		Seeds:    8,
		BaseSeed: 400,
		Dir:      t.TempDir(),
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("distributed chaos sweep violations:\n%s", rep.Violations)
	}
	ok, degraded, failed := rep.Counts()
	t.Logf("dist chaos: %d ok / %d degraded / %d failed (all typed)", ok, degraded, failed)
	if ok == 0 {
		t.Fatal("no schedule succeeded — the harness is not exercising the healthy path")
	}
}
