package callgraph

import (
	"testing"

	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
)

func build(t *testing.T, src string) (*Graph, *bytecode.Program) {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog), prog
}

func methodID(t *testing.T, p *bytecode.Program, qualified string) int {
	t.Helper()
	for _, m := range p.Sem.Methods() {
		if m.QualifiedName() == qualified {
			return m.ID
		}
	}
	t.Fatalf("no method %s", qualified)
	return -1
}

func TestNoRecursion(t *testing.T) {
	g, p := build(t, `
class Main {
  static void a() { b(); }
  static void b() { }
  public static void main() { a(); }
}`)
	for _, m := range p.Sem.Methods() {
		if g.Recursive[m.ID] {
			t.Errorf("%s wrongly marked recursive", m.QualifiedName())
		}
	}
}

func TestSelfRecursion(t *testing.T) {
	g, p := build(t, `
class Main {
  static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
  public static void main() { int x = fact(5); }
}`)
	fact := methodID(t, p, "Main.fact")
	if !g.Recursive[fact] {
		t.Error("fact should be recursive")
	}
	if !g.Header[fact] {
		t.Error("fact should be a header (called from main, outside its SCC)")
	}
	if g.Recursive[methodID(t, p, "Main.main")] {
		t.Error("main is not recursive")
	}
}

func TestMutualRecursion(t *testing.T) {
	g, p := build(t, `
class Main {
  static boolean isEven(int n) { if (n == 0) { return true; } return isOdd(n - 1); }
  static boolean isOdd(int n) { if (n == 0) { return false; } return isEven(n - 1); }
  public static void main() { boolean b = isEven(10); }
}`)
	even := methodID(t, p, "Main.isEven")
	odd := methodID(t, p, "Main.isOdd")
	if !g.Recursive[even] || !g.Recursive[odd] {
		t.Error("both mutually recursive methods must be marked")
	}
	if g.SCCID[even] != g.SCCID[odd] {
		t.Error("mutually recursive methods must share an SCC")
	}
	if !g.Header[even] {
		t.Error("isEven is the entry into the cycle and should be a header")
	}
}

func TestVirtualCallEdgesIncludeOverrides(t *testing.T) {
	g, p := build(t, `
class Base { void step(Base b) { } }
class Derived extends Base { void step(Base b) { b.step(b); } }
class Main {
  public static void main() {
    Base x = new Derived();
    x.step(x);
  }
}`)
	dstep := methodID(t, p, "Derived.step")
	if !g.Recursive[dstep] {
		t.Error("Derived.step can call itself through the virtual call; must be recursive")
	}
}

func TestDynamicCallEdgesByName(t *testing.T) {
	g, p := build(t, `
class Rec<T> {
  T v;
  void spin(T x) { x.spin(x); }
}
class Main {
  public static void main() {
    Rec<Rec> r = new Rec<Rec>();
  }
}`)
	spin := methodID(t, p, "Rec.spin")
	if !g.Recursive[spin] {
		t.Error("dynamic call by name 'spin' must create a recursive edge")
	}
}

func TestIndirectRecursionThroughThree(t *testing.T) {
	g, p := build(t, `
class Main {
  static void a(int n) { if (n > 0) { b(n); } }
  static void b(int n) { c(n); }
  static void c(int n) { a(n - 1); }
  public static void main() { a(3); }
}`)
	for _, name := range []string{"Main.a", "Main.b", "Main.c"} {
		if !g.Recursive[methodID(t, p, name)] {
			t.Errorf("%s should be recursive", name)
		}
	}
	a := methodID(t, p, "Main.a")
	if !g.Header[a] {
		t.Error("a is entered from main: header")
	}
	// b and c are only called from inside the cycle.
	if g.Header[methodID(t, p, "Main.b")] || g.Header[methodID(t, p, "Main.c")] {
		t.Error("b/c should not be headers")
	}
}

func TestConstructorEdges(t *testing.T) {
	// A constructor that builds the rest of the list recursively.
	g, p := build(t, `
class Node {
  Node next;
  Node(int n) { if (n > 0) { next = new Node(n - 1); } }
}
class Main { public static void main() { Node n = new Node(5); } }`)
	ctor := methodID(t, p, "Node.Node")
	if !g.Recursive[ctor] {
		t.Error("recursive constructor must be detected")
	}
}

func TestSCCTopologicalOrder(t *testing.T) {
	g, p := build(t, `
class Main {
  static void leaf() { }
  static void mid() { leaf(); }
  public static void main() { mid(); }
}`)
	// Callees' SCC ids must be <= callers' in reverse topological numbering.
	for caller, cs := range g.Callees {
		for _, callee := range cs {
			if g.SCCID[callee] > g.SCCID[caller] {
				t.Errorf("callee %s has SCC %d > caller %s SCC %d",
					p.Sem.MethodByID(callee).QualifiedName(), g.SCCID[callee],
					p.Sem.MethodByID(caller).QualifiedName(), g.SCCID[caller])
			}
		}
	}
}

func TestEverySCCHasMembers(t *testing.T) {
	g, _ := build(t, `
class Main {
  static int f(int n) { if (n == 0) { return 0; } return g(n - 1); }
  static int g(int n) { return f(n); }
  public static void main() { int x = f(4); }
}`)
	total := 0
	for _, comp := range g.SCCs {
		if len(comp) == 0 {
			t.Error("empty SCC")
		}
		total += len(comp)
	}
	if total != len(g.Callees) {
		t.Errorf("SCC members %d != methods %d", total, len(g.Callees))
	}
}

func TestRecursiveMethodIDsSorted(t *testing.T) {
	g, _ := build(t, `
class Main {
  static void x(int n) { if (n > 0) { x(n - 1); } }
  static void y(int n) { if (n > 0) { y(n - 1); } }
  public static void main() { x(1); y(1); }
}`)
	ids := g.RecursiveMethodIDs()
	if len(ids) != 2 {
		t.Fatalf("got %d recursive methods, want 2", len(ids))
	}
	if ids[0] >= ids[1] {
		t.Error("ids must be sorted")
	}
}
