// Package callgraph builds a static call graph over compiled MJ programs
// and detects recursion using Tarjan's strongly-connected-components
// algorithm. The AlgoProf paper (§3.1) uses this analysis — citing its
// companion work on separating design from algorithm — to limit method
// entry/exit instrumentation to methods that can participate in recursive
// cycles ("recursion headers").
package callgraph

import (
	"sort"

	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/types"
)

// Graph is a static call graph: Callees[m] lists the method ids m may call.
type Graph struct {
	Prog    *bytecode.Program
	Callees [][]int

	// SCCID[m] is the component id of method m; components are numbered in
	// reverse topological order (callees before callers).
	SCCID []int
	// SCCs lists member method ids per component.
	SCCs [][]int

	// Recursive[m] reports whether m is part of a call cycle (a
	// non-trivial SCC or a self-loop).
	Recursive []bool
	// Header[m] reports whether m is a recursion header: a recursive
	// method through which its cycle can be entered from outside (or the
	// program entry). Instrumenting all recursive methods is sound; the
	// headers are reported for diagnostics and ablations.
	Header []bool
}

// Build constructs the call graph of p.
func Build(p *bytecode.Program) *Graph {
	n := len(p.Funcs)
	g := &Graph{Prog: p, Callees: make([][]int, n)}

	// Methods by name, for dynamic (erased-receiver) call edges.
	byName := map[string][]*types.Method{}
	for _, m := range p.Sem.Methods() {
		byName[m.Name] = append(byName[m.Name], m)
	}

	for _, fn := range p.Funcs {
		seen := map[int]bool{}
		add := func(id int) {
			if !seen[id] {
				seen[id] = true
				g.Callees[fn.Method.ID] = append(g.Callees[fn.Method.ID], id)
			}
		}
		for _, in := range fn.Code {
			switch in.Op {
			case bytecode.OpCallStatic:
				add(in.A)
			case bytecode.OpCallVirt:
				declared := p.Sem.MethodByID(in.A)
				if declared.IsConstructor {
					add(declared.ID)
					continue
				}
				// Conservative: the declared target plus every override in
				// subclasses of the declaring class.
				add(declared.ID)
				for _, cls := range p.Sem.Classes {
					if cls != declared.Owner && cls.IsSubclassOf(declared.Owner) {
						if m := cls.LookupMethod(declared.Name); m != nil && m.Owner == cls {
							add(m.ID)
						}
					}
				}
			case bytecode.OpCallDyn:
				// Fully dynamic: any method with this name.
				for _, m := range byName[in.S] {
					add(m.ID)
				}
			}
		}
		sort.Ints(g.Callees[fn.Method.ID])
	}

	g.computeSCCs()
	g.classify()
	return g
}

// computeSCCs runs Tarjan's algorithm iteratively (explicit stack) so deep
// call chains cannot overflow the Go stack.
func (g *Graph) computeSCCs() {
	n := len(g.Callees)
	g.SCCID = make([]int, n)
	for i := range g.SCCID {
		g.SCCID[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v, ci int
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ci < len(g.Callees[v]) {
				w := g.Callees[v][f.ci]
				f.ci++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// All children done: pop.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					g.SCCID[w] = len(g.SCCs)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				g.SCCs = append(g.SCCs, comp)
			}
		}
	}
}

func (g *Graph) classify() {
	n := len(g.Callees)
	g.Recursive = make([]bool, n)
	g.Header = make([]bool, n)

	selfLoop := make([]bool, n)
	for m, cs := range g.Callees {
		for _, c := range cs {
			if c == m {
				selfLoop[m] = true
			}
		}
	}
	for _, comp := range g.SCCs {
		cyclic := len(comp) > 1 || (len(comp) == 1 && selfLoop[comp[0]])
		if !cyclic {
			continue
		}
		for _, m := range comp {
			g.Recursive[m] = true
		}
	}

	// Headers: recursive methods with a caller outside their SCC, or the
	// program entry itself if recursive.
	for caller, cs := range g.Callees {
		for _, callee := range cs {
			if g.Recursive[callee] && g.SCCID[caller] != g.SCCID[callee] {
				g.Header[callee] = true
			}
		}
	}
	if main := g.Prog.MainID; g.Recursive[main] {
		g.Header[main] = true
	}
	// Unreachable cycles: ensure at least one header per cyclic SCC so the
	// folding logic has an anchor.
	for _, comp := range g.SCCs {
		if !g.Recursive[comp[0]] {
			continue
		}
		any := false
		for _, m := range comp {
			if g.Header[m] {
				any = true
				break
			}
		}
		if !any {
			g.Header[comp[0]] = true
		}
	}
}

// RecursiveMethodIDs returns all recursive method ids, sorted.
func (g *Graph) RecursiveMethodIDs() []int {
	var out []int
	for m, r := range g.Recursive {
		if r {
			out = append(out, m)
		}
	}
	return out
}
