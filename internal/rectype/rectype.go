// Package rectype detects recursive data types in MJ programs: classes
// that participate in a reference cycle of their field types (Node.next :
// Node; Vertex ↔ Edge; Node with a Node[] children array). The AlgoProf
// paper (§3.1, citing the authors' "essence of structural models" work)
// uses this analysis to limit field-access and allocation instrumentation
// to recursive structure links — Node.next and Node.prev, but not
// Node.payload — and the same field set defines which links structure
// snapshots traverse.
package rectype

import (
	"sort"

	"algoprof/internal/mj/types"
)

// Result holds the recursive-type analysis of one program.
type Result struct {
	// RecursiveClass[c] reports whether class id c participates in a
	// reference cycle.
	RecursiveClass []bool
	// RecursiveField[f] reports whether field id f is a recursive link:
	// its owner and its target class are in the same cycle.
	RecursiveField []bool

	// sccID[c] is the component of class c in the type reference graph.
	sccID []int
}

// Analyze runs the analysis on a checked program.
func Analyze(sem *types.Program) *Result {
	n := len(sem.Classes)
	// Type reference graph: edge c -> d when c has a field whose declared
	// type can reference instances of d. A field of declared class S can
	// hold any subclass of S, so edges go to S and all its subclasses.
	// Array-typed fields contribute their element class. Erased Object
	// fields contribute nothing (that is exactly the paper's payload
	// exclusion). Inherited fields are edges from the declaring class;
	// subclasses additionally inherit their superclass's edges via an
	// explicit subclass -> superclass edge, because an instance of the
	// subclass carries the superclass's recursive links.
	adj := make([][]int, n)
	addEdge := func(from, to int) {
		adj[from] = append(adj[from], to)
	}

	subclasses := make([][]int, n)
	for _, c := range sem.Classes {
		for s := c.Super; s != nil; s = s.Super {
			subclasses[s.ID] = append(subclasses[s.ID], c.ID)
		}
	}

	targetsOf := func(t *types.Type) []int {
		for t.Kind == types.KArray {
			t = t.Elem
		}
		if t.Kind != types.KClass {
			return nil
		}
		out := []int{t.Class.ID}
		out = append(out, subclasses[t.Class.ID]...)
		return out
	}

	for _, c := range sem.Classes {
		for _, f := range c.Fields {
			if f.Owner != c {
				continue // declared edges only once, at the owner
			}
			for _, d := range targetsOf(f.Type) {
				addEdge(c.ID, d)
			}
		}
		if c.Super != nil {
			addEdge(c.ID, c.Super.ID)
		}
	}

	sccID, sccs := tarjan(adj)

	selfLoop := make([]bool, n)
	for c, ds := range adj {
		for _, d := range ds {
			if d == c {
				selfLoop[c] = true
			}
		}
	}

	res := &Result{
		RecursiveClass: make([]bool, n),
		RecursiveField: make([]bool, sem.NumFields()),
		sccID:          sccID,
	}
	for _, comp := range sccs {
		cyclic := len(comp) > 1 || (len(comp) == 1 && selfLoop[comp[0]])
		if !cyclic {
			continue
		}
		for _, c := range comp {
			res.RecursiveClass[c] = true
		}
	}

	// Recursive fields: owner class cyclic and some declared target in the
	// same SCC.
	for _, f := range sem.FieldsAll() {
		owner := f.Owner.ID
		if !res.RecursiveClass[owner] {
			continue
		}
		for _, d := range targetsOf(f.Type) {
			if sccID[d] == sccID[owner] {
				res.RecursiveField[f.ID] = true
				break
			}
		}
	}
	return res
}

// IsRecursiveClass reports whether class id c is part of a recursive type.
func (r *Result) IsRecursiveClass(c int) bool {
	return c >= 0 && c < len(r.RecursiveClass) && r.RecursiveClass[c]
}

// IsRecursiveField reports whether field id f is a recursive link.
func (r *Result) IsRecursiveField(f int) bool {
	return f >= 0 && f < len(r.RecursiveField) && r.RecursiveField[f]
}

// SameCycle reports whether two classes are in the same recursive cycle.
func (r *Result) SameCycle(c1, c2 int) bool {
	return r.IsRecursiveClass(c1) && r.IsRecursiveClass(c2) && r.sccID[c1] == r.sccID[c2]
}

// RecursiveClassIDs returns the ids of all recursive classes, sorted.
func (r *Result) RecursiveClassIDs() []int {
	var out []int
	for c, ok := range r.RecursiveClass {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// RecursiveFieldIDs returns the ids of all recursive fields, sorted.
func (r *Result) RecursiveFieldIDs() []int {
	var out []int
	for f, ok := range r.RecursiveField {
		if ok {
			out = append(out, f)
		}
	}
	return out
}

// tarjan computes SCCs of adj iteratively; components are numbered in
// reverse topological order and member lists are sorted.
func tarjan(adj [][]int) (sccID []int, sccs [][]int) {
	n := len(adj)
	sccID = make([]int, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		sccID[i] = -1
	}
	var stack []int
	next := 0

	type frame struct{ v, ci int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		work := []frame{{v: start}}
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ci < len(adj[v]) {
				w := adj[v][f.ci]
				f.ci++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					sccID[w] = len(sccs)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Ints(comp)
				sccs = append(sccs, comp)
			}
		}
	}
	return sccID, sccs
}
