package rectype

import (
	"testing"

	"algoprof/internal/mj/parser"
	"algoprof/internal/mj/types"
)

func analyze(t *testing.T, src string) (*Result, *types.Program) {
	t.Helper()
	sem, err := types.Check(parser.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(sem), sem
}

func fieldID(t *testing.T, sem *types.Program, qualified string) int {
	t.Helper()
	for _, f := range sem.FieldsAll() {
		if f.QualifiedName() == qualified {
			return f.ID
		}
	}
	t.Fatalf("no field %s", qualified)
	return -1
}

const mainStub = ` class Main { public static void main() { } }`

func TestLinkedListNode(t *testing.T) {
	r, sem := analyze(t, `
class Node { Node prev; Node next; int value; }
class List { Node head; Node tail; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Node").ID) {
		t.Error("Node must be recursive")
	}
	if r.IsRecursiveClass(sem.Class("List").ID) {
		t.Error("List points into the structure but is not itself recursive")
	}
	if !r.IsRecursiveField(fieldID(t, sem, "Node.prev")) ||
		!r.IsRecursiveField(fieldID(t, sem, "Node.next")) {
		t.Error("Node.prev/next are the recursive links")
	}
	if r.IsRecursiveField(fieldID(t, sem, "List.head")) {
		t.Error("List.head is not a recursive link (List is outside the cycle)")
	}
}

func TestPayloadExcluded(t *testing.T) {
	r, sem := analyze(t, `
class Payload { int data; }
class Node { Node next; Payload payload; }
`+mainStub)
	if r.IsRecursiveField(fieldID(t, sem, "Node.payload")) {
		t.Error("payload field must not be a recursive link")
	}
	if r.IsRecursiveClass(sem.Class("Payload").ID) {
		t.Error("Payload is not recursive")
	}
}

func TestVertexEdgeGraphCycle(t *testing.T) {
	r, sem := analyze(t, `
class Vertex { Edge firstEdge; int id; }
class Edge { Vertex from; Vertex to; Edge nextEdge; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Vertex").ID) || !r.IsRecursiveClass(sem.Class("Edge").ID) {
		t.Error("Vertex and Edge form a recursive cycle")
	}
	if !r.SameCycle(sem.Class("Vertex").ID, sem.Class("Edge").ID) {
		t.Error("Vertex and Edge must share a cycle")
	}
	for _, f := range []string{"Vertex.firstEdge", "Edge.from", "Edge.to", "Edge.nextEdge"} {
		if !r.IsRecursiveField(fieldID(t, sem, f)) {
			t.Errorf("%s must be a recursive link", f)
		}
	}
}

func TestArrayFieldCycle(t *testing.T) {
	// N-ary tree: Node has a Node[] children field.
	r, sem := analyze(t, `
class Node { Node[] children; int v; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Node").ID) {
		t.Error("Node with Node[] children is recursive")
	}
	if !r.IsRecursiveField(fieldID(t, sem, "Node.children")) {
		t.Error("children array field is the recursive link")
	}
}

func TestErasedGenericsStillRecursive(t *testing.T) {
	r, sem := analyze(t, `
class Node<T> { Node<T> next; T value; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Node").ID) {
		t.Error("generic Node<T> erases to a recursive Node")
	}
	if !r.IsRecursiveField(fieldID(t, sem, "Node.next")) {
		t.Error("Node.next recursive after erasure")
	}
	if r.IsRecursiveField(fieldID(t, sem, "Node.value")) {
		t.Error("erased Object payload is not a recursive link")
	}
}

func TestInheritanceLink(t *testing.T) {
	// The link is declared in the superclass; payload in the subclass.
	r, sem := analyze(t, `
class Cell { Cell next; }
class IntCell extends Cell { int v; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Cell").ID) {
		t.Error("Cell is recursive")
	}
	if !r.IsRecursiveField(fieldID(t, sem, "Cell.next")) {
		t.Error("Cell.next is the recursive link")
	}
	if r.IsRecursiveField(fieldID(t, sem, "IntCell.v")) {
		t.Error("IntCell.v is payload")
	}
}

func TestSubtypeFieldCycle(t *testing.T) {
	// The field is typed with the superclass but only the subclass closes
	// the cycle: Super has no links, Sub extends Super, Holder.item: Super,
	// Sub.holder: Holder. Cycle: Holder -> Super(+Sub) -> Holder.
	r, sem := analyze(t, `
class Holder { Super item; }
class Super { int x; }
class Sub extends Super { Holder holder; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("Holder").ID) {
		t.Error("Holder is in a cycle through the Sub subclass")
	}
	if !r.IsRecursiveClass(sem.Class("Sub").ID) {
		t.Error("Sub is in the cycle")
	}
}

func TestNonRecursiveProgram(t *testing.T) {
	r, sem := analyze(t, `
class A { B b; }
class B { int x; }
`+mainStub)
	if r.IsRecursiveClass(sem.Class("A").ID) || r.IsRecursiveClass(sem.Class("B").ID) {
		t.Error("A -> B with no back edge is not recursive")
	}
	if ids := r.RecursiveFieldIDs(); len(ids) != 0 {
		t.Errorf("no recursive fields expected, got %v", ids)
	}
}

func TestTwoIndependentCyclesNotMerged(t *testing.T) {
	r, sem := analyze(t, `
class L1 { L1 next; }
class L2 { L2 next; }
`+mainStub)
	if !r.IsRecursiveClass(sem.Class("L1").ID) || !r.IsRecursiveClass(sem.Class("L2").ID) {
		t.Error("both are recursive")
	}
	if r.SameCycle(sem.Class("L1").ID, sem.Class("L2").ID) {
		t.Error("independent cycles must not be merged")
	}
}

func TestBinaryTree(t *testing.T) {
	r, sem := analyze(t, `
class TreeNode { TreeNode left; TreeNode right; TreeNode parent; int key; }
`+mainStub)
	for _, f := range []string{"TreeNode.left", "TreeNode.right", "TreeNode.parent"} {
		if !r.IsRecursiveField(fieldID(t, sem, f)) {
			t.Errorf("%s recursive", f)
		}
	}
	if got := len(r.RecursiveFieldIDs()); got != 3 {
		t.Errorf("3 recursive fields, got %d", got)
	}
}
