package bbprof

import (
	"strings"
	"testing"

	"algoprof/internal/fit"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// quadraticSrc runs a quadratic nest over a size fed via readInput.
const quadraticSrc = `
class Main {
  public static void main() {
    int n = readInput();
    int s = 0;
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < i; j++) { s = s + 1; }
    }
    writeOutput(s);
  }
}`

func runOnce(t *testing.T, prog *bytecode.Program, p *Profiler, n int64) {
	t.Helper()
	m := vm.New(prog, vm.Config{InstrHook: p.Hook, Input: []int64{n}})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockCountsGrowWithWork(t *testing.T) {
	prog, err := compiler.CompileSource(quadraticSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog)
	runOnce(t, prog, p, 10)
	r1 := p.Snapshot(10)
	p.Reset()
	runOnce(t, prog, p, 40)
	r2 := p.Snapshot(40)

	var max1, max2 int64
	for _, c := range r1.Counts {
		if c > max1 {
			max1 = c
		}
	}
	for _, c := range r2.Counts {
		if c > max2 {
			max2 = c
		}
	}
	// Inner block executes ~n²/2 times: 45 vs 780.
	if max1 < 40 || max2 < 700 {
		t.Errorf("hot block counts %d / %d, want ≥45 / ≥780-ish", max1, max2)
	}
}

func TestFitAllFindsQuadraticBlock(t *testing.T) {
	prog, err := compiler.CompileSource(quadraticSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog)
	var runs []Run
	for _, n := range []int64{5, 10, 20, 40, 60, 80} {
		p.Reset()
		runOnce(t, prog, p, n)
		runs = append(runs, p.Snapshot(int(n)))
	}
	fits := FitAll(runs)
	if len(fits) == 0 {
		t.Fatal("no fitted locations")
	}
	// The steepest-growing location must be quadratic: that is the
	// Goldsmith result for this program.
	top := fits[0]
	if top.Fit.Model != fit.Quadratic {
		t.Errorf("top block model = %v, want Quadratic", top.Fit.Model)
	}
	// And some location must be linear (the outer loop header).
	foundLinear := false
	for _, lf := range fits {
		if lf.Fit.Model == fit.Linear {
			foundLinear = true
		}
	}
	if !foundLinear {
		t.Error("no linear block found (outer loop header should be linear)")
	}
}

func TestRenderTopK(t *testing.T) {
	prog, err := compiler.CompileSource(quadraticSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog)
	var runs []Run
	for _, n := range []int64{5, 20, 50} {
		p.Reset()
		runOnce(t, prog, p, n)
		runs = append(runs, p.Snapshot(int(n)))
	}
	out := Render(prog, FitAll(runs), 3)
	if !strings.Contains(out, "Main.main block") {
		t.Errorf("render output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("want exactly 3 lines:\n%s", out)
	}
}

func TestResetClearsCounts(t *testing.T) {
	prog, err := compiler.CompileSource(quadraticSrc)
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog)
	runOnce(t, prog, p, 10)
	p.Reset()
	r := p.Snapshot(0)
	if len(r.Counts) != 0 {
		t.Errorf("counts after reset: %v", r.Counts)
	}
}
