// Package bbprof reimplements the baseline the AlgoProf paper compares
// against conceptually: Goldsmith, Aiken and Wilkerson's "Measuring
// Empirical Computational Complexity" (ESEC/FSE'07). It counts basic-block
// executions per program location across several runs, and fits a cost
// function per location — but, unlike algorithmic profiling, it requires
// the user to supply the input size of every run and cannot identify
// algorithms or inputs automatically.
package bbprof

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/cfg"
	"algoprof/internal/fit"
	"algoprof/internal/mj/bytecode"
)

// Location identifies a basic block.
type Location struct {
	MethodID int
	Block    int
}

// Run is one execution's per-location block counts at a user-declared
// input size.
type Run struct {
	// Size is the manually supplied input size (the manual step the paper
	// automates away).
	Size   int
	Counts map[Location]int64
}

// Profiler counts basic-block executions for one run. Wire its Hook into
// the VM's InstrHook. Both the pc→block lookup and the counters are dense
// per-method slices, so the per-instruction hot path never hashes; the
// map-shaped Run view is materialized only by Snapshot.
type Profiler struct {
	prog *bytecode.Program
	// blockOf[m][pc] is the block index + 1 of a block starting at pc in
	// method m, or 0 when pc is not a block start.
	blockOf [][]int32
	// counts[m][b] is the execution count of method m's block b.
	counts [][]int64
}

// New builds a profiler for prog (computing each function's CFG once).
func New(prog *bytecode.Program) *Profiler {
	p := &Profiler{
		prog:    prog,
		blockOf: make([][]int32, len(prog.Funcs)),
		counts:  make([][]int64, len(prog.Funcs)),
	}
	for i, fn := range prog.Funcs {
		g := cfg.Build(fn)
		starts := make([]int32, len(fn.Code))
		for _, b := range g.Blocks {
			starts[b.Start] = int32(b.Index) + 1
		}
		p.blockOf[i] = starts
		p.counts[i] = make([]int64, len(g.Blocks))
	}
	return p
}

// Hook is the VM instruction hook: it counts block entries.
func (p *Profiler) Hook(methodID, pc int) {
	row := p.blockOf[methodID]
	if pc < len(row) {
		if b := row[pc]; b != 0 {
			p.counts[methodID][b-1]++
		}
	}
}

// Snapshot returns the counts accumulated so far (copied) as a Run with
// the given declared size. Blocks never executed are omitted.
func (p *Profiler) Snapshot(size int) Run {
	out := map[Location]int64{}
	for m, row := range p.counts {
		for b, c := range row {
			if c != 0 {
				out[Location{MethodID: m, Block: b}] = c
			}
		}
	}
	return Run{Size: size, Counts: out}
}

// Reset clears the counters for the next run.
func (p *Profiler) Reset() {
	for _, row := range p.counts {
		clear(row)
	}
}

// LocationFit is the fitted cost function of one basic block across runs.
type LocationFit struct {
	Loc Location
	Fit *fit.Fit
}

// FitAll fits a cost function per location over the runs' declared sizes,
// returning locations sorted by fitted growth at the largest size
// (steepest first). Locations executed in no run are omitted.
func FitAll(runs []Run) []LocationFit {
	locs := map[Location]bool{}
	for _, r := range runs {
		for l := range r.Counts {
			locs[l] = true
		}
	}
	maxSize := 0
	for _, r := range runs {
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	var out []LocationFit
	for l := range locs {
		pts := make([]fit.Point, 0, len(runs))
		for _, r := range runs {
			pts = append(pts, fit.Point{Size: float64(r.Size), Cost: float64(r.Counts[l])})
		}
		f := fit.Best(pts)
		if f == nil {
			continue
		}
		out = append(out, LocationFit{Loc: l, Fit: f})
	}
	sort.Slice(out, func(i, j int) bool {
		gi := out[i].Fit.Eval(float64(maxSize))
		gj := out[j].Fit.Eval(float64(maxSize))
		if gi != gj {
			return gi > gj
		}
		if out[i].Loc.MethodID != out[j].Loc.MethodID {
			return out[i].Loc.MethodID < out[j].Loc.MethodID
		}
		return out[i].Loc.Block < out[j].Loc.Block
	})
	return out
}

// Render prints the top-k fitted locations.
func Render(prog *bytecode.Program, fits []LocationFit, k int) string {
	var sb strings.Builder
	for i, lf := range fits {
		if i >= k {
			break
		}
		m := prog.Sem.MethodByID(lf.Loc.MethodID)
		fmt.Fprintf(&sb, "%s block %d: cost ≈ %s (R2=%.3f)\n",
			m.QualifiedName(), lf.Loc.Block, lf.Fit, lf.Fit.R2)
	}
	return sb.String()
}
