// Package testutil provides shared helpers for integration-style tests
// that compile, instrument and profile MJ programs.
package testutil

import (
	"testing"

	"algoprof/internal/core"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// Profile compiles src, instruments it (optimized plan), runs it under the
// algorithmic profiler with the given seed, and returns the finished
// profiler.
func Profile(t testing.TB, src string, opts core.Options, seed uint64) *core.Profiler {
	t.Helper()
	p, _ := ProfileVM(t, src, opts, seed)
	return p
}

// ProfileVM is Profile but also returns the VM (for output inspection).
func ProfileVM(t testing.TB, src string, opts core.Options, seed uint64) (*core.Profiler, *vm.VM) {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ins, err := instrument.Instrument(prog, instrument.Optimized)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	p := core.NewProfiler(ins, opts)
	m := vm.New(ins.Prog, vm.Config{Listener: p, Plan: ins.Plan, Seed: seed})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	p.Finish()
	if errs := p.Errors(); len(errs) != 0 {
		t.Fatalf("profiler errors: %v", errs)
	}
	return p, m
}

// FindNode returns the repetition node with the given NodeName, or nil.
func FindNode(p *core.Profiler, name string) *core.Node {
	var found *core.Node
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if found != nil {
			return
		}
		if p.NodeName(n) == name {
			found = n
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root())
	return found
}

// CountNodes returns the size of the repetition tree rooted at n.
func CountNodes(n *core.Node) int {
	total := 1
	for _, c := range n.Children {
		total += CountNodes(c)
	}
	return total
}
