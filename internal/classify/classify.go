// Package classify assigns each algorithm the paper's §2.8 categories:
// per input, one of Construction / Modification / Traversal (mutually
// exclusive, in that priority order); per algorithm, whether it consumes
// external input or produces external output; and Data-structure-less when
// it has no inputs at all.
package classify

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/core"
	"algoprof/internal/group"
)

// Class is the per-input category of an algorithm.
type Class int

// Per-input classes, in priority order.
const (
	Traversal Class = iota
	Modification
	Construction
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Construction:
		return "Construction"
	case Modification:
		return "Modification"
	}
	return "Traversal"
}

// AlgorithmClass is the classification of one algorithm.
type AlgorithmClass struct {
	// PerInput maps each canonical input id to its class.
	PerInput map[int]Class
	// DoesInput reports external input reads.
	DoesInput bool
	// DoesOutput reports external output writes.
	DoesOutput bool
}

// DataStructureLess reports whether the algorithm touches no structures
// and no external I/O.
func (ac *AlgorithmClass) DataStructureLess() bool {
	return len(ac.PerInput) == 0 && !ac.DoesInput && !ac.DoesOutput
}

// Describe renders the classification like the paper's repetition tree
// annotations, e.g. "Modification of a Node-based recursive structure".
func (ac *AlgorithmClass) Describe(labelOf func(inputID int) string) string {
	if ac.DataStructureLess() {
		return "Data-structure-less algorithm"
	}
	// Aggregate per (class, label): a harness run profiles many instances
	// of the same input kind.
	counts := map[string]int{}
	var order []string
	ids := make([]int, 0, len(ac.PerInput))
	for id := range ac.PerInput {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		key := fmt.Sprintf("%s of a %s", ac.PerInput[id], labelOf(id))
		if counts[key] == 0 {
			order = append(order, key)
		}
		counts[key]++
	}
	var parts []string
	for _, key := range order {
		if counts[key] > 1 {
			parts = append(parts, fmt.Sprintf("%s (%d instances)", key, counts[key]))
		} else {
			parts = append(parts, key)
		}
	}
	if ac.DoesInput {
		parts = append(parts, "Input algorithm")
	}
	if ac.DoesOutput {
		parts = append(parts, "Output algorithm")
	}
	return strings.Join(parts, "; ")
}

// Classify computes the classification of every algorithm in res.
func Classify(p *core.Profiler, res *group.Result) map[*group.Algorithm]*AlgorithmClass {
	reg := p.Registry()

	// Which (algorithm, input) pairs saw allocations: an entity allocated
	// by a member node and now owned by input X marks X as constructed by
	// that algorithm.
	constructed := map[*group.Algorithm]map[int]bool{}
	for entityID, node := range allAllocations(p) {
		alg := res.AlgorithmOf[node]
		if alg == nil {
			continue
		}
		input := reg.InputOfID(entityID)
		if input < 0 {
			continue
		}
		if constructed[alg] == nil {
			constructed[alg] = map[int]bool{}
		}
		constructed[alg][input] = true
	}

	out := map[*group.Algorithm]*AlgorithmClass{}
	for _, alg := range res.Algorithms {
		ac := &AlgorithmClass{PerInput: map[int]Class{}}
		reads := map[int]bool{}
		writes := map[int]bool{}
		for _, pt := range alg.Combined {
			for k, v := range pt.Costs {
				if v == 0 {
					continue
				}
				switch k.Op {
				case core.OpGet, core.OpArrLoad:
					if k.Input != core.NoInput {
						reads[k.Input] = true
					}
				case core.OpPut, core.OpArrStore:
					if k.Input != core.NoInput {
						writes[k.Input] = true
					}
				case core.OpIn:
					ac.DoesInput = true
				case core.OpOut:
					ac.DoesOutput = true
				}
			}
		}
		for _, id := range alg.Inputs {
			switch {
			case constructed[alg][id]:
				ac.PerInput[id] = Construction
			case writes[id]:
				ac.PerInput[id] = Modification
			case reads[id]:
				ac.PerInput[id] = Traversal
			}
		}
		out[alg] = ac
	}
	return out
}

// allAllocations exposes the profiler's entity→allocating-node map.
func allAllocations(p *core.Profiler) map[uint64]*core.Node {
	return p.Allocations()
}
