package classify

import (
	"strings"
	"testing"

	"algoprof/internal/core"
	"algoprof/internal/group"
	"algoprof/internal/testutil"
)

// classify profiles src and returns the classification of the algorithm
// containing the named node, plus the profiler for label lookups.
func classifyAt(t *testing.T, src, node string, seed uint64) (*AlgorithmClass, *core.Profiler, *group.Algorithm) {
	t.Helper()
	p := testutil.Profile(t, src, core.Options{}, seed)
	res := group.Analyze(p)
	n := testutil.FindNode(p, node)
	if n == nil {
		t.Fatalf("no node %s", node)
	}
	alg := res.AlgorithmOf[n]
	classes := Classify(p, res)
	return classes[alg], p, alg
}

const listBuildTraverse = `
class Node { Node next; int v; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 10; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    int n = 0;
    Node cur = head;
    while (cur != null) { n++; cur = cur.next; }
  }
}`

func TestConstructionClass(t *testing.T) {
	ac, p, alg := classifyAt(t, listBuildTraverse, "Main.main/loop1", 1)
	if len(alg.Inputs) != 1 {
		t.Fatalf("inputs = %v", alg.Inputs)
	}
	if got := ac.PerInput[alg.Inputs[0]]; got != Construction {
		t.Errorf("builder loop class = %v, want Construction", got)
	}
	desc := ac.Describe(func(id int) string { return p.Registry().Input(id).Label() })
	if !strings.Contains(desc, "Construction of a Node-based recursive structure") {
		t.Errorf("describe = %q", desc)
	}
}

func TestTraversalClass(t *testing.T) {
	ac, _, alg := classifyAt(t, listBuildTraverse, "Main.main/loop2", 1)
	if got := ac.PerInput[alg.Inputs[0]]; got != Traversal {
		t.Errorf("count loop class = %v, want Traversal", got)
	}
}

func TestModificationClass(t *testing.T) {
	// In-place list reversal: writes links but allocates nothing.
	src := `
class Node { Node next; int v; }
class Main {
  public static void main() {
    Node head = build(10);
    Node prev = null;
    Node cur = head;
    while (cur != null) {
      Node nxt = cur.next;
      cur.next = prev;
      prev = cur;
      cur = nxt;
    }
  }
  static Node build(int n) {
    Node head = null;
    for (int i = 0; i < n; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    return head;
  }
}`
	ac, _, alg := classifyAt(t, src, "Main.main/loop1", 1)
	if got := ac.PerInput[alg.Inputs[0]]; got != Modification {
		t.Errorf("reverse loop class = %v, want Modification", got)
	}
}

func TestConstructionBeatsModification(t *testing.T) {
	// The builder writes links too; allocation wins the priority order.
	ac, _, alg := classifyAt(t, listBuildTraverse, "Main.main/loop1", 1)
	if ac.PerInput[alg.Inputs[0]] == Modification {
		t.Error("builder must be Construction, not Modification")
	}
}

func TestDataStructureLess(t *testing.T) {
	src := `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s = s + i; }
  }
}`
	ac, _, _ := classifyAt(t, src, "Main.main/loop1", 1)
	if !ac.DataStructureLess() {
		t.Error("arithmetic loop is data-structure-less")
	}
	if got := ac.Describe(nil); got != "Data-structure-less algorithm" {
		t.Errorf("describe = %q", got)
	}
}

func TestInputOutputAlgorithm(t *testing.T) {
	src := `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 5; i++) { s = s + readInput(); }
    for (int i = 0; i < 5; i++) { writeOutput(s + i); }
  }
}`
	acIn, _, _ := classifyAt(t, src, "Main.main/loop1", 1)
	if !acIn.DoesInput || acIn.DoesOutput {
		t.Errorf("loop1: DoesInput=%v DoesOutput=%v, want true/false", acIn.DoesInput, acIn.DoesOutput)
	}
	acOut, _, _ := classifyAt(t, src, "Main.main/loop2", 1)
	if acOut.DoesInput || !acOut.DoesOutput {
		t.Errorf("loop2: DoesInput=%v DoesOutput=%v, want false/true", acOut.DoesInput, acOut.DoesOutput)
	}
	if acIn.DataStructureLess() {
		t.Error("an input algorithm is not data-structure-less")
	}
}

func TestArrayTraversalVsModification(t *testing.T) {
	src := `
class Main {
  public static void main() {
    int[] a = new int[20];
    for (int i = 0; i < 20; i++) { a[i] = i; }
    int s = 0;
    for (int i = 0; i < 20; i++) { s = s + a[i]; }
  }
}`
	acW, _, algW := classifyAt(t, src, "Main.main/loop1", 1)
	if got := acW.PerInput[algW.Inputs[0]]; got != Modification {
		t.Errorf("array fill = %v, want Modification (arrays are never constructed element-wise)", got)
	}
	acR, _, algR := classifyAt(t, src, "Main.main/loop2", 1)
	if got := acR.PerInput[algR.Inputs[0]]; got != Traversal {
		t.Errorf("array sum = %v, want Traversal", got)
	}
}

func TestMutuallyExclusivePerStructure(t *testing.T) {
	// One algorithm traverses one structure and constructs another: both
	// classes must appear, each tied to its own input (paper §2.8).
	src := `
class Src { Src next; int v; }
class Dst { Dst next; int v; }
class Main {
  public static void main() {
    Src head = build(8);
    Dst out = null;
    Src cur = head;
    while (cur != null) {
      Dst d = new Dst();
      d.v = cur.v;
      d.next = out;
      out = d;
      cur = cur.next;
    }
  }
  static Src build(int n) {
    Src head = null;
    for (int i = 0; i < n; i++) {
      Src x = new Src();
      x.next = head;
      head = x;
    }
    return head;
  }
}`
	ac, p, alg := classifyAt(t, src, "Main.main/loop1", 1)
	if len(alg.Inputs) != 2 {
		t.Fatalf("translation loop inputs = %v, want 2", alg.Inputs)
	}
	var srcClass, dstClass Class
	for _, id := range alg.Inputs {
		label := p.Registry().Input(id).Label()
		switch {
		case strings.Contains(label, "Src"):
			srcClass = ac.PerInput[id]
		case strings.Contains(label, "Dst"):
			dstClass = ac.PerInput[id]
		}
	}
	if srcClass != Traversal {
		t.Errorf("source structure = %v, want Traversal", srcClass)
	}
	if dstClass != Construction {
		t.Errorf("destination structure = %v, want Construction", dstClass)
	}
}
