package snapshot

import "testing"

// The snapshot memo (Registry.Observe) may only serve a cached observation
// when doing so is indistinguishable from a fresh traversal: the tests
// here pin down the invalidation rules (writes, merges), the per-root
// granularity, the criterion bypasses, and the ablation switch.

func TestMemoHitOnUnwrittenStructure(t *testing.T) {
	head, _ := list(1, 4)
	r := NewRegistry(rt(1, 0), Capacity)
	o1 := r.Observe(head)
	o2 := r.Observe(head)
	if o1 != o2 {
		t.Errorf("repeat observation differs: %v vs %v", o1, o2)
	}
	if hits, misses := r.MemoStats(); hits != 1 || misses != 1 {
		t.Errorf("MemoStats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if r.Input(o1.InputID).Observations != 2 {
		t.Errorf("Observations = %d, want 2 (hits still count)", r.Input(o1.InputID).Observations)
	}
}

func TestMemoInvalidatedByWrite(t *testing.T) {
	head, nodes := list(1, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	r.Observe(head)

	// Grow the list through its tail, reporting the write as FieldPut does.
	extra := &fakeObj{id: 50, typ: "Node"}
	nodes[2].refs = append(nodes[2].refs, ref{0, extra})
	r.NoteWriteTo(nodes[2])

	o := r.Observe(head)
	if o.Size != 4 {
		t.Errorf("size after write = %d, want 4 (stale memo served?)", o.Size)
	}
	if hits, _ := r.MemoStats(); hits != 0 {
		t.Errorf("hits = %d, want 0: a write must invalidate the memo", hits)
	}
}

func TestMemoCrossInputIsolation(t *testing.T) {
	h1, _ := list(1, 3)
	h2, n2 := list(100, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	r.Observe(h1)
	r.Observe(h2)

	// A write into list 2 must not evict list 1's memo.
	r.NoteWriteTo(n2[1])
	r.Observe(h1)
	if hits, _ := r.MemoStats(); hits != 1 {
		t.Errorf("hits = %d, want 1: writes to other inputs must not invalidate", hits)
	}
	// List 2 itself must re-traverse.
	o := r.Observe(h2)
	if hits, _ := r.MemoStats(); hits != 1 {
		t.Errorf("hits = %d, want still 1: written input must miss", hits)
	}
	if o.Size != 3 {
		t.Errorf("size = %d, want 3", o.Size)
	}
}

func TestMemoPerRootEntries(t *testing.T) {
	// A snapshot from a mid-list node of a singly linked list sees only the
	// tail fragment, so cached sizes must be kept per root.
	head, nodes := list(1, 5)
	r := NewRegistry(rt(1, 0), Capacity)
	if o := r.Observe(head); o.Size != 5 {
		t.Fatalf("head size = %d, want 5", o.Size)
	}
	if o := r.Observe(nodes[3]); o.Size != 2 {
		t.Fatalf("mid size = %d, want 2", o.Size)
	}
	// Second pass over both roots: hits, each with its own fragment size.
	if o := r.Observe(head); o.Size != 5 {
		t.Errorf("memoized head size = %d, want 5", o.Size)
	}
	if o := r.Observe(nodes[3]); o.Size != 2 {
		t.Errorf("memoized mid size = %d, want 2", o.Size)
	}
	if hits, misses := r.MemoStats(); hits != 2 || misses != 2 {
		t.Errorf("MemoStats = %d/%d, want 2 hits / 2 misses", hits, misses)
	}
}

func TestMemoInvalidatedByMerge(t *testing.T) {
	h1, n1 := list(1, 3)
	h2, _ := list(100, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	r.Observe(h1)
	r.Observe(h2)
	// Connect the two lists; the memoized per-list sizes are stale for the
	// union even though only list 1 was written.
	n1[2].refs = append(n1[2].refs, ref{0, h2})
	r.NoteWriteTo(n1[2])
	if o := r.Observe(h1); o.Size != 6 {
		t.Errorf("merged size from h1 = %d, want 6", o.Size)
	}
	if o := r.Observe(h2); o.Size != 3 {
		t.Errorf("size from h2 = %d, want 3 (tail fragment)", o.Size)
	}
}

func TestMemoBypassedUnderAllElements(t *testing.T) {
	head, _ := list(1, 4)
	r := NewRegistryWith(rt(1, 0), Capacity, AllElements)
	r.Observe(head)
	r.Observe(head)
	if hits, misses := r.MemoStats(); hits != 0 || misses != 2 {
		t.Errorf("MemoStats = %d/%d, want 0 hits: AllElements compares exact element sets", hits, misses)
	}
}

func TestMemoDisabled(t *testing.T) {
	head, _ := list(1, 4)
	r := NewRegistry(rt(1, 0), Capacity)
	r.SetMemoization(false)
	o1 := r.Observe(head)
	o2 := r.Observe(head)
	if o1 != o2 {
		t.Errorf("observations differ with memo off: %v vs %v", o1, o2)
	}
	if hits, misses := r.MemoStats(); hits != 0 || misses != 2 {
		t.Errorf("MemoStats = %d/%d, want 0 hits when disabled", hits, misses)
	}
}

func TestMemoConservativeNoteWrite(t *testing.T) {
	// The coarse NoteWrite (no written entity known) must dirty every
	// input, so no memo survives it.
	h1, _ := list(1, 3)
	h2, _ := list(100, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	r.Observe(h1)
	r.Observe(h2)
	r.NoteWrite()
	r.Observe(h1)
	r.Observe(h2)
	if hits, _ := r.MemoStats(); hits != 0 {
		t.Errorf("hits = %d, want 0 after a global write note", hits)
	}
}

func TestMemoWriteToUnknownEntityIsNoop(t *testing.T) {
	// Writes to entities no snapshot has claimed need no invalidation: an
	// unclaimed entity was unreachable from every cached snapshot.
	head, _ := list(1, 3)
	stray := &fakeObj{id: 999, typ: "Node"}
	r := NewRegistry(rt(1, 0), Capacity)
	r.Observe(head)
	r.NoteWriteTo(stray)
	r.Observe(head)
	if hits, _ := r.MemoStats(); hits != 1 {
		t.Errorf("hits = %d, want 1: unknown-entity write must not invalidate", hits)
	}
}

func TestMemoSameArrayFreshInputNotShortCircuited(t *testing.T) {
	// Under SameArray, an array claimed by a structure input still becomes
	// a fresh array input when observed directly; the memo must not return
	// the structure input instead.
	kids := &fakeArr{id: 10, typ: "Node[]", cap: 2}
	root := &fakeObj{id: 1, typ: "Node", refs: []ref{{0, kids}}}
	r := NewRegistryWith(rt(1, 0), Capacity, SameArray)
	o1 := r.Observe(root) // claims the embedded array for the structure input
	o2 := r.Observe(kids)
	if r.Find(o1.InputID) == r.Find(o2.InputID) {
		t.Fatal("SameArray: direct array observation must create a fresh input")
	}
	if r.Input(o2.InputID).Kind != KindArray {
		t.Errorf("array observation resolved to %v input", r.Input(o2.InputID).Kind)
	}
}
