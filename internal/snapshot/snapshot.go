// Package snapshot implements input identification and size measurement
// for the algorithmic profiler (§2.3, §2.4, §3.4 of the AlgoProf paper).
//
// A snapshot of a structure is the set of heap entities reachable from an
// accessed reference via recursive links (recursive-type fields, plus
// arrays embedded in structures). Snapshots taken at different times are
// unified into *inputs* using the paper's "Some Elements Equivalent"
// criterion: two snapshots denote the same input when they share at least
// one element. For arrays, elements may be values (strings) rather than
// heap entities, so array snapshots also carry element identity keys; this
// is what lets a reallocated, grown backing array be recognized as the
// same input as its predecessor (the resizable-array case of Listing 6).
//
// Entity ids are issued by monotonic counters, so the live id space is a
// near-contiguous range. The registry exploits that: ownership, the
// snapshot memo, and traversal de-duplication are base-offset slice tables
// indexed by entity id rather than hash maps, which keeps the per-node
// cost of the observation path to a handful of array operations.
package snapshot

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/events"
	"algoprof/internal/rectype"
)

// Strategy selects how array sizes are measured (§3.4).
type Strategy int

// Array size strategies.
const (
	// Capacity counts element slots (recursively for multi-dimensional
	// arrays: top-level slots plus all lower-level slots).
	Capacity Strategy = iota
	// UniqueElements counts the set of unique elements (all non-null
	// elements of reference arrays, all values of primitive arrays);
	// approximates the used fraction of over-allocated arrays.
	UniqueElements
)

// String names the strategy.
func (s Strategy) String() string {
	if s == UniqueElements {
		return "unique"
	}
	return "capacity"
}

// Criterion selects the snapshot equivalence criterion (§2.4): how the
// registry decides whether two snapshots represent the same input.
type Criterion int

// Equivalence criteria.
const (
	// SomeElements unifies snapshots that share at least one element —
	// the paper's default: robust to structure evolution, partial
	// traversals of weakly connected structures, and array reallocation.
	SomeElements Criterion = iota
	// AllElements unifies snapshots only when their element sets are
	// identical; an evolving structure fragments into one input per
	// distinct extent.
	AllElements
	// SameArray unifies arrays only by object identity (element overlap
	// ignored); structures still unify by element overlap. A reallocated
	// backing array becomes a new input.
	SameArray
	// SameType unifies any two snapshots whose element type signature
	// matches: all Node-lists in a program become one input.
	SameType
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case AllElements:
		return "all-elements"
	case SameArray:
		return "same-array"
	case SameType:
		return "same-type"
	}
	return "some-elements"
}

// Kind distinguishes input categories.
type Kind int

// Input kinds.
const (
	KindStructure Kind = iota
	KindArray
)

// String names the kind.
func (k Kind) String() string {
	if k == KindArray {
		return "array"
	}
	return "structure"
}

// ---------------------------------------------------------------------------
// Dense id-indexed tables

// table is a base-offset array keyed by entity id. Ids come from monotonic
// allocation counters, so the live range [base, base+len) stays compact;
// indexing replaces a map lookup with a bounds check and an array access.
type table[T any] struct {
	base  uint64
	slots []T
}

// idx returns the slot index for id, growing the table to cover id.
func (t *table[T]) idx(id uint64) int {
	if t.slots == nil {
		t.base = id
		t.slots = make([]T, 1, 64)
		return 0
	}
	if id < t.base {
		shift := t.base - id
		grown := make([]T, uint64(len(t.slots))+shift)
		copy(grown[shift:], t.slots)
		t.slots, t.base = grown, id
		return 0
	}
	off := id - t.base
	if off >= uint64(len(t.slots)) {
		if off < uint64(cap(t.slots)) {
			// Tables only grow, so capacity beyond len has never held
			// data and is still zeroed.
			t.slots = t.slots[:off+1]
		} else {
			newCap := 2 * cap(t.slots)
			if uint64(newCap) < off+1 {
				newCap = int(off + 1)
			}
			grown := make([]T, off+1, newCap)
			copy(grown, t.slots)
			t.slots = grown
		}
	}
	return int(off)
}

// peek returns a pointer to id's slot, or nil when id is outside the table.
func (t *table[T]) peek(id uint64) *T {
	if t.slots == nil || id < t.base {
		return nil
	}
	off := id - t.base
	if off >= uint64(len(t.slots)) {
		return nil
	}
	return &t.slots[off]
}

// visitSet is a generation-stamped membership set over entity ids, reused
// across traversals without clearing: begin() bumps the generation, making
// every previous mark stale in O(1).
type visitSet struct {
	marks table[uint32]
	gen   uint32
}

func (v *visitSet) begin() {
	v.gen++
	if v.gen == 0 { // generation wrapped: marks are ambiguous, reset them
		clear(v.marks.slots)
		v.gen = 1
	}
}

// add marks id as visited, reporting whether it was previously unvisited.
func (v *visitSet) add(id uint64) bool {
	i := v.marks.idx(id)
	if v.marks.slots[i] == v.gen {
		return false
	}
	v.marks.slots[i] = v.gen
	return true
}

// ---------------------------------------------------------------------------
// Snapshots

// typeCount is one per-class object tally. Snapshots touch a handful of
// classes at most, so an association list beats a map: the string compare
// hits the pointer-equality fast path because class names are interned by
// the runtime that issues them.
type typeCount struct {
	name string
	n    int
}

// Snap is one structure snapshot.
type Snap struct {
	// IDs are the ids of all reached heap entities (objects and arrays,
	// including the root), in visit order, without duplicates.
	IDs []uint64
	// Objects is the number of objects reached (arrays excluded): the
	// size of a recursive structure.
	Objects int
	// ArrayRefs counts non-null references traversed inside arrays that
	// are part of the structure.
	ArrayRefs int
	// typeCounts tallies objects per class name.
	typeCounts []typeCount
	// StrKeys are the string element identity keys usable for input
	// unification, deduplicated. Reference keys need no separate record:
	// every referenced element also appears in IDs and is claimed there.
	// Raw primitive values are excluded because equal values do not imply
	// identity.
	StrKeys []string
	// uniq is the set of all element keys, for the unique-elements size
	// strategy (array roots only).
	uniq map[events.ElemKey]bool
	// CapacitySlots counts array slots recursively.
	CapacitySlots int
	// RootIsArray records what the snapshot was rooted at.
	RootIsArray bool

	vs    *visitSet       // traversal de-duplication
	stack []events.Entity // traversal scratch

	// rt and the cached visitor closures exist so the traversal loops pass
	// the same closure to every ForEachRef call: a closure literal inside
	// the node loop escapes through the interface call and is re-allocated
	// per node, which dominated the measured observation cost.
	rt        *rectype.Result
	isRec     func(fieldID int) bool // rt.IsRecursiveField, bound once per rt
	refBuf    []events.Entity        // RefBatcher scratch
	visitFn   func(fieldID int, target events.Entity)
	arrRefFn  func(fieldID int, target events.Entity)
	elemKeyFn func(key events.ElemKey)
	arrWalkFn func(fieldID int, target events.Entity)

	// Strong-connectivity detection (see Snap.symmetric): bal tracks, per
	// visited node, its recursive-edge out-degree minus in-degree, and
	// nzBal counts nodes whose balance is nonzero. When every node
	// balances, the edge multiset decomposes into cycles, so every member
	// can reach the root and therefore the whole snapshot — doubly-linked
	// and circular shapes both qualify. curID is the object being
	// expanded; symOK goes false on shapes the check does not cover
	// (arrays inside the structure).
	bal       table[balSlot]
	balGen    uint32
	nzBal     int
	curID     uint64
	symOK     bool
	symmetric bool
}

// balSlot holds one node's generation-stamped degree balance.
type balSlot struct {
	gen uint32
	d   int32
}

// Size returns the snapshot's size under the given strategy: object count
// for structures; capacity or unique-element count for arrays.
func (s *Snap) Size(strat Strategy) int {
	if !s.RootIsArray {
		return s.Objects
	}
	if strat == UniqueElements {
		return len(s.uniq)
	}
	return s.CapacitySlots
}

// NumEntities returns the number of distinct entities reached.
func (s *Snap) NumEntities() int { return len(s.IDs) }

// Has reports whether entity id was reached by the snapshot.
func (s *Snap) Has(id uint64) bool {
	for _, v := range s.IDs {
		if v == id {
			return true
		}
	}
	return false
}

// TypeCount returns the number of objects of class name that were reached.
func (s *Snap) TypeCount(name string) int {
	for _, tc := range s.typeCounts {
		if tc.name == name {
			return tc.n
		}
	}
	return 0
}

// Take computes the snapshot reachable from root. For object roots it
// follows recursive-type fields (per rt) and traverses arrays embedded in
// the structure; for array roots it records the array's elements and
// recurses into sub-arrays (multi-dimensional arrays), but does not expand
// element objects — objects are measured through structure snapshots.
func Take(root events.Entity, rt *rectype.Result) *Snap {
	s := &Snap{vs: &visitSet{}}
	s.take(root, rt)
	return s
}

// take (re)fills s from root; s must be reset and own a visitSet.
func (s *Snap) take(root events.Entity, rt *rectype.Result) {
	if s.visitFn == nil {
		s.initVisitors()
	}
	if s.rt != rt {
		s.rt = rt
		s.isRec = rt.IsRecursiveField
	}
	s.vs.begin()
	s.symmetric = false
	s.RootIsArray = root.IsArray()
	if s.RootIsArray {
		s.takeArray(root)
	} else {
		s.takeStructure(root)
	}
}

// initVisitors builds the traversal closures exactly once per Snap; they
// read traversal state through s, so the same closure values serve every
// subsequent take.
func (s *Snap) initVisitors() {
	s.visitFn = func(fieldID int, target events.Entity) {
		// Follow fields (and arrays) only through recursive links.
		if s.rt.IsRecursiveField(fieldID) {
			s.edge(target.EntityID())
			s.push(target)
		}
	}
	s.arrRefFn = func(_ int, target events.Entity) {
		s.ArrayRefs++
		s.push(target)
	}
	s.elemKeyFn = func(key events.ElemKey) {
		if s.uniq[key] {
			return
		}
		s.uniq[key] = true
		if str, ok := key.(string); ok && str != "" {
			s.StrKeys = append(s.StrKeys, str)
		}
	}
	s.arrWalkFn = func(_ int, target events.Entity) {
		if target.IsArray() {
			s.walkArray(target)
		} else if s.vs.add(target.EntityID()) {
			s.IDs = append(s.IDs, target.EntityID())
		}
	}
}

// push marks e visited and queues it for expansion.
func (s *Snap) push(e events.Entity) {
	if e == nil || !s.vs.add(e.EntityID()) {
		return
	}
	s.IDs = append(s.IDs, e.EntityID())
	s.stack = append(s.stack, e)
}

// reset clears s for reuse, retaining its backing storage.
func (s *Snap) reset() {
	s.IDs = s.IDs[:0]
	s.Objects, s.ArrayRefs, s.CapacitySlots = 0, 0, 0
	s.typeCounts = s.typeCounts[:0]
	s.StrKeys = s.StrKeys[:0]
	clear(s.uniq)
	s.RootIsArray = false
}

func (s *Snap) bumpType(name string) {
	for i := range s.typeCounts {
		if s.typeCounts[i].name == name {
			s.typeCounts[i].n++
			return
		}
	}
	s.typeCounts = append(s.typeCounts, typeCount{name, 1})
}

func (s *Snap) takeStructure(root events.Entity) {
	s.balGen++
	if s.balGen == 0 { // generation wrapped: slots are ambiguous, reset
		clear(s.bal.slots)
		s.balGen = 1
	}
	s.symOK = true
	s.nzBal = 0
	s.push(root)
	for len(s.stack) > 0 {
		e := s.stack[len(s.stack)-1]
		s.stack = s.stack[:len(s.stack)-1]
		if e.IsArray() {
			// Arrays inside a structure: count non-null refs, continue into
			// elements (objects or nested arrays).
			s.symOK = false
			e.ForEachRef(s.arrRefFn)
			continue
		}
		s.Objects++
		s.bumpType(e.TypeName())
		s.curID = e.EntityID()
		if rb, ok := e.(events.RefBatcher); ok {
			s.refBuf = rb.AppendRefs(s.isRec, s.refBuf[:0])
			for _, t := range s.refBuf {
				s.edge(t.EntityID())
				s.push(t)
			}
		} else {
			e.ForEachRef(s.visitFn)
		}
	}
	s.symmetric = s.symOK && s.nzBal == 0
}

// edge records one recursive edge from the object being expanded, for the
// strong-connectivity check: every traversed node's out-degree and
// in-degree are tracked as a running balance. If all balances end at zero
// the edge multiset decomposes into cycles, so each edge lies on a cycle
// and every member of the snapshot can reach the root — and through it the
// whole snapshot. That is exactly the property that lets the registry
// reuse this snapshot's size for a later observation rooted at any member
// (Snap.symmetric). Self-loops cannot break it and are skipped.
func (s *Snap) edge(to uint64) {
	if !s.symOK || to == s.curID {
		return
	}
	s.bump(s.curID, 1)
	s.bump(to, -1)
}

// bump adjusts one node's degree balance, maintaining the nonzero count.
func (s *Snap) bump(id uint64, d int32) {
	sl := &s.bal.slots[s.bal.idx(id)]
	if sl.gen != s.balGen {
		sl.gen, sl.d = s.balGen, 0
	}
	was := sl.d
	sl.d += d
	if was == 0 {
		s.nzBal++
	} else if sl.d == 0 {
		s.nzBal--
	}
}

func (s *Snap) takeArray(root events.Entity) {
	if s.uniq == nil {
		s.uniq = map[events.ElemKey]bool{}
	}
	s.walkArray(root)
}

// walkArray records one array of the snapshot: its capacity, its element
// identity keys, and — recursing into sub-arrays of multi-dimensional
// arrays — all reachable arrays. Element objects are recorded by id but
// not expanded; objects are measured through structure snapshots.
func (s *Snap) walkArray(e events.Entity) {
	if e == nil || !s.vs.add(e.EntityID()) {
		return
	}
	s.IDs = append(s.IDs, e.EntityID())
	s.CapacitySlots += e.Capacity()
	e.ForEachElemKey(s.elemKeyFn)
	e.ForEachRef(s.arrWalkFn)
}

// ---------------------------------------------------------------------------
// Input registry

// Input is one identified algorithm input: the union of all snapshots that
// were found equivalent over the program run.
type Input struct {
	// ID is the input's original id; after merges, Registry.Find maps any
	// id to its canonical representative.
	ID   int
	Kind Kind
	// MaxSize is the maximum size observed across all snapshots (§2.4:
	// the size of a changing structure is its maximum size).
	MaxSize int
	// MaxTypeCounts tracks the maximum per-type object counts observed.
	MaxTypeCounts map[string]int
	// MaxArrayRefs is the maximum array-reference count observed.
	MaxArrayRefs int
	// Observations counts snapshots unified into this input.
	Observations int

	// lastElems is the most recent snapshot's element set, kept only
	// under the AllElements criterion.
	lastElems map[uint64]bool

	// lastWrite is the registry write epoch of the most recent write into
	// this input (0 = never written). Maintained on canonical inputs only;
	// folded on merge.
	lastWrite uint64
	// memoFloor invalidates this input's snapshot-memo entries wholesale:
	// memo slots stamped before the floor are stale. Raised on merge,
	// because the union's extent may differ from either cached snapshot.
	memoFloor uint64

	// Whole-structure memo: when the input's last full snapshot had a
	// symmetric recursive-edge relation (Snap.symmetric), every member of
	// that snapshot reaches exactly the snapshot's extent, so an
	// observation rooted at ANY member — not just the cached root — can
	// reuse the size until the input is next written or merged. symStamp
	// identifies that snapshot (0 = none) and matches the members'
	// Registry.memberStamp entries; symEpoch/symMergeStamp pin the write
	// epoch and merge stamp it was taken at; symSize is its size.
	symStamp      uint64
	symEpoch      uint64
	symMergeStamp uint64
	symSize       int32
}

// Label renders a short description like "Node-based recursive structure"
// or "String[] array".
func (in *Input) Label() string {
	if in.Kind == KindArray {
		return "array input"
	}
	names := make([]string, 0, len(in.MaxTypeCounts))
	for n := range in.MaxTypeCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "recursive structure"
	}
	return fmt.Sprintf("%s-based recursive structure", strings.Join(names, "/"))
}

// Observation is the result of registering one snapshot.
type Observation struct {
	// InputID is the canonical input the snapshot was unified into.
	InputID int
	// Size is the size of this snapshot under the registry's strategy.
	Size int
}

// memoSlot is one cached snapshot observation, indexed by root entity id.
// Keyed by root because a snapshot from a different root of the same input
// may reach a different fragment (e.g. the tail of a singly linked list);
// per-root entries let a traversal loop, whose invocations observe
// successive nodes, hit from its second pass on.
type memoSlot struct {
	// epoch is the owning input's lastWrite at caching time; any later
	// write to the input invalidates the slot (checked lazily on lookup).
	epoch uint64
	// stamp is the registry's merge stamp at caching time; a slot stamped
	// before its input's memoFloor predates a merge and is stale. The
	// stamp is globally monotonic, so stale slots can never alias a later
	// valid state of any input.
	stamp uint64
	size  int32
	// owner is the canonical input id + 1 at caching time (0 = empty); a
	// root whose ownership moved without a merge (SameArray re-rooting)
	// must miss.
	owner int32
}

// Registry identifies inputs across snapshots ("Some Elements Equivalent")
// and tracks their sizes.
type Registry struct {
	rt    *rectype.Result
	strat Strategy
	crit  Criterion

	inputs []*Input
	parent []int // union-find over input ids

	entityOwner table[int32]    // entity id -> input id + 1 (not canonical)
	memo        table[memoSlot] // root entity id -> cached observation
	memberStamp table[uint64]   // entity id -> symStamp of covering snapshot
	keyOwner    map[string]int  // string element key -> input id
	typeOwner   map[string]int  // SameType: signature -> input id
	writeEpoch  uint64
	mergeStamp  uint64 // bumped per merge; see memoSlot.stamp
	symGen      uint64 // issues Input.symStamp values

	// memoOff disables the incremental snapshot memo (ablation: every
	// Observe re-traverses, the paper's measured behaviour).
	memoOff    bool
	memoHits   uint64
	memoMisses uint64

	// snap and vs are scratch reused across Observe calls so the hot path
	// allocates nothing.
	snap Snap
	vs   visitSet
	// candList is scratch reused across overlapCandidates calls.
	candList []int
}

// NewRegistry creates an input registry with the paper's default
// criterion (Some Elements Equivalent).
func NewRegistry(rt *rectype.Result, strat Strategy) *Registry {
	return NewRegistryWith(rt, strat, SomeElements)
}

// NewRegistryWith creates an input registry with an explicit equivalence
// criterion (§2.4).
func NewRegistryWith(rt *rectype.Result, strat Strategy, crit Criterion) *Registry {
	r := &Registry{
		rt:        rt,
		strat:     strat,
		crit:      crit,
		keyOwner:  map[string]int{},
		typeOwner: map[string]int{},
	}
	r.snap.vs = &r.vs
	return r
}

// Criterion returns the registry's equivalence criterion.
func (r *Registry) Criterion() Criterion { return r.crit }

// ApproxBytes estimates the registry's live heap footprint. It is an
// O(#inputs) pass over table lengths and map sizes — cheap enough for the
// profiler's memory-limit check to poll — and deliberately coarse: the
// constants approximate Go's per-entry overheads rather than measure them.
func (r *Registry) ApproxBytes() int64 {
	const (
		memoSlotBytes = 24 // two uint64 epochs + two int32s
		mapEntryBytes = 56 // rough per-entry cost of a small-key Go map
		inputBytes    = 176
	)
	b := int64(len(r.entityOwner.slots))*4 +
		int64(len(r.memo.slots))*memoSlotBytes +
		int64(len(r.memberStamp.slots))*8 +
		int64(len(r.vs.marks.slots))*4 +
		int64(len(r.parent))*8 +
		int64(len(r.keyOwner)+len(r.typeOwner))*mapEntryBytes
	for _, in := range r.inputs {
		b += inputBytes
		b += int64(len(in.MaxTypeCounts)+len(in.lastElems)) * mapEntryBytes
	}
	return b
}

// Strategy returns the registry's array size strategy.
func (r *Registry) Strategy() Strategy { return r.strat }

// NoteWrite bumps the write epoch and conservatively marks every input
// dirty: all cached sizes are invalid after the write. Prefer NoteWriteTo,
// which invalidates only the written structure's cache.
func (r *Registry) NoteWrite() {
	r.writeEpoch++
	for i, in := range r.inputs {
		if r.parent[i] == i {
			in.lastWrite = r.writeEpoch
		}
	}
}

// NoteWriteTo records a write into entity e, marking only the input owning
// e dirty. A write to an entity not claimed by any input needs no
// invalidation: an unclaimed entity was unreachable from every cached
// snapshot (snapshots claim everything they reach), and attaching it to a
// known structure requires a further write to one of that structure's own
// (claimed) entities.
func (r *Registry) NoteWriteTo(e events.Entity) {
	r.writeEpoch++
	if p := r.entityOwner.peek(e.EntityID()); p != nil && *p != 0 {
		r.inputs[r.Find(int(*p-1))].lastWrite = r.writeEpoch
	}
}

// WriteEpoch returns the current global write epoch.
func (r *Registry) WriteEpoch() uint64 { return r.writeEpoch }

// InputEpoch returns the write epoch of the last write into input id
// (any id unified into the input; 0 when the input was never written).
func (r *Registry) InputEpoch(id int) uint64 {
	if id < 0 || id >= len(r.inputs) {
		return 0
	}
	return r.inputs[r.Find(id)].lastWrite
}

// SetMemoization toggles the incremental snapshot memo (enabled by
// default). Disabling it restores the paper's measured behaviour: a full
// O(size) traversal on every observation.
func (r *Registry) SetMemoization(on bool) { r.memoOff = !on }

// MemoStats reports how many observations were served from the snapshot
// memo versus by full traversal.
func (r *Registry) MemoStats() (hits, misses uint64) {
	return r.memoHits, r.memoMisses
}

// Find returns the canonical input id for id.
func (r *Registry) Find(id int) int {
	for r.parent[id] != id {
		r.parent[id] = r.parent[r.parent[id]]
		id = r.parent[id]
	}
	return id
}

// Input returns the canonical input for id.
func (r *Registry) Input(id int) *Input { return r.inputs[r.Find(id)] }

// CanonicalIDs returns the sorted ids of all canonical inputs.
func (r *Registry) CanonicalIDs() []int {
	var out []int
	for i := range r.inputs {
		if r.Find(i) == i {
			out = append(out, i)
		}
	}
	return out
}

// InputOf returns the canonical input id currently associated with entity
// e, or -1 when e has not been seen in any snapshot.
func (r *Registry) InputOf(e events.Entity) int {
	return r.InputOfID(e.EntityID())
}

// InputOfID is InputOf by raw entity id.
func (r *Registry) InputOfID(id uint64) int {
	if p := r.entityOwner.peek(id); p != nil && *p != 0 {
		return r.Find(int(*p - 1))
	}
	return -1
}

// Observe snapshots the structure rooted at e, unifies it with known
// inputs, and records its size. Overlapping inputs are merged.
//
// When the root's owning input has not been written since its last full
// snapshot from the same root, the memoized observation is returned
// without re-traversing the structure (incremental snapshots, §5). The
// memo is bypassed under the AllElements criterion, which must compare
// exact element sets on every observation.
func (r *Registry) Observe(e events.Entity) Observation {
	if obs, ok := r.memoLookup(e); ok {
		return obs
	}
	if obs, ok := r.symLookup(e); ok {
		return obs
	}
	r.memoMisses++
	snap := &r.snap
	snap.reset()
	snap.take(e, r.rt)
	size := snap.Size(r.strat)

	target := r.identify(e, snap)

	in := r.inputs[target]
	in.Observations++
	if size > in.MaxSize {
		in.MaxSize = size
	}
	for _, tc := range snap.typeCounts {
		if tc.n > in.MaxTypeCounts[tc.name] {
			in.MaxTypeCounts[tc.name] = tc.n
		}
	}
	if snap.ArrayRefs > in.MaxArrayRefs {
		in.MaxArrayRefs = snap.ArrayRefs
	}
	if r.crit == AllElements {
		last := make(map[uint64]bool, len(snap.IDs))
		for _, id := range snap.IDs {
			last[id] = true
		}
		in.lastElems = last
	}

	// Claim the snapshot's elements and keys.
	for _, id := range snap.IDs {
		r.entityOwner.slots[r.entityOwner.idx(id)] = int32(target) + 1
	}
	for _, key := range snap.StrKeys {
		r.keyOwner[key] = target
	}
	if r.memoUsable() {
		r.memo.slots[r.memo.idx(e.EntityID())] = memoSlot{
			epoch: in.lastWrite,
			stamp: r.mergeStamp,
			size:  int32(size),
			owner: int32(target) + 1,
		}
		if snap.symmetric {
			// Symmetric recursive-edge relation: any member of this
			// snapshot reaches exactly this extent, so stamp the members
			// and let observations from any of their roots reuse the size
			// until the input is written or merged.
			r.symGen++
			in.symStamp = r.symGen
			in.symEpoch = in.lastWrite
			in.symMergeStamp = r.mergeStamp
			in.symSize = int32(size)
			for _, id := range snap.IDs {
				r.memberStamp.slots[r.memberStamp.idx(id)] = r.symGen
			}
		}
	}
	return Observation{InputID: target, Size: size}
}

// symLookup serves an observation from the whole-structure memo: the root
// belongs to a known input whose last full snapshot was symmetric and
// covered the root, and no write or merge has hit the input since. See
// Input.symStamp.
func (r *Registry) symLookup(e events.Entity) (Observation, bool) {
	if !r.memoUsable() {
		return Observation{}, false
	}
	p := r.entityOwner.peek(e.EntityID())
	if p == nil || *p == 0 {
		return Observation{}, false
	}
	target := r.Find(int(*p - 1))
	in := r.inputs[target]
	if in.symStamp == 0 || in.symEpoch != in.lastWrite || in.symMergeStamp < in.memoFloor {
		return Observation{}, false
	}
	ms := r.memberStamp.peek(e.EntityID())
	if ms == nil || *ms != in.symStamp {
		return Observation{}, false
	}
	r.memoHits++
	in.Observations++
	return Observation{InputID: target, Size: int(in.symSize)}, true
}

// memoUsable reports whether the snapshot memo applies under the current
// configuration.
func (r *Registry) memoUsable() bool {
	return !r.memoOff && r.crit != AllElements
}

// memoLookup serves an observation from the memo when the root entity
// belongs to a known input whose cached snapshot was rooted at the same
// entity and no write or merge has hit the input since.
func (r *Registry) memoLookup(e events.Entity) (Observation, bool) {
	if !r.memoUsable() {
		return Observation{}, false
	}
	p := r.entityOwner.peek(e.EntityID())
	if p == nil || *p == 0 {
		return Observation{}, false
	}
	target := r.Find(int(*p - 1))
	in := r.inputs[target]
	slot := r.memo.peek(e.EntityID())
	if slot == nil || slot.owner == 0 ||
		r.Find(int(slot.owner-1)) != target ||
		slot.stamp < in.memoFloor ||
		slot.epoch != in.lastWrite {
		return Observation{}, false
	}
	if r.crit == SameArray && e.IsArray() && in.Kind != KindArray {
		// SameArray creates a fresh input for an array claimed by a
		// structure input; the memo must not short-circuit that.
		return Observation{}, false
	}
	r.memoHits++
	in.Observations++
	return Observation{InputID: target, Size: int(slot.size)}, true
}

// identify applies the equivalence criterion and returns the input the
// snapshot belongs to, creating or merging inputs as needed.
func (r *Registry) identify(root events.Entity, snap *Snap) int {
	switch r.crit {
	case SameType:
		sig := snap.typeSignature()
		if id, ok := r.typeOwner[sig]; ok {
			return r.Find(id)
		}
		id := r.newInput(snap)
		r.typeOwner[sig] = id
		return id

	case AllElements:
		// Unify only with an input whose last snapshot has exactly the
		// same element set.
		for _, c := range r.overlapCandidates(snap, false) {
			last := r.inputs[c].lastElems
			if len(last) != len(snap.IDs) {
				continue
			}
			equal := true
			for _, id := range snap.IDs {
				if !last[id] {
					equal = false
					break
				}
			}
			if equal {
				return c
			}
		}
		return r.newInput(snap)

	case SameArray:
		if snap.RootIsArray {
			// Identity only: the root array's own id decides.
			if owner := r.InputOfID(root.EntityID()); owner >= 0 {
				if r.inputs[owner].Kind == KindArray {
					return owner
				}
			}
			return r.newInput(snap)
		}
		fallthrough

	default: // SomeElements
		cands := r.overlapCandidates(snap, r.crit != SameArray)
		if len(cands) == 0 {
			return r.newInput(snap)
		}
		target := cands[0]
		for _, other := range cands[1:] {
			r.merge(target, other)
		}
		return target
	}
}

// overlapCandidates returns the canonical ids of all inputs sharing an
// element (or, when useKeys is set, an element identity key) with snap,
// sorted ascending. The returned slice is a scratch buffer owned by the
// registry, valid only until the next call. Candidate sets are tiny (a
// snapshot rarely touches more than one or two known inputs), so linear
// de-duplication beats a set.
func (r *Registry) overlapCandidates(snap *Snap, useKeys bool) []int {
	out := r.candList[:0]
	add := func(owner int) {
		c := r.Find(owner)
		for _, v := range out {
			if v == c {
				return
			}
		}
		out = append(out, c)
	}
	for _, id := range snap.IDs {
		if p := r.entityOwner.peek(id); p != nil && *p != 0 {
			add(int(*p - 1))
		}
	}
	if useKeys {
		for _, key := range snap.StrKeys {
			if owner, ok := r.keyOwner[key]; ok {
				add(owner)
			}
		}
	}
	sort.Ints(out)
	r.candList = out
	return out
}

// typeSignature renders the snapshot's element type set, the SameType key.
func (s *Snap) typeSignature() string {
	if s.RootIsArray {
		return "array" // arrays carry no object type counts
	}
	names := make([]string, 0, len(s.typeCounts))
	for _, tc := range s.typeCounts {
		names = append(names, tc.name)
	}
	sort.Strings(names)
	return "struct:" + strings.Join(names, "/")
}

func (r *Registry) newInput(snap *Snap) int {
	id := len(r.inputs)
	kind := KindStructure
	if snap.RootIsArray {
		kind = KindArray
	}
	r.inputs = append(r.inputs, &Input{
		ID:            id,
		Kind:          kind,
		MaxTypeCounts: map[string]int{},
	})
	r.parent = append(r.parent, id)
	return id
}

// merge unifies input b into input a (both canonical).
func (r *Registry) merge(a, b int) {
	if a == b {
		return
	}
	ia, ib := r.inputs[a], r.inputs[b]
	if ib.MaxSize > ia.MaxSize {
		ia.MaxSize = ib.MaxSize
	}
	for tn, c := range ib.MaxTypeCounts {
		if c > ia.MaxTypeCounts[tn] {
			ia.MaxTypeCounts[tn] = c
		}
	}
	if ib.MaxArrayRefs > ia.MaxArrayRefs {
		ia.MaxArrayRefs = ib.MaxArrayRefs
	}
	ia.Observations += ib.Observations
	if ib.lastWrite > ia.lastWrite {
		ia.lastWrite = ib.lastWrite
	}
	// The union's extent may differ from either cached snapshot.
	r.mergeStamp++
	ia.memoFloor = r.mergeStamp
	ib.memoFloor = r.mergeStamp
	r.parent[b] = a
}
