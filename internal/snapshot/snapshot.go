// Package snapshot implements input identification and size measurement
// for the algorithmic profiler (§2.3, §2.4, §3.4 of the AlgoProf paper).
//
// A snapshot of a structure is the set of heap entities reachable from an
// accessed reference via recursive links (recursive-type fields, plus
// arrays embedded in structures). Snapshots taken at different times are
// unified into *inputs* using the paper's "Some Elements Equivalent"
// criterion: two snapshots denote the same input when they share at least
// one element. For arrays, elements may be values (strings) rather than
// heap entities, so array snapshots also carry element identity keys; this
// is what lets a reallocated, grown backing array be recognized as the
// same input as its predecessor (the resizable-array case of Listing 6).
package snapshot

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/events"
	"algoprof/internal/rectype"
)

// Strategy selects how array sizes are measured (§3.4).
type Strategy int

// Array size strategies.
const (
	// Capacity counts element slots (recursively for multi-dimensional
	// arrays: top-level slots plus all lower-level slots).
	Capacity Strategy = iota
	// UniqueElements counts the set of unique elements (all non-null
	// elements of reference arrays, all values of primitive arrays);
	// approximates the used fraction of over-allocated arrays.
	UniqueElements
)

// String names the strategy.
func (s Strategy) String() string {
	if s == UniqueElements {
		return "unique"
	}
	return "capacity"
}

// Criterion selects the snapshot equivalence criterion (§2.4): how the
// registry decides whether two snapshots represent the same input.
type Criterion int

// Equivalence criteria.
const (
	// SomeElements unifies snapshots that share at least one element —
	// the paper's default: robust to structure evolution, partial
	// traversals of weakly connected structures, and array reallocation.
	SomeElements Criterion = iota
	// AllElements unifies snapshots only when their element sets are
	// identical; an evolving structure fragments into one input per
	// distinct extent.
	AllElements
	// SameArray unifies arrays only by object identity (element overlap
	// ignored); structures still unify by element overlap. A reallocated
	// backing array becomes a new input.
	SameArray
	// SameType unifies any two snapshots whose element type signature
	// matches: all Node-lists in a program become one input.
	SameType
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case AllElements:
		return "all-elements"
	case SameArray:
		return "same-array"
	case SameType:
		return "same-type"
	}
	return "some-elements"
}

// Kind distinguishes input categories.
type Kind int

// Input kinds.
const (
	KindStructure Kind = iota
	KindArray
)

// String names the kind.
func (k Kind) String() string {
	if k == KindArray {
		return "array"
	}
	return "structure"
}

// Snap is one structure snapshot.
type Snap struct {
	// Entities are the ids of all reached heap entities (objects and
	// arrays, including the root).
	Entities map[uint64]bool
	// Objects is the number of objects reached (arrays excluded): the
	// size of a recursive structure.
	Objects int
	// ArrayRefs counts non-null references traversed inside arrays that
	// are part of the structure.
	ArrayRefs int
	// TypeCounts counts objects per class name.
	TypeCounts map[string]int
	// OverlapKeys are element identity keys usable for input unification
	// (reference keys and strings; raw primitive values are excluded
	// because equal values do not imply identity).
	OverlapKeys map[events.ElemKey]bool
	// UniqueKeys are all element keys, for the unique-elements size
	// strategy.
	UniqueKeys map[events.ElemKey]bool
	// CapacitySlots counts array slots recursively.
	CapacitySlots int
	// RootIsArray records what the snapshot was rooted at.
	RootIsArray bool
}

// Size returns the snapshot's size under the given strategy: object count
// for structures; capacity or unique-element count for arrays.
func (s *Snap) Size(strat Strategy) int {
	if !s.RootIsArray {
		return s.Objects
	}
	if strat == UniqueElements {
		return len(s.UniqueKeys)
	}
	return s.CapacitySlots
}

// Take computes the snapshot reachable from root. For object roots it
// follows recursive-type fields (per rt) and traverses arrays embedded in
// the structure; for array roots it records the array's elements and
// recurses into sub-arrays (multi-dimensional arrays), but does not expand
// element objects — objects are measured through structure snapshots.
func Take(root events.Entity, rt *rectype.Result) *Snap {
	s := &Snap{
		Entities:    map[uint64]bool{},
		TypeCounts:  map[string]int{},
		OverlapKeys: map[events.ElemKey]bool{},
		UniqueKeys:  map[events.ElemKey]bool{},
		RootIsArray: root.IsArray(),
	}
	if s.RootIsArray {
		s.takeArray(root)
	} else {
		s.takeStructure(root, rt)
	}
	return s
}

func (s *Snap) takeStructure(root events.Entity, rt *rectype.Result) {
	var stack []events.Entity
	visit := func(e events.Entity) {
		if e == nil || s.Entities[e.EntityID()] {
			return
		}
		s.Entities[e.EntityID()] = true
		stack = append(stack, e)
	}
	visit(root)
	for len(stack) > 0 {
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.IsArray() {
			// Arrays inside a structure: count non-null refs, continue into
			// elements (objects or nested arrays).
			e.ForEachRef(func(_ int, target events.Entity) {
				s.ArrayRefs++
				visit(target)
			})
			continue
		}
		s.Objects++
		s.TypeCounts[e.TypeName()]++
		s.OverlapKeys[events.RefKey(e.EntityID())] = true
		e.ForEachRef(func(fieldID int, target events.Entity) {
			if target.IsArray() {
				// Follow arrays only through recursive links.
				if rt.IsRecursiveField(fieldID) {
					visit(target)
				}
				return
			}
			if rt.IsRecursiveField(fieldID) {
				visit(target)
			}
		})
	}
}

func (s *Snap) takeArray(root events.Entity) {
	var walk func(e events.Entity)
	walk = func(e events.Entity) {
		if e == nil || s.Entities[e.EntityID()] {
			return
		}
		s.Entities[e.EntityID()] = true
		s.CapacitySlots += e.Capacity()
		e.ForEachElemKey(func(key events.ElemKey) {
			s.UniqueKeys[key] = true
			switch k := key.(type) {
			case events.RefKey:
				s.OverlapKeys[k] = true
			case string:
				if k != "" {
					s.OverlapKeys[k] = true
				}
			}
		})
		// Recurse into sub-arrays (multi-dimensional arrays); element
		// objects are recorded by id (via RefKey above) but not expanded.
		e.ForEachRef(func(_ int, target events.Entity) {
			if target.IsArray() {
				walk(target)
			} else {
				s.Entities[target.EntityID()] = true
			}
		})
	}
	walk(root)
}

// ---------------------------------------------------------------------------
// Input registry

// Input is one identified algorithm input: the union of all snapshots that
// were found equivalent over the program run.
type Input struct {
	// ID is the input's original id; after merges, Registry.Find maps any
	// id to its canonical representative.
	ID   int
	Kind Kind
	// MaxSize is the maximum size observed across all snapshots (§2.4:
	// the size of a changing structure is its maximum size).
	MaxSize int
	// MaxTypeCounts tracks the maximum per-type object counts observed.
	MaxTypeCounts map[string]int
	// MaxArrayRefs is the maximum array-reference count observed.
	MaxArrayRefs int
	// Observations counts snapshots unified into this input.
	Observations int

	// lastElems is the most recent snapshot's element set, kept only
	// under the AllElements criterion.
	lastElems map[uint64]bool

	// lastWrite is the registry write epoch of the most recent write into
	// this input (0 = never written). Maintained on canonical inputs only;
	// folded on merge.
	lastWrite uint64
	// memo caches full snapshots of this input by root entity, so repeated
	// observations of an unchanged structure skip the O(size) traversal.
	// Keyed by root because a snapshot from a different root of the same
	// input may reach a different fragment (e.g. the tail of a singly
	// linked list); per-root entries let a traversal loop, whose
	// invocations observe successive nodes, hit from its second pass on.
	memo map[uint64]memoEntry
}

// memoEntry is one cached snapshot observation (see Registry.Observe).
type memoEntry struct {
	// epoch is the input's lastWrite at caching time; any later write to
	// the input invalidates the entry (checked lazily on lookup).
	epoch uint64
	size  int
}

// Label renders a short description like "Node-based recursive structure"
// or "String[] array".
func (in *Input) Label() string {
	if in.Kind == KindArray {
		return "array input"
	}
	names := make([]string, 0, len(in.MaxTypeCounts))
	for n := range in.MaxTypeCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return "recursive structure"
	}
	return fmt.Sprintf("%s-based recursive structure", strings.Join(names, "/"))
}

// Observation is the result of registering one snapshot.
type Observation struct {
	// InputID is the canonical input the snapshot was unified into.
	InputID int
	// Size is the size of this snapshot under the registry's strategy.
	Size int
}

// Registry identifies inputs across snapshots ("Some Elements Equivalent")
// and tracks their sizes.
type Registry struct {
	rt    *rectype.Result
	strat Strategy
	crit  Criterion

	inputs []*Input
	parent []int // union-find over input ids

	entityOwner map[uint64]int         // entity id -> input id (not canonical)
	keyOwner    map[events.ElemKey]int // overlap key -> input id
	typeOwner   map[string]int         // SameType: signature -> input id
	writeEpoch  uint64

	// memoOff disables the incremental snapshot memo (ablation: every
	// Observe re-traverses, the paper's measured behaviour).
	memoOff    bool
	memoHits   uint64
	memoMisses uint64

	// candSet and candList are scratch buffers reused across
	// overlapCandidates calls to avoid per-Observe allocations.
	candSet  map[int]bool
	candList []int
}

// NewRegistry creates an input registry with the paper's default
// criterion (Some Elements Equivalent).
func NewRegistry(rt *rectype.Result, strat Strategy) *Registry {
	return NewRegistryWith(rt, strat, SomeElements)
}

// NewRegistryWith creates an input registry with an explicit equivalence
// criterion (§2.4).
func NewRegistryWith(rt *rectype.Result, strat Strategy, crit Criterion) *Registry {
	return &Registry{
		rt:          rt,
		strat:       strat,
		crit:        crit,
		entityOwner: map[uint64]int{},
		keyOwner:    map[events.ElemKey]int{},
		typeOwner:   map[string]int{},
	}
}

// Criterion returns the registry's equivalence criterion.
func (r *Registry) Criterion() Criterion { return r.crit }

// Strategy returns the registry's array size strategy.
func (r *Registry) Strategy() Strategy { return r.strat }

// NoteWrite bumps the write epoch and conservatively marks every input
// dirty: all cached sizes are invalid after the write. Prefer NoteWriteTo,
// which invalidates only the written structure's cache.
func (r *Registry) NoteWrite() {
	r.writeEpoch++
	for i, in := range r.inputs {
		if r.parent[i] == i {
			in.lastWrite = r.writeEpoch
		}
	}
}

// NoteWriteTo records a write into entity e, marking only the input owning
// e dirty. A write to an entity not claimed by any input needs no
// invalidation: an unclaimed entity was unreachable from every cached
// snapshot (snapshots claim everything they reach), and attaching it to a
// known structure requires a further write to one of that structure's own
// (claimed) entities.
func (r *Registry) NoteWriteTo(e events.Entity) {
	r.writeEpoch++
	if owner, ok := r.entityOwner[e.EntityID()]; ok {
		r.inputs[r.Find(owner)].lastWrite = r.writeEpoch
	}
}

// WriteEpoch returns the current global write epoch.
func (r *Registry) WriteEpoch() uint64 { return r.writeEpoch }

// InputEpoch returns the write epoch of the last write into input id
// (any id unified into the input; 0 when the input was never written).
func (r *Registry) InputEpoch(id int) uint64 {
	if id < 0 || id >= len(r.inputs) {
		return 0
	}
	return r.inputs[r.Find(id)].lastWrite
}

// SetMemoization toggles the incremental snapshot memo (enabled by
// default). Disabling it restores the paper's measured behaviour: a full
// O(size) traversal on every observation.
func (r *Registry) SetMemoization(on bool) { r.memoOff = !on }

// MemoStats reports how many observations were served from the snapshot
// memo versus by full traversal.
func (r *Registry) MemoStats() (hits, misses uint64) {
	return r.memoHits, r.memoMisses
}

// Find returns the canonical input id for id.
func (r *Registry) Find(id int) int {
	for r.parent[id] != id {
		r.parent[id] = r.parent[r.parent[id]]
		id = r.parent[id]
	}
	return id
}

// Input returns the canonical input for id.
func (r *Registry) Input(id int) *Input { return r.inputs[r.Find(id)] }

// CanonicalIDs returns the sorted ids of all canonical inputs.
func (r *Registry) CanonicalIDs() []int {
	var out []int
	for i := range r.inputs {
		if r.Find(i) == i {
			out = append(out, i)
		}
	}
	return out
}

// InputOf returns the canonical input id currently associated with entity
// e, or -1 when e has not been seen in any snapshot.
func (r *Registry) InputOf(e events.Entity) int {
	return r.InputOfID(e.EntityID())
}

// InputOfID is InputOf by raw entity id.
func (r *Registry) InputOfID(id uint64) int {
	if owner, ok := r.entityOwner[id]; ok {
		return r.Find(owner)
	}
	return -1
}

// Observe snapshots the structure rooted at e, unifies it with known
// inputs, and records its size. Overlapping inputs are merged.
//
// When the root's owning input has not been written since its last full
// snapshot from the same root, the memoized observation is returned
// without re-traversing the structure (incremental snapshots, §5). The
// memo is bypassed under the AllElements criterion, which must compare
// exact element sets on every observation.
func (r *Registry) Observe(e events.Entity) Observation {
	if obs, ok := r.memoLookup(e); ok {
		return obs
	}
	r.memoMisses++
	snap := Take(e, r.rt)
	size := snap.Size(r.strat)

	target := r.identify(e, snap)

	in := r.inputs[target]
	in.Observations++
	if size > in.MaxSize {
		in.MaxSize = size
	}
	for tn, c := range snap.TypeCounts {
		if c > in.MaxTypeCounts[tn] {
			in.MaxTypeCounts[tn] = c
		}
	}
	if snap.ArrayRefs > in.MaxArrayRefs {
		in.MaxArrayRefs = snap.ArrayRefs
	}
	if r.crit == AllElements {
		in.lastElems = snap.Entities
	}

	// Claim the snapshot's elements and keys.
	for id := range snap.Entities {
		r.entityOwner[id] = target
	}
	for key := range snap.OverlapKeys {
		r.keyOwner[key] = target
	}
	if r.memoUsable() {
		if in.memo == nil {
			in.memo = map[uint64]memoEntry{}
		}
		in.memo[e.EntityID()] = memoEntry{epoch: in.lastWrite, size: size}
	}
	return Observation{InputID: target, Size: size}
}

// memoUsable reports whether the snapshot memo applies under the current
// configuration.
func (r *Registry) memoUsable() bool {
	return !r.memoOff && r.crit != AllElements
}

// memoLookup serves an observation from the memo when the root entity
// belongs to a known input whose cached snapshot was rooted at the same
// entity and no write has hit the input since.
func (r *Registry) memoLookup(e events.Entity) (Observation, bool) {
	if !r.memoUsable() {
		return Observation{}, false
	}
	owner, ok := r.entityOwner[e.EntityID()]
	if !ok {
		return Observation{}, false
	}
	target := r.Find(owner)
	in := r.inputs[target]
	ent, found := in.memo[e.EntityID()]
	if !found || ent.epoch != in.lastWrite {
		return Observation{}, false
	}
	if r.crit == SameArray && e.IsArray() && in.Kind != KindArray {
		// SameArray creates a fresh input for an array claimed by a
		// structure input; the memo must not short-circuit that.
		return Observation{}, false
	}
	r.memoHits++
	in.Observations++
	return Observation{InputID: target, Size: ent.size}, true
}

// identify applies the equivalence criterion and returns the input the
// snapshot belongs to, creating or merging inputs as needed.
func (r *Registry) identify(root events.Entity, snap *Snap) int {
	switch r.crit {
	case SameType:
		sig := snap.typeSignature()
		if id, ok := r.typeOwner[sig]; ok {
			return r.Find(id)
		}
		id := r.newInput(snap)
		r.typeOwner[sig] = id
		return id

	case AllElements:
		// Unify only with an input whose last snapshot has exactly the
		// same element set.
		for _, c := range r.overlapCandidates(snap, false) {
			last := r.inputs[c].lastElems
			if len(last) != len(snap.Entities) {
				continue
			}
			equal := true
			for id := range snap.Entities {
				if !last[id] {
					equal = false
					break
				}
			}
			if equal {
				return c
			}
		}
		return r.newInput(snap)

	case SameArray:
		if snap.RootIsArray {
			// Identity only: the root array's own id decides.
			if owner, ok := r.entityOwner[root.EntityID()]; ok {
				if r.inputs[r.Find(owner)].Kind == KindArray {
					return r.Find(owner)
				}
			}
			return r.newInput(snap)
		}
		fallthrough

	default: // SomeElements
		cands := r.overlapCandidates(snap, r.crit != SameArray)
		if len(cands) == 0 {
			return r.newInput(snap)
		}
		target := cands[0]
		for _, other := range cands[1:] {
			r.merge(target, other)
		}
		return target
	}
}

// overlapCandidates returns the canonical ids of all inputs sharing an
// element (or, when useKeys is set, an element identity key) with snap,
// sorted ascending. The returned slice is a scratch buffer owned by the
// registry, valid only until the next call.
func (r *Registry) overlapCandidates(snap *Snap, useKeys bool) []int {
	if r.candSet == nil {
		r.candSet = map[int]bool{}
	}
	clear(r.candSet)
	set := r.candSet
	for id := range snap.Entities {
		if owner, ok := r.entityOwner[id]; ok {
			set[r.Find(owner)] = true
		}
	}
	if useKeys {
		for key := range snap.OverlapKeys {
			if owner, ok := r.keyOwner[key]; ok {
				set[r.Find(owner)] = true
			}
		}
	}
	out := r.candList[:0]
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	r.candList = out
	return out
}

// typeSignature renders the snapshot's element type set, the SameType key.
func (s *Snap) typeSignature() string {
	if s.RootIsArray {
		return "array" // arrays carry no object type counts
	}
	names := make([]string, 0, len(s.TypeCounts))
	for n := range s.TypeCounts {
		names = append(names, n)
	}
	sort.Strings(names)
	return "struct:" + strings.Join(names, "/")
}

func (r *Registry) newInput(snap *Snap) int {
	id := len(r.inputs)
	kind := KindStructure
	if snap.RootIsArray {
		kind = KindArray
	}
	r.inputs = append(r.inputs, &Input{
		ID:            id,
		Kind:          kind,
		MaxTypeCounts: map[string]int{},
	})
	r.parent = append(r.parent, id)
	return id
}

// merge unifies input b into input a (both canonical).
func (r *Registry) merge(a, b int) {
	if a == b {
		return
	}
	ia, ib := r.inputs[a], r.inputs[b]
	if ib.MaxSize > ia.MaxSize {
		ia.MaxSize = ib.MaxSize
	}
	for tn, c := range ib.MaxTypeCounts {
		if c > ia.MaxTypeCounts[tn] {
			ia.MaxTypeCounts[tn] = c
		}
	}
	if ib.MaxArrayRefs > ia.MaxArrayRefs {
		ia.MaxArrayRefs = ib.MaxArrayRefs
	}
	ia.Observations += ib.Observations
	if ib.lastWrite > ia.lastWrite {
		ia.lastWrite = ib.lastWrite
	}
	// The union's extent may differ from either cached snapshot.
	ia.memo = nil
	ib.memo = nil
	r.parent[b] = a
}
