package snapshot

import (
	"testing"
	"testing/quick"

	"algoprof/internal/events"
	"algoprof/internal/rectype"
)

// ---------------------------------------------------------------------------
// Fake heap entities for precise control over structure shapes.

type ref struct {
	field  int
	target events.Entity
}

type fakeObj struct {
	id   uint64
	typ  string
	refs []ref
}

func (o *fakeObj) EntityID() uint64 { return o.id }
func (o *fakeObj) TypeName() string { return o.typ }
func (o *fakeObj) ClassID() int     { return 0 }
func (o *fakeObj) IsArray() bool    { return false }
func (o *fakeObj) Capacity() int    { return 0 }
func (o *fakeObj) ForEachRef(visit func(int, events.Entity)) {
	for _, r := range o.refs {
		visit(r.field, r.target)
	}
}
func (o *fakeObj) ForEachElemKey(func(events.ElemKey)) {}

type fakeArr struct {
	id   uint64
	typ  string
	cap  int
	keys []events.ElemKey
	subs []events.Entity // non-nil reference elements
}

func (a *fakeArr) EntityID() uint64 { return a.id }
func (a *fakeArr) TypeName() string { return a.typ }
func (a *fakeArr) ClassID() int     { return -1 }
func (a *fakeArr) IsArray() bool    { return true }
func (a *fakeArr) Capacity() int    { return a.cap }
func (a *fakeArr) ForEachRef(visit func(int, events.Entity)) {
	for _, s := range a.subs {
		visit(-1, s)
	}
}
func (a *fakeArr) ForEachElemKey(visit func(events.ElemKey)) {
	for _, k := range a.keys {
		visit(k)
	}
}

// rt builds a rectype result where field ids in rec are recursive.
func rt(numFields int, rec ...int) *rectype.Result {
	r := &rectype.Result{RecursiveField: make([]bool, numFields)}
	for _, f := range rec {
		r.RecursiveField[f] = true
	}
	return r
}

// list builds a singly linked list of n fakeObj nodes using field 0,
// starting ids at base. Returns head and all nodes.
func list(base uint64, n int) (*fakeObj, []*fakeObj) {
	nodes := make([]*fakeObj, n)
	for i := range nodes {
		nodes[i] = &fakeObj{id: base + uint64(i), typ: "Node"}
	}
	for i := 0; i+1 < n; i++ {
		nodes[i].refs = append(nodes[i].refs, ref{field: 0, target: nodes[i+1]})
	}
	return nodes[0], nodes
}

func TestStructureSnapshotCountsObjects(t *testing.T) {
	head, _ := list(1, 5)
	s := Take(head, rt(1, 0))
	if s.Objects != 5 {
		t.Errorf("Objects = %d, want 5", s.Objects)
	}
	if s.Size(Capacity) != 5 || s.Size(UniqueElements) != 5 {
		t.Errorf("structure size must be object count under either strategy")
	}
	if s.TypeCount("Node") != 5 {
		t.Errorf("TypeCount(Node) = %d", s.TypeCount("Node"))
	}
}

func TestStructureSnapshotStopsAtNonRecursiveFields(t *testing.T) {
	payload := &fakeObj{id: 100, typ: "Payload"}
	n1 := &fakeObj{id: 1, typ: "Node"}
	n2 := &fakeObj{id: 2, typ: "Node"}
	n1.refs = []ref{{field: 0, target: n2}, {field: 1, target: payload}}
	s := Take(n1, rt(2, 0)) // only field 0 is recursive
	if s.Objects != 2 {
		t.Errorf("Objects = %d, want 2 (payload not traversed)", s.Objects)
	}
	if s.Has(100) {
		t.Error("payload must not be in the snapshot")
	}
}

func TestStructureSnapshotHandlesCycles(t *testing.T) {
	// Doubly linked ring.
	a := &fakeObj{id: 1, typ: "Node"}
	b := &fakeObj{id: 2, typ: "Node"}
	a.refs = []ref{{0, b}}
	b.refs = []ref{{0, a}}
	s := Take(a, rt(1, 0))
	if s.Objects != 2 {
		t.Errorf("cyclic structure: Objects = %d, want 2", s.Objects)
	}
}

func TestStructureWithEmbeddedArray(t *testing.T) {
	// N-ary tree node with a children array (recursive field 0).
	c1 := &fakeObj{id: 2, typ: "Node"}
	c2 := &fakeObj{id: 3, typ: "Node"}
	kids := &fakeArr{id: 10, typ: "Node[]", cap: 4, subs: []events.Entity{c1, c2},
		keys: []events.ElemKey{events.RefKey(2), events.RefKey(3)}}
	root := &fakeObj{id: 1, typ: "Node", refs: []ref{{0, kids}}}
	s := Take(root, rt(1, 0))
	if s.Objects != 3 {
		t.Errorf("Objects = %d, want 3 (arrays not counted as objects)", s.Objects)
	}
	if s.ArrayRefs != 2 {
		t.Errorf("ArrayRefs = %d, want 2", s.ArrayRefs)
	}
	if !s.Has(10) {
		t.Error("embedded array must be in the entity set")
	}
}

func TestArraySnapshotCapacityVsUnique(t *testing.T) {
	a := &fakeArr{id: 1, typ: "int[]", cap: 1000,
		keys: []events.ElemKey{int64(0), int64(2), int64(4), int64(4)}}
	s := Take(a, rt(0))
	if s.Size(Capacity) != 1000 {
		t.Errorf("capacity size = %d, want 1000", s.Size(Capacity))
	}
	// Unique keys: {0, 2, 4} — duplicates collapse.
	if s.Size(UniqueElements) != 3 {
		t.Errorf("unique size = %d, want 3", s.Size(UniqueElements))
	}
}

func TestMultiDimArrayCapacity(t *testing.T) {
	// Paper §3.4: new int[][]{new int[0], new int[1], new int[2]} has size
	// 3 + (0+1+2) = 6.
	s0 := &fakeArr{id: 2, typ: "int[]", cap: 0}
	s1 := &fakeArr{id: 3, typ: "int[]", cap: 1, keys: []events.ElemKey{int64(0)}}
	s2 := &fakeArr{id: 4, typ: "int[]", cap: 2, keys: []events.ElemKey{int64(0), int64(0)}}
	top := &fakeArr{id: 1, typ: "int[][]", cap: 3,
		subs: []events.Entity{s0, s1, s2},
		keys: []events.ElemKey{events.RefKey(2), events.RefKey(3), events.RefKey(4)}}
	s := Take(top, rt(0))
	if s.Size(Capacity) != 6 {
		t.Errorf("multi-dim capacity = %d, want 6", s.Size(Capacity))
	}
}

func TestRegistryIdentifiesSameStructure(t *testing.T) {
	head, nodes := list(1, 4)
	r := NewRegistry(rt(1, 0), Capacity)
	o1 := r.Observe(head)
	// Second snapshot from a different element of the same structure.
	o2 := r.Observe(nodes[2])
	if r.Find(o1.InputID) != r.Find(o2.InputID) {
		t.Error("snapshots of the same structure must unify (Some Elements Equivalent)")
	}
	if o2.Size != 2 {
		t.Errorf("snapshot from node 2 sees %d nodes, want 2", o2.Size)
	}
	if in := r.Input(o1.InputID); in.MaxSize != 4 {
		t.Errorf("MaxSize = %d, want 4", in.MaxSize)
	}
}

func TestRegistrySeparatesDisjointStructures(t *testing.T) {
	h1, _ := list(1, 3)
	h2, _ := list(100, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	o1 := r.Observe(h1)
	o2 := r.Observe(h2)
	if r.Find(o1.InputID) == r.Find(o2.InputID) {
		t.Error("disjoint structures must be distinct inputs")
	}
	if len(r.CanonicalIDs()) != 2 {
		t.Errorf("canonical inputs = %v, want 2", r.CanonicalIDs())
	}
}

func TestRegistryMergesWhenStructuresConnect(t *testing.T) {
	h1, n1 := list(1, 3)
	h2, _ := list(100, 3)
	r := NewRegistry(rt(1, 0), Capacity)
	a := r.Observe(h1)
	b := r.Observe(h2)
	// Link the tail of list 1 to the head of list 2 (reporting the write,
	// as FieldPut would), then re-observe.
	n1[2].refs = append(n1[2].refs, ref{0, h2})
	r.NoteWriteTo(n1[2])
	c := r.Observe(h1)
	if r.Find(a.InputID) != r.Find(b.InputID) || r.Find(c.InputID) != r.Find(a.InputID) {
		t.Error("connected structures must merge into one input")
	}
	if c.Size != 6 {
		t.Errorf("merged snapshot size = %d, want 6", c.Size)
	}
	if len(r.CanonicalIDs()) != 1 {
		t.Errorf("canonical inputs = %v, want 1", r.CanonicalIDs())
	}
}

func TestRegistryGrowingStructureMaxSize(t *testing.T) {
	// Observe a list as it grows: max size rule (§2.4).
	r := NewRegistry(rt(1, 0), Capacity)
	head, nodes := list(1, 1)
	o := r.Observe(head)
	for i := 1; i < 6; i++ {
		n := &fakeObj{id: uint64(i + 1), typ: "Node"}
		tail := nodes[len(nodes)-1]
		tail.refs = append(tail.refs, ref{0, n})
		r.NoteWriteTo(tail)
		nodes = append(nodes, n)
		o = r.Observe(head)
	}
	in := r.Input(o.InputID)
	if in.MaxSize != 6 {
		t.Errorf("MaxSize = %d, want 6", in.MaxSize)
	}
	if in.Observations != 6 {
		t.Errorf("Observations = %d, want 6", in.Observations)
	}
}

func TestReallocatedStringArrayUnifies(t *testing.T) {
	// Listing 6: the grown backing array shares its string elements with
	// the old one, so both snapshots are the same input.
	old := &fakeArr{id: 1, typ: "String[]", cap: 4,
		keys: []events.ElemKey{"n0", "n1", "n2", "n3"}}
	grown := &fakeArr{id: 2, typ: "String[]", cap: 8,
		keys: []events.ElemKey{"n0", "n1", "n2", "n3", "n4"}}
	r := NewRegistry(rt(0), Capacity)
	a := r.Observe(old)
	b := r.Observe(grown)
	if r.Find(a.InputID) != r.Find(b.InputID) {
		t.Error("reallocated array must unify with its predecessor via shared elements")
	}
	if r.Input(a.InputID).MaxSize != 8 {
		t.Errorf("MaxSize = %d, want 8", r.Input(a.InputID).MaxSize)
	}
}

func TestPrimitiveIntArraysDoNotUnifyByValue(t *testing.T) {
	// Equal int values in unrelated arrays must not merge them: primitive
	// values carry no identity.
	a1 := &fakeArr{id: 1, typ: "int[]", cap: 3, keys: []events.ElemKey{int64(5), int64(6)}}
	a2 := &fakeArr{id: 2, typ: "int[]", cap: 3, keys: []events.ElemKey{int64(5), int64(6)}}
	r := NewRegistry(rt(0), Capacity)
	x := r.Observe(a1)
	y := r.Observe(a2)
	if r.Find(x.InputID) == r.Find(y.InputID) {
		t.Error("distinct primitive arrays with equal values must stay distinct")
	}
}

func TestSameArrayIdentityUnifies(t *testing.T) {
	a := &fakeArr{id: 1, typ: "int[]", cap: 3, keys: []events.ElemKey{int64(1)}}
	r := NewRegistry(rt(0), Capacity)
	x := r.Observe(a)
	a.keys = append(a.keys, int64(2))
	y := r.Observe(a)
	if r.Find(x.InputID) != r.Find(y.InputID) {
		t.Error("same array object is the same input")
	}
}

func TestInputOfAndUnknown(t *testing.T) {
	head, nodes := list(1, 2)
	r := NewRegistry(rt(1, 0), Capacity)
	if got := r.InputOf(head); got != -1 {
		t.Errorf("unknown entity InputOf = %d, want -1", got)
	}
	o := r.Observe(head)
	if got := r.InputOf(nodes[1]); got != r.Find(o.InputID) {
		t.Errorf("InputOf(element) = %d, want %d", got, r.Find(o.InputID))
	}
}

func TestInputLabels(t *testing.T) {
	head, _ := list(1, 2)
	r := NewRegistry(rt(1, 0), Capacity)
	o := r.Observe(head)
	if got := r.Input(o.InputID).Label(); got != "Node-based recursive structure" {
		t.Errorf("label = %q", got)
	}
	arr := &fakeArr{id: 50, typ: "int[]", cap: 1}
	oa := r.Observe(arr)
	if got := r.Input(oa.InputID).Label(); got != "array input" {
		t.Errorf("array label = %q", got)
	}
}

func TestVertexEdgeTypeCounts(t *testing.T) {
	v1 := &fakeObj{id: 1, typ: "Vertex"}
	v2 := &fakeObj{id: 2, typ: "Vertex"}
	e1 := &fakeObj{id: 3, typ: "Edge"}
	v1.refs = []ref{{0, e1}}
	e1.refs = []ref{{1, v2}}
	s := Take(v1, rt(2, 0, 1))
	if s.TypeCount("Vertex") != 2 || s.TypeCount("Edge") != 1 {
		t.Errorf("TypeCounts = Vertex:%d Edge:%d", s.TypeCount("Vertex"), s.TypeCount("Edge"))
	}
	if s.Objects != 3 {
		t.Errorf("Objects = %d, want 3", s.Objects)
	}
}

func TestWriteEpoch(t *testing.T) {
	r := NewRegistry(rt(0), Capacity)
	e0 := r.WriteEpoch()
	r.NoteWrite()
	r.NoteWrite()
	if r.WriteEpoch() != e0+2 {
		t.Error("write epoch must advance per write")
	}
}

// Property: for random directed graphs over Node objects, the snapshot
// from any root sees exactly the set reachable by an independent BFS, and
// observing from every node unifies the whole weakly-connected component
// reachable forward from the first observation point.
func TestSnapshotReachabilityProperty(t *testing.T) {
	f := func(edges []uint16, n uint8) bool {
		size := int(n%12) + 2
		nodes := make([]*fakeObj, size)
		for i := range nodes {
			nodes[i] = &fakeObj{id: uint64(i + 1), typ: "Node"}
		}
		for _, e := range edges {
			from := int(e>>8) % size
			to := int(e&0xff) % size
			nodes[from].refs = append(nodes[from].refs, ref{field: 0, target: nodes[to]})
		}
		// Independent BFS from node 0.
		want := map[uint64]bool{}
		queue := []*fakeObj{nodes[0]}
		want[nodes[0].id] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, r := range cur.refs {
				o := r.target.(*fakeObj)
				if !want[o.id] {
					want[o.id] = true
					queue = append(queue, o)
				}
			}
		}
		s := Take(nodes[0], rt(1, 0))
		if s.Objects != len(want) {
			return false
		}
		for id := range want {
			if !s.Has(id) {
				return false
			}
		}
		// Registry invariant: every node reachable from node 0 maps to the
		// same canonical input after observation.
		r := NewRegistry(rt(1, 0), Capacity)
		obs := r.Observe(nodes[0])
		canon := r.Find(obs.InputID)
		for id := range want {
			if r.InputOfID(id) != canon {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
