package snapshot

import (
	"testing"

	"algoprof/internal/events"
)

// growList appends a node to the tail of the fake list and returns the
// new tail.
func appendNode(tail *fakeObj, id uint64) *fakeObj {
	n := &fakeObj{id: id, typ: "Node"}
	tail.refs = append(tail.refs, ref{field: 0, target: n})
	return n
}

func TestAllElementsFragmentsGrowingStructure(t *testing.T) {
	r := NewRegistryWith(rt(1, 0), Capacity, AllElements)
	head := &fakeObj{id: 1, typ: "Node"}
	tail := head

	o1 := r.Observe(head)
	tail = appendNode(tail, 2)
	o2 := r.Observe(head)
	tail = appendNode(tail, 3)
	o3 := r.Observe(head)

	if r.Find(o1.InputID) == r.Find(o2.InputID) || r.Find(o2.InputID) == r.Find(o3.InputID) {
		t.Error("AllElements must treat each extent as a new input")
	}
	if got := len(r.CanonicalIDs()); got != 3 {
		t.Errorf("inputs = %d, want 3 (one per extent)", got)
	}
}

func TestAllElementsStableStructureUnifies(t *testing.T) {
	r := NewRegistryWith(rt(1, 0), Capacity, AllElements)
	head, _ := list(1, 4)
	o1 := r.Observe(head)
	o2 := r.Observe(head)
	if r.Find(o1.InputID) != r.Find(o2.InputID) {
		t.Error("identical snapshots must unify under AllElements")
	}
}

func TestSameArraySeparatesReallocation(t *testing.T) {
	// The Listing 6 case that SomeElements handles: under SameArray the
	// grown backing array is a NEW input even though it shares elements.
	old := &fakeArr{id: 1, typ: "String[]", cap: 4,
		keys: []events.ElemKey{"n0", "n1", "n2", "n3"}}
	grown := &fakeArr{id: 2, typ: "String[]", cap: 8,
		keys: []events.ElemKey{"n0", "n1", "n2", "n3", "n4"}}
	r := NewRegistryWith(rt(0), Capacity, SameArray)
	a := r.Observe(old)
	b := r.Observe(grown)
	if r.Find(a.InputID) == r.Find(b.InputID) {
		t.Error("SameArray must not unify reallocated arrays")
	}
	// Re-observing the same array object still unifies.
	c := r.Observe(grown)
	if r.Find(b.InputID) != r.Find(c.InputID) {
		t.Error("same array object must stay the same input")
	}
}

func TestSameArrayStructuresStillOverlap(t *testing.T) {
	r := NewRegistryWith(rt(1, 0), Capacity, SameArray)
	head, nodes := list(1, 3)
	o1 := r.Observe(head)
	o2 := r.Observe(nodes[1])
	if r.Find(o1.InputID) != r.Find(o2.InputID) {
		t.Error("structures unify by overlap even under SameArray")
	}
}

func TestSameTypeUnifiesDisjointStructures(t *testing.T) {
	r := NewRegistryWith(rt(1, 0), Capacity, SameType)
	h1, _ := list(1, 3)
	h2, _ := list(100, 5)
	o1 := r.Observe(h1)
	o2 := r.Observe(h2)
	if r.Find(o1.InputID) != r.Find(o2.InputID) {
		t.Error("SameType must unify disjoint Node structures")
	}
	if got := r.Input(o1.InputID).MaxSize; got != 5 {
		t.Errorf("merged MaxSize = %d, want 5", got)
	}
}

func TestSameTypeSeparatesDifferentTypes(t *testing.T) {
	r := NewRegistryWith(rt(1, 0), Capacity, SameType)
	n := &fakeObj{id: 1, typ: "Node"}
	v := &fakeObj{id: 2, typ: "Vertex"}
	o1 := r.Observe(n)
	o2 := r.Observe(v)
	if r.Find(o1.InputID) == r.Find(o2.InputID) {
		t.Error("different element types are different inputs under SameType")
	}
}

func TestCriterionStrings(t *testing.T) {
	want := map[Criterion]string{
		SomeElements: "some-elements",
		AllElements:  "all-elements",
		SameArray:    "same-array",
		SameType:     "same-type",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if NewRegistry(rt(0), Capacity).Criterion() != SomeElements {
		t.Error("default criterion must be SomeElements")
	}
}
