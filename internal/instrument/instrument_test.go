package instrument

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"algoprof/internal/events"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// recorder logs loop and method events as strings like "E0", "B0", "X0",
// "M3", "m3" and counts the rest.
type recorder struct {
	events.NopListener
	log    []string
	fields int
	allocs int
	arrays int
}

func (r *recorder) LoopEntry(id int)  { r.log = append(r.log, fmt.Sprintf("E%d", id)) }
func (r *recorder) LoopBack(id int)   { r.log = append(r.log, fmt.Sprintf("B%d", id)) }
func (r *recorder) LoopExit(id int)   { r.log = append(r.log, fmt.Sprintf("X%d", id)) }
func (r *recorder) MethodEntry(m int) { r.log = append(r.log, fmt.Sprintf("M%d", m)) }
func (r *recorder) MethodExit(m int)  { r.log = append(r.log, fmt.Sprintf("m%d", m)) }

func (r *recorder) FieldGet(events.Entity, int)                { r.fields++ }
func (r *recorder) FieldPut(events.Entity, int, events.Entity) { r.fields++ }
func (r *recorder) ArrayLoad(events.Entity)                    { r.arrays++ }
func (r *recorder) ArrayStore(events.Entity, events.Entity)    { r.arrays++ }
func (r *recorder) Alloc(events.Entity, int)                   { r.allocs++ }

func runInstrumented(t *testing.T, src string, mode Mode) (*Instrumented, *recorder) {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Instrument(prog, mode)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	m := vm.New(ins.Prog, vm.Config{Listener: rec, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return ins, rec
}

func loopEvents(log []string) []string {
	var out []string
	for _, e := range log {
		if e[0] == 'E' || e[0] == 'B' || e[0] == 'X' {
			out = append(out, e)
		}
	}
	return out
}

func TestSimpleLoopEventSequence(t *testing.T) {
	ins, rec := runInstrumented(t, `
class Main {
  public static void main() {
    int i = 0;
    while (i < 3) { i++; }
  }
}`, Optimized)
	if len(ins.Loops) != 1 {
		t.Fatalf("%d loops, want 1", len(ins.Loops))
	}
	got := strings.Join(loopEvents(rec.log), " ")
	// Entry, then one back edge per completed iteration, then exit.
	want := "E0 B0 B0 B0 X0"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestZeroIterationLoop(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  public static void main() {
    int i = 10;
    while (i < 3) { i++; }
  }
}`, Optimized)
	got := strings.Join(loopEvents(rec.log), " ")
	if got != "E0 X0" {
		t.Errorf("a loop that never iterates still enters and exits: %q", got)
	}
}

func TestNestedLoopNesting(t *testing.T) {
	ins, rec := runInstrumented(t, `
class Main {
  public static void main() {
    for (int o = 0; o < 2; o++) {
      for (int i = 0; i < 2; i++) { print(i); }
    }
  }
}`, Optimized)
	if len(ins.Loops) != 2 {
		t.Fatalf("%d loops, want 2", len(ins.Loops))
	}
	// Verify stack discipline: entries and exits are balanced and well
	// nested; back edges only fire for the top-of-stack loop or an
	// enclosing active loop.
	var stack []string
	for _, e := range loopEvents(rec.log) {
		switch e[0] {
		case 'E':
			stack = append(stack, e[1:])
		case 'X':
			if len(stack) == 0 || stack[len(stack)-1] != e[1:] {
				t.Fatalf("unbalanced exit %s with stack %v (log %v)", e, stack, rec.log)
			}
			stack = stack[:len(stack)-1]
		case 'B':
			found := false
			for _, s := range stack {
				if s == e[1:] {
					found = true
				}
			}
			if !found {
				t.Fatalf("back edge %s for inactive loop (stack %v)", e, stack)
			}
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed loops at end: %v", stack)
	}

	// The inner loop enters twice (once per outer iteration).
	inner := ins.Loops[0]
	if inner.Depth != 2 {
		inner = ins.Loops[1]
	}
	entries := 0
	for _, e := range rec.log {
		if e == fmt.Sprintf("E%d", inner.ID) {
			entries++
		}
	}
	if entries != 2 {
		t.Errorf("inner loop entered %d times, want 2", entries)
	}
}

func TestBreakEmitsExit(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 100; i++) {
      if (i == 2) { break; }
    }
  }
}`, Optimized)
	got := strings.Join(loopEvents(rec.log), " ")
	want := "E0 B0 B0 X0"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestEarlyReturnEmitsExits(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  static int find() {
    for (int i = 0; i < 10; i++) {
      for (int j = 0; j < 10; j++) {
        if (i * 10 + j == 13) { return 13; }
      }
    }
    return -1;
  }
  public static void main() { int x = find(); }
}`, Optimized)
	evs := loopEvents(rec.log)
	depth := map[string]int{}
	for _, e := range evs {
		switch e[0] {
		case 'E':
			depth[e[1:]]++
		case 'X':
			depth[e[1:]]--
		}
	}
	for id, d := range depth {
		if d != 0 {
			t.Errorf("loop %s entry/exit imbalance %d (log %v)", id, d, evs)
		}
	}
}

func TestContinueCountsAsBackEdge(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 4; i++) {
      if (i % 2 == 0) { continue; }
      s = s + i;
    }
  }
}`, Optimized)
	backs := 0
	for _, e := range loopEvents(rec.log) {
		if e[0] == 'B' {
			backs++
		}
	}
	if backs != 4 {
		t.Errorf("4 iterations => 4 back edges, got %d", backs)
	}
}

func TestMethodEventsOnlyForRecursiveInOptimized(t *testing.T) {
	ins, rec := runInstrumented(t, `
class Main {
  static int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
  static int plain(int n) { return n + 1; }
  public static void main() { int x = fact(4); int y = plain(1); }
}`, Optimized)
	var factID, plainID int = -1, -1
	for _, m := range ins.Prog.Sem.Methods() {
		switch m.QualifiedName() {
		case "Main.fact":
			factID = m.ID
		case "Main.plain":
			plainID = m.ID
		}
	}
	sawFact, sawPlain := 0, 0
	for _, e := range rec.log {
		if e == fmt.Sprintf("M%d", factID) {
			sawFact++
		}
		if e == fmt.Sprintf("M%d", plainID) {
			sawPlain++
		}
	}
	if sawFact != 4 {
		t.Errorf("fact(4) should emit 4 method entries, got %d", sawFact)
	}
	if sawPlain != 0 {
		t.Errorf("non-recursive method must not emit entries under the optimized plan, got %d", sawPlain)
	}
}

func TestFullPlanEmitsAllMethods(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  static int plain(int n) { return n + 1; }
  public static void main() { int y = plain(1); }
}`, Full)
	entries := 0
	for _, e := range rec.log {
		if e[0] == 'M' {
			entries++
		}
	}
	// main + plain.
	if entries != 2 {
		t.Errorf("full plan: %d method entries, want 2", entries)
	}
}

func TestFieldProbesLimitedToRecursiveLinks(t *testing.T) {
	_, rec := runInstrumented(t, `
class Node { Node next; int v; }
class Main {
  public static void main() {
    Node a = new Node();
    Node b = new Node();
    a.next = b;   // recursive link: counted
    a.v = 5;      // payload: not counted
    int x = a.v;  // payload: not counted
    Node c = a.next; // recursive link: counted
  }
}`, Optimized)
	if rec.fields != 2 {
		t.Errorf("field events = %d, want 2 (only Node.next accesses)", rec.fields)
	}
	if rec.allocs != 2 {
		t.Errorf("alloc events = %d, want 2 (Node is recursive)", rec.allocs)
	}
}

func TestNonRecursiveAllocNotCounted(t *testing.T) {
	_, rec := runInstrumented(t, `
class Plain { int v; }
class Main {
  public static void main() {
    Plain p = new Plain();
    p.v = 1;
  }
}`, Optimized)
	if rec.allocs != 0 || rec.fields != 0 {
		t.Errorf("non-recursive class: allocs=%d fields=%d, want 0/0", rec.allocs, rec.fields)
	}
}

func TestArrayProbes(t *testing.T) {
	_, rec := runInstrumented(t, `
class Main {
  public static void main() {
    int[] a = new int[3];
    a[0] = 1;       // store
    a[1] = a[0];    // load + store
  }
}`, Optimized)
	if rec.arrays != 3 {
		t.Errorf("array events = %d, want 3", rec.arrays)
	}
}

func TestLoopMetaNames(t *testing.T) {
	ins, _ := runInstrumented(t, `
class Main {
  static void f() {
    for (int i = 0; i < 1; i++) { }
    for (int j = 0; j < 1; j++) { }
  }
  public static void main() { f(); }
}`, Optimized)
	if len(ins.Loops) != 2 {
		t.Fatalf("%d loops", len(ins.Loops))
	}
	if ins.Loops[0].Name() != "Main.f/loop1" || ins.Loops[1].Name() != "Main.f/loop2" {
		t.Errorf("names: %s, %s", ins.Loops[0].Name(), ins.Loops[1].Name())
	}
	if ins.Loops[0].ParentID != -1 || ins.Loops[1].ParentID != -1 {
		t.Error("sequential loops have no parent")
	}
}

func TestRewriteDoesNotChangeSemantics(t *testing.T) {
	src := `
class Main {
  static int work(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      if (i % 3 == 0) { continue; }
      if (s > 50) { break; }
      int j = 0;
      while (j < i) { s = s + 1; j++; }
    }
    return s;
  }
  public static void main() {
    print(work(0));
    print(work(5));
    print(work(30));
  }
}`
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	plain := vm.New(prog, vm.Config{Seed: 7})
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	ins, err := Instrument(prog, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	inst := vm.New(ins.Prog, vm.Config{Listener: rec, Plan: ins.Plan, Seed: 7})
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(plain.Stdout, ",") != strings.Join(inst.Stdout, ",") {
		t.Errorf("instrumentation changed program output:\nplain: %v\ninst:  %v",
			plain.Stdout, inst.Stdout)
	}
}

// Property: for random structured loop/if nests, (1) instrumentation
// preserves output, (2) loop entries/exits balance per loop id, and
// (3) the event stream is well nested.
func TestInstrumentationInvariantsProperty(t *testing.T) {
	f := func(shape []bool, seed uint8) bool {
		if len(shape) > 5 {
			shape = shape[:5]
		}
		body := "s = s + 1;"
		for i := len(shape) - 1; i >= 0; i-- {
			v := fmt.Sprintf("v%d", i)
			if shape[i] {
				body = fmt.Sprintf("for (int %s = 0; %s < 2; %s++) { %s }", v, v, v, body)
			} else {
				body = fmt.Sprintf("if (s < 100 + %d) { %s }", i, body)
			}
		}
		src := `
class Main {
  public static void main() {
    int s = 0;
    ` + body + `
    print(s);
  }
}`
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return false
		}
		plain := vm.New(prog, vm.Config{Seed: uint64(seed)})
		if err := plain.Run(); err != nil {
			return false
		}
		ins, err := Instrument(prog, Optimized)
		if err != nil {
			return false
		}
		rec := &recorder{}
		inst := vm.New(ins.Prog, vm.Config{Listener: rec, Plan: ins.Plan, Seed: uint64(seed)})
		if err := inst.Run(); err != nil {
			return false
		}
		if strings.Join(plain.Stdout, ",") != strings.Join(inst.Stdout, ",") {
			return false
		}
		var stack []string
		for _, e := range loopEvents(rec.log) {
			switch e[0] {
			case 'E':
				stack = append(stack, e[1:])
			case 'X':
				if len(stack) == 0 || stack[len(stack)-1] != e[1:] {
					return false
				}
				stack = stack[:len(stack)-1]
			}
		}
		return len(stack) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
