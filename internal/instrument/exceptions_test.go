package instrument

import (
	"strings"
	"testing"

	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// checkBalanced runs src instrumented and verifies loop entry/exit events
// balance and nest correctly despite exceptional control flow.
func checkBalanced(t *testing.T, src string) *recorder {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Instrument(prog, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	m := vm.New(ins.Prog, vm.Config{Listener: rec, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	var stack []string
	for _, e := range loopEvents(rec.log) {
		switch e[0] {
		case 'E':
			stack = append(stack, e[1:])
		case 'X':
			if len(stack) == 0 || stack[len(stack)-1] != e[1:] {
				t.Fatalf("unbalanced exit %s with stack %v (log %v)", e, stack, rec.log)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed loops %v (log %v)", stack, rec.log)
	}
	return rec
}

const excClasses = `
class Error { int code; Error(int code) { this.code = code; } }
`

func TestThrowOutOfNestedLoopsEmitsExits(t *testing.T) {
	rec := checkBalanced(t, excClasses+`
class Main {
  public static void main() {
    try {
      for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 10; j++) {
          if (i * 10 + j == 23) { throw new Error(1); }
        }
      }
    } catch (Error e) {
      print("ok");
    }
  }
}`)
	// Both loops must have been exited exactly as often as entered.
	entries, exits := 0, 0
	for _, e := range loopEvents(rec.log) {
		switch e[0] {
		case 'E':
			entries++
		case 'X':
			exits++
		}
	}
	if entries != exits {
		t.Errorf("entries %d != exits %d", entries, exits)
	}
}

func TestThrowCaughtInsideSameLoopKeepsLoopActive(t *testing.T) {
	// The handler sits inside the loop: the loop must NOT be exited by
	// the unwind, and iterations continue.
	rec := checkBalanced(t, excClasses+`
class Main {
  public static void main() {
    int caught = 0;
    for (int i = 0; i < 6; i++) {
      try {
        if (i % 2 == 0) { throw new Error(i); }
      } catch (Error e) {
        caught++;
      }
    }
    check(caught == 3);
  }
}`)
	backs := 0
	for _, e := range loopEvents(rec.log) {
		if e[0] == 'B' {
			backs++
		}
	}
	if backs != 6 {
		t.Errorf("back edges = %d, want 6 (loop survives caught exceptions)", backs)
	}
}

func TestThrowAcrossMethodEmitsMethodExit(t *testing.T) {
	rec := checkBalanced(t, excClasses+`
class Main {
  static int boom(int n) {
    if (n == 0) { throw new Error(5); }
    return boom(n - 1);
  }
  public static void main() {
    try {
      int x = boom(3);
    } catch (Error e) {
      print("caught");
    }
  }
}`)
	// Every MethodEntry must be matched by a MethodExit even though all
	// frames unwound exceptionally.
	depth := 0
	for _, e := range rec.log {
		if len(e) == 0 {
			continue
		}
		switch e[0] {
		case 'M':
			depth++
		case 'm':
			depth--
		}
	}
	if depth != 0 {
		t.Errorf("method entry/exit imbalance %d (log %v)", depth, rec.log)
	}
}

func TestThrowOutOfLoopInRecursiveMethod(t *testing.T) {
	checkBalanced(t, excClasses+`
class Main {
  static void rec(int n) {
    if (n == 0) { return; }
    for (int i = 0; i < n; i++) {
      if (i == n - 1 && n == 2) { throw new Error(n); }
    }
    rec(n - 1);
  }
  public static void main() {
    try {
      rec(5);
    } catch (Error e) {
      print("done");
    }
  }
}`)
}

func TestHandlerLoopsDetected(t *testing.T) {
	// Loops inside catch handlers are reachable only via the exception
	// edge; they still become repetition nodes.
	prog, err := compiler.CompileSource(excClasses + `
class Main {
  public static void main() {
    try {
      throw new Error(8);
    } catch (Error e) {
      int s = 0;
      for (int i = 0; i < e.code; i++) { s = s + 1; }
      check(s == 8);
    }
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Instrument(prog, Optimized)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range ins.Loops {
		if strings.Contains(l.Name(), "Main.main") {
			found = true
		}
	}
	if !found {
		t.Fatal("catch-handler loop not detected")
	}
	rec := &recorder{}
	m := vm.New(ins.Prog, vm.Config{Listener: rec, Plan: ins.Plan, Seed: 1})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	backs := 0
	for _, e := range loopEvents(rec.log) {
		if e[0] == 'B' {
			backs++
		}
	}
	if backs != 8 {
		t.Errorf("handler loop back edges = %d, want 8", backs)
	}
}
