// Package instrument rewrites MJ bytecode with profiling probes and
// computes instrumentation plans, reproducing §3.1 of the AlgoProf paper:
//
//   - Loop entry / loop exit / loop back-edge probes are injected into the
//     bytecode itself, on the CFG edges that enter, leave, or re-enter each
//     natural loop (the analog of AlgoProf's dynamic binary rewriting).
//   - Method entry/exit, reference field access, array access, allocation
//     and I/O events are gated by a Plan: the optimized plan limits them to
//     recursion-relevant methods and recursive-type fields/classes found by
//     static analysis; the full plan enables everything (used by the CCT
//     baseline and by overhead ablations).
package instrument

import (
	"fmt"
	"sort"

	"algoprof/internal/callgraph"
	"algoprof/internal/cfg"
	"algoprof/internal/events"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/types"
	"algoprof/internal/pathdecode"
	"algoprof/internal/rectype"
)

// Mode selects how much to instrument.
type Mode int

// Instrumentation modes.
const (
	// Optimized limits method probes to recursive methods, field probes to
	// recursive-type links, and allocation probes to recursive-type
	// classes — the paper's static-analysis-guided plan.
	Optimized Mode = iota
	// Full enables every probe (CCT baseline, ablations).
	Full
	// Paths uses the Optimized plan but replaces per-iteration loop-back
	// and access probes of eligible ("counted") loops with Ball–Larus path
	// counters: one register update per branch and one counter bump per
	// finished iteration, decoded offline into the same totals. Loops the
	// numbering cannot handle keep their classic probes.
	Paths
)

// MaxLoopPaths caps a counted loop's number of acyclic paths. Loops with
// more fall back to classic probes: a branchier body would need a counter
// arena that outgrows the events it saves.
const MaxLoopPaths = 256

// LoopMeta describes one instrumented loop.
type LoopMeta struct {
	// ID is the loop's program-wide id (also the probe operand).
	ID int
	// Method is the containing method.
	Method *types.Method
	// Ordinal is the loop's index within its method (by header order).
	Ordinal int
	// Depth is the static nesting depth within the method (outermost 1).
	Depth int
	// ParentID is the id of the enclosing loop, or -1.
	ParentID int
	// Line is the source line of the loop header (0 if unknown).
	Line int
}

// Name renders a stable human-readable loop name like "List.sort/loop1".
func (l *LoopMeta) Name() string {
	return fmt.Sprintf("%s/loop%d", l.Method.QualifiedName(), l.Ordinal)
}

// Instrumented is a rewritten program plus everything the profiler needs
// to interpret its events.
type Instrumented struct {
	// Prog is the rewritten program. The input program is not modified.
	Prog *bytecode.Program
	// Loops holds metadata for every loop, indexed by loop id.
	Loops []*LoopMeta
	// Plan gates the non-loop events.
	Plan *events.Plan
	// CallGraph and RecTypes expose the static analyses.
	CallGraph *callgraph.Graph
	// RecTypes is the recursive-data-type analysis.
	RecTypes *rectype.Result

	// PathTables maps each counted loop's id to its decode table (Paths
	// mode only; loops absent from the map kept classic probes).
	PathTables map[int]*pathdecode.LoopTable
	// Sites lists every path-counted access site, indexed by site id. The
	// rewriter stores id+1 in the access instruction's B operand.
	Sites []pathdecode.Site
}

// NumSites is the number of path-counted access sites (0 outside Paths
// mode); the VM sizes its per-site epoch table with it.
func (ins *Instrumented) NumSites() int { return len(ins.Sites) }

// LoopByID returns metadata for a loop id.
func (ins *Instrumented) LoopByID(id int) *LoopMeta { return ins.Loops[id] }

// Instrument analyzes p, injects loop probes into a copy of its bytecode,
// and computes the event plan for the chosen mode.
func Instrument(p *bytecode.Program, mode Mode) (*Instrumented, error) {
	cg := callgraph.Build(p)
	rt := rectype.Analyze(p.Sem)

	out := &Instrumented{
		Prog: &bytecode.Program{
			Sem:      p.Sem,
			Funcs:    make([]*bytecode.Function, len(p.Funcs)),
			TypePool: p.TypePool,
			MainID:   p.MainID,
		},
		CallGraph: cg,
		RecTypes:  rt,
	}

	if mode == Paths {
		out.PathTables = map[int]*pathdecode.LoopTable{}
	}
	nextLoopID := 0
	for i, fn := range p.Funcs {
		rew, metas, err := rewriteFunction(fn, nextLoopID, mode == Paths, out)
		if err != nil {
			return nil, err
		}
		out.Prog.Funcs[i] = rew
		out.Loops = append(out.Loops, metas...)
		nextLoopID += len(metas)
	}

	nm, nf, nc := p.Sem.NumMethods(), p.Sem.NumFields(), len(p.Sem.Classes)
	switch mode {
	case Full:
		out.Plan = events.NewFullPlan(nm, nf, nc)
	default:
		plan := events.NewEmptyPlan(nm, nf, nc)
		plan.Arrays = true
		plan.IO = true
		for m := 0; m < nm; m++ {
			plan.MethodEntryExit[m] = cg.Recursive[m]
		}
		for f := 0; f < nf; f++ {
			plan.FieldAccess[f] = rt.IsRecursiveField(f)
		}
		for c := 0; c < nc; c++ {
			plan.AllocClass[c] = rt.IsRecursiveClass(c)
		}
		out.Plan = plan
	}
	return out, nil
}

// MustInstrument panics on error; for known-good workloads.
func MustInstrument(p *bytecode.Program, mode Mode) *Instrumented {
	ins, err := Instrument(p, mode)
	if err != nil {
		panic(err)
	}
	return ins
}

// siteKind classifies an access opcode for the decode tables.
func siteKind(op bytecode.Op) pathdecode.SiteKind {
	switch op {
	case bytecode.OpGetField:
		return pathdecode.SiteFieldGet
	case bytecode.OpPutField:
		return pathdecode.SiteFieldPut
	case bytecode.OpALoad:
		return pathdecode.SiteArrayLoad
	default:
		return pathdecode.SiteArrayStore
	}
}

// edgeCode is the probe sequence required on one CFG edge: instructions
// inserted before the transfer, plus (paths mode) whether the transfer
// itself becomes an OpPathBump finishing a counted iteration.
type edgeCode struct {
	pre     []bytecode.Instr
	bump    bool
	bumpInc int
}

func (ec edgeCode) empty() bool { return len(ec.pre) == 0 && !ec.bump }

// fusable reports an edge whose whole effect is a single path-register
// increment, which a conditional branch can absorb (OpJmpTruePath /
// OpJmpFalsePath) instead of paying a trampoline.
func (ec edgeCode) fusable() (int, bool) {
	if !ec.bump && len(ec.pre) == 1 && ec.pre[0].Op == bytecode.OpPathInc {
		return ec.pre[0].A, true
	}
	return 0, false
}

// rewriteFunction injects loop probes into fn, assigning loop ids starting
// at firstLoopID. In paths mode it additionally numbers each eligible
// loop's iteration paths, assigns program-wide access-site ids (stored in
// ins), and emits path-counter probes in place of classic ones. It returns
// a new function; fn is unchanged.
func rewriteFunction(fn *bytecode.Function, firstLoopID int, paths bool, ins *Instrumented) (*bytecode.Function, []*LoopMeta, error) {
	g := cfg.Build(fn)
	loops := cfg.NaturalLoops(g, firstLoopID)

	metas := make([]*LoopMeta, len(loops))
	for i, l := range loops {
		parent := -1
		if l.Parent != nil {
			parent = l.Parent.ID
		}
		metas[i] = &LoopMeta{
			ID:       l.ID,
			Method:   fn.Method,
			Ordinal:  i + 1,
			Depth:    l.Depth,
			ParentID: parent,
			Line:     fn.Code[g.Blocks[l.Header].Start].Line,
		}
	}
	if len(loops) == 0 {
		// Nothing to rewrite: share the code (it is immutable by convention).
		out := &bytecode.Function{Method: fn.Method, Code: fn.Code, NumLocals: fn.NumLocals}
		out.Handlers = append(out.Handlers, fn.Handlers...)
		return out, nil, nil
	}

	// loopsIn[b] = ids of loops containing block b, outermost first.
	loopsIn := make([][]int, len(g.Blocks))
	for _, l := range loops {
		for _, b := range l.Body {
			loopsIn[b] = append(loopsIn[b], l.ID)
		}
	}

	// No-return regions (blocks all of whose paths end in a throw) cannot
	// reach a back edge, so natural-loop bodies exclude them — but
	// entering one is not a loop exit: the unwind decides dynamically
	// which loops are abandoned. Extend membership so edges into these
	// regions carry no exit probes: a no-return block inherits the
	// intersection of its predecessors' loop sets (fixpoint for chains).
	noReturn := make([]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if noReturn[b.Index] {
				continue
			}
			last := fn.Code[b.End-1].Op
			nr := last == bytecode.OpThrow || last == bytecode.OpMissingReturn
			if !nr && len(b.Succs) > 0 && last != bytecode.OpRet && last != bytecode.OpRetVal {
				nr = true
				for _, s := range b.Succs {
					if !noReturn[s] {
						nr = false
						break
					}
				}
			}
			if nr {
				noReturn[b.Index] = true
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !noReturn[b.Index] || len(b.Preds) == 0 {
				continue
			}
			inter := map[int]int{}
			for _, p := range b.Preds {
				for _, id := range loopsIn[p] {
					inter[id]++
				}
			}
			for id, cnt := range inter {
				if cnt != len(b.Preds) {
					continue
				}
				present := false
				for _, x := range loopsIn[b.Index] {
					if x == id {
						present = true
					}
				}
				if !present {
					loopsIn[b.Index] = append(loopsIn[b.Index], id)
					changed = true
				}
			}
		}
	}

	byID := map[int]*cfg.Loop{}
	for _, l := range loops {
		byID[l.ID] = l
	}
	for b := range loopsIn {
		sort.Slice(loopsIn[b], func(i, j int) bool {
			return byID[loopsIn[b][i]].Depth < byID[loopsIn[b][j]].Depth
		})
	}

	contains := func(set []int, id int) bool {
		for _, x := range set {
			if x == id {
				return true
			}
		}
		return false
	}

	// Paths mode: number each eligible loop and assign its access sites.
	// A loop is counted when the numbering succeeds AND the no-return
	// extension added nothing to its membership — an extended block means
	// an unwind could abandon an iteration mid-path.
	pns := map[int]*cfg.PathNumbering{} // counted loops, by id
	siteOf := map[int]int{}             // access pc -> global site id
	if paths {
		members := map[int]int{}
		for _, ids := range loopsIn {
			for _, id := range ids {
				members[id]++
			}
		}
		// A loop that spawns or joins threads keeps classic probes: path
		// counters defer the iteration's events until the bump, but a
		// spawned thread starts emitting its own stream immediately, so
		// ordering against the child requires per-iteration streaming.
		spawns := func(l *cfg.Loop) bool {
			for _, b := range l.Body {
				blk := g.Blocks[b]
				for pc := blk.Start; pc < blk.End; pc++ {
					switch fn.Code[pc].Op {
					case bytecode.OpSpawn, bytecode.OpJoin:
						return true
					}
				}
			}
			return false
		}
		for _, l := range loops {
			if members[l.ID] != len(l.Body) {
				continue
			}
			if spawns(l) {
				continue
			}
			if pn := cfg.NumberLoopPaths(g, l, MaxLoopPaths); pn != nil {
				pns[l.ID] = pn
			}
		}
		// Each counted loop's table lists its own attributed accesses (a
		// block's accesses belong to its innermost loop; inner-loop blocks
		// are opaque supernodes in the outer numbering). Site ids are
		// program-wide; the instruction's B operand carries id+1 so zero
		// keeps meaning "unsited".
		for _, l := range loops {
			pn := pns[l.ID]
			if pn == nil {
				continue
			}
			tbl := &pathdecode.LoopTable{LoopID: l.ID, NumPaths: pn.NumPaths}
			local := map[int]int32{}
			for _, pc := range pn.AllAccessPCs() {
				in := fn.Code[pc]
				site := pathdecode.Site{ID: len(ins.Sites), Kind: siteKind(in.Op), Field: -1}
				if in.Op == bytecode.OpGetField || in.Op == bytecode.OpPutField {
					site.Field = in.A
				}
				siteOf[pc] = site.ID
				local[pc] = int32(len(tbl.Sites))
				ins.Sites = append(ins.Sites, site)
				tbl.Sites = append(tbl.Sites, site)
			}
			for _, p := range pn.Paths {
				sp := pathdecode.Path{Back: p.Back}
				for _, pc := range p.AccessPCs {
					sp.Sites = append(sp.Sites, local[pc])
				}
				tbl.Paths = append(tbl.Paths, sp)
			}
			if err := tbl.Validate(); err != nil {
				return nil, nil, fmt.Errorf("instrument: %s loop %d: %w", fn.Name(), l.ID, err)
			}
			ins.PathTables[l.ID] = tbl
		}
	}

	// codeFor computes the probes on edge from block u to block v. Order
	// matters for counted loops: exits restore the enclosing loop's path
	// register before that register is incremented or read, and increments
	// land before a nested loop saves the register on entry.
	codeFor := func(u, v int) edgeCode {
		var ec edgeCode
		lu, lv := loopsIn[u], loopsIn[v]
		// exits: in u, not in v; innermost first.
		for i := len(lu) - 1; i >= 0; i-- {
			id := lu[i]
			if contains(lv, id) {
				continue
			}
			if pn := pns[id]; pn != nil {
				ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpPathExit, A: id, B: pn.Exit[[2]int{u, v}]})
			} else {
				ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpLoopExit, A: id})
			}
		}
		// path-register increment: at most one counted loop numbers this
		// edge as internal to its iteration DAG.
		for _, id := range lv {
			pn := pns[id]
			if pn == nil || !contains(lu, id) {
				continue
			}
			if inc, ok := pn.Inc[[2]int{u, v}]; ok {
				ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpPathInc, A: inc})
				break
			}
		}
		// backs: v is the header and u is in the body.
		for _, id := range lv {
			if byID[id].Header == v && contains(lu, id) {
				if pn := pns[id]; pn != nil {
					ec.bump, ec.bumpInc = true, pn.Back[[2]int{u, v}]
				} else {
					ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpLoopBack, A: id})
				}
			}
		}
		// enters: in v, not in u; outermost first.
		for _, id := range lv {
			if !contains(lu, id) {
				if pn := pns[id]; pn != nil {
					ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpPathEnter, A: id, B: pn.NumPaths})
				} else {
					ec.pre = append(ec.pre, bytecode.Instr{Op: bytecode.OpLoopEnter, A: id})
				}
			}
		}
		return ec
	}

	// Assemble the new instruction stream. newIndex maps old pc -> new pc.
	var newCode []bytecode.Instr
	newIndex := make([]int, len(fn.Code)+1)

	// Virtual entry edge: entering the function may enter loops if the
	// entry block is inside one (function whose body starts at a header).
	for _, id := range loopsIn[g.Entry()] {
		if pn := pns[id]; pn != nil {
			newCode = append(newCode, bytecode.Instr{Op: bytecode.OpPathEnter, A: id, B: pn.NumPaths})
		} else {
			newCode = append(newCode, bytecode.Instr{Op: bytecode.OpLoopEnter, A: id})
		}
	}

	type splitEdge struct {
		jumpAt int // new-code index of the jump instruction to retarget
		target int // old pc the edge goes to
		code   edgeCode
	}
	var splits []splitEdge

	// emitEdge appends an edge's probes; a bump edge ends in OpPathBump
	// carrying the edge's old target (remapped with the other jumps).
	emitEdge := func(ec edgeCode, oldTarget int) (terminated bool) {
		newCode = append(newCode, ec.pre...)
		if ec.bump {
			newCode = append(newCode, bytecode.Instr{Op: bytecode.OpPathBump, A: oldTarget, B: ec.bumpInc})
		}
		return ec.bump
	}

	for pc, in := range fn.Code {
		b := g.BlockOf(pc)
		newIndex[pc] = len(newCode)

		// Explicit loop exits before returns inside loops (the VM also
		// unwinds as a safety net; explicit probes keep the event stream
		// well nested). Counted loops never appear here: a return block
		// cannot reach a back edge, so it is outside every counted body.
		if in.Op == bytecode.OpRet || in.Op == bytecode.OpRetVal || in.Op == bytecode.OpMissingReturn {
			lu := loopsIn[b]
			for i := len(lu) - 1; i >= 0; i-- {
				newCode = append(newCode, bytecode.Instr{Op: bytecode.OpLoopExit, A: lu[i]})
			}
		}

		if site, ok := siteOf[pc]; ok {
			in.B = site + 1
		}

		isLast := pc == g.Blocks[b].End-1
		if !isLast {
			newCode = append(newCode, in)
			continue
		}

		// Last instruction of its block: handle outgoing edges.
		switch in.Op {
		case bytecode.OpJmp:
			// Inline the probes before the jump: an unconditional jump is
			// the edge, so inline placement is exact. A bump edge absorbs
			// the jump entirely.
			ec := codeFor(b, g.BlockOf(in.A))
			if !emitEdge(ec, in.A) {
				newCode = append(newCode, in)
			}
		case bytecode.OpJmpIfFalse, bytecode.OpJmpIfTrue:
			// Two edges: taken (to in.A) and fallthrough (to pc+1).
			takenEC := codeFor(b, g.BlockOf(in.A))
			if inc, ok := takenEC.fusable(); ok {
				// Fuse the increment into the branch: no trampoline, no
				// extra dispatch on the taken edge.
				fused := bytecode.OpJmpTruePath
				if in.Op == bytecode.OpJmpIfFalse {
					fused = bytecode.OpJmpFalsePath
				}
				newCode = append(newCode, bytecode.Instr{Op: fused, A: in.A, B: inc, Line: in.Line})
			} else {
				jumpPos := len(newCode)
				newCode = append(newCode, in)
				if !takenEC.empty() {
					splits = append(splits, splitEdge{jumpAt: jumpPos, target: in.A, code: takenEC})
				}
			}
			if pc+1 < len(fn.Code) {
				emitEdge(codeFor(b, g.BlockOf(pc+1)), pc+1)
			}
		default:
			newCode = append(newCode, in)
			// Plain fallthrough edge.
			if !in.Op.IsTerminator() && pc+1 < len(fn.Code) {
				emitEdge(codeFor(b, g.BlockOf(pc+1)), pc+1)
			}
		}
	}
	newIndex[len(fn.Code)] = len(newCode)

	// Remap jump targets.
	for i := range newCode {
		if newCode[i].Op.IsJump() {
			newCode[i].A = newIndex[newCode[i].A]
		}
	}

	// Materialize trampolines for conditional taken-edges that need probes
	// (added after the remap, so they carry final targets).
	for _, se := range splits {
		tramp := len(newCode)
		newCode = append(newCode, se.code.pre...)
		if se.code.bump {
			newCode = append(newCode, bytecode.Instr{Op: bytecode.OpPathBump, A: newIndex[se.target], B: se.code.bumpInc})
		} else {
			newCode = append(newCode, bytecode.Instr{Op: bytecode.OpJmp, A: newIndex[se.target]})
		}
		newCode[se.jumpAt].A = tramp
	}

	out := &bytecode.Function{Method: fn.Method, Code: newCode, NumLocals: fn.NumLocals}

	// Remap the exception handler table and record, per handler, which
	// loops statically enclose its target: the VM emits LoopExit events
	// for every active loop outside that scope when it unwinds to the
	// handler (the paper's exceptional-control-flow handling).
	for _, h := range fn.Handlers {
		nh := h
		nh.From = newIndex[h.From]
		nh.To = newIndex[h.To]
		nh.Target = newIndex[h.Target]
		nh.LoopScope = append([]int(nil), loopsIn[g.BlockOf(h.Target)]...)
		out.Handlers = append(out.Handlers, nh)
	}

	if err := bytecode.Validate(out); err != nil {
		return nil, nil, fmt.Errorf("instrument: %w", err)
	}
	return out, metas, nil
}
