// Package instrument rewrites MJ bytecode with profiling probes and
// computes instrumentation plans, reproducing §3.1 of the AlgoProf paper:
//
//   - Loop entry / loop exit / loop back-edge probes are injected into the
//     bytecode itself, on the CFG edges that enter, leave, or re-enter each
//     natural loop (the analog of AlgoProf's dynamic binary rewriting).
//   - Method entry/exit, reference field access, array access, allocation
//     and I/O events are gated by a Plan: the optimized plan limits them to
//     recursion-relevant methods and recursive-type fields/classes found by
//     static analysis; the full plan enables everything (used by the CCT
//     baseline and by overhead ablations).
package instrument

import (
	"fmt"
	"sort"

	"algoprof/internal/callgraph"
	"algoprof/internal/cfg"
	"algoprof/internal/events"
	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/types"
	"algoprof/internal/rectype"
)

// Mode selects how much to instrument.
type Mode int

// Instrumentation modes.
const (
	// Optimized limits method probes to recursive methods, field probes to
	// recursive-type links, and allocation probes to recursive-type
	// classes — the paper's static-analysis-guided plan.
	Optimized Mode = iota
	// Full enables every probe (CCT baseline, ablations).
	Full
)

// LoopMeta describes one instrumented loop.
type LoopMeta struct {
	// ID is the loop's program-wide id (also the probe operand).
	ID int
	// Method is the containing method.
	Method *types.Method
	// Ordinal is the loop's index within its method (by header order).
	Ordinal int
	// Depth is the static nesting depth within the method (outermost 1).
	Depth int
	// ParentID is the id of the enclosing loop, or -1.
	ParentID int
	// Line is the source line of the loop header (0 if unknown).
	Line int
}

// Name renders a stable human-readable loop name like "List.sort/loop1".
func (l *LoopMeta) Name() string {
	return fmt.Sprintf("%s/loop%d", l.Method.QualifiedName(), l.Ordinal)
}

// Instrumented is a rewritten program plus everything the profiler needs
// to interpret its events.
type Instrumented struct {
	// Prog is the rewritten program. The input program is not modified.
	Prog *bytecode.Program
	// Loops holds metadata for every loop, indexed by loop id.
	Loops []*LoopMeta
	// Plan gates the non-loop events.
	Plan *events.Plan
	// CallGraph and RecTypes expose the static analyses.
	CallGraph *callgraph.Graph
	// RecTypes is the recursive-data-type analysis.
	RecTypes *rectype.Result
}

// LoopByID returns metadata for a loop id.
func (ins *Instrumented) LoopByID(id int) *LoopMeta { return ins.Loops[id] }

// Instrument analyzes p, injects loop probes into a copy of its bytecode,
// and computes the event plan for the chosen mode.
func Instrument(p *bytecode.Program, mode Mode) (*Instrumented, error) {
	cg := callgraph.Build(p)
	rt := rectype.Analyze(p.Sem)

	out := &Instrumented{
		Prog: &bytecode.Program{
			Sem:      p.Sem,
			Funcs:    make([]*bytecode.Function, len(p.Funcs)),
			TypePool: p.TypePool,
			MainID:   p.MainID,
		},
		CallGraph: cg,
		RecTypes:  rt,
	}

	nextLoopID := 0
	for i, fn := range p.Funcs {
		rew, metas, err := rewriteFunction(fn, nextLoopID)
		if err != nil {
			return nil, err
		}
		out.Prog.Funcs[i] = rew
		out.Loops = append(out.Loops, metas...)
		nextLoopID += len(metas)
	}

	nm, nf, nc := p.Sem.NumMethods(), p.Sem.NumFields(), len(p.Sem.Classes)
	switch mode {
	case Full:
		out.Plan = events.NewFullPlan(nm, nf, nc)
	default:
		plan := events.NewEmptyPlan(nm, nf, nc)
		plan.Arrays = true
		plan.IO = true
		for m := 0; m < nm; m++ {
			plan.MethodEntryExit[m] = cg.Recursive[m]
		}
		for f := 0; f < nf; f++ {
			plan.FieldAccess[f] = rt.IsRecursiveField(f)
		}
		for c := 0; c < nc; c++ {
			plan.AllocClass[c] = rt.IsRecursiveClass(c)
		}
		out.Plan = plan
	}
	return out, nil
}

// MustInstrument panics on error; for known-good workloads.
func MustInstrument(p *bytecode.Program, mode Mode) *Instrumented {
	ins, err := Instrument(p, mode)
	if err != nil {
		panic(err)
	}
	return ins
}

// edgeProbes are the probe instructions required on one CFG edge.
type edgeProbes struct {
	exits  []int // loop ids to exit, innermost first
	backs  []int // loop ids whose back edge this is
	enters []int // loop ids to enter, outermost first
}

func (ep edgeProbes) empty() bool {
	return len(ep.exits) == 0 && len(ep.backs) == 0 && len(ep.enters) == 0
}

func (ep edgeProbes) instrs() []bytecode.Instr {
	var out []bytecode.Instr
	for _, id := range ep.exits {
		out = append(out, bytecode.Instr{Op: bytecode.OpLoopExit, A: id})
	}
	for _, id := range ep.backs {
		out = append(out, bytecode.Instr{Op: bytecode.OpLoopBack, A: id})
	}
	for _, id := range ep.enters {
		out = append(out, bytecode.Instr{Op: bytecode.OpLoopEnter, A: id})
	}
	return out
}

// rewriteFunction injects loop probes into fn, assigning loop ids starting
// at firstLoopID. It returns a new function; fn is unchanged.
func rewriteFunction(fn *bytecode.Function, firstLoopID int) (*bytecode.Function, []*LoopMeta, error) {
	g := cfg.Build(fn)
	loops := cfg.NaturalLoops(g, firstLoopID)

	metas := make([]*LoopMeta, len(loops))
	for i, l := range loops {
		parent := -1
		if l.Parent != nil {
			parent = l.Parent.ID
		}
		metas[i] = &LoopMeta{
			ID:       l.ID,
			Method:   fn.Method,
			Ordinal:  i + 1,
			Depth:    l.Depth,
			ParentID: parent,
			Line:     fn.Code[g.Blocks[l.Header].Start].Line,
		}
	}
	if len(loops) == 0 {
		// Nothing to rewrite: share the code (it is immutable by convention).
		out := &bytecode.Function{Method: fn.Method, Code: fn.Code, NumLocals: fn.NumLocals}
		out.Handlers = append(out.Handlers, fn.Handlers...)
		return out, nil, nil
	}

	// loopsIn[b] = ids of loops containing block b, outermost first.
	loopsIn := make([][]int, len(g.Blocks))
	for _, l := range loops {
		for _, b := range l.Body {
			loopsIn[b] = append(loopsIn[b], l.ID)
		}
	}

	// No-return regions (blocks all of whose paths end in a throw) cannot
	// reach a back edge, so natural-loop bodies exclude them — but
	// entering one is not a loop exit: the unwind decides dynamically
	// which loops are abandoned. Extend membership so edges into these
	// regions carry no exit probes: a no-return block inherits the
	// intersection of its predecessors' loop sets (fixpoint for chains).
	noReturn := make([]bool, len(g.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if noReturn[b.Index] {
				continue
			}
			last := fn.Code[b.End-1].Op
			nr := last == bytecode.OpThrow || last == bytecode.OpMissingReturn
			if !nr && len(b.Succs) > 0 && last != bytecode.OpRet && last != bytecode.OpRetVal {
				nr = true
				for _, s := range b.Succs {
					if !noReturn[s] {
						nr = false
						break
					}
				}
			}
			if nr {
				noReturn[b.Index] = true
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !noReturn[b.Index] || len(b.Preds) == 0 {
				continue
			}
			inter := map[int]int{}
			for _, p := range b.Preds {
				for _, id := range loopsIn[p] {
					inter[id]++
				}
			}
			for id, cnt := range inter {
				if cnt != len(b.Preds) {
					continue
				}
				present := false
				for _, x := range loopsIn[b.Index] {
					if x == id {
						present = true
					}
				}
				if !present {
					loopsIn[b.Index] = append(loopsIn[b.Index], id)
					changed = true
				}
			}
		}
	}

	byID := map[int]*cfg.Loop{}
	for _, l := range loops {
		byID[l.ID] = l
	}
	for b := range loopsIn {
		sort.Slice(loopsIn[b], func(i, j int) bool {
			return byID[loopsIn[b][i]].Depth < byID[loopsIn[b][j]].Depth
		})
	}

	contains := func(set []int, id int) bool {
		for _, x := range set {
			if x == id {
				return true
			}
		}
		return false
	}

	// probesFor computes the probes on edge from block u to block v.
	probesFor := func(u, v int) edgeProbes {
		var ep edgeProbes
		lu, lv := loopsIn[u], loopsIn[v]
		// exits: in u, not in v; innermost first.
		for i := len(lu) - 1; i >= 0; i-- {
			if !contains(lv, lu[i]) {
				ep.exits = append(ep.exits, lu[i])
			}
		}
		// backs: v is the header and u is in the body.
		for _, id := range lv {
			if byID[id].Header == v && contains(lu, id) {
				ep.backs = append(ep.backs, id)
			}
		}
		// enters: in v, not in u; outermost first.
		for _, id := range lv {
			if !contains(lu, id) {
				ep.enters = append(ep.enters, id)
			}
		}
		return ep
	}

	// Assemble the new instruction stream. newIndex maps old pc -> new pc.
	var newCode []bytecode.Instr
	newIndex := make([]int, len(fn.Code)+1)

	// Virtual entry edge: entering the function may enter loops if the
	// entry block is inside one (function whose body starts at a header).
	for _, id := range loopsIn[g.Entry()] {
		newCode = append(newCode, bytecode.Instr{Op: bytecode.OpLoopEnter, A: id})
	}

	type splitEdge struct {
		jumpAt int // new-code index of the jump instruction to retarget
		target int // old pc the edge goes to
		probes edgeProbes
	}
	var splits []splitEdge

	for pc, in := range fn.Code {
		b := g.BlockOf(pc)
		newIndex[pc] = len(newCode)

		// Explicit loop exits before returns inside loops (the VM also
		// unwinds as a safety net; explicit probes keep the event stream
		// well nested).
		if in.Op == bytecode.OpRet || in.Op == bytecode.OpRetVal || in.Op == bytecode.OpMissingReturn {
			lu := loopsIn[b]
			for i := len(lu) - 1; i >= 0; i-- {
				newCode = append(newCode, bytecode.Instr{Op: bytecode.OpLoopExit, A: lu[i]})
			}
		}

		isLast := pc == g.Blocks[b].End-1
		if !isLast {
			newCode = append(newCode, in)
			continue
		}

		// Last instruction of its block: handle outgoing edges.
		switch in.Op {
		case bytecode.OpJmp:
			ep := probesFor(b, g.BlockOf(in.A))
			if ep.empty() {
				newCode = append(newCode, in)
			} else {
				// Inline the probes before the jump: an unconditional jump
				// is the edge, so inline placement is exact.
				newCode = append(newCode, ep.instrs()...)
				newCode = append(newCode, in)
			}
		case bytecode.OpJmpIfFalse, bytecode.OpJmpIfTrue:
			// Two edges: taken (to in.A) and fallthrough (to pc+1).
			takenEP := probesFor(b, g.BlockOf(in.A))
			jumpPos := len(newCode)
			newCode = append(newCode, in)
			if !takenEP.empty() {
				splits = append(splits, splitEdge{jumpAt: jumpPos, target: in.A, probes: takenEP})
			}
			if pc+1 < len(fn.Code) {
				fallEP := probesFor(b, g.BlockOf(pc+1))
				if !fallEP.empty() {
					newCode = append(newCode, fallEP.instrs()...)
				}
			}
		default:
			newCode = append(newCode, in)
			// Plain fallthrough edge.
			if !in.Op.IsTerminator() && pc+1 < len(fn.Code) {
				ep := probesFor(b, g.BlockOf(pc+1))
				if !ep.empty() {
					newCode = append(newCode, ep.instrs()...)
				}
			}
		}
	}
	newIndex[len(fn.Code)] = len(newCode)

	// Remap jump targets.
	for i := range newCode {
		if newCode[i].Op.IsJump() {
			newCode[i].A = newIndex[newCode[i].A]
		}
	}

	// Materialize trampolines for conditional taken-edges that need probes.
	for _, se := range splits {
		tramp := len(newCode)
		newCode = append(newCode, se.probes.instrs()...)
		newCode = append(newCode, bytecode.Instr{Op: bytecode.OpJmp, A: newIndex[se.target]})
		newCode[se.jumpAt].A = tramp
	}

	out := &bytecode.Function{Method: fn.Method, Code: newCode, NumLocals: fn.NumLocals}

	// Remap the exception handler table and record, per handler, which
	// loops statically enclose its target: the VM emits LoopExit events
	// for every active loop outside that scope when it unwinds to the
	// handler (the paper's exceptional-control-flow handling).
	for _, h := range fn.Handlers {
		nh := h
		nh.From = newIndex[h.From]
		nh.To = newIndex[h.To]
		nh.Target = newIndex[h.Target]
		nh.LoopScope = append([]int(nil), loopsIn[g.BlockOf(h.Target)]...)
		out.Handlers = append(out.Handlers, nh)
	}

	if err := bytecode.Validate(out); err != nil {
		return nil, nil, fmt.Errorf("instrument: %w", err)
	}
	return out, metas, nil
}
