// Package verify is the profiling pipeline's online invariant checker. A
// Checker attaches to an events/pipeline Transport as one more consumer (a
// raw record tap, so it observes every record the producer emitted —
// including heap-journal records — unfiltered) and validates stream
// well-formedness while the profiled program runs: balanced entry/exit
// events, monotonic clocks, back edges and exits only for loops that are
// open in the current frame, and journal consistency (no duplicate
// allocations, stores only into known entities and in-bounds slots).
//
// After the run, CheckTree validates the repetition tree the core profiler
// built (invocation accounting, cost conservation between per-invocation
// history and exact node totals — even under sampling degradation), and
// AgreeStream cross-checks the tree against the stream tallies the Checker
// accumulated: every loop entrance the stream carried must be a started
// invocation of exactly one loop node, and every back edge one recorded
// step. A profile that passes is structurally incapable of the failure
// mode the paper's pitch rules out — a damaged stream silently fitted into
// a plausible-but-wrong cost function.
//
// Violations classify as faultinject.Corruption: wrong-shaped data, never
// retryable.
package verify

import (
	"fmt"

	"algoprof/internal/events"
	"algoprof/internal/events/pipeline"
	"algoprof/internal/faultinject"
)

// Violation is one failed invariant.
type Violation struct {
	// Seq is the record ordinal at which the stream checker caught the
	// violation (-1 for post-run tree checks).
	Seq int64
	// Rule names the invariant ("balanced-exits", "clock-monotonic", ...).
	Rule string
	// Msg describes the failure.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Seq >= 0 {
		return fmt.Sprintf("[%s] record %d: %s", v.Rule, v.Seq, v.Msg)
	}
	return fmt.Sprintf("[%s] %s", v.Rule, v.Msg)
}

// Error reports one or more failed invariants. It classifies as
// faultinject.Corruption.
type Error struct {
	// Violations holds the retained violations (capped; Total counts all).
	Violations []Violation
	// Total counts every violation, including ones dropped by the cap.
	Total int
}

// Error implements error.
func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "verify: invariant violations"
	}
	s := fmt.Sprintf("verify: %d invariant violation(s), first: %s", e.Total, e.Violations[0])
	return s
}

// FaultClass implements faultinject.Classifier.
func (e *Error) FaultClass() faultinject.FaultClass { return faultinject.Corruption }

// maxViolations bounds retained violations; a badly damaged stream fails
// every record and must not turn the checker into the memory hog.
const maxViolations = 64

// vframe mirrors one VM method frame: the method id and the loop ids
// currently open inside it. The VM removes an exiting loop from anywhere
// in the frame's open set (break/continue jump over inner exits), so the
// checker does too; only an exit for a loop not open in the CURRENT frame
// is a violation.
type vframe struct {
	method int
	loops  []int
}

// Checker validates the event stream online. It implements
// pipeline.RecordTap (the transport routes every raw record to it) and
// events.Listener (as a no-op, so AddConsumer accepts it). Not
// goroutine-safe; the transport delivers records from one consumer
// goroutine, matching every other consumer's contract.
type Checker struct {
	events.NopListener

	seq       int64
	prevClock uint64

	// frames[0] is the synthetic program frame (method -1): loops outside
	// any traced method nest there.
	frames []vframe

	loopEntries   map[int]int64
	loopBacks     map[int]int64
	loopExits     map[int]int64
	methodEntries map[int]int64
	methodExits   map[int]int64
	instrRecords  int64

	// entities maps journaled entity ids to their declared capacity.
	entities map[int64]int

	violations []Violation
	total      int
	finished   bool
}

// NewChecker returns a Checker ready to consume a stream.
func NewChecker() *Checker {
	return &Checker{
		frames:        []vframe{{method: -1}},
		loopEntries:   map[int]int64{},
		loopBacks:     map[int]int64{},
		loopExits:     map[int]int64{},
		methodEntries: map[int]int64{},
		methodExits:   map[int]int64{},
		entities:      map[int64]int{},
	}
}

func (c *Checker) violate(seq int64, rule, format string, args ...any) {
	c.total++
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, Violation{Seq: seq, Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}
}

// top returns the innermost frame.
func (c *Checker) top() *vframe { return &c.frames[len(c.frames)-1] }

// Record implements pipeline.RecordTap.
func (c *Checker) Record(r *pipeline.Record) {
	seq := c.seq
	c.seq++
	if r.Clock < c.prevClock {
		c.violate(seq, "clock-monotonic", "clock %d after %d (op %d)", r.Clock, c.prevClock, r.Op)
	} else {
		c.prevClock = r.Clock
	}
	switch r.Op {
	case pipeline.OpLoopEntry:
		id := int(r.ID)
		c.loopEntries[id]++
		f := c.top()
		f.loops = append(f.loops, id)
	case pipeline.OpLoopBack:
		id := int(r.ID)
		c.loopBacks[id]++
		if !contains(c.top().loops, id) {
			c.violate(seq, "loop-back-open", "back edge for loop %d not open in current frame", id)
		}
	case pipeline.OpLoopExit:
		id := int(r.ID)
		c.loopExits[id]++
		f := c.top()
		if !remove(&f.loops, id) {
			c.violate(seq, "loop-exit-open", "exit for loop %d not open in current frame", id)
		}
	case pipeline.OpMethodEntry:
		c.methodEntries[int(r.ID)]++
		c.frames = append(c.frames, vframe{method: int(r.ID)})
	case pipeline.OpMethodExit:
		id := int(r.ID)
		c.methodExits[id]++
		if len(c.frames) == 1 {
			c.violate(seq, "method-balanced", "exit for method %d with no frame open", id)
			break
		}
		f := c.top()
		if f.method != id {
			c.violate(seq, "method-balanced", "exit for method %d while in method %d", id, f.method)
		}
		if len(f.loops) > 0 {
			c.violate(seq, "loop-balanced", "method %d exits with %d loop(s) still open", id, len(f.loops))
		}
		c.frames = c.frames[:len(c.frames)-1]
	case pipeline.OpInstr:
		c.instrRecords++
	case pipeline.OpJrnlAlloc:
		if _, dup := c.entities[r.Ent]; dup {
			c.violate(seq, "journal-alloc", "entity %d allocated twice", r.Ent)
		}
		if r.Aux < 0 {
			c.violate(seq, "journal-alloc", "entity %d with negative capacity %d", r.Ent, r.Aux)
		}
		c.entities[r.Ent] = int(r.Aux)
	case pipeline.OpJrnlStore:
		capa, ok := c.entities[r.Ent]
		if !ok {
			c.violate(seq, "journal-store", "store into unknown entity %d", r.Ent)
			break
		}
		if int(r.ID) < 0 || int(r.ID) >= capa {
			c.violate(seq, "journal-store", "store slot %d out of bounds for entity %d (capacity %d)", r.ID, r.Ent, capa)
		}
	}
}

func contains(s []int, id int) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// remove deletes one occurrence of id from *s (innermost first) and
// reports whether it was present.
func remove(s *[]int, id int) bool {
	v := *s
	for i := len(v) - 1; i >= 0; i-- {
		if v[i] == id {
			*s = append(v[:i], v[i+1:]...)
			return true
		}
	}
	return false
}

// Finish runs the end-of-stream checks. openOK tolerates unclosed frames
// and loops — the footprint of a truncated trace, where the stream is a
// legitimate prefix; on a complete stream every entry must have its exit.
// Call once, after the transport's Barrier or Close guarantees delivery.
func (c *Checker) Finish(openOK bool) {
	if c.finished {
		return
	}
	c.finished = true
	if openOK {
		return
	}
	if n := len(c.frames) - 1; n > 0 {
		c.violate(-1, "method-balanced", "%d method frame(s) still open at end of stream", n)
	}
	if n := len(c.frames[0].loops); n > 0 {
		c.violate(-1, "loop-balanced", "%d loop(s) still open at end of stream", n)
	}
	for id, n := range c.loopEntries {
		if x := c.loopExits[id]; x != n {
			c.violate(-1, "balanced-exits", "loop %d: %d entries, %d exits", id, n, x)
		}
	}
	for id, x := range c.loopExits {
		if _, ok := c.loopEntries[id]; !ok {
			c.violate(-1, "balanced-exits", "loop %d: %d exits, 0 entries", id, x)
		}
	}
	for id, n := range c.methodEntries {
		if x := c.methodExits[id]; x != n {
			c.violate(-1, "balanced-exits", "method %d: %d entries, %d exits", id, n, x)
		}
	}
	for id, x := range c.methodExits {
		if _, ok := c.methodEntries[id]; !ok {
			c.violate(-1, "balanced-exits", "method %d: %d exits, 0 entries", id, x)
		}
	}
}

// Records returns the number of records checked.
func (c *Checker) Records() int64 { return c.seq }

// InstrRecords returns the number of per-instruction tick records seen.
func (c *Checker) InstrRecords() int64 { return c.instrRecords }

// MethodEntries returns a copy of the per-method entry tallies.
func (c *Checker) MethodEntries() map[int]int64 {
	out := make(map[int]int64, len(c.methodEntries))
	for k, v := range c.methodEntries {
		out[k] = v
	}
	return out
}

// Violations returns the retained violations.
func (c *Checker) Violations() []Violation {
	return append([]Violation(nil), c.violations...)
}

// Add records externally detected violations (tree checks, backend
// comparisons) so one Checker accumulates the run's full verdict.
func (c *Checker) Add(vs []Violation) {
	for _, v := range vs {
		c.total++
		if len(c.violations) < maxViolations {
			c.violations = append(c.violations, v)
		}
	}
}

// Err returns nil when every invariant held, else a *Error.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	return &Error{Violations: c.Violations(), Total: c.total}
}

var _ pipeline.RecordTap = (*Checker)(nil)
var _ events.Listener = (*Checker)(nil)
