package verify

import (
	"fmt"

	"algoprof/internal/cct"
	"algoprof/internal/core"
)

// CheckTree validates the repetition tree a core profiler built after its
// Finish: internal profiler errors, invocation accounting (recorded
// history never exceeds started invocations, indices strictly increasing,
// parent links in range, nothing left active), and cost conservation —
// per-invocation history sums never exceed the node's exact totals, with
// equality on full-fidelity runs. The conservation check is what holds
// even under sampling degradation: sampling drops records, never counts.
//
// tolerant skips the profiler's own error list: a truncated trace ends
// mid-repetition, so Finish legitimately force-closes open nodes and logs
// errors for them. The structural and conservation checks still apply.
func CheckTree(p *core.Profiler, tolerant bool) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, violationf(rule, format, args...))
	}
	if !tolerant {
		for _, err := range p.Errors() {
			add("profiler-errors", "%v", err)
		}
	}
	full := p.SampleInterval() <= 1
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		name := p.NodeName(n)
		if n.ActiveCount() != 0 {
			add("tree-closed", "node %s: %d invocation(s) still active", name, n.ActiveCount())
		}
		if n.Invocations() > n.Started() {
			add("tree-accounting", "node %s: %d recorded > %d started", name, n.Invocations(), n.Started())
		}
		prev := -1
		for _, inv := range n.History {
			if inv.Index <= prev {
				add("tree-accounting", "node %s: invocation index %d after %d", name, inv.Index, prev)
			}
			prev = inv.Index
			if inv.Index >= n.Started() {
				add("tree-accounting", "node %s: invocation index %d >= started %d", name, inv.Index, n.Started())
			}
			if parent := n.Parent; parent != nil && inv.ParentIndex >= parent.Started() {
				add("tree-accounting", "node %s: parent index %d >= parent started %d", name, inv.ParentIndex, parent.Started())
			}
		}
		// Conservation: history is a subset of the invocations the totals
		// aggregate, so per key Σ history ≤ total — equal when nothing was
		// sampled out.
		hist := map[core.CostKey]int64{}
		for _, inv := range n.History {
			inv.EachCost(func(k core.CostKey, v int64) {
				hist[k] += v
			})
		}
		totals := n.Totals()
		for k, h := range hist {
			t := totals[k]
			if h > t {
				add("cost-conservation", "node %s: history %s = %d exceeds total %d", name, k, h, t)
			} else if full && h != t {
				add("cost-conservation", "node %s: history %s = %d != total %d on full-fidelity run", name, k, h, t)
			}
		}
		if full {
			for k, t := range totals {
				if _, ok := hist[k]; !ok && t != 0 {
					add("cost-conservation", "node %s: total %s = %d absent from history on full-fidelity run", name, k, t)
				}
			}
		}
		for _, ch := range n.Children {
			if ch.Parent != n {
				add("tree-closed", "node %s: child %s with broken parent link", name, p.NodeName(ch))
			}
			walk(ch)
		}
	}
	walk(p.Root())
	return vs
}

func violationf(rule, format string, args ...any) Violation {
	return Violation{Seq: -1, Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// AgreeStream cross-checks the tree against the stream the Checker
// observed. Valid whenever the profiler consumed the same (identically
// filtered) stream the checker tapped — the Run/Record/Replay paths, where
// the producer emits under the profiler's own plan:
//
//   - every loop entrance in the stream is exactly one started invocation
//     of a loop node with that id (loop entries always begin an invocation);
//   - every back edge is exactly one recorded STEP on a loop node with
//     that id (steps on loop nodes come only from back edges);
//   - method entries bound recursion-node accounting from above: each
//     entry begins an outermost invocation, folds into an active header
//     (one STEP), or re-enters an active node (neither), so
//     started + steps never exceeds the stream's entries.
//
// All quantities are exact even on degraded runs (started counts and
// totals ignore sampling).
func AgreeStream(c *Checker, p *core.Profiler) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, violationf(rule, format, args...))
	}
	loopStarted := map[int]int64{}
	loopSteps := map[int]int64{}
	recStarted := map[int]int64{}
	recSteps := map[int]int64{}
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		switch n.Kind {
		case core.KindLoop:
			loopStarted[n.ID] += int64(n.Started())
			loopSteps[n.ID] += n.TotalCost(core.OpStep)
		case core.KindRecursion:
			recStarted[n.ID] += int64(n.Started())
			recSteps[n.ID] += n.TotalCost(core.OpStep)
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(p.Root())
	for id, want := range c.loopEntries {
		if got := loopStarted[id]; got != want {
			add("stream-tree", "loop %d: stream carried %d entries, tree started %d invocations", id, want, got)
		}
	}
	for id, got := range loopStarted {
		if _, ok := c.loopEntries[id]; !ok && got != 0 {
			add("stream-tree", "loop %d: tree started %d invocations, stream carried none", id, got)
		}
	}
	for id, want := range c.loopBacks {
		if got := loopSteps[id]; got != want {
			add("stream-tree", "loop %d: stream carried %d back edges, tree recorded %d steps", id, want, got)
		}
	}
	for id, got := range loopSteps {
		if _, ok := c.loopBacks[id]; !ok && got != 0 {
			add("stream-tree", "loop %d: tree recorded %d steps, stream carried no back edges", id, got)
		}
	}
	for id, got := range recStarted {
		want := c.methodEntries[id]
		if got+recSteps[id] > want {
			add("stream-tree", "method %d: tree accounts %d outermost + %d folded calls, stream carried %d entries",
				id, got, recSteps[id], want)
		}
	}
	return vs
}

// AgreeCCT cross-checks the calling-context-tree backend against the
// stream: the CCT's call count per method must equal the stream's method
// entries (the CCT increments exactly once per entry event). Valid when
// the CCT consumed an unfiltered view of method entries — the shared
// single-plan paths.
func AgreeCCT(c *Checker, flat []cct.HotMethod) []Violation {
	var vs []Violation
	seen := map[int]bool{}
	for _, hm := range flat {
		seen[hm.MethodID] = true
		if want := c.methodEntries[hm.MethodID]; hm.Calls != want {
			vs = append(vs, violationf("stream-cct", "method %d: cct counted %d calls, stream carried %d entries",
				hm.MethodID, hm.Calls, want))
		}
	}
	for id, n := range c.methodEntries {
		if !seen[id] && n > 0 {
			vs = append(vs, violationf("stream-cct", "method %d: stream carried %d entries, cct has no record", id, n))
		}
	}
	return vs
}
