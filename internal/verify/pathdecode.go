package verify

import (
	"algoprof/internal/core"
)

// CheckPathDecode cross-checks a path-counter-mode profiler against an
// events-mode profiler of the same program and config. Events mode streams
// every access and iteration exactly, so it is the ground truth the
// decoded counters must reproduce: the two repetition trees must have the
// same shape, the same invocation accounting, and — node by node — the
// same cost totals. Any disagreement means the Ball–Larus numbering, the
// VM's counter arithmetic, or the offline decode dropped or misattributed
// work.
//
// Programs outside the exactness envelope (one loop invocation walking
// several inputs through one site) may shift per-input attribution; for
// those, callers compare only the per-op sums via SumByOp.
func CheckPathDecode(events, paths *core.Profiler) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, violationf(rule, format, args...))
	}
	var walk func(path string, ev, pt *core.Node)
	walk = func(path string, ev, pt *core.Node) {
		name := path + events.NodeName(ev)
		if pt.Kind != ev.Kind || pt.ID != ev.ID {
			add("path-decode-shape", "node %s: paths-mode tree has %v/%d here", name, pt.Kind, pt.ID)
			return
		}
		if ev.Started() != pt.Started() {
			add("path-decode-accounting", "node %s: %d invocations started in events mode, %d in paths mode",
				name, ev.Started(), pt.Started())
		}
		if ev.Invocations() != pt.Invocations() {
			add("path-decode-accounting", "node %s: %d invocations recorded in events mode, %d in paths mode",
				name, ev.Invocations(), pt.Invocations())
		}
		evT, ptT := ev.Totals(), pt.Totals()
		for k, v := range evT {
			if got := ptT[k]; got != v {
				add("path-decode-costs", "node %s: cost %s = %d in events mode, %d decoded", name, k, v, got)
			}
		}
		for k, got := range ptT {
			if _, ok := evT[k]; !ok && got != 0 {
				add("path-decode-costs", "node %s: decoded cost %s = %d absent from events mode", name, k, got)
			}
		}
		if len(ev.Children) != len(pt.Children) {
			add("path-decode-shape", "node %s: %d children in events mode, %d in paths mode",
				name, len(ev.Children), len(pt.Children))
			return
		}
		for i, ch := range ev.Children {
			walk(name+"/", ch, pt.Children[i])
		}
	}
	walk("", events.Root(), paths.Root())
	return vs
}

// SumByOp folds a profiler's whole-tree cost totals down to per-operation
// sums over all inputs — the invariant that survives even inexact decode
// (attribution may shift between inputs; the amount of work cannot).
func SumByOp(p *core.Profiler) map[core.CostOp]int64 {
	out := map[core.CostOp]int64{}
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		for k, v := range n.Totals() {
			if k.Type == "" {
				out[k.Op] += v
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(p.Root())
	return out
}
