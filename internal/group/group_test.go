package group

import (
	"testing"

	"algoprof/internal/core"
	"algoprof/internal/testutil"
)

// algOf returns the algorithm containing the named node.
func algOf(t *testing.T, p *core.Profiler, res *Result, name string) *Algorithm {
	t.Helper()
	n := testutil.FindNode(p, name)
	if n == nil {
		t.Fatalf("no node named %s", name)
	}
	return res.AlgorithmOf[n]
}

func TestSharedInputGroupsLoops(t *testing.T) {
	// Insertion-sort shape: both sort loops touch the same list and must
	// form one algorithm.
	p := testutil.Profile(t, `
class Node { Node prev; Node next; int value; Node(int v) { value = v; } }
class Main {
  public static void main() {
    Node head = build(12);
    sort(head);
  }
  static Node build(int n) {
    Node head = null;
    for (int i = 0; i < n; i++) {
      Node x = new Node(rand(100));
      x.next = head;
      if (head != null) { head.prev = x; }
      head = x;
    }
    return head;
  }
  static void sort(Node head) {
    Node first = head.next;
    while (first != null) {
      Node target = first;
      Node nu = first.next;
      while (target.prev != null && target.prev.value > target.value) {
        int tmp = target.prev.value;
        // value swap variant keeps links stable
        target = target.prev;
        tmp = tmp + 0;
      }
      first = nu;
    }
  }
}`, core.Options{}, 5)
	res := Analyze(p)

	sortOuter := algOf(t, p, res, "Main.sort/loop1")
	sortInner := algOf(t, p, res, "Main.sort/loop2")
	if sortOuter != sortInner {
		t.Error("sort's nested loops share the list input and must group")
	}
	buildAlg := algOf(t, p, res, "Main.build/loop1")
	if buildAlg == sortOuter {
		t.Error("build and sort are siblings, not parent/child: separate algorithms")
	}
}

func TestDataStructureLessSingletons(t *testing.T) {
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    for (int o = 0; o < 3; o++) {
      for (int i = 0; i < 3; i++) { int x = o + i; }
    }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	outer := algOf(t, p, res, "Main.main/loop1")
	inner := algOf(t, p, res, "Main.main/loop2")
	if outer == inner {
		t.Error("input-less loops are singleton algorithms (paper §2.8)")
	}
	if !outer.DataStructureLess() || !inner.DataStructureLess() {
		t.Error("both must be data-structure-less")
	}
}

func TestCombinedCostListing3(t *testing.T) {
	// Listing 3 arithmetic on an array-sharing nest: for an outer
	// invocation with 3 iterations whose inner loop runs 0+1+2 steps, the
	// combined cost is 6 algorithmic steps.
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    int[] a = new int[3];
    for (int o = 0; o < 3; o++) {
      int x = a[o];
      for (int i = 0; i < o; i++) { int y = a[i]; }
    }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	outer := algOf(t, p, res, "Main.main/loop1")
	inner := algOf(t, p, res, "Main.main/loop2")
	if outer != inner {
		t.Fatal("nest sharing array `a` must be one algorithm")
	}
	if len(outer.Combined) != 1 {
		t.Fatalf("combined records = %d, want 1", len(outer.Combined))
	}
	if got := outer.Combined[0].Steps; got != 6 {
		t.Errorf("combined steps = %d, want 3 + (0+1+2) = 6", got)
	}
}

func TestListing5LimitationNotGrouped(t *testing.T) {
	// Paper Listing 5: only the innermost loop touches the 2-d array; the
	// outer loop has no accesses and stays a separate (data-structure-less)
	// algorithm — the documented limitation for array-based nests.
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    int[][] array = new int[4][5];
    for (int i = 0; i < array.length; i++) {
      for (int j = 0; j < 5; j++) {
        array[i][j] = i + j;
      }
    }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	outer := algOf(t, p, res, "Main.main/loop1")
	inner := algOf(t, p, res, "Main.main/loop2")
	if outer == inner {
		t.Error("Listing 5 nest must NOT group (outer loop has no array access)")
	}
	if !outer.DataStructureLess() {
		t.Error("outer loop is data-structure-less")
	}
	if inner.DataStructureLess() {
		t.Error("inner loop accesses the array")
	}
}

func TestListing5VariantWithOuterAccessGroups(t *testing.T) {
	// When the outer loop does access the array (array[i].length), the
	// nest groups.
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    int[][] array = new int[4][5];
    for (int i = 0; i < array.length; i++) {
      int w = array[i].length;
      for (int j = 0; j < w; j++) {
        array[i][j] = i + j;
      }
    }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	outer := algOf(t, p, res, "Main.main/loop1")
	inner := algOf(t, p, res, "Main.main/loop2")
	if outer != inner {
		t.Error("outer loop reads array[i]: the nest must group")
	}
}

func TestHarnessLoopNotGluedToAlgorithm(t *testing.T) {
	// A harness that builds and consumes a fresh structure per iteration
	// must not join the structure algorithms, even though guard reads
	// attribute O(1) accesses to it.
	p := testutil.Profile(t, `
class Node { Node next; int v; }
class Main {
  public static void main() {
    for (int size = 2; size < 12; size++) {
      Node head = build(size);
      int n = count(head);
      check(n == size);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    return head;
  }
  static int count(Node head) {
    int n = 0;
    Node cur = head;
    while (cur != null) { n++; cur = cur.next; }
    return n;
  }
}`, core.Options{}, 3)
	res := Analyze(p)
	harness := algOf(t, p, res, "Main.main/loop1")
	buildAlg := algOf(t, p, res, "Main.build/loop1")
	countAlg := algOf(t, p, res, "Main.count/loop1")
	if harness == buildAlg || harness == countAlg {
		t.Error("harness loop must stay separate from build/count algorithms")
	}
	if buildAlg == countAlg {
		t.Error("build and count are siblings: separate algorithms")
	}
}

func TestSeriesAggregatesAcrossInputInstances(t *testing.T) {
	// Each harness iteration constructs a fresh list; the count loop's
	// series must contain one point per invocation, keyed by the shared
	// label, with steps == size.
	p := testutil.Profile(t, `
class Node { Node next; int v; }
class Main {
  public static void main() {
    for (int size = 2; size < 10; size++) {
      Node head = build(size);
      int n = count(head);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    return head;
  }
  static int count(Node head) {
    int n = 0;
    Node cur = head;
    while (cur != null) { n++; cur = cur.next; }
    return n;
  }
}`, core.Options{}, 3)
	res := Analyze(p)
	countAlg := algOf(t, p, res, "Main.count/loop1")
	series, ok := countAlg.Series["Node-based recursive structure"]
	if !ok {
		t.Fatalf("series keys: %v", keys(countAlg.Series))
	}
	if len(series) != 8 {
		t.Fatalf("series has %d points, want 8 (sizes 2..9)", len(series))
	}
	for _, pt := range series {
		if int64(pt.Size) != pt.Steps {
			t.Errorf("count of %d nodes took %d steps; want equal", pt.Size, pt.Steps)
		}
	}
	// One input instance per harness iteration, except size 2 which stays
	// under the significance threshold (MinAccessesForRelation).
	if len(countAlg.Inputs) != 7 {
		t.Errorf("strong inputs = %d, want 7 (sizes 3..9)", len(countAlg.Inputs))
	}
}

func TestRecursionGroupsWithItsInput(t *testing.T) {
	// A recursive traversal shares the structure with a loop that feeds
	// it? Here: recursion alone must get input association and points.
	p := testutil.Profile(t, `
class Node { Node next; int v; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 9; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    int n = len(head);
    check(n == 9);
  }
  static int len(Node n) {
    if (n == null) { return 0; }
    return 1 + len(n.next);
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	rec := algOf(t, p, res, "Main.len/recursion")
	if rec.DataStructureLess() {
		t.Fatal("recursive traversal must be tied to the list input")
	}
	if len(rec.Combined) != 1 {
		t.Fatalf("combined = %d", len(rec.Combined))
	}
	// 9 recursive re-entries for a 9-node list (plus the null base call).
	if got := rec.Combined[0].Steps; got != 9 {
		t.Errorf("steps = %d, want 9", got)
	}
	pts := rec.Series["Node-based recursive structure"]
	if len(pts) != 1 || pts[0].Size != 9 {
		t.Errorf("series = %+v, want one point of size 9", pts)
	}
}

func TestTotalStepsSums(t *testing.T) {
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 4; i++) { }
    for (int j = 0; j < 6; j++) { }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	a1 := algOf(t, p, res, "Main.main/loop1")
	a2 := algOf(t, p, res, "Main.main/loop2")
	if a1.TotalSteps() != 4 || a2.TotalSteps() != 6 {
		t.Errorf("steps %d/%d, want 4/6", a1.TotalSteps(), a2.TotalSteps())
	}
}

func TestEveryNodeAssigned(t *testing.T) {
	p := testutil.Profile(t, `
class Node { Node next; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 5; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
  }
}`, core.Options{}, 1)
	res := Analyze(p)
	var walk func(n *core.Node)
	var missing int
	walk = func(n *core.Node) {
		if res.AlgorithmOf[n] == nil {
			missing++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root())
	if missing != 0 {
		t.Errorf("%d nodes without algorithm", missing)
	}
}

func keys(m map[string][]Point) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
