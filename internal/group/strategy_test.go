package group

import (
	"testing"

	"algoprof/internal/core"
	"algoprof/internal/testutil"
)

const listing5Shape = `
class Main {
  public static void main() {
    int[][] array = new int[6][6];
    for (int i = 0; i < array.length; i++) {
      for (int j = 0; j < 6; j++) {
        array[i][j] = i * j;
      }
    }
  }
}`

func TestSameMethodGroupsListing5(t *testing.T) {
	// The paper's known limitation: SharedInput cannot group the 2-d
	// array nest; the alternative SameMethod strategy can.
	p := testutil.Profile(t, listing5Shape, core.Options{}, 1)

	shared := AnalyzeWith(p, Options{Strategy: SharedInput})
	outerS := shared.AlgorithmOf[testutil.FindNode(p, "Main.main/loop1")]
	innerS := shared.AlgorithmOf[testutil.FindNode(p, "Main.main/loop2")]
	if outerS == innerS {
		t.Fatal("SharedInput must NOT group the Listing 5 nest")
	}

	same := AnalyzeWith(p, Options{Strategy: SameMethod})
	outerM := same.AlgorithmOf[testutil.FindNode(p, "Main.main/loop1")]
	innerM := same.AlgorithmOf[testutil.FindNode(p, "Main.main/loop2")]
	if outerM != innerM {
		t.Fatal("SameMethod must group loops of one method")
	}
	// Combined steps of the grouped nest: 6 outer + 6*6 inner.
	if got := outerM.TotalSteps(); got != 42 {
		t.Errorf("combined steps = %d, want 42", got)
	}
}

func TestSameMethodCannotGroupAcrossMethods(t *testing.T) {
	// Figure 4's append/grow pair spans two methods: SharedInput groups
	// it; SameMethod cannot — the trade-off the paper's §2.5 hints at.
	src := `
class AL {
  String[] array; int count;
  AL() { array = new String[1]; count = 0; }
  void append(String v) {
    if (count == array.length) { grow(); }
    array[count] = v;
    count = count + 1;
  }
  void grow() {
    String[] na = new String[array.length + 1];
    for (int i = 0; i < array.length; i++) { na[i] = array[i]; }
    array = na;
  }
}
class Main {
  public static void main() {
    AL list = new AL();
    for (int i = 0; i < 12; i++) { list.append("n" + i); }
  }
}`
	p := testutil.Profile(t, src, core.Options{}, 1)
	appendLoop := testutil.FindNode(p, "Main.main/loop1")
	growLoop := testutil.FindNode(p, "AL.grow/loop1")

	shared := AnalyzeWith(p, Options{Strategy: SharedInput})
	if shared.AlgorithmOf[appendLoop] != shared.AlgorithmOf[growLoop] {
		t.Error("SharedInput must group append+grow (Figure 4)")
	}
	same := AnalyzeWith(p, Options{Strategy: SameMethod})
	if same.AlgorithmOf[appendLoop] == same.AlgorithmOf[growLoop] {
		t.Error("SameMethod must not group across methods")
	}
}

func TestSameMethodNeverAbsorbsProgramRoot(t *testing.T) {
	p := testutil.Profile(t, `
class Main {
  public static void main() {
    for (int i = 0; i < 3; i++) { }
  }
}`, core.Options{}, 1)
	res := AnalyzeWith(p, Options{Strategy: SameMethod})
	rootAlg := res.AlgorithmOf[p.Root()]
	loopAlg := res.AlgorithmOf[testutil.FindNode(p, "Main.main/loop1")]
	if rootAlg == loopAlg {
		t.Error("the synthetic Program root must stay a singleton")
	}
}
