// Package group partitions the repetition tree into algorithms (§2.5 of
// the AlgoProf paper) and combines costs across each algorithm's nodes
// (§2.6).
//
// The default grouping rule is the paper's automatic strategy: a parent
// repetition and a child repetition belong to the same algorithm when they
// access at least one common input. The alternative SameMethod strategy
// (also sketched in §2.5) groups repetitions located in the same method.
// Repetitions without inputs ("data-structure-less algorithms") are
// singleton groups. An algorithm is therefore a connected subgraph of the
// repetition tree with a unique root (its shallowest node).
//
// Cost combination: for one invocation of the algorithm's root, the
// combined cost is the root's own cost plus the costs of all member-node
// invocations that transitively ran inside that root invocation — e.g. in
// Listing 3, 3 outer iterations + (0+1+2) inner iterations = 6 steps.
package group

import (
	"sort"
	"strings"

	"algoprof/internal/core"
)

// Point is one (input size, combined cost) sample for an algorithm: the
// data behind one dot of the paper's Figure 1.
type Point struct {
	// RootInv is the root invocation index the point came from.
	RootInv int
	// Size is the maximum size of the input during that invocation.
	Size int
	// Steps is the combined algorithmic step count.
	Steps int64
	// Costs is the full combined cost map.
	Costs map[core.CostKey]int64
}

// Algorithm is one group of repetition nodes.
type Algorithm struct {
	// ID is the algorithm's ordinal (stable per run, assigned in tree
	// preorder of the root node).
	ID int
	// Root is the shallowest node of the group.
	Root *core.Node
	// Nodes lists all member nodes (root first, preorder).
	Nodes []*core.Node
	// Inputs lists the canonical input ids the algorithm accesses, sorted.
	Inputs []int
	// Combined holds one combined record per completed root invocation,
	// ordered by root invocation index.
	Combined []Point
	// PointsByInput maps each input id to the (size, steps) series used
	// for cost-function inference; invocations that never measured the
	// input are omitted.
	PointsByInput map[int][]Point
	// Series groups points by input *label* rather than identity: a
	// harness that constructs a fresh structure per run produces many
	// input instances of the same kind, and the paper's Figure-1 plots
	// chart all of them on one axis. Per root invocation and label, the
	// size is the maximum over same-labeled inputs.
	Series map[string][]Point
}

// DataStructureLess reports whether the algorithm has no inputs.
func (a *Algorithm) DataStructureLess() bool { return len(a.Inputs) == 0 }

// TotalSteps sums the member nodes' algorithmic step totals. Node totals
// aggregate over ALL invocations, so the sum stays exact even when
// invocation sampling (a -sample flag or a tripped resource limit) thins
// the Combined series the points come from.
func (a *Algorithm) TotalSteps() int64 {
	var sum int64
	for _, n := range a.Nodes {
		sum += n.TotalCost(core.OpStep)
	}
	return sum
}

// Result is the grouping of one profile.
type Result struct {
	Algorithms []*Algorithm
	// AlgorithmOf maps each repetition node to its algorithm.
	AlgorithmOf map[*core.Node]*Algorithm
}

// Strategy selects how repetition nodes are grouped into algorithms.
type Strategy int

// Grouping strategies.
const (
	// SharedInput is the paper's automatic strategy: group parent and
	// child repetitions that access at least one common input.
	SharedInput Strategy = iota
	// SameMethod is the alternative §2.5 mentions: group parent and child
	// repetitions located in the same method. It groups the Listing 5
	// array nest (which SharedInput cannot) but cannot group repetitions
	// spanning methods, such as the append/grow pair of Figure 4.
	SameMethod
)

// Options configure Analyze.
type Options struct {
	Strategy Strategy
}

// MinAccessesForRelation is the significance threshold implementing the
// paper's §3.5 heuristic ("exclude inputs … that cause constant cost") at
// grouping time. A parent and child repetition are grouped on an input
// only when both work on it non-trivially:
//
//   - the parent must itself perform at least this many accesses in some
//     single invocation (so an O(1) guard read — e.g. sort()'s
//     `head.next == null` check executing under the harness loop — does
//     not glue the harness to the algorithm), and
//   - the child must accumulate at least this many accesses within some
//     single parent invocation (its own invocations may individually be
//     tiny, as in a DFS's per-vertex edge loop).
const MinAccessesForRelation = 3

// accessStats holds per-(node, input) access intensities.
type accessStats struct {
	// ownMax[x] is the node's maximum per-invocation access count on x.
	ownMax map[int]int64
	// aggMax[x] is the maximum, over parent invocations, of the node's
	// accesses on x summed across all its invocations under that parent
	// invocation.
	aggMax map[int]int64
}

func (s *accessStats) strong(x int) bool {
	return s.ownMax[x] >= MinAccessesForRelation || s.aggMax[x] >= MinAccessesForRelation
}

// Analyze partitions the profile's repetition tree into algorithms with
// the paper's shared-input strategy and combines their costs.
func Analyze(p *core.Profiler) *Result {
	return AnalyzeWith(p, Options{})
}

// AnalyzeWith is Analyze with an explicit grouping strategy.
func AnalyzeWith(p *core.Profiler, o Options) *Result {
	reg := p.Registry()

	stats := map[*core.Node]*accessStats{}
	var collect func(n *core.Node)
	collect = func(n *core.Node) {
		st := &accessStats{ownMax: map[int]int64{}, aggMax: map[int]int64{}}
		agg := map[int]map[int]int64{} // parent invocation -> input -> sum
		for _, inv := range n.History {
			perInput := map[int]int64{}
			inv.EachCost(func(k core.CostKey, v int64) {
				if k.Input == core.NoInput || k.Type != "" {
					return
				}
				switch k.Op {
				case core.OpGet, core.OpPut, core.OpArrLoad, core.OpArrStore:
					perInput[reg.Find(k.Input)] += v
				}
			})
			for x, count := range perInput {
				if count > st.ownMax[x] {
					st.ownMax[x] = count
				}
				m := agg[inv.ParentIndex]
				if m == nil {
					m = map[int]int64{}
					agg[inv.ParentIndex] = m
				}
				m[x] += count
			}
		}
		for _, m := range agg {
			for x, sum := range m {
				if sum > st.aggMax[x] {
					st.aggMax[x] = sum
				}
			}
		}
		stats[n] = st
		for _, c := range n.Children {
			collect(c)
		}
	}
	collect(p.Root())

	// edgeShared reports whether parent and child belong to the same
	// algorithm under the selected strategy.
	methodOf := func(n *core.Node) string {
		name := p.NodeName(n)
		if i := strings.IndexByte(name, '/'); i >= 0 {
			return name[:i]
		}
		return name
	}
	edgeShared := func(parent, child *core.Node) bool {
		if o.Strategy == SameMethod {
			return parent.Kind != core.KindRoot && methodOf(parent) == methodOf(child)
		}
		ps, cs := stats[parent], stats[child]
		for x := range ps.ownMax {
			if ps.ownMax[x] >= MinAccessesForRelation && cs.strong(x) {
				return true
			}
		}
		return false
	}

	// Partition: preorder walk; a node joins its parent's group when the
	// edge shares an input, otherwise it roots a new group.
	res := &Result{AlgorithmOf: map[*core.Node]*Algorithm{}}
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		var alg *Algorithm
		if n.Parent != nil {
			if parentAlg := res.AlgorithmOf[n.Parent]; parentAlg != nil && edgeShared(n.Parent, n) {
				alg = parentAlg
			}
		}
		if alg == nil {
			alg = &Algorithm{ID: len(res.Algorithms), Root: n}
			res.Algorithms = append(res.Algorithms, alg)
		}
		alg.Nodes = append(alg.Nodes, n)
		res.AlgorithmOf[n] = alg
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root())

	for _, alg := range res.Algorithms {
		// Inputs the algorithm meaningfully works on: strong for some
		// member node.
		inputSet := map[int]bool{}
		for _, n := range alg.Nodes {
			st := stats[n]
			for x := range st.ownMax {
				if st.strong(x) {
					inputSet[x] = true
				}
			}
			for x := range st.aggMax {
				if st.strong(x) {
					inputSet[x] = true
				}
			}
		}
		for id := range inputSet {
			alg.Inputs = append(alg.Inputs, id)
		}
		sort.Ints(alg.Inputs)
		combine(alg, reg.Find)

		// Label-keyed series for cost-function inference.
		alg.Series = map[string][]Point{}
		sizeByInvLabel := map[int]map[string]int{}
		for id, pts := range alg.PointsByInput {
			label := reg.Input(id).Label()
			for _, p := range pts {
				m := sizeByInvLabel[p.RootInv]
				if m == nil {
					m = map[string]int{}
					sizeByInvLabel[p.RootInv] = m
				}
				if p.Size > m[label] {
					m[label] = p.Size
				}
			}
		}
		for _, pt := range alg.Combined {
			for label, size := range sizeByInvLabel[pt.RootInv] {
				p := pt
				p.Size = size
				alg.Series[label] = append(alg.Series[label], p)
			}
		}
	}
	return res
}

// combine computes the per-root-invocation combined cost records.
func combine(alg *Algorithm, find func(int) int) {
	// rootInvOf[node][invIndex] = root invocation index, derived through
	// the ParentIndex chain within the group.
	member := map[*core.Node]bool{}
	for _, n := range alg.Nodes {
		member[n] = true
	}

	rootInvOf := map[*core.Node]map[int]int{}
	rootInvOf[alg.Root] = map[int]int{}
	for _, inv := range alg.Root.History {
		rootInvOf[alg.Root][inv.Index] = inv.Index
	}

	// Process nodes top-down (alg.Nodes is preorder, so parents precede
	// children).
	for _, n := range alg.Nodes {
		if n == alg.Root {
			continue
		}
		parent := n.Parent
		if !member[parent] {
			continue // cannot happen: groups are connected
		}
		m := map[int]int{}
		for _, inv := range n.History {
			if ri, ok := rootInvOf[parent][inv.ParentIndex]; ok {
				m[inv.Index] = ri
			}
		}
		rootInvOf[n] = m
	}

	// Accumulate combined costs and sizes per root invocation.
	type acc struct {
		costs map[core.CostKey]int64
		sizes map[int]int
	}
	accs := map[int]*acc{}
	getAcc := func(ri int) *acc {
		a := accs[ri]
		if a == nil {
			a = &acc{costs: map[core.CostKey]int64{}, sizes: map[int]int{}}
			accs[ri] = a
		}
		return a
	}
	for _, n := range alg.Nodes {
		for _, inv := range n.History {
			ri, ok := rootInvOf[n][inv.Index]
			if !ok {
				continue
			}
			a := getAcc(ri)
			inv.EachCost(func(k core.CostKey, v int64) {
				if k.Input != core.NoInput {
					k.Input = find(k.Input)
				}
				a.costs[k] += v
			})
			for _, e := range inv.Sizes {
				cid := find(int(e.Input))
				if int(e.Size) > a.sizes[cid] {
					a.sizes[cid] = int(e.Size)
				}
			}
		}
	}

	// Emit points ordered by root invocation index. Points cover every
	// input the algorithm measured — a harness that feeds fresh input
	// instances produces strong relations only on large instances, but the
	// small ones still belong on the scatter plot — provided the
	// algorithm has at least one meaningful input at all.
	ris := make([]int, 0, len(accs))
	for ri := range accs {
		ris = append(ris, ri)
	}
	sort.Ints(ris)
	alg.PointsByInput = map[int][]Point{}
	for _, ri := range ris {
		a := accs[ri]
		var steps int64
		for k, v := range a.costs {
			if k.Op == core.OpStep && k.Type == "" {
				steps += v
			}
		}
		pt := Point{RootInv: ri, Steps: steps, Costs: a.costs}
		alg.Combined = append(alg.Combined, pt)
		if len(alg.Inputs) == 0 {
			continue
		}
		for id, s := range a.sizes {
			p := pt
			p.Size = s
			alg.PointsByInput[id] = append(alg.PointsByInput[id], p)
		}
	}
}
