// Package report renders algorithmic profiles as text: the repetition
// tree with algorithm annotations (the paper's Figure 3 and 4), ASCII
// scatter plots of cost versus input size with fitted curves (Figures 1
// and 5), and aligned tables (Table 1).
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"algoprof/internal/classify"
	"algoprof/internal/core"
	"algoprof/internal/fit"
	"algoprof/internal/group"
)

// TreeOptions configure RenderTree.
type TreeOptions struct {
	// Fits supplies the fitted cost function per series label for an
	// algorithm (may be nil).
	Fits func(alg *group.Algorithm) map[string]*fit.Fit
}

// RenderTree renders the repetition tree with per-node invocation/step
// counts and, on each algorithm's root, the algorithm annotation
// (classification and fitted cost functions) like the paper's Figure 3.
func RenderTree(p *core.Profiler, res *group.Result,
	classes map[*group.Algorithm]*classify.AlgorithmClass, opts TreeOptions) string {

	reg := p.Registry()
	var sb strings.Builder
	var walk func(n *core.Node, depth int)
	walk = func(n *core.Node, depth int) {
		indent := strings.Repeat("  ", depth)
		name := p.NodeName(n)
		if line := p.NodeSourceLine(n); line > 0 {
			name = fmt.Sprintf("%s (line %d)", name, line)
		}
		fmt.Fprintf(&sb, "%s%s  [invocations=%d steps=%d]\n",
			indent, name, n.Invocations(), n.TotalCost(core.OpStep))

		alg := res.AlgorithmOf[n]
		if alg != nil && alg.Root == n && n.Kind != core.KindRoot {
			ac := classes[alg]
			if ac != nil {
				desc := ac.Describe(func(id int) string { return reg.Input(id).Label() })
				fmt.Fprintf(&sb, "%s  == algorithm #%d: %s\n", indent, alg.ID, desc)
			}
			if opts.Fits != nil {
				fits := opts.Fits(alg)
				labels := make([]string, 0, len(fits))
				for l := range fits {
					labels = append(labels, l)
				}
				sort.Strings(labels)
				for _, l := range labels {
					if f := fits[l]; f != nil {
						fmt.Fprintf(&sb, "%s     steps ≈ %s  (size = %s, R2=%.3f, n=%d)\n",
							indent, f, l, f.R2, f.N)
					}
				}
			}
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Root(), 0)
	return sb.String()
}

// FitSeries fits every series of an algorithm (steps versus size per input
// label), skipping series with fewer than three distinct sizes.
func FitSeries(alg *group.Algorithm) map[string]*fit.Fit {
	out := map[string]*fit.Fit{}
	for label, pts := range alg.Series {
		fpts := make([]fit.Point, len(pts))
		distinct := map[int]bool{}
		for i, p := range pts {
			fpts[i] = fit.Point{Size: float64(p.Size), Cost: float64(p.Steps)}
			distinct[p.Size] = true
		}
		if len(distinct) < 3 {
			continue
		}
		if f := fit.Best(fpts); f != nil {
			out[label] = f
		}
	}
	return out
}

// Scatter renders an ASCII scatter plot of the points ('·') with the
// fitted curve overlaid ('*'); axes are linear and auto-scaled.
func Scatter(points []fit.Point, f *fit.Fit, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	if len(points) == 0 {
		return "(no data)\n"
	}
	maxX, maxY := 1.0, 1.0
	for _, p := range points {
		maxX = math.Max(maxX, p.Size)
		maxY = math.Max(maxY, p.Cost)
	}
	if f != nil {
		maxY = math.Max(maxY, f.Eval(maxX))
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, ch byte) {
		cx := int(x / maxX * float64(width-1))
		cy := int(y / maxY * float64(height-1))
		if cx < 0 || cx >= width || cy < 0 || cy >= height {
			return
		}
		row := height - 1 - cy
		if grid[row][cx] == ' ' || ch == '*' {
			grid[row][cx] = ch
		}
	}
	for _, p := range points {
		put(p.Size, p.Cost, '.')
	}
	if f != nil {
		for cx := 0; cx < width*2; cx++ {
			x := float64(cx) / float64(width*2-1) * maxX
			y := f.Eval(x)
			if y >= 0 {
				put(x, y, '*')
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%10.0f ┤\n", maxY)
	for _, row := range grid {
		fmt.Fprintf(&sb, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&sb, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%10s 0%*s\n", "", width, fmt.Sprintf("%.0f", maxX))
	if f != nil {
		fmt.Fprintf(&sb, "%10s fit: %s (R2=%.3f)\n", "", f, f.R2)
	}
	return sb.String()
}

// Table renders an aligned text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
