package report

import (
	"strings"
	"testing"

	"algoprof/internal/classify"
	"algoprof/internal/core"
	"algoprof/internal/fit"
	"algoprof/internal/group"
	"algoprof/internal/testutil"
)

func TestRenderTreeShowsAnnotations(t *testing.T) {
	p := testutil.Profile(t, `
class Node { Node next; }
class Main {
  public static void main() {
    Node head = null;
    for (int i = 0; i < 9; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
  }
}`, core.Options{}, 1)
	res := group.Analyze(p)
	classes := classify.Classify(p, res)
	out := RenderTree(p, res, classes, TreeOptions{Fits: FitSeries})
	for _, want := range []string{
		"Program",
		"Main.main/loop1",
		"invocations=1",
		"steps=9",
		"algorithm #",
		"Construction of a Node-based recursive structure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
}

func TestFitSeriesSkipsShortSeries(t *testing.T) {
	alg := &group.Algorithm{
		Series: map[string][]group.Point{
			"two-sizes": {{Size: 1, Steps: 1}, {Size: 2, Steps: 2}},
			"enough":    {{Size: 1, Steps: 2}, {Size: 2, Steps: 4}, {Size: 3, Steps: 6}, {Size: 4, Steps: 8}},
		},
	}
	fits := FitSeries(alg)
	if _, ok := fits["two-sizes"]; ok {
		t.Error("series with <3 distinct sizes must be skipped")
	}
	f, ok := fits["enough"]
	if !ok {
		t.Fatal("series with 4 sizes must be fitted")
	}
	if f.Model != fit.Linear {
		t.Errorf("model = %v, want linear", f.Model)
	}
}

func TestScatterPlotShape(t *testing.T) {
	pts := []fit.Point{{Size: 1, Cost: 1}, {Size: 50, Cost: 2500}, {Size: 100, Cost: 10000}}
	f := &fit.Fit{Model: fit.Quadratic, Coeff: 1}
	out := Scatter(pts, f, 40, 10)
	if !strings.Contains(out, ".") {
		t.Error("plot missing data points")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot missing fitted curve")
	}
	if !strings.Contains(out, "fit: 1*n^2") {
		t.Errorf("plot missing fit caption:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 1 header + 10 rows + axis + labels + fit line.
	if len(lines) != 14 {
		t.Errorf("plot has %d lines, want 14:\n%s", len(lines), out)
	}
}

func TestScatterEmpty(t *testing.T) {
	if got := Scatter(nil, nil, 40, 10); got != "(no data)\n" {
		t.Errorf("empty scatter = %q", got)
	}
}

func TestScatterClampsTinyDimensions(t *testing.T) {
	out := Scatter([]fit.Point{{Size: 1, Cost: 1}}, nil, 1, 1)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"A", "LongHeader"}, [][]string{
		{"xxxxx", "y"},
		{"z", "wwwwwwwwwwww"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	// All lines equal width.
	w := len(lines[0])
	for i, l := range lines {
		if len(strings.TrimRight(l, " ")) > w+2 {
			t.Errorf("line %d wider than header line: %q", i, l)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing separator row")
	}
}
