// Package focus combines the traditional CCT hotness baseline with
// algorithmic profiling, the workflow §3.5 of the AlgoProf paper describes
// for realistic applications: first find the hot regions with a cheap
// hotness profile, then read the algorithmic profile for exactly those
// regions to learn *why* they are hot and how they scale.
package focus

import (
	"sort"
	"strings"

	"algoprof"
	"algoprof/internal/cct"
	"algoprof/internal/instrument"
	"algoprof/internal/mj/compiler"
	"algoprof/internal/vm"
)

// HotRegion is one hot method with the algorithms rooted inside it.
type HotRegion struct {
	// Method is the hot method's qualified name.
	Method string
	// ExclusiveCost is the method's exclusive instruction count from the
	// CCT baseline.
	ExclusiveCost uint64
	// Calls is the method's total call count.
	Calls int64
	// Algorithms are the algorithmic-profile entries rooted in the
	// method, most expensive first.
	Algorithms []algoprof.Algorithm
}

// Result is a focused profile.
type Result struct {
	// Regions are the topK hottest methods with their algorithms.
	Regions []HotRegion
	// Profile is the full algorithmic profile, for drill-down.
	Profile *algoprof.Profile
}

// Run profiles src twice — once under the CCT baseline to rank methods by
// exclusive cost, once under the algorithmic profiler — and joins the two
// views. Both runs use the same seed, so they observe the same execution.
func Run(src string, cfg algoprof.Config, topK int) (*Result, error) {
	prog, err := compiler.CompileSource(src)
	if err != nil {
		return nil, err
	}

	// Pass 1: CCT hotness (full plan: every method reports).
	ins, err := instrument.Instrument(prog, instrument.Full)
	if err != nil {
		return nil, err
	}
	var machine *vm.VM
	hot := cct.New(func() uint64 { return machine.InstrCount })
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	machine = vm.New(ins.Prog, vm.Config{Listener: hot, Plan: ins.Plan, Seed: seed, Input: cfg.Input})
	if err := machine.Run(); err != nil {
		return nil, err
	}
	hot.Finish()

	// Pass 2: algorithmic profile (optimized plan), same seed.
	profile, err := algoprof.RunProgram(prog, cfg)
	if err != nil {
		return nil, err
	}

	res := &Result{Profile: profile}
	for _, h := range hot.Flat() {
		if len(res.Regions) >= topK {
			break
		}
		method := ins.Prog.Sem.MethodByID(h.MethodID).QualifiedName()
		region := HotRegion{
			Method:        method,
			ExclusiveCost: h.Exclusive,
			Calls:         h.Calls,
		}
		for _, alg := range profile.Algorithms {
			if strings.HasPrefix(alg.Name, method+"/") {
				region.Algorithms = append(region.Algorithms, alg)
			}
		}
		sort.SliceStable(region.Algorithms, func(i, j int) bool {
			return region.Algorithms[i].TotalSteps > region.Algorithms[j].TotalSteps
		})
		res.Regions = append(res.Regions, region)
	}
	return res, nil
}
