package focus

import (
	"strings"
	"testing"

	"algoprof"
)

const hotColdSrc = `
class Node { Node next; int v; }
class Main {
  public static void main() {
    for (int size = 4; size <= 48; size = size + 4) {
      Node head = build(size);
      hotScan(head);
      coldTouch(head);
    }
  }
  static Node build(int size) {
    Node head = null;
    for (int i = 0; i < size; i++) {
      Node x = new Node();
      x.next = head;
      head = x;
    }
    return head;
  }
  static int hotScan(Node head) {
    // Quadratic pair scan: the hot region.
    int pairs = 0;
    Node a = head;
    while (a != null) {
      Node b = a.next;
      while (b != null) {
        pairs = pairs + 1;
        b = b.next;
      }
      a = a.next;
    }
    return pairs;
  }
  static int coldTouch(Node head) {
    if (head == null) { return 0; }
    return head.v;
  }
}`

func TestFocusRanksHotMethodFirst(t *testing.T) {
	res, err := Run(hotColdSrc, algoprof.Config{Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(res.Regions))
	}
	// The quadratic scan must rank above the cold accessor; main's sweep
	// loop lives in Main.main which may rank anywhere, but coldTouch must
	// not be first.
	if res.Regions[0].Method == "Main.coldTouch" {
		t.Errorf("coldTouch ranked hottest")
	}
	foundHot := false
	for i, r := range res.Regions {
		if r.Method == "Main.hotScan" {
			foundHot = true
			if i > 1 {
				t.Errorf("hotScan ranked %d", i)
			}
			if len(r.Algorithms) == 0 {
				t.Fatal("hotScan region has no algorithms")
			}
			alg := r.Algorithms[0]
			if !strings.Contains(alg.Description, "Traversal") {
				t.Errorf("hotScan algorithm description = %q", alg.Description)
			}
			// The algorithmic profile explains the hotness: quadratic.
			if len(alg.CostFunctions) == 0 || alg.CostFunctions[0].Model != "n^2" {
				t.Errorf("hotScan cost functions = %+v, want n^2", alg.CostFunctions)
			}
		}
	}
	if !foundHot {
		t.Errorf("hotScan not in top regions: %+v", res.Regions)
	}
}

func TestFocusColdRegionHasNoAlgorithms(t *testing.T) {
	res, err := Run(hotColdSrc, algoprof.Config{Seed: 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		if r.Method == "Main.coldTouch" && len(r.Algorithms) != 0 {
			t.Errorf("coldTouch has algorithms %v (it contains no repetitions)", r.Algorithms)
		}
	}
}

func TestFocusProfileAvailableForDrillDown(t *testing.T) {
	res, err := Run(hotColdSrc, algoprof.Config{Seed: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil || len(res.Profile.Algorithms) == 0 {
		t.Fatal("full profile missing")
	}
	if !strings.Contains(res.Profile.Tree(), "Main.hotScan/loop1") {
		t.Error("tree missing hot scan loops")
	}
}
