// Ball–Larus path numbering for counted loops, extended across loop back
// edges in the style of D'Elia & Demetrescu: instead of numbering the
// acyclic paths of a whole function body, each loop's body is numbered as
// its own DAG whose paths run from the loop header to either the back edge
// (one finished iteration) or a loop exit. One counter bump per finished
// path then replaces the per-back-edge and per-access probe events of
// events mode, and the path id identifies exactly which access sites the
// iteration executed.
//
// Directly nested loops collapse into supernodes: a child loop is opaque
// from the parent's numbering (it has its own), so the parent path records
// only that the iteration passed through the child, not what the child
// did. Natural loops are single-entry — the header dominates every body
// block, so any edge into the body from outside targets the header — which
// makes the collapse sound: control enters a supernode only through the
// child header and leaves only through the child's exit edges.
package cfg

import (
	"sort"

	"algoprof/internal/mj/bytecode"
)

// Synthetic sink nodes of a loop's path DAG.
const (
	sinkBack = -1 // path ends on the loop's back edge: one finished iteration
	sinkExit = -2 // path ends on a loop exit edge
)

// PathSpec describes one numbered path of a counted loop.
type PathSpec struct {
	// Back reports a path terminating on the back edge.
	Back bool
	// AccessPCs lists the pcs of data-access instructions (getfield,
	// putfield, aload, astore) on the path, in path order. Only
	// instructions of blocks attributed to this loop appear; accesses
	// inside nested loops belong to the nested loop's own numbering.
	AccessPCs []int
}

// PathNumbering is the Ball–Larus numbering of one loop's iteration DAG.
// All edge keys are concrete CFG edges (from-block, to-block).
type PathNumbering struct {
	// NumPaths is the number of distinct header-to-sink paths; path ids
	// are [0, NumPaths).
	NumPaths int
	// Inc maps non-terminal edges (internal edges, edges into a nested
	// loop's header, and edges leaving a nested loop back into this body)
	// to their path-register increment. Zero increments are omitted.
	Inc map[[2]int]int
	// Back maps each back edge to its final increment: the finished path's
	// id is register + Back[edge].
	Back map[[2]int]int
	// Exit maps each exit edge to its final increment.
	Exit map[[2]int]int
	// Paths holds one spec per path id.
	Paths []PathSpec
}

// dagEdge is one deduplicated DAG edge: several concrete CFG edges with
// the same DAG endpoints (e.g. the many exit edges of a collapsed child
// loop landing on one block) share a target and therefore an increment.
type dagEdge struct {
	to       int // block index, super(child) id, sinkBack, or sinkExit
	inc      int
	concrete [][2]int
}

// NumberLoopPaths numbers the whole-iteration paths of l, or returns nil
// when the loop cannot be path-counted and must keep classic probes:
// bodies with throw/trap terminators or exception-handler overlap (an
// unwind would abandon a path mid-iteration), bodies whose nested-loop
// collapse fails (a child entered other than through its header), and
// numberings exceeding maxPaths.
func NumberLoopPaths(g *Graph, l *Loop, maxPaths int) *PathNumbering {
	code := g.Fn.Code

	// Irregular control flow inside the body defeats path accounting.
	for _, b := range l.Body {
		switch code[g.Blocks[b].End-1].Op {
		case bytecode.OpThrow, bytecode.OpMissingReturn, bytecode.OpRet, bytecode.OpRetVal:
			return nil
		}
	}
	for _, h := range g.Fn.Handlers {
		if l.Contains(g.BlockOf(h.Target)) {
			return nil
		}
		for _, b := range l.Body {
			blk := g.Blocks[b]
			if blk.Start < h.To && h.From < blk.End {
				return nil
			}
		}
	}

	// superOf maps body blocks inside a direct child loop to the child's
	// index; attributed blocks (the loop's own) map to -1.
	superOf := map[int]int{}
	for _, b := range l.Body {
		superOf[b] = -1
	}
	for ci, c := range l.Children {
		for _, b := range c.Body {
			superOf[b] = ci
		}
	}
	backEdge := map[[2]int]bool{}
	for _, be := range l.BackEdges {
		backEdge[be] = true
	}
	superID := func(ci int) int { return len(g.Blocks) + ci }

	// dagTarget maps the concrete successor of an edge leaving node `from`
	// to its DAG node, or reports failure (child entered off-header).
	dagTarget := func(from, succ int) (int, bool) {
		if backEdge[[2]int{from, succ}] {
			return sinkBack, true
		}
		if !l.Contains(succ) {
			return sinkExit, true
		}
		if ci := superOf[succ]; ci >= 0 {
			if succ != l.Children[ci].Header {
				return 0, false // not single-entry; collapse unsound
			}
			return superID(ci), true
		}
		return succ, true
	}

	// Build the DAG's ordered, deduplicated out-edges per node.
	edges := map[int][]*dagEdge{}
	addEdge := func(from, to int, concrete [2]int) {
		for _, e := range edges[from] {
			if e.to == to {
				e.concrete = append(e.concrete, concrete)
				return
			}
		}
		edges[from] = append(edges[from], &dagEdge{to: to, concrete: [][2]int{concrete}})
	}
	for _, b := range l.Body {
		if superOf[b] >= 0 {
			continue
		}
		for _, s := range g.Blocks[b].Succs {
			to, ok := dagTarget(b, s)
			if !ok {
				return nil
			}
			addEdge(b, to, [2]int{b, s})
		}
	}
	for ci, c := range l.Children {
		for _, cb := range c.Body {
			for _, s := range g.Blocks[cb].Succs {
				if c.Contains(s) {
					continue
				}
				to, ok := dagTarget(cb, s)
				if !ok {
					return nil
				}
				addEdge(superID(ci), to, [2]int{cb, s})
			}
		}
	}

	// Topological order by DFS from the header; a cycle (irreducible
	// leftovers) or a dead end (a node with no way to finish the
	// iteration, e.g. an inner loop that never exits) falls back.
	const (
		unvisited = 0
		active    = 1
		done      = 2
	)
	state := map[int]int{sinkBack: done, sinkExit: done}
	var order []int
	ok := true
	var visit func(v int)
	visit = func(v int) {
		state[v] = active
		outs := edges[v]
		if len(outs) == 0 {
			ok = false
			return
		}
		for _, e := range outs {
			switch state[e.to] {
			case unvisited:
				visit(e.to)
				if !ok {
					return
				}
			case active:
				ok = false
				return
			}
		}
		state[v] = done
		order = append(order, v)
	}
	visit(l.Header)
	if !ok {
		return nil
	}

	// Ball–Larus increments in reverse topological order: numPaths(sink)=1;
	// numPaths(v) = Σ numPaths(target); inc(e_i) = Σ_{j<i} numPaths(target_j).
	numPaths := map[int]int{sinkBack: 1, sinkExit: 1}
	for _, v := range order { // order is already reverse-topological (post-order)
		total := 0
		for _, e := range edges[v] {
			e.inc = total
			total += numPaths[e.to]
			if total > maxPaths {
				return nil
			}
		}
		numPaths[v] = total
	}
	np := numPaths[l.Header]
	if np <= 0 || np > maxPaths {
		return nil
	}

	pn := &PathNumbering{
		NumPaths: np,
		Inc:      map[[2]int]int{},
		Back:     map[[2]int]int{},
		Exit:     map[[2]int]int{},
		Paths:    make([]PathSpec, np),
	}
	for _, outs := range edges {
		for _, e := range outs {
			for _, ce := range e.concrete {
				switch e.to {
				case sinkBack:
					pn.Back[ce] = e.inc
				case sinkExit:
					pn.Exit[ce] = e.inc
				default:
					if e.inc != 0 {
						pn.Inc[ce] = e.inc
					}
				}
			}
		}
	}

	// Enumerate the paths to collect each one's access sequence. A node
	// contributes its access pcs when the path enters it; supernodes
	// contribute nothing (their accesses belong to the child's numbering).
	accessPCs := func(v int) []int {
		if v >= len(g.Blocks) || superOf[v] >= 0 {
			return nil
		}
		blk := g.Blocks[v]
		var pcs []int
		for pc := blk.Start; pc < blk.End; pc++ {
			switch code[pc].Op {
			case bytecode.OpGetField, bytecode.OpPutField, bytecode.OpALoad, bytecode.OpAStore:
				pcs = append(pcs, pc)
			}
		}
		return pcs
	}
	filled := make([]bool, np)
	var walk func(v, id int, acc []int)
	walk = func(v, id int, acc []int) {
		if !ok {
			return
		}
		if v == sinkBack || v == sinkExit {
			if id < 0 || id >= np || filled[id] {
				ok = false // numbering bug: ids must be a bijection onto [0, np)
				return
			}
			filled[id] = true
			pn.Paths[id] = PathSpec{Back: v == sinkBack, AccessPCs: append([]int(nil), acc...)}
			return
		}
		for _, e := range edges[v] {
			walk(e.to, id+e.inc, append(acc, accessPCs(e.to)...))
		}
	}
	walk(l.Header, 0, accessPCs(l.Header))
	if !ok {
		return nil
	}
	for _, f := range filled {
		if !f {
			return nil
		}
	}
	return pn
}

// AllAccessPCs returns the sorted union of every path's access pcs — the
// loop's site set in first-static-occurrence (pc) order.
func (pn *PathNumbering) AllAccessPCs() []int {
	seen := map[int]bool{}
	var pcs []int
	for _, p := range pn.Paths {
		for _, pc := range p.AccessPCs {
			if !seen[pc] {
				seen[pc] = true
				pcs = append(pcs, pc)
			}
		}
	}
	sort.Ints(pcs)
	return pcs
}
