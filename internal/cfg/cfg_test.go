package cfg

import (
	"testing"
	"testing/quick"

	"algoprof/internal/mj/bytecode"
	"algoprof/internal/mj/compiler"
)

// compileFn compiles src and returns the named function.
func compileFn(t *testing.T, src, qualified string) *bytecode.Function {
	t.Helper()
	prog, err := compiler.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		if fn.Name() == qualified {
			return fn
		}
	}
	t.Fatalf("no function %s", qualified)
	return nil
}

func TestStraightLineSingleBlock(t *testing.T) {
	fn := compileFn(t, `
class Main { public static void main() { int a = 1; int b = a + 2; print(b); } }`,
		"Main.main")
	g := Build(fn)
	if len(g.Blocks) != 1 {
		t.Fatalf("%d blocks, want 1\n%s", len(g.Blocks), Dump(g))
	}
	if len(g.Blocks[0].Succs) != 0 {
		t.Error("single block should have no successors")
	}
}

func TestIfElseDiamond(t *testing.T) {
	fn := compileFn(t, `
class Main { public static void main() { int a = 1; if (a > 0) { a = 2; } else { a = 3; } print(a); } }`,
		"Main.main")
	g := Build(fn)
	// entry, then, else, join
	if len(g.Blocks) != 4 {
		t.Fatalf("%d blocks, want 4\n%s", len(g.Blocks), Dump(g))
	}
	entry := g.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry has %d succs, want 2", len(entry.Succs))
	}
	idom := Dominators(g)
	join := g.BlockOf(len(fn.Code) - 1)
	if idom[join] != entry.Index {
		t.Errorf("join idom = B%d, want entry B%d", idom[join], entry.Index)
	}
}

func TestWhileLoopDetection(t *testing.T) {
	fn := compileFn(t, `
class Main { public static void main() { int i = 0; while (i < 10) { i++; } print(i); } }`,
		"Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 0)
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1\n%s", len(loops), Dump(g))
	}
	l := loops[0]
	if len(l.BackEdges) != 1 {
		t.Errorf("%d back edges, want 1", len(l.BackEdges))
	}
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("depth=%d parent=%v", l.Depth, l.Parent)
	}
	// Header must dominate every body block.
	idom := Dominators(g)
	for _, b := range l.Body {
		if !Dominates(idom, l.Header, b) {
			t.Errorf("header B%d does not dominate body block B%d", l.Header, b)
		}
	}
}

func TestNestedLoopForest(t *testing.T) {
	fn := compileFn(t, `
class Main {
  public static void main() {
    for (int o = 0; o < 3; o++) {
      for (int i = 0; i < o; i++) { print(i); }
    }
  }
}`, "Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 10)
	if len(loops) != 2 {
		t.Fatalf("%d loops, want 2\n%s", len(loops), Dump(g))
	}
	if loops[0].ID != 10 || loops[1].ID != 11 {
		t.Errorf("ids: %d %d", loops[0].ID, loops[1].ID)
	}
	var outer, inner *Loop
	for _, l := range loops {
		if l.Parent == nil {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("expected one outer and one inner loop")
	}
	if inner.Parent != outer || inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("nesting wrong: inner.parent=%v depths %d/%d", inner.Parent, inner.Depth, outer.Depth)
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Error("children wrong")
	}
	for _, b := range inner.Body {
		if !outer.Contains(b) {
			t.Errorf("inner body block B%d not in outer body", b)
		}
	}
}

func TestTripleNesting(t *testing.T) {
	fn := compileFn(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int a = 0; a < 2; a++) {
      for (int b = 0; b < 2; b++) {
        for (int c = 0; c < 2; c++) { s++; }
      }
    }
    print(s);
  }
}`, "Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 0)
	if len(loops) != 3 {
		t.Fatalf("%d loops, want 3", len(loops))
	}
	depths := map[int]int{}
	for _, l := range loops {
		depths[l.Depth]++
	}
	if depths[1] != 1 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("depth histogram %v, want one loop per depth 1..3", depths)
	}
}

func TestSequentialLoopsNotNested(t *testing.T) {
	fn := compileFn(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 5; i++) { s++; }
    for (int j = 0; j < 5; j++) { s--; }
    print(s);
  }
}`, "Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 0)
	if len(loops) != 2 {
		t.Fatalf("%d loops, want 2", len(loops))
	}
	for _, l := range loops {
		if l.Parent != nil || l.Depth != 1 {
			t.Errorf("sequential loops must be siblings at depth 1")
		}
	}
}

func TestLoopWithBreakAndContinue(t *testing.T) {
	fn := compileFn(t, `
class Main {
  public static void main() {
    int s = 0;
    for (int i = 0; i < 100; i++) {
      if (i % 2 == 0) { continue; }
      if (i > 10) { break; }
      s = s + i;
    }
    print(s);
  }
}`, "Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 0)
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1 (continue adds a back-edge path, break an exit)", len(loops))
	}
}

func TestWhileTrueLoop(t *testing.T) {
	fn := compileFn(t, `
class Main {
  public static void main() {
    int i = 0;
    while (true) {
      i++;
      if (i > 3) { break; }
    }
    print(i);
  }
}`, "Main.main")
	g := Build(fn)
	loops := NaturalLoops(g, 0)
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
}

func TestEveryInstructionInExactlyOneBlock(t *testing.T) {
	fn := compileFn(t, `
class Main {
  static int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      if (i % 3 == 0) { s = s + i; } else { s = s - 1; }
      while (s > 100) { s = s / 2; }
    }
    return s;
  }
  public static void main() { print(f(50)); }
}`, "Main.f")
	g := Build(fn)
	covered := make([]bool, len(fn.Code))
	for _, b := range g.Blocks {
		for i := b.Start; i < b.End; i++ {
			if covered[i] {
				t.Errorf("instruction %d in two blocks", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Errorf("instruction %d not in any block", i)
		}
	}
}

func TestDominatorBasicProperties(t *testing.T) {
	fn := compileFn(t, `
class Main {
  static int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
      if (i % 2 == 0) { s++; } else { s--; }
    }
    return s;
  }
  public static void main() { print(f(5)); }
}`, "Main.f")
	g := Build(fn)
	idom := Dominators(g)
	if idom[g.Entry()] != g.Entry() {
		t.Error("entry must be its own idom")
	}
	for _, b := range g.Blocks {
		if idom[b.Index] == -1 {
			continue // unreachable
		}
		if !Dominates(idom, g.Entry(), b.Index) {
			t.Errorf("entry must dominate reachable block B%d", b.Index)
		}
	}
}

// Property: for randomly shaped (but structured) nests of loops and ifs,
// the number of detected natural loops equals the number of source loops,
// and loop bodies are closed under the nesting relation.
func TestLoopDetectionCountProperty(t *testing.T) {
	gen := func(shape []bool, depth int) (string, int) {
		// shape bits choose loop vs if at each step; depth caps nesting.
		body := "s++;"
		count := 0
		for i := len(shape) - 1; i >= 0; i-- {
			if shape[i] && count+1 <= depth {
				body = "for (int v" + string(rune('a'+i)) + " = 0; v" + string(rune('a'+i)) + " < 2; v" + string(rune('a'+i)) + "++) { " + body + " }"
				count++
			} else {
				body = "if (s < 1000) { " + body + " }"
			}
		}
		return body, count
	}
	f := func(shape []bool) bool {
		if len(shape) > 6 {
			shape = shape[:6]
		}
		body, want := gen(shape, 6)
		src := `
class Main {
  public static void main() {
    int s = 0;
    ` + body + `
    print(s);
  }
}`
		prog, err := compiler.CompileSource(src)
		if err != nil {
			return false
		}
		var fn *bytecode.Function
		for _, fc := range prog.Funcs {
			if fc.Name() == "Main.main" {
				fn = fc
			}
		}
		g := Build(fn)
		loops := NaturalLoops(g, 0)
		if len(loops) != want {
			return false
		}
		// Bodies of nested loops are subsets of their parents.
		for _, l := range loops {
			if l.Parent == nil {
				continue
			}
			for _, b := range l.Body {
				if !l.Parent.Contains(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
