// Package cfg builds control-flow graphs over MJ bytecode and runs the
// classic analyses the instrumenter needs: dominator computation and
// natural-loop detection. Loops found here become the loop nodes of the
// algorithmic profiler's repetition tree, exactly as AlgoProf detects
// loops in Java bytecode CFGs.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"algoprof/internal/mj/bytecode"
)

// Block is a basic block: a maximal straight-line instruction sequence.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Start and End delimit the instruction range [Start, End) in the
	// function's code.
	Start, End int
	// Succs and Preds are edges by block index.
	Succs []int
	Preds []int
}

// Graph is the control-flow graph of one function.
type Graph struct {
	Fn     *bytecode.Function
	Blocks []*Block
	// blockAt maps an instruction index to its containing block index.
	blockAt []int
}

// BlockOf returns the index of the block containing instruction pc.
func (g *Graph) BlockOf(pc int) int { return g.blockAt[pc] }

// Entry returns the entry block index (always 0).
func (g *Graph) Entry() int { return 0 }

// Build constructs the CFG of fn.
func Build(fn *bytecode.Function) *Graph {
	code := fn.Code
	n := len(code)

	// 1. Find leaders: instruction 0, jump targets, and instructions
	// following jumps/terminators.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for i, in := range code {
		if in.Op.IsJump() {
			leader[in.A] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op.IsTerminator() && i+1 < n {
			leader[i+1] = true
		}
	}
	// Exception handler entry points start blocks too.
	for _, h := range fn.Handlers {
		leader[h.Target] = true
	}

	// 2. Create blocks.
	g := &Graph{Fn: fn, blockAt: make([]int, n)}
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		b := &Block{Index: len(g.Blocks), Start: i, End: j}
		g.Blocks = append(g.Blocks, b)
		for k := i; k < j; k++ {
			g.blockAt[k] = b.Index
		}
		i = j
	}

	// 3. Add edges.
	addEdge := func(from, to int) {
		fb, tb := g.Blocks[from], g.Blocks[to]
		fb.Succs = append(fb.Succs, tb.Index)
		tb.Preds = append(tb.Preds, fb.Index)
	}
	for _, b := range g.Blocks {
		last := code[b.End-1]
		switch {
		case last.Op == bytecode.OpJmp:
			addEdge(b.Index, g.blockAt[last.A])
		case last.Op == bytecode.OpJmpIfFalse || last.Op == bytecode.OpJmpIfTrue:
			addEdge(b.Index, g.blockAt[last.A])
			if b.End < n {
				addEdge(b.Index, g.blockAt[b.End])
			}
		case last.Op.IsTerminator():
			// Ret/RetVal/MissingReturn/Throw: no normal successors.
		default:
			if b.End < n {
				addEdge(b.Index, g.blockAt[b.End])
			}
		}
	}
	// One factored exception edge per handler, from the start of its
	// guarded range, so handler code is reachable and loops inside
	// handlers are detected. (Exceptional exits from loops are not probe
	// sites; the VM emits LoopExit events during unwinding instead.)
	for _, h := range fn.Handlers {
		from, to := g.blockAt[h.From], g.blockAt[h.Target]
		dup := false
		for _, s := range g.Blocks[from].Succs {
			if s == to {
				dup = true
			}
		}
		if !dup {
			addEdge(from, to)
		}
	}
	return g
}

// Dominators computes the immediate dominator of every reachable block
// using the Cooper–Harvey–Kennedy iterative algorithm. idom[entry] = entry;
// unreachable blocks have idom -1.
func Dominators(g *Graph) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}

	// Reverse postorder over reachable blocks.
	rpo := ReversePostorder(g)
	order := make([]int, n) // block -> rpo position
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}

	idom[g.Entry()] = g.Entry()
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry() {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] == -1 {
					continue // not yet processed or unreachable
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ReversePostorder returns reachable block indices in reverse postorder.
func ReversePostorder(g *Graph) []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(b int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	if len(g.Blocks) > 0 {
		dfs(g.Entry())
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominates reports whether block a dominates block b under idom.
func Dominates(idom []int, a, b int) bool {
	if idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == idom[b] { // entry
			return false
		}
		b = idom[b]
	}
}

// Loop is a natural loop.
type Loop struct {
	// ID is assigned by the caller (unique across a program).
	ID int
	// Header is the loop header block.
	Header int
	// BackEdges are the (tail, header) edges that define the loop.
	BackEdges [][2]int
	// Body is the set of blocks in the loop (including the header),
	// sorted ascending.
	Body []int
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the directly nested loops.
	Children []*Loop
	// Depth is the nesting depth (outermost = 1).
	Depth int
}

// Contains reports whether block b is in the loop body.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Body, b)
	return i < len(l.Body) && l.Body[i] == b
}

// NaturalLoops finds all natural loops of g: for every back edge t→h where
// h dominates t, the loop body is h plus all blocks that reach t without
// passing through h. Back edges sharing a header are merged into one loop,
// and the loop forest (nesting) is derived from body containment.
//
// The result is sorted by header block and loops are assigned ids starting
// at firstID.
func NaturalLoops(g *Graph, firstID int) []*Loop {
	idom := Dominators(g)
	byHeader := map[int]*Loop{}

	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if Dominates(idom, s, b.Index) {
				// b -> s is a back edge with header s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s}
					byHeader[s] = l
				}
				l.BackEdges = append(l.BackEdges, [2]int{b.Index, s})
			}
		}
	}

	var loops []*Loop
	for _, l := range byHeader {
		body := map[int]bool{l.Header: true}
		var stack []int
		for _, be := range l.BackEdges {
			t := be[0]
			if !body[t] {
				body[t] = true
				stack = append(stack, t)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Blocks[x].Preds {
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		for b := range body {
			l.Body = append(l.Body, b)
		}
		sort.Ints(l.Body)
		loops = append(loops, l)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].Header < loops[j].Header })
	for i, l := range loops {
		l.ID = firstID + i
	}

	// Nesting: parent is the smallest strictly-containing loop.
	for _, l := range loops {
		var best *Loop
		for _, o := range loops {
			if o == l || len(o.Body) <= len(l.Body) {
				continue
			}
			if !o.Contains(l.Header) {
				continue
			}
			contained := true
			for _, b := range l.Body {
				if !o.Contains(b) {
					contained = false
					break
				}
			}
			if contained && (best == nil || len(o.Body) < len(best.Body)) {
				best = o
			}
		}
		if best != nil {
			l.Parent = best
			best.Children = append(best.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	return loops
}

// Dump renders the CFG for debugging.
func Dump(g *Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s: %d blocks\n", g.Fn.Name(), len(g.Blocks))
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "  B%d [%d,%d) -> %v\n", b.Index, b.Start, b.End, b.Succs)
	}
	return sb.String()
}
