package cfg

import (
	"testing"

	"algoprof/internal/mj/bytecode"
)

// numberFirstLoop builds the CFG of the named function, finds its loops,
// and numbers the outermost one.
func loopsOf(t *testing.T, src, qualified string) (*Graph, []*Loop) {
	t.Helper()
	fn := compileFn(t, src, qualified)
	g := Build(fn)
	return g, NaturalLoops(g, 0)
}

// checkNumbering validates the structural invariants every numbering must
// satisfy: path ids form a bijection, every back edge and exit edge got a
// final increment, and back-path count matches the Back flags.
func checkNumbering(t *testing.T, g *Graph, l *Loop, pn *PathNumbering) {
	t.Helper()
	if pn.NumPaths != len(pn.Paths) {
		t.Fatalf("NumPaths %d != len(Paths) %d", pn.NumPaths, len(pn.Paths))
	}
	for _, be := range l.BackEdges {
		if _, ok := pn.Back[be]; !ok {
			t.Errorf("back edge %v has no final increment", be)
		}
	}
	exits := 0
	for _, b := range l.Body {
		for _, s := range g.Blocks[b].Succs {
			if !l.Contains(s) {
				exits++
				if _, ok := pn.Exit[[2]int{b, s}]; !ok {
					t.Errorf("exit edge %v has no final increment", [2]int{b, s})
				}
			}
		}
	}
	if exits == 0 {
		t.Error("loop has no exit edges")
	}
	backPaths := 0
	for _, p := range pn.Paths {
		if p.Back {
			backPaths++
		}
	}
	if backPaths == 0 {
		t.Error("no back-terminating paths")
	}
}

func TestNumberSimpleWhileLoop(t *testing.T) {
	g, loops := loopsOf(t, `
class P { int v; }
class Main { public static void main() {
  P p = new P();
  int i = 0;
  while (i < 10) { p.v = p.v + 1; i++; }
  print(p.v);
} }`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	pn := NumberLoopPaths(g, loops[0], 256)
	if pn == nil {
		t.Fatal("simple while loop fell back")
	}
	checkNumbering(t, g, loops[0], pn)
	// One body path (back) and one exit path.
	if pn.NumPaths != 2 {
		t.Fatalf("NumPaths = %d, want 2", pn.NumPaths)
	}
	var back *PathSpec
	for i := range pn.Paths {
		if pn.Paths[i].Back {
			back = &pn.Paths[i]
		}
	}
	// Body does one getfield and one putfield on p.
	if len(back.AccessPCs) != 2 {
		t.Fatalf("back path has %d access pcs, want 2: %v", len(back.AccessPCs), back.AccessPCs)
	}
	code := g.Fn.Code
	if code[back.AccessPCs[0]].Op != bytecode.OpGetField || code[back.AccessPCs[1]].Op != bytecode.OpPutField {
		t.Errorf("access pcs are %s, %s; want getfield, putfield",
			code[back.AccessPCs[0]].Op, code[back.AccessPCs[1]].Op)
	}
}

func TestNumberIfElseInLoop(t *testing.T) {
	g, loops := loopsOf(t, `
class P { int a; int b; }
class Main { public static void main() {
  P p = new P();
  for (int i = 0; i < 8; i++) {
    if (i > 3) { p.a = i; } else { p.b = i; }
  }
} }`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	pn := NumberLoopPaths(g, loops[0], 256)
	if pn == nil {
		t.Fatal("if/else loop fell back")
	}
	checkNumbering(t, g, loops[0], pn)
	// Two back paths (then / else arms, one putfield each) plus one exit.
	if pn.NumPaths != 3 {
		t.Fatalf("NumPaths = %d, want 3", pn.NumPaths)
	}
	backAccesses := map[int]int{}
	for _, p := range pn.Paths {
		if p.Back {
			backAccesses[len(p.AccessPCs)]++
		}
	}
	if backAccesses[1] != 2 {
		t.Errorf("back paths by access count = %v, want two paths with 1 access", backAccesses)
	}
}

func TestNumberNestedLoops(t *testing.T) {
	g, loops := loopsOf(t, `
class P { int v; }
class Main { public static void main() {
  P p = new P();
  for (int i = 0; i < 4; i++) {
    p.v = i;
    for (int j = 0; j < i; j++) { p.v = p.v + j; }
  }
} }`, "Main.main")
	if len(loops) != 2 {
		t.Fatalf("%d loops, want 2", len(loops))
	}
	var outer, inner *Loop
	for _, l := range loops {
		if l.Parent == nil {
			outer = l
		} else {
			inner = l
		}
	}
	opn := NumberLoopPaths(g, outer, 256)
	if opn == nil {
		t.Fatal("outer loop fell back")
	}
	checkNumbering(t, g, outer, opn)
	ipn := NumberLoopPaths(g, inner, 256)
	if ipn == nil {
		t.Fatal("inner loop fell back")
	}
	checkNumbering(t, g, inner, ipn)

	// The outer body path passes through the collapsed inner loop; its
	// accesses are only the outer putfield, never the inner's.
	for _, p := range opn.Paths {
		if !p.Back {
			continue
		}
		if len(p.AccessPCs) != 1 || g.Fn.Code[p.AccessPCs[0]].Op != bytecode.OpPutField {
			t.Errorf("outer back path accesses = %v, want exactly the outer putfield", p.AccessPCs)
		}
	}
	// Inner back path: getfield + putfield.
	for _, p := range ipn.Paths {
		if p.Back && len(p.AccessPCs) != 2 {
			t.Errorf("inner back path has %d accesses, want 2", len(p.AccessPCs))
		}
	}
}

func TestNumberLoopWithBreak(t *testing.T) {
	g, loops := loopsOf(t, `
class P { int v; }
class Main { public static void main() {
  P p = new P();
  for (int i = 0; i < 10; i++) {
    if (p.v > 5) { break; }
    p.v = p.v + i;
  }
} }`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	pn := NumberLoopPaths(g, loops[0], 256)
	if pn == nil {
		t.Fatal("break loop fell back")
	}
	checkNumbering(t, g, loops[0], pn)
	// Paths: header-exit, break-exit, full-body-back.
	backs, exits := 0, 0
	for _, p := range pn.Paths {
		if p.Back {
			backs++
		} else {
			exits++
		}
	}
	if backs != 1 || exits != 2 {
		t.Errorf("backs=%d exits=%d, want 1 and 2", backs, exits)
	}
}

func TestThrowEdgeCountsAsExit(t *testing.T) {
	// A throwing block can never reach the back edge, so it is outside the
	// natural-loop body and the edge to it is an ordinary loop exit: the
	// iteration's partial path ends there. (The instrumenter separately
	// refuses loops whose lexical scope contains such blocks.)
	g, loops := loopsOf(t, `
class Boom { }
class Main { public static void main() {
  int n = 0;
  for (int i = 0; i < 3; i++) {
    if (i == 2) { throw new Boom(); }
    n = n + i;
  }
} }`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	pn := NumberLoopPaths(g, loops[0], 256)
	if pn == nil {
		t.Fatal("loop with out-of-body throw fell back")
	}
	checkNumbering(t, g, loops[0], pn)
	// Header exit, throw exit, and the full-iteration back path.
	if pn.NumPaths != 3 || len(pn.Exit) != 2 {
		t.Errorf("NumPaths=%d exits=%d, want 3 and 2", pn.NumPaths, len(pn.Exit))
	}
}

func TestHandlerOverlapFallsBack(t *testing.T) {
	g, loops := loopsOf(t, `
class Boom { }
class Main {
  public static void main() {
    int n = 0;
    for (int i = 0; i < 3; i++) {
      try { n = mightThrow(i); } catch (Boom b) { n = 0; }
    }
  }
  static int mightThrow(int i) {
    if (i == 2) { throw new Boom(); }
    return i;
  }
}`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	if pn := NumberLoopPaths(g, loops[0], 256); pn != nil {
		t.Error("loop with handler-guarded body should fall back")
	}
}

func TestMaxPathsCapFallsBack(t *testing.T) {
	g, loops := loopsOf(t, `
class P { int a; }
class Main { public static void main() {
  P p = new P();
  for (int i = 0; i < 8; i++) {
    if (i > 1) { p.a = 1; } else { p.a = 2; }
    if (i > 2) { p.a = 3; } else { p.a = 4; }
    if (i > 3) { p.a = 5; } else { p.a = 6; }
  }
} }`, "Main.main")
	if len(loops) != 1 {
		t.Fatalf("%d loops, want 1", len(loops))
	}
	pn := NumberLoopPaths(g, loops[0], 256)
	if pn == nil {
		t.Fatal("three-diamond loop fell back at 256")
	}
	// 2^3 back paths + 1 exit path.
	if pn.NumPaths != 9 {
		t.Errorf("NumPaths = %d, want 9", pn.NumPaths)
	}
	if capped := NumberLoopPaths(g, loops[0], 4); capped != nil {
		t.Error("numbering above maxPaths should fall back")
	}
}
