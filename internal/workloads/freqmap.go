package workloads

// FreqMap is a small but realistic multi-algorithm application: it reads
// datasets from external input, counts value frequencies in a chained hash
// map (a bucket array of linked Entry chains — a mixed array + recursive
// structure input), finds the most frequent value with a linear scan, and
// writes results to external output. Its algorithmic profile contains an
// Input algorithm, a Construction/Modification of the Entry structure,
// array traffic on the bucket array, a Traversal for the scan, and an
// Output algorithm.
//
// The input stream layout is: R (number of rounds), then per round
// N followed by N values. Generate it with FreqMapInput.
const FreqMap = `
class Entry {
  Entry next;
  int key;
  int count;
  Entry(int key) { this.key = key; count = 1; }
}
class FreqTable {
  Entry[] buckets;
  int nbuckets;
  FreqTable(int nbuckets) {
    this.nbuckets = nbuckets;
    buckets = new Entry[nbuckets];
  }
  void add(int key) {
    int h = hash(key);
    Entry e = buckets[h];
    while (e != null) {
      if (e.key == key) {
        e.count = e.count + 1;
        return;
      }
      e = e.next;
    }
    Entry fresh = new Entry(key);
    fresh.next = buckets[h];
    buckets[h] = fresh;
  }
  int hash(int key) {
    int h = key % nbuckets;
    if (h < 0) { h = h + nbuckets; }
    return h;
  }
  int mostFrequent() {
    int best = 0;
    int bestCount = 0;
    for (int b = 0; b < buckets.length; b++) {
      Entry e = buckets[b];
      while (e != null) {
        if (e.count > bestCount) {
          bestCount = e.count;
          best = e.key;
        }
        e = e.next;
      }
    }
    return best;
  }
}
class Main {
  public static void main() {
    int rounds = readInput();
    for (int r = 0; r < rounds; r++) {
      int n = readInput();
      FreqTable table = new FreqTable(17);
      for (int i = 0; i < n; i++) {
        table.add(readInput());
      }
      writeOutput(table.mostFrequent());
    }
  }
}`

// FreqMapInput generates an input stream for FreqMap: `rounds` datasets of
// sizes step, 2·step, ..., rounds·step, with values drawn from a skewed
// deterministic sequence so each round has a clear mode.
func FreqMapInput(rounds, step int) []int64 {
	var in []int64
	in = append(in, int64(rounds))
	state := uint64(0x9e3779b97f4a7c15)
	next := func(bound int) int64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int64(state % uint64(bound))
	}
	for r := 1; r <= rounds; r++ {
		n := r * step
		in = append(in, int64(n))
		for i := 0; i < n; i++ {
			if i%3 == 0 {
				in = append(in, 7) // the mode
			} else {
				in = append(in, next(50))
			}
		}
	}
	return in
}
