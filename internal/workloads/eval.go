package workloads

import (
	"fmt"
	"strings"

	"algoprof"
)

// RowResult is the evaluated I/S/G verdict of one Table 1 row, mirroring
// the paper's columns.
type RowResult struct {
	// InputsOK: every expected input label was detected (column I).
	InputsOK      bool
	MissingLabels []string
	// SizeOK: the largest matching input measured the expected size
	// (column S).
	SizeOK   bool
	WantSize int
	GotSize  int
	// GroupOK: every expected pair grouped and every expected non-pair
	// stayed separate.
	GroupOK     bool
	GroupDetail string
	// G is the resulting Table 1 verdict: the paper's verdict when the
	// grouping expectation holds, "?" otherwise.
	G string
}

// OK reports whether all three columns check out.
func (r RowResult) OK() bool { return r.InputsOK && r.SizeOK && r.GroupOK }

// EvaluateRow profiles one Table 1 program at the given structure size and
// checks the paper's I/S/G expectations.
func EvaluateRow(row Row, size int, seed uint64) (RowResult, error) {
	res := RowResult{G: "?"}
	prof, err := algoprof.Run(row.Source(size), algoprof.Config{Seed: seed})
	if err != nil {
		return res, fmt.Errorf("%s: %w", row.Name(), err)
	}

	p, _ := prof.Raw()
	reg := p.Registry()

	// Column I: expected labels detected.
	labels := map[string]bool{}
	maxMatching := 0
	for _, id := range reg.CanonicalIDs() {
		in := reg.Input(id)
		labels[in.Label()] = true
		for _, want := range row.WantLabels {
			if strings.Contains(in.Label(), want) && in.MaxSize > maxMatching {
				maxMatching = in.MaxSize
			}
		}
	}
	res.InputsOK = true
	for _, want := range row.WantLabels {
		found := false
		for l := range labels {
			if strings.Contains(l, want) {
				found = true
				break
			}
		}
		if !found {
			res.InputsOK = false
			res.MissingLabels = append(res.MissingLabels, want)
		}
	}

	// Column S: size of the largest matching input.
	res.WantSize = row.WantMaxSize(size)
	res.GotSize = maxMatching
	res.SizeOK = res.GotSize == res.WantSize

	// Column G: grouping expectations.
	grouped := func(a, b string) bool {
		for _, alg := range prof.Algorithms {
			hasA, hasB := false, false
			for _, n := range alg.Nodes {
				if n == a {
					hasA = true
				}
				if n == b {
					hasB = true
				}
			}
			if hasA && hasB {
				return true
			}
			if hasA || hasB {
				return false
			}
		}
		return false
	}
	res.GroupOK = true
	for _, pair := range row.GroupPairs {
		if !grouped(pair[0], pair[1]) {
			res.GroupOK = false
			res.GroupDetail += fmt.Sprintf("want %s + %s grouped; ", pair[0], pair[1])
		}
	}
	for _, pair := range row.SeparatePairs {
		if grouped(pair[0], pair[1]) {
			res.GroupOK = false
			res.GroupDetail += fmt.Sprintf("want %s / %s separate; ", pair[0], pair[1])
		}
	}
	if res.GroupOK {
		res.G = row.PaperG
	}
	return res, nil
}
