package workloads

import (
	"strings"
	"testing"

	"algoprof"
)

func TestTable1AllRows(t *testing.T) {
	for _, row := range Table1() {
		row := row
		t.Run(row.Name(), func(t *testing.T) {
			res, err := EvaluateRow(row, 24, 7)
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			if !res.InputsOK {
				t.Errorf("I: missing input labels %v", res.MissingLabels)
			}
			if !res.SizeOK {
				t.Errorf("S: size = %d, want %d", res.GotSize, res.WantSize)
			}
			if !res.GroupOK {
				t.Errorf("G: %s", res.GroupDetail)
			}
			if res.OK() && res.G != row.PaperG {
				t.Errorf("verdict %q, want paper's %q", res.G, row.PaperG)
			}
		})
	}
}

func TestTable1HasEighteenRows(t *testing.T) {
	rows := Table1()
	if len(rows) != 18 {
		t.Fatalf("Table 1 has %d rows, want 18", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		if seen[r.Name()] {
			t.Errorf("duplicate row %s", r.Name())
		}
		seen[r.Name()] = true
	}
	// Paper's distribution of G verdicts: 10 x, 6 *, 2 -.
	hist := map[string]int{}
	for _, r := range rows {
		hist[r.PaperG]++
	}
	if hist["x"] != 10 || hist["*"] != 6 || hist["-"] != 2 {
		t.Errorf("G verdict histogram %v, want 10/6/2", hist)
	}
}

func TestRunningExampleVariantsRun(t *testing.T) {
	for _, order := range []Order{Random, Sorted, Reversed} {
		t.Run(order.String(), func(t *testing.T) {
			prof, err := algoprof.Run(RunningExample(order, 20, 4, 1), algoprof.Config{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			// The sort algorithm must exist. On random and reversed inputs
			// it swaps links (Modification); on pre-sorted inputs it never
			// writes, so it is dynamically a Traversal.
			sortAlg := prof.Find("List.sort/loop1")
			if sortAlg == nil {
				t.Fatal("no algorithm rooted at List.sort/loop1")
			}
			wantClass := "Modification of a Node-based recursive structure"
			if order == Sorted {
				wantClass = "Traversal of a Node-based recursive structure"
			}
			if !strings.Contains(sortAlg.Description, wantClass) {
				t.Errorf("sort classified as %q, want %q", sortAlg.Description, wantClass)
			}
			if len(sortAlg.Nodes) != 2 {
				t.Errorf("sort algorithm spans %v, want both sort loops", sortAlg.Nodes)
			}
		})
	}
}

func TestRunningExampleConstructClassification(t *testing.T) {
	prof, err := algoprof.Run(RunningExample(Random, 16, 3, 1), algoprof.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	constructAlg := prof.Find("Main.construct/loop1")
	if constructAlg == nil {
		t.Fatal("no construct algorithm")
	}
	if !strings.Contains(constructAlg.Description, "Construction of a Node-based recursive structure") {
		t.Errorf("construct classified as %q", constructAlg.Description)
	}
	// The harness loops are data-structure-less (Figure 3).
	for _, name := range []string{"Main.measure/loop1", "Main.measure/loop2"} {
		alg := prof.Find(name)
		if alg == nil {
			t.Fatalf("no algorithm %s", name)
		}
		if !alg.DataStructureLess {
			t.Errorf("%s should be data-structure-less, got %q", name, alg.Description)
		}
	}
}

func TestFunctionalSortRuns(t *testing.T) {
	prof, err := algoprof.Run(FunctionalSort(Random, 16, 3, 1), algoprof.Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sortAlg := prof.Find("FSort.sort/recursion")
	if sortAlg == nil {
		names := []string{}
		for _, a := range prof.Algorithms {
			names = append(names, a.Name)
		}
		t.Fatalf("no FSort.sort recursion algorithm; have %v", names)
	}
	// The functional sort allocates fresh nodes: Construction.
	if !strings.Contains(sortAlg.Description, "FNode-based recursive structure") {
		t.Errorf("description %q", sortAlg.Description)
	}
}

func TestArrayListGrowRuns(t *testing.T) {
	for _, naive := range []bool{true, false} {
		prof, err := algoprof.Run(ArrayListGrow(naive, 24, 4, 1), algoprof.Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Figure 4's lower algorithm: the append loop grouped with the
		// grow loop.
		appendAlg := prof.Find("Main.testForSize/loop1")
		if appendAlg == nil {
			t.Fatal("no append algorithm")
		}
		hasGrow := false
		for _, n := range appendAlg.Nodes {
			if n == "ArrayList.growIfFull/loop1" {
				hasGrow = true
			}
		}
		if !hasGrow {
			t.Errorf("naive=%v: append and grow loops not grouped: %v", naive, appendAlg.Nodes)
		}
		// Figure 4's top algorithm: the harness, separate.
		harness := prof.Find("Main.main/loop1")
		if harness == nil {
			t.Fatal("no harness algorithm")
		}
		for _, n := range harness.Nodes {
			if n == "Main.testForSize/loop1" {
				t.Error("harness must not absorb the append loop")
			}
		}
	}
}

func TestListing3CombinedCost(t *testing.T) {
	prof, err := algoprof.Run(Listing3, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	alg := prof.Find("Main.main/loop1")
	if alg == nil {
		t.Fatal("no nest algorithm")
	}
	if alg.TotalSteps != 6 {
		t.Errorf("combined steps = %d, want 6", alg.TotalSteps)
	}
}

func TestListing4SizesMeasuredAtExit(t *testing.T) {
	prof, err := algoprof.Run(Listing4(15), algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := prof.Raw()
	reg := p.Registry()
	var structureSizes []int
	for _, id := range reg.CanonicalIDs() {
		in := reg.Input(id)
		if strings.Contains(in.Label(), "Node") {
			structureSizes = append(structureSizes, in.MaxSize)
		}
	}
	if len(structureSizes) != 2 {
		t.Fatalf("want 2 Node structures (loop + recursion), got %v", structureSizes)
	}
	for _, s := range structureSizes {
		if s != 15 {
			t.Errorf("constructed list size = %d, want 15", s)
		}
	}
}

func TestListing5NotGrouped(t *testing.T) {
	prof, err := algoprof.Run(Listing5, algoprof.Config{})
	if err != nil {
		t.Fatal(err)
	}
	outer := prof.Find("Main.main/loop1")
	if outer == nil {
		t.Fatal("no outer loop algorithm")
	}
	if !outer.DataStructureLess {
		t.Error("Listing 5's outer loop must be data-structure-less")
	}
	for _, n := range outer.Nodes {
		if n == "Main.main/loop2" {
			t.Error("Listing 5's nest must not group")
		}
	}
}

func TestFreqMapApplication(t *testing.T) {
	prof, err := algoprof.Run(FreqMap, algoprof.Config{Input: FreqMapInput(8, 6)})
	if err != nil {
		t.Fatal(err)
	}
	// The expected answers: value 7 is the mode of every round.
	if len(prof.Output) != 8 {
		t.Fatalf("outputs = %v", prof.Output)
	}
	for _, o := range prof.Output {
		if o != "7" {
			t.Errorf("mode = %s, want 7", o)
		}
	}

	// The reader loop consumes external input.
	fill := prof.Find("Main.main/loop2")
	if fill == nil {
		t.Fatal("no fill loop algorithm")
	}
	if !strings.Contains(fill.Description, "Input algorithm") {
		t.Errorf("fill loop: %q (want Input algorithm)", fill.Description)
	}
	// It also builds Entry chains and stores into the bucket array.
	if !strings.Contains(fill.Description, "Entry-based recursive structure") {
		t.Errorf("fill loop should construct the Entry structure: %q", fill.Description)
	}

	// The scan traverses buckets and chains without writing.
	scan := prof.Find("FreqTable.mostFrequent/loop1")
	if scan == nil {
		t.Fatal("no scan algorithm")
	}
	if !strings.Contains(scan.Description, "Traversal") {
		t.Errorf("scan: %q", scan.Description)
	}

	// The harness loop produces external output.
	harness := prof.Find("Main.main/loop1")
	if harness == nil {
		t.Fatal("no harness algorithm")
	}
	if !strings.Contains(harness.Description, "Output algorithm") {
		t.Errorf("harness: %q", harness.Description)
	}
}

func TestFunctionalSortAllOrders(t *testing.T) {
	for _, order := range []Order{Random, Sorted, Reversed} {
		t.Run(order.String(), func(t *testing.T) {
			// The check(isSorted(...)) inside the workload validates the
			// sort; profiling must complete without errors.
			if _, err := algoprof.Run(FunctionalSort(order, 14, 3, 1), algoprof.Config{Seed: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunningExampleCheckedValidatesSort(t *testing.T) {
	prof, err := algoprof.Run(RunningExampleChecked(Random, 18, 3, 2), algoprof.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The checked variant adds the isSorted loop: six loops total.
	p, _ := prof.Raw()
	loops := 0
	var walk func(n interface{ Children() []interface{} })
	_ = walk
	tree := prof.Tree()
	for _, line := range strings.Split(tree, "\n") {
		if strings.Contains(line, "/loop") && strings.Contains(line, "[invocations") {
			loops++
		}
	}
	if loops != 6 {
		t.Errorf("checked variant has %d loops, want 6 (5 + isSorted)\n%s", loops, tree)
	}
	_ = p
}
