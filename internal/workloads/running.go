// Package workloads holds the paper's example programs ported to MJ: the
// insertion-sort running example (Listings 1 and 2) with the three input
// distributions of Figure 1, the functional/recursive/immutable insertion
// sort of §4.3, the growing array-backed list of Listing 6 (Figures 4 and
// 5), the cost-combination and construction snippets of Listings 3 and 4,
// the ungrouped array nest of Listing 5, and the eighteen data-structure
// programs of Table 1.
package workloads

import "fmt"

// Order is the input distribution for the running example (Figure 1).
type Order int

// Input distributions.
const (
	Random   Order = iota // Figure 1(a): random values
	Sorted                // Figure 1(b): already sorted
	Reversed              // Figure 1(c): sorted in reverse
)

// String names the order.
func (o Order) String() string {
	switch o {
	case Sorted:
		return "sorted"
	case Reversed:
		return "reversed"
	}
	return "random"
}

// listClasses is the paper's Listing 1: a doubly linked list with an
// imperative, in-place insertion sort, plus the Node class of Listing 2.
const listClasses = `
class List {
  Node head; Node tail;
  public void sort() {
    if (head == null || head.next == null) { return; }
    Node firstUnsorted = head.next;
    while (firstUnsorted != null) {
      Node target = firstUnsorted;
      Node nextUnsorted = firstUnsorted.next;
      while (target.prev != null && target.prev.value > target.value) {
        Node candidate = target.prev;
        Node pred = candidate.prev;
        Node succ = target.next;
        if (pred != null) { pred.next = target; } else { head = target; }
        target.prev = pred;
        if (succ != null) { succ.prev = candidate; } else { tail = candidate; }
        candidate.next = succ;
        target.next = candidate;
        candidate.prev = target;
      }
      firstUnsorted = nextUnsorted;
    }
  }
  public void append(int value) {
    Node node = new Node(value);
    if (tail == null) { tail = node; head = tail; }
    else { tail.next = node; node.prev = tail; tail = tail.next; }
  }
  public boolean isSorted() {
    Node cur = head;
    while (cur != null && cur.next != null) {
      if (cur.value > cur.next.value) { return false; }
      cur = cur.next;
    }
    return true;
  }
}
class Node {
  Node prev; Node next; int value;
  Node(int value) { this.value = value; }
}
`

// RunningExample generates the paper's Listing 2 harness: sort lists of
// length 0..maxSize-1 (step sizeStep), reps times each, with values drawn
// per the order. The repetition tree of this program is the paper's
// Figure 3: five loops.
func RunningExample(order Order, maxSize, sizeStep, reps int) string {
	return runningExample(order, maxSize, sizeStep, reps, "")
}

// RunningExampleChecked is RunningExample plus a per-run sortedness
// assertion. The isSorted scan adds a sixth loop to the repetition tree,
// so figure reproductions use the unchecked variant.
func RunningExampleChecked(order Order, maxSize, sizeStep, reps int) string {
	return runningExample(order, maxSize, sizeStep, reps, "check(list.isSorted());")
}

// RunningExampleScanned is RunningExample plus `passes` read-only
// sortedness scans per constructed list — the sort-once-query-many shape.
// It is the memo-ablation workload of the §5 overhead sweep: the scans
// repeatedly traverse an unchanging structure, so without incremental
// snapshots every scan invocation pays a fresh O(size) traversal.
func RunningExampleScanned(order Order, maxSize, sizeStep, reps, passes int) string {
	return runningExample(order, maxSize, sizeStep, reps,
		fmt.Sprintf(`for (int p = 0; p < %d; p++) { check(list.isSorted()); }`, passes))
}

func runningExample(order Order, maxSize, sizeStep, reps int, post string) string {
	var construct string
	switch order {
	case Sorted:
		construct = `list.append(i);`
	case Reversed:
		construct = `list.append(size - i);`
	default:
		construct = `list.append(rand(size + 1));`
	}
	return listClasses + fmt.Sprintf(`
class Main {
  public static void main() {
    measure();
  }
  static void measure() {
    for (int size = 0; size < %d; size = size + %d) {
      for (int i = 0; i < %d; i++) {
        List list = new List();
        construct(list, size);
        sortIt(list);
        %s
      }
    }
  }
  static void construct(List list, int size) {
    for (int i = 0; i < size; i++) {
      %s
    }
  }
  static void sortIt(List list) {
    list.sort();
  }
}`, maxSize, sizeStep, reps, post, construct)
}

// FunctionalSort is §4.3's paradigm-agnosticism experiment: an insertion
// sort that is functional, recursive, and works on an immutable list —
// every insertion allocates fresh nodes. The algorithmic profile should
// show the same repetition structure (two nested repetitions over the
// same Node structure) and the same complexity as the imperative variant.
func FunctionalSort(order Order, maxSize, sizeStep, reps int) string {
	var construct string
	switch order {
	case Sorted:
		// Prepending, so descending j yields an ascending list.
		construct = `list = new FNode(size - 1 - j, list);`
	case Reversed:
		construct = `list = new FNode(j, list);`
	default:
		construct = `list = new FNode(rand(size + 1), list);`
	}
	return fmt.Sprintf(`
class FNode {
  FNode next; int value;
  FNode(int value, FNode next) { this.value = value; this.next = next; }
}
class FSort {
  static FNode sort(FNode list) {
    if (list == null) { return null; }
    return insert(list.value, sort(list.next));
  }
  static FNode insert(int v, FNode sorted) {
    if (sorted == null) { return new FNode(v, null); }
    if (v <= sorted.value) { return new FNode(v, sorted); }
    return new FNode(sorted.value, insert(v, sorted.next));
  }
  static boolean isSorted(FNode l) {
    if (l == null || l.next == null) { return true; }
    if (l.value > l.next.value) { return false; }
    return isSorted(l.next);
  }
}
class Main {
  public static void main() {
    for (int size = 0; size < %d; size = size + %d) {
      for (int i = 0; i < %d; i++) {
        FNode list = null;
        for (int j = 0; j < size; j++) {
          %s
        }
        FNode sorted = FSort.sort(list);
        check(FSort.isSorted(sorted));
      }
    }
  }
}`, maxSize, sizeStep, reps, construct)
}

// ArrayListGrow is the paper's Listing 6 (Figures 4 and 5): an
// array-backed list that either grows its backing array by one element
// (naive, quadratic total cost) or doubles it (ideal, linear total cost).
// The harness appends `size` string elements for each size in the sweep.
func ArrayListGrow(naive bool, maxSize, sizeStep, reps int) string {
	growth := "array.length * 2"
	if naive {
		growth = "array.length + 1"
	}
	return fmt.Sprintf(`
class ArrayList {
  String[] array; int count;
  ArrayList() { array = new String[1]; count = 0; }
  public void append(String value) {
    growIfFull();
    array[count] = value;
    count = count + 1;
  }
  private void growIfFull() {
    if (count == array.length) {
      String[] newArray = new String[%s];
      for (int i = 0; i < array.length; i++) { newArray[i] = array[i]; }
      array = newArray;
    }
  }
}
class Main {
  public static void main() {
    for (int size = 1; size <= %d; size = size + %d) {
      for (int r = 0; r < %d; r++) { testForSize(size); }
    }
  }
  static void testForSize(int size) {
    ArrayList list = new ArrayList();
    for (int i = 0; i < size; i++) {
      list.append("n" + i);
    }
  }
}`, growth, maxSize, sizeStep, reps)
}

// Listing3 is the paper's cost-combination example extended with array
// accesses so the nest forms one algorithm: combined cost of the single
// outer invocation is 3 + (0+1+2) = 6 algorithmic steps.
const Listing3 = `
class Main {
  public static void main() {
    int[] a = new int[3];
    for (int o = 0; o < 3; o++) {
      int x = a[o];
      for (int i = 0; i < o; i++) { int y = a[i]; }
    }
  }
}`

// Listing4 holds the paper's three construction snippets whose first
// access cannot see the whole structure; the deferred exit measurement
// must still size them fully.
func Listing4(size int) string {
	return fmt.Sprintf(`
class Node { Node next; }
class Main {
  public static void main() {
    Node a = constructListWithLoop(%[1]d);
    Node b = constructListWithRecursion(%[1]d);
    constructPartiallyUsedArray();
  }
  static Node constructListWithLoop(int size) {
    Node list = null;
    for (int i = 0; i < size; i++) {
      Node head = new Node();
      head.next = list;
      list = head;
    }
    return list;
  }
  static Node constructListWithRecursion(int size) {
    if (size == 0) { return null; }
    Node list = constructListWithRecursion(size - 1);
    Node head = new Node();
    head.next = list;
    return head;
  }
  static void constructPartiallyUsedArray() {
    int[] values = new int[1000];
    for (int i = 0; i < 10; i++) {
      values[i] = i * 2;
    }
  }
}`, size)
}

// Listing5 is the paper's known grouping limitation: only the innermost
// loop of the 2-d array nest accesses the array, so the loops are not
// grouped into one algorithm.
const Listing5 = `
class Main {
  public static void main() {
    int[][] array = new int[8][8];
    for (int i = 0; i < array.length; i++) {
      for (int j = 0; j < 8; j++) {
        array[i][j] = i * j;
      }
    }
  }
}`
