package workloads

import "fmt"

// MergeVsInsertion generates a program that, for each size in the sweep,
// builds two random lists with identical statistics and sorts one with
// the paper's quadratic insertion sort and the other with a linked-list
// merge sort. The two sort algorithms produce separate repetition-tree
// algorithms whose fitted cost functions expose the classic crossover:
// insertion sort wins below a few dozen elements, merge sort beyond.
func MergeVsInsertion(maxSize, sizeStep, reps int) string {
	return listClasses + fmt.Sprintf(`
class MNode { MNode next; int v; MNode(int v) { this.v = v; } }
class MSort {
  static MNode sort(MNode h) {
    if (h == null || h.next == null) { return h; }
    MNode slow = h;
    MNode fast = h.next;
    while (fast != null && fast.next != null) {
      slow = slow.next;
      fast = fast.next.next;
    }
    MNode mid = slow.next;
    slow.next = null;
    MNode left = sort(h);
    MNode right = sort(mid);
    return merge(left, right);
  }
  static MNode merge(MNode a, MNode b) {
    if (a == null) { return b; }
    if (b == null) { return a; }
    if (a.v <= b.v) {
      a.next = merge(a.next, b);
      return a;
    }
    b.next = merge(a, b.next);
    return b;
  }
  static boolean isSorted(MNode h) {
    if (h == null || h.next == null) { return true; }
    if (h.v > h.next.v) { return false; }
    return isSorted(h.next);
  }
}
class Main {
  public static void main() {
    for (int size = 2; size <= %d; size = size + %d) {
      for (int r = 0; r < %d; r++) {
        List ilist = new List();
        MNode mlist = null;
        for (int i = 0; i < size; i++) {
          ilist.append(rand(size + 1));
          MNode x = new MNode(rand(size + 1));
          x.next = mlist;
          mlist = x;
        }
        ilist.sort();
        check(ilist.isSorted());
        MNode sorted = MSort.sort(mlist);
        check(MSort.isSorted(sorted));
      }
    }
  }
}`, maxSize, sizeStep, reps)
}
