package workloads

import "fmt"

// Row is one Table 1 example program plus the paper's expectations:
// whether inputs are detected (I), sizes measured correctly (S), and the
// intended loops grouped into one algorithm (G: "x" grouped, "*" grouped
// but fragile to small implementation changes, "-" not grouped — the
// documented array-nest limitation).
type Row struct {
	// Table 1 columns.
	Struct  string // array | list | tree | graph
	Impl    string // array | linked
	Linkage string // NA | directed | bidi | undirected
	T       string // B (baked-in payload) | G (generics) | I (inheritance)
	Rem     string // 1d, 2d, double, grow by 1, binary, n-ary

	// Source generates the MJ program for a structure of ~size elements.
	Source func(size int) string

	// WantLabels are substrings that must appear among detected input
	// labels (column I).
	WantLabels []string
	// WantMaxSize is the expected maximum input size for a build
	// parameter of n (column S). Compared against the largest detected
	// input.
	WantMaxSize func(n int) int
	// GroupPairs are node-name pairs that must share an algorithm;
	// SeparatePairs must not (column G).
	GroupPairs    [][2]string
	SeparatePairs [][2]string
	// PaperG is the paper's G verdict for this row.
	PaperG string
}

// Name renders a stable identifier like "list/linked/directed/B".
func (r Row) Name() string {
	s := r.Struct + "/" + r.Impl + "/" + r.Linkage + "/" + r.T
	if r.Rem != "" {
		s += "/" + r.Rem
	}
	return s
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// Table1 returns the eighteen example programs of the paper's Table 1.
func Table1() []Row {
	return []Row{
		{
			Struct: "array", Impl: "array", Linkage: "NA", T: "B", Rem: "1d",
			Source:      array1d,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.main/loop3", "Main.main/loop4"}},
			PaperG:      "*",
		},
		{
			Struct: "array", Impl: "array", Linkage: "NA", T: "B", Rem: "2d",
			Source:        array2d,
			WantLabels:    []string{"array input"},
			WantMaxSize:   func(n int) int { return n + n*n },
			SeparatePairs: [][2]string{{"Main.main/loop1", "Main.main/loop2"}, {"Main.main/loop3", "Main.main/loop4"}},
			PaperG:        "-",
		},
		{
			Struct: "list", Impl: "array", Linkage: "NA", T: "B", Rem: "double",
			Source:      listArrayDouble,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return nextPow2(n) },
			GroupPairs: [][2]string{
				{"Main.main/loop1", "ArrayListB.grow/loop1"},
				{"Main.main/loop3", "Main.main/loop4"},
			},
			PaperG: "*",
		},
		{
			Struct: "list", Impl: "array", Linkage: "NA", T: "B", Rem: "grow by 1",
			Source:      listArrayGrow1B,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs: [][2]string{
				{"Main.main/loop1", "ArrayListB.grow/loop1"},
				{"Main.main/loop3", "Main.main/loop4"},
			},
			PaperG: "*",
		},
		{
			Struct: "list", Impl: "array", Linkage: "NA", T: "G", Rem: "grow by 1",
			Source:      listArrayGrow1G,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs: [][2]string{
				{"Main.main/loop1", "ArrayListG.grow/loop1"},
				{"Main.main/loop3", "Main.main/loop4"},
			},
			PaperG: "*",
		},
		{
			Struct: "list", Impl: "array", Linkage: "NA", T: "I", Rem: "grow by 1",
			Source:      listArrayGrow1I,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs: [][2]string{
				{"Main.main/loop1", "ArrayListI.grow/loop1"},
				{"Main.main/loop3", "Main.main/loop4"},
			},
			PaperG: "*",
		},
		{
			Struct: "list", Impl: "linked", Linkage: "directed", T: "B",
			Source:      listLinkedB,
			WantLabels:  []string{"LNode-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.main/loop3", "Main.main/loop4"}},
			PaperG:      "x",
		},
		{
			Struct: "list", Impl: "linked", Linkage: "directed", T: "G",
			Source:      listLinkedG,
			WantLabels:  []string{"GNode-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.main/loop3", "Main.main/loop4"}},
			PaperG:      "x",
		},
		{
			Struct: "list", Impl: "linked", Linkage: "directed", T: "I",
			Source:      listLinkedI,
			WantLabels:  []string{"IntCell-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.main/loop3", "Main.main/loop4"}},
			PaperG:      "x",
		},
		{
			Struct: "tree", Impl: "array", Linkage: "NA", T: "B", Rem: "binary",
			Source:      treeArrayBinary,
			WantLabels:  []string{"array input"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.main/loop2", "Main.main/loop3"}},
			PaperG:      "*",
		},
		{
			Struct: "tree", Impl: "linked", Linkage: "directed", T: "B", Rem: "binary",
			Source:      treeLinkedBinary,
			WantLabels:  []string{"TNode-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.sum/recursion", "Main.sum/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "tree", Impl: "linked", Linkage: "bidi", T: "B", Rem: "binary",
			Source:      treeLinkedBidiBinary,
			WantLabels:  []string{"PNode-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.sum/recursion", "Main.sum/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "tree", Impl: "linked", Linkage: "directed", T: "B", Rem: "n-ary",
			Source:      treeNary,
			WantLabels:  []string{"KNode-based recursive structure"},
			WantMaxSize: naryCount,
			GroupPairs:  [][2]string{{"Main.sum/recursion", "Main.sum/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "tree", Impl: "linked", Linkage: "bidi", T: "B", Rem: "n-ary",
			Source:      treeNaryBidi,
			WantLabels:  []string{"PKNode-based recursive structure"},
			WantMaxSize: naryCount,
			GroupPairs:  [][2]string{{"Main.sum/recursion", "Main.sum/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "graph", Impl: "array", Linkage: "directed", T: "B", Rem: "2d",
			Source:        graphArray2d,
			WantLabels:    []string{"array input"},
			WantMaxSize:   func(n int) int { return n + n*n },
			SeparatePairs: [][2]string{{"Main.main/loop2", "Main.main/loop3"}},
			PaperG:        "-",
		},
		{
			Struct: "graph", Impl: "linked", Linkage: "directed", T: "B",
			Source:      graphLinked("Vertex", "directedEdges"),
			WantLabels:  []string{"Vertex-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.visit/recursion", "Main.visit/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "graph", Impl: "linked", Linkage: "bidi", T: "B",
			Source:      graphLinkedBidi,
			WantLabels:  []string{"BVertex-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.visit/recursion", "Main.visit/loop1"}},
			PaperG:      "x",
		},
		{
			Struct: "graph", Impl: "linked", Linkage: "undirected", T: "B",
			Source:      graphLinked("UVertex", "undirectedEdges"),
			WantLabels:  []string{"UVertex-based recursive structure"},
			WantMaxSize: func(n int) int { return n },
			GroupPairs:  [][2]string{{"Main.visit/recursion", "Main.visit/loop1"}},
			PaperG:      "x",
		},
	}
}

// naryCount is the node count of the 3-ary tree built for parameter n:
// treeNary converts n to a depth d = floor(log3(2n)) and builds a full
// 3-ary tree of that depth.
func naryCount(n int) int {
	d := naryDepth(n)
	count := 0
	pow := 1
	for i := 0; i <= d; i++ {
		count += pow
		pow *= 3
	}
	return count
}

func naryDepth(n int) int {
	d := 0
	count := 1
	pow := 1
	for count < n {
		pow *= 3
		count += pow
		d++
	}
	return d
}

// ---------------------------------------------------------------------------
// Sources

func array1d(n int) string {
	return fmt.Sprintf(`
class Main {
  public static void main() {
    int n = %d;
    int[] a = new int[n];
    for (int i = 0; i < n; i++) { a[i] = rand(n); }
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + a[i]; }
    int dup = 0;
    for (int i = 0; i < n; i++) {
      int ai = a[i];
      for (int j = i + 1; j < n; j++) {
        if (ai == a[j]) { dup = dup + 1; }
      }
    }
    check(s >= 0);
    check(dup >= 0);
  }
}`, n)
}

func array2d(n int) string {
	return fmt.Sprintf(`
class Main {
  public static void main() {
    int n = %d;
    int[][] m = new int[n][n];
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) { m[i][j] = rand(n); }
    }
    int s = 0;
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) { s = s + m[i][j]; }
    }
    check(s >= 0);
  }
}`, n)
}

func arrayListBody(cls, elem, growth string) string {
	return fmt.Sprintf(`
class %[1]s {
  %[2]s[] array; int count;
  %[1]s() { array = new %[2]s[1]; count = 0; }
  void append(%[2]s v) {
    if (count == array.length) { grow(); }
    array[count] = v;
    count = count + 1;
  }
  void grow() {
    %[2]s[] na = new %[2]s[%[3]s];
    for (int i = 0; i < array.length; i++) { na[i] = array[i]; }
    array = na;
  }
  %[2]s get(int i) { return array[i]; }
}`, cls, elem, growth)
}

// listArrayMain appends n strings (the paper's Listing 6 payload, whose
// shared elements let reallocated backing arrays unify), then sums lengths
// and scans for duplicates.
func listArrayMain(n int) string {
	return fmt.Sprintf(`
class Main {
  public static void main() {
    int n = %d;
    ArrayListB list = new ArrayListB();
    for (int i = 0; i < n; i++) { list.append("n" + rand(n)); }
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + list.get(i).length; }
    int dup = 0;
    for (int i = 0; i < n; i++) {
      String ai = list.get(i);
      for (int j = i + 1; j < n; j++) {
        if (ai == list.get(j)) { dup = dup + 1; }
      }
    }
    check(s >= n);
    check(dup >= 0);
  }
}`, n)
}

func listArrayDouble(n int) string {
	return arrayListBody("ArrayListB", "String", "array.length * 2") + listArrayMain(n)
}

func listArrayGrow1B(n int) string {
	return arrayListBody("ArrayListB", "String", "array.length + 1") + listArrayMain(n)
}

func listArrayGrow1G(n int) string {
	return fmt.Sprintf(`
class Item { int v; Item(int v) { this.v = v; } int val() { return v; } }
class ArrayListG<T> {
  Object[] array; int count;
  ArrayListG() { array = new Object[1]; count = 0; }
  void append(T v) {
    if (count == array.length) { grow(); }
    array[count] = v;
    count = count + 1;
  }
  void grow() {
    Object[] na = new Object[array.length + 1];
    for (int i = 0; i < array.length; i++) { na[i] = array[i]; }
    array = na;
  }
  T get(int i) { return array[i]; }
}
class Main {
  public static void main() {
    int n = %d;
    ArrayListG<Item> list = new ArrayListG<Item>();
    for (int i = 0; i < n; i++) { list.append(new Item(rand(n))); }
    int s = 0;
    for (int i = 0; i < n; i++) {
      Item it = list.get(i);
      s = s + it.val();
    }
    int dup = 0;
    for (int i = 0; i < n; i++) {
      Item a = list.get(i);
      int av = a.val();
      for (int j = i + 1; j < n; j++) {
        Item b = list.get(j);
        if (av == b.val()) { dup = dup + 1; }
      }
    }
    check(s >= 0);
    check(dup >= 0);
  }
}`, n)
}

func listArrayGrow1I(n int) string {
	return fmt.Sprintf(`
class Payload { int val() { return 0; } }
class IntPayload extends Payload {
  int v;
  IntPayload(int v) { this.v = v; }
  int val() { return v; }
}
class ArrayListI {
  Payload[] array; int count;
  ArrayListI() { array = new Payload[1]; count = 0; }
  void append(Payload v) {
    if (count == array.length) { grow(); }
    array[count] = v;
    count = count + 1;
  }
  void grow() {
    Payload[] na = new Payload[array.length + 1];
    for (int i = 0; i < array.length; i++) { na[i] = array[i]; }
    array = na;
  }
  Payload get(int i) { return array[i]; }
}
class Main {
  public static void main() {
    int n = %d;
    ArrayListI list = new ArrayListI();
    for (int i = 0; i < n; i++) { list.append(new IntPayload(rand(n))); }
    int s = 0;
    for (int i = 0; i < n; i++) { s = s + list.get(i).val(); }
    int dup = 0;
    for (int i = 0; i < n; i++) {
      int av = list.get(i).val();
      for (int j = i + 1; j < n; j++) {
        if (av == list.get(j).val()) { dup = dup + 1; }
      }
    }
    check(s >= 0);
    check(dup >= 0);
  }
}`, n)
}

func listLinkedB(n int) string {
	return fmt.Sprintf(`
class LNode { LNode next; int v; LNode(int v) { this.v = v; } }
class LList {
  LNode head; LNode tail;
  void append(int v) {
    LNode x = new LNode(v);
    if (head == null) { head = x; tail = x; }
    else { tail.next = x; tail = x; }
  }
}
class Main {
  public static void main() {
    int n = %d;
    LList list = new LList();
    for (int i = 0; i < n; i++) { list.append(rand(n)); }
    int count = 0;
    LNode c = list.head;
    while (c != null) { count = count + 1; c = c.next; }
    check(count == n);
    int s = sum(list.head);
    check(s >= 0);
    int dup = 0;
    LNode a = list.head;
    while (a != null) {
      LNode b = a.next;
      while (b != null) {
        if (a.v == b.v) { dup = dup + 1; }
        b = b.next;
      }
      a = a.next;
    }
    check(dup >= 0);
  }
  static int sum(LNode x) {
    if (x == null) { return 0; }
    return x.v + sum(x.next);
  }
}`, n)
}

func listLinkedG(n int) string {
	return fmt.Sprintf(`
class Item { int v; Item(int v) { this.v = v; } int val() { return v; } }
class GNode<T> { GNode<T> next; T value; GNode(T value) { this.value = value; } }
class GList<T> {
  GNode<T> head; GNode<T> tail;
  void append(T v) {
    GNode<T> x = new GNode<T>(v);
    if (head == null) { head = x; tail = x; }
    else { tail.next = x; tail = x; }
  }
}
class Main {
  public static void main() {
    int n = %d;
    GList<Item> list = new GList<Item>();
    for (int i = 0; i < n; i++) { list.append(new Item(rand(n))); }
    int count = 0;
    GNode<Item> c = list.head;
    while (c != null) { count = count + 1; c = c.next; }
    check(count == n);
    int dup = 0;
    GNode<Item> a = list.head;
    while (a != null) {
      var av = a.value;
      GNode<Item> b = a.next;
      while (b != null) {
        var bv = b.value;
        if (av.val() == bv.val()) { dup = dup + 1; }
        b = b.next;
      }
      a = a.next;
    }
    check(dup >= 0);
  }
}`, n)
}

func listLinkedI(n int) string {
	return fmt.Sprintf(`
class Cell { Cell next; int val() { return 0; } }
class IntCell extends Cell {
  int v;
  IntCell(int v) { this.v = v; }
  int val() { return v; }
}
class IList {
  Cell head; Cell tail;
  void append(Cell x) {
    if (head == null) { head = x; tail = x; }
    else { tail.next = x; tail = x; }
  }
}
class Main {
  public static void main() {
    int n = %d;
    IList list = new IList();
    for (int i = 0; i < n; i++) { list.append(new IntCell(rand(n))); }
    int count = 0;
    Cell c = list.head;
    while (c != null) { count = count + 1; c = c.next; }
    check(count == n);
    int dup = 0;
    Cell a = list.head;
    while (a != null) {
      int av = a.val();
      Cell b = a.next;
      while (b != null) {
        if (av == b.val()) { dup = dup + 1; }
        b = b.next;
      }
      a = a.next;
    }
    check(dup >= 0);
  }
}`, n)
}

func treeArrayBinary(n int) string {
	return fmt.Sprintf(`
class Main {
  public static void main() {
    int n = %d;
    int[] heap = new int[n];
    for (int i = 0; i < n; i++) { heap[i] = rand(n); }
    int total = sum(heap, 0);
    check(total >= 0);
    int dup = 0;
    for (int i = 0; i < n; i++) {
      int hi = heap[i];
      for (int j = i + 1; j < n; j++) {
        if (hi == heap[j]) { dup = dup + 1; }
      }
    }
    check(dup >= 0);
  }
  static int sum(int[] h, int i) {
    if (i >= h.length) { return 0; }
    return h[i] + sum(h, 2 * i + 1) + sum(h, 2 * i + 2);
  }
}`, n)
}

func treeLinkedBinary(n int) string {
	return fmt.Sprintf(`
class TNode { TNode left; TNode right; int key; TNode(int k) { key = k; } }
class Main {
  public static void main() {
    int n = %d;
    TNode root = null;
    for (int i = 0; i < n; i++) { root = insert(root, rand(n * 4)); }
    int total = sum(root);
    check(total >= 0);
    check(countNodes(root) == n);
  }
  static TNode insert(TNode t, int k) {
    if (t == null) { return new TNode(k); }
    if (k <= t.key) { t.left = insert(t.left, k); }
    else { t.right = insert(t.right, k); }
    return t;
  }
  static int sum(TNode t) {
    if (t == null) { return 0; }
    if (t.left == null && t.right == null) { return t.key; }
    int s = 0;
    TNode cur = t;
    while (cur != null) {
      s = s + cur.key + sum(cur.right);
      cur = cur.left;
    }
    return s;
  }
  static int countNodes(TNode t) {
    if (t == null) { return 0; }
    return 1 + countNodes(t.left) + countNodes(t.right);
  }
}`, n)
}

func treeLinkedBidiBinary(n int) string {
	return fmt.Sprintf(`
class PNode {
  PNode left; PNode right; PNode parent; int key;
  PNode(int k) { key = k; }
}
class Main {
  public static void main() {
    int n = %d;
    PNode root = null;
    for (int i = 0; i < n; i++) { root = insert(root, null, rand(n * 4)); }
    int total = sum(root);
    check(total >= 0);
    check(countNodes(root) == n);
  }
  static PNode insert(PNode t, PNode p, int k) {
    if (t == null) {
      PNode x = new PNode(k);
      x.parent = p;
      return x;
    }
    if (k <= t.key) { t.left = insert(t.left, t, k); }
    else { t.right = insert(t.right, t, k); }
    return t;
  }
  static int sum(PNode t) {
    if (t == null) { return 0; }
    if (t.left == null && t.right == null) { return t.key; }
    int s = 0;
    PNode cur = t;
    while (cur != null) {
      if (cur.left != null) { check(cur.left.parent == cur); }
      s = s + cur.key + sum(cur.right);
      cur = cur.left;
    }
    return s;
  }
  static int countNodes(PNode t) {
    if (t == null) { return 0; }
    return 1 + countNodes(t.left) + countNodes(t.right);
  }
}`, n)
}

func treeNary(n int) string {
	return fmt.Sprintf(`
class KNode {
  KNode[] children; int nkids; int v;
  KNode(int v, int k) { this.v = v; children = new KNode[k]; nkids = 0; }
}
class Main {
  public static void main() {
    int depth = %d;
    KNode root = build(depth);
    int total = sum(root);
    check(total >= 0);
  }
  static KNode build(int depth) {
    KNode x = new KNode(rand(100), 3);
    if (depth > 0) {
      for (int i = 0; i < 3; i++) {
        KNode c = build(depth - 1);
        x.children[x.nkids] = c;
        x.nkids = x.nkids + 1;
      }
    }
    return x;
  }
  static int sum(KNode t) {
    KNode[] kids = t.children;
    int s = t.v;
    for (int i = 0; i < t.nkids; i++) {
      s = s + sum(kids[i]);
    }
    return s;
  }
}`, naryDepth(n))
}

func treeNaryBidi(n int) string {
	return fmt.Sprintf(`
class PKNode {
  PKNode[] children; PKNode parent; int nkids; int v;
  PKNode(int v, int k) { this.v = v; children = new PKNode[k]; nkids = 0; }
}
class Main {
  public static void main() {
    int depth = %d;
    PKNode root = build(depth, null);
    int total = sum(root);
    check(total >= 0);
  }
  static PKNode build(int depth, PKNode parent) {
    PKNode x = new PKNode(rand(100), 3);
    x.parent = parent;
    if (depth > 0) {
      for (int i = 0; i < 3; i++) {
        PKNode c = build(depth - 1, x);
        x.children[x.nkids] = c;
        x.nkids = x.nkids + 1;
      }
    }
    return x;
  }
  static int sum(PKNode t) {
    PKNode[] kids = t.children;
    int s = t.v;
    for (int i = 0; i < t.nkids; i++) {
      PKNode c = kids[i];
      check(c.parent == t);
      s = s + sum(c);
    }
    return s;
  }
}`, naryDepth(n))
}

func graphArray2d(n int) string {
	return fmt.Sprintf(`
class Main {
  public static void main() {
    int n = %d;
    boolean[][] adj = new boolean[n][n];
    for (int i = 0; i < n; i++) {
      adj[i][(i + 1) %% n] = true;
      adj[i][(i * i + 1) %% n] = true;
    }
    int edges = 0;
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        if (adj[i][j]) { edges = edges + 1; }
      }
    }
    check(edges >= n);
  }
}`, n)
}

// graphLinked generates a directed or undirected ring-with-chords graph
// over vertices of the given class name.
func graphLinked(cls, mode string) func(int) string {
	undirected := mode == "undirectedEdges"
	deg := 2
	addBack := ""
	if undirected {
		deg = 4
		addBack = `w.out[w.nout] = v; w.nout = w.nout + 1;`
	}
	return func(n int) string {
		return fmt.Sprintf(`
class %[1]s {
  %[1]s[] out; int nout; int id; int mark;
  %[1]s(int id) { this.id = id; out = new %[1]s[%[2]d]; nout = 0; mark = 0; }
}
class Main {
  public static void main() {
    int n = %[3]d;
    %[1]s first = new %[1]s(0);
    %[1]s prev = first;
    for (int i = 1; i <= n; i++) {
      if (i == n) { connect(prev, first); }
      else {
        %[1]s v = new %[1]s(i);
        connect(prev, v);
        prev = v;
      }
    }
    int reached = visit(first);
    check(reached == n);
  }
  static void connect(%[1]s v, %[1]s w) {
    v.out[v.nout] = w;
    v.nout = v.nout + 1;
    %[4]s
  }
  static int visit(%[1]s v) {
    if (v.mark == 1) { return 0; }
    v.mark = 1;
    %[1]s[] edges = v.out;
    int c = 1;
    for (int i = 0; i < v.nout; i++) {
      c = c + visit(edges[i]);
    }
    return c;
  }
}`, cls, deg, n, addBack)
	}
}

func graphLinkedBidi(n int) string {
	return fmt.Sprintf(`
class BVertex {
  BVertex[] out; BVertex[] in; int nout; int nin; int id; int mark;
  BVertex(int id) {
    this.id = id;
    out = new BVertex[2];
    in = new BVertex[2];
    nout = 0; nin = 0; mark = 0;
  }
}
class Main {
  public static void main() {
    int n = %d;
    BVertex first = new BVertex(0);
    BVertex prev = first;
    for (int i = 1; i <= n; i++) {
      if (i == n) { connect(prev, first); }
      else {
        BVertex v = new BVertex(i);
        connect(prev, v);
        prev = v;
      }
    }
    int reached = visit(first);
    check(reached == n);
  }
  static void connect(BVertex v, BVertex w) {
    v.out[v.nout] = w;
    v.nout = v.nout + 1;
    w.in[w.nin] = v;
    w.nin = w.nin + 1;
  }
  static int visit(BVertex v) {
    if (v.mark == 1) { return 0; }
    v.mark = 1;
    BVertex[] edges = v.out;
    int c = 1;
    for (int i = 0; i < v.nout; i++) {
      c = c + visit(edges[i]);
    }
    return c;
  }
}`, n)
}
