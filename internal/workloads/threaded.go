package workloads

import "fmt"

// Threaded generates the threaded linked-list workload: main spawns
// nthreads worker threads and joins them in spawn order; each worker
// builds and counts singly linked lists of every even size up to its own
// bound (thread k gets maxSize - 4k, so the per-thread repetition trees
// are distinguishable in the merged report). All data is thread-private —
// each invocation of the counting loop walks exactly one list — so
// path-counter decode stays exact and the workload qualifies for the
// equivalence corpus.
func Threaded(nthreads, maxSize int) string {
	spawns, joins := "", ""
	for k := 0; k < nthreads; k++ {
		spawns += fmt.Sprintf("    int h%d = spawn Main.work(%d);\n", k, maxSize-4*k)
		joins += fmt.Sprintf("    join h%d;\n", k)
	}
	return fmt.Sprintf(`
class Cell { Cell next; int value; Cell(int value) { this.value = value; } }
class Main {
  public static void main() {
%s%s    print("joined");
  }
  static void work(int maxSize) {
    for (int size = 2; size <= maxSize; size = size + 2) {
      Cell head = build(size);
      check(count(head) == size);
    }
  }
  static Cell build(int size) {
    Cell head = null;
    for (int i = 0; i < size; i++) {
      Cell x = new Cell(rand(1000));
      x.next = head;
      head = x;
    }
    return head;
  }
  static int count(Cell head) {
    int n = 0;
    Cell cur = head;
    while (cur != null) { n = n + 1; cur = cur.next; }
    return n;
  }
}`, spawns, joins)
}
