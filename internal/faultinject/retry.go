package faultinject

import "time"

// RetryPolicy retries an operation whose failures classify as Transient,
// with jittered exponential backoff. Corruption, Resource, and Unknown
// failures are returned immediately — retrying damaged bytes or a full
// disk only wastes time and can mask the real fault.
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Backoff is the full delay before the first retry; it doubles each
	// retry (before jitter).
	Backoff time.Duration
	// Jitter in [0, 1] spreads each delay: delay i is drawn uniformly from
	// [backoff_i*(1-Jitter), backoff_i], where backoff_i is the doubled
	// base. 0 keeps the exact doubling schedule — but when many callers
	// hit the same transient fault at once, a deterministic schedule
	// synchronizes their retries into herds, so concurrent layers (the
	// dispatch path, the store under a busy daemon) want Jitter > 0.
	Jitter float64
	// Seed selects the deterministic splitmix64 stream the jitter draws
	// from: the same (Seed, attempt) always yields the same delay, so
	// seeded fault schedules stay reproducible operation for operation.
	Seed uint64
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the store's policy for transient I/O: three tries with
// a short doubling backoff, half-jittered so a fleet of writers hitting
// the same fault desynchronizes.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond, Jitter: 0.5}

// Delay returns the jittered backoff before retry attempt (0-based: the
// delay after the first failure is Delay(0)). It is a pure function of
// the policy and the attempt index.
func (r RetryPolicy) Delay(attempt int) time.Duration {
	if r.Backoff <= 0 || attempt < 0 {
		return 0
	}
	backoff := r.Backoff << uint(attempt)
	if backoff <= 0 { // shift overflow
		backoff = r.Backoff
	}
	j := r.Jitter
	if j <= 0 {
		return backoff
	}
	if j > 1 {
		j = 1
	}
	// One draw per attempt from the policy's own splitmix64 stream,
	// independent of call interleaving — the same discipline as Plan
	// points.
	u := float64(splitmix64(r.Seed^0xa076_1d64_78bd_642f+uint64(attempt))>>11) / float64(1<<53)
	scale := 1 - j*u // in (1-j, 1]
	return time.Duration(float64(backoff) * scale)
}

// Do runs op until it succeeds, fails non-transiently, or exhausts the
// attempt budget. It returns op's last error.
func (r RetryPolicy) Do(op func() error) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if ClassOf(err) != Transient || i == attempts-1 {
			return err
		}
		if d := r.Delay(i); d > 0 {
			sleep(d)
		}
	}
	return err
}
