package faultinject

import "time"

// RetryPolicy retries an operation whose failures classify as Transient,
// with exponential backoff. Corruption, Resource, and Unknown failures
// are returned immediately — retrying damaged bytes or a full disk only
// wastes time and can mask the real fault.
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Backoff is the delay before the first retry; it doubles each retry.
	Backoff time.Duration
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the store's policy for transient I/O: three tries with
// a short doubling backoff.
var DefaultRetry = RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond}

// Do runs op until it succeeds, fails non-transiently, or exhausts the
// attempt budget. It returns op's last error.
func (r RetryPolicy) Do(op func() error) error {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := r.Backoff
	var err error
	for i := 0; i < attempts; i++ {
		if err = op(); err == nil {
			return nil
		}
		if ClassOf(err) != Transient || i == attempts-1 {
			return err
		}
		if backoff > 0 {
			sleep(backoff)
			backoff *= 2
		}
	}
	return err
}
