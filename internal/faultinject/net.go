package faultinject

import (
	"io"
	"net/http"
	"syscall"
	"time"
)

// Injection point names consulted by Plan.Transport — the network-layer
// counterpart of the fs.* points. The dispatch layer (internal/dispatch)
// routes all daemon→worker HTTP through a plan-wrapped transport, so a
// seeded schedule can fail, delay, sever, or silently damage the remote
// execution path. Path filtering (PointConfig.PathSuffix) matches the
// request's host:port, so a schedule can target one worker and leave the
// rest of the fleet healthy.
const (
	// PointNetDial fails the request before it reaches the peer
	// (connection refused / reset on send). Transient: nothing executed.
	PointNetDial = "net.dial"
	// PointNetDelay stalls the request for a deterministic duration drawn
	// from the point's stream (up to NetDelayMax) before forwarding it —
	// the slow-worker / congested-link fault. The delay alone is not an
	// error; lease TTLs decide whether it becomes one.
	PointNetDelay = "net.delay"
	// PointNetDrop delivers the request but loses the response: the peer
	// did the work, the caller sees a transient failure — the
	// retry-idempotency fault.
	PointNetDrop = "net.drop"
	// PointNetPartition severs the link in both directions: every matching
	// request fails transiently until the point's MaxFires budget heals
	// the partition.
	PointNetPartition = "net.partition"
	// PointNetCorrupt flips one bit in the response body without raising
	// an error — the silent wire-corruption fault. Content digests on the
	// dispatch wire format must catch it.
	PointNetCorrupt = "net.corrupt"
)

// NetDelayMax bounds the deterministic delay PointNetDelay draws.
const NetDelayMax = 500 * time.Millisecond

// Transport wraps base with the plan's net.* injection points. A nil plan
// returns base unchanged; a nil base wraps http.DefaultTransport.
func (p *Plan) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if p == nil {
		return base
	}
	return &faultTransport{base: base, plan: p}
}

type faultTransport struct {
	base http.RoundTripper
	plan *Plan
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	op := req.Method + " " + req.URL.String()
	if err := t.plan.Point(PointNetPartition).ErrFor(host, "partitioned "+op); err != nil {
		// The request never leaves: close the body like a real transport
		// failure would.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, err
	}
	if err := t.plan.Point(PointNetDial).ErrFor(host, "dial "+op); err != nil {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, err
	}
	if pt := t.plan.Point(PointNetDelay); pt.FireFor(host) {
		d := time.Duration(pt.Pick(int(NetDelayMax/time.Millisecond))+1) * time.Millisecond
		select {
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, &Fault{Class: Transient, Point: PointNetDelay, Op: "delay " + op, Err: req.Context().Err()}
		case <-time.After(d):
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if pt := t.plan.Point(PointNetDrop); pt.FireFor(host) {
		// The peer processed the request; the caller never learns.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &Fault{Class: Transient, Point: PointNetDrop, Op: "response dropped " + op, Err: syscall.ECONNRESET}
	}
	if pt := t.plan.Point(PointNetCorrupt); pt.FireFor(host) {
		// Flip one bit somewhere in the first corruptWindow bytes of the
		// body, silently. Offset and bit come from the point's stream.
		resp.Body = &corruptBody{
			ReadCloser: resp.Body,
			offset:     int64(pt.Pick(corruptWindow)),
			bit:        byte(pt.Pick(8)),
		}
	}
	return resp, nil
}

// corruptWindow bounds the offset draw for a net.corrupt bit flip. The
// drawn offset is reduced modulo the first chunk actually read, so every
// non-empty response is guaranteed to take exactly one flip — a corrupt
// fault that fires always damages the payload, deterministically.
const corruptWindow = 1 << 16

// corruptBody flips one bit in the first chunk read from the stream.
type corruptBody struct {
	io.ReadCloser
	offset  int64
	bit     byte
	flipped bool
}

func (c *corruptBody) Read(p []byte) (int, error) {
	n, err := c.ReadCloser.Read(p)
	if n > 0 && !c.flipped {
		p[c.offset%int64(n)] ^= 1 << c.bit
		c.flipped = true
	}
	return n, err
}

// NetFault builds a transport-level transient fault for real (non-injected)
// network errors, so the dispatch layer classifies injected and genuine
// connection failures identically.
func NetFault(point, op string, err error) *Fault {
	return &Fault{Class: Transient, Point: point, Op: op, Err: err}
}
